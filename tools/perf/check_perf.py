#!/usr/bin/env python3
"""Compare a freshly measured benchmark JSON against a checked-in
baseline and fail on regression.

Both files are flat JSON objects as written by bench/perf_simulator
(BENCH_simulator.json, BENCH_trace_cache.json). The comparison is on a
single throughput key (higher is better): exit 1 if the current value
falls more than --max-regress below the baseline. Improvements never
fail; a gentle reminder is printed when the baseline looks stale
(current value far above it) so it gets refreshed.

Usage:
    check_perf.py BASELINE.json CURRENT.json \
        --key fastpath_events_per_second [--max-regress 0.20]
"""

import argparse
import json
import sys


def load(path: str, key: str) -> float:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_perf: cannot read {path}: {e}")
    if key not in data:
        sys.exit(f"check_perf: {path} has no key '{key}'")
    value = data[key]
    if not isinstance(value, (int, float)) or value <= 0:
        sys.exit(f"check_perf: {path}[{key}] = {value!r} is not a "
                 "positive number")
    return float(value)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--key", default="fastpath_events_per_second",
                    help="throughput key to compare (higher is better)")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="maximum tolerated fractional regression "
                         "(default 0.20)")
    args = ap.parse_args()

    base = load(args.baseline, args.key)
    cur = load(args.current, args.key)
    change = (cur - base) / base

    print(f"check_perf: {args.key}: baseline {base:,.0f}, "
          f"current {cur:,.0f} ({change:+.1%})")
    if change < -args.max_regress:
        print(f"check_perf: FAIL — regression exceeds "
              f"{args.max_regress:.0%} budget", file=sys.stderr)
        return 1
    if change > args.max_regress:
        print("check_perf: note — current is well above baseline; "
              "consider refreshing the checked-in JSON")
    print("check_perf: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
