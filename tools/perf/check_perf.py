#!/usr/bin/env python3
"""Compare a freshly measured benchmark JSON against a checked-in
baseline and fail on regression.

Both files are flat JSON objects as written by bench/perf_simulator
(BENCH_simulator.json, BENCH_trace_cache.json). The comparison is on one
or more throughput keys (higher is better), each given with a repeated
--key flag: exit 1 if any current value falls more than --max-regress
below its baseline. Improvements never fail; a gentle reminder is
printed when a baseline looks stale (current value far above it) so it
gets refreshed. On failure a per-field delta table of every compared
key is printed so the offending fields are visible at a glance.

Independent of the relative comparison, --min KEY=VALUE (repeatable)
gates a key of the *current* JSON against an absolute floor. This is
for invariants that must hold regardless of what the baseline says —
e.g. speedup_vs_reference >= 1.0, which once silently drifted to 0.94
because only the relative check ran.

Usage:
    check_perf.py BASELINE.json CURRENT.json \
        --key decode_events_per_second \
        --key warm_replay_events_per_second [--max-regress 0.20] \
        --min speedup_vs_reference=1.0
"""

import argparse
import sys
import json


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_perf: cannot read {path}: {e}")


def value_of(data: dict, path: str, key: str) -> float:
    if key not in data:
        sys.exit(f"check_perf: {path} has no key '{key}'")
    value = data[key]
    if not isinstance(value, (int, float)) or value <= 0:
        sys.exit(f"check_perf: {path}[{key}] = {value!r} is not a "
                 "positive number")
    return float(value)


def delta_table(rows) -> str:
    """Render compared fields as an aligned table (used on failure)."""
    header = ("key", "baseline", "current", "delta", "status")
    cells = [header] + [
        (key, f"{base:,.0f}", f"{cur:,.0f}", f"{change:+.1%}", status)
        for key, base, cur, change, status in rows
    ]
    widths = [max(len(row[c]) for row in cells) for c in range(len(header))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--key", action="append", dest="keys", metavar="KEY",
                    help="throughput key to compare, higher is better "
                         "(repeatable; default "
                         "fastpath_events_per_second)")
    ap.add_argument("--max-regress", type=float, default=0.20,
                    help="maximum tolerated fractional regression "
                         "(default 0.20)")
    ap.add_argument("--min", action="append", dest="floors",
                    metavar="KEY=VALUE", default=[],
                    help="absolute floor on a key of CURRENT, checked "
                         "independently of the baseline (repeatable)")
    args = ap.parse_args()
    keys = args.keys or ["fastpath_events_per_second"]

    floors = []
    for spec in args.floors:
        key, sep, raw = spec.partition("=")
        if not sep or not key:
            sys.exit(f"check_perf: --min expects KEY=VALUE, got {spec!r}")
        try:
            floors.append((key, float(raw)))
        except ValueError:
            sys.exit(f"check_perf: --min {key}: {raw!r} is not a number")

    base_data = load(args.baseline)
    cur_data = load(args.current)

    rows = []
    failed = False
    for key in keys:
        base = value_of(base_data, args.baseline, key)
        cur = value_of(cur_data, args.current, key)
        change = (cur - base) / base
        status = "FAIL" if change < -args.max_regress else "ok"
        failed = failed or status == "FAIL"
        rows.append((key, base, cur, change, status))
        print(f"check_perf: {key}: baseline {base:,.0f}, "
              f"current {cur:,.0f} ({change:+.1%})")
        if change > args.max_regress:
            print(f"check_perf: note — {key} is well above baseline; "
                  "consider refreshing the checked-in JSON")

    for key, floor in floors:
        cur = value_of(cur_data, args.current, key)
        if cur < floor:
            failed = True
            print(f"check_perf: FLOOR {key}: current {cur:g} "
                  f"< required {floor:g}", file=sys.stderr)
        else:
            print(f"check_perf: {key}: {cur:g} >= floor {floor:g}")

    if failed:
        print(f"check_perf: FAIL — regression beyond the "
              f"{args.max_regress:.0%} budget or a floor violated\n" +
              delta_table(rows),
              file=sys.stderr)
        return 1
    print("check_perf: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
