"""Shared file discovery for the TEA lint tools.

One place decides which files the linters see, so tea_lint, tea_check
and run_clang_tidy cannot drift apart: the same suffixes, the same
excluded directories (build trees, third_party), and the same tests
opt-in. Tools import:

  iter_source_files(root, include_tests=...)  -> sorted list of Paths
  is_excluded(path)                           -> True for build trees
  SRC_SUFFIXES                                -> {".cc", ".hh"}
"""

from __future__ import annotations

from pathlib import Path

#: File suffixes the linters consider source code.
SRC_SUFFIXES = {".cc", ".hh"}

#: Directory names (path components) never linted. Build trees are
#: matched by prefix below so out-of-source `build-clang-tsa` style
#: directories are covered without enumerating presets.
EXCLUDE_DIR_NAMES = {"third_party", ".git"}

#: Any path component starting with one of these prefixes is excluded.
EXCLUDE_DIR_PREFIXES = ("build",)

#: Directories scanned by default, relative to the repository root.
DEFAULT_SUBDIRS = ("src",)

#: Directories added when tests are opted in.
TEST_SUBDIRS = ("tests",)


def is_excluded(path: Path) -> bool:
    """True when any path component names a build tree or other
    never-linted directory."""
    for part in path.parts:
        if part in EXCLUDE_DIR_NAMES:
            return True
        if any(part.startswith(p) for p in EXCLUDE_DIR_PREFIXES):
            return True
    return False


def iter_source_files(root: Path, include_tests: bool = False,
                      suffixes: set[str] | None = None) -> list[Path]:
    """Every lintable source file under `root`, sorted.

    Scans DEFAULT_SUBDIRS (plus TEST_SUBDIRS when `include_tests`),
    keeping files whose suffix is in `suffixes` (default SRC_SUFFIXES)
    and dropping anything under an excluded directory.
    """
    if suffixes is None:
        suffixes = SRC_SUFFIXES
    subdirs = DEFAULT_SUBDIRS + (TEST_SUBDIRS if include_tests else ())
    out: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in base.rglob("*"):
            if path.suffix not in suffixes:
                continue
            if is_excluded(path.relative_to(root)):
                continue
            out.append(path)
    return sorted(out)
