#!/usr/bin/env python3
"""Fixture tests for tea_check.

Runs the checker over the seeded tests/lint_fixtures tree and asserts
the exact (file, line, rule) set it reports. Expectations live in the
fixtures themselves: every line tagged `EXPECT(<rule>)` must produce a
violation with that rule id on that line, and nothing else may fire —
so the clean counterparts double as false-positive regression tests,
and the allow() annotations prove suppression works.

Propagates tea_check's SKIP (exit 77) when libclang is unavailable, so
the ctest registration (SKIP_RETURN_CODE 77) shows the test as skipped
rather than silently passing.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_common import iter_source_files  # noqa: E402

SKIP = 77
EXPECT_RE = re.compile(r"EXPECT\(([a-z-]+)\)")
VIOLATION_RE = re.compile(r"^(.+?):(\d+): \[([a-z-]+)\]")


def expected_violations(fixture_root: Path) -> set[tuple[str, int, str]]:
    out: set[tuple[str, int, str]] = set()
    for path in iter_source_files(fixture_root):
        rel = str(path.relative_to(fixture_root))
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for m in EXPECT_RE.finditer(line):
                out.add((rel, lineno, m.group(1)))
    return out


def main() -> int:
    repo = Path(__file__).resolve().parents[2]
    fixture_root = repo / "tests" / "lint_fixtures"
    if not fixture_root.is_dir():
        print(f"test_tea_check: {fixture_root} missing", file=sys.stderr)
        return 2

    # -I <repo>/src so fixtures include the real common/sync.hh: the
    # guard-missing fixtures must see the same TEA_GUARDED_BY macro the
    # production classes use, not a mock of it.
    r = subprocess.run(
        [sys.executable, str(repo / "tools" / "lint" / "tea_check.py"),
         "--root", str(fixture_root), "-I", str(repo / "src")],
        capture_output=True, text=True)
    if r.returncode == SKIP:
        print(r.stdout.strip() or "test_tea_check: SKIP")
        return SKIP

    reported: set[tuple[str, int, str]] = set()
    for line in r.stdout.splitlines():
        m = VIOLATION_RE.match(line)
        if m:
            reported.add((m.group(1), int(m.group(2)), m.group(3)))

    expected = expected_violations(fixture_root)
    missing = expected - reported
    surprise = reported - expected
    if missing or surprise:
        for f, l, rule in sorted(missing):
            print(f"MISSING  {f}:{l}: [{rule}] (expected, not reported)")
        for f, l, rule in sorted(surprise):
            print(f"SURPRISE {f}:{l}: [{rule}] (reported, not expected)")
        print(f"test_tea_check: FAIL ({len(missing)} missing, "
              f"{len(surprise)} unexpected; checker exit "
              f"{r.returncode})")
        if r.stderr.strip():
            print(r.stderr.strip(), file=sys.stderr)
        return 1

    # With seeded violations present the checker itself must have
    # failed; a 0 here would mean the gate can't actually gate.
    if expected and r.returncode != 1:
        print(f"test_tea_check: FAIL (checker exit {r.returncode}, "
              "expected 1 with seeded violations)")
        return 1

    print(f"test_tea_check: PASS ({len(expected)} seeded violations "
          "matched exactly, clean fixtures silent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
