#!/usr/bin/env python3
"""tea_check: semantic lint rules via libclang.

Three rules regex fundamentally cannot express — each needs to know
what a call resolves to, what a member's type is, or whether a class
owns a lock:

  raw-io         Direct low-level I/O calls (::open/::write/::rename/
                 ::fsync/fopen/fwrite/...) anywhere in src/ outside the
                 checked wrappers (core/trace_io.cc, common/file_lock.cc)
                 bypass the failpoint and retry seams those wrappers
                 exist to provide. Suppress a deliberate direct call
                 with `tea_check: allow(raw-io)` and say why.

  naked-order    std::atomic loads/stores/RMWs in src/core/ and
                 src/analysis/ must spell their memory order — an
                 implicit seq_cst is indistinguishable from an
                 unconsidered one. Atomic operators (++, +=, implicit
                 conversion) cannot spell an order and are always
                 flagged. A `memory_order_relaxed` must carry a
                 justification comment containing "relaxed" within the
                 4 lines above (or on the line). Suppress with
                 `tea_check: allow(naked-order)`.

  guard-missing  Every mutable member of a class that owns a tea::Mutex
                 must be annotated TEA_GUARDED_BY — an unannotated
                 member is invisible to Clang's thread-safety analysis,
                 which silently accepts unlocked access to it.
                 Exemptions: const members, std::atomic members (they
                 synchronize themselves; naked-order makes them spell
                 their orders), Mutex/CondVar members, and
                 `tea_check: allow(guard-missing)`.

The allow() convention matches tea_lint: `tea_check: allow(<rule>)` on
the flagged line or up to 2 lines above.

libclang is an optional dependency: when the python bindings or the
shared library are missing the checker prints a SKIP notice and exits
77 (the ctest skip code), so local GCC-only environments stay green
while CI — which installs libclang — enforces the rules.

Exit status: 0 clean, 1 violations, 2 usage error, 77 libclang missing.
"""

from __future__ import annotations

import argparse
import glob
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_common import iter_source_files  # noqa: E402

SKIP = 77

#: Files allowed to make raw I/O calls: the wrappers that put the
#: failpoint/retry seams around every syscall.
RAW_IO_WRAPPERS = {
    Path("src/core/trace_io.cc"),
    Path("src/common/file_lock.cc"),
}

#: Free functions the raw-io rule watches for. Methods named e.g.
#: `close` never match: the rule checks the *referenced declaration*
#: (a C function at translation-unit scope), not the spelling.
RAW_IO_FUNCTIONS = {
    # POSIX fd layer
    "open", "openat", "creat", "close", "read", "write", "pread",
    "pwrite", "lseek", "fsync", "fdatasync", "ftruncate", "truncate",
    "rename", "renameat", "unlink", "unlinkat", "remove", "mkdir",
    "mkdirat", "rmdir", "stat", "lstat", "fstat", "statx", "mmap",
    "munmap", "msync", "flock", "fcntl",
    # stdio layer
    "fopen", "freopen", "fclose", "fread", "fwrite", "fflush", "fseek",
    "fputs", "fputc", "fgets", "fgetc",
}

#: Atomic member functions that take a trailing std::memory_order.
ATOMIC_ORDERED_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "wait", "test_and_set", "clear", "test",
}

#: Directories (relative to the scanned root) naked-order applies to.
NAKED_ORDER_DIRS = ("src/core", "src/analysis")

MEMORY_ORDER_RE = re.compile(r"\bmemory_order_(\w+)|memory_order::(\w+)")


def load_libclang(libclang_path: str | None):
    """Import clang.cindex and materialize an Index, probing common
    library locations. Returns (cindex_module, Index) or raises."""
    import clang.cindex as cindex  # noqa: PLC0415

    if libclang_path:
        cindex.Config.set_library_file(libclang_path)
        return cindex, cindex.Index.create()
    try:
        return cindex, cindex.Index.create()
    except cindex.LibclangError:
        pass
    # The bindings could not find the library by soname; probe the
    # usual distro install locations (Config.loaded is still False
    # after a failed create, so set_library_file may be retried).
    candidates: list[str] = []
    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/*/libclang-*.so*",
                    "/usr/lib/*/libclang.so*",
                    "/usr/local/lib/libclang.so*"):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for cand in candidates:
        try:
            cindex.Config.set_library_file(cand)
            return cindex, cindex.Index.create()
        except Exception:
            continue
    raise OSError("no usable libclang shared library found")


def allows(raw_lines: list[str], lineno: int, tag: str,
           lookback: int = 2) -> bool:
    """tea_lint-style allowlist: `tea_check: allow(<tag>)` on 1-based
    line `lineno` or up to `lookback` lines above."""
    needle = f"tea_check: allow({tag})"
    lo = max(0, lineno - 1 - lookback)
    return any(needle in raw_lines[k] for k in range(lo, lineno))


class Checker:
    def __init__(self, cindex, index, root: Path, include_dirs):
        self.ci = cindex
        self.index = index
        self.root = root
        self.include_dirs = list(include_dirs)
        self.violations: list[str] = []
        self.files_checked = 0

    def violate(self, path: Path, lineno: int, rule: str, msg: str):
        rel = path.relative_to(self.root) if path.is_relative_to(
            self.root) else path
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # --- parsing ---------------------------------------------------------

    def parse(self, path: Path):
        args = ["-x", "c++", "-std=c++20"]
        for inc in self.include_dirs:
            args += ["-I", str(inc)]
        # Incomplete ASTs are fine: an unresolved include leaves the
        # surrounding declarations intact, and every rule keys on
        # resolved references only.
        return self.index.parse(
            str(path), args=args,
            options=self.ci.TranslationUnit
            .PARSE_DETAILED_PROCESSING_RECORD)

    def local_cursors(self, tu, path: Path):
        """All cursors whose location is in `path` itself (not in an
        included file)."""
        want = str(path)
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is not None and loc.file.name == want:
                yield cur

    @staticmethod
    def extent_text(raw_lines: list[str], cur) -> str:
        """Raw source text of a cursor's extent (inclusive lines)."""
        start, end = cur.extent.start, cur.extent.end
        if start.line == 0 or end.line == 0:
            return ""
        lines = raw_lines[start.line - 1:end.line]
        if not lines:
            return ""
        if len(lines) == 1:
            return lines[0][start.column - 1:end.column - 1]
        lines = lines[:]
        lines[0] = lines[0][start.column - 1:]
        lines[-1] = lines[-1][:end.column - 1]
        return "\n".join(lines)

    # --- rule: raw-io ----------------------------------------------------

    def is_raw_io_exempt(self, path: Path) -> bool:
        rel = path.relative_to(self.root) if path.is_relative_to(
            self.root) else path
        return rel in RAW_IO_WRAPPERS

    def check_raw_io(self, path: Path, cursors, raw_lines: list[str]):
        K = self.ci.CursorKind
        for cur in cursors:
            if cur.kind != K.CALL_EXPR:
                continue
            ref = cur.referenced
            if ref is None or ref.spelling not in RAW_IO_FUNCTIONS:
                continue
            if ref.kind != K.FUNCTION_DECL:
                continue  # methods named read()/close() are fine
            parent = ref.semantic_parent
            if parent is not None and parent.kind not in (
                    K.TRANSLATION_UNIT, K.LINKAGE_SPEC, K.NAMESPACE):
                continue
            if (parent is not None and parent.kind == K.NAMESPACE
                    and parent.spelling != "std"):
                continue  # some project namespace's free function
            lineno = cur.location.line
            if allows(raw_lines, lineno, "raw-io"):
                continue
            self.violate(
                path, lineno, "raw-io",
                f"direct {ref.spelling}() bypasses the failpoint/retry "
                "seams in core/trace_io.cc / common/file_lock.cc; "
                "route through a wrapper or annotate "
                "`tea_check: allow(raw-io)` with a reason")

    # --- rule: naked-order -----------------------------------------------

    def in_naked_order_scope(self, path: Path) -> bool:
        rel = path.relative_to(self.root) if path.is_relative_to(
            self.root) else path
        return any(str(rel).startswith(d + "/")
                   for d in NAKED_ORDER_DIRS)

    def check_naked_order(self, path: Path, cursors,
                          raw_lines: list[str]):
        K = self.ci.CursorKind
        for cur in cursors:
            if cur.kind != K.CALL_EXPR:
                continue
            ref = cur.referenced
            if ref is None:
                continue
            if ref.kind not in (K.CXX_METHOD, K.CONVERSION_FUNCTION):
                continue
            parent = ref.semantic_parent
            if parent is None or "atomic" not in parent.spelling:
                continue
            name = ref.spelling
            lineno = cur.location.line
            if allows(raw_lines, lineno, "naked-order"):
                continue
            if name.startswith("operator") or \
                    ref.kind == K.CONVERSION_FUNCTION:
                self.violate(
                    path, lineno, "naked-order",
                    f"atomic {name} cannot spell a memory order "
                    "(it is always seq_cst): use explicit "
                    "load/store/fetch_* with an order")
                continue
            if name not in ATOMIC_ORDERED_METHODS:
                continue
            text = self.extent_text(raw_lines, cur)
            m = MEMORY_ORDER_RE.search(text)
            if not m:
                self.violate(
                    path, lineno, "naked-order",
                    f"atomic {name}() with implicit seq_cst: spell "
                    "the memory order (std::memory_order_seq_cst when "
                    "sequential consistency is really required)")
                continue
            order = m.group(1) or m.group(2)
            if order in ("relaxed", "acquire", "release", "acq_rel"):
                # A downgrade needs a justification comment nearby.
                lo = max(0, lineno - 1 - 4)
                span = raw_lines[lo:cur.extent.end.line]
                # Only text after "//" counts: the flagged call's own
                # memory_order_<x> token must not satisfy the check.
                if not any("//" in l and order in l.split("//", 1)[1]
                           for l in span):
                    self.violate(
                        path, lineno, "naked-order",
                        f"memory_order_{order} without a nearby "
                        f"justification comment mentioning "
                        f"\"{order}\": say why the weaker order is "
                        "safe")

    # --- rule: guard-missing ---------------------------------------------

    MUTEX_TYPES = ("tea::Mutex", "Mutex")
    SELF_SYNC_TYPES = ("Mutex", "CondVar", "MutexLock")

    @classmethod
    def is_mutex_field(cls, field) -> bool:
        spelling = field.type.spelling
        if "&" in spelling or "*" in spelling:
            return False  # a borrowed lock is not ownership
        base = spelling.replace("const ", "").strip()
        return base in cls.MUTEX_TYPES or base.endswith("::Mutex")

    @classmethod
    def is_self_synchronizing(cls, field) -> bool:
        spelling = field.type.spelling
        if "atomic" in spelling:
            return True
        base = spelling.split("<")[0].replace("const ", "").strip()
        short = base.rsplit("::", 1)[-1]
        return short in cls.SELF_SYNC_TYPES

    def check_guard_missing(self, path: Path, cursors,
                            raw_lines: list[str]):
        K = self.ci.CursorKind
        class_kinds = (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE)
        for cur in cursors:
            if cur.kind not in class_kinds or not cur.is_definition():
                continue
            fields = [c for c in cur.get_children()
                      if c.kind == K.FIELD_DECL]
            if not any(self.is_mutex_field(f) for f in fields):
                continue
            for f in fields:
                if self.is_mutex_field(f) or \
                        self.is_self_synchronizing(f):
                    continue
                if f.type.is_const_qualified():
                    continue
                text = self.extent_text(raw_lines, f)
                if "TEA_GUARDED_BY" in text or \
                        "TEA_PT_GUARDED_BY" in text:
                    continue
                lineno = f.location.line
                if allows(raw_lines, lineno, "guard-missing"):
                    continue
                self.violate(
                    path, lineno, "guard-missing",
                    f"member `{f.spelling}` of lock-owning class "
                    f"`{cur.spelling}` has no TEA_GUARDED_BY: the "
                    "thread-safety analysis cannot protect an "
                    "unannotated member (mark it const, make it "
                    "atomic with spelled orders, or annotate "
                    "`tea_check: allow(guard-missing)` with a reason)")

    # --- driver ----------------------------------------------------------

    def run(self, files: list[Path]) -> int:
        for path in files:
            self.files_checked += 1
            raw_lines = path.read_text().splitlines()
            tu = self.parse(path)
            cursors = list(self.local_cursors(tu, path))
            if not self.is_raw_io_exempt(path):
                self.check_raw_io(path, cursors, raw_lines)
            if self.in_naked_order_scope(path):
                self.check_naked_order(path, cursors, raw_lines)
            self.check_guard_missing(path, cursors, raw_lines)

        if self.violations:
            for v in sorted(self.violations):
                print(v)
            print(f"tea_check: FAIL ({len(self.violations)} "
                  f"violation(s) in {self.files_checked} files)")
            return 1
        print(f"tea_check: PASS ({self.files_checked} files, 3 rules)")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="tree to scan (contains src/)")
    ap.add_argument("-I", dest="include_dirs", action="append",
                    default=[], type=Path,
                    help="extra include dir (repeatable); the scanned "
                         "root's src/ is always included")
    ap.add_argument("--libclang", default=None,
                    help="explicit path to libclang.so")
    ap.add_argument("files", nargs="*", type=Path,
                    help="specific files to check (default: every "
                         "source file under --root)")
    args = ap.parse_args()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"tea_check: no src/ under {root}", file=sys.stderr)
        return 2

    try:
        cindex, index = load_libclang(args.libclang)
    except ImportError as e:
        print(f"tea_check: SKIP (python clang bindings missing: {e})")
        return SKIP
    except Exception as e:  # LibclangError, OSError
        print(f"tea_check: SKIP (libclang unavailable: {e})")
        return SKIP

    include_dirs = [root / "src"] + [p.resolve()
                                     for p in args.include_dirs]
    files = [p.resolve() for p in args.files] or \
        iter_source_files(root)
    checker = Checker(cindex, index, root, include_dirs)
    return checker.run(files)


if __name__ == "__main__":
    sys.exit(main())
