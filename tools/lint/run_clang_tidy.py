#!/usr/bin/env python3
"""Minimal run-clang-tidy: lint every translation unit under a source
root using the build tree's compile_commands.json, in parallel, failing
(exit 1) when any file produces diagnostics. Kept dependency-free so the
`lint` CMake target works with a bare clang-tidy install."""

from __future__ import annotations

import argparse
import concurrent.futures as futures
import json
import os
import subprocess
import sys
from pathlib import Path


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy executable")
    ap.add_argument("-p", dest="build_dir", required=True, type=Path,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--source-root", required=True, type=Path,
                    help="only lint files under this directory")
    ap.add_argument("-j", dest="jobs", type=int,
                    default=os.cpu_count() or 1)
    args = ap.parse_args()

    db = args.build_dir / "compile_commands.json"
    if not db.exists():
        print(f"lint: {db} not found (configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2

    root = args.source_root.resolve()
    files = sorted({str(Path(e["file"]).resolve())
                    for e in json.loads(db.read_text())
                    if str(Path(e["file"]).resolve()).startswith(
                        str(root))})
    if not files:
        print(f"lint: no translation units under {root}",
              file=sys.stderr)
        return 2

    def tidy(path: str) -> tuple[str, int, str]:
        r = subprocess.run(
            [args.clang_tidy, "-p", str(args.build_dir),
             "--quiet", "--warnings-as-errors=*", path],
            capture_output=True, text=True)
        return path, r.returncode, (r.stdout + r.stderr).strip()

    failures = 0
    with futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, code, output in pool.map(tidy, files):
            rel = os.path.relpath(path, root)
            if code != 0:
                failures += 1
                print(f"--- {rel}")
                if output:
                    print(output)
    if failures:
        print(f"lint: FAIL ({failures}/{len(files)} files with "
              "diagnostics)")
        return 1
    print(f"lint: PASS ({len(files)} translation units clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
