#!/usr/bin/env python3
"""Minimal run-clang-tidy: lint every translation unit under a source
root using the build tree's compile_commands.json, in parallel, failing
(exit 1) when any file produces diagnostics. Kept dependency-free so the
`lint` CMake target works with a bare clang-tidy install.

File discovery defers to lint_common (shared with tea_lint/tea_check):
compile_commands entries are intersected with the lintable file set, so
build-tree TUs and anything excluded there never get tidied here.

`--header-checks` runs a second clang-tidy pass per TU with only the
named checks enabled, keeping diagnostics located in header files.
.clang-tidy cannot scope a check to headers; this is where the
"misc-const-correctness, headers only" policy is implemented.
"""

from __future__ import annotations

import argparse
import concurrent.futures as futures
import json
import os
import re
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_common import iter_source_files  # noqa: E402

DIAG_RE = re.compile(r"^(/[^:]+):\d+:\d+: (?:warning|error): ")


def header_diags(output: str, root: str) -> str:
    """Keep only diagnostic blocks whose location is a header under
    `root` (a block is the diagnostic line plus its context lines)."""
    kept: list[str] = []
    keeping = False
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if m:
            loc = m.group(1)
            keeping = loc.endswith(".hh") and loc.startswith(root)
        if keeping:
            kept.append(line)
    return "\n".join(kept)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clang-tidy", default="clang-tidy",
                    help="clang-tidy executable")
    ap.add_argument("-p", dest="build_dir", required=True, type=Path,
                    help="build dir containing compile_commands.json")
    ap.add_argument("--source-root", required=True, type=Path,
                    help="only lint files under this directory")
    ap.add_argument("--header-checks", default="misc-const-correctness",
                    help="comma-separated checks run in a second pass "
                         "whose diagnostics are kept only when located "
                         "in .hh files (empty disables the pass)")
    ap.add_argument("-j", dest="jobs", type=int,
                    default=os.cpu_count() or 1)
    args = ap.parse_args()

    db = args.build_dir / "compile_commands.json"
    if not db.exists():
        print(f"lint: {db} not found (configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2

    root = args.source_root.resolve()
    repo = root.parent if root.name == "src" else root
    lintable = {str(p) for p in iter_source_files(repo)}
    files = sorted({str(Path(e["file"]).resolve())
                    for e in json.loads(db.read_text())
                    if str(Path(e["file"]).resolve()) in lintable})
    if not files:
        print(f"lint: no translation units under {root}",
              file=sys.stderr)
        return 2

    def tidy(path: str) -> tuple[str, int, str]:
        r = subprocess.run(
            [args.clang_tidy, "-p", str(args.build_dir),
             "--quiet", "--warnings-as-errors=*", path],
            capture_output=True, text=True)
        output = (r.stdout + r.stderr).strip()
        code = r.returncode
        if args.header_checks:
            # Second pass: header-scoped checks. clang-tidy only sees
            # headers through a TU, so run per-TU with header filtering
            # wide open and keep diagnostics that land in .hh files.
            h = subprocess.run(
                [args.clang_tidy, "-p", str(args.build_dir),
                 "--quiet", f"--checks=-*,{args.header_checks}",
                 "--header-filter=.*", path],
                capture_output=True, text=True)
            diags = header_diags(h.stdout + h.stderr, str(repo))
            if diags:
                code = code or 1
                output = (output + "\n" + diags).strip()
        return path, code, output

    failures = 0
    with futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, code, output in pool.map(tidy, files):
            rel = os.path.relpath(path, root)
            if code != 0:
                failures += 1
                print(f"--- {rel}")
                if output:
                    print(output)
    if failures:
        print(f"lint: FAIL ({failures}/{len(files)} files with "
              "diagnostics)")
        return 1
    print(f"lint: PASS ({len(files)} translation units clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
