#!/usr/bin/env python3
"""tea_lint: project-specific static rules for the TEA tree.

Seven rules, each enforcing an invariant the compiler cannot:

  naked-new          No naked `new` / `malloc`-family allocation in src/
                     outside allocator shims: ownership must be typed
                     (make_unique/make_shared/containers). Suppress a
                     deliberate use with `tea_lint: allow(naked-new)`.

  unchecked-io       In src/core/trace_io.cc every stdio/syscall result
                     (fwrite/fflush/fseek/fclose/fsync/rename/remove)
                     must be consumed: TraceWriter and CompactTraceWriter
                     error paths fatal-or-propagate, never drop. Suppress
                     a deliberately ignored result (e.g. cleanup on an
                     already-failed path) with
                     `tea_lint: allow(unchecked-io)`.

  codec-version-lock src/core/trace_codec.cc must pin its frame layout
                     with static_asserts that reference traceCodecVersion
                     and sizeof(ChunkFrameHeader), so any layout change
                     fails to compile until the codec version is bumped.

  enum-switch        Every switch over Event / TraceEventKind /
                     CommitState must name every enumerator and must not
                     use `default:` (which would mute -Wswitch when a
                     member is added). Suppress with
                     `tea_lint: allow(partial-switch)` on or just above
                     the switch.

  unguarded-worker   Every lambda handed to a std::thread (directly or
                     via emplace_back/push_back on a
                     std::vector<std::thread>) must contain a `catch`:
                     an exception escaping a thread body is
                     std::terminate, which turns a containable
                     per-experiment fault into process death. When the
                     body provably cannot throw (e.g. it only calls a
                     callee that catches internally), annotate the
                     spawn site with `tea_lint: allow(unguarded-worker)`
                     and say why in a comment.

  raw-sync           No raw `std::mutex` / `std::condition_variable` /
                     `std::lock_guard` / `std::unique_lock` /
                     `std::scoped_lock` in src/ outside
                     common/sync.hh: use tea::Mutex / tea::CondVar /
                     tea::MutexLock so Clang's thread-safety analysis
                     sees every lock (see DESIGN.md, "Compile-time
                     concurrency analysis"). Suppress with
                     `tea_lint: allow(raw-sync)`.

  hot-alloc          Inside functions annotated `// tea_lint: hot` in
                     src/core/ and src/profilers/, no heap allocation
                     may occur: no new/make_unique/make_shared/malloc,
                     and no push_back/emplace_back on a container that
                     is not `reserve()`d somewhere in the same file
                     (the fast-path contract: per-cycle work — and the
                     batched onBatch/add inner loops of the profilers —
                     runs entirely in pre-sized storage). Suppress a
                     deliberate cold-path allocation with
                     `tea_lint: allow(hot-alloc)`.

Exit status 0 when clean; 1 with `file:line: [rule] message` diagnostics
otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_common import iter_source_files  # noqa: E402

IO_CALLS = ("fwrite", "fflush", "fseek", "fclose", "fsync", "rename",
            "remove", "fputs", "fputc")

ENUMS = {
    "Event": Path("src/events/event.hh"),
    "CommitState": Path("src/events/event.hh"),
    "TraceEventKind": Path("src/core/trace_buffer.hh"),
}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents, preserving
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allows(raw_lines: list[str], lineno: int, tag: str,
           lookback: int = 2) -> bool:
    """True when an `tea_lint: allow(<tag>)` annotation covers
    1-based line `lineno` (same line or up to `lookback` lines above)."""
    needle = f"tea_lint: allow({tag})"
    lo = max(0, lineno - 1 - lookback)
    return any(needle in raw_lines[k] for k in range(lo, lineno))


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[str] = []
        self.files_checked = 0

    def violate(self, path: Path, lineno: int, rule: str, msg: str):
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")

    # --- rule: naked-new ------------------------------------------------

    NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # excludes placement-new `new (`
    ALLOC_RE = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")

    def check_allocations(self, path: Path, stripped: str,
                          raw_lines: list[str]):
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if self.NEW_RE.search(line):
                if not allows(raw_lines, lineno, "naked-new", lookback=0):
                    self.violate(path, lineno, "naked-new",
                                 "naked `new`: use make_unique/"
                                 "make_shared or annotate "
                                 "`tea_lint: allow(naked-new)`")
            m = self.ALLOC_RE.search(line)
            if m and not allows(raw_lines, lineno, "naked-new",
                                lookback=0):
                self.violate(path, lineno, "naked-new",
                             f"raw `{m.group(1)}()`: use typed "
                             "ownership or annotate "
                             "`tea_lint: allow(naked-new)`")

    # --- rule: unchecked-io ---------------------------------------------

    IO_STMT_RE = re.compile(
        r"^\s*(?:::|std::)?(" + "|".join(IO_CALLS) + r")\s*\(")

    def check_unchecked_io(self, path: Path, stripped: str,
                           raw_lines: list[str]):
        lines = stripped.splitlines()
        for lineno, line in enumerate(lines, 1):
            m = self.IO_STMT_RE.match(line)
            if not m:
                continue
            # Only statement-position calls: when the previous non-blank
            # line continues an expression (&&, ||, =, comma, open
            # paren), the result is being consumed.
            prev = ""
            for k in range(lineno - 2, -1, -1):
                if lines[k].strip():
                    prev = lines[k].strip()
                    break
            if prev and prev[-1] in "&|=,(<>+-?:":
                continue
            if allows(raw_lines, lineno, "unchecked-io"):
                continue
            self.violate(path, lineno, "unchecked-io",
                         f"result of {m.group(1)}() discarded: trace "
                         "writer error paths must fatal or propagate "
                         "(annotate `tea_lint: allow(unchecked-io)` "
                         "when ignoring is deliberate)")

    # --- rule: codec-version-lock ---------------------------------------

    def check_codec_lock(self, codec_cc: Path):
        text = codec_cc.read_text()
        asserts = [l for l in text.splitlines() if "static_assert" in l]
        joined = text
        ok_version = ("static_assert" in joined
                      and "traceCodecVersion" in "".join(asserts))
        ok_header = any("ChunkFrameHeader" in l for l in asserts)
        if not ok_version:
            self.violate(codec_cc, 1, "codec-version-lock",
                         "trace_codec.cc must static_assert the frame "
                         "layout against traceCodecVersion")
        if not ok_header:
            self.violate(codec_cc, 1, "codec-version-lock",
                         "trace_codec.cc must static_assert "
                         "sizeof(ChunkFrameHeader)")

    # --- rule: enum-switch ----------------------------------------------

    def parse_enum_members(self, header: Path, enum: str) -> list[str]:
        text = strip_comments_and_strings(header.read_text())
        m = re.search(
            r"enum\s+class\s+" + enum + r"\b[^{]*\{(.*?)\}\s*;",
            text, re.DOTALL)
        if not m:
            return []
        members = []
        for part in m.group(1).split(","):
            part = part.strip()
            if not part:
                continue
            name = part.split("=")[0].strip()
            if re.fullmatch(r"[A-Za-z_]\w*", name):
                members.append(name)
        return members

    def iter_switches(self, stripped: str):
        """Yield (lineno, body) for each switch block."""
        for m in re.finditer(r"\bswitch\s*\(", stripped):
            start = stripped.find("{", m.end())
            if start < 0:
                continue
            depth = 0
            for i in range(start, len(stripped)):
                if stripped[i] == "{":
                    depth += 1
                elif stripped[i] == "}":
                    depth -= 1
                    if depth == 0:
                        lineno = stripped.count("\n", 0, m.start()) + 1
                        yield lineno, stripped[start:i + 1]
                        break

    def check_enum_switches(self, path: Path, stripped: str,
                            raw_lines: list[str],
                            members: dict[str, list[str]]):
        for lineno, body in self.iter_switches(stripped):
            for enum, names in members.items():
                if f"case {enum}::" not in re.sub(r"\s+", " ", body):
                    continue
                if allows(raw_lines, lineno, "partial-switch"):
                    continue
                if re.search(r"\bdefault\s*:", body):
                    self.violate(path, lineno, "enum-switch",
                                 f"switch over {enum} uses `default:`, "
                                 "muting -Wswitch when a member is "
                                 "added; cover every enumerator "
                                 "instead")
                flat = re.sub(r"\s+", " ", body)
                missing = [n for n in names
                           if f"case {enum}::{n}" not in flat]
                if missing:
                    self.violate(path, lineno, "enum-switch",
                                 f"switch over {enum} misses "
                                 f"enumerator(s): {', '.join(missing)}")

    # --- rule: unguarded-worker ------------------------------------------

    THREAD_VEC_RE = re.compile(r"std::vector\s*<\s*std::thread\s*>\s*(\w+)")

    def check_worker_guards(self, path: Path, stripped: str,
                            raw_lines: list[str]):
        vec_names = set(self.THREAD_VEC_RE.findall(stripped))
        spawn_res = [re.compile(r"\bstd::thread\s*\w*\s*[({]\s*\[")]
        if vec_names:
            names = "|".join(re.escape(n) for n in vec_names)
            spawn_res.append(re.compile(
                r"\b(?:" + names + r")\s*\.\s*"
                r"(?:emplace_back|push_back)\s*\(\s*\["))
        for spawn_re in spawn_res:
            for m in spawn_re.finditer(stripped):
                lineno = stripped.count("\n", 0, m.start()) + 1
                body = self.lambda_body(stripped, m.end() - 1)
                if body is None or re.search(r"\bcatch\b", body):
                    continue
                if allows(raw_lines, lineno, "unguarded-worker"):
                    continue
                self.violate(path, lineno, "unguarded-worker",
                             "thread-body lambda has no catch: an "
                             "escaped exception is std::terminate; "
                             "contain it (or annotate `tea_lint: "
                             "allow(unguarded-worker)` when the body "
                             "cannot throw)")

    @staticmethod
    def lambda_body(stripped: str, capture_open: int) -> str | None:
        """Body of the lambda whose `[` is at `capture_open`, or None
        when no balanced `{...}` follows (e.g. a parse oddity)."""
        start = stripped.find("{", capture_open)
        if start < 0:
            return None
        depth = 0
        for i in range(start, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    return stripped[start:i + 1]
        return None

    # --- rule: raw-sync ---------------------------------------------------

    RAW_SYNC_RE = re.compile(
        r"\bstd::(mutex|condition_variable(?:_any)?|lock_guard|"
        r"unique_lock|scoped_lock|shared_mutex|shared_lock)\b")

    def check_raw_sync(self, path: Path, stripped: str,
                       raw_lines: list[str]):
        for lineno, line in enumerate(stripped.splitlines(), 1):
            m = self.RAW_SYNC_RE.search(line)
            if not m:
                continue
            if allows(raw_lines, lineno, "raw-sync"):
                continue
            self.violate(path, lineno, "raw-sync",
                         f"raw `std::{m.group(1)}`: use tea::Mutex/"
                         "CondVar/MutexLock from common/sync.hh so the "
                         "thread-safety analysis sees the lock "
                         "(annotate `tea_lint: allow(raw-sync)` when "
                         "the std type is genuinely required)")

    # --- rule: hot-alloc --------------------------------------------------

    HOT_NEW_RE = re.compile(
        r"\bnew\b|\b(?:std::)?(?:make_unique|make_shared)\s*<|"
        r"\b(?:malloc|calloc|realloc)\s*\(")
    HOT_PUSH_RE = re.compile(
        r"(\w+(?:\s*\[[^\]]*\])?)\s*(?:\.|->)\s*"
        r"(push_back|emplace_back)\s*\(")

    def hot_scopes(self, stripped: str, raw_lines: list[str]):
        """Yield (start_line, end_line) 1-based inclusive spans of the
        function bodies annotated `// tea_lint: hot` (the annotation
        sits on the line above the function's return type)."""
        offsets = [0]
        for line in stripped.splitlines():
            offsets.append(offsets[-1] + len(line) + 1)
        for idx, raw in enumerate(raw_lines):
            if "tea_lint: hot" not in raw or "allow(" in raw:
                continue
            pos = offsets[idx + 1] if idx + 1 < len(offsets) else None
            if pos is None:
                continue
            start = stripped.find("{", pos)
            if start < 0:
                continue
            depth = 0
            for i in range(start, len(stripped)):
                if stripped[i] == "{":
                    depth += 1
                elif stripped[i] == "}":
                    depth -= 1
                    if depth == 0:
                        yield (stripped.count("\n", 0, start) + 1,
                               stripped.count("\n", 0, i) + 1)
                        break

    def check_hot_alloc(self, path: Path, stripped: str,
                        raw_lines: list[str]):
        lines = stripped.splitlines()
        for lo, hi in self.hot_scopes(stripped, raw_lines):
            for lineno in range(lo, hi + 1):
                line = lines[lineno - 1]
                if self.HOT_NEW_RE.search(line):
                    if not allows(raw_lines, lineno, "hot-alloc"):
                        self.violate(
                            path, lineno, "hot-alloc",
                            "heap allocation in a `tea_lint: hot` "
                            "scope: hoist it to init()/setup or "
                            "annotate `tea_lint: allow(hot-alloc)`")
                    continue
                for m in self.HOT_PUSH_RE.finditer(line):
                    name = re.sub(r"\s*\[[^\]]*\]", "", m.group(1))
                    reserve_re = (re.escape(name) +
                                  r"(?:\s*\[[^\]]*\])?\s*\.\s*reserve\s*\(")
                    if re.search(reserve_re, stripped):
                        continue
                    if allows(raw_lines, lineno, "hot-alloc"):
                        continue
                    self.violate(
                        path, lineno, "hot-alloc",
                        f"`{name}.{m.group(2)}()` in a `tea_lint: hot` "
                        f"scope but `{name}` is never reserve()d in "
                        "this file: pre-size it or annotate "
                        "`tea_lint: allow(hot-alloc)`")

    # --- driver ----------------------------------------------------------

    def run(self) -> int:
        members = {e: self.parse_enum_members(self.root / h, e)
                   for e, h in ENUMS.items()}
        for enum, names in members.items():
            if not names:
                self.violate(self.root / ENUMS[enum], 1, "enum-switch",
                             f"could not parse members of enum {enum}")
        codec_cc = self.root / "src" / "core" / "trace_codec.cc"
        if codec_cc.exists():
            self.check_codec_lock(codec_cc)
        else:
            self.violate(self.root, 1, "codec-version-lock",
                         "src/core/trace_codec.cc is missing")
        for path in iter_source_files(self.root):
            self.files_checked += 1
            raw = path.read_text()
            raw_lines = raw.splitlines()
            stripped = strip_comments_and_strings(raw)
            self.check_allocations(path, stripped, raw_lines)
            if path.name == "trace_io.cc":
                self.check_unchecked_io(path, stripped, raw_lines)
            self.check_enum_switches(path, stripped, raw_lines, members)
            self.check_worker_guards(path, stripped, raw_lines)
            if path.name != "sync.hh":
                self.check_raw_sync(path, stripped, raw_lines)
            if path.parent.name in ("core", "profilers"):
                self.check_hot_alloc(path, stripped, raw_lines)

        if self.violations:
            for v in self.violations:
                print(v)
            print(f"tea_lint: FAIL ({len(self.violations)} violation(s) "
                  f"in {self.files_checked} files)")
            return 1
        print(f"tea_lint: PASS ({self.files_checked} files, 7 rules)")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (contains src/)")
    args = ap.parse_args()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"tea_lint: no src/ under {root}", file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
