/**
 * @file
 * Command-line front end for the declarative sweep engine
 * (analysis/sweep). Starts from a checked-in sweep (--example, the
 * default, or --smoke) and lets every part of the spec be overridden
 * from the command line: presets, axes, and base-spec parameters. The
 * expansion can be listed without running (--list); a run prints the
 * per-sweep PICS comparison report and exits non-zero if any
 * experiment degraded.
 *
 * Usage:
 *   sweep_cli [--example | --smoke]
 *             [--name NAME]              sweep name (report/experiment prefix)
 *             [--preset NAME]...         replace the preset list
 *             [--axis PARAM=V1,V2,...]...  replace/add an axis
 *             [--base PARAM=VALUE]...    set a base KernelSpec parameter
 *             [--threads N]              override TEA_THREADS
 *             [--report FILE]            also write the report to FILE
 *             [--list]                   print the expansion, don't run
 *
 * Kernel parameters (for --axis/--base): seed, iterations, level,
 * footprint, stride, dependent, loads, branches, taken, chain, chains,
 * targets. Presets: see `--help` output (presets::names).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/sweep.hh"
#include "common/fingerprint.hh"
#include "common/logging.hh"

using namespace tea;

namespace {

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: sweep_cli [--example|--smoke] [--name NAME]\n"
        "                 [--preset NAME]... [--axis PARAM=V1,V2,...]...\n"
        "                 [--base PARAM=VALUE]... [--threads N]\n"
        "                 [--report FILE] [--list]\n"
        "\n"
        "kernel parameters: seed, iterations, level, footprint, stride,\n"
        "                   dependent, loads, branches, taken, chain,\n"
        "                   chains, targets\n"
        "presets:",
        to);
    for (const std::string &n : presets::names())
        std::fprintf(to, " %s", n.c_str());
    std::fputs("\n", to);
}

/** Split "param=rest" (fatal without '='). */
std::pair<std::string, std::string>
splitEq(const std::string &arg, const char *what)
{
    std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        tea_fatal("sweep_cli: %s wants PARAM=VALUE, got '%s'", what,
                  arg.c_str());
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepSpec spec = exampleSweep();
    bool presetsReplaced = false;
    bool axesReplaced = false;
    bool list = false;
    std::string reportPath;
    RunnerOptions opts = RunnerOptions::fromEnv();

    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            tea_fatal("sweep_cli: %s needs an argument", flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--example") {
            spec = exampleSweep();
        } else if (arg == "--smoke") {
            spec = smokeSweep();
        } else if (arg == "--name") {
            spec.name = next(i, "--name");
        } else if (arg == "--preset") {
            if (!presetsReplaced)
                spec.presets.clear();
            presetsReplaced = true;
            spec.presets.push_back(next(i, "--preset"));
        } else if (arg == "--axis") {
            if (!axesReplaced)
                spec.axes.clear();
            axesReplaced = true;
            auto [param, values] = splitEq(next(i, "--axis"), "--axis");
            spec.axes.push_back(SweepAxis{param, splitCommas(values)});
        } else if (arg == "--base") {
            auto [param, value] = splitEq(next(i, "--base"), "--base");
            applyKernelParam(spec.base, param, value);
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(
                std::strtoul(next(i, "--threads").c_str(), nullptr, 10));
        } else if (arg == "--report") {
            reportPath = next(i, "--report");
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "sweep_cli: unknown flag '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (list) {
        const std::vector<SweepExperiment> exps = expandSweep(spec);
        for (const SweepExperiment &e : exps) {
            std::printf("%s\n    %s\n", e.name.c_str(),
                        workloads::canonicalKernelName(e.spec).c_str());
        }
        std::printf("%zu experiment(s), expansion fingerprint %s\n",
                    exps.size(),
                    hashHex(sweepExpansionFingerprint(exps)).c_str());
        return 0;
    }

    SweepRunResult run = runSweep(spec, standardTechniques(), opts);
    const std::string report = renderSweepReport(run);
    std::fputs(report.c_str(), stdout);

    if (!reportPath.empty()) {
        if (std::FILE *f = std::fopen(reportPath.c_str(), "w")) {
            std::fputs(report.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "sweep_cli: cannot write %s\n",
                         reportPath.c_str());
            return 1;
        }
    }
    return suiteExitCode(run.results);
}
