/**
 * @file
 * Operator's view of a trace-cache directory (analysis/trace_cache,
 * analysis/cache_janitor). Everything the runner does implicitly —
 * recovery GC, budget eviction, entry validation — exposed as explicit
 * commands for inspection, CI smoke checks and manual cleanup:
 *
 *   teacachectl [--dir DIR] stats    one-line accounting summary
 *   teacachectl [--dir DIR] scan     per-file listing with classification
 *   teacachectl [--dir DIR] gc       full janitor pass (env budgets)
 *   teacachectl [--dir DIR] evict --max-bytes N
 *                                    budget-only pass with an explicit cap
 *   teacachectl [--dir DIR] verify [--quarantine]
 *                                    validate every entry end to end;
 *                                    exits 1 when any entry is damaged
 *
 * DIR defaults to the runner's own resolution: TEA_TRACE_CACHE_DIR,
 * else ${TMPDIR:-/tmp}/tea-trace-cache. Janitor budgets come from the
 * same environment variables the runner reads (JanitorConfig::fromEnv:
 * TEA_TRACE_CACHE_MAX_BYTES, TEA_CACHE_QUARANTINE_MAX,
 * TEA_CACHE_QUARANTINE_MAX_AGE_S, TEA_CACHE_ORPHAN_MAX_AGE_S).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/cache_janitor.hh"
#include "analysis/trace_cache.hh"
#include "common/logging.hh"

using namespace tea;

namespace {

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: teacachectl [--dir DIR] <command>\n"
        "\n"
        "commands:\n"
        "  stats                   one-line cache accounting\n"
        "  scan                    list every cache file, classified\n"
        "  gc                      janitor pass with env budgets\n"
        "  evict --max-bytes N     janitor pass with an explicit byte cap\n"
        "  verify [--quarantine]   validate every entry; exit 1 on damage\n"
        "\n"
        "DIR defaults to TEA_TRACE_CACHE_DIR, else\n"
        "${TMPDIR:-/tmp}/tea-trace-cache. Budgets come from\n"
        "TEA_TRACE_CACHE_MAX_BYTES, TEA_CACHE_QUARANTINE_MAX,\n"
        "TEA_CACHE_QUARANTINE_MAX_AGE_S and TEA_CACHE_ORPHAN_MAX_AGE_S.\n",
        to);
}

/** The directory the runner itself would use under this environment. */
std::string
defaultDir()
{
    TraceCacheOptions opts = TraceCacheOptions::fromEnv();
    if (!opts.dir.empty())
        return opts.dir;
    // Caching disabled in the environment: still resolve the default
    // location so `teacachectl stats` works without TEA_TRACE_CACHE=1.
    const char *tmp = std::getenv("TMPDIR");
    std::string base =
        (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    if (base.back() == '/')
        base.pop_back();
    return base + "/tea-trace-cache";
}

void
listFiles(const char *label, const std::vector<CacheFileInfo> &files)
{
    for (const CacheFileInfo &f : files)
        std::printf("%-10s %12llu  %s\n", label,
                    static_cast<unsigned long long>(f.bytes),
                    f.path.c_str());
}

int
cmdStats(const std::string &dir)
{
    CacheScan scan = scanCacheDir(dir);
    std::printf("%s: %zu entr%s (%llu bytes), %zu tmp, %zu lock(s), "
                "%zu quarantined, %llu bytes total\n",
                dir.c_str(), scan.entries.size(),
                scan.entries.size() == 1 ? "y" : "ies",
                static_cast<unsigned long long>(scan.entryBytes),
                scan.tmpFiles.size(), scan.lockFiles.size(),
                scan.quarantine.size(),
                static_cast<unsigned long long>(scan.totalBytes));
    return 0;
}

int
cmdScan(const std::string &dir)
{
    CacheScan scan = scanCacheDir(dir);
    listFiles("entry", scan.entries);
    listFiles("tmp", scan.tmpFiles);
    listFiles("lock", scan.lockFiles);
    listFiles("quarantine", scan.quarantine);
    listFiles("reason", scan.reasons);
    return 0;
}

int
runJanitor(const std::string &dir, const JanitorConfig &cfg)
{
    JanitorStats stats = CacheJanitor(dir, cfg).gc();
    if (stats.lockBusy) {
        std::fprintf(stderr,
                     "teacachectl: %s is being cleaned by another "
                     "process; nothing done\n",
                     CacheJanitor::lockPathFor(dir).c_str());
        return 1;
    }
    std::printf("%s: scanned %llu entr%s (%llu bytes); evicted %llu "
                "(%llu bytes); removed %llu tmp, %llu lock(s), %llu "
                "quarantine file(s)\n",
                dir.c_str(),
                static_cast<unsigned long long>(stats.scannedEntries),
                stats.scannedEntries == 1 ? "y" : "ies",
                static_cast<unsigned long long>(stats.scannedBytes),
                static_cast<unsigned long long>(stats.evictedEntries),
                static_cast<unsigned long long>(stats.evictedBytes),
                static_cast<unsigned long long>(stats.removedTmp),
                static_cast<unsigned long long>(stats.removedLocks),
                static_cast<unsigned long long>(
                    stats.removedQuarantine));
    return 0;
}

int
cmdVerify(const std::string &dir, bool quarantine)
{
    CacheVerifyReport report = verifyCacheDir(dir, quarantine);
    for (const std::string &d : report.damagedPaths)
        std::fprintf(stderr, "teacachectl: DAMAGED %s\n", d.c_str());
    std::printf("%s: %llu entr%s checked, %llu healthy, %llu damaged%s\n",
                dir.c_str(),
                static_cast<unsigned long long>(report.checked),
                report.checked == 1 ? "y" : "ies",
                static_cast<unsigned long long>(report.healthy),
                static_cast<unsigned long long>(report.damaged),
                quarantine && report.damaged > 0 ? " (quarantined)"
                                                 : "");
    return report.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string command;
    std::uint64_t evict_max = 0;
    bool have_evict_max = false;
    bool quarantine = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--dir") {
            if (++i >= argc)
                tea_fatal("--dir needs a value");
            dir = argv[i];
        } else if (arg == "--max-bytes") {
            if (++i >= argc)
                tea_fatal("--max-bytes needs a value");
            char *end = nullptr;
            evict_max = std::strtoull(argv[i], &end, 10);
            if (*argv[i] == '\0' || *end != '\0')
                tea_fatal("--max-bytes wants an integer, got \"%s\"",
                          argv[i]);
            have_evict_max = true;
        } else if (arg == "--quarantine") {
            quarantine = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(stderr);
            tea_fatal("unknown option \"%s\"", arg.c_str());
        } else if (command.empty()) {
            command = arg;
        } else {
            usage(stderr);
            tea_fatal("unexpected argument \"%s\"", arg.c_str());
        }
    }
    if (command.empty()) {
        usage(stderr);
        return 2;
    }
    if (dir.empty())
        dir = defaultDir();

    if (command == "stats")
        return cmdStats(dir);
    if (command == "scan")
        return cmdScan(dir);
    if (command == "gc")
        return runJanitor(dir, JanitorConfig::fromEnv());
    if (command == "evict") {
        if (!have_evict_max)
            tea_fatal("evict needs --max-bytes N");
        JanitorConfig cfg = JanitorConfig::fromEnv();
        cfg.maxBytes = evict_max;
        return runJanitor(dir, cfg);
    }
    if (command == "verify")
        return cmdVerify(dir, quarantine);

    usage(stderr);
    tea_fatal("unknown command \"%s\"", command.c_str());
}
