/**
 * @file
 * Persistent trace cache tests: codec round-trip fidelity, on-disk
 * validation (corruption, truncation, stale fingerprints must never
 * crash or poison a run — they fall back to simulation), and the
 * headline guarantee that a cache-hit replay is bit-identical to a
 * direct simulation at any thread count.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "analysis/trace_cache.hh"
#include "common/rng.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"
#include "core/trace_io.hh"
#include "profilers/golden.hh"
#include "profilers/pics.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

std::vector<PicsComponent>
sortedComponents(const Pics &p)
{
    std::vector<PicsComponent> cs = p.components();
    std::sort(cs.begin(), cs.end(),
              [](const PicsComponent &a, const PicsComponent &b) {
                  return a.unit != b.unit ? a.unit < b.unit
                                          : a.signature < b.signature;
              });
    return cs;
}

/** Assert two Pics are bit-identical (exact doubles, same cells). */
void
expectPicsIdentical(const Pics &a, const Pics &b)
{
    EXPECT_EQ(a.total(), b.total()); // exact, not approximate
    std::vector<PicsComponent> ca = sortedComponents(a);
    std::vector<PicsComponent> cb = sortedComponents(b);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].unit, cb[i].unit);
        EXPECT_EQ(ca[i].signature, cb[i].signature);
        EXPECT_EQ(ca[i].cycles, cb[i].cycles);
    }
}

/** Assert two experiment results are equivalent to the last bit. */
void
expectExperimentsIdentical(const ExperimentResult &ref,
                           const ExperimentResult &got)
{
    expectPicsIdentical(ref.golden->pics(), got.golden->pics());
    EXPECT_EQ(ref.golden->eventCounts().size(),
              got.golden->eventCounts().size());
    ASSERT_EQ(ref.techniques.size(), got.techniques.size());
    for (std::size_t i = 0; i < ref.techniques.size(); ++i) {
        const TechniqueResult &s = ref.techniques[i];
        const TechniqueResult &p = got.techniques[i];
        SCOPED_TRACE(s.config.name);
        EXPECT_EQ(s.samplesTaken, p.samplesTaken);
        EXPECT_EQ(s.samplesDropped, p.samplesDropped);
        expectPicsIdentical(s.pics, p.pics);
        EXPECT_EQ(ref.errorOf(s), got.errorOf(p));
        EXPECT_EQ(ref.errorOf(s, Granularity::Function),
                  got.errorOf(p, Granularity::Function));
    }
}

/** A scratch cache directory removed (recursively) on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
    {
        char tmpl[] = "/tmp/tea-trace-cache-test-XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : "";
    }

    ~TempCacheDir()
    {
        if (!dir_.empty())
            removeTree(dir_);
    }

    const std::string &path() const { return dir_; }

    /**
     * Cache entries (*.teatrc) currently in the directory, unsorted.
     * Lock files and the quarantine subdirectory are bookkeeping, not
     * entries, and are excluded.
     */
    std::vector<std::string> entries() const
    {
        std::vector<std::string> out;
        for (const std::string &name : list(dir_)) {
            if (name.size() > 7 &&
                name.compare(name.size() - 7, 7, ".teatrc") == 0)
                out.push_back(name);
        }
        return out;
    }

    /** All names in @p sub (relative to the cache dir; "" = root). */
    std::vector<std::string> listDir(const std::string &sub = "") const
    {
        return list(sub.empty() ? dir_ : dir_ + "/" + sub);
    }

  private:
    static std::vector<std::string> list(const std::string &at)
    {
        std::vector<std::string> out;
        if (DIR *d = ::opendir(at.c_str())) {
            while (struct dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    out.push_back(name);
            }
            ::closedir(d);
        }
        return out;
    }

    static void removeTree(const std::string &at)
    {
        for (const std::string &name : list(at)) {
            const std::string full = at + "/" + name;
            struct ::stat st{};
            if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeTree(full);
            else
                std::remove(full.c_str());
        }
        ::rmdir(at.c_str());
    }

    std::string dir_;
};

RunnerOptions
cachedOptions(const TempCacheDir &dir, unsigned threads = 1)
{
    RunnerOptions o;
    o.threads = threads;
    o.cache.enabled = true;
    o.cache.dir = dir.path();
    return o;
}

/** Pseudo-random but structurally valid trace event stream. */
std::vector<TraceEvent>
randomEvents(Rng &rng, std::size_t count)
{
    std::vector<TraceEvent> events;
    events.reserve(count);
    Cycle cycle = 0;
    SeqNum seq = 1;
    for (std::size_t i = 0; i < count; ++i) {
        TraceEvent ev;
        switch (rng.below(5)) {
          case 0: {
            ev.kind = TraceEventKind::Cycle;
            ev.p.cycle = CycleRecord{};
            CycleRecord &c = ev.p.cycle;
            cycle += rng.range(1, 5);
            c.cycle = cycle;
            c.state = static_cast<CommitState>(rng.below(4));
            c.numCommitted =
                c.state == CommitState::Compute
                    ? static_cast<std::uint8_t>(rng.range(1, 8))
                    : 0;
            for (unsigned u = 0; u < c.numCommitted; ++u) {
                c.committed[u].seq = seq++;
                c.committed[u].pc =
                    static_cast<InstIndex>(rng.below(4096));
                c.committed[u].psv =
                    Psv(static_cast<std::uint16_t>(rng.below(512)));
            }
            c.headValid = c.state == CommitState::Stalled;
            if (c.headValid) {
                c.headSeq = seq + rng.below(16);
                c.headPc = static_cast<InstIndex>(rng.below(4096));
            }
            c.lastValid = rng.chance(0.9);
            if (c.lastValid) {
                c.lastPc = static_cast<InstIndex>(rng.below(4096));
                c.lastPsv =
                    Psv(static_cast<std::uint16_t>(rng.below(512)));
            }
            break;
          }
          case 1:
            ev.kind = TraceEventKind::Dispatch;
            ev.p.uop = UopRecord{seq++,
                                 static_cast<InstIndex>(rng.below(4096)),
                                 cycle};
            break;
          case 2:
            ev.kind = TraceEventKind::Fetch;
            ev.p.uop = UopRecord{seq++,
                                 static_cast<InstIndex>(rng.below(4096)),
                                 cycle};
            break;
          case 3:
            ev.kind = TraceEventKind::Retire;
            ev.p.retire = RetireRecord{
                seq++, static_cast<InstIndex>(rng.below(4096)),
                Psv(static_cast<std::uint16_t>(rng.below(512))), cycle};
            break;
          default:
            ev.kind = TraceEventKind::End;
            ev.p.end = cycle;
            break;
        }
        events.push_back(ev);
    }
    return events;
}

/** Encode → decode must reproduce an observer-equivalent chunk. */
void
expectRoundTrips(const TraceChunk &chunk)
{
    std::vector<std::uint8_t> frame;
    encodeChunk(chunk, frame);

    std::string why;
    ASSERT_TRUE(verifyFrame(frame.data(), frame.size(), &why)) << why;

    TraceChunk back;
    std::size_t consumed = 0;
    ASSERT_TRUE(
        decodeChunk(frame.data(), frame.size(), back, &consumed, &why))
        << why;
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(back.cycleRecords, chunk.cycleRecords);
    ASSERT_EQ(back.events.size(), chunk.events.size());
    for (std::size_t i = 0; i < chunk.events.size(); ++i) {
        EXPECT_TRUE(eventsEquivalent(chunk.events[i], back.events[i]))
            << "event " << i << " kind "
            << static_cast<int>(chunk.events[i].kind);
    }
}

} // namespace

TEST(TraceCodec, RandomStreamsRoundTripBitIdentical)
{
    Rng rng(0xc0dec);
    for (unsigned round = 0; round < 20; ++round) {
        SCOPED_TRACE(round);
        TraceChunk chunk;
        chunk.events = randomEvents(rng, rng.range(1, 3000));
        for (const TraceEvent &ev : chunk.events) {
            if (ev.kind == TraceEventKind::Cycle)
                ++chunk.cycleRecords;
        }
        expectRoundTrips(chunk);
    }
}

TEST(TraceCodec, RealTraceRoundTrips)
{
    Workload w = workloads::orderingViolator(500);
    TraceBuffer buf(512);
    CoreRun run = makeCore(std::move(w));
    run->addSink(&buf);
    run->run();
    buf.finish();

    ASSERT_FALSE(buf.chunks().empty());
    for (const TraceChunkPtr &chunk : buf.chunks())
        expectRoundTrips(*chunk);
}

TEST(TraceCodec, EmptyChunkRoundTrips)
{
    TraceChunk chunk;
    expectRoundTrips(chunk);
}

TEST(TraceCodec, DecodeRejectsCorruptedFrames)
{
    Rng rng(7);
    TraceChunk chunk;
    chunk.events = randomEvents(rng, 500);
    for (const TraceEvent &ev : chunk.events) {
        if (ev.kind == TraceEventKind::Cycle)
            ++chunk.cycleRecords;
    }
    std::vector<std::uint8_t> frame;
    encodeChunk(chunk, frame);

    // Flipping any single byte must fail CRC verification (sampled).
    for (std::size_t at = 0; at < frame.size();
         at += std::max<std::size_t>(1, frame.size() / 37)) {
        std::vector<std::uint8_t> bad = frame;
        bad[at] ^= 0x40;
        std::string why;
        EXPECT_FALSE(verifyFrame(bad.data(), bad.size(), &why))
            << "flip at " << at << " not detected";
    }

    // Truncation at any point must be rejected, never read past end.
    for (std::size_t keep : {std::size_t{0}, std::size_t{3},
                             frame.size() / 2, frame.size() - 1}) {
        std::string why;
        EXPECT_FALSE(verifyFrame(frame.data(), keep, &why));
    }
}

TEST(TraceCacheFile, WriteThenMapReplaysIdentically)
{
    TempCacheDir dir;
    const std::string path = dir.path() + "/entry.teatrc";
    const std::uint64_t fp = 0x1234abcd5678ef00ULL;

    // Record a real trace both into memory and through the writer.
    TraceBuffer buf(256);
    Workload w = workloads::pointerChase(64, 20, 4096);
    CoreRun run = makeCore(std::move(w));
    run->addSink(&buf);
    run->run();
    buf.finish();

    CompactTraceWriter writer(path, fp);
    ASSERT_TRUE(writer.active());
    for (const TraceChunkPtr &chunk : buf.chunks())
        writer.writeChunk(*chunk);
    ASSERT_TRUE(writer.commit(run->stats()));

    std::string why;
    auto mapped = MappedTraceFile::open(path, fp, &why);
    ASSERT_NE(mapped, nullptr) << why;
    EXPECT_EQ(mapped->chunkCount(), buf.chunks().size());
    EXPECT_EQ(mapped->coreStats().cycles, run->stats().cycles);
    EXPECT_EQ(mapped->coreStats().committedUops,
              run->stats().committedUops);

    std::size_t i = 0;
    while (TraceChunkPtr c = mapped->nextChunk()) {
        ASSERT_LT(i, buf.chunks().size());
        const TraceChunk &orig = *buf.chunks()[i];
        ASSERT_EQ(c->events.size(), orig.events.size());
        for (std::size_t e = 0; e < orig.events.size(); ++e)
            EXPECT_TRUE(eventsEquivalent(orig.events[e], c->events[e]));
        ++i;
    }
    EXPECT_EQ(i, buf.chunks().size());
}

TEST(TraceCacheFile, OpenRejectsDamage)
{
    TempCacheDir dir;
    const std::string path = dir.path() + "/entry.teatrc";
    const std::uint64_t fp = 42;

    TraceBuffer buf(256);
    CoreRun run = makeCore(workloads::aluLoop(300));
    run->addSink(&buf);
    run->run();
    buf.finish();

    CompactTraceWriter writer(path, fp);
    for (const TraceChunkPtr &chunk : buf.chunks())
        writer.writeChunk(*chunk);
    ASSERT_TRUE(writer.commit(run->stats()));

    struct ::stat st{};
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    std::vector<char> original(static_cast<std::size_t>(st.st_size));
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fread(original.data(), 1, original.size(), f),
                  original.size());
        std::fclose(f);
    }
    auto rewrite = [&](const std::vector<char> &bytes) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        // data() of an empty vector may be null, which fwrite's nonnull
        // contract forbids even for a zero-byte write.
        if (!bytes.empty()) {
            ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
    };

    // Pristine file opens.
    std::string why;
    EXPECT_NE(MappedTraceFile::open(path, fp, &why), nullptr) << why;

    // Wrong fingerprint (stale workload/config) is rejected.
    EXPECT_EQ(MappedTraceFile::open(path, fp + 1, &why), nullptr);
    EXPECT_NE(why.find("fingerprint"), std::string::npos) << why;

    // A flipped byte anywhere — header, stats or payload — is rejected.
    for (std::size_t at : {std::size_t{9}, std::size_t{70},
                           original.size() / 2, original.size() - 2}) {
        std::vector<char> bad = original;
        bad[at] ^= 0x01;
        rewrite(bad);
        EXPECT_EQ(MappedTraceFile::open(path, fp, &why), nullptr)
            << "corruption at byte " << at << " not detected";
    }

    // Truncations are rejected.
    for (std::size_t keep : {std::size_t{0}, std::size_t{10},
                             original.size() / 2, original.size() - 1}) {
        std::vector<char> bad(original.begin(),
                              original.begin() +
                                  static_cast<std::ptrdiff_t>(keep));
        rewrite(bad);
        EXPECT_EQ(MappedTraceFile::open(path, fp, &why), nullptr)
            << "truncation to " << keep << " bytes not detected";
    }
}

TEST(TraceCache, MissThenHitIsBitIdenticalAcrossThreads)
{
    TempCacheDir dir;
    const std::string name = "exchange2";

    // Reference: the historical serial path, cache off.
    ExperimentResult direct =
        runBenchmark(name, standardTechniques(), RunnerOptions{});
    EXPECT_FALSE(direct.replay.cacheHit);

    // Cold run populates the cache (still simulating).
    ExperimentResult cold =
        runBenchmark(name, standardTechniques(), cachedOptions(dir));
    EXPECT_FALSE(cold.replay.cacheHit);
    EXPECT_TRUE(cold.replay.cacheStored);
    EXPECT_GT(cold.replay.cacheBytes, 0u);
    EXPECT_EQ(direct.stats.cycles, cold.stats.cycles);
    expectExperimentsIdentical(direct, cold);

    // Warm runs replay from disk — serial and parallel.
    for (unsigned threads : {1u, 8u}) {
        SCOPED_TRACE(threads);
        ExperimentResult warm = runBenchmark(
            name, standardTechniques(), cachedOptions(dir, threads));
        EXPECT_TRUE(warm.replay.cacheHit);
        EXPECT_EQ(direct.stats.cycles, warm.stats.cycles);
        EXPECT_EQ(direct.stats.committedUops, warm.stats.committedUops);
        EXPECT_EQ(direct.stats.branchMispredicts,
                  warm.stats.branchMispredicts);
        expectExperimentsIdentical(direct, warm);
    }
}

TEST(TraceCache, DifferentConfigsKeepDistinctEntries)
{
    TempCacheDir dir;
    CoreConfig a;
    CoreConfig b;
    b.robEntries = 32; // small window: measurably different timing

    ExperimentResult ra =
        runBenchmark("mcf", {teaConfig()}, cachedOptions(dir), a);
    ExperimentResult rb =
        runBenchmark("mcf", {teaConfig()}, cachedOptions(dir), b);
    EXPECT_FALSE(ra.replay.cacheHit);
    EXPECT_FALSE(rb.replay.cacheHit);
    EXPECT_EQ(dir.entries().size(), 2u);
    EXPECT_NE(ra.stats.cycles, rb.stats.cycles);

    // Each config hits its own entry and reproduces its own result.
    ExperimentResult ha =
        runBenchmark("mcf", {teaConfig()}, cachedOptions(dir), a);
    ExperimentResult hb =
        runBenchmark("mcf", {teaConfig()}, cachedOptions(dir), b);
    EXPECT_TRUE(ha.replay.cacheHit);
    EXPECT_TRUE(hb.replay.cacheHit);
    EXPECT_EQ(ha.stats.cycles, ra.stats.cycles);
    EXPECT_EQ(hb.stats.cycles, rb.stats.cycles);
}

TEST(TraceCache, CorruptEntryFallsBackAndRewrites)
{
    TempCacheDir dir;
    ExperimentResult cold =
        runBenchmark("nab", {teaConfig()}, cachedOptions(dir));
    EXPECT_TRUE(cold.replay.cacheStored);

    std::vector<std::string> entries = dir.entries();
    ASSERT_EQ(entries.size(), 1u);
    const std::string path = dir.path() + "/" + entries[0];

    // Corrupt one payload byte in place.
    {
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }

    // The damaged entry must not crash or poison the run: it simulates,
    // matches the clean result, and rewrites the entry atomically.
    ExperimentResult again =
        runBenchmark("nab", {teaConfig()}, cachedOptions(dir));
    EXPECT_FALSE(again.replay.cacheHit);
    EXPECT_TRUE(again.replay.cacheStored);
    EXPECT_EQ(again.stats.cycles, cold.stats.cycles);
    expectPicsIdentical(cold.golden->pics(), again.golden->pics());

    // ...after which the rewritten entry hits again.
    ExperimentResult warm =
        runBenchmark("nab", {teaConfig()}, cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit);
    EXPECT_EQ(warm.stats.cycles, cold.stats.cycles);
}

TEST(TraceCache, SuiteRunnerSharesTheCache)
{
    TempCacheDir dir;
    std::vector<std::string> names = {"exchange2", "mcf"};
    RunnerOptions opts = cachedOptions(dir, 4);

    std::vector<ExperimentResult> cold =
        runBenchmarkSuite(names, {teaConfig()}, opts);
    std::vector<ExperimentResult> warm =
        runBenchmarkSuite(names, {teaConfig()}, opts);
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        SCOPED_TRACE(names[i]);
        EXPECT_FALSE(cold[i].replay.cacheHit);
        EXPECT_TRUE(warm[i].replay.cacheHit);
        EXPECT_EQ(cold[i].stats.cycles, warm[i].stats.cycles);
        expectPicsIdentical(cold[i].golden->pics(),
                            warm[i].golden->pics());
    }
}

TEST(TraceCacheOptionsEnv, ParsesControls)
{
    ::unsetenv("TEA_TRACE_CACHE");
    ::unsetenv("TEA_TRACE_CACHE_DIR");
    EXPECT_FALSE(TraceCacheOptions::fromEnv().enabled);

    ::setenv("TEA_TRACE_CACHE_DIR", "/some/dir", 1);
    TraceCacheOptions with_dir = TraceCacheOptions::fromEnv();
    EXPECT_TRUE(with_dir.enabled);
    EXPECT_EQ(with_dir.dir, "/some/dir");

    ::setenv("TEA_TRACE_CACHE", "0", 1);
    EXPECT_FALSE(TraceCacheOptions::fromEnv().enabled);

    ::unsetenv("TEA_TRACE_CACHE_DIR");
    ::setenv("TEA_TRACE_CACHE", "1", 1);
    TraceCacheOptions dflt = TraceCacheOptions::fromEnv();
    EXPECT_TRUE(dflt.enabled);
    EXPECT_FALSE(dflt.dir.empty());
    ::unsetenv("TEA_TRACE_CACHE");
}

TEST(TraceCacheFingerprint, SensitiveToWorkloadAndConfig)
{
    CoreConfig cfg;
    Workload a = workloads::aluLoop(100);
    Workload b = workloads::aluLoop(101);
    EXPECT_EQ(TraceCache::fingerprintOf(a, cfg),
              TraceCache::fingerprintOf(workloads::aluLoop(100), cfg));
    EXPECT_NE(TraceCache::fingerprintOf(a, cfg),
              TraceCache::fingerprintOf(b, cfg));

    CoreConfig other;
    other.robEntries += 1;
    EXPECT_NE(TraceCache::fingerprintOf(a, cfg),
              TraceCache::fingerprintOf(a, other));

    workloads::LbmParams p1;
    workloads::LbmParams p2;
    p2.prefetchDistance = 8;
    EXPECT_NE(
        TraceCache::fingerprintOf(workloads::lbm(p1), cfg),
        TraceCache::fingerprintOf(workloads::lbm(p2), cfg));
}
