/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef TEA_TESTS_TEST_UTIL_HH
#define TEA_TESTS_TEST_UTIL_HH

#include <memory>
#include <utility>

#include "core/core.hh"
#include "isa/executor.hh"
#include "workloads/workload.hh"

namespace tea::test {

/**
 * A completed (or ready-to-run) simulation bundling the objects the core
 * references so they share a lifetime.
 */
struct CoreRun
{
    std::unique_ptr<CoreConfig> cfg;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<Core> core;

    Core &operator*() { return *core; }
    Core *operator->() { return core.get(); }
};

/** Build a core for @p w without running it. */
inline CoreRun
makeCore(Workload w, CoreConfig cfg = CoreConfig{})
{
    CoreRun r;
    r.cfg = std::make_unique<CoreConfig>(cfg);
    r.workload = std::make_unique<Workload>(std::move(w));
    r.core = std::make_unique<Core>(*r.cfg, r.workload->program,
                                    std::move(r.workload->initial));
    return r;
}

/** Run @p w to completion and return the simulation. */
inline CoreRun
runCore(Workload w, CoreConfig cfg = CoreConfig{},
        Cycle max_cycles = 500'000'000)
{
    CoreRun r = makeCore(std::move(w), cfg);
    r.core->run(max_cycles);
    return r;
}

/**
 * Pure functional execution of @p prog from @p st until Halt; returns
 * the final architectural state (the oracle the timing model's state
 * must match).
 */
inline ArchState
runFunctional(const Program &prog, ArchState st,
              std::uint64_t max_insts = 1'000'000'000)
{
    InstIndex pc = prog.entry();
    for (std::uint64_t n = 0; n < max_insts; ++n) {
        ExecResult r = execute(prog, pc, st);
        if (r.halted)
            return st;
        pc = r.nextPc;
    }
    return st;
}

} // namespace tea::test

#endif // TEA_TESTS_TEST_UTIL_HH
