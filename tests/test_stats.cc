/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace tea;

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, StddevNeedsTwoPoints)
{
    EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, PercentileEndpoints)
{
    std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PearsonPerfectPositive)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero)
{
    std::vector<double> xs{3, 3, 3};
    std::vector<double> ys{1, 2, 3};
    EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonUncorrelated)
{
    std::vector<double> xs{1, 2, 1, 2, 1, 2, 1, 2};
    std::vector<double> ys{1, 1, 2, 2, 1, 1, 2, 2};
    EXPECT_NEAR(pearson(xs, ys), 0.0, 1e-12);
}

TEST(Stats, BoxplotFiveNumbers)
{
    BoxplotSummary s = boxplot({1, 2, 3, 4, 5, 6, 7, 8, 9});
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.median, 5.0);
    EXPECT_EQ(s.max, 9.0);
    EXPECT_EQ(s.q1, 3.0);
    EXPECT_EQ(s.q3, 7.0);
    EXPECT_EQ(s.n, 9u);
}

TEST(Stats, BoxplotEmpty)
{
    BoxplotSummary s = boxplot({});
    EXPECT_EQ(s.n, 0u);
}

TEST(Stats, HistogramQuantile)
{
    Histogram h(100);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.quantile(0.5), 50u);
    EXPECT_EQ(h.quantile(0.99), 99u);
    EXPECT_EQ(h.quantile(1.0), 100u);
}

TEST(Stats, HistogramOverflowBin)
{
    Histogram h(10);
    h.add(5);
    h.add(500); // overflow
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.quantile(1.0), 11u); // max_value + 1 marks overflow
}

TEST(Stats, HistogramWeightedMean)
{
    Histogram h(16);
    h.add(2, 3); // three 2s
    h.add(8, 1);
    EXPECT_NEAR(h.mean(), (3 * 2 + 8) / 4.0, 1e-12);
}
