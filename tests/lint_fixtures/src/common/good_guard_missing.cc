// Clean counterpart for tea_check's guard-missing rule: every member
// of the lock-owning class is annotated, const, atomic (with spelled
// orders), a sync primitive, or explicitly allow()'d. The checker must
// report nothing here.
#include <atomic>
#include <string>

#include "common/sync.hh"

namespace fixture {

class Annotated
{
  public:
    void bump();

  private:
    tea::Mutex mu_;
    tea::CondVar changed_;
    const unsigned capacity_ = 16;
    std::atomic<bool> armed_{false};
    unsigned long count_ TEA_GUARDED_BY(mu_) = 0;
    std::string lastUser_ TEA_GUARDED_BY(mu_);
    // Scratch buffer owned by the single writer thread.
    // tea_check: allow(guard-missing)
    std::string scratch_;
};

void
Annotated::bump()
{
    tea::MutexLock lk(mu_);
    ++count_;
    changed_.notify_all();
    // relaxed: advisory gate only; real state is handed over by mu_.
    armed_.store(true, std::memory_order_relaxed);
}

} // namespace fixture
