// Seeded violations for tea_check's guard-missing rule: a class that
// owns a tea::Mutex with mutable members carrying no TEA_GUARDED_BY.
// Never compiled into the project.
#include <string>

#include "common/sync.hh"

namespace fixture {

class Counter
{
  public:
    void bump(const std::string &user);

  private:
    tea::Mutex mu_;
    unsigned long count_ = 0; // EXPECT(guard-missing)
    std::string lastUser_;    // EXPECT(guard-missing)
};

void
Counter::bump(const std::string &user)
{
    tea::MutexLock lk(mu_);
    ++count_;
    lastUser_ = user;
}

} // namespace fixture
