// Seeded violations for tea_check's raw-io rule: direct syscalls and
// stdio outside the trace_io/file_lock wrappers bypass the failpoint
// and retry seams. Never compiled into the project.
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace fixture {

int
directOpen(const char *path)
{
    return ::open(path, O_RDONLY); // EXPECT(raw-io)
}

int
directRename(const char *from, const char *to)
{
    return std::rename(from, to); // EXPECT(raw-io)
}

bool
stdioRoundTrip(const char *path)
{
    std::FILE *f = std::fopen(path, "rb"); // EXPECT(raw-io)
    if (f == nullptr)
        return false;
    std::fclose(f); // EXPECT(raw-io)
    return true;
}

} // namespace fixture
