// Clean counterpart for tea_check's raw-io rule: the allow()
// annotation (same line or up to two lines above) suppresses a
// deliberate direct call. The checker must report nothing here.
#include <cstdio>

namespace fixture {

bool
allowedProbe(const char *path)
{
    // Probing for an optional sidecar file; failure is benign and
    // needs no retry seam.
    // tea_check: allow(raw-io)
    std::FILE *f = std::fopen(path, "rb");
    if (f == nullptr)
        return false;
    std::fclose(f); // tea_check: allow(raw-io)
    return true;
}

} // namespace fixture
