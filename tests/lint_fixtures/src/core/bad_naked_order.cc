// Seeded violations for tea_check's naked-order rule. Every line
// tagged EXPECT(<rule>) must be reported by the checker with exactly
// that rule id; test_tea_check.py asserts the full set. This file is
// never compiled into the project.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int
implicitLoad()
{
    return counter.load(); // EXPECT(naked-order)
}

void
implicitStore(int v)
{
    counter.store(v); // EXPECT(naked-order)
}

int
implicitRmw()
{
    return counter.fetch_add(1); // EXPECT(naked-order)
}

int
operatorRmw()
{
    return ++counter; // EXPECT(naked-order)
}

int
uncommentedDowngrade()
{
    return counter.load(std::memory_order_relaxed); // EXPECT(naked-order)
}

} // namespace fixture
