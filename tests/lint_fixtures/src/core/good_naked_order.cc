// Clean counterpart for tea_check's naked-order rule: spelled orders,
// a commented downgrade, and an allow()'d implicit op. The checker
// must report nothing here.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int
spelledLoad()
{
    return counter.load(std::memory_order_seq_cst);
}

void
spelledStore(int v)
{
    // release: pairs with an acquire load in the consumer; publishes
    // v before the flag flips.
    counter.store(v, std::memory_order_release);
}

int
commentedDowngrade()
{
    // relaxed: the counter is a pure statistic; nothing is published
    // through it and torn ordering only skews a report.
    return counter.load(std::memory_order_relaxed);
}

int
allowedImplicit()
{
    // tea_check: allow(naked-order)
    return counter.load();
}

} // namespace fixture
