/**
 * @file
 * Property tests for the parameterized bottleneck-kernel generator
 * (workloads/kernel_gen): determinism (same spec, bit-identical
 * expansion and cache fingerprint), canonical-name round-trips,
 * byName() resolution of generated names, and — the heart of the
 * generator's contract — that each knob realizes the bottleneck it
 * names: memory-level footprints land in their miss-rate bands,
 * swept branches converge to the requested taken ratio, interleaved
 * dependence chains raise IPC, and target-pool calls blow out the
 * I-cache.
 */

#include <gtest/gtest.h>

#include "analysis/trace_cache.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "events/event.hh"
#include "test_util.hh"
#include "workloads/kernel_gen.hh"

using namespace tea;
using namespace tea::workloads;

namespace {

std::uint64_t
eventCount(const CoreStats &s, Event e)
{
    return s.eventCounts[static_cast<unsigned>(e)];
}

/** Spec of every phase flavour at small scale, for mixing tests. */
KernelSpec
richSpec()
{
    KernelSpec s;
    s.seed = 42;
    s.iterations = 300;
    s.level = MemLevel::Llc;
    s.footprintBytes = 1 << 16;
    s.dependent = true;
    s.loadsPerIteration = 2;
    s.branchesPerIteration = 2;
    s.takenPermille = 700;
    s.chainLength = 4;
    s.chains = 2;
    s.targetPool = 8;
    return s;
}

} // namespace

// --- determinism -------------------------------------------------------

TEST(KernelGen, SameSpecExpandsBitIdentically)
{
    const KernelSpec spec = richSpec();
    Workload a = generateKernel(spec);
    Workload b = generateKernel(spec);

    // The persistent-cache key covers the instruction stream, the
    // initial architectural state and the heap image — equality means
    // the two expansions are interchangeable everywhere (trace cache,
    // replay, audits).
    const CoreConfig cfg;
    EXPECT_EQ(TraceCache::fingerprintOf(a, cfg),
              TraceCache::fingerprintOf(b, cfg));
    EXPECT_EQ(a.program.name(), b.program.name());
    EXPECT_EQ(a.program.size(), b.program.size());
}

TEST(KernelGen, SeedChangesTheExpansion)
{
    KernelSpec a = richSpec();
    KernelSpec b = richSpec();
    b.seed = a.seed + 1;
    const CoreConfig cfg;
    EXPECT_NE(TraceCache::fingerprintOf(generateKernel(a), cfg),
              TraceCache::fingerprintOf(generateKernel(b), cfg));
    EXPECT_NE(kernelSpecFingerprint(a), kernelSpecFingerprint(b));
}

// --- canonical names ---------------------------------------------------

TEST(KernelGen, CanonicalNameRoundTripsEveryField)
{
    const KernelSpec spec = richSpec();
    const std::string name = canonicalKernelName(spec);
    EXPECT_TRUE(isGeneratedKernelName(name));
    EXPECT_EQ(parseKernelName(name), spec);
}

TEST(KernelGen, CanonicalNameRoundTripsRandomizedSpecs)
{
    Rng rng(2026);
    for (int i = 0; i < 200; ++i) {
        KernelSpec s;
        s.seed = rng.next();
        s.iterations = static_cast<unsigned>(rng.range(1, 100000));
        s.level = static_cast<MemLevel>(rng.below(4));
        s.footprintBytes = rng.below(2) ? 0 : (1ULL << rng.range(10, 24));
        s.strideBytes = 8ULL << rng.below(6);
        s.dependent = rng.below(2) != 0;
        s.loadsPerIteration = static_cast<unsigned>(rng.range(1, 8));
        s.branchesPerIteration = static_cast<unsigned>(rng.below(5));
        s.takenPermille = static_cast<unsigned>(rng.below(1001));
        s.chainLength = static_cast<unsigned>(rng.below(9));
        s.chains = static_cast<unsigned>(rng.range(1, 8));
        s.targetPool = static_cast<unsigned>(rng.below(64));
        SCOPED_TRACE(canonicalKernelName(s));
        EXPECT_EQ(parseKernelName(canonicalKernelName(s)), s);
    }
}

TEST(KernelGen, ByNameResolvesGeneratedNames)
{
    const KernelSpec spec = richSpec();
    const std::string name = canonicalKernelName(spec);
    Workload direct = generateKernel(spec);
    Workload named = workloads::byName(name);
    const CoreConfig cfg;
    EXPECT_EQ(TraceCache::fingerprintOf(direct, cfg),
              TraceCache::fingerprintOf(named, cfg));
}

TEST(KernelGen, SuiteNamesAreNotGeneratedNames)
{
    for (const std::string &n : workloads::suiteNames())
        EXPECT_FALSE(isGeneratedKernelName(n)) << n;
    EXPECT_FALSE(isGeneratedKernelName("kgen"));
    // Any kgen/ prefix claims the name, so a malformed spec fails in
    // parseKernelName with a spec-level diagnostic instead of falling
    // through to "unknown workload".
    EXPECT_TRUE(isGeneratedKernelName("kgen/v999:bogus"));
}

TEST(KernelGen, MemLevelNamesRoundTrip)
{
    for (MemLevel l : {MemLevel::None, MemLevel::L1D, MemLevel::Llc,
                       MemLevel::Mem})
        EXPECT_EQ(memLevelByName(memLevelName(l)), l);
}

// --- memory-level targeting -------------------------------------------

TEST(KernelGen, L1dFootprintStaysInTheL1Band)
{
    KernelSpec s;
    s.level = MemLevel::L1D;
    s.iterations = 4096;
    s.loadsPerIteration = 2;
    s.dependent = true;
    const KernelSpec r = resolvedSpec(s, CoreConfig{});
    test::CoreRun run = test::runCore(generateKernel(r));

    const double loads = static_cast<double>(kernelLoads(r));
    ASSERT_GT(loads, 0.0);
    const double l1MissRate =
        static_cast<double>(eventCount(run->stats(), Event::StL1)) / loads;
    // Half-the-L1 footprint: after the compulsory lap everything hits.
    EXPECT_LT(l1MissRate, 0.05) << "L1D-resident kernel misses L1";
}

TEST(KernelGen, LlcFootprintMissesL1ButHitsLlc)
{
    KernelSpec s;
    s.level = MemLevel::Llc;
    s.footprintBytes = 512 * 1024; // 8192 lines: 16x L1D, 1/4 LLC
    s.iterations = 32768;          // 8 laps of the ring
    s.loadsPerIteration = 2;
    s.dependent = true;
    const KernelSpec r = resolvedSpec(s, CoreConfig{});
    test::CoreRun run = test::runCore(generateKernel(r));

    const double loads = static_cast<double>(kernelLoads(r));
    const double l1MissRate =
        static_cast<double>(eventCount(run->stats(), Event::StL1)) / loads;
    const double llcMissRate =
        static_cast<double>(eventCount(run->stats(), Event::StLlc)) /
        loads;
    // A dependent chase over 16x the L1's line capacity defeats the
    // next-line prefetcher: nearly every load leaves the L1 but stays
    // in the LLC once the compulsory lap is paid.
    EXPECT_GT(l1MissRate, 0.6) << "LLC-level kernel still hits L1";
    EXPECT_LT(llcMissRate, 0.3) << "LLC-level kernel spills to DRAM";
}

TEST(KernelGen, MemFootprintMissesTheLlc)
{
    KernelSpec s;
    s.level = MemLevel::Mem;
    s.iterations = 32768; // one compulsory lap of the default 4 MiB ring
    s.loadsPerIteration = 2;
    s.dependent = true;
    const KernelSpec r = resolvedSpec(s, CoreConfig{});
    ASSERT_GT(r.footprintBytes / r.strideBytes, 32768u)
        << "MEM default footprint must exceed the LLC's line capacity";
    test::CoreRun run = test::runCore(generateKernel(r));

    const double loads = static_cast<double>(kernelLoads(r));
    const double llcMissRate =
        static_cast<double>(eventCount(run->stats(), Event::StLlc)) /
        loads;
    EXPECT_GT(llcMissRate, 0.5) << "MEM-level kernel not DRAM-bound";
}

// --- taken-ratio realization ------------------------------------------

TEST(KernelGen, TakenRatioConvergesToTheRequest)
{
    for (unsigned permille : {100u, 500u, 900u}) {
        KernelSpec s;
        s.seed = 3;
        s.iterations = 2000;
        s.branchesPerIteration = 4;
        s.takenPermille = permille;
        Workload w = generateKernel(s);
        ArchState fin =
            test::runFunctional(w.program, std::move(w.initial));

        const double branches = static_cast<double>(kernelBranches(s));
        const double notTaken =
            static_cast<double>(fin.regs[kernelNotTakenReg]);
        const double realized = 1.0 - notTaken / branches;
        EXPECT_NEAR(realized, permille / 1000.0, 0.03)
            << "requested " << permille << " permille";
    }
}

// --- ILP realization ---------------------------------------------------

TEST(KernelGen, InterleavedChainsRaiseIpc)
{
    KernelSpec serial;
    serial.iterations = 2000;
    serial.chainLength = 6;
    serial.chains = 1;
    KernelSpec wide = serial;
    wide.chains = 6;

    test::CoreRun a = test::runCore(generateKernel(serial));
    test::CoreRun b = test::runCore(generateKernel(wide));
    // Six independent chains give the backend ~6x the ILP of one; even
    // with loop overhead the wide kernel must be well past 1.8x.
    EXPECT_GT(b->stats().ipc(), 1.8 * a->stats().ipc());
}

// --- target-pool front-end stress -------------------------------------

TEST(KernelGen, LargeTargetPoolThrashesTheICache)
{
    KernelSpec small;
    small.iterations = 400;
    small.targetPool = 16; // ~1 KiB of pool code: I-cache resident
    KernelSpec large = small;
    large.targetPool = 600; // ~38 KiB of pool code: exceeds 32 KiB L1I

    test::CoreRun a = test::runCore(generateKernel(small));
    test::CoreRun b = test::runCore(generateKernel(large));
    EXPECT_GT(eventCount(b->stats(), Event::DrL1),
              10 * std::max<std::uint64_t>(
                       1, eventCount(a->stats(), Event::DrL1)));
}

// --- mixed kernels -----------------------------------------------------

TEST(KernelGen, MixedKernelRunsEveryPhase)
{
    KernelSpec memory;
    memory.iterations = 500;
    memory.level = MemLevel::L1D;
    memory = resolvedSpec(memory, CoreConfig{});
    KernelSpec branchy;
    branchy.iterations = 500;
    branchy.branchesPerIteration = 2;
    branchy.takenPermille = 300;

    Workload w = generateMixedKernel("mixed_test", {memory, branchy});
    ArchState fin = test::runFunctional(
        w.program, w.initial); // copy: the core run needs it too
    // Phase 2's branch counter is architecturally visible...
    EXPECT_GT(fin.regs[kernelNotTakenReg], 0u);

    // ...and the timing model executes both phases' work.
    test::CoreRun run = test::runCore(std::move(w));
    EXPECT_GE(run->stats().committedUops,
              kernelLoads(memory) + kernelBranches(branchy));
}
