/**
 * @file
 * Cache-lifecycle tests (analysis/cache_janitor and the runner's use of
 * it): scan accounting, size-budget eviction in last-use order with the
 * mtime bump on hits, orphaned-tmp / stale-lock / quarantine GC,
 * admission control, durable publish (directory fsync), the
 * degrade-to-no-store path under real lock contention, and end-to-end
 * entry verification.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/cache_janitor.hh"
#include "analysis/runner.hh"
#include "analysis/trace_cache.hh"
#include "common/failpoint.hh"
#include "common/file_lock.hh"
#include "profilers/golden.hh"
#include "profilers/pics.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

std::vector<PicsComponent>
sortedComponents(const Pics &p)
{
    std::vector<PicsComponent> cs = p.components();
    std::sort(cs.begin(), cs.end(),
              [](const PicsComponent &a, const PicsComponent &b) {
                  return a.unit != b.unit ? a.unit < b.unit
                                          : a.signature < b.signature;
              });
    return cs;
}

/** Assert two Pics are bit-identical (exact doubles, same cells). */
void
expectPicsIdentical(const Pics &a, const Pics &b)
{
    EXPECT_EQ(a.total(), b.total()); // exact, not approximate
    std::vector<PicsComponent> ca = sortedComponents(a);
    std::vector<PicsComponent> cb = sortedComponents(b);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].unit, cb[i].unit);
        EXPECT_EQ(ca[i].signature, cb[i].signature);
        EXPECT_EQ(ca[i].cycles, cb[i].cycles);
    }
}

/** A scratch cache directory removed (recursively) on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
    {
        char tmpl[] = "/tmp/tea-janitor-XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : "";
    }

    ~TempCacheDir()
    {
        if (!dir_.empty())
            removeTree(dir_);
    }

    const std::string &path() const { return dir_; }

    std::vector<std::string> list(const std::string &sub = "") const
    {
        return listAt(sub.empty() ? dir_ : dir_ + "/" + sub);
    }

    std::vector<std::string> entries() const
    {
        std::vector<std::string> out;
        for (const std::string &name : list()) {
            if (endsWith(name, ".teatrc"))
                out.push_back(name);
        }
        return out;
    }

    bool anyWithSuffix(const std::string &suffix) const
    {
        for (const std::string &name : list()) {
            if (endsWith(name, suffix))
                return true;
            for (const std::string &sub : list(name)) {
                if (endsWith(sub, suffix))
                    return true;
            }
        }
        return false;
    }

    static bool endsWith(const std::string &s, const std::string &tail)
    {
        return s.size() >= tail.size() &&
               s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
    }

  private:
    static std::vector<std::string> listAt(const std::string &at)
    {
        std::vector<std::string> out;
        if (DIR *d = ::opendir(at.c_str())) {
            while (struct dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    out.push_back(name);
            }
            ::closedir(d);
        }
        return out;
    }

    static void removeTree(const std::string &at)
    {
        for (const std::string &name : listAt(at)) {
            const std::string full = at + "/" + name;
            struct ::stat st{};
            if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeTree(full);
            else
                std::remove(full.c_str());
        }
        ::rmdir(at.c_str());
    }

    std::string dir_;
};

RunnerOptions
cachedOptions(const TempCacheDir &dir, unsigned threads = 1)
{
    RunnerOptions o;
    o.threads = threads;
    o.cache.enabled = true;
    o.cache.dir = dir.path();
    o.cacheLockTimeoutMs = 50;
    return o;
}

ExperimentResult
runOnce(const RunnerOptions &opts, unsigned iterations = 300)
{
    return runWorkload(workloads::aluLoop(iterations), {teaConfig()},
                       opts);
}

/** Set a file's mtime (and atime) to @p when, for age/order tests. */
void
setMTime(const std::string &path, std::time_t when)
{
    struct ::timeval tv[2];
    tv[0].tv_sec = when;
    tv[0].tv_usec = 0;
    tv[1] = tv[0];
    ASSERT_EQ(::utimes(path.c_str(), tv), 0) << path;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    std::fputs(content.c_str(), f);
    std::fclose(f);
}

/** A pid that verifiably belonged to a now-dead process. */
pid_t
deadPid()
{
    pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(0);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return pid;
}

class CacheJanitorTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!failpoints::compiledIn())
            GTEST_SKIP() << "failpoint seams compiled out";
        failpoints::resetAll();
    }
    void TearDown() override { failpoints::resetAll(); }
};

} // namespace

TEST_F(CacheJanitorTest, ParseEntryFingerprint)
{
    std::uint64_t fp = 0;
    EXPECT_TRUE(parseEntryFingerprint(
        "/c/alu_loop-00deadbeef015a7e.teatrc", &fp));
    EXPECT_EQ(fp, 0x00deadbeef015a7eULL);
    EXPECT_FALSE(parseEntryFingerprint("/c/alu_loop.teatrc", &fp));
    EXPECT_FALSE(parseEntryFingerprint( // uppercase is not hashHex's
        "/c/alu_loop-00DEADBEEF015A7E.teatrc", &fp));
    EXPECT_FALSE(parseEntryFingerprint(
        "/c/alu_loop-00deadbeef015a7e.tmp", &fp));
    EXPECT_FALSE(parseEntryFingerprint("0123456789abcdef.teatrc", &fp));
}

TEST_F(CacheJanitorTest, ScanClassifiesAndAccounts)
{
    TempCacheDir dir;
    ASSERT_TRUE(runOnce(cachedOptions(dir), 200).replay.cacheStored);
    ASSERT_TRUE(runOnce(cachedOptions(dir), 300).replay.cacheStored);
    writeFile(dir.path() + "/stray.teatrc.1234.0.tmp", "partial");
    ASSERT_EQ(::mkdir((dir.path() + "/quarantine").c_str(), 0777), 0);
    writeFile(dir.path() + "/quarantine/old.teatrc.1.0", "damaged");
    writeFile(dir.path() + "/quarantine/old.teatrc.1.0.reason", "why");

    CacheScan scan = scanCacheDir(dir.path());
    EXPECT_EQ(scan.entries.size(), 2u);
    EXPECT_EQ(scan.tmpFiles.size(), 1u);
    EXPECT_EQ(scan.lockFiles.size(), 2u); // one .lock per stored entry
    EXPECT_EQ(scan.quarantine.size(), 1u);
    EXPECT_EQ(scan.reasons.size(), 1u);
    EXPECT_GT(scan.entryBytes, 0u);
    EXPECT_GT(scan.totalBytes, scan.entryBytes);

    std::uint64_t summed = 0;
    for (const CacheFileInfo &f : scan.entries)
        summed += f.bytes;
    EXPECT_EQ(summed, scan.entryBytes);
}

TEST_F(CacheJanitorTest, BudgetEvictsColdestFirst)
{
    TempCacheDir dir;
    ASSERT_TRUE(runOnce(cachedOptions(dir), 200).replay.cacheStored);
    ASSERT_TRUE(runOnce(cachedOptions(dir), 300).replay.cacheStored);
    ASSERT_TRUE(runOnce(cachedOptions(dir), 400).replay.cacheStored);

    CacheScan scan = scanCacheDir(dir.path());
    ASSERT_EQ(scan.entries.size(), 3u);

    // Give the three entries unambiguous last-use times (scan order is
    // directory order, not age): [0] coldest, [2] hottest.
    const std::time_t now = ::time(nullptr);
    setMTime(scan.entries[0].path, now - 3000);
    setMTime(scan.entries[1].path, now - 2000);
    setMTime(scan.entries[2].path, now - 1000);

    JanitorConfig cfg;
    cfg.maxBytes = scan.entryBytes - 1; // one eviction must suffice
    JanitorStats stats = CacheJanitor(dir.path(), cfg).gc();
    EXPECT_FALSE(stats.lockBusy);
    EXPECT_EQ(stats.evictedEntries, 1u);
    EXPECT_EQ(stats.evictedBytes, scan.entries[0].bytes);

    struct ::stat st{};
    EXPECT_NE(::stat(scan.entries[0].path.c_str(), &st), 0); // coldest
    EXPECT_EQ(::stat(scan.entries[1].path.c_str(), &st), 0);
    EXPECT_EQ(::stat(scan.entries[2].path.c_str(), &st), 0);
}

TEST_F(CacheJanitorTest, HitBumpsLastUseAndProtectsFromEviction)
{
    TempCacheDir dir;
    const ExperimentResult a = runOnce(cachedOptions(dir), 200);
    const ExperimentResult b = runOnce(cachedOptions(dir), 300);
    ASSERT_TRUE(a.replay.cacheStored);
    ASSERT_TRUE(b.replay.cacheStored);

    CacheScan scan = scanCacheDir(dir.path());
    ASSERT_EQ(scan.entries.size(), 2u);
    const std::time_t now = ::time(nullptr);
    for (const CacheFileInfo &f : scan.entries)
        setMTime(f.path, now - 5000); // both stone cold

    // A hit on the 200-iteration entry must bump its mtime to "now"...
    const ExperimentResult warm = runOnce(cachedOptions(dir), 200);
    ASSERT_TRUE(warm.replay.cacheHit);
    expectPicsIdentical(a.golden->pics(), warm.golden->pics());

    // ...so eviction under a one-entry budget removes the *other* one.
    JanitorConfig cfg;
    cfg.maxBytes = scan.entryBytes - 1;
    JanitorStats stats = CacheJanitor(dir.path(), cfg).gc();
    EXPECT_GE(stats.evictedEntries, 1u);

    const ExperimentResult still = runOnce(cachedOptions(dir), 200);
    EXPECT_TRUE(still.replay.cacheHit); // the hot entry survived
}

TEST_F(CacheJanitorTest, OrphanTmpAndStaleLockCollection)
{
    TempCacheDir dir;
    ASSERT_TRUE(runOnce(cachedOptions(dir)).replay.cacheStored);

    // Orphan tmp from a verifiably dead writer: removed regardless of
    // age. Tmp from a live pid (ours): kept while young.
    const std::string dead_tmp =
        dir.path() + "/x.teatrc." + std::to_string(deadPid()) + ".0.tmp";
    const std::string live_tmp =
        dir.path() + "/y.teatrc." + std::to_string(::getpid()) +
        ".0.tmp";
    writeFile(dead_tmp, "dead");
    writeFile(live_tmp, "live");

    // Stale lock: entry-less and old. Fresh lock sidecars of the live
    // entry must survive.
    const std::string stale_lock = dir.path() + "/gone.teatrc.lock";
    writeFile(stale_lock, "1\n");
    setMTime(stale_lock, ::time(nullptr) - 7200);

    JanitorConfig cfg; // default orphanMaxAgeS = 3600
    JanitorStats stats = CacheJanitor(dir.path(), cfg).gc();
    EXPECT_EQ(stats.removedTmp, 1u);
    EXPECT_EQ(stats.removedLocks, 1u);

    struct ::stat st{};
    EXPECT_NE(::stat(dead_tmp.c_str(), &st), 0);
    EXPECT_EQ(::stat(live_tmp.c_str(), &st), 0);
    EXPECT_NE(::stat(stale_lock.c_str(), &st), 0);
    EXPECT_EQ(dir.entries().size(), 1u); // the real entry is untouched
}

TEST_F(CacheJanitorTest, HeldLockIsNeverCollected)
{
    TempCacheDir dir;
    const std::string held = dir.path() + "/busy.teatrc.lock";
    FileLock holder;
    ASSERT_TRUE(holder.acquire(held, 100));
    setMTime(held, ::time(nullptr) - 7200); // old and entry-less...

    JanitorConfig cfg;
    JanitorStats stats = CacheJanitor(dir.path(), cfg).gc();
    EXPECT_EQ(stats.removedLocks, 0u); // ...but held, so kept

    struct ::stat st{};
    EXPECT_EQ(::stat(held.c_str(), &st), 0);
}

TEST_F(CacheJanitorTest, QuarantineAgesOutAndRespectsCap)
{
    TempCacheDir dir;
    const std::string q = dir.path() + "/quarantine";
    ASSERT_EQ(::mkdir(q.c_str(), 0777), 0);
    const std::time_t now = ::time(nullptr);
    // Five quarantined payloads with distinct ages, each with a note;
    // q0 is old enough to age out on its own.
    for (int i = 0; i < 5; ++i) {
        const std::string payload =
            q + "/e" + std::to_string(i) + ".teatrc.1." +
            std::to_string(i);
        writeFile(payload, "damaged");
        writeFile(payload + ".reason", "why");
        const std::time_t when =
            i == 0 ? now - 10 * 24 * 3600 : now - 1000 - i;
        setMTime(payload, when);
        setMTime(payload + ".reason", when);
    }
    // Plus one orphaned note (payload lost to a crash), old.
    writeFile(q + "/lost.teatrc.9.9.reason", "why");
    setMTime(q + "/lost.teatrc.9.9.reason", now - 7200);

    JanitorConfig cfg; // quarantineMaxAgeS default 7 d catches q0
    cfg.quarantineMaxCount = 2;
    JanitorStats stats = CacheJanitor(dir.path(), cfg).gc();
    // q0 (aged) + two more for the cap, + the orphaned note.
    EXPECT_EQ(stats.removedQuarantine, 4u);

    CacheScan scan = scanCacheDir(dir.path());
    EXPECT_EQ(scan.quarantine.size(), 2u); // the two newest survive
    EXPECT_EQ(scan.reasons.size(), 2u);    // notes travel with payloads
    for (const CacheFileInfo &f : scan.quarantine)
        EXPECT_GE(f.mtimeS, now - 1002); // the newest two: e1 and e2
}

TEST_F(CacheJanitorTest, RunnerRecoversDebrisOnFirstCacheAccess)
{
    TempCacheDir dir;
    // Debris planted before the process ever touches this cache dir.
    const std::string dead_tmp =
        dir.path() + "/x.teatrc." + std::to_string(deadPid()) + ".0.tmp";
    writeFile(dead_tmp, "dead");

    const ExperimentResult res = runOnce(cachedOptions(dir));
    EXPECT_TRUE(res.replay.cacheStored);
    EXPECT_GE(res.replay.janitorRemovals, 1u); // recoverOnce swept it
    struct ::stat st{};
    EXPECT_NE(::stat(dead_tmp.c_str(), &st), 0);
    EXPECT_NE(res.replay.render().find("janitor:"), std::string::npos);
}

TEST_F(CacheJanitorTest, StoreEnforcesBudgetAndCountsEvictions)
{
    TempCacheDir dir;
    ASSERT_TRUE(runOnce(cachedOptions(dir), 200).replay.cacheStored);
    ASSERT_TRUE(runOnce(cachedOptions(dir), 300).replay.cacheStored);
    const std::uint64_t resident = scanCacheDir(dir.path()).entryBytes;
    ASSERT_GT(resident, 0u);

    // Budget = what is resident now: the third store is admitted (it
    // is smaller than the budget) but pushes the total over it, so the
    // post-store janitor pass must evict back under.
    RunnerOptions opts = cachedOptions(dir, 1);
    opts.janitor.maxBytes = resident;
    const ExperimentResult third = runOnce(opts, 400);
    EXPECT_TRUE(third.replay.cacheStored);
    EXPECT_GE(third.replay.cacheEvictions, 1u);
    EXPECT_GT(third.replay.cacheEvictedBytes, 0u);

    CacheScan scan = scanCacheDir(dir.path());
    EXPECT_LE(scan.entryBytes, opts.janitor.maxBytes);
}

TEST_F(CacheJanitorTest, OversizedEntryIsDeniedAdmission)
{
    TempCacheDir dir;
    RunnerOptions opts = cachedOptions(dir);
    opts.janitor.maxBytes = 64; // nothing real fits in 64 bytes
    const ExperimentResult base = runOnce(RunnerOptions{});
    const ExperimentResult res = runOnce(opts);
    EXPECT_FALSE(res.replay.cacheStored);
    EXPECT_TRUE(res.replay.cacheAdmissionDenied);
    expectPicsIdentical(base.golden->pics(), res.golden->pics());
    EXPECT_TRUE(dir.entries().empty());
    EXPECT_FALSE(dir.anyWithSuffix(".tmp")); // abandoned, not leaked
    EXPECT_NE(res.replay.render().find("admission denied"),
              std::string::npos);
}

TEST_F(CacheJanitorTest, DirFsyncFaultDegradesButStillPublishes)
{
    TempCacheDir dir;
    failpoints::configure("trace_io.dir_fsync", "always@eio");
    const ExperimentResult cold = runOnce(cachedOptions(dir));
    // The entry is valid this boot even though its durability after
    // power loss is degraded: the store succeeds with a warning.
    EXPECT_TRUE(cold.replay.cacheStored);
    EXPECT_GE(failpoints::find("trace_io.dir_fsync")->fired(), 1u);
    failpoints::resetAll();

    const ExperimentResult warm = runOnce(cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit);
    expectPicsIdentical(cold.golden->pics(), warm.golden->pics());
}

TEST_F(CacheJanitorTest, QuarantineFallbackCleansUpItsReasonNote)
{
    TempCacheDir dir;
    const ExperimentResult cold = runOnce(cachedOptions(dir));
    ASSERT_TRUE(cold.replay.cacheStored);
    std::vector<std::string> entries = dir.entries();
    ASSERT_EQ(entries.size(), 1u);
    const std::string entry = dir.path() + "/" + entries[0];
    {
        std::FILE *f = std::fopen(entry.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
        std::fputc(0x5a, f);
        std::fclose(f);
    }

    // The quarantine move itself fails: the fallback must unlink the
    // damaged entry AND the reason note written moments before — a
    // half-done quarantine may not leave orphan notes behind.
    failpoints::configure("trace_cache.quarantine", "always");
    const ExperimentResult again = runOnce(cachedOptions(dir));
    failpoints::resetAll();
    EXPECT_FALSE(again.replay.cacheHit);
    EXPECT_EQ(again.replay.quarantined, 0u); // unlinked, not moved
    expectPicsIdentical(cold.golden->pics(), again.golden->pics());
    EXPECT_FALSE(dir.anyWithSuffix(".reason"));
    for (const std::string &name : dir.list("quarantine"))
        ADD_FAILURE() << "unexpected quarantine file: " << name;

    const ExperimentResult warm = runOnce(cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit); // rewritten cleanly after
}

TEST_F(CacheJanitorTest, LockContentionDegradesToNoStore)
{
    TempCacheDir dir;
    const ExperimentResult cold = runOnce(cachedOptions(dir));
    ASSERT_TRUE(cold.replay.cacheStored);
    std::vector<std::string> entries = dir.entries();
    ASSERT_EQ(entries.size(), 1u);
    const std::string entry = dir.path() + "/" + entries[0];
    ASSERT_EQ(std::remove(entry.c_str()), 0); // force the next miss

    // Hold the entry's write lock the way a concurrent rewriter would
    // (flock is per open descriptor, so one process can contend with
    // itself). The run must simulate, skip the store, and say so.
    FileLock other;
    ASSERT_TRUE(other.acquire(TraceCache::lockPathFor(entry), 100));
    RunnerOptions opts = cachedOptions(dir);
    opts.cacheLockTimeoutMs = 30;
    const ExperimentResult degraded = runOnce(opts);
    EXPECT_FALSE(degraded.replay.cacheHit);
    EXPECT_FALSE(degraded.replay.cacheStored);
    EXPECT_EQ(degraded.replay.lockDegrades, 1u);
    expectPicsIdentical(cold.golden->pics(), degraded.golden->pics());
    EXPECT_TRUE(dir.entries().empty());
    EXPECT_NE(degraded.replay.render().find("lock degrade"),
              std::string::npos);

    // Released: the next run rewrites and the one after hits.
    other.release();
    EXPECT_TRUE(runOnce(cachedOptions(dir)).replay.cacheStored);
    const ExperimentResult warm = runOnce(cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit);
    expectPicsIdentical(cold.golden->pics(), warm.golden->pics());
}

TEST_F(CacheJanitorTest, ConcurrentMissesStoreExactlyOnce)
{
    TempCacheDir dir;
    const ExperimentResult base = runOnce(RunnerOptions{});

    // Two threads race the same cold entry with a generous lock
    // timeout: the loser must wait, revalidate under the lock, and
    // turn the winner's store into its own hit.
    RunnerOptions opts = cachedOptions(dir);
    opts.cacheLockTimeoutMs = 10000;
    ExperimentResult r1, r2;
    std::thread t1([&] { r1 = runOnce(opts); });
    std::thread t2([&] { r2 = runOnce(opts); });
    t1.join();
    t2.join();

    const unsigned stored = (r1.replay.cacheStored ? 1 : 0) +
                            (r2.replay.cacheStored ? 1 : 0);
    const unsigned hits = (r1.replay.cacheHit ? 1 : 0) +
                          (r2.replay.cacheHit ? 1 : 0);
    EXPECT_EQ(stored, 1u);
    EXPECT_EQ(hits, 1u);
    expectPicsIdentical(base.golden->pics(), r1.golden->pics());
    expectPicsIdentical(base.golden->pics(), r2.golden->pics());
    EXPECT_EQ(dir.entries().size(), 1u);
}

TEST_F(CacheJanitorTest, VerifyDetectsAndQuarantinesDamage)
{
    TempCacheDir dir;
    ASSERT_TRUE(runOnce(cachedOptions(dir), 200).replay.cacheStored);
    ASSERT_TRUE(runOnce(cachedOptions(dir), 300).replay.cacheStored);

    CacheVerifyReport clean = verifyCacheDir(dir.path(), false);
    EXPECT_EQ(clean.checked, 2u);
    EXPECT_EQ(clean.healthy, 2u);
    EXPECT_TRUE(clean.clean());

    std::vector<std::string> entries = dir.entries();
    ASSERT_EQ(entries.size(), 2u);
    const std::string victim = dir.path() + "/" + entries[0];
    {
        std::FILE *f = std::fopen(victim.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 150, SEEK_SET), 0);
        std::fputc(0x3c, f);
        std::fclose(f);
    }

    // Read-only verify reports the damage but leaves it in place.
    CacheVerifyReport found = verifyCacheDir(dir.path(), false);
    EXPECT_EQ(found.damaged, 1u);
    ASSERT_EQ(found.damagedPaths.size(), 1u);
    EXPECT_NE(found.damagedPaths[0].find(victim), std::string::npos);
    EXPECT_EQ(dir.entries().size(), 2u);

    // Repairing verify quarantines it; the cache is then clean again.
    CacheVerifyReport repaired = verifyCacheDir(dir.path(), true);
    EXPECT_EQ(repaired.damaged, 1u);
    EXPECT_EQ(dir.entries().size(), 1u);
    EXPECT_TRUE(dir.anyWithSuffix(".reason"));
    CacheVerifyReport after = verifyCacheDir(dir.path(), false);
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.checked, 1u);
}
