/**
 * @file
 * Concurrency stress tests for the replay engine, designed to flush
 * races in the chunk queue: oversubscribed worker pools, single-event
 * chunks, a 2-deep queue (constant producer/consumer contention), and a
 * hammering BroadcastQueue workout. Build with -DTEA_SANITIZE=thread to
 * run these under ThreadSanitizer (`ctest -L parallel`).
 */

#include <atomic>
#include <cstdint>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/chunk_queue.hh"
#include "core/trace_buffer.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

/** Sweep of sampling configs: many observer groups to schedule. */
std::vector<SamplerConfig>
manyTechniques()
{
    std::vector<SamplerConfig> techs;
    for (Cycle period : {31u, 127u, 509u}) {
        for (SamplerConfig c : standardTechniques(period)) {
            c.name += '@';
            c.name += std::to_string(period);
            techs.push_back(c);
        }
        SamplerConfig tip = tipConfig(period);
        tip.name += '@';
        tip.name += std::to_string(period);
        techs.push_back(tip);
    }
    return techs;
}

RunnerOptions
withThreads(unsigned threads)
{
    RunnerOptions o;
    o.threads = threads;
    return o;
}

} // namespace

TEST(ParallelStress, OversubscribedPoolTinyChunks)
{
    // A large microkernel trace replayed by far more workers than the
    // host has cores, through single-event chunks and a 2-deep queue:
    // maximum handoff churn per delivered event.
    RunnerOptions hostile;
    hostile.threads = 16;
    hostile.chunkEvents = 1;
    hostile.queueChunks = 2;

    std::vector<SamplerConfig> techs = manyTechniques();
    ExperimentResult par = runWorkload(
        workloads::pointerChase(256, 40, 4096), techs, hostile);
    ExperimentResult serial = runWorkload(
        workloads::pointerChase(256, 40, 4096), techs, withThreads(1));

    EXPECT_EQ(par.replay.threads, 16u);
    EXPECT_EQ(par.replay.chunksProduced, par.replay.eventsCaptured);
    EXPECT_EQ(serial.stats.cycles, par.stats.cycles);
    ASSERT_EQ(serial.techniques.size(), par.techniques.size());
    for (std::size_t i = 0; i < serial.techniques.size(); ++i) {
        SCOPED_TRACE(serial.techniques[i].config.name);
        EXPECT_EQ(serial.techniques[i].samplesTaken,
                  par.techniques[i].samplesTaken);
        EXPECT_EQ(serial.techniques[i].pics.total(),
                  par.techniques[i].pics.total());
        EXPECT_EQ(serial.errorOf(serial.techniques[i]),
                  par.errorOf(par.techniques[i]));
    }
}

TEST(ParallelStress, RepeatedRunsAreStable)
{
    // Back-to-back parallel runs (fresh pool + queue each time) keep
    // producing the same bits; instability here means a race.
    RunnerOptions opts;
    opts.threads = 8;
    opts.chunkEvents = 64;
    opts.queueChunks = 3;

    double first_total = -1.0;
    std::uint64_t first_samples = 0;
    for (int round = 0; round < 3; ++round) {
        SCOPED_TRACE(round);
        ExperimentResult res = runWorkload(
            workloads::streamSum(512, 24), standardTechniques(), opts);
        const TechniqueResult &tea = res.technique("TEA");
        if (round == 0) {
            first_total = tea.pics.total();
            first_samples = tea.samplesTaken;
        } else {
            EXPECT_EQ(tea.pics.total(), first_total);
            EXPECT_EQ(tea.samplesTaken, first_samples);
        }
    }
}

TEST(ParallelStress, BroadcastQueueHammer)
{
    // Raw queue workout: tiny window, many consumers, and a payload
    // checksum proving nothing is dropped, duplicated or reordered.
    constexpr unsigned consumers = 8;
    constexpr std::uint64_t items = 20000;
    BroadcastQueue<std::uint64_t> q(2, consumers);

    std::vector<std::uint64_t> sums(consumers, 0);
    std::vector<std::uint64_t> counts(consumers, 0);
    std::atomic<bool> ordered{true};
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
            std::uint64_t v, prev = 0;
            bool first = true;
            while (q.pop(c, v)) {
                if (!first && v != prev + 1)
                    ordered = false;
                first = false;
                prev = v;
                sums[c] += v;
                ++counts[c];
            }
        });
    }
    for (std::uint64_t i = 1; i <= items; ++i)
        q.push(i);
    q.close();
    for (std::thread &t : threads)
        t.join();

    const std::uint64_t want = items * (items + 1) / 2;
    for (unsigned c = 0; c < consumers; ++c) {
        EXPECT_EQ(counts[c], items);
        EXPECT_EQ(sums[c], want);
    }
    EXPECT_TRUE(ordered.load());
}

TEST(ParallelStress, ChunkingSinkStreamsUnderBackpressure)
{
    // Producer-side: a ChunkingSink feeding a window the consumer
    // drains slowly; exercises the push/pop stall counters.
    BroadcastQueue<TraceChunkPtr> q(2, 1);
    std::uint64_t replayed_events = 0;
    std::thread consumer([&] {
        TraceChunkPtr chunk;
        while (q.pop(0, chunk))
            replayed_events += chunk->events.size();
    });

    ChunkingSink sink(8, [&](TraceChunkPtr c) { q.push(std::move(c)); });
    {
        CoreRun run = makeCore(workloads::branchNoise(4000));
        run->addSink(&sink);
        run->run();
    }
    sink.finish();
    q.close();
    consumer.join();
    EXPECT_EQ(replayed_events, sink.eventsCaptured());
    EXPECT_GT(sink.chunksEmitted(), 100u);
}
