/**
 * @file
 * Unit tests for events, PSVs and the Table 1 event sets.
 */

#include <gtest/gtest.h>

#include "events/event.hh"

using namespace tea;

TEST(Psv, StartsEmpty)
{
    Psv p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.popcount(), 0u);
    EXPECT_EQ(p.name(), "Base");
}

TEST(Psv, SetAndTest)
{
    Psv p;
    p.set(Event::StL1);
    EXPECT_TRUE(p.test(Event::StL1));
    EXPECT_FALSE(p.test(Event::StLlc));
    EXPECT_EQ(p.popcount(), 1u);
}

TEST(Psv, NameJoinsEvents)
{
    Psv p;
    p.set(Event::StL1);
    p.set(Event::StTlb);
    EXPECT_EQ(p.name(), "ST-L1+ST-TLB");
}

TEST(Psv, MergeUnionsBits)
{
    Psv a;
    a.set(Event::DrL1);
    Psv b;
    b.set(Event::FlMb);
    a.merge(b);
    EXPECT_TRUE(a.test(Event::DrL1));
    EXPECT_TRUE(a.test(Event::FlMb));
}

TEST(Psv, MaskedRestrictsToSet)
{
    Psv p;
    p.set(Event::DrSq);
    p.set(Event::StL1);
    Psv m = p.masked(ibsEventSet().mask);
    EXPECT_FALSE(m.test(Event::DrSq)); // IBS does not capture DR-SQ
    EXPECT_TRUE(m.test(Event::StL1));
}

TEST(Psv, ClearResets)
{
    Psv p;
    p.set(Event::FlEx);
    p.clear();
    EXPECT_TRUE(p.empty());
}

TEST(EventNames, AllDistinct)
{
    for (unsigned i = 0; i < numEvents; ++i) {
        for (unsigned j = i + 1; j < numEvents; ++j) {
            EXPECT_STRNE(eventName(static_cast<Event>(i)),
                         eventName(static_cast<Event>(j)));
        }
    }
}

TEST(EventNames, FollowStateDashEventConvention)
{
    EXPECT_STREQ(eventName(Event::StL1), "ST-L1");
    EXPECT_STREQ(eventName(Event::DrTlb), "DR-TLB");
    EXPECT_STREQ(eventName(Event::FlMo), "FL-MO");
}

TEST(CommitStates, Names)
{
    EXPECT_STREQ(commitStateName(CommitState::Compute), "Compute");
    EXPECT_STREQ(commitStateName(CommitState::Stalled), "Stalled");
    EXPECT_STREQ(commitStateName(CommitState::Drained), "Drained");
    EXPECT_STREQ(commitStateName(CommitState::Flushed), "Flushed");
}

TEST(EventSets, PaperBitWidths)
{
    // The paper states TEA 9, IBS 6, SPE 5, RIS 7 bits.
    EXPECT_EQ(teaEventSet().size(), 9u);
    EXPECT_EQ(ibsEventSet().size(), 6u);
    EXPECT_EQ(speEventSet().size(), 5u);
    EXPECT_EQ(risEventSet().size(), 7u);
}

TEST(EventSets, TeaIsSuperset)
{
    for (const EventSet *s : table1EventSets())
        EXPECT_EQ(s->mask & teaEventSet().mask, s->mask);
}

TEST(EventSets, OnlyTeaCapturesDrSq)
{
    EXPECT_TRUE(teaEventSet().contains(Event::DrSq));
    EXPECT_FALSE(ibsEventSet().contains(Event::DrSq));
    EXPECT_FALSE(speEventSet().contains(Event::DrSq));
    EXPECT_FALSE(risEventSet().contains(Event::DrSq));
}

TEST(EventSets, MemoryTrioSharedByAll)
{
    for (const EventSet *s : table1EventSets()) {
        EXPECT_TRUE(s->contains(Event::StL1)) << s->name;
        EXPECT_TRUE(s->contains(Event::StTlb)) << s->name;
        EXPECT_TRUE(s->contains(Event::FlMb)) << s->name;
    }
}

TEST(EventMask, BuildsFromList)
{
    std::uint16_t m = eventMask({Event::DrL1, Event::StLlc});
    EXPECT_EQ(m, (1u << 0) | (1u << 8));
}
