/**
 * @file
 * Tests for the 88-byte sample records, the sample buffer / file
 * round trip, and PICS reconstruction from recorded samples.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "profilers/sample_record.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

/** Temp-file path helper (removed on destruction). */
struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string("/tmp/tea_test_") + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST(SampleRecord, PaperSize)
{
    EXPECT_EQ(sizeof(SampleRecord), 88u);
}

TEST(SampleRecord, FlagsPackStateAndCount)
{
    std::uint16_t f = SampleRecord::makeFlags(CommitState::Flushed, 3);
    SampleRecord rec;
    rec.flags = f;
    EXPECT_EQ(rec.state(), CommitState::Flushed);
    EXPECT_EQ(rec.count(), 3u);
}

TEST(SampleBuffer, FileRoundTrip)
{
    TempFile tmp("roundtrip.bin");
    SampleBuffer buf;
    for (unsigned i = 0; i < 100; ++i) {
        SampleRecord rec;
        rec.timestamp = i * 1000;
        rec.coreId = static_cast<std::uint16_t>(i % 4);
        rec.pid = 77;
        rec.tid = 78;
        rec.flags = SampleRecord::makeFlags(CommitState::Compute, 2);
        rec.addrs[0] = i;
        rec.addrs[1] = i + 1;
        rec.psvs[0] = 0x41;
        rec.psvs[1] = 0;
        buf.onSample(rec);
    }
    EXPECT_EQ(buf.bytes(), 100u * 88u);
    buf.writeFile(tmp.path);

    auto loaded = SampleBuffer::readFile(tmp.path);
    ASSERT_EQ(loaded.size(), 100u);
    EXPECT_EQ(loaded[7].timestamp, 7000u);
    EXPECT_EQ(loaded[7].coreId, 3u);
    EXPECT_EQ(loaded[7].count(), 2u);
    EXPECT_EQ(loaded[7].addrs[1], 8u);
    EXPECT_EQ(loaded[7].psvs[0], 0x41u);
}

TEST(SampleBuffer, EmptyFileRoundTrip)
{
    TempFile tmp("empty.bin");
    SampleBuffer buf;
    buf.writeFile(tmp.path);
    EXPECT_TRUE(SampleBuffer::readFile(tmp.path).empty());
}

TEST(PicsFromRecords, SplitsComputeSamplesEvenly)
{
    SampleRecord rec;
    rec.flags = SampleRecord::makeFlags(CommitState::Compute, 2);
    rec.addrs = {10, 11, 0, 0};
    rec.psvs = {0, 0, 0, 0};
    Pics pics = picsFromRecords({rec}, 100);
    EXPECT_DOUBLE_EQ(pics.unitCycles(10), 50.0);
    EXPECT_DOUBLE_EQ(pics.unitCycles(11), 50.0);
}

TEST(PicsFromRecords, FiltersByCore)
{
    SampleRecord a;
    a.coreId = 0;
    a.flags = SampleRecord::makeFlags(CommitState::Stalled, 1);
    a.addrs[0] = 5;
    SampleRecord b = a;
    b.coreId = 1;
    b.addrs[0] = 6;
    std::vector<SampleRecord> recs{a, b};
    Pics only0 = picsFromRecords(recs, 10, 0x1ff, 0);
    EXPECT_DOUBLE_EQ(only0.unitCycles(5), 10.0);
    EXPECT_DOUBLE_EQ(only0.unitCycles(6), 0.0);
    Pics all = picsFromRecords(recs, 10, 0x1ff, -1);
    EXPECT_DOUBLE_EQ(all.total(), 20.0);
}

TEST(PicsFromRecords, AppliesEventMask)
{
    SampleRecord rec;
    rec.flags = SampleRecord::makeFlags(CommitState::Stalled, 1);
    rec.addrs[0] = 1;
    Psv sig;
    sig.set(Event::DrSq);
    sig.set(Event::StL1);
    rec.psvs[0] = sig.bits();
    Pics pics = picsFromRecords({rec}, 10, ibsEventSet().mask);
    Psv expect;
    expect.set(Event::StL1);
    EXPECT_DOUBLE_EQ(pics.cycles(1, expect.bits()), 10.0);
}

TEST(RecorderPipeline, FileMatchesLiveSamplerExactly)
{
    // Record TEA samples to a file during simulation, rebuild PICS from
    // the file, and verify they are bit-identical to the live sampler's.
    TempFile tmp("pipeline.bin");
    Workload w = workloads::byName("mcf");
    CoreRun run = makeCore(std::move(w));
    TechniqueSampler tea{teaConfig(113)};
    SampleBuffer buffer;
    tea.setRecorder(&buffer, 0, 1, 1);
    run->addSink(&tea);
    run->run();
    buffer.writeFile(tmp.path);

    auto records = SampleBuffer::readFile(tmp.path);
    EXPECT_EQ(records.size(), tea.samplesTaken());
    Pics rebuilt = picsFromRecords(records, 113);
    EXPECT_NEAR(rebuilt.total(), tea.pics().total(), 1e-6);
    EXPECT_NEAR(rebuilt.errorAgainst(tea.pics()), 0.0, 1e-9);
}

TEST(RecorderPipeline, TaggingTechniquesRecordToo)
{
    Workload w = workloads::byName("exchange2");
    CoreRun run = makeCore(std::move(w));
    TechniqueSampler ibs{ibsConfig(127)};
    SampleBuffer buffer;
    ibs.setRecorder(&buffer, 0, 1, 1);
    run->addSink(&ibs);
    run->run();
    EXPECT_EQ(buffer.size(), ibs.samplesTaken());
    Pics rebuilt = picsFromRecords(buffer.records(), 127);
    EXPECT_NEAR(rebuilt.errorAgainst(ibs.pics()), 0.0, 1e-9);
}

TEST(InterruptInjection, OverheadScalesWithFrequency)
{
    auto cycles_at = [](Cycle period) {
        CoreConfig cfg;
        cfg.samplingInterruptPeriod = period;
        cfg.samplingHandlerCycles = 110;
        return runCore(workloads::aluLoop(20000), cfg)->stats().cycles;
    };
    Cycle base = cycles_at(0);
    Cycle slow = cycles_at(2000);
    Cycle slower = cycles_at(500);
    EXPECT_GT(slow, base);
    EXPECT_GT(slower, slow);
    // Measured overhead is close to handler/period for a front-end-bound
    // loop.
    double measured = static_cast<double>(slower) /
                          static_cast<double>(base) -
                      1.0;
    EXPECT_NEAR(measured, 110.0 / 500.0, 0.08);
}

TEST(InterruptInjection, CountsInterrupts)
{
    CoreConfig cfg;
    cfg.samplingInterruptPeriod = 1000;
    CoreRun run = runCore(workloads::aluLoop(20000), cfg);
    EXPECT_NEAR(static_cast<double>(run->stats().samplingInterrupts),
                static_cast<double>(run->stats().cycles) / 1000.0, 2.0);
}
