/**
 * @file
 * Gap-filling tests: Uncore writeback paths, DRAM bandwidth accounting,
 * TAGE internals (allocation, usefulness decay, storage), sampler
 * configuration helpers and report/stat renderers.
 */

#include <gtest/gtest.h>

#include "core/branch_predictor.hh"
#include "core/uncore.hh"
#include "isa/memory.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

TEST(Uncore, DirtyWritebackInstallsInLlc)
{
    CoreConfig cfg;
    Uncore uncore(cfg);
    Eviction ev{true, true, 0xabc000};
    uncore.writebackToLlc(ev);
    EXPECT_TRUE(uncore.llcContains(0xabc000));
}

TEST(Uncore, CleanEvictionIsDropped)
{
    CoreConfig cfg;
    Uncore uncore(cfg);
    Eviction ev{true, false, 0xdef000};
    uncore.writebackToLlc(ev);
    EXPECT_FALSE(uncore.llcContains(0xdef000));
    EXPECT_EQ(uncore.dramLineTransfers(), 0u);
}

TEST(Uncore, WritebackToPresentLineMarksDirtyWithoutTraffic)
{
    CoreConfig cfg;
    Uncore uncore(cfg);
    bool miss = false;
    Cycle t = uncore.llcAccess(0x111000, 0, miss);
    std::uint64_t before = uncore.dramLineTransfers();
    uncore.writebackToLlc(Eviction{true, true, 0x111000});
    EXPECT_EQ(uncore.dramLineTransfers(), before);
    (void)t;
}

TEST(Uncore, DramBandwidthMonotonic)
{
    CoreConfig cfg;
    Uncore uncore(cfg);
    Cycle a = uncore.dramAccess(0);
    Cycle b = uncore.dramAccess(0);
    Cycle c = uncore.dramAccess(0);
    EXPECT_EQ(b - a, cfg.dramInterval);
    EXPECT_EQ(c - b, cfg.dramInterval);
    EXPECT_EQ(uncore.dramLineTransfers(), 3u);
}

TEST(Uncore, LlcMshrMergesSecondaryMisses)
{
    CoreConfig cfg;
    Uncore uncore(cfg);
    bool m1 = false;
    bool m2 = false;
    Cycle t1 = uncore.llcAccess(0x222000, 0, m1);
    Cycle t2 = uncore.llcAccess(0x222000, 1, m2);
    EXPECT_TRUE(m1);
    EXPECT_TRUE(m2); // still a miss, but merged
    EXPECT_LE(t2, t1); // no second DRAM round trip
    EXPECT_EQ(uncore.dramLineTransfers(), 1u);
}

TEST(Tage, AllocatesOnMispredictAndImproves)
{
    CoreConfig cfg;
    TagePredictor tage(cfg);
    // A history-determined pattern the bimodal table alone cannot learn
    // (period 3 at one pc).
    std::uint64_t early_wrong = 0;
    std::uint64_t late_wrong = 0;
    for (int i = 0; i < 9000; ++i) {
        bool taken = (i % 3) == 0;
        bool wrong = tage.predict(42) != taken;
        if (i < 300)
            early_wrong += wrong;
        if (i >= 8000)
            late_wrong += wrong;
        tage.update(42, taken);
    }
    EXPECT_LT(late_wrong, 20u);
    EXPECT_LT(late_wrong * 3, early_wrong + 1);
}

TEST(Tage, TracksManyBranchesConcurrently)
{
    CoreConfig cfg;
    TagePredictor tage(cfg);
    // 64 branch sites with distinct biases; TAGE must keep them apart.
    std::uint64_t wrong = 0;
    for (int i = 0; i < 40000; ++i) {
        InstIndex pc = static_cast<InstIndex>(i % 64);
        bool taken = (pc & 1) != 0; // site-determined direction
        if (i > 20000 && tage.predict(pc) != taken)
            ++wrong;
        tage.update(pc, taken);
    }
    EXPECT_LT(wrong, 100u);
}

TEST(Tage, StorageBitsAreReported)
{
    CoreConfig cfg;
    TagePredictor tage(cfg);
    GsharePredictor gshare(cfg);
    EXPECT_GT(tage.storageBits(), gshare.storageBits());
}

TEST(SamplerConfigs, HelpersMatchEventSets)
{
    EXPECT_EQ(teaConfig().eventMask, teaEventSet().mask);
    EXPECT_EQ(ibsConfig().eventMask, ibsEventSet().mask);
    EXPECT_EQ(speConfig().eventMask, speEventSet().mask);
    EXPECT_EQ(risConfig().eventMask, risEventSet().mask);
    EXPECT_EQ(dtagTeaConfig().eventMask, teaEventSet().mask);
    EXPECT_EQ(tipConfig().eventMask, 0u);
    EXPECT_EQ(dtagTeaConfig().policy, SamplePolicy::DispatchTag);
}

TEST(SamplerConfigs, PolicyNames)
{
    EXPECT_STREQ(samplePolicyName(SamplePolicy::TimeProportional),
                 "time-proportional");
    EXPECT_STREQ(samplePolicyName(SamplePolicy::FetchTag), "fetch-tag");
}

TEST(ConfigDescribe, MentionsKeyStructures)
{
    CoreConfig cfg;
    std::string d = cfg.describe();
    EXPECT_NE(d.find("192-entry ROB"), std::string::npos);
    EXPECT_NE(d.find("TAGE"), std::string::npos);
    cfg.predictor = PredictorKind::Gshare;
    EXPECT_NE(cfg.describe().find("gshare"), std::string::npos);
}

TEST(InterruptInjection, MemoryBoundWorkloadHidesHandler)
{
    // The handler's front-end bubble hides under long back-end stalls.
    auto cycles_at = [](Cycle period) {
        CoreConfig cfg;
        cfg.samplingInterruptPeriod = period;
        return runCore(workloads::pointerChase(512, 4, 4096 + 64), cfg)
            ->stats()
            .cycles;
    };
    Cycle base = cycles_at(0);
    Cycle with = cycles_at(2000);
    double overhead =
        static_cast<double>(with) / static_cast<double>(base) - 1.0;
    EXPECT_LT(overhead, 0.02); // far below the 110/2000 = 5.5% model
}
