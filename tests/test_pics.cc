/**
 * @file
 * Unit tests for the Pics container: accumulation, masking,
 * normalization, aggregation and the error metric.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "profilers/pics.hh"

using namespace tea;

namespace {

Psv
psvOf(std::initializer_list<Event> events)
{
    Psv p;
    for (Event e : events)
        p.set(e);
    return p;
}

} // namespace

TEST(Pics, AddAccumulates)
{
    Pics p;
    p.add(1, psvOf({Event::StL1}), 10.0);
    p.add(1, psvOf({Event::StL1}), 5.0);
    p.add(2, Psv{}, 1.0);
    EXPECT_DOUBLE_EQ(p.total(), 16.0);
    EXPECT_DOUBLE_EQ(p.cycles(1, psvOf({Event::StL1}).bits()), 15.0);
    EXPECT_DOUBLE_EQ(p.unitCycles(1), 15.0);
    EXPECT_EQ(p.size(), 2u);
}

TEST(Pics, ZeroOrNegativeAddIgnored)
{
    Pics p;
    p.add(1, Psv{}, 0.0);
    p.add(1, Psv{}, -1.0);
    EXPECT_EQ(p.size(), 0u);
    EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

TEST(Pics, TopUnitsRankedByCycles)
{
    Pics p;
    p.add(1, Psv{}, 5.0);
    p.add(2, Psv{}, 50.0);
    p.add(3, Psv{}, 20.0);
    auto top = p.topUnits(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 2u);
    EXPECT_EQ(top[1], 3u);
}

TEST(Pics, MaskedMergesComponents)
{
    Pics p;
    p.add(1, psvOf({Event::StL1, Event::DrSq}), 10.0);
    p.add(1, psvOf({Event::StL1}), 10.0);
    // Masking away DR-SQ merges both into (1, ST-L1).
    Pics m = p.masked(eventMask({Event::StL1}));
    EXPECT_DOUBLE_EQ(m.total(), 20.0);
    EXPECT_DOUBLE_EQ(m.cycles(1, psvOf({Event::StL1}).bits()), 20.0);
    EXPECT_EQ(m.size(), 1u);
}

TEST(Pics, NormalizedRescales)
{
    Pics p;
    p.add(1, Psv{}, 30.0);
    p.add(2, Psv{}, 10.0);
    Pics n = p.normalized(100.0);
    EXPECT_DOUBLE_EQ(n.total(), 100.0);
    EXPECT_DOUBLE_EQ(n.unitCycles(1), 75.0);
}

TEST(Pics, NormalizeEmptyStaysEmpty)
{
    Pics p;
    Pics n = p.normalized(100.0);
    EXPECT_DOUBLE_EQ(n.total(), 0.0);
}

TEST(Pics, ErrorAgainstSelfIsZero)
{
    Pics p;
    p.add(1, psvOf({Event::StL1}), 10.0);
    p.add(2, Psv{}, 30.0);
    EXPECT_DOUBLE_EQ(p.errorAgainst(p), 0.0);
}

TEST(Pics, ErrorOfDisjointIsOne)
{
    Pics a;
    a.add(1, Psv{}, 10.0);
    Pics b;
    b.add(2, Psv{}, 10.0);
    EXPECT_DOUBLE_EQ(a.errorAgainst(b), 1.0);
}

TEST(Pics, ErrorHalfOverlap)
{
    Pics golden;
    golden.add(1, Psv{}, 50.0);
    golden.add(2, Psv{}, 50.0);
    Pics mine;
    mine.add(1, Psv{}, 100.0); // everything on unit 1
    // Normalized to 100: min(50,100)=50 correct -> error 0.5.
    EXPECT_DOUBLE_EQ(mine.errorAgainst(golden), 0.5);
}

TEST(Pics, ErrorCountsSignatureMisattribution)
{
    Pics golden;
    golden.add(1, psvOf({Event::StL1}), 100.0);
    Pics mine;
    mine.add(1, psvOf({Event::StLlc}), 100.0); // right pc, wrong event
    EXPECT_DOUBLE_EQ(mine.errorAgainst(golden), 1.0);
}

TEST(Pics, ErrorIsBounded)
{
    Pics golden;
    golden.add(1, Psv{}, 70.0);
    golden.add(2, psvOf({Event::FlMb}), 30.0);
    Pics mine;
    mine.add(1, Psv{}, 40.0);
    mine.add(3, Psv{}, 60.0);
    double e = mine.errorAgainst(golden);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
}

TEST(Pics, AggregationToFunction)
{
    ProgramBuilder b("t");
    b.beginFunction("first");
    b.nop(); // index 0
    b.nop(); // index 1
    b.endFunction();
    b.beginFunction("second");
    b.halt(); // index 2
    b.endFunction();
    Program prog = b.build();

    Pics p;
    p.add(0, Psv{}, 10.0);
    p.add(1, psvOf({Event::StL1}), 5.0);
    p.add(2, Psv{}, 7.0);
    Pics fn = p.aggregated(prog, Granularity::Function);
    // Function ids are functionOf()+1.
    EXPECT_DOUBLE_EQ(fn.unitCycles(1), 15.0);
    EXPECT_DOUBLE_EQ(fn.unitCycles(2), 7.0);
    EXPECT_DOUBLE_EQ(fn.total(), 22.0);
    // Signatures survive aggregation.
    EXPECT_DOUBLE_EQ(fn.cycles(1, psvOf({Event::StL1}).bits()), 5.0);
}

TEST(Pics, AggregationToApplication)
{
    ProgramBuilder b("t");
    b.nop();
    b.halt();
    Program prog = b.build();
    Pics p;
    p.add(0, Psv{}, 10.0);
    p.add(1, psvOf({Event::FlEx}), 2.0);
    Pics app = p.aggregated(prog, Granularity::Application);
    EXPECT_DOUBLE_EQ(app.unitCycles(0), 12.0);
    EXPECT_EQ(app.size(), 2u); // two signatures remain distinct
}

TEST(Pics, FunctionErrorNeverExceedsInstructionError)
{
    // Aggregation can only merge misattributions within a unit.
    ProgramBuilder b("t");
    b.beginFunction("only");
    b.nop();
    b.nop();
    b.halt();
    b.endFunction();
    Program prog = b.build();

    Pics golden;
    golden.add(0, Psv{}, 50.0);
    golden.add(1, Psv{}, 50.0);
    Pics mine;
    mine.add(0, Psv{}, 100.0);

    double inst_err = mine.errorAgainst(golden);
    double fn_err = mine.aggregated(prog, Granularity::Function)
                        .errorAgainst(golden.aggregated(
                            prog, Granularity::Function));
    EXPECT_LE(fn_err, inst_err);
    EXPECT_DOUBLE_EQ(fn_err, 0.0);
}

TEST(Granularity, Names)
{
    EXPECT_STREQ(granularityName(Granularity::Instruction), "instruction");
    EXPECT_STREQ(granularityName(Granularity::Function), "function");
}
