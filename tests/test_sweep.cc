/**
 * @file
 * The sweep engine's contract (analysis/sweep):
 *  - golden expansion regression — the checked-in example sweeps pin
 *    their experiment count, names and expansion fingerprint, so spec
 *    expansion cannot drift without a deliberate sweepSpecVersion bump;
 *  - randomized acceptance — seeded random KernelSpec x preset
 *    experiments run with the invariant auditor at level 1 and produce
 *    bit-identical golden and technique Pics at 1 and 8 replay threads;
 *  - legacy-name compatibility — the generator-backed registry resolves
 *    every historical suite name to the same workload (same trace-cache
 *    fingerprint) as the direct factory;
 *  - end-to-end acceptance — the 120-experiment example sweep runs to
 *    completion through runExperimentSuite with trace caching on,
 *    auditing on, and zero degraded experiments.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "analysis/audit.hh"
#include "analysis/sweep.hh"
#include "analysis/trace_cache.hh"
#include "common/rng.hh"

using namespace tea;
using workloads::KernelSpec;
using workloads::MemLevel;

// --- knob application --------------------------------------------------

TEST(SweepParams, ApplyKernelParamSetsEveryKnob)
{
    KernelSpec s;
    applyKernelParam(s, "seed", "99");
    applyKernelParam(s, "iterations", "123");
    applyKernelParam(s, "level", "LLC");
    applyKernelParam(s, "footprint", "65536");
    applyKernelParam(s, "stride", "128");
    applyKernelParam(s, "dependent", "0");
    applyKernelParam(s, "loads", "3");
    applyKernelParam(s, "branches", "2");
    applyKernelParam(s, "taken", "250");
    applyKernelParam(s, "chain", "5");
    applyKernelParam(s, "chains", "4");
    applyKernelParam(s, "targets", "32");

    EXPECT_EQ(s.seed, 99u);
    EXPECT_EQ(s.iterations, 123u);
    EXPECT_EQ(s.level, MemLevel::Llc);
    EXPECT_EQ(s.footprintBytes, 65536u);
    EXPECT_EQ(s.strideBytes, 128u);
    EXPECT_FALSE(s.dependent);
    EXPECT_EQ(s.loadsPerIteration, 3u);
    EXPECT_EQ(s.branchesPerIteration, 2u);
    EXPECT_EQ(s.takenPermille, 250u);
    EXPECT_EQ(s.chainLength, 5u);
    EXPECT_EQ(s.chains, 4u);
    EXPECT_EQ(s.targetPool, 32u);
}

// --- expansion ---------------------------------------------------------

TEST(SweepExpand, PresetsOutermostLastAxisFastest)
{
    SweepSpec spec;
    spec.name = "t";
    spec.presets = {"big_ooo", "little_inorder"};
    spec.axes = {{"taken", {"100", "900"}}, {"chains", {"1", "2"}}};

    const std::vector<SweepExperiment> exps = expandSweep(spec);
    ASSERT_EQ(exps.size(), 8u);
    EXPECT_EQ(exps[0].name, "t/big_ooo/taken=100,chains=1");
    EXPECT_EQ(exps[1].name, "t/big_ooo/taken=100,chains=2");
    EXPECT_EQ(exps[2].name, "t/big_ooo/taken=900,chains=1");
    EXPECT_EQ(exps[4].name, "t/little_inorder/taken=100,chains=1");
    EXPECT_EQ(exps[7].name, "t/little_inorder/taken=900,chains=2");
    EXPECT_EQ(exps[0].spec.takenPermille, 100u);
    EXPECT_EQ(exps[7].spec.chains, 2u);
}

TEST(SweepExpand, NoAxesMeansOneBaseExperimentPerPreset)
{
    SweepSpec spec;
    spec.name = "t";
    spec.presets = {"big_ooo", "little_inorder"};
    const std::vector<SweepExperiment> exps = expandSweep(spec);
    ASSERT_EQ(exps.size(), 2u);
    EXPECT_EQ(exps[0].name, "t/big_ooo/base");
    EXPECT_EQ(exps[1].name, "t/little_inorder/base");
}

TEST(SweepExpand, FootprintsResolveAgainstEachPresetsCaches)
{
    SweepSpec spec;
    spec.presets = {"big_ooo", "big_ooo_mini_caches"};
    spec.axes = {{"level", {"L1D"}}};
    const std::vector<SweepExperiment> exps = expandSweep(spec);
    ASSERT_EQ(exps.size(), 2u);
    // Half-the-L1D default: the mini-cache preset's L1D is smaller, so
    // its resolved footprint must be smaller too — a level axis targets
    // the same *level* everywhere, not the same byte count.
    EXPECT_GT(exps[0].spec.footprintBytes, exps[1].spec.footprintBytes);
    EXPECT_GT(exps[1].spec.footprintBytes, 0u);
}

// --- golden expansion regression ---------------------------------------

TEST(SweepGolden, ExampleSweepExpansionIsPinned)
{
    const std::vector<SweepExperiment> exps = expandSweep(exampleSweep());
    ASSERT_EQ(exps.size(), 120u);
    EXPECT_EQ(exps.front().name,
              "example/big_ooo/level=L1D,dependent=1,taken=100,chains=1");
    EXPECT_EQ(
        exps.back().name,
        "example/little_inorder/level=MEM,dependent=0,taken=900,chains=4");
    // The full expansion — every name, resolved spec and config — pins
    // to one fingerprint. A mismatch means expansion drifted: retune
    // deliberately and bump sweepSpecVersion.
    EXPECT_EQ(hashHex(sweepExpansionFingerprint(exps)),
              "654904b994890419");
}

TEST(SweepGolden, SmokeSweepExpansionIsPinned)
{
    const std::vector<SweepExperiment> exps = expandSweep(smokeSweep());
    ASSERT_EQ(exps.size(), 12u);
    EXPECT_EQ(exps.front().name, "smoke/big_ooo/level=L1D,taken=200");
    EXPECT_EQ(exps.back().name,
              "smoke/little_inorder/level=MEM,taken=800");
    EXPECT_EQ(hashHex(sweepExpansionFingerprint(exps)),
              "1883e94a2f9849a4");
}

// --- legacy suite names ------------------------------------------------

TEST(SweepRegistry, SuiteNamesUnchangedByRegistryMigration)
{
    const std::vector<std::string> expected = {
        "lbm",       "nab",       "bwaves",    "omnetpp",
        "fotonik3d", "exchange2", "mcf",       "xalancbmk",
        "cactuBSSN", "xz",        "gcc",       "deepsjeng",
        "roms",      "cam4",      "perlbench",
    };
    EXPECT_EQ(workloads::suiteNames(), expected);
}

TEST(SweepRegistry, LegacyNamesResolveToTheFactoryWorkloads)
{
    const CoreConfig cfg;
    EXPECT_EQ(TraceCache::fingerprintOf(workloads::byName("lbm"), cfg),
              TraceCache::fingerprintOf(workloads::lbm(), cfg));
    EXPECT_EQ(TraceCache::fingerprintOf(workloads::byName("mcf"), cfg),
              TraceCache::fingerprintOf(workloads::mcf(), cfg));
    EXPECT_EQ(
        TraceCache::fingerprintOf(workloads::byName("exchange2"), cfg),
        TraceCache::fingerprintOf(workloads::exchange2(), cfg));
}

// --- randomized acceptance ---------------------------------------------

namespace {

/** Small random spec: every feature possible, bounded runtime. */
KernelSpec
randomSpec(Rng &rng)
{
    KernelSpec s;
    s.seed = rng.next();
    s.iterations = static_cast<unsigned>(rng.range(200, 600));
    s.level = static_cast<MemLevel>(rng.below(4));
    s.footprintBytes = 1ULL << rng.range(12, 17); // 4 KiB .. 128 KiB
    s.strideBytes = 64;
    s.dependent = rng.below(2) != 0;
    s.loadsPerIteration = static_cast<unsigned>(rng.range(1, 3));
    s.branchesPerIteration = static_cast<unsigned>(rng.below(3));
    s.takenPermille = static_cast<unsigned>(rng.below(1001));
    s.chainLength = static_cast<unsigned>(rng.below(5));
    s.chains = static_cast<unsigned>(rng.range(1, 4));
    s.targetPool = rng.below(2) ? 0 : 24;
    return s;
}

} // namespace

TEST(SweepAcceptance, RandomSpecsAuditCleanAndThreadInvariant)
{
    Rng rng(777);
    const std::vector<std::string> presetNames = presets::names();
    for (int i = 0; i < 6; ++i) {
        const KernelSpec spec = randomSpec(rng);
        const CoreConfig cfg =
            presets::byName(presetNames[rng.below(presetNames.size())]);
        SCOPED_TRACE(workloads::canonicalKernelName(spec));

        // audit=1 threads an InvariantAuditor through the replay (fatal
        // on any trace/PSV-legality violation) and verifies golden
        // cycle conservation.
        RunnerOptions serial;
        serial.threads = 1;
        serial.audit = 1;
        RunnerOptions parallel = serial;
        parallel.threads = 8;

        ExperimentResult a = runWorkload(workloads::generateKernel(spec),
                                         standardTechniques(), serial,
                                         cfg);
        ExperimentResult b = runWorkload(workloads::generateKernel(spec),
                                         standardTechniques(), parallel,
                                         cfg);

        ASSERT_FALSE(a.failed()) << a.error;
        ASSERT_FALSE(b.failed()) << b.error;
        EXPECT_EQ(a.stats.cycles, b.stats.cycles);
        EXPECT_EQ(auditPicsIdentical(a.golden->pics(), b.golden->pics()),
                  "");
        ASSERT_EQ(a.techniques.size(), b.techniques.size());
        for (std::size_t t = 0; t < a.techniques.size(); ++t) {
            SCOPED_TRACE(a.techniques[t].config.name);
            EXPECT_EQ(auditPicsIdentical(a.techniques[t].pics,
                                         b.techniques[t].pics),
                      "");
        }
    }
}

// --- end-to-end example sweep ------------------------------------------

TEST(SweepAcceptance, ExampleSweepRunsToCompletionAuditedAndCached)
{
    namespace fs = std::filesystem;
    const fs::path cacheDir =
        fs::temp_directory_path() / "tea-test-sweep-cache";
    fs::remove_all(cacheDir);

    RunnerOptions opts;
    opts.threads =
        std::max(1u, std::thread::hardware_concurrency());
    opts.audit = 1;
    opts.cache.enabled = true;
    opts.cache.dir = cacheDir.string();

    SweepRunResult run =
        runSweep(exampleSweep(), standardTechniques(), opts);

    EXPECT_EQ(run.experiments.size(), 120u);
    ASSERT_EQ(run.results.size(), 120u);
    EXPECT_EQ(run.degraded(), 0u);
    for (const ExperimentResult &r : run.results)
        EXPECT_FALSE(r.failed()) << r.name << ": " << r.error;

    const std::string report = renderSweepReport(run);
    EXPECT_NE(report.find("120 experiments"), std::string::npos);
    EXPECT_NE(report.find("0 degraded"), std::string::npos);
    // Every experiment simulated exactly once into the cache.
    EXPECT_FALSE(fs::is_empty(cacheDir));

    fs::remove_all(cacheDir);
}
