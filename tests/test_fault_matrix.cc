/**
 * @file
 * Fault-injection matrix over the replay/cache pipeline (the PR's
 * acceptance test): for every registered failpoint, armed on both the
 * cache store path (cold run) and the load path (warm run), the outcome
 * must be one of exactly two things — a recovered run whose Pics are
 * bit-identical to the fault-free baseline, or a localized
 * per-experiment failure (an exception, never process death). In both
 * cases a disarmed rerun against whatever on-disk state the faulted run
 * left behind must fully recover: no failpoint may poison the cache.
 *
 * Targeted tests then pin down the individual self-healing behaviours:
 * transient-error retry, quarantine of damaged entries, per-experiment
 * containment in suites, lock-serialized rewrites, and temporary-file
 * cleanup when an experiment dies mid-write.
 */

#include <algorithm>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "analysis/trace_cache.hh"
#include "common/failpoint.hh"
#include "common/file_lock.hh"
#include "profilers/golden.hh"
#include "profilers/pics.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

std::vector<PicsComponent>
sortedComponents(const Pics &p)
{
    std::vector<PicsComponent> cs = p.components();
    std::sort(cs.begin(), cs.end(),
              [](const PicsComponent &a, const PicsComponent &b) {
                  return a.unit != b.unit ? a.unit < b.unit
                                          : a.signature < b.signature;
              });
    return cs;
}

/** Assert two Pics are bit-identical (exact doubles, same cells). */
void
expectPicsIdentical(const Pics &a, const Pics &b)
{
    EXPECT_EQ(a.total(), b.total()); // exact, not approximate
    std::vector<PicsComponent> ca = sortedComponents(a);
    std::vector<PicsComponent> cb = sortedComponents(b);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].unit, cb[i].unit);
        EXPECT_EQ(ca[i].signature, cb[i].signature);
        EXPECT_EQ(ca[i].cycles, cb[i].cycles);
    }
}

/** A scratch cache directory removed (recursively) on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
    {
        char tmpl[] = "/tmp/tea-fault-matrix-XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : "";
    }

    ~TempCacheDir()
    {
        if (!dir_.empty())
            removeTree(dir_);
    }

    const std::string &path() const { return dir_; }

    /** Names in @p sub relative to the cache dir ("" = the root). */
    std::vector<std::string> list(const std::string &sub = "") const
    {
        return listAt(sub.empty() ? dir_ : dir_ + "/" + sub);
    }

    /** Cache entries (*.teatrc) in the root, unsorted. */
    std::vector<std::string> entries() const
    {
        std::vector<std::string> out;
        for (const std::string &name : list()) {
            if (endsWith(name, ".teatrc"))
                out.push_back(name);
        }
        return out;
    }

    /** True when any file under the tree has @p suffix. */
    bool anyWithSuffix(const std::string &suffix) const
    {
        for (const std::string &name : list()) {
            if (endsWith(name, suffix))
                return true;
            for (const std::string &sub : list(name)) {
                if (endsWith(sub, suffix))
                    return true;
            }
        }
        return false;
    }

    static bool endsWith(const std::string &s, const std::string &tail)
    {
        return s.size() >= tail.size() &&
               s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
    }

  private:
    static std::vector<std::string> listAt(const std::string &at)
    {
        std::vector<std::string> out;
        if (DIR *d = ::opendir(at.c_str())) {
            while (struct dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    out.push_back(name);
            }
            ::closedir(d);
        }
        return out;
    }

    static void removeTree(const std::string &at)
    {
        for (const std::string &name : listAt(at)) {
            const std::string full = at + "/" + name;
            struct ::stat st{};
            if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeTree(full);
            else
                std::remove(full.c_str());
        }
        ::rmdir(at.c_str());
    }

    std::string dir_;
};

RunnerOptions
cachedOptions(const TempCacheDir &dir, unsigned threads = 1)
{
    RunnerOptions o;
    o.threads = threads;
    o.cache.enabled = true;
    o.cache.dir = dir.path();
    // Injected lock contention must not stall the matrix for the
    // production default of 5 s per acquire.
    o.cacheLockTimeoutMs = 50;
    return o;
}

/** The matrix workload: small, deterministic, non-trivial Pics. */
ExperimentResult
runOnce(const RunnerOptions &opts)
{
    return runWorkload(workloads::aluLoop(300), {teaConfig()}, opts);
}

/** Every test starts and ends with all failpoints disarmed. */
class FaultMatrix : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!failpoints::compiledIn())
            GTEST_SKIP() << "failpoint seams compiled out";
        failpoints::resetAll();
    }
    void TearDown() override { failpoints::resetAll(); }
};

} // namespace

TEST_F(FaultMatrix, EveryFailpointRecoversOrFailsLocalized)
{
    // Fault-free baseline: the historical serial path, cache off.
    const ExperimentResult base = runOnce(RunnerOptions{});

    std::vector<std::string> names;
    for (Failpoint *fp : failpoints::all())
        names.push_back(fp->name());
    ASSERT_GE(names.size(), 20u); // the wired seams are all registered

    for (const std::string &name : names) {
        // warm=false arms the seam for a cold run (store path); warm
        // arms it against a healthy pre-populated entry (load path).
        for (bool warm : {false, true}) {
            SCOPED_TRACE(name + (warm ? " [load]" : " [store]"));
            TempCacheDir dir;
            RunnerOptions opts = cachedOptions(dir, 2);
            if (warm) {
                const ExperimentResult populate = runOnce(opts);
                ASSERT_FALSE(populate.failed());
            }

            failpoints::configure(name, "always");
            bool localized = false;
            try {
                const ExperimentResult got = runOnce(opts);
                // Recovered: the run healed around the fault and its
                // result is bit-identical to the baseline.
                expectPicsIdentical(base.golden->pics(),
                                    got.golden->pics());
            } catch (const std::exception &) {
                // Localized: the experiment failed as a containable
                // exception. (Process death would fail the whole test
                // binary, which is the point.)
                localized = true;
            }
            failpoints::resetAll();

            // Either way, a disarmed rerun against whatever the faulted
            // run left on disk must fully recover — a poisoned cache
            // would diverge here.
            const ExperimentResult after = runOnce(opts);
            expectPicsIdentical(base.golden->pics(),
                                after.golden->pics());
            (void)localized;
        }
    }
}

TEST_F(FaultMatrix, TransientLoadFaultRetriesToAHit)
{
    TempCacheDir dir;
    const ExperimentResult cold = runOnce(cachedOptions(dir));
    ASSERT_TRUE(cold.replay.cacheStored);

    // One injected EAGAIN on the entry's open: the retry layer must
    // turn it into an ordinary hit, and count the recovery.
    failpoints::configure("trace_io.map_open", "nth:1@eagain");
    const ExperimentResult warm = runOnce(cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit);
    EXPECT_GE(warm.replay.ioRetries, 1u);
    EXPECT_GE(warm.replay.ioRecoveries, 1u);
    expectPicsIdentical(cold.golden->pics(), warm.golden->pics());
}

TEST_F(FaultMatrix, DamagedEntryIsQuarantinedThenRewritten)
{
    TempCacheDir dir;
    const ExperimentResult cold = runOnce(cachedOptions(dir));
    ASSERT_TRUE(cold.replay.cacheStored);
    std::vector<std::string> entries = dir.entries();
    ASSERT_EQ(entries.size(), 1u);
    const std::string entry = dir.path() + "/" + entries[0];

    // Corrupt one payload byte in place.
    {
        std::FILE *f = std::fopen(entry.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }

    const ExperimentResult again = runOnce(cachedOptions(dir));
    EXPECT_FALSE(again.replay.cacheHit);
    EXPECT_TRUE(again.replay.cacheStored);
    EXPECT_EQ(again.replay.quarantined, 1u);
    expectPicsIdentical(cold.golden->pics(), again.golden->pics());
    EXPECT_NE(again.replay.render().find("quarantined"),
              std::string::npos);

    // The damaged file moved (with its reason) under quarantine/ and
    // can never satisfy a lookup again; the rewritten entry hits.
    std::vector<std::string> q = dir.list("quarantine");
    EXPECT_EQ(q.size(), 2u); // the moved entry + its .reason note
    bool has_reason = false;
    for (const std::string &name : q)
        has_reason = has_reason || TempCacheDir::endsWith(name, ".reason");
    EXPECT_TRUE(has_reason);

    const ExperimentResult warm = runOnce(cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit);
    expectPicsIdentical(cold.golden->pics(), warm.golden->pics());
}

TEST_F(FaultMatrix, WorkerDeathIsContainedToExperimentFailure)
{
    TempCacheDir dir;
    failpoints::configure("runner.worker_body", "nth:1");
    EXPECT_THROW(runOnce(cachedOptions(dir, 2)), ExperimentFailure);
    failpoints::resetAll();

    // The failure was contained: the process is alive, and the rerun
    // (possibly hitting the entry the faulted run still published) is
    // bit-identical to a fault-free baseline.
    const ExperimentResult base = runOnce(RunnerOptions{});
    const ExperimentResult after = runOnce(cachedOptions(dir, 2));
    expectPicsIdentical(base.golden->pics(), after.golden->pics());
}

TEST_F(FaultMatrix, ProducerDeathLeavesNoCacheTemporary)
{
    TempCacheDir dir;
    // Fail the second queue push: the first chunk frame is already in
    // the cache temporary when the producer dies, so this exercises the
    // mid-write unwind — the writer must unlink its *.tmp on the way
    // out instead of leaving it to accumulate.
    failpoints::configure("runner.queue_push", "nth:2");
    EXPECT_THROW(runOnce(cachedOptions(dir, 2)), FailpointError);
    failpoints::resetAll();
    EXPECT_FALSE(dir.anyWithSuffix(".tmp"));
    EXPECT_TRUE(dir.entries().empty()); // nothing half-published either

    const ExperimentResult after = runOnce(cachedOptions(dir, 2));
    EXPECT_TRUE(after.replay.cacheStored);
}

TEST_F(FaultMatrix, SuiteContainsPerExperimentFailures)
{
    const std::vector<std::string> names = {"exchange2", "mcf", "nab"};

    // Fail the second experiment of the suite; the others must
    // complete untouched.
    failpoints::configure("runner.experiment", "nth:2");
    std::vector<ExperimentResult> results =
        runBenchmarkSuite(names, {teaConfig()}, RunnerOptions{});
    failpoints::resetAll();

    ASSERT_EQ(results.size(), names.size());
    EXPECT_FALSE(results[0].failed());
    EXPECT_TRUE(results[1].failed());
    EXPECT_FALSE(results[2].failed());
    EXPECT_NE(results[1].error.find("runner.experiment"),
              std::string::npos);
    for (const ExperimentResult &r : results)
        EXPECT_EQ(r.replay.degradedExperiments, 1u);

    const std::string report = renderSuiteErrors(results);
    EXPECT_NE(report.find("mcf"), std::string::npos);
    EXPECT_EQ(report.find("exchange2"), std::string::npos);

    // The healthy experiments really are healthy, bit for bit.
    std::vector<ExperimentResult> clean =
        runBenchmarkSuite(names, {teaConfig()}, RunnerOptions{});
    EXPECT_TRUE(renderSuiteErrors(clean).empty());
    for (const ExperimentResult &r : clean)
        EXPECT_EQ(r.replay.degradedExperiments, 0u);
    expectPicsIdentical(clean[0].golden->pics(),
                        results[0].golden->pics());
    expectPicsIdentical(clean[2].golden->pics(),
                        results[2].golden->pics());
}

TEST_F(FaultMatrix, ParallelSuiteContainsExactlyTheInjectedFailure)
{
    const std::vector<std::string> names = {"exchange2", "mcf", "nab"};
    RunnerOptions opts;
    opts.threads = 3;
    failpoints::configure("runner.experiment", "nth:2");
    std::vector<ExperimentResult> results =
        runBenchmarkSuite(names, {teaConfig()}, opts);
    failpoints::resetAll();

    unsigned failures = 0;
    for (const ExperimentResult &r : results)
        failures += r.failed() ? 1 : 0;
    EXPECT_EQ(failures, 1u); // which worker drew it is scheduling, the
                             // count is not
    for (const ExperimentResult &r : results)
        EXPECT_EQ(r.replay.degradedExperiments, 1u);
}

TEST_F(FaultMatrix, RewriteOfDamagedEntryRequiresTheLock)
{
    TempCacheDir dir;
    const ExperimentResult cold = runOnce(cachedOptions(dir));
    ASSERT_TRUE(cold.replay.cacheStored);
    std::vector<std::string> entries = dir.entries();
    ASSERT_EQ(entries.size(), 1u);
    const std::string entry = dir.path() + "/" + entries[0];

    // Damage the entry, then hold its write lock as a concurrent
    // process would while rewriting it.
    {
        std::FILE *f = std::fopen(entry.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 200, SEEK_SET), 0);
        std::fputc(0x5a, f);
        std::fclose(f);
    }
    FileLock other;
    ASSERT_TRUE(other.acquire(TraceCache::lockPathFor(entry), 100));

    // The damaged entry is quarantined (rename needs no lock — it is
    // atomic and at-most-once), but the rewrite must NOT proceed
    // without the lock: this run degrades to simulate-without-storing.
    const ExperimentResult blocked = runOnce(cachedOptions(dir));
    EXPECT_FALSE(blocked.replay.cacheHit);
    EXPECT_FALSE(blocked.replay.cacheStored);
    EXPECT_EQ(blocked.replay.quarantined, 1u);
    expectPicsIdentical(cold.golden->pics(), blocked.golden->pics());
    EXPECT_TRUE(dir.entries().empty()); // no unserialized rewrite

    // Once the holder releases, the next run rewrites and hits again.
    other.release();
    const ExperimentResult rewrite = runOnce(cachedOptions(dir));
    EXPECT_TRUE(rewrite.replay.cacheStored);
    const ExperimentResult warm = runOnce(cachedOptions(dir));
    EXPECT_TRUE(warm.replay.cacheHit);
    expectPicsIdentical(cold.golden->pics(), warm.golden->pics());
}
