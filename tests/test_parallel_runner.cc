/**
 * @file
 * Golden-equivalence tests for the parallel replay engine: because every
 * observer replays the exact event sequence the simulation produced,
 * results must be *bit-identical* at any thread count — the core
 * determinism claim of out-of-band replay (TEA §4). Also unit-tests the
 * BroadcastQueue and the in-memory TraceBuffer the engine is built on.
 */

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "common/chunk_queue.hh"
#include "core/trace_buffer.hh"
#include "profilers/golden.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

/** Components sorted by (unit, signature) for order-free comparison. */
std::vector<PicsComponent>
sortedComponents(const Pics &p)
{
    std::vector<PicsComponent> cs = p.components();
    std::sort(cs.begin(), cs.end(),
              [](const PicsComponent &a, const PicsComponent &b) {
                  return a.unit != b.unit ? a.unit < b.unit
                                          : a.signature < b.signature;
              });
    return cs;
}

/** Assert two Pics are bit-identical (exact doubles, same cells). */
void
expectPicsIdentical(const Pics &a, const Pics &b)
{
    EXPECT_EQ(a.total(), b.total()); // exact, not approximate
    std::vector<PicsComponent> ca = sortedComponents(a);
    std::vector<PicsComponent> cb = sortedComponents(b);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].unit, cb[i].unit);
        EXPECT_EQ(ca[i].signature, cb[i].signature);
        EXPECT_EQ(ca[i].cycles, cb[i].cycles);
    }
}

/** Assert two experiment results are equivalent to the last bit. */
void
expectExperimentsIdentical(const ExperimentResult &serial,
                           const ExperimentResult &parallel)
{
    expectPicsIdentical(serial.golden->pics(), parallel.golden->pics());
    EXPECT_EQ(serial.golden->eventCounts().size(),
              parallel.golden->eventCounts().size());
    ASSERT_EQ(serial.techniques.size(), parallel.techniques.size());
    for (std::size_t i = 0; i < serial.techniques.size(); ++i) {
        const TechniqueResult &s = serial.techniques[i];
        const TechniqueResult &p = parallel.techniques[i];
        SCOPED_TRACE(s.config.name);
        EXPECT_EQ(s.samplesTaken, p.samplesTaken);
        EXPECT_EQ(s.samplesDropped, p.samplesDropped);
        expectPicsIdentical(s.pics, p.pics);
        // errorOf() folds the golden projection, aggregation and the
        // error metric — exact equality exercises the whole chain.
        EXPECT_EQ(serial.errorOf(s), parallel.errorOf(p));
        EXPECT_EQ(serial.errorOf(s, Granularity::Function),
                  parallel.errorOf(p, Granularity::Function));
    }
}

RunnerOptions
withThreads(unsigned threads)
{
    RunnerOptions o;
    o.threads = threads;
    return o;
}

} // namespace

class ParallelGoldenEquivalence
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ParallelGoldenEquivalence, BitIdenticalAcrossThreadCounts)
{
    const std::string name = GetParam();
    ExperimentResult serial =
        runBenchmark(name, standardTechniques(), withThreads(1));
    EXPECT_FALSE(serial.replay.parallel());

    for (unsigned threads : {2u, 8u}) {
        SCOPED_TRACE(threads);
        ExperimentResult par =
            runBenchmark(name, standardTechniques(), withThreads(threads));
        EXPECT_TRUE(par.replay.parallel());
        EXPECT_EQ(serial.stats.cycles, par.stats.cycles);
        EXPECT_EQ(serial.stats.committedUops, par.stats.committedUops);
        expectExperimentsIdentical(serial, par);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelGoldenEquivalence,
                         ::testing::Values("exchange2", "mcf", "nab"));

TEST(ParallelRunner, ChunkingGeometryDoesNotChangeResults)
{
    ExperimentResult serial =
        runBenchmark("fotonik3d", standardTechniques(), withThreads(1));

    // Pathological geometry: 7-event chunks through a 2-deep queue.
    RunnerOptions tiny;
    tiny.threads = 3;
    tiny.chunkEvents = 7;
    tiny.queueChunks = 2;
    ExperimentResult par =
        runBenchmark("fotonik3d", standardTechniques(), tiny);
    expectExperimentsIdentical(serial, par);
    EXPECT_GT(par.replay.chunksProduced, 100u);
}

TEST(ParallelRunner, ReplayStatsAccountForEveryChunkAndCycle)
{
    RunnerOptions opts = withThreads(4);
    ExperimentResult res =
        runBenchmark("exchange2", standardTechniques(), opts);
    const ReplayStats &rs = res.replay;

    ASSERT_EQ(rs.workers.size(), 4u); // 6 groups, 4 workers
    std::uint64_t groups = 0;
    for (const ReplayWorkerStats &w : rs.workers) {
        // Broadcast queue: every worker consumes every chunk.
        EXPECT_EQ(w.chunksConsumed, rs.chunksProduced);
        EXPECT_EQ(w.eventsReplayed, rs.eventsCaptured);
        EXPECT_EQ(w.cyclesReplayed, res.stats.cycles);
        groups += w.sinkGroups;
    }
    EXPECT_EQ(groups, standardTechniques().size() + 1);
    EXPECT_GT(rs.chunksProduced, 0u);
    EXPECT_GT(rs.eventsCaptured, res.stats.cycles);
}

TEST(ParallelRunner, MoreThreadsThanGroupsIsClamped)
{
    ExperimentResult res =
        runBenchmark("exchange2", {teaConfig()}, withThreads(64));
    EXPECT_EQ(res.replay.threads, 2u); // golden + 1 technique
    ExperimentResult serial =
        runBenchmark("exchange2", {teaConfig()}, withThreads(1));
    expectExperimentsIdentical(serial, res);
}

TEST(ParallelRunner, SuiteMatchesSerialLoop)
{
    const std::vector<std::string> names{"exchange2", "mcf"};
    std::vector<ExperimentResult> par =
        runBenchmarkSuite(names, standardTechniques(), withThreads(4));
    ASSERT_EQ(par.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        SCOPED_TRACE(names[i]);
        EXPECT_EQ(par[i].name, names[i]);
        ExperimentResult serial =
            runBenchmark(names[i], standardTechniques(), withThreads(1));
        expectExperimentsIdentical(serial, par[i]);
    }
}

TEST(TraceBufferTest, ReplayMatchesLiveGolden)
{
    GoldenReference live;
    TraceBuffer buffer(512);
    {
        CoreRun run = makeCore(workloads::aluLoop(3000));
        run->addSink(&live);
        run->addSink(&buffer);
        run->run();
    }
    buffer.finish();

    GoldenReference replayed;
    std::uint64_t cycles = buffer.replay({&replayed});
    EXPECT_GT(cycles, 0u);
    expectPicsIdentical(live.pics(), replayed.pics());

    // Replay is repeatable: a second pass sees the same trace.
    GoldenReference again;
    EXPECT_EQ(buffer.replay({&again}), cycles);
    expectPicsIdentical(replayed.pics(), again.pics());
}

TEST(BroadcastQueueTest, EveryConsumerSeesEveryItemInOrder)
{
    constexpr unsigned consumers = 3;
    constexpr int items = 1000;
    BroadcastQueue<int> q(4, consumers);

    std::vector<std::vector<int>> seen(consumers);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
            int v;
            while (q.pop(c, v))
                seen[c].push_back(v);
        });
    }
    for (int i = 0; i < items; ++i)
        q.push(i);
    q.close();
    for (std::thread &t : threads)
        t.join();

    for (unsigned c = 0; c < consumers; ++c) {
        ASSERT_EQ(seen[c].size(), static_cast<std::size_t>(items));
        for (int i = 0; i < items; ++i)
            EXPECT_EQ(seen[c][i], i);
    }
    EXPECT_EQ(q.pushed(), static_cast<std::uint64_t>(items));
}

TEST(BroadcastQueueTest, ProducerBlocksOnSlowConsumer)
{
    BroadcastQueue<int> q(2, 1);
    q.push(1);
    q.push(2);
    // Window full: the next push must wait until the consumer drains.
    std::thread producer([&] {
        q.push(3);
        q.close();
    });
    int v = 0;
    ASSERT_TRUE(q.pop(0, v));
    EXPECT_EQ(v, 1);
    ASSERT_TRUE(q.pop(0, v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(q.pop(0, v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(q.pop(0, v));
    producer.join();
    EXPECT_GE(q.fullWaits(), 0u);
}

TEST(BroadcastQueueTest, CloseWakesIdleConsumers)
{
    BroadcastQueue<int> q(4, 2);
    std::thread c0([&] {
        int v;
        EXPECT_FALSE(q.pop(0, v));
    });
    std::thread c1([&] {
        int v;
        EXPECT_FALSE(q.pop(1, v));
    });
    q.close();
    c0.join();
    c1.join();
}
