/**
 * @file
 * Unit tests for the composed memory hierarchy (latencies, MSHR
 * merging, bandwidth, prefetchers, event flags).
 */

#include <gtest/gtest.h>

#include "core/memory_system.hh"
#include "isa/memory.hh"

using namespace tea;

namespace {

CoreConfig
cfg()
{
    CoreConfig c;
    return c;
}

} // namespace

TEST(MemorySystem, ColdLoadMissesEverywhere)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    MemAccessResult r = m.load(0x100000, 0);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_TRUE(r.llcMiss);
    EXPECT_GE(r.done, static_cast<Cycle>(c.dramLatency));
}

TEST(MemorySystem, SecondLoadHitsL1)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    MemAccessResult miss = m.load(0x100000, 0);
    MemAccessResult hit = m.load(0x100008, miss.done);
    EXPECT_FALSE(hit.l1Miss);
    EXPECT_EQ(hit.done, miss.done + c.l1d.hitLatency);
}

TEST(MemorySystem, OutstandingLineMergesInMshr)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    MemAccessResult first = m.load(0x200000, 0);
    MemAccessResult merged = m.load(0x200008, 1); // same line, in flight
    EXPECT_TRUE(merged.l1Miss);
    EXPECT_FALSE(merged.llcMiss); // secondary miss, no new LLC access
    EXPECT_EQ(merged.done, first.done);
}

TEST(MemorySystem, LlcHitAfterL1Eviction)
{
    CoreConfig c = cfg();
    c.nextLinePrefetcher = false;
    MemorySystem m(c);
    MemAccessResult first = m.load(0x300000, 0);
    Cycle t = first.done;
    // Thrash the L1 set of 0x300000 (same set every l1_sets lines).
    Addr set_stride = (c.l1d.sizeBytes / c.l1d.ways);
    for (unsigned i = 1; i <= c.l1d.ways; ++i) {
        t = m.load(0x300000 + i * set_stride, t + 1).done;
    }
    MemAccessResult again = m.load(0x300000, t + 1);
    EXPECT_TRUE(again.l1Miss);
    EXPECT_FALSE(again.llcMiss);
    EXPECT_EQ(again.done, t + 1 + c.l1d.hitLatency + c.llc.hitLatency);
}

TEST(MemorySystem, DramBandwidthSerializesLines)
{
    CoreConfig c = cfg();
    c.nextLinePrefetcher = false;
    MemorySystem m(c);
    // Two distinct lines at the same cycle: the second is delayed by
    // the DRAM service interval.
    MemAccessResult a = m.load(0x400000, 0);
    MemAccessResult b = m.load(0x500000, 0);
    EXPECT_EQ(b.done, a.done + c.dramInterval);
}

TEST(MemorySystem, NextLinePrefetcherPullsFromLlc)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    // Warm two adjacent lines into the LLC.
    Cycle t = m.load(0x600000, 0).done;
    t = m.load(0x600040, t).done;
    // Evict both from L1 by thrashing the sets.
    Addr set_stride = (c.l1d.sizeBytes / c.l1d.ways);
    for (unsigned i = 1; i <= c.l1d.ways; ++i) {
        t = m.load(0x600000 + i * set_stride, t + 1).done;
        t = m.load(0x600040 + i * set_stride, t + 1).done;
    }
    // Demand-miss the first line: the prefetcher should pull line+1.
    MemAccessResult demand = m.load(0x600000, t + 1);
    MemAccessResult neigh = m.load(0x600040, demand.done + 100);
    EXPECT_FALSE(neigh.l1Miss)
        << "next-line prefetch should have filled 0x600040";
}

TEST(MemorySystem, StoreDrainAllocatesAndDirties)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    MemAccessResult w = m.storeDrain(0x700000, 0);
    EXPECT_TRUE(w.l1Miss); // write-allocate RFO
    MemAccessResult r = m.load(0x700000, w.done);
    EXPECT_FALSE(r.l1Miss);
}

TEST(MemorySystem, PrefetchWarmsL1)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    MemAccessResult pf = m.prefetch(0x800000, 0);
    MemAccessResult r = m.load(0x800000, pf.done + 1);
    EXPECT_FALSE(r.l1Miss);
}

TEST(MemorySystem, IFetchMissesAndFills)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    IFetchResult first = m.ifetch(0x10000, 0);
    EXPECT_TRUE(first.l1Miss);
    EXPECT_TRUE(first.itlbMiss);
    IFetchResult second = m.ifetch(0x10004, first.done);
    EXPECT_FALSE(second.l1Miss);
    EXPECT_FALSE(second.itlbMiss);
}

TEST(MemorySystem, DataTranslateReportsTlbMiss)
{
    CoreConfig c = cfg();
    MemorySystem m(c);
    TlbResult t1 = m.dataTranslate(0x900000);
    EXPECT_TRUE(t1.l1Miss);
    TlbResult t2 = m.dataTranslate(0x900100);
    EXPECT_FALSE(t2.l1Miss);
}

TEST(MemorySystem, DramTransferCountTracksTraffic)
{
    CoreConfig c = cfg();
    c.nextLinePrefetcher = false;
    MemorySystem m(c);
    std::uint64_t before = m.dramLineTransfers();
    m.load(0xa00000, 0);
    m.load(0xa00040, 0);
    EXPECT_EQ(m.dramLineTransfers(), before + 2);
}
