/**
 * @file
 * Tests for the multi-core system: shared-uncore timing, functional
 * isolation, contention effects and per-thread profiling.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

TEST(Multicore, SingleCoreSystemMatchesStandaloneCore)
{
    Workload w1 = workloads::branchNoise(3000);
    Workload w2 = workloads::branchNoise(3000);

    CoreRun solo = runCore(std::move(w1));

    CoreConfig cfg;
    System sys(cfg);
    unsigned id = sys.addCore(std::move(w2.program),
                              std::move(w2.initial));
    sys.run();
    EXPECT_EQ(sys.core(id).stats().cycles, solo->stats().cycles);
    EXPECT_EQ(sys.core(id).stats().committedUops,
              solo->stats().committedUops);
}

TEST(Multicore, BothCoresHaltWithCorrectResults)
{
    Workload a = workloads::aluLoop(2000);
    Workload b = workloads::streamSum(2000, 1);
    ArchState oracle_a = runFunctional(a.program, a.initial);
    ArchState oracle_b = runFunctional(b.program, b.initial);

    CoreConfig cfg;
    System sys(cfg);
    unsigned ca = sys.addCore(std::move(a.program), std::move(a.initial));
    unsigned cb = sys.addCore(std::move(b.program), std::move(b.initial));
    sys.run();

    EXPECT_TRUE(sys.core(ca).halted());
    EXPECT_TRUE(sys.core(cb).halted());
    for (unsigned r = 0; r < numArchRegs; ++r) {
        EXPECT_EQ(sys.core(ca).archState().regs[r], oracle_a.regs[r]);
        EXPECT_EQ(sys.core(cb).archState().regs[r], oracle_b.regs[r]);
    }
}

TEST(Multicore, SharedBandwidthSlowsMemoryBoundCorun)
{
    // A memory-bound kernel co-run with another memory-bound kernel must
    // be slower than run alone (shared DRAM bandwidth and LLC).
    Workload solo = workloads::streamSum(30000, 1);
    CoreRun alone = runCore(std::move(solo));

    CoreConfig cfg;
    System sys(cfg);
    Workload a = workloads::streamSum(30000, 1);
    Workload b = workloads::lbm(workloads::LbmParams{8192, 1, 0});
    unsigned ca = sys.addCore(std::move(a.program), std::move(a.initial));
    sys.addCore(std::move(b.program), std::move(b.initial));
    sys.run();

    EXPECT_GT(sys.core(ca).stats().cycles, alone->stats().cycles);
}

TEST(Multicore, ComputeBoundCorunBarelyAffected)
{
    Workload solo = workloads::aluLoop(30000);
    CoreRun alone = runCore(std::move(solo));

    CoreConfig cfg;
    System sys(cfg);
    Workload a = workloads::aluLoop(30000);
    Workload b = workloads::lbm(workloads::LbmParams{8192, 1, 0});
    unsigned ca = sys.addCore(std::move(a.program), std::move(a.initial));
    sys.addCore(std::move(b.program), std::move(b.initial));
    sys.run();

    double slowdown = static_cast<double>(sys.core(ca).stats().cycles) /
                      static_cast<double>(alone->stats().cycles);
    EXPECT_LT(slowdown, 1.05); // L1-resident: no shared resources used
}

TEST(Multicore, PerCoreGoldenCoverage)
{
    CoreConfig cfg;
    System sys(cfg);
    Workload a = workloads::branchNoise(2000);
    Workload b = workloads::streamSum(1000, 1);
    unsigned ca = sys.addCore(std::move(a.program), std::move(a.initial));
    unsigned cb = sys.addCore(std::move(b.program), std::move(b.initial));
    GoldenReference ga, gb;
    sys.addSink(ca, &ga);
    sys.addSink(cb, &gb);
    sys.run();
    EXPECT_NEAR(ga.pics().total() + ga.droppedCycles(),
                static_cast<double>(sys.core(ca).stats().cycles), 1.0);
    EXPECT_NEAR(gb.pics().total() + gb.droppedCycles(),
                static_cast<double>(sys.core(cb).stats().cycles), 1.0);
}

TEST(Multicore, SharedSampleBufferDemultiplexesByCore)
{
    CoreConfig cfg;
    System sys(cfg);
    Workload a = workloads::branchNoise(3000);
    Workload b = workloads::streamSum(2000, 1);
    unsigned ca = sys.addCore(std::move(a.program), std::move(a.initial));
    unsigned cb = sys.addCore(std::move(b.program), std::move(b.initial));

    SampleBuffer buffer;
    TechniqueSampler ta{teaConfig(101)};
    TechniqueSampler tb{teaConfig(101)};
    ta.setRecorder(&buffer, static_cast<std::uint16_t>(ca), 1, 1);
    tb.setRecorder(&buffer, static_cast<std::uint16_t>(cb), 2, 2);
    sys.addSink(ca, &ta);
    sys.addSink(cb, &tb);
    sys.run();

    Pics pa = picsFromRecords(buffer.records(), 101, 0x1ff,
                              static_cast<int>(ca));
    Pics pb = picsFromRecords(buffer.records(), 101, 0x1ff,
                              static_cast<int>(cb));
    EXPECT_NEAR(pa.total(), ta.pics().total(), 1e-6);
    EXPECT_NEAR(pb.total(), tb.pics().total(), 1e-6);
    EXPECT_NEAR(pa.errorAgainst(ta.pics()), 0.0, 1e-9);
    EXPECT_NEAR(pb.errorAgainst(tb.pics()), 0.0, 1e-9);
    EXPECT_GT(buffer.size(), 0u);
}

TEST(Multicore, UncoreSharedLlcVisibleAcrossCores)
{
    CoreConfig cfg;
    Uncore uncore(cfg);
    bool miss1 = false;
    Cycle t1 = uncore.llcAccess(0x123440, 0, miss1);
    EXPECT_TRUE(miss1);
    bool miss2 = false;
    Cycle t2 = uncore.llcAccess(0x123440, t1 + 1, miss2);
    EXPECT_FALSE(miss2); // second "core" hits the shared LLC
    EXPECT_LT(t2, t1 + 1 + cfg.dramLatency);
}
