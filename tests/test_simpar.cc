/**
 * @file
 * Time-parallel simulation suite (`ctest -L simpar`): bit-identity of
 * the stitched stream against the serial reference across workloads
 * and thread counts, the checkpoint restore-resume property under
 * randomized interval geometry, forced-fallback behavior when the
 * warmup is too small to converge, and the TEA_SIM_PARALLEL=verify
 * differential oracle.
 */

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/parallel_sim.hh"
#include "core/checkpoint.hh"
#include "core/core.hh"
#include "core/trace_buffer.hh"
#include "workloads/workload.hh"

namespace tea {
namespace {

std::vector<TraceEvent>
flatten(const TraceBuffer &buf)
{
    std::vector<TraceEvent> out;
    for (const auto &chunk : buf.chunks())
        out.insert(out.end(), chunk->events.begin(), chunk->events.end());
    return out;
}

/** Serial reference: plain Core::run with a capturing sink. */
std::vector<TraceEvent>
serialTrace(const std::string &name, CoreStats *stats_out = nullptr)
{
    Workload w = workloads::byName(name);
    CoreConfig cfg;
    TraceBuffer buf;
    Core core(cfg, w.program, std::move(w.initial));
    core.addSink(&buf);
    core.run();
    buf.finish();
    if (stats_out)
        *stats_out = core.stats();
    return flatten(buf);
}

/** Stitched stream under explicit options. */
std::vector<TraceEvent>
parallelTrace(const std::string &name, const TimeParallelOptions &opts,
              TimeParallelStats *tp_out = nullptr,
              CoreStats *stats_out = nullptr)
{
    Workload w = workloads::byName(name);
    CoreConfig cfg;
    TraceBuffer buf;
    CoreStats st;
    SimPerf pf;
    TimeParallelStats tp = simulateTimeParallel(cfg, w.program, w.initial,
                                                opts, {&buf}, &st, &pf);
    buf.finish();
    if (tp_out)
        *tp_out = tp;
    if (stats_out)
        *stats_out = st;
    return flatten(buf);
}

void
expectStreamsIdentical(const std::vector<TraceEvent> &serial,
                       const std::vector<TraceEvent> &parallel)
{
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        ASSERT_TRUE(eventsEquivalent(serial[i], parallel[i]))
            << "streams diverge at event " << i;
}

struct SimparCase
{
    const char *workload;
    unsigned threads;
};

class BitIdentity : public ::testing::TestWithParam<SimparCase>
{
};

/**
 * The tentpole contract: the stitched stream is bit-identical to the
 * serial run whether intervals converge (exchange2, mcf: zero
 * retries), partially converge (fotonik3d: tail intervals retried), or
 * never converge (xz at these interval sizes: full serial fallback).
 */
TEST_P(BitIdentity, StitchedStreamMatchesSerial)
{
    const SimparCase &c = GetParam();
    const std::vector<TraceEvent> serial = serialTrace(c.workload);

    TimeParallelOptions opts;
    opts.threads = c.threads;
    opts.mode = SimParallelMode::On;
    TimeParallelStats tp;
    CoreStats serialStats;
    serialTrace(c.workload, &serialStats);
    CoreStats stitched;
    const std::vector<TraceEvent> parallel =
        parallelTrace(c.workload, opts, &tp, &stitched);

    EXPECT_TRUE(tp.usedParallel);
    EXPECT_GE(tp.intervals, 2u);
    EXPECT_GE(tp.parallelEfficiency, 0.0);
    EXPECT_LE(tp.parallelEfficiency, 1.0);
    EXPECT_EQ(serialStats.cycles, stitched.cycles);
    EXPECT_EQ(serialStats.committedUops, stitched.committedUops);
    EXPECT_EQ(serialStats.eventCounts, stitched.eventCounts);
    expectStreamsIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BitIdentity,
    ::testing::Values(SimparCase{"exchange2", 2}, SimparCase{"exchange2", 4},
                      SimparCase{"fotonik3d", 4}, SimparCase{"mcf", 4},
                      SimparCase{"xz", 4}),
    [](const ::testing::TestParamInfo<SimparCase> &info) {
        return std::string(info.param.workload) + "_t" +
               std::to_string(info.param.threads);
    });

/**
 * Restore-resume property under randomized geometry: a Core resumed
 * from any checkpoint (materialized memory image, register file,
 * resume pc) must retire exactly the serial run's committed-uop suffix
 * — same pcs, same count — regardless of interval/warmup choice.
 * Timing is allowed to differ (cold caches); architecture is not.
 */
TEST(CheckpointResume, RandomGeometryRetiresSerialSuffix)
{
    Workload ref = workloads::byName("xz");
    CoreConfig cfg;

    // Serial retire-pc sequence, indexed by committed-uop number.
    std::vector<std::uint32_t> serialPcs;
    for (const TraceEvent &ev : serialTrace("xz"))
        if (ev.kind == TraceEventKind::Retire)
            serialPcs.push_back(ev.p.retire.pc);
    ASSERT_FALSE(serialPcs.empty());

    std::mt19937 rng(0x7ea5eed);
    for (int iter = 0; iter < 6; ++iter) {
        const std::uint64_t interval = std::uniform_int_distribution<
            std::uint64_t>(4000, 40000)(rng);
        const std::uint64_t warmup = std::uniform_int_distribution<
            std::uint64_t>(500, interval / 2)(rng);
        CheckpointPlan plan = buildCheckpoints(ref.program, ref.initial,
                                               interval, warmup,
                                               1ULL << 33, &cfg);
        ASSERT_TRUE(plan.halted);
        ASSERT_EQ(plan.totalUops, serialPcs.size());
        if (plan.checkpoints.empty())
            continue; // run shorter than one interval at this geometry
        const std::size_t pick = std::uniform_int_distribution<
            std::size_t>(0, plan.checkpoints.size() - 1)(rng);
        const ArchCheckpoint &ck = plan.checkpoints[pick];
        EXPECT_EQ(ck.uops, (pick + 1) * interval - warmup);

        ArchState resumed = materializeState(ref.initial, plan, ck);
        TraceBuffer buf;
        Core core(cfg, ref.program, std::move(resumed), ck.pc, ck.uops,
                  ck.predictor.get());
        core.addSink(&buf);
        core.run();
        buf.finish();

        std::vector<std::uint32_t> resumedPcs;
        for (const TraceEvent &ev : flatten(buf))
            if (ev.kind == TraceEventKind::Retire)
                resumedPcs.push_back(ev.p.retire.pc);
        ASSERT_EQ(resumedPcs.size(), serialPcs.size() - ck.uops)
            << "interval=" << interval << " warmup=" << warmup
            << " checkpoint=" << pick;
        for (std::size_t i = 0; i < resumedPcs.size(); ++i)
            ASSERT_EQ(resumedPcs[i], serialPcs[ck.uops + i])
                << "retire " << i << " after checkpoint " << pick;
    }
}

/**
 * A warmup far too small to converge must degrade to serial retries —
 * never to a wrong stream. This pins the failure path: retries > 0,
 * efficiency < 1, output still bit-identical.
 */
TEST(Fallback, TinyWarmupRetriesAndStaysIdentical)
{
    const std::vector<TraceEvent> serial = serialTrace("mcf");

    TimeParallelOptions opts;
    opts.threads = 4;
    opts.warmupUops = 256;
    opts.mode = SimParallelMode::On;
    TimeParallelStats tp;
    const std::vector<TraceEvent> parallel =
        parallelTrace("mcf", opts, &tp);

    EXPECT_TRUE(tp.usedParallel);
    EXPECT_GE(tp.convergenceRetries, 1u);
    EXPECT_LT(tp.parallelEfficiency, 1.0);
    expectStreamsIdentical(serial, parallel);
}

/** Serial-equivalent opt-outs: threads=1 and mode=off take the plain
 *  path and report so. */
TEST(Fallback, SerialModesReportSerial)
{
    TimeParallelOptions off;
    off.threads = 4;
    off.mode = SimParallelMode::Off;
    TimeParallelStats tp;
    parallelTrace("exchange2", off, &tp);
    EXPECT_FALSE(tp.usedParallel);

    TimeParallelOptions one;
    one.threads = 1;
    one.mode = SimParallelMode::On;
    parallelTrace("exchange2", one, &tp);
    EXPECT_FALSE(tp.usedParallel);
}

/**
 * The differential oracle (TEA_SIM_PARALLEL=verify) re-runs serially
 * inside simulateTimeParallel and fatals on any divergence — surviving
 * the call is the assertion.
 */
TEST(VerifyMode, OraclePasses)
{
    TimeParallelOptions opts;
    opts.threads = 3;
    opts.mode = SimParallelMode::Verify;
    TimeParallelStats tp;
    const std::vector<TraceEvent> parallel =
        parallelTrace("exchange2", opts, &tp);
    EXPECT_TRUE(tp.usedParallel);
    EXPECT_FALSE(parallel.empty());
}

} // namespace
} // namespace tea
