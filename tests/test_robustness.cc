/**
 * @file
 * Robustness / failure-injection tests: API misuse must fail loudly
 * (fatal for user errors, panic for internal invariants), never
 * silently corrupt results.
 */

#include <gtest/gtest.h>

#include "common/table.hh"
#include "core/cache.hh"
#include "isa/builder.hh"
#include "isa/memory.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"
#include "workloads/workload.hh"

using namespace tea;
using namespace tea::test;

using RobustnessDeath = ::testing::Test;

TEST(RobustnessDeath, UnboundLabelIsFatal)
{
    ProgramBuilder b("t");
    Label never = b.label();
    b.jmp(never);
    b.halt();
    EXPECT_DEATH(b.build(), "unbound label");
}

TEST(RobustnessDeath, DoubleBindIsFatal)
{
    ProgramBuilder b("t");
    Label l = b.here();
    EXPECT_DEATH(b.bind(l), "bound twice");
}

TEST(RobustnessDeath, DoubleBuildIsFatal)
{
    ProgramBuilder b("t");
    b.halt();
    Program p = b.build();
    EXPECT_DEATH(b.build(), "build");
}

TEST(RobustnessDeath, NestedFunctionsAreFatal)
{
    ProgramBuilder b("t");
    b.beginFunction("outer");
    EXPECT_DEATH(b.beginFunction("inner"), "nested");
}

TEST(RobustnessDeath, UnterminatedFunctionIsFatal)
{
    ProgramBuilder b("t");
    b.beginFunction("open");
    b.halt();
    EXPECT_DEATH(b.build(), "unterminated");
}

TEST(RobustnessDeath, UnalignedMemoryAccessIsFatal)
{
    SparseMemory m;
    EXPECT_DEATH(m.read(0x1003), "unaligned");
    EXPECT_DEATH(m.write(0x1005, 1), "unaligned");
}

TEST(RobustnessDeath, NonPowerOfTwoCacheSetsAreFatal)
{
    CacheConfig cfg{3 * 1024, 4, 4, 2}; // 12 sets: not a power of two
    EXPECT_DEATH(CacheArray(cfg, "bad"), "power of two");
}

TEST(RobustnessDeath, ZeroSamplingPeriodIsFatal)
{
    EXPECT_DEATH(TechniqueSampler{teaConfig(0)}, "period");
}

TEST(RobustnessDeath, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(workloads::byName("specfp2000"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(RobustnessDeath, TableDoubleHeaderIsFatal)
{
    Table t;
    t.header({"a"});
    EXPECT_DEATH(t.header({"b"}), "header");
}

TEST(RobustnessDeath, ProgramIndexOutOfRangeIsFatal)
{
    ProgramBuilder b("t");
    b.halt();
    Program p = b.build();
    EXPECT_DEATH(p.inst(5), "out of range");
}

TEST(Robustness, SimulationWithoutSinksWorks)
{
    CoreRun run = runCore(workloads::aluLoop(100));
    EXPECT_TRUE(run->halted());
}

TEST(Robustness, ManySinksDoNotPerturbTiming)
{
    Workload w1 = workloads::branchNoise(1500);
    Workload w2 = workloads::branchNoise(1500);
    CoreRun bare = runCore(std::move(w1));

    CoreRun loaded = makeCore(std::move(w2));
    std::vector<std::unique_ptr<TechniqueSampler>> samplers;
    for (int i = 0; i < 20; ++i) {
        samplers.push_back(std::make_unique<TechniqueSampler>(
            teaConfig(100 + static_cast<Cycle>(i))));
        loaded->addSink(samplers.back().get());
    }
    loaded->run();
    EXPECT_EQ(loaded->stats().cycles, bare->stats().cycles);
}

TEST(Robustness, RunBoundedByMaxCyclesAsserts)
{
    // An infinite loop must hit the max-cycle backstop (panic), not
    // hang.
    ProgramBuilder b("t");
    Label top = b.here();
    b.jmp(top);
    b.halt(); // unreachable
    Workload w{b.build(), ArchState{}, "infinite"};
    CoreRun run = makeCore(std::move(w));
    EXPECT_DEATH(run->run(10000), "did not halt");
}

TEST(Robustness, ZeroIterationWorkloadsTerminate)
{
    CoreRun run = runCore(workloads::aluLoop(1));
    EXPECT_TRUE(run->halted());
    EXPECT_GT(run->stats().committedUops, 0u);
}
