/**
 * @file
 * Tests for the experiment runner and report rendering.
 */

#include <gtest/gtest.h>

#include "analysis/report.hh"
#include "analysis/runner.hh"

using namespace tea;

TEST(Runner, RunsAllTechniquesOnOneTrace)
{
    ExperimentResult res = runBenchmark("exchange2",
                                        standardTechniques());
    ASSERT_EQ(res.techniques.size(), 5u);
    EXPECT_EQ(res.techniques[0].config.name, "IBS");
    EXPECT_EQ(res.techniques[4].config.name, "TEA");
    for (const TechniqueResult &t : res.techniques)
        EXPECT_GT(t.samplesTaken, 100u) << t.config.name;
    EXPECT_GT(res.golden->pics().total(), 0.0);
}

TEST(Runner, TechniqueLookupByName)
{
    ExperimentResult res = runBenchmark("exchange2", {teaConfig()});
    EXPECT_EQ(res.technique("TEA").config.policy,
              SamplePolicy::TimeProportional);
}

TEST(Runner, ErrorOrderingOnFlushHeavyBenchmark)
{
    ExperimentResult res = runBenchmark("nab", standardTechniques());
    double tea = res.errorOf(res.technique("TEA"));
    double nci = res.errorOf(res.technique("NCI-TEA"));
    double ibs = res.errorOf(res.technique("IBS"));
    EXPECT_LT(tea, nci);
    EXPECT_LT(nci, ibs);
}

TEST(Runner, ErrorUsesMaskedGolden)
{
    // A technique must not be penalized for events outside its set:
    // TIP (no events) on a miss-heavy benchmark still gets a meaningful
    // (instruction-profile) error, strictly below 100%.
    ExperimentResult res = runBenchmark("fotonik3d", {tipConfig()});
    double err = res.errorOf(res.technique("TIP"));
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 0.2);
}

TEST(Runner, GranularityReducesError)
{
    ExperimentResult res = runBenchmark("xalancbmk", {teaConfig()});
    const TechniqueResult &tea = res.technique("TEA");
    double inst = res.errorOf(tea, Granularity::Instruction);
    double fn = res.errorOf(tea, Granularity::Function);
    double app = res.errorOf(tea, Granularity::Application);
    EXPECT_LE(fn, inst);
    EXPECT_LE(app, fn + 1e-9);
}

TEST(Runner, CustomConfigRespected)
{
    CoreConfig tiny;
    tiny.robEntries = 32;
    ExperimentResult big = runBenchmark("fotonik3d", {});
    ExperimentResult small = runBenchmark("fotonik3d", {}, tiny);
    EXPECT_GT(small.stats.cycles, big.stats.cycles);
}

TEST(Report, TopInstructionsRendersDisassemblyAndSignatures)
{
    ExperimentResult res = runBenchmark("nab", {});
    std::string out = renderTopInstructions(res.program,
                                            res.golden->pics(), 3,
                                            res.golden->pics().total());
    EXPECT_NE(out.find("fsqrt"), std::string::npos);
    EXPECT_NE(out.find("FL-EX"), std::string::npos);
    EXPECT_NE(out.find("%"), std::string::npos);
}

TEST(Report, InstructionStackForSpecificPc)
{
    ExperimentResult res = runBenchmark("exchange2", {});
    auto top = res.golden->pics().topUnits(1);
    ASSERT_FALSE(top.empty());
    std::string out = renderInstructionStack(
        res.program, res.golden->pics(), top[0],
        res.golden->pics().total());
    EXPECT_FALSE(out.empty());
    EXPECT_NE(out.find("cycles"), std::string::npos);
}

TEST(Report, HandlesZeroTotalGracefully)
{
    ExperimentResult res = runBenchmark("exchange2", {});
    Pics empty;
    std::string out =
        renderTopInstructions(res.program, empty, 3, 0.0);
    EXPECT_TRUE(out.empty());
}
