/**
 * @file
 * Unit tests for the fault-injection framework (common/failpoint), the
 * transient-error retry layer (common/retry) and the advisory file lock
 * (common/file_lock) — the three legs the self-healing replay/cache
 * pipeline stands on (DESIGN.md, "Failure model and recovery").
 */

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/file_lock.hh"
#include "common/retry.hh"

using namespace tea;

namespace {

// Test-owned seams: registered once at static init like production
// seams. Names are namespaced under "test." so they can never collide
// with a real seam.
Failpoint fpAlpha("test.alpha", EIO);
Failpoint fpBeta("test.beta", ENOSPC);

/** Every test starts and ends with all failpoints disarmed. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoints::resetAll(); }
    void TearDown() override { failpoints::resetAll(); }
};

} // namespace

TEST_F(FailpointTest, OffByDefaultAndFreeWhenDisarmed)
{
    EXPECT_EQ(fpAlpha.hits(), 0u);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(fpAlpha.fire());
    // The disarmed fast path is one atomic load — it does not even
    // count hits, by design.
    EXPECT_EQ(fpAlpha.hits(), 0u);
    EXPECT_EQ(fpAlpha.fired(), 0u);
    EXPECT_EQ(fpAlpha.failErrno(), EIO);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit)
{
    std::string err;
    ASSERT_TRUE(fpAlpha.configure("always", &err)) << err;
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(fpAlpha.fire());
    EXPECT_EQ(fpAlpha.fired(), 3u);
}

TEST_F(FailpointTest, NthFiresExactlyOnce)
{
    std::string err;
    ASSERT_TRUE(fpAlpha.configure("nth:3", &err)) << err;
    EXPECT_FALSE(fpAlpha.fire());
    EXPECT_FALSE(fpAlpha.fire());
    EXPECT_TRUE(fpAlpha.fire()); // the 3rd hit
    EXPECT_FALSE(fpAlpha.fire());
    EXPECT_EQ(fpAlpha.hits(), 4u);
    EXPECT_EQ(fpAlpha.fired(), 1u);
}

TEST_F(FailpointTest, ProbIsDeterministicPerSeed)
{
    auto draw = [&](const std::string &spec, int n) {
        std::string err;
        EXPECT_TRUE(fpAlpha.configure(spec, &err)) << err;
        std::vector<bool> fires;
        for (int i = 0; i < n; ++i)
            fires.push_back(fpAlpha.fire());
        fpAlpha.reset();
        return fires;
    };
    std::vector<bool> a = draw("prob:0.5:42", 200);
    std::vector<bool> b = draw("prob:0.5:42", 200);
    EXPECT_EQ(a, b); // same seed, bit-identical decision stream

    std::vector<bool> c = draw("prob:0.5:43", 200);
    EXPECT_NE(a, c); // different seed, different stream

    // The rates are sane at the extremes.
    std::vector<bool> never = draw("prob:0.0:1", 100);
    std::vector<bool> ever = draw("prob:1.0:1", 100);
    EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);
    EXPECT_EQ(std::count(ever.begin(), ever.end(), true), 100);
}

TEST_F(FailpointTest, KindSuffixOverridesErrno)
{
    std::string err;
    ASSERT_TRUE(fpAlpha.configure("always@enospc", &err)) << err;
    EXPECT_EQ(fpAlpha.failErrno(), ENOSPC);
    ASSERT_TRUE(fpAlpha.configure("always@eagain", &err)) << err;
    EXPECT_EQ(fpAlpha.failErrno(), EAGAIN);
    ASSERT_TRUE(fpAlpha.configure("always@eio", &err)) << err;
    EXPECT_EQ(fpAlpha.failErrno(), EIO);
    fpAlpha.reset();
    EXPECT_EQ(fpAlpha.failErrno(), EIO); // back to the seam's default

    ASSERT_TRUE(fpBeta.configure("always", &err)) << err;
    EXPECT_EQ(fpBeta.failErrno(), ENOSPC); // default kind preserved
}

TEST_F(FailpointTest, MalformedSpecsAreRejected)
{
    std::string err;
    for (const char *bad :
         {"", "sometimes", "nth:", "nth:x", "nth:0", "prob:", "prob:2:1",
          "prob:-1:1", "prob:0.5", "always@ebadness"}) {
        SCOPED_TRACE(bad);
        err.clear();
        EXPECT_FALSE(fpAlpha.configure(bad, &err));
        EXPECT_FALSE(err.empty());
    }
    // A failed configure leaves the failpoint disarmed.
    EXPECT_FALSE(fpAlpha.fire());
}

TEST_F(FailpointTest, RegistryFindsAndResets)
{
    EXPECT_EQ(failpoints::find("test.alpha"), &fpAlpha);
    EXPECT_EQ(failpoints::find("no.such.seam"), nullptr);

    std::vector<Failpoint *> all = failpoints::all();
    EXPECT_NE(std::find(all.begin(), all.end(), &fpAlpha), all.end());
    EXPECT_NE(std::find(all.begin(), all.end(), &fpBeta), all.end());

    failpoints::configure("test.alpha", "always");
    EXPECT_TRUE(fpAlpha.fire());
    EXPECT_EQ(fpAlpha.hits(), 1u);
    failpoints::resetAll();
    EXPECT_FALSE(fpAlpha.fire());
    EXPECT_EQ(fpAlpha.hits(), 0u); // reset zeroed the counters
}

TEST_F(FailpointTest, ConfigureListParsesMultipleSeams)
{
    failpoints::configureList(
        "test.alpha=nth:2@eagain,test.beta=always");
    EXPECT_FALSE(fpAlpha.fire());
    EXPECT_TRUE(fpAlpha.fire());
    EXPECT_EQ(fpAlpha.failErrno(), EAGAIN);
    EXPECT_TRUE(fpBeta.fire());
}

TEST_F(FailpointTest, ConfigureFromEnvironment)
{
    ::setenv("TEA_FAILPOINTS", "test.beta=nth:1", 1);
    failpoints::configureFromEnv();
    EXPECT_TRUE(fpBeta.fire());
    EXPECT_FALSE(fpBeta.fire());
    ::unsetenv("TEA_FAILPOINTS");
}

TEST_F(FailpointTest, UnknownEnvNameIsFatalOnceWorkStarts)
{
    // Unknown names from TEA_FAILPOINTS are parked during static init
    // (the seam's TU may simply register later); checkEnvConsumed is
    // the runner's pre-experiment gate that turns a never-claimed park
    // — i.e. a typo — into a clean fatal instead of injecting nothing.
    ::setenv("TEA_FAILPOINTS", "no.such.seam=always", 1);
    EXPECT_EXIT(
        {
            failpoints::configureFromEnv();
            failpoints::checkEnvConsumed();
        },
        ::testing::ExitedWithCode(1), "unknown failpoint");
    ::unsetenv("TEA_FAILPOINTS");
    failpoints::checkEnvConsumed(); // nothing parked in the parent
}

TEST_F(FailpointTest, UnknownOrMalformedConfigurationIsFatal)
{
    // A typo'd fault-injection run must not silently test nothing.
    EXPECT_EXIT(failpoints::configure("no.such.seam", "always"),
                ::testing::ExitedWithCode(1), "unknown failpoint");
    EXPECT_EXIT(failpoints::configure("test.alpha", "bogus"),
                ::testing::ExitedWithCode(1), "failpoint");
    EXPECT_EXIT(failpoints::configureList("test.alpha"),
                ::testing::ExitedWithCode(1), "malformed entry");
}

TEST_F(FailpointTest, RaiseThrowsFailpointError)
{
    try {
        fpAlpha.raise();
        FAIL() << "raise() returned";
    } catch (const FailpointError &e) {
        EXPECT_NE(std::string(e.what()).find("test.alpha"),
                  std::string::npos);
    }
}

TEST(ErrnoClassification, TransientVersusPermanent)
{
    for (int e : {EINTR, EAGAIN, EBUSY, ENFILE, EMFILE}) {
        SCOPED_TRACE(e);
        EXPECT_EQ(classifyErrno(e), ErrorClass::Transient);
    }
    for (int e : {EIO, ENOSPC, EACCES, ENOENT, EBADF, 0, 9999}) {
        SCOPED_TRACE(e);
        EXPECT_EQ(classifyErrno(e), ErrorClass::Permanent);
    }
}

TEST(Backoff, DelaysAreBoundedAndGrow)
{
    RetryPolicy policy;
    policy.baseDelayUs = 100;
    policy.maxDelayUs = 1000;
    Rng rng(policy.jitterSeed);
    for (unsigned retry = 1; retry <= 10; ++retry) {
        std::uint64_t window = policy.baseDelayUs;
        for (unsigned i = 1; i < retry && window < policy.maxDelayUs;
             ++i)
            window *= 2;
        window = std::min<std::uint64_t>(window, policy.maxDelayUs);
        for (int draw = 0; draw < 50; ++draw) {
            unsigned d = backoffDelayUs(policy, retry, rng);
            EXPECT_GE(d, 1u);
            EXPECT_LE(d, window);
        }
    }
}

TEST(RetryTransient, RecoversCountsAndGivesUp)
{
    RetryPolicy fast;
    fast.maxAttempts = 4;
    fast.baseDelayUs = 1;
    fast.maxDelayUs = 2;

    // Succeeds on the 3rd attempt after two transient failures.
    RetryStats stats;
    int calls = 0;
    EXPECT_TRUE(retryTransient(fast, stats, [&] {
        if (++calls < 3) {
            errno = EAGAIN;
            return false;
        }
        return true;
    }));
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.recoveries, 1u);

    // A permanent error is never retried.
    stats = RetryStats{};
    calls = 0;
    EXPECT_FALSE(retryTransient(fast, stats, [&] {
        ++calls;
        errno = ENOSPC;
        return false;
    }));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(stats.retries, 0u);

    // A persistent transient error exhausts the attempt budget.
    stats = RetryStats{};
    calls = 0;
    EXPECT_FALSE(retryTransient(fast, stats, [&] {
        ++calls;
        errno = EAGAIN;
        return false;
    }));
    EXPECT_EQ(calls, 4);
    EXPECT_EQ(stats.retries, 3u);
    EXPECT_EQ(stats.recoveries, 0u);

    // First-try success costs nothing.
    stats = RetryStats{};
    EXPECT_TRUE(retryTransient(fast, stats, [] { return true; }));
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.recoveries, 0u);
}

TEST(RetryStatsMerge, Accumulates)
{
    RetryStats a{3, 1};
    RetryStats b{2, 2};
    a.merge(b);
    EXPECT_EQ(a.retries, 5u);
    EXPECT_EQ(a.recoveries, 3u);
}

namespace {

/** A scratch lock-file path unlinked on destruction. */
struct TempLockFile
{
    TempLockFile()
    {
        char tmpl[] = "/tmp/tea-lock-test-XXXXXX";
        int fd = ::mkstemp(tmpl);
        EXPECT_GE(fd, 0);
        if (fd >= 0)
            ::close(fd);
        path = tmpl;
    }
    ~TempLockFile() { ::unlink(path.c_str()); }
    std::string path;
};

} // namespace

TEST(FileLockTest, AcquireHoldReleaseReacquire)
{
    TempLockFile f;
    FileLock lock;
    EXPECT_FALSE(lock.held());
    ASSERT_TRUE(lock.acquire(f.path, 100));
    EXPECT_TRUE(lock.held());
    lock.release();
    EXPECT_FALSE(lock.held());
    ASSERT_TRUE(lock.acquire(f.path, 100));
    EXPECT_TRUE(lock.held());
}

TEST(FileLockTest, ContendedLockTimesOut)
{
    TempLockFile f;
    FileLock holder;
    ASSERT_TRUE(holder.acquire(f.path, 100));

    // A second open file description cannot take the flock while the
    // first holds it — this is exactly the cross-process situation.
    FileLock second;
    EXPECT_FALSE(second.acquire(f.path, 50));
    EXPECT_FALSE(second.held());

    holder.release();
    EXPECT_TRUE(second.acquire(f.path, 100));
}

TEST(FileLockTest, StaleLockFromDeadHolderIsTakenOver)
{
    TempLockFile f;
    // Simulate a crashed holder: lock the file on a raw descriptor and
    // close it without unlocking — the kernel drops the flock with the
    // descriptor, so the file left behind is just an unlocked file.
    int fd = ::open(f.path.c_str(), O_RDWR);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::flock(fd, LOCK_EX), 0);
    ::close(fd);

    FileLock lock;
    EXPECT_TRUE(lock.acquire(f.path, 50));
}

TEST(FileLockTest, AcquireCreatesMissingLockFile)
{
    TempLockFile f;
    ::unlink(f.path.c_str());
    FileLock lock;
    EXPECT_TRUE(lock.acquire(f.path, 50));
    EXPECT_EQ(::access(f.path.c_str(), F_OK), 0);
}

TEST(FileLockTest, InjectedAcquireFailureDegrades)
{
    if (!failpoints::compiledIn())
        GTEST_SKIP() << "failpoint seams compiled out";
    failpoints::resetAll();
    TempLockFile f;
    failpoints::configure("cache.lock", "always");
    FileLock lock;
    EXPECT_FALSE(lock.acquire(f.path, 30));
    EXPECT_FALSE(lock.held());
    failpoints::resetAll();
    EXPECT_TRUE(lock.acquire(f.path, 30));
}
