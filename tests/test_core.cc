/**
 * @file
 * Pipeline tests: functional correctness against the pure-functional
 * oracle, commit-state accounting, event generation per mechanism, and
 * trace invariants.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

/** Trace observer asserting structural invariants every cycle. */
class InvariantSink : public TraceSink
{
  public:
    void
    onCycle(const CycleRecord &rec) override
    {
        ++cycles;
        EXPECT_EQ(rec.cycle, cycles - 1);
        if (rec.state == CommitState::Compute) {
            EXPECT_GT(rec.numCommitted, 0u);
        } else {
            EXPECT_EQ(rec.numCommitted, 0u);
        }
        if (rec.state == CommitState::Stalled) {
            EXPECT_TRUE(rec.headValid);
        }
        if (rec.state == CommitState::Flushed) {
            EXPECT_TRUE(rec.lastValid);
        }
    }

    void
    onDispatch(const UopRecord &rec) override
    {
        if (lastDispatch != invalidSeqNum) {
            EXPECT_EQ(rec.seq, lastDispatch + 1); // in-order dispatch
        }
        lastDispatch = rec.seq;
    }

    void
    onFetch(const UopRecord &rec) override
    {
        if (lastFetch != invalidSeqNum) {
            EXPECT_EQ(rec.seq, lastFetch + 1);
        }
        lastFetch = rec.seq;
        ++fetched;
    }

    void
    onRetire(const RetireRecord &rec) override
    {
        if (lastRetire != invalidSeqNum) {
            EXPECT_EQ(rec.seq, lastRetire + 1); // in-order commit
        }
        lastRetire = rec.seq;
        ++retired;
    }

    void onEnd(Cycle final_cycle) override { endCycle = final_cycle; }

    Cycle cycles = 0;
    Cycle endCycle = 0;
    std::uint64_t fetched = 0;
    std::uint64_t retired = 0;
    SeqNum lastDispatch = invalidSeqNum;
    SeqNum lastFetch = invalidSeqNum;
    SeqNum lastRetire = invalidSeqNum;
};

std::uint64_t
eventCount(const CoreStats &s, Event e)
{
    return s.eventCounts[static_cast<unsigned>(e)];
}

} // namespace

TEST(CorePipeline, AluLoopFunctionalCorrectness)
{
    Workload w = workloads::aluLoop(500);
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w));
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(run->archState().regs[r], oracle.regs[r]) << "reg " << r;
}

TEST(CorePipeline, MemoryWorkloadFunctionalCorrectness)
{
    Workload w = workloads::pointerChase(64, 3, 256);
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w));
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(run->archState().regs[r], oracle.regs[r]) << "reg " << r;
}

TEST(CorePipeline, BranchWorkloadFunctionalCorrectness)
{
    Workload w = workloads::branchNoise(2000);
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w));
    EXPECT_EQ(run->archState().regs[x(8)], oracle.regs[x(8)]);
}

TEST(CorePipeline, OrderingWorkloadFunctionalCorrectness)
{
    Workload w = workloads::orderingViolator(50);
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w));
    EXPECT_EQ(run->archState().regs[x(12)], oracle.regs[x(12)]);
}

TEST(CorePipeline, StateCyclesSumToTotal)
{
    CoreRun run = runCore(workloads::branchNoise(3000));
    const CoreStats &s = run->stats();
    Cycle sum = 0;
    for (auto c : s.stateCycles)
        sum += c;
    EXPECT_EQ(sum, s.cycles);
}

TEST(CorePipeline, IpcBoundedByCommitWidth)
{
    CoreConfig cfg;
    CoreRun run = runCore(workloads::aluLoop(5000), cfg);
    EXPECT_LE(run->stats().ipc(), static_cast<double>(cfg.commitWidth));
    EXPECT_GT(run->stats().ipc(), 1.0); // ALU loop should be fast
}

TEST(CorePipeline, Deterministic)
{
    CoreRun a = runCore(workloads::byName("mcf"));
    CoreRun b = runCore(workloads::byName("mcf"));
    EXPECT_EQ(a->stats().cycles, b->stats().cycles);
    EXPECT_EQ(a->stats().committedUops, b->stats().committedUops);
    EXPECT_EQ(a->stats().moViolations, b->stats().moViolations);
}

TEST(CorePipeline, TraceInvariants)
{
    Workload w = workloads::branchNoise(2000);
    CoreRun run = makeCore(std::move(w));
    InvariantSink sink;
    run->addSink(&sink);
    run->run();
    EXPECT_EQ(sink.cycles, run->stats().cycles);
    EXPECT_EQ(sink.endCycle, run->stats().cycles);
    EXPECT_EQ(sink.retired, run->stats().committedUops);
    EXPECT_EQ(sink.fetched, sink.retired); // no wrong path in the model
}

TEST(CorePipeline, ChaseLoadGetsCacheEvents)
{
    // 4096 nodes x 4 KiB spacing: misses LLC and D-TLB.
    CoreRun run = runCore(workloads::pointerChase(4096, 2, 4096 + 64));
    const CoreStats &s = run->stats();
    EXPECT_GT(eventCount(s, Event::StL1), 4000u);
    EXPECT_GT(eventCount(s, Event::StLlc), 2000u);
    EXPECT_GT(eventCount(s, Event::StTlb), 2000u);
    // Dependent chase: most time stalled.
    EXPECT_GT(s.stateCycles[static_cast<unsigned>(CommitState::Stalled)],
              s.cycles / 2);
}

TEST(CorePipeline, L1ResidentLoopHasNoMemoryEvents)
{
    CoreRun run = runCore(workloads::aluLoop(3000));
    const CoreStats &s = run->stats();
    EXPECT_EQ(eventCount(s, Event::StLlc), 0u);
    EXPECT_EQ(eventCount(s, Event::DrSq), 0u);
    EXPECT_EQ(eventCount(s, Event::FlMo), 0u);
}

TEST(CorePipeline, StoreBurstDrainsAndSetsDrSq)
{
    // Stores missing the LLC fill the store queue.
    CoreRun run = runCore(workloads::storeBurst(20000, 1));
    const CoreStats &s = run->stats();
    EXPECT_GT(eventCount(s, Event::DrSq), 100u);
    EXPECT_GT(s.stateCycles[static_cast<unsigned>(CommitState::Drained)],
              0u);
    EXPECT_GT(s.drSqStallCycles, 0u);
}

TEST(CorePipeline, CsrOpsFlushAndSetFlEx)
{
    CoreRun flushy = runCore(workloads::flushySqrt(500, true));
    const CoreStats &s = flushy->stats();
    EXPECT_EQ(eventCount(s, Event::FlEx), 1000u); // 2 per iteration
    EXPECT_GT(s.stateCycles[static_cast<unsigned>(CommitState::Flushed)],
              0u);

    CoreRun plain = runCore(workloads::flushySqrt(500, false));
    EXPECT_EQ(eventCount(plain->stats(), Event::FlEx), 0u);
    EXPECT_LT(plain->stats().cycles, s.cycles); // flushes cost time
}

TEST(CorePipeline, MispredictsSetFlMbAndFlush)
{
    CoreRun run = runCore(workloads::branchNoise(4000));
    const CoreStats &s = run->stats();
    // ~50% taken random branch: expect a substantial mispredict count.
    EXPECT_GT(s.branchMispredicts, 800u);
    EXPECT_LT(s.branchMispredicts, 3000u);
    EXPECT_EQ(eventCount(s, Event::FlMb), s.branchMispredicts);
}

TEST(CorePipeline, IcacheWalkDrainsWithDrL1)
{
    CoreRun run = runCore(workloads::icacheWalk(600, 4));
    const CoreStats &s = run->stats();
    EXPECT_GT(eventCount(s, Event::DrL1), 1000u);
    EXPECT_GT(s.stateCycles[static_cast<unsigned>(CommitState::Drained)],
              s.cycles / 4);
}

TEST(CorePipeline, OrderingViolationsDetected)
{
    CoreConfig cfg;
    cfg.storeSetClearInterval = 0; // learn once, keep forever
    CoreRun run = runCore(workloads::orderingViolator(200), cfg);
    const CoreStats &s = run->stats();
    // 8 unrolled sites each violate once, then the store-set predictor
    // issues them conservatively.
    EXPECT_EQ(s.moViolations, 8u);
    EXPECT_EQ(eventCount(s, Event::FlMo), 8u);
}

TEST(CorePipeline, StoreSetAgingReintroducesViolations)
{
    CoreConfig cfg;
    cfg.storeSetClearInterval = 20000;
    CoreRun run = runCore(workloads::orderingViolator(2000), cfg);
    EXPECT_GT(run->stats().moViolations, 8u);
}

TEST(CorePipeline, HaltTerminatesRun)
{
    CoreRun run = runCore(workloads::aluLoop(10));
    EXPECT_TRUE(run->halted());
    EXPECT_LT(run->stats().cycles, 1000u);
}

TEST(CorePipeline, RunIsIdempotentAfterHalt)
{
    CoreRun run = runCore(workloads::aluLoop(10));
    Cycle c = run->cycle();
    run->run(); // no-op: already halted
    EXPECT_EQ(run->cycle(), c);
}

TEST(CorePipeline, PrefetchReducesCycles)
{
    workloads::LbmParams base;
    base.cells = 4096;
    base.sweeps = 1;
    workloads::LbmParams pf = base;
    pf.prefetchDistance = 4;
    CoreRun slow = runCore(workloads::lbm(base));
    CoreRun fast = runCore(workloads::lbm(pf));
    EXPECT_LT(fast->stats().cycles, slow->stats().cycles);
}

TEST(CorePipeline, SmallRobSlowsMemoryWorkload)
{
    CoreConfig big;
    CoreConfig small;
    small.robEntries = 16;
    CoreRun a = runCore(workloads::streamSum(4000, 1), big);
    CoreRun b = runCore(workloads::streamSum(4000, 1), small);
    EXPECT_LT(a->stats().cycles, b->stats().cycles);
}

TEST(CorePipeline, CommitWidthMattersForAluCode)
{
    CoreConfig wide;
    CoreConfig narrow;
    narrow.commitWidth = 1;
    narrow.dispatchWidth = 1;
    narrow.decodeWidth = 1;
    CoreRun a = runCore(workloads::aluLoop(4000), wide);
    CoreRun b = runCore(workloads::aluLoop(4000), narrow);
    EXPECT_LT(a->stats().cycles, b->stats().cycles);
}
