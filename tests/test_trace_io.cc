/**
 * @file
 * Tests for trace serialization/replay: replayed traces must drive
 * observers to byte-identical results as the live simulation.
 */

#include <algorithm>
#include <cstdio>
#include <gtest/gtest.h>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/rng.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"
#include "core/trace_io.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string("/tmp/tea_trace_test_") + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

std::vector<SamplerConfig>
allPolicies()
{
    return {ibsConfig(127), speConfig(127), risConfig(127),
            nciTeaConfig(127), teaConfig(127), tipConfig(127),
            dtagTeaConfig(127)};
}

} // namespace

TEST(TraceIo, ReplayReproducesGoldenExactly)
{
    TempFile tmp("golden.bin");
    Workload w = workloads::byName("mcf");
    GoldenReference live;
    {
        CoreRun run = makeCore(std::move(w));
        TraceWriter writer(tmp.path);
        run->addSink(&live);
        run->addSink(&writer);
        run->run();
        EXPECT_GT(writer.eventsWritten(), 1000u);
    }

    GoldenReference replayed;
    Cycle cycles = replayTrace(tmp.path, {&replayed});
    EXPECT_GT(cycles, 0u);
    EXPECT_DOUBLE_EQ(replayed.pics().total(), live.pics().total());
    EXPECT_NEAR(replayed.pics().errorAgainst(live.pics()), 0.0, 1e-9);
    EXPECT_EQ(replayed.eventCounts().size(), live.eventCounts().size());
}

TEST(TraceIo, ReplayReproducesEverySamplingPolicy)
{
    TempFile tmp("samplers.bin");
    Workload w = workloads::byName("exchange2");

    std::vector<std::unique_ptr<TechniqueSampler>> live;
    for (SamplerConfig c : allPolicies())
        live.push_back(std::make_unique<TechniqueSampler>(c));

    {
        CoreRun run = makeCore(std::move(w));
        TraceWriter writer(tmp.path);
        for (auto &s : live)
            run->addSink(s.get());
        run->addSink(&writer);
        run->run();
    }

    std::vector<std::unique_ptr<TechniqueSampler>> offline;
    std::vector<TraceSink *> sinks;
    for (SamplerConfig c : allPolicies()) {
        offline.push_back(std::make_unique<TechniqueSampler>(c));
        sinks.push_back(offline.back().get());
    }
    replayTrace(tmp.path, sinks);

    for (std::size_t i = 0; i < live.size(); ++i) {
        SCOPED_TRACE(live[i]->config().name);
        EXPECT_EQ(offline[i]->samplesTaken(), live[i]->samplesTaken());
        EXPECT_EQ(offline[i]->samplesDropped(),
                  live[i]->samplesDropped());
        EXPECT_DOUBLE_EQ(offline[i]->pics().total(),
                         live[i]->pics().total());
        EXPECT_NEAR(offline[i]->pics().errorAgainst(live[i]->pics()),
                    0.0, 1e-9);
    }
}

TEST(TraceIo, CyclesReturnedMatchesSimulation)
{
    TempFile tmp("count.bin");
    Workload w = workloads::aluLoop(2000);
    Cycle sim_cycles = 0;
    {
        CoreRun run = makeCore(std::move(w));
        TraceWriter writer(tmp.path);
        run->addSink(&writer);
        run->run();
        sim_cycles = run->stats().cycles;
    }
    Cycle replayed = replayTrace(tmp.path, {});
    EXPECT_EQ(replayed, sim_cycles);
}

namespace {

/**
 * A seeded random event sequence and the TraceSink calls that produce
 * it. Cycle records only populate committed[0, numCommitted) — exactly
 * what the core emits and what the on-disk format preserves.
 */
std::vector<TraceEvent>
randomEvents(std::uint64_t seed, unsigned count)
{
    Rng rng(seed);
    std::vector<TraceEvent> evs;
    evs.reserve(count + 1);
    for (unsigned i = 0; i < count; ++i) {
        TraceEvent ev;
        switch (rng.below(4)) {
          case 0: {
            ev.kind = TraceEventKind::Cycle;
            CycleRecord rec;
            rec.cycle = i;
            rec.state = static_cast<CommitState>(rng.below(4));
            rec.numCommitted =
                static_cast<std::uint8_t>(rng.below(9));
            for (unsigned u = 0; u < rec.numCommitted; ++u) {
                rec.committed[u] = CommittedUop{
                    rng.next(),
                    static_cast<InstIndex>(rng.below(1 << 20)),
                    Psv(static_cast<std::uint16_t>(
                        rng.below(0x200)))};
            }
            rec.headValid = rng.chance(0.5);
            rec.headSeq = rng.next();
            rec.headPc = static_cast<InstIndex>(rng.below(1 << 20));
            rec.lastValid = rng.chance(0.5);
            rec.lastPc = static_cast<InstIndex>(rng.below(1 << 20));
            rec.lastPsv =
                Psv(static_cast<std::uint16_t>(rng.below(0x200)));
            ev.p.cycle = rec;
            break;
          }
          case 1:
          case 2: {
            ev.kind = rng.chance(0.5) ? TraceEventKind::Dispatch
                                      : TraceEventKind::Fetch;
            ev.p.uop = UopRecord{
                rng.next(),
                static_cast<InstIndex>(rng.below(1 << 20)), i};
            break;
          }
          default: {
            ev.kind = TraceEventKind::Retire;
            ev.p.retire = RetireRecord{
                rng.next(),
                static_cast<InstIndex>(rng.below(1 << 20)),
                Psv(static_cast<std::uint16_t>(rng.below(0x200))),
                i};
            break;
          }
        }
        evs.push_back(ev);
    }
    // onEnd closes the writer, so the end marker is always last.
    TraceEvent end;
    end.kind = TraceEventKind::End;
    end.p.end = count;
    evs.push_back(end);
    return evs;
}

/** Expect that a replayed event equals the one originally written. */
void
expectEventEqual(const TraceEvent &want, const TraceEvent &got)
{
    ASSERT_EQ(static_cast<int>(want.kind), static_cast<int>(got.kind));
    switch (want.kind) {
      case TraceEventKind::Cycle: {
        const CycleRecord &w = want.p.cycle;
        const CycleRecord &g = got.p.cycle;
        EXPECT_EQ(w.cycle, g.cycle);
        EXPECT_EQ(static_cast<int>(w.state), static_cast<int>(g.state));
        ASSERT_EQ(w.numCommitted, g.numCommitted);
        for (unsigned u = 0; u < w.numCommitted; ++u) {
            EXPECT_EQ(w.committed[u].seq, g.committed[u].seq);
            EXPECT_EQ(w.committed[u].pc, g.committed[u].pc);
            EXPECT_EQ(w.committed[u].psv, g.committed[u].psv);
        }
        EXPECT_EQ(w.headValid, g.headValid);
        EXPECT_EQ(w.headSeq, g.headSeq);
        EXPECT_EQ(w.headPc, g.headPc);
        EXPECT_EQ(w.lastValid, g.lastValid);
        EXPECT_EQ(w.lastPc, g.lastPc);
        EXPECT_EQ(w.lastPsv, g.lastPsv);
        break;
      }
      case TraceEventKind::Dispatch:
      case TraceEventKind::Fetch:
        EXPECT_EQ(want.p.uop.seq, got.p.uop.seq);
        EXPECT_EQ(want.p.uop.pc, got.p.uop.pc);
        EXPECT_EQ(want.p.uop.cycle, got.p.uop.cycle);
        break;
      case TraceEventKind::Retire:
        EXPECT_EQ(want.p.retire.seq, got.p.retire.seq);
        EXPECT_EQ(want.p.retire.pc, got.p.retire.pc);
        EXPECT_EQ(want.p.retire.psv, got.p.retire.psv);
        EXPECT_EQ(want.p.retire.cycle, got.p.retire.cycle);
        break;
      case TraceEventKind::End:
        EXPECT_EQ(want.p.end, got.p.end);
        break;
    }
}

void
writeEvents(const std::vector<TraceEvent> &evs, TraceSink &sink)
{
    for (const TraceEvent &ev : evs)
        deliverEvent(ev, sink);
}

} // namespace

class TraceIoRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceIoRoundTrip, RandomizedEventSequenceSurvivesRoundTrip)
{
    const std::uint64_t seed = GetParam();
    TempFile tmp(("roundtrip" + std::to_string(seed) + ".bin").c_str());
    std::vector<TraceEvent> written = randomEvents(seed, 2000);

    TraceWriter writer(tmp.path);
    writeEvents(written, writer);
    EXPECT_EQ(writer.eventsWritten(), written.size());

    TraceBuffer replayed(256);
    replayTrace(tmp.path, {&replayed});
    replayed.finish();

    std::vector<TraceEvent> got;
    for (const TraceChunkPtr &c : replayed.chunks())
        got.insert(got.end(), c->events.begin(), c->events.end());

    ASSERT_EQ(got.size(), written.size()); // count and ordering
    for (std::size_t i = 0; i < written.size(); ++i) {
        SCOPED_TRACE(i);
        expectEventEqual(written[i], got[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoRoundTrip,
                         ::testing::Values(1u, 42u, 0xdecafbadu));

TEST(TraceCodec, DecodeFromMisalignedBuffer)
{
    // Frames in a cached file start wherever the previous frame ended,
    // so the decoder sees arbitrary byte offsets inside the mmap'd
    // region. Every multi-byte field read must therefore be
    // alignment-safe (memcpy, not pointer casts) — under UBSan a
    // misaligned load here aborts the test.
    std::vector<TraceEvent> written = randomEvents(0xa11a, 500);
    TraceChunk chunk;
    chunk.events = written;
    for (const TraceEvent &ev : written) {
        if (ev.kind == TraceEventKind::Cycle)
            ++chunk.cycleRecords;
    }
    std::vector<std::uint8_t> encoded;
    encodeChunk(chunk, encoded);
    ASSERT_GT(encoded.size(), sizeof(ChunkFrameHeader));

    for (std::size_t off = 1; off < 8; ++off) {
        SCOPED_TRACE(off);
        std::vector<std::uint8_t> buf(encoded.size() + off, 0xAB);
        std::copy(encoded.begin(), encoded.end(), buf.begin() +
                  static_cast<std::ptrdiff_t>(off));
        const std::uint8_t *frame = buf.data() + off;

        std::string why;
        ChunkFrameHeader header;
        ASSERT_TRUE(peekFrame(frame, encoded.size(), &header, &why))
            << why;
        EXPECT_EQ(header.eventCount, written.size());
        ASSERT_TRUE(verifyFrame(frame, encoded.size(), &why)) << why;

        TraceChunk out;
        std::size_t consumed = 0;
        ASSERT_TRUE(decodeChunk(frame, encoded.size(), out, &consumed,
                                &why))
            << why;
        EXPECT_EQ(consumed, encoded.size());
        ASSERT_EQ(out.events.size(), written.size());
        // eventsEquivalent, not field equality: the codec legitimately
        // canonicalizes validity-gated fields (see trace_codec.hh).
        for (std::size_t i = 0; i < written.size(); ++i) {
            SCOPED_TRACE(i);
            EXPECT_TRUE(eventsEquivalent(written[i], out.events[i]));
        }
    }
}

TEST(TraceIo, TruncatedFileIsFatal)
{
    TempFile tmp("truncated.bin");
    {
        TraceWriter writer(tmp.path);
        writeEvents(randomEvents(7, 100), writer);
    }

    // Chop the tail mid-record: replay must refuse, not misparse.
    std::FILE *f = std::fopen(tmp.path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_GT(size, 16);
    std::fseek(f, 0, SEEK_SET);
    std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);

    f = std::fopen(tmp.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() - 5, f);
    std::fclose(f);

    EXPECT_EXIT(replayTrace(tmp.path, {}),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(TraceIo, WriterReportsFullDiskAtClose)
{
    // /dev/full accepts buffered fwrite()s and fails them at flush:
    // exactly the silent-loss path TraceWriter::close() must catch.
    EXPECT_EXIT(
        {
            TraceWriter writer("/dev/full");
            writeEvents(randomEvents(3, 50), writer);
        },
        ::testing::ExitedWithCode(1), "trace file");
}

TEST(TraceIo, WriterUnwritablePathIsFatal)
{
    EXPECT_EXIT(TraceWriter("/nonexistent-dir/tea.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, CorruptFileIsFatal)
{
    TempFile tmp("corrupt.bin");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::uint8_t junk = 'Z';
    std::fwrite(&junk, 1, 1, f);
    std::fclose(f);
    EXPECT_EXIT(replayTrace(tmp.path, {}),
                ::testing::ExitedWithCode(1), "bad tag");
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(replayTrace("/nonexistent/tea.bin", {}),
                ::testing::ExitedWithCode(1), "cannot open");
}

// ---------------------------------------------------------------------
// Fault injection: every I/O syscall in this file has a failpoint seam
// (common/failpoint). The TraceWriter/replayTrace seams are fatal by
// contract (an explicit dump must never be silently truncated); the
// trace-cache seams must degrade — warn, abandon the entry, leave no
// temporary behind, and never touch the experiment's correctness.
// ---------------------------------------------------------------------

namespace {

/** Fault-injection fixture: all seams disarmed before and after. */
class TraceIoFaults : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!failpoints::compiledIn())
            GTEST_SKIP() << "failpoint seams compiled out";
        failpoints::resetAll();
    }
    void TearDown() override { failpoints::resetAll(); }
};

/** A scratch directory removed (with contents) on destruction. */
struct TempDir
{
    std::string path;
    TempDir()
    {
        char tmpl[] = "/tmp/tea-trace-io-fault-XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path = d ? d : "";
    }
    ~TempDir()
    {
        for (const std::string &name : list())
            std::remove((path + "/" + name).c_str());
        ::rmdir(path.c_str());
    }
    std::vector<std::string> list() const
    {
        std::vector<std::string> out;
        if (DIR *d = ::opendir(path.c_str())) {
            while (struct dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    out.push_back(name);
            }
            ::closedir(d);
        }
        return out;
    }
};

/** One structurally valid chunk to feed the cache writer. */
TraceChunk
sampleChunk()
{
    TraceChunk chunk;
    chunk.events = randomEvents(0xfau, 200);
    for (const TraceEvent &ev : chunk.events) {
        if (ev.kind == TraceEventKind::Cycle)
            ++chunk.cycleRecords;
    }
    return chunk;
}

} // namespace

TEST_F(TraceIoFaults, WriterSyscallFailuresAreFatal)
{
    TempDir dir;
    const std::string path = dir.path + "/dump.bin";

    failpoints::configure("trace_io.writer_open", "always@eio");
    EXPECT_EXIT(TraceWriter{path}, ::testing::ExitedWithCode(1),
                "cannot open trace file");
    failpoints::resetAll();

    failpoints::configure("trace_io.writer_write", "always@enospc");
    EXPECT_EXIT(
        {
            TraceWriter writer(path);
            writeEvents(randomEvents(3, 10), writer);
        },
        ::testing::ExitedWithCode(1), "short write");
    failpoints::resetAll();

    failpoints::configure("trace_io.writer_flush", "always@enospc");
    EXPECT_EXIT(
        {
            TraceWriter writer(path);
            writeEvents(randomEvents(3, 10), writer);
        },
        ::testing::ExitedWithCode(1), "error flushing");
    failpoints::resetAll();

    failpoints::configure("trace_io.writer_close", "always@eio");
    EXPECT_EXIT(
        {
            TraceWriter writer(path);
            writeEvents(randomEvents(3, 10), writer);
        },
        ::testing::ExitedWithCode(1), "error closing");
}

TEST_F(TraceIoFaults, ReplaySyscallFailuresAreFatal)
{
    TempDir dir;
    const std::string path = dir.path + "/replay.bin";
    {
        TraceWriter writer(path);
        writeEvents(randomEvents(11, 50), writer);
    }

    failpoints::configure("trace_io.replay_open", "always@eio");
    EXPECT_EXIT(replayTrace(path, {}), ::testing::ExitedWithCode(1),
                "cannot open trace file");
    failpoints::resetAll();

    failpoints::configure("trace_io.replay_read", "always@eio");
    EXPECT_EXIT(replayTrace(path, {}), ::testing::ExitedWithCode(1),
                "truncated trace file");
}

TEST_F(TraceIoFaults, CacheWriterSeamsDegradeWithoutLeakingTmp)
{
    // Simulated full disk (ENOSPC) on every cache-write seam in turn:
    // the writer must warn and abandon — never exit, never publish, and
    // never leave a *.tmp behind.
    const char *seams[] = {
        "trace_io.tmp_open", "trace_io.reserve", "trace_io.write_chunk",
        "trace_io.seal",     "trace_io.fsync",   "trace_io.close",
        "trace_io.rename",
    };
    const TraceChunk chunk = sampleChunk();
    for (const char *seam : seams) {
        SCOPED_TRACE(seam);
        TempDir dir;
        const std::string path = dir.path + "/entry.teatrc";
        failpoints::configure(seam, "always@enospc");
        {
            CompactTraceWriter writer(path, 77);
            writer.writeChunk(chunk);
            EXPECT_FALSE(writer.commit(CoreStats{}));
        }
        failpoints::resetAll();
        EXPECT_TRUE(dir.list().empty())
            << "seam left files behind: " << dir.list().front();

        // With the seam disarmed the same sequence publishes fine.
        {
            CompactTraceWriter writer(path, 77);
            writer.writeChunk(chunk);
            EXPECT_TRUE(writer.commit(CoreStats{}));
        }
        std::string why;
        EXPECT_NE(MappedTraceFile::open(path, 77, &why), nullptr) << why;
    }
}

TEST_F(TraceIoFaults, TransientFsyncFailureIsRetriedAndRecovered)
{
    TempDir dir;
    const std::string path = dir.path + "/entry.teatrc";
    failpoints::configure("trace_io.fsync", "nth:1@eagain");
    CompactTraceWriter writer(path, 5);
    writer.writeChunk(sampleChunk());
    EXPECT_TRUE(writer.commit(CoreStats{}));
    EXPECT_EQ(writer.retryStats().retries, 1u);
    EXPECT_EQ(writer.retryStats().recoveries, 1u);
    std::string why;
    EXPECT_NE(MappedTraceFile::open(path, 5, &why), nullptr) << why;
}

TEST_F(TraceIoFaults, MapSyscallFailuresReportErrnoToCaller)
{
    TempDir dir;
    const std::string path = dir.path + "/entry.teatrc";
    {
        CompactTraceWriter writer(path, 9);
        writer.writeChunk(sampleChunk());
        ASSERT_TRUE(writer.commit(CoreStats{}));
    }

    for (const char *seam : {"trace_io.map_open", "trace_io.mmap"}) {
        SCOPED_TRACE(seam);
        failpoints::configure(seam, "always@eio");
        std::string why;
        int sys_err = 0;
        EXPECT_EQ(MappedTraceFile::open(path, 9, &why, &sys_err),
                  nullptr);
        EXPECT_EQ(sys_err, EIO); // syscall failure, not damage
        failpoints::resetAll();
    }

    // Validation damage reports sys_err == 0: retrying cannot help.
    std::string why;
    int sys_err = 123;
    EXPECT_EQ(MappedTraceFile::open(path, 10, &why, &sys_err), nullptr);
    EXPECT_EQ(sys_err, 0);
    EXPECT_NE(why.find("fingerprint"), std::string::npos) << why;
}

TEST_F(TraceIoFaults, WriterAbandonsOnScopeExitWithoutCommit)
{
    TempDir dir;
    const std::string path = dir.path + "/entry.teatrc";
    {
        CompactTraceWriter writer(path, 3);
        writer.writeChunk(sampleChunk());
        // No commit: simulated experiment death mid-write.
    }
    EXPECT_TRUE(dir.list().empty());
}
