/**
 * @file
 * Tests for trace serialization/replay: replayed traces must drive
 * observers to byte-identical results as the live simulation.
 */

#include <cstdio>
#include <gtest/gtest.h>

#include "core/trace_io.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

struct TempFile
{
    std::string path;
    explicit TempFile(const char *name)
        : path(std::string("/tmp/tea_trace_test_") + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

std::vector<SamplerConfig>
allPolicies()
{
    return {ibsConfig(127), speConfig(127), risConfig(127),
            nciTeaConfig(127), teaConfig(127), tipConfig(127),
            dtagTeaConfig(127)};
}

} // namespace

TEST(TraceIo, ReplayReproducesGoldenExactly)
{
    TempFile tmp("golden.bin");
    Workload w = workloads::byName("mcf");
    GoldenReference live;
    {
        CoreRun run = makeCore(std::move(w));
        TraceWriter writer(tmp.path);
        run->addSink(&live);
        run->addSink(&writer);
        run->run();
        EXPECT_GT(writer.eventsWritten(), 1000u);
    }

    GoldenReference replayed;
    Cycle cycles = replayTrace(tmp.path, {&replayed});
    EXPECT_GT(cycles, 0u);
    EXPECT_DOUBLE_EQ(replayed.pics().total(), live.pics().total());
    EXPECT_NEAR(replayed.pics().errorAgainst(live.pics()), 0.0, 1e-9);
    EXPECT_EQ(replayed.eventCounts().size(), live.eventCounts().size());
}

TEST(TraceIo, ReplayReproducesEverySamplingPolicy)
{
    TempFile tmp("samplers.bin");
    Workload w = workloads::byName("exchange2");

    std::vector<std::unique_ptr<TechniqueSampler>> live;
    for (SamplerConfig c : allPolicies())
        live.push_back(std::make_unique<TechniqueSampler>(c));

    {
        CoreRun run = makeCore(std::move(w));
        TraceWriter writer(tmp.path);
        for (auto &s : live)
            run->addSink(s.get());
        run->addSink(&writer);
        run->run();
    }

    std::vector<std::unique_ptr<TechniqueSampler>> offline;
    std::vector<TraceSink *> sinks;
    for (SamplerConfig c : allPolicies()) {
        offline.push_back(std::make_unique<TechniqueSampler>(c));
        sinks.push_back(offline.back().get());
    }
    replayTrace(tmp.path, sinks);

    for (std::size_t i = 0; i < live.size(); ++i) {
        SCOPED_TRACE(live[i]->config().name);
        EXPECT_EQ(offline[i]->samplesTaken(), live[i]->samplesTaken());
        EXPECT_EQ(offline[i]->samplesDropped(),
                  live[i]->samplesDropped());
        EXPECT_DOUBLE_EQ(offline[i]->pics().total(),
                         live[i]->pics().total());
        EXPECT_NEAR(offline[i]->pics().errorAgainst(live[i]->pics()),
                    0.0, 1e-9);
    }
}

TEST(TraceIo, CyclesReturnedMatchesSimulation)
{
    TempFile tmp("count.bin");
    Workload w = workloads::aluLoop(2000);
    Cycle sim_cycles = 0;
    {
        CoreRun run = makeCore(std::move(w));
        TraceWriter writer(tmp.path);
        run->addSink(&writer);
        run->run();
        sim_cycles = run->stats().cycles;
    }
    Cycle replayed = replayTrace(tmp.path, {});
    EXPECT_EQ(replayed, sim_cycles);
}

TEST(TraceIo, CorruptFileIsFatal)
{
    TempFile tmp("corrupt.bin");
    std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::uint8_t junk = 'Z';
    std::fwrite(&junk, 1, 1, f);
    std::fclose(f);
    EXPECT_EXIT(replayTrace(tmp.path, {}),
                ::testing::ExitedWithCode(1), "bad tag");
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(replayTrace("/nonexistent/tea.bin", {}),
                ::testing::ExitedWithCode(1), "cannot open");
}
