/**
 * @file
 * Tests for the golden reference and the sampling techniques: coverage,
 * convergence, policy behaviour and overhead accounting.
 */

#include <gtest/gtest.h>

#include "profilers/correlation.hh"
#include "profilers/golden.hh"
#include "profilers/overhead.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

struct Observed
{
    CoreRun run;
    std::unique_ptr<GoldenReference> goldenPtr;
    std::vector<std::unique_ptr<TechniqueSampler>> samplers;

    const GoldenReference &golden() const { return *goldenPtr; }
};

Observed
observe(Workload w, std::vector<SamplerConfig> cfgs,
        CoreConfig core_cfg = CoreConfig{})
{
    Observed o{makeCore(std::move(w), core_cfg),
               std::make_unique<GoldenReference>(), {}};
    o.run->addSink(o.goldenPtr.get());
    for (SamplerConfig &c : cfgs) {
        o.samplers.push_back(std::make_unique<TechniqueSampler>(c));
        o.run->addSink(o.samplers.back().get());
    }
    o.run->run();
    return o;
}

} // namespace

TEST(GoldenReference, AttributesEveryCycle)
{
    Observed o = observe(workloads::branchNoise(3000), {});
    double covered = o.golden().pics().total() + o.golden().droppedCycles();
    // 1/n compute splits accumulate tiny FP rounding.
    EXPECT_NEAR(covered, static_cast<double>(o.run->stats().cycles), 0.1);
    // The unattributable tail is at most a few cycles at program end.
    EXPECT_LT(o.golden().droppedCycles(), 16.0);
}

TEST(GoldenReference, EventCountsMatchCoreStats)
{
    Observed o = observe(workloads::flushySqrt(300, true), {});
    std::uint64_t flex = 0;
    for (const auto &[pc, counts] : o.golden().eventCounts())
        flex += counts[static_cast<unsigned>(Event::FlEx)];
    EXPECT_EQ(flex, o.run->stats()
                        .eventCounts[static_cast<unsigned>(Event::FlEx)]);
}

TEST(GoldenReference, StallHistogramCountsRetires)
{
    Observed o = observe(workloads::aluLoop(1000), {});
    std::uint64_t n = 0;
    for (const auto &[sig, hist] : o.golden().stallHistograms())
        n += hist.count();
    EXPECT_EQ(n, o.run->stats().committedUops);
}

TEST(Sampler, TeaAtPeriodOneMatchesGolden)
{
    SamplerConfig cfg = teaConfig(1);
    Observed o = observe(workloads::branchNoise(2000), {cfg});
    double err = o.samplers[0]->pics().errorAgainst(o.golden().pics());
    // Period-1 TEA is the golden reference up to the final-cycle tail.
    EXPECT_LT(err, 0.01);
}

TEST(Sampler, TeaErrorShrinksWithFrequency)
{
    Observed o = observe(workloads::byName("exchange2"),
                         {teaConfig(1024), teaConfig(64)});
    double coarse = o.samplers[0]->pics().errorAgainst(
        o.golden().pics());
    double fine = o.samplers[1]->pics().errorAgainst(o.golden().pics());
    EXPECT_LT(fine, coarse);
}

TEST(Sampler, MaskingDropsUnsupportedEvents)
{
    SamplerConfig cfg = teaConfig(7);
    cfg.eventMask = ibsEventSet().mask; // no DR-SQ, FL-EX, FL-MO
    Observed o = observe(workloads::flushySqrt(400, true), {cfg});
    for (const PicsComponent &c : o.samplers[0]->pics().components()) {
        EXPECT_FALSE(Psv(c.signature).test(Event::FlEx));
        EXPECT_FALSE(Psv(c.signature).test(Event::DrSq));
    }
}

TEST(Sampler, TipReportsOnlyBaseComponents)
{
    Observed o = observe(workloads::byName("bwaves"), {tipConfig(101)});
    for (const PicsComponent &c : o.samplers[0]->pics().components())
        EXPECT_EQ(c.signature, 0u);
    EXPECT_GT(o.samplers[0]->pics().total(), 0.0);
}

TEST(Sampler, SampleWeightEqualsPeriod)
{
    SamplerConfig cfg = teaConfig(113);
    Observed o = observe(workloads::aluLoop(4000), {cfg});
    const TechniqueSampler &s = *o.samplers[0];
    // Total attributed cycles == samples x period (compute samples split
    // across committing uops still sum to one period each).
    EXPECT_NEAR(s.pics().total(),
                static_cast<double>(s.samplesTaken()) * 113.0, 1e-6);
}

TEST(Sampler, DispatchTagTagsNextDispatch)
{
    // A flush-free ALU loop: dispatch tagging should produce samples on
    // loop-body instructions with Base signatures.
    Observed o = observe(workloads::aluLoop(4000), {ibsConfig(97)});
    const TechniqueSampler &s = *o.samplers[0];
    EXPECT_GT(s.samplesTaken(), 20u);
    for (const PicsComponent &c : s.pics().components())
        EXPECT_EQ(c.signature & ~ibsEventSet().mask, 0u);
}

TEST(Sampler, TaggingDropsOverlappingSamples)
{
    // Long stalls make tagged micro-ops live many cycles; samples firing
    // while one is in flight are dropped (period << stall length).
    Observed o = observe(workloads::pointerChase(2048, 2, 4096 + 64),
                         {ibsConfig(31)});
    EXPECT_GT(o.samplers[0]->samplesDropped(), 0u);
}

TEST(Sampler, FetchTagDiffersFromDispatchTag)
{
    Observed o = observe(workloads::byName("xalancbmk"),
                         {ibsConfig(127), risConfig(127)});
    // Different tagging stages must not produce identical profiles on a
    // front-end-bound workload.
    Pics ibs = o.samplers[0]->pics().masked(
        ibsEventSet().mask & risEventSet().mask);
    Pics ris = o.samplers[1]->pics().masked(
        ibsEventSet().mask & risEventSet().mask);
    EXPECT_GT(ibs.errorAgainst(ris), 0.01);
}

TEST(Sampler, NciMisattributesFlushCycles)
{
    // On a flush-heavy workload NCI attributes flush cycles to the
    // next-committing instruction; TEA to the flushing instruction.
    Observed o = observe(workloads::byName("nab"),
                         {teaConfig(127), nciTeaConfig(127)});
    double tea_err = o.samplers[0]->pics().errorAgainst(o.golden().pics());
    double nci_err = o.samplers[1]->pics().errorAgainst(o.golden().pics());
    EXPECT_LT(tea_err, 0.05);
    EXPECT_GT(nci_err, 5.0 * tea_err);
}

TEST(Sampler, PhaseOffsetsSampleDifferentCycles)
{
    SamplerConfig a = teaConfig(100);
    SamplerConfig b = teaConfig(100);
    b.phase = 50;
    Observed o = observe(workloads::branchNoise(3000), {a, b});
    EXPECT_GT(o.samplers[0]->samplesTaken(), 0u);
    EXPECT_GT(o.samplers[1]->samplesTaken(), 0u);
}

TEST(Correlation, FlushEventsCorrelatePerfectlyWhenUniform)
{
    Observed o = observe(workloads::byName("nab"), {});
    auto corr = eventImpactCorrelation(o.golden());
    auto flex = corr[static_cast<unsigned>(Event::FlEx)];
    ASSERT_TRUE(flex.valid);
    EXPECT_GT(flex.r, 0.9);
}

TEST(Correlation, RequiresThreeSitesAndVariance)
{
    Observed o = observe(workloads::aluLoop(500), {});
    auto corr = eventImpactCorrelation(o.golden());
    for (const auto &c : corr)
        EXPECT_FALSE(c.valid); // no events at all
}

TEST(Overhead, StorageMatchesPaper)
{
    CoreConfig cfg;
    StorageBreakdown b = teaStorage(cfg);
    EXPECT_NEAR(b.totalBytes(), 249.0, 1.0);
    EXPECT_NEAR(robFetchBufferStorageFraction(cfg), 0.917, 0.01);
    EXPECT_DOUBLE_EQ(tipStorageBytes(), 57.0);
    EXPECT_EQ(sampleBytes(), 88u);
}

TEST(Overhead, StorageScalesWithRob)
{
    CoreConfig small;
    small.robEntries = 96;
    CoreConfig big;
    big.robEntries = 192;
    EXPECT_LT(teaStorage(small).totalBytes(),
              teaStorage(big).totalBytes());
}

TEST(Overhead, PerfOverheadModel)
{
    EXPECT_NEAR(samplingPerfOverhead(800'000), 0.011, 0.001);
    EXPECT_GT(samplingPerfOverhead(200'000),
              samplingPerfOverhead(800'000));
}

TEST(Overhead, PowerModelFractionTiny)
{
    PowerModel pm;
    EXPECT_LT(pm.coreFraction(), 0.002); // ~0.1% of core power
}
