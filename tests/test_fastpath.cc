/**
 * @file
 * Differential tests of the simulator fast path (DESIGN.md, "Simulator
 * fast path"): the event-driven run() and the per-cycle reference loop
 * (TEA_CORE_FASTPATH=0) must produce bit-identical traces, statistics
 * and Pics on every workload, and the skip clock must never jump past a
 * scheduled event under randomized stall/drain schedules — if it did,
 * the traces would diverge, which is exactly what these tests detect.
 *
 * Trace identity is checked through the on-disk codec: each completed
 * chunk is encoded and folded into one running fingerprint, so the
 * comparison covers every observable field (the codec canonicalizes
 * only the stale bytes of invalid slots) without holding two full
 * traces in memory. Chunk boundaries are part of the fingerprint —
 * batched emission must chunk exactly like per-event emission.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/audit.hh"
#include "analysis/runner.hh"
#include "common/fingerprint.hh"
#include "common/rng.hh"
#include "core/core.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

/** Everything observable about one simulation, cheap to compare. */
struct TraceDigest
{
    std::uint64_t hash = 0;   ///< FNV-1a over the encoded chunk stream
    std::uint64_t events = 0;
    std::uint64_t chunks = 0;
    Cycle cycles = 0;
    CoreStats stats;
    SimPerf perf;
};

TraceDigest
runDigest(Workload w, const CoreConfig &cfg, bool fast,
          Cycle max_cycles = 500'000'000, std::size_t chunk_events = 1024)
{
    Fnv1a h;
    std::uint64_t chunks = 0;
    std::vector<std::uint8_t> frame;
    ChunkingSink sink(chunk_events, [&](TraceChunkPtr c) {
        frame.clear();
        encodeChunk(*c, frame);
        h.addBytes(frame.data(), frame.size());
        ++chunks;
    });

    Core core(cfg, w.program, std::move(w.initial));
    core.setFastPath(fast);
    core.addSink(&sink);

    TraceDigest d;
    d.cycles = core.run(max_cycles);
    sink.finish();
    d.hash = h.value();
    d.events = sink.eventsCaptured();
    d.chunks = chunks;
    d.stats = core.stats();
    d.perf = core.perf();
    return d;
}

void
expectStatsEqual(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.stateCycles, b.stateCycles);
    EXPECT_EQ(a.eventCounts, b.eventCounts);
    EXPECT_EQ(a.uopsWithEvents, b.uopsWithEvents);
    EXPECT_EQ(a.uopsWithCombined, b.uopsWithCombined);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.pipelineFlushes, b.pipelineFlushes);
    EXPECT_EQ(a.moViolations, b.moViolations);
    EXPECT_EQ(a.drSqStallCycles, b.drSqStallCycles);
    EXPECT_EQ(a.samplingInterrupts, b.samplingInterrupts);
}

void
expectDigestsIdentical(const TraceDigest &ref, const TraceDigest &fast)
{
    EXPECT_EQ(ref.cycles, fast.cycles);
    EXPECT_EQ(ref.events, fast.events);
    EXPECT_EQ(ref.chunks, fast.chunks);
    EXPECT_EQ(ref.hash, fast.hash);
    expectStatsEqual(ref.stats, fast.stats);

    // The reference loop never skips; the fast path must account for
    // every simulated cycle as either executed or bulk-emitted.
    EXPECT_EQ(ref.perf.skippedCycles, 0u);
    EXPECT_EQ(fast.perf.activeCycles + fast.perf.skippedCycles,
              fast.stats.cycles);
}

// --- every suite workload, both modes ---------------------------------

class FastpathSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FastpathSuite, BitIdenticalTraceAndStats)
{
    const std::string name = GetParam();
    CoreConfig cfg;
    TraceDigest ref = runDigest(workloads::byName(name), cfg, false);
    TraceDigest fast = runDigest(workloads::byName(name), cfg, true);
    expectDigestsIdentical(ref, fast);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FastpathSuite,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// --- microkernels, event-by-event (better diagnostics on divergence) --

TEST(FastpathDifferential, MicrokernelEventStreamsEquivalent)
{
    struct Case
    {
        const char *name;
        Workload w;
    };
    std::vector<Case> cases;
    cases.push_back({"aluLoop", workloads::aluLoop(2000)});
    cases.push_back({"streamSum", workloads::streamSum(256, 2)});
    cases.push_back({"storeBurst", workloads::storeBurst(64, 4)});
    cases.push_back({"branchNoise", workloads::branchNoise(4000)});
    cases.push_back({"orderingViolator",
                     workloads::orderingViolator(300)});
    cases.push_back({"flushySqrt", workloads::flushySqrt(200, true)});
    cases.push_back({"icacheWalk", workloads::icacheWalk(8, 3)});

    for (Case &c : cases) {
        SCOPED_TRACE(c.name);
        CoreConfig cfg;
        Workload wr = c.w; // program is shared; state copied per run

        TraceBuffer ref_buf(512);
        Core ref(cfg, c.w.program, std::move(c.w.initial));
        ref.setFastPath(false);
        ref.addSink(&ref_buf);
        ref.run();
        ref_buf.finish();

        TraceBuffer fast_buf(512);
        Core fast(cfg, wr.program, std::move(wr.initial));
        fast.setFastPath(true);
        fast.addSink(&fast_buf);
        fast.run();
        fast_buf.finish();

        ASSERT_EQ(ref_buf.chunks().size(), fast_buf.chunks().size());
        for (std::size_t i = 0; i < ref_buf.chunks().size(); ++i) {
            const TraceChunk &a = *ref_buf.chunks()[i];
            const TraceChunk &b = *fast_buf.chunks()[i];
            ASSERT_EQ(a.events.size(), b.events.size())
                << "chunk " << i;
            EXPECT_EQ(a.cycleRecords, b.cycleRecords) << "chunk " << i;
            for (std::size_t e = 0; e < a.events.size(); ++e) {
                ASSERT_TRUE(eventsEquivalent(a.events[e], b.events[e]))
                    << "chunk " << i << " event " << e;
            }
        }
    }
}

// --- the bulk-emitted idle frames must satisfy the trace auditor ------

TEST(FastpathAudit, SkippedFramesSatisfyInvariantAuditor)
{
    // Memory-bound, so long idle spans are skipped and bulk-emitted;
    // the auditor then proves the frames are dense, monotone and
    // state-consistent exactly like stepped ones.
    Workload w = workloads::streamSum(2048, 2);
    CoreConfig cfg;
    Core core(cfg, w.program, std::move(w.initial));
    core.setFastPath(true);
    InvariantAuditor audit(InvariantAuditor::Mode::Collect);
    core.addSink(&audit);
    core.run();
    audit.finish();

    EXPECT_GT(core.perf().skippedCycles, 0u)
        << "workload no longer exercises the skip clock";
    EXPECT_TRUE(audit.clean());
    for (const std::string &v : audit.violations())
        ADD_FAILURE() << v;
    EXPECT_EQ(audit.cyclesAudited(), core.stats().cycles);
}

// --- Pics identity end to end (env knob, all standard techniques) -----

TEST(FastpathPics, GoldenAndTechniquePicsBitIdenticalAcrossModes)
{
    ::setenv("TEA_CORE_FASTPATH", "0", 1);
    ExperimentResult ref =
        runWorkload(workloads::streamSum(512, 3), standardTechniques());
    ::setenv("TEA_CORE_FASTPATH", "1", 1);
    ExperimentResult fast =
        runWorkload(workloads::streamSum(512, 3), standardTechniques());
    ::unsetenv("TEA_CORE_FASTPATH");

    EXPECT_EQ(ref.stats.cycles, fast.stats.cycles);
    EXPECT_EQ(auditPicsIdentical(ref.golden->pics(),
                                 fast.golden->pics()),
              "");
    ASSERT_EQ(ref.techniques.size(), fast.techniques.size());
    for (std::size_t i = 0; i < ref.techniques.size(); ++i) {
        SCOPED_TRACE(ref.techniques[i].config.name);
        EXPECT_EQ(auditPicsIdentical(ref.techniques[i].pics,
                                     fast.techniques[i].pics),
                  "");
    }
}

// --- property: randomized stall/drain schedules ------------------------

/** A config with randomly shrunk queues and stretched latencies: the
 * adversarial schedule generator for the skip clock. Tiny SQ/LQ/MSHR
 * capacities force DR-SQ backpressure and drain chains; long, varied
 * latencies open wide idle spans with events parked far in the future;
 * sampling and store-set aging exercise the modulo boundaries. */
CoreConfig
randomConfig(Rng &rng)
{
    CoreConfig cfg;
    cfg.fetchWidth = static_cast<unsigned>(rng.range(2, 8));
    cfg.decodeWidth = static_cast<unsigned>(rng.range(1, 4));
    cfg.dispatchWidth = static_cast<unsigned>(rng.range(1, 4));
    cfg.commitWidth = static_cast<unsigned>(rng.range(1, 4));
    cfg.fetchBufferEntries = static_cast<unsigned>(rng.range(8, 24));
    cfg.decodeLatency = static_cast<unsigned>(rng.range(1, 4));
    cfg.redirectPenalty = static_cast<unsigned>(rng.range(2, 16));
    cfg.robEntries = static_cast<unsigned>(rng.range(16, 64));
    cfg.intIqEntries = static_cast<unsigned>(rng.range(8, 32));
    cfg.intIssueWidth = static_cast<unsigned>(rng.range(1, 4));
    cfg.memIqEntries = static_cast<unsigned>(rng.range(4, 16));
    cfg.memIssueWidth = static_cast<unsigned>(rng.range(1, 2));
    cfg.fpIqEntries = static_cast<unsigned>(rng.range(4, 16));
    cfg.fpIssueWidth = static_cast<unsigned>(rng.range(1, 2));
    cfg.lqEntries = static_cast<unsigned>(rng.range(4, 12));
    cfg.sqEntries = static_cast<unsigned>(rng.range(2, 8));
    cfg.intDivLatency = static_cast<unsigned>(rng.range(8, 40));
    cfg.fpDivLatency = static_cast<unsigned>(rng.range(10, 40));
    cfg.fpSqrtLatency = static_cast<unsigned>(rng.range(12, 60));
    cfg.forwardLatency = static_cast<unsigned>(rng.range(1, 4));
    cfg.moReplayPenalty = static_cast<unsigned>(rng.range(4, 24));
    cfg.storeSetClearInterval =
        std::array<Cycle, 4>{0, 50, 1000, 250'000}[rng.below(4)];
    cfg.samplingInterruptPeriod =
        std::array<Cycle, 3>{0, 100, 1000}[rng.below(3)];
    // A handler that outlasts the period starves fetch forever (true of
    // the modelled machine too), so keep occupancy below half a period.
    cfg.samplingHandlerCycles =
        cfg.samplingInterruptPeriod != 0
            ? static_cast<Cycle>(
                  rng.range(10, cfg.samplingInterruptPeriod / 2))
            : static_cast<Cycle>(rng.range(20, 200));
    cfg.l1d.mshrs = static_cast<unsigned>(rng.range(1, 4));
    cfg.l1d.hitLatency = static_cast<unsigned>(rng.range(1, 6));
    cfg.llc.hitLatency = static_cast<unsigned>(rng.range(8, 30));
    cfg.nextLinePrefetcher = rng.chance(0.5);
    cfg.dramLatency = static_cast<unsigned>(rng.range(40, 200));
    cfg.dramInterval = static_cast<unsigned>(rng.range(4, 20));
    return cfg;
}

Workload
randomWorkload(Rng &rng)
{
    switch (rng.below(6)) {
    case 0:
        return workloads::aluLoop(
            static_cast<unsigned>(rng.range(200, 2000)));
    case 1:
        return workloads::streamSum(
            static_cast<unsigned>(rng.range(32, 256)),
            static_cast<unsigned>(rng.range(1, 3)));
    case 2:
        return workloads::storeBurst(
            static_cast<unsigned>(rng.range(16, 64)),
            static_cast<unsigned>(rng.range(1, 4)));
    case 3:
        return workloads::branchNoise(
            static_cast<unsigned>(rng.range(500, 3000)),
            rng.next());
    case 4:
        return workloads::orderingViolator(
            static_cast<unsigned>(rng.range(50, 300)));
    default:
        return workloads::flushySqrt(
            static_cast<unsigned>(rng.range(50, 200)),
            rng.chance(0.5));
    }
}

TEST(FastpathProperty, RandomScheduleNeverSkipsScheduledEvent)
{
    // If the skip clock ever jumped past a cycle with real activity,
    // that cycle's commit frame (and everything downstream) would
    // differ from the reference — the fingerprint equality is the
    // property. Fixed seed: failures must reproduce.
    Rng rng(0x7ea5eedULL);
    constexpr int trials = 16;
    constexpr Cycle cap = 5'000'000;
    for (int t = 0; t < trials; ++t) {
        SCOPED_TRACE("trial " + std::to_string(t));
        CoreConfig cfg = randomConfig(rng);
        Workload w = randomWorkload(rng);
        Workload wr = w;
        TraceDigest ref =
            runDigest(std::move(w), cfg, false, cap, 256);
        TraceDigest fast =
            runDigest(std::move(wr), cfg, true, cap, 256);
        expectDigestsIdentical(ref, fast);
    }
}

} // namespace
