/**
 * @file
 * Tests for the related-work baselines: application CPI stacks and the
 * top-down classification.
 */

#include <gtest/gtest.h>

#include "analysis/cpi_stack.hh"
#include "analysis/runner.hh"

using namespace tea;

TEST(CpiStack, TotalMatchesMeasuredCpi)
{
    ExperimentResult res = runBenchmark("exchange2", {});
    CpiStack s = cpiStackFrom(*res.golden, res.stats);
    double measured_cpi = static_cast<double>(res.stats.cycles) /
                          static_cast<double>(res.stats.committedUops);
    // The golden reference attributes every cycle, so the stack's total
    // equals the measured CPI (up to the end-of-run tail).
    EXPECT_NEAR(s.total(), measured_cpi, 0.01 * measured_cpi);
}

TEST(CpiStack, MemoryBenchmarkIsMissDominated)
{
    ExperimentResult res = runBenchmark("fotonik3d", {});
    CpiStack s = cpiStackFrom(*res.golden, res.stats);
    double mem = s.eventCpi[static_cast<unsigned>(Event::StL1)] +
                 s.eventCpi[static_cast<unsigned>(Event::StLlc)];
    EXPECT_GT(mem, s.baseCpi * 0.5);
    EXPECT_GT(mem, 0.5);
}

TEST(CpiStack, FlushBenchmarkShowsFlEx)
{
    ExperimentResult res = runBenchmark("nab", {});
    CpiStack s = cpiStackFrom(*res.golden, res.stats);
    EXPECT_GT(s.eventCpi[static_cast<unsigned>(Event::FlEx)], 0.5);
}

TEST(CpiStack, RenderListsComponents)
{
    ExperimentResult res = runBenchmark("lbm", {});
    CpiStack s = cpiStackFrom(*res.golden, res.stats);
    std::string out = s.render();
    EXPECT_NE(out.find("ST-LLC"), std::string::npos);
    EXPECT_NE(out.find("total"), std::string::npos);
}

TEST(TopDown, FractionsSumToOne)
{
    ExperimentResult res = runBenchmark("mcf", {});
    TopDown td = topDownFrom(res.stats);
    EXPECT_NEAR(td.retiring + td.backEndBound + td.frontEndBound +
                    td.badSpeculation,
                1.0, 1e-9);
}

TEST(TopDown, ClassifiesKnownBenchmarks)
{
    ExperimentResult mem = runBenchmark("omnetpp", {});
    EXPECT_STREQ(topDownFrom(mem.stats).dominant(), "back-end bound");
    ExperimentResult fe = runBenchmark("xalancbmk", {});
    EXPECT_STREQ(topDownFrom(fe.stats).dominant(), "front-end bound");
    ExperimentResult spec = runBenchmark("perlbench", {});
    EXPECT_GT(topDownFrom(spec.stats).badSpeculation, 0.25);
}

TEST(TopDown, EmptyStatsAreSafe)
{
    CoreStats empty;
    TopDown td = topDownFrom(empty);
    EXPECT_EQ(td.retiring, 0.0);
}

TEST(CoreStatsRender, ListsAllCounterGroups)
{
    ExperimentResult res = runBenchmark("nab", {});
    std::string out = res.stats.render();
    EXPECT_NE(out.find("sim.cycles"), std::string::npos);
    EXPECT_NE(out.find("commit.flushedCycles"), std::string::npos);
    EXPECT_NE(out.find("events.FL-EX"), std::string::npos);
    EXPECT_NE(out.find("lsu.moViolations"), std::string::npos);
}
