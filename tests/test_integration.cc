/**
 * @file
 * End-to-end integration tests asserting the paper's headline results
 * hold in this reproduction (Fig 5, 9, 10, 11, 12 shapes).
 */

#include <gtest/gtest.h>

#include "analysis/runner.hh"
#include "profilers/correlation.hh"

using namespace tea;

namespace {

struct SuiteErrors
{
    double ibs = 0.0;
    double spe = 0.0;
    double ris = 0.0;
    double nci = 0.0;
    double tea = 0.0;
    double teaMax = 0.0;
};

/** Average Fig 5 errors over a subset of the suite (kept small so the
 * test stays fast; the full sweep lives in bench/fig5_accuracy). */
SuiteErrors
runSubset(const std::vector<std::string> &names)
{
    SuiteErrors e;
    for (const auto &name : names) {
        ExperimentResult res = runBenchmark(name, standardTechniques());
        e.ibs += res.errorOf(res.technique("IBS"));
        e.spe += res.errorOf(res.technique("SPE"));
        e.ris += res.errorOf(res.technique("RIS"));
        e.nci += res.errorOf(res.technique("NCI-TEA"));
        double t = res.errorOf(res.technique("TEA"));
        e.tea += t;
        e.teaMax = std::max(e.teaMax, t);
    }
    auto n = static_cast<double>(names.size());
    e.ibs /= n;
    e.spe /= n;
    e.ris /= n;
    e.nci /= n;
    e.tea /= n;
    return e;
}

} // namespace

TEST(Integration, Fig5AccuracyHierarchy)
{
    SuiteErrors e = runSubset({"nab", "omnetpp", "exchange2", "mcf"});
    // The paper's ordering: TEA << NCI-TEA << IBS/SPE/RIS.
    EXPECT_LT(e.tea, 0.05);
    EXPECT_LT(e.tea, e.nci);
    EXPECT_LT(e.nci, 0.5 * e.ibs);
    EXPECT_GT(e.ibs, 0.35);
    EXPECT_GT(e.spe, 0.35);
    EXPECT_GT(e.ris, 0.35);
}

TEST(Integration, Fig9FunctionGranularityKeepsOrdering)
{
    ExperimentResult res = runBenchmark("omnetpp", standardTechniques());
    double tea = res.errorOf(res.technique("TEA"),
                             Granularity::Function);
    double ibs = res.errorOf(res.technique("IBS"),
                             Granularity::Function);
    // IBS improves at coarse granularity but stays inaccurate because
    // cycles are misattributed to the wrong events.
    EXPECT_LT(tea, ibs);
    EXPECT_GT(ibs, 0.2);
}

TEST(Integration, Fig10TeaIdentifiesLbmCriticalLoad)
{
    ExperimentResult res = runBenchmark("lbm",
                                        {teaConfig(), ibsConfig()});
    // The top unit of both golden and TEA must be the critical load,
    // with an LLC-miss-dominated stack.
    auto golden_top = res.golden->pics().topUnits(1);
    auto tea_top = res.technique("TEA").pics.topUnits(1);
    ASSERT_FALSE(golden_top.empty());
    ASSERT_FALSE(tea_top.empty());
    EXPECT_EQ(golden_top[0], tea_top[0]);
    EXPECT_TRUE(
        res.program.inst(static_cast<InstIndex>(golden_top[0])).isLoad());

    double llc_cycles = 0.0;
    for (const PicsComponent &c : res.golden->pics().components()) {
        if (c.unit == golden_top[0] &&
            Psv(c.signature).test(Event::StLlc)) {
            llc_cycles += c.cycles;
        }
    }
    EXPECT_GT(llc_cycles,
              0.8 * res.golden->pics().unitCycles(golden_top[0]));

    // IBS must NOT identify the load (front-end tagging bias).
    auto ibs_top = res.technique("IBS").pics.topUnits(1);
    ASSERT_FALSE(ibs_top.empty());
    EXPECT_NE(ibs_top[0], golden_top[0]);
}

TEST(Integration, Fig11PrefetchMovesBottleneckToStores)
{
    workloads::LbmParams base;
    base.cells = 12288;
    base.sweeps = 1;
    workloads::LbmParams opt = base;
    opt.prefetchDistance = 4;

    ExperimentResult before = runWorkload(workloads::lbm(base), {});
    ExperimentResult after = runWorkload(workloads::lbm(opt), {});

    double speedup = static_cast<double>(before.stats.cycles) /
                     static_cast<double>(after.stats.cycles);
    EXPECT_GT(speedup, 1.15); // paper: 1.28x
    EXPECT_LT(speedup, 2.5);

    // DR-SQ-involving cycles grow with prefetching.
    auto drsq_cycles = [](const ExperimentResult &r) {
        double sum = 0.0;
        for (const PicsComponent &c : r.golden->pics().components()) {
            if (Psv(c.signature).test(Event::DrSq))
                sum += c.cycles;
        }
        return sum;
    };
    EXPECT_GT(drsq_cycles(after), drsq_cycles(before));
}

TEST(Integration, Fig12NabFlushAnalysis)
{
    ExperimentResult res = runBenchmark("nab", {teaConfig()});
    const Pics &gold = res.golden->pics();
    // Top instruction is the fsqrt with an event-free (Base) stack.
    auto top = gold.topUnits(1);
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(res.program.inst(static_cast<InstIndex>(top[0])).op,
              Op::FSqrt);
    EXPECT_GT(gold.cycles(top[0], 0),
              0.95 * gold.unitCycles(top[0]));
    // The CSR instructions carry FL-EX-dominated stacks.
    Psv flex;
    flex.set(Event::FlEx);
    double flex_cycles = 0.0;
    for (const PicsComponent &c : gold.components()) {
        if (c.signature == flex.bits())
            flex_cycles += c.cycles;
    }
    EXPECT_GT(flex_cycles, 0.2 * gold.total());
}

TEST(Integration, EventFreeStallsAreShort)
{
    // Section 3's coverage claim, on one stall-heavy benchmark: the
    // vast majority of event-free instructions stall only briefly.
    ExperimentResult res = runBenchmark("fotonik3d", {});
    auto it = res.golden->stallHistograms().find(0);
    ASSERT_NE(it, res.golden->stallHistograms().end());
    EXPECT_LE(it->second.quantile(0.99), 8u); // paper: 5.8 cycles
}

TEST(Integration, SamplersAgreeOnTotalTime)
{
    // All techniques observe the same trace; their sample budgets must
    // reconstruct a total close to the simulated cycle count.
    ExperimentResult res = runBenchmark("exchange2",
                                        standardTechniques());
    double cycles = static_cast<double>(res.stats.cycles);
    for (const TechniqueResult &t : res.techniques) {
        EXPECT_NEAR(t.pics.total() / cycles, 1.0, 0.1)
            << t.config.name;
    }
}
