/**
 * @file
 * Behavioural tests for the second batch of suite benchmarks
 * (deepsjeng, roms, cam4, perlbench) mirroring test_workloads.cc.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

std::uint64_t
ev(const CoreStats &s, Event e)
{
    return s.eventCounts[static_cast<unsigned>(e)];
}

double
stateFrac(const CoreStats &s, CommitState st)
{
    return static_cast<double>(s.stateCycles[static_cast<unsigned>(st)]) /
           static_cast<double>(s.cycles);
}

} // namespace

TEST(Workloads2, DeepsjengMixesBranchAndMemory)
{
    CoreRun run = runCore(workloads::deepsjeng());
    const CoreStats &s = run->stats();
    EXPECT_GT(s.branchMispredicts, 10000u);
    EXPECT_GT(ev(s, Event::StLlc), 10000u);
    EXPECT_GT(ev(s, Event::FlMb), 10000u);
}

TEST(Workloads2, RomsIsBandwidthBoundWithHiddenMisses)
{
    CoreRun run = runCore(workloads::roms());
    const CoreStats &s = run->stats();
    EXPECT_GT(stateFrac(s, CommitState::Stalled), 0.6);
    EXPECT_GT(ev(s, Event::StLlc), 40000u);
    // Four independent streams: the machine keeps many misses in
    // flight, so DRAM traffic per cycle is high.
    double lines_per_kcycle =
        1000.0 *
        static_cast<double>(run->memory().dramLineTransfers()) /
        static_cast<double>(s.cycles);
    EXPECT_GT(lines_per_kcycle, 50.0);
}

TEST(Workloads2, Cam4IsDivideBound)
{
    CoreRun run = runCore(workloads::cam4());
    const CoreStats &s = run->stats();
    EXPECT_GT(stateFrac(s, CommitState::Stalled), 0.5);
    // Few memory events relative to its runtime: the stall is the
    // unpipelined divider, not the memory system.
    EXPECT_LT(ev(s, Event::StLlc), s.committedUops / 20);
    EXPECT_LT(s.branchMispredicts, 1000u);
}

TEST(Workloads2, PerlbenchIsSpeculationBound)
{
    CoreRun run = runCore(workloads::perlbench());
    const CoreStats &s = run->stats();
    EXPECT_GT(stateFrac(s, CommitState::Flushed), 0.25);
    EXPECT_GT(s.branchMispredicts, 20000u);
    // Operand-stack traffic almost always forwards; at most a handful
    // of ordering violations before the store sets learn the pattern.
    EXPECT_LT(s.moViolations, 10u);
}

TEST(Workloads2, SuiteHasFifteenBenchmarks)
{
    EXPECT_EQ(workloads::suiteNames().size(), 15u);
}

class SecondBatch : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SecondBatch, FunctionalCorrectness)
{
    Workload w = workloads::byName(GetParam());
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w));
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(run->archState().regs[r], oracle.regs[r])
            << "reg " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SecondBatch,
    ::testing::Values("deepsjeng", "roms", "cam4", "perlbench"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });
