/**
 * @file
 * Unit tests for the deterministic RNG and the table/bar renderers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/table.hh"

using namespace tea;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroBound)
{
    Rng r(7);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(17);
    double sum = 0.0;
    double sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    double m = sum / n;
    double var = sq / n - m * m;
    EXPECT_NEAR(m, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.4);
}

TEST(Table, RendersAlignedColumns)
{
    Table t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| long-name"), std::string::npos);
    // All lines have the same width.
    std::size_t first_nl = out.find('\n');
    std::size_t width = first_nl;
    for (std::size_t pos = 0; pos < out.size();) {
        std::size_t nl = out.find('\n', pos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

TEST(Table, PadsRaggedRows)
{
    Table t;
    t.header({"a", "b", "c"});
    t.row({"x"});
    std::string out = t.render();
    EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(TableFormat, Percent)
{
    EXPECT_EQ(fmtPercent(0.556), "55.6%");
    EXPECT_EQ(fmtPercent(0.0211, 2), "2.11%");
}

TEST(TableFormat, CountSeparators)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

TEST(TableFormat, Bar)
{
    EXPECT_EQ(bar(5.0, 10.0, 10), "#####");
    EXPECT_EQ(bar(20.0, 10.0, 10).size(), 10u); // clamped
    EXPECT_EQ(bar(0.0, 10.0, 10), "");
}

TEST(TableFormat, StackedBarCoversWidth)
{
    std::string s = stackedBar({5.0, 5.0}, 10.0, 20);
    EXPECT_EQ(s.size(), 20u);
    EXPECT_EQ(s.substr(0, 10), std::string(10, '#'));
    EXPECT_EQ(s.substr(10), std::string(10, '='));
}
