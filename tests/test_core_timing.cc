/**
 * @file
 * White-box timing tests: hand-built programs with known cycle-level
 * behaviour, verifying the commit-state machine (the basis of
 * time-proportional attribution), latency propagation, forwarding and
 * flush shadows against first-principles expectations.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

/** Records the per-cycle commit-state sequence and attribution targets. */
class StateTracker : public TraceSink
{
  public:
    void
    onCycle(const CycleRecord &rec) override
    {
        states.push_back(rec.state);
        if (rec.state == CommitState::Stalled)
            stalledPcs.push_back(rec.headPc);
        if (rec.state == CommitState::Flushed)
            flushedPcs.push_back(rec.lastPc);
    }

    std::uint64_t
    count(CommitState s) const
    {
        std::uint64_t n = 0;
        for (CommitState st : states)
            n += st == s;
        return n;
    }

    std::vector<CommitState> states;
    std::vector<InstIndex> stalledPcs;
    std::vector<InstIndex> flushedPcs;
};

/** Run a raw program (no data image) with a tracker attached. */
CoreRun
runTracked(Program prog, StateTracker &tracker,
           CoreConfig cfg = CoreConfig{})
{
    Workload w{std::move(prog), ArchState{}, "timing test"};
    CoreRun run = makeCore(std::move(w), cfg);
    run->addSink(&tracker);
    run->run();
    return run;
}

} // namespace

TEST(CoreTiming, StartupIsDrained)
{
    ProgramBuilder b("t");
    b.nop();
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    // Before anything commits, every cycle is Drained (front-end fill).
    ASSERT_GE(tr.states.size(), 2u);
    EXPECT_EQ(tr.states.front(), CommitState::Drained);
    EXPECT_GE(tr.count(CommitState::Drained), 3u); // icache miss + decode
    (void)run;
}

TEST(CoreTiming, IndependentAluOpsCommitAtFullWidth)
{
    // A loop of independent ALU ops: once the I-cache warms, commit
    // proceeds near full width (IPC close to 4).
    ProgramBuilder b("t");
    b.li(x(9), 0);
    b.li(x(10), 400);
    Label top = b.here();
    for (unsigned i = 0; i < 14; ++i)
        b.addi(x(5 + (i % 4)), x(0), 1);
    b.addi(x(9), x(9), 1);
    b.blt(x(9), x(10), top);
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    EXPECT_GT(run->stats().ipc(), 3.0);
    // Stalls only during cold start and predictor warmup.
    EXPECT_LT(tr.count(CommitState::Stalled), 30u);
}

TEST(CoreTiming, DependentChainLimitsIpcToOne)
{
    // A serial dependency chain commits at most one per cycle.
    ProgramBuilder b("t");
    b.li(x(5), 1);
    for (unsigned i = 0; i < 63; ++i)
        b.addi(x(5), x(5), 1);
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    EXPECT_EQ(run->archState().reg(x(5)), 64u);
    // 64 chain ops: >= 63 cycles from first to last commit.
    EXPECT_GE(run->stats().cycles, 63u);
}

TEST(CoreTiming, UnpipelinedDivStallsAtHead)
{
    ProgramBuilder b("t");
    b.li(x(5), 1000);
    b.li(x(6), 7);
    b.div(x(7), x(5), x(6));
    b.add(x(8), x(7), x(7));
    b.halt();
    StateTracker tr;
    CoreConfig cfg;
    CoreRun run = runTracked(b.build(), tr, cfg);
    // The divide stalls commit for most of its latency.
    EXPECT_GE(tr.count(CommitState::Stalled), cfg.intDivLatency - 4);
    // Stall cycles attribute to the divide instruction (index 2).
    ASSERT_FALSE(tr.stalledPcs.empty());
    unsigned div_stalls = 0;
    for (InstIndex pc : tr.stalledPcs)
        div_stalls += pc == 2;
    EXPECT_GT(div_stalls, cfg.intDivLatency / 2);
}

TEST(CoreTiming, MispredictCausesFlushShadow)
{
    // A data-dependent branch mispredicts on its first execution (the
    // predictor starts weakly not-taken and the branch is taken).
    ProgramBuilder b("t");
    b.li(x(5), 1);
    Label target = b.label();
    b.bne(x(5), x(0), target); // taken, predicted not-taken
    b.addi(x(6), x(6), 1);     // skipped
    b.bind(target);
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    EXPECT_EQ(run->stats().branchMispredicts, 1u);
    EXPECT_GE(tr.count(CommitState::Flushed), 1u);
    // Flushed cycles attribute to the mispredicted branch (index 1).
    for (InstIndex pc : tr.flushedPcs)
        EXPECT_EQ(pc, 1u);
}

TEST(CoreTiming, CsrFlushShadowAttributesToCsr)
{
    ProgramBuilder b("t");
    b.li(x(5), 1);
    b.fsflags(); // index 1: always flushes at commit
    b.addi(x(6), x(5), 1);
    b.halt();
    StateTracker tr;
    CoreConfig cfg;
    CoreRun run = runTracked(b.build(), tr, cfg);
    EXPECT_GE(tr.count(CommitState::Flushed), cfg.redirectPenalty - 1);
    for (InstIndex pc : tr.flushedPcs)
        EXPECT_EQ(pc, 1u);
    (void)run;
}

TEST(CoreTiming, StoreToLoadForwardingIsFast)
{
    // A load reading a just-stored value forwards from the store queue:
    // no cache events, and far faster than a cache miss.
    ProgramBuilder b("t");
    b.li(x(5), 0x30000000);
    b.li(x(6), 42);
    b.st(x(5), 0, x(6));
    b.ld(x(7), x(5), 0);
    b.add(x(8), x(7), x(7));
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    EXPECT_EQ(run->archState().reg(x(7)), 42u);
    // No ST-L1 event on the load: it forwarded.
    EXPECT_EQ(run->stats()
                  .eventCounts[static_cast<unsigned>(Event::StL1)],
              0u);
    EXPECT_EQ(run->stats().moViolations, 0u);
    // Bounded by pipeline fill + one cold I-cache line, far below a
    // data-cache miss round trip per access.
    EXPECT_LT(run->stats().cycles, 300u);
}

TEST(CoreTiming, ColdLoadStallsForDramLatency)
{
    ProgramBuilder b("t");
    b.li(x(5), 0x40000000);
    b.ld(x(6), x(5), 0);
    b.add(x(7), x(6), x(6));
    b.halt();
    StateTracker tr;
    CoreConfig cfg;
    CoreRun run = runTracked(b.build(), tr, cfg);
    EXPECT_GE(tr.count(CommitState::Stalled), cfg.dramLatency - 10);
    // The stall attributes to the load (index 1).
    unsigned load_stalls = 0;
    for (InstIndex pc : tr.stalledPcs)
        load_stalls += pc == 1;
    EXPECT_GE(load_stalls, cfg.dramLatency / 2);
    (void)run;
}

TEST(CoreTiming, TakenBranchDoesNotFlushWhenPredicted)
{
    // A loop branch becomes predictable: after warmup there are no
    // flush cycles despite thousands of taken branches.
    ProgramBuilder b("t");
    b.li(x(5), 0);
    b.li(x(6), 2000);
    Label top = b.here();
    b.addi(x(5), x(5), 1);
    b.blt(x(5), x(6), top);
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    // gshare warms up within ~14 iterations (history saturation), then
    // predicts the loop branch perfectly for the remaining ~1986.
    EXPECT_LT(run->stats().branchMispredicts, 20u);
    EXPECT_LT(tr.count(CommitState::Flushed), 280u);
}

TEST(CoreTiming, FetchStopsAtCacheLineBoundary)
{
    // 16 instructions fill exactly one 64 B line; with an 8-wide fetch
    // the line takes two packets, but a program spanning two lines needs
    // at least one extra fetch cycle for the second line.
    ProgramBuilder b("t");
    for (unsigned i = 0; i < 31; ++i)
        b.addi(x(5 + (i % 4)), x(0), 1);
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    EXPECT_TRUE(run->halted());
    EXPECT_EQ(run->stats().committedUops, 32u);
}

TEST(CoreTiming, DecodeLatencyDelaysFirstDispatch)
{
    CoreConfig fast;
    fast.decodeLatency = 1;
    CoreConfig slow;
    slow.decodeLatency = 6;
    ProgramBuilder b1("t");
    b1.halt();
    ProgramBuilder b2("t");
    b2.halt();
    StateTracker t1, t2;
    CoreRun r1 = runTracked(b1.build(), t1, fast);
    CoreRun r2 = runTracked(b2.build(), t2, slow);
    EXPECT_EQ(r2->stats().cycles - r1->stats().cycles, 5u);
}

TEST(CoreTiming, RedirectPenaltyShapesMispredictCost)
{
    auto cycles_with_penalty = [](unsigned penalty) {
        CoreConfig cfg;
        cfg.redirectPenalty = penalty;
        Workload w = workloads::branchNoise(2000, 99);
        CoreRun run = runCore(std::move(w), cfg);
        return run->stats().cycles;
    };
    Cycle cheap = cycles_with_penalty(2);
    Cycle costly = cycles_with_penalty(20);
    EXPECT_GT(costly, cheap + 1000);
}

TEST(CoreTiming, PrefetchInstructionDoesNotStallCommit)
{
    // A software prefetch to uncached memory completes immediately; the
    // following independent work is unaffected.
    ProgramBuilder b("t");
    b.li(x(5), 0x50000000);
    b.prefetch(x(5), 0);
    for (unsigned i = 0; i < 16; ++i)
        b.addi(x(6 + (i % 4)), x(0), 1);
    b.halt();
    StateTracker tr;
    CoreRun run = runTracked(b.build(), tr);
    // Cold I-cache fills dominate; the prefetch itself adds no stall.
    EXPECT_LT(run->stats().cycles, 400u);
    EXPECT_LT(tr.count(CommitState::Stalled), 5u);
    EXPECT_EQ(run->stats()
                  .eventCounts[static_cast<unsigned>(Event::StL1)],
              0u);
}
