/**
 * @file
 * Crash-consistency matrix (the PR's acceptance test): for every
 * registered I/O seam in the cache pipeline, a child process is forked
 * with the seam armed `always@crash` — the process _exits at the seam,
 * no unwind, no destructors, exactly like a SIGKILL — against both the
 * store path (cold cache) and the load path (healthy entry). The parent
 * then verifies the crash contract on whatever the child left behind:
 *
 *  1. a disarmed, audited rerun is bit-identical to the fault-free
 *     baseline (surviving entries are valid or transparently healed —
 *     never silently wrong);
 *  2. an aggressive janitor pass reclaims every piece of debris (tmp
 *     files, stale locks, quarantine) without touching live entries;
 *  3. end-to-end validation of every surviving entry reports zero
 *     damage — no crash point can publish a torn file.
 *
 * A multi-process stress test then hammers one cache directory from
 * several forked workers with a tight byte budget, so stores, hits,
 * evictions and janitor passes interleave freely across processes —
 * every replay must stay bit-identical and the directory must come out
 * clean.
 */

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/cache_janitor.hh"
#include "analysis/runner.hh"
#include "analysis/trace_cache.hh"
#include "common/failpoint.hh"
#include "profilers/golden.hh"
#include "profilers/pics.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

std::vector<PicsComponent>
sortedComponents(const Pics &p)
{
    std::vector<PicsComponent> cs = p.components();
    std::sort(cs.begin(), cs.end(),
              [](const PicsComponent &a, const PicsComponent &b) {
                  return a.unit != b.unit ? a.unit < b.unit
                                          : a.signature < b.signature;
              });
    return cs;
}

/** Exact comparison usable from forked children (no gtest state). */
bool
picsIdentical(const Pics &a, const Pics &b)
{
    if (a.total() != b.total())
        return false;
    std::vector<PicsComponent> ca = sortedComponents(a);
    std::vector<PicsComponent> cb = sortedComponents(b);
    if (ca.size() != cb.size())
        return false;
    for (std::size_t i = 0; i < ca.size(); ++i) {
        if (ca[i].unit != cb[i].unit ||
            ca[i].signature != cb[i].signature ||
            ca[i].cycles != cb[i].cycles)
            return false;
    }
    return true;
}

void
expectPicsIdentical(const Pics &a, const Pics &b)
{
    EXPECT_TRUE(picsIdentical(a, b));
}

/** A scratch cache directory removed (recursively) on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
    {
        char tmpl[] = "/tmp/tea-crash-matrix-XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        dir_ = d ? d : "";
    }

    ~TempCacheDir()
    {
        if (!dir_.empty())
            removeTree(dir_);
    }

    const std::string &path() const { return dir_; }

    std::vector<std::string> list(const std::string &sub = "") const
    {
        return listAt(sub.empty() ? dir_ : dir_ + "/" + sub);
    }

    bool anyWithSuffix(const std::string &suffix) const
    {
        for (const std::string &name : list()) {
            if (endsWith(name, suffix))
                return true;
            for (const std::string &sub : list(name)) {
                if (endsWith(sub, suffix))
                    return true;
            }
        }
        return false;
    }

    static bool endsWith(const std::string &s, const std::string &tail)
    {
        return s.size() >= tail.size() &&
               s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
    }

  private:
    static std::vector<std::string> listAt(const std::string &at)
    {
        std::vector<std::string> out;
        if (DIR *d = ::opendir(at.c_str())) {
            while (struct dirent *e = ::readdir(d)) {
                std::string name = e->d_name;
                if (name != "." && name != "..")
                    out.push_back(name);
            }
            ::closedir(d);
        }
        return out;
    }

    static void removeTree(const std::string &at)
    {
        for (const std::string &name : listAt(at)) {
            const std::string full = at + "/" + name;
            struct ::stat st{};
            if (::lstat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
                removeTree(full);
            else
                std::remove(full.c_str());
        }
        ::rmdir(at.c_str());
    }

    std::string dir_;
};

RunnerOptions
cachedOptions(const TempCacheDir &dir, unsigned threads = 1)
{
    RunnerOptions o;
    o.threads = threads;
    o.cache.enabled = true;
    o.cache.dir = dir.path();
    o.cacheLockTimeoutMs = 50;
    return o;
}

ExperimentResult
runOnce(const RunnerOptions &opts, unsigned iterations = 300)
{
    return runWorkload(workloads::aluLoop(iterations), {teaConfig()},
                       opts);
}

/** Back-date every file in @p dir (and quarantine/) so age-gated GC
 *  passes see the post-crash state as old, not in-flight. */
void
backdateTree(const std::string &dir)
{
    struct ::timeval tv[2];
    tv[0].tv_sec = ::time(nullptr) - 100000;
    tv[0].tv_usec = 0;
    tv[1] = tv[0];
    for (const std::string &sub : {std::string(""),
                                   std::string("/quarantine")}) {
        const std::string at = dir + sub;
        DIR *d = ::opendir(at.c_str());
        if (d == nullptr)
            continue;
        while (struct dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                ::utimes((at + "/" + name).c_str(), tv);
        }
        ::closedir(d);
    }
}

/**
 * Fork a child that arms @p seam with `always@crash` and runs one
 * cached experiment; returns the child's wait status. The child leaves
 * through _exit only: 0 when the seam was never on the executed path,
 * crashExitCode when it died at the seam, 97 on an unexpected throw.
 */
int
forkAndCrash(const std::string &seam, const RunnerOptions &opts)
{
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = ::fork();
    if (pid == 0) {
        failpoints::configure(seam, "always@crash");
        try {
            (void)runOnce(opts);
        } catch (...) {
            ::_exit(97);
        }
        ::_exit(0);
    }
    int status = -1;
    ::waitpid(pid, &status, 0);
    return status;
}

class CrashMatrix : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!failpoints::compiledIn())
            GTEST_SKIP() << "failpoint seams compiled out";
        failpoints::resetAll();
    }
    void TearDown() override { failpoints::resetAll(); }
};

} // namespace

TEST_F(CrashMatrix, CrashKindDiesAtTheSeamWithTheAgreedCode)
{
    // Deterministic sanity check of the harness itself: the payload
    // fsync is always on the cold store path, so the child must die
    // there — with crashExitCode, not cleanly and not by signal.
    TempCacheDir dir;
    const int status = forkAndCrash("trace_io.fsync",
                                    cachedOptions(dir));
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), failpoints::crashExitCode);
    // The kill left the tmp file behind — exactly what the janitor
    // exists for — and published nothing.
    EXPECT_TRUE(dir.anyWithSuffix(".tmp"));
    EXPECT_TRUE(verifyCacheDir(dir.path(), false).clean());
}

TEST_F(CrashMatrix, EveryCacheSeamCrashLeavesRecoverableState)
{
    const ExperimentResult base = runOnce(RunnerOptions{});

    // Every seam in the cache pipeline: the trace-cache format and
    // publish path, the cache/janitor bookkeeping, and the advisory
    // lock. (runner.* concurrency seams are exception-based and
    // covered by the fault matrix.)
    std::vector<std::string> seams;
    for (Failpoint *fp : failpoints::all()) {
        const std::string &n = fp->name();
        if (n.rfind("trace_io.", 0) == 0 ||
            n.rfind("trace_cache.", 0) == 0 || n == "cache.lock")
            seams.push_back(n);
    }
    ASSERT_GE(seams.size(), 12u);

    unsigned crashes = 0;
    for (const std::string &seam : seams) {
        for (bool warm : {false, true}) {
            SCOPED_TRACE(seam + (warm ? " [load]" : " [store]"));
            TempCacheDir dir;
            RunnerOptions opts = cachedOptions(dir, 2);
            if (warm) {
                const ExperimentResult populate = runOnce(opts);
                ASSERT_FALSE(populate.failed());
            }

            const int status = forkAndCrash(seam, opts);
            // The child either never reached the seam (0) or was
            // killed at it (crashExitCode). Anything else — a signal,
            // an exception, a fatal — breaks the crash model.
            ASSERT_TRUE(WIFEXITED(status));
            const int code = WEXITSTATUS(status);
            ASSERT_TRUE(code == 0 ||
                        code == failpoints::crashExitCode)
                << "child exited " << code;
            crashes += code == failpoints::crashExitCode ? 1 : 0;

            // Contract 1: a disarmed, audited rerun over the crash
            // debris is bit-identical to the fault-free baseline.
            RunnerOptions audited = opts;
            audited.audit = 1;
            const ExperimentResult after = runOnce(audited);
            expectPicsIdentical(base.golden->pics(),
                                after.golden->pics());

            // Contract 2: an aggressive janitor pass (everything aged,
            // zero quarantine budget) reclaims all debris. Dead-writer
            // tmp files need no aging; the rest is back-dated.
            backdateTree(dir.path());
            JanitorConfig cfg;
            cfg.orphanMaxAgeS = 0;
            cfg.quarantineMaxAgeS = 0;
            cfg.quarantineMaxCount = 0;
            cfg.lockTimeoutMs = 2000;
            const JanitorStats js =
                CacheJanitor(dir.path(), cfg).gc();
            ASSERT_FALSE(js.lockBusy);
            EXPECT_FALSE(dir.anyWithSuffix(".tmp"));
            EXPECT_TRUE(dir.list("quarantine").empty());
            for (const std::string &name : dir.list()) {
                if (!TempCacheDir::endsWith(name, ".lock") ||
                    name == "janitor.lock")
                    continue;
                // Any surviving lock sidecar belongs to a live entry.
                const std::string entry =
                    dir.path() + "/" +
                    name.substr(0, name.size() - 5);
                struct ::stat st{};
                EXPECT_EQ(::stat(entry.c_str(), &st), 0)
                    << "stale lock survived: " << name;
            }

            // Contract 3: every surviving entry validates end to end.
            const CacheVerifyReport report =
                verifyCacheDir(dir.path(), false);
            EXPECT_EQ(report.damaged, 0u)
                << (report.damagedPaths.empty()
                        ? ""
                        : report.damagedPaths.front());
        }
    }
    // The matrix only proves something if children actually died.
    EXPECT_GT(crashes, 0u);
}

TEST_F(CrashMatrix, MultiProcessStressStaysIdenticalUnderEviction)
{
    const unsigned kIterations[] = {200, 300, 400};
    const int kWorkers = 4;
    const int kRounds = 3;

    // Baselines computed before the fork so every child inherits them
    // copy-on-write and can compare without gtest machinery.
    std::vector<ExperimentResult> base;
    for (unsigned it : kIterations)
        base.push_back(runOnce(RunnerOptions{}, it));

    // Budget ≈ 1.5× the largest entry: small enough that the janitor
    // keeps evicting while workers publish, large enough that every
    // entry passes admission control.
    TempCacheDir dir;
    const ExperimentResult probe = runOnce(cachedOptions(dir), 400);
    ASSERT_TRUE(probe.replay.cacheStored);
    const std::uint64_t budget = probe.replay.cacheBytes * 3 / 2;
    ASSERT_GT(budget, 0u);

    std::fflush(stdout);
    std::fflush(stderr);
    std::vector<pid_t> children;
    for (int w = 0; w < kWorkers; ++w) {
        pid_t pid = ::fork();
        if (pid == 0) {
            // Child: hammer the shared cache dir. Stores, hits, lock
            // degrades and evictions interleave freely with the other
            // workers; the only hard requirement is bit-identical
            // replays. Exit: 0 ok, 1 result mismatch, 2 unexpected
            // throw.
            for (int r = 0; r < kRounds; ++r) {
                for (std::size_t i = 0; i < 3; ++i) {
                    RunnerOptions o = cachedOptions(dir);
                    o.janitor.maxBytes = budget;
                    o.cacheLockTimeoutMs = 200;
                    try {
                        const ExperimentResult res =
                            runOnce(o, kIterations[i]);
                        if (!picsIdentical(base[i].golden->pics(),
                                           res.golden->pics()))
                            ::_exit(1);
                    } catch (...) {
                        ::_exit(2);
                    }
                }
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children) {
        int status = -1;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }

    // All writers are dead: a final pass must leave zero debris and a
    // within-budget, fully valid cache.
    backdateTree(dir.path());
    JanitorConfig cfg;
    cfg.maxBytes = budget;
    cfg.orphanMaxAgeS = 0;
    cfg.quarantineMaxAgeS = 0;
    cfg.quarantineMaxCount = 0;
    cfg.lockTimeoutMs = 2000;
    const JanitorStats js = CacheJanitor(dir.path(), cfg).gc();
    ASSERT_FALSE(js.lockBusy);
    EXPECT_FALSE(dir.anyWithSuffix(".tmp"));
    EXPECT_TRUE(dir.list("quarantine").empty());

    const CacheScan scan = scanCacheDir(dir.path());
    EXPECT_LE(scan.entryBytes, budget);
    const CacheVerifyReport report = verifyCacheDir(dir.path(), false);
    EXPECT_EQ(report.damaged, 0u);
    EXPECT_GT(report.checked, 0u); // something useful survived
}
