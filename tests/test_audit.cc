/**
 * @file
 * Tests for the TEA invariant auditor (analysis/audit): a clean trace —
 * live or replayed — must audit clean, and every seeded violation must
 * be detected with a diagnostic naming the offending cycle or sequence
 * number.
 */

#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "analysis/audit.hh"
#include "analysis/runner.hh"
#include "profilers/golden.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

/** An auditor that records instead of aborting. */
InvariantAuditor
collector()
{
    return InvariantAuditor(InvariantAuditor::Mode::Collect);
}

/** Fetch+dispatch+retire+cycle for one uop committing at @p cycle. */
void
emitComputeCycle(InvariantAuditor &a, Cycle cycle, SeqNum seq,
                 InstIndex pc)
{
    a.onFetch(UopRecord{seq, pc, cycle});
    a.onDispatch(UopRecord{seq, pc, cycle});
    a.onRetire(RetireRecord{seq, pc, Psv{}, cycle});
    CycleRecord rec;
    rec.cycle = cycle;
    rec.state = CommitState::Compute;
    rec.numCommitted = 1;
    rec.committed[0] = CommittedUop{seq, pc, Psv{}};
    rec.lastValid = true;
    rec.lastPc = pc;
    rec.lastPsv = Psv{};
    a.onCycle(rec);
}

/** A commit-less cycle record in state @p state at @p cycle. */
CycleRecord
idleCycle(Cycle cycle, CommitState state)
{
    CycleRecord rec;
    rec.cycle = cycle;
    rec.state = state;
    return rec;
}

/** True when some violation mentions every @p needles substring. */
bool
violationNaming(const InvariantAuditor &a,
                const std::vector<std::string> &needles)
{
    for (const std::string &v : a.violations()) {
        bool all = true;
        for (const std::string &n : needles) {
            if (v.find(n) == std::string::npos) {
                all = false;
                break;
            }
        }
        if (all)
            return true;
    }
    return false;
}

} // namespace

TEST(Audit, CleanSyntheticTracePasses)
{
    InvariantAuditor a = collector();
    emitComputeCycle(a, 0, 1, 5);
    CycleRecord drained = idleCycle(1, CommitState::Drained);
    drained.lastValid = true;
    drained.lastPc = 5;
    a.onCycle(drained);
    a.onEnd(2);
    a.finish();
    EXPECT_TRUE(a.clean()) << a.violations().front();
    EXPECT_EQ(a.cyclesAudited(), 2u);
    EXPECT_EQ(a.eventsAudited(), 6u);
}

TEST(Audit, DetectsDroppedCycle)
{
    InvariantAuditor a = collector();
    a.onCycle(idleCycle(0, CommitState::Drained));
    a.onCycle(idleCycle(2, CommitState::Drained)); // cycle 1 dropped
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"non-contiguous", "cycle 2",
                                    "cycle 0"}))
        << a.violations().front();
}

TEST(Audit, DetectsDuplicatedCycle)
{
    InvariantAuditor a = collector();
    a.onCycle(idleCycle(0, CommitState::Drained));
    a.onCycle(idleCycle(0, CommitState::Drained));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"non-contiguous", "cycle 0"}));
}

TEST(Audit, DetectsIllegalCommitState)
{
    InvariantAuditor a = collector();
    CycleRecord rec = idleCycle(0, static_cast<CommitState>(9));
    a.onCycle(rec);
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"illegal commit state 9",
                                    "cycle 0"}));
}

TEST(Audit, DetectsIllegalPsvBit)
{
    InvariantAuditor a = collector();
    // Bit 12 is beyond the paper's nine architectural events.
    a.onRetire(RetireRecord{1, 5, Psv(std::uint16_t{1u << 12}), 0});
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"illegal PSV bits", "seq 1"}))
        << a.violations().front();
}

TEST(Audit, DetectsNonMonotonicRetireSeq)
{
    InvariantAuditor a = collector();
    a.onRetire(RetireRecord{5, 1, Psv{}, 0});
    a.onRetire(RetireRecord{3, 2, Psv{}, 0});
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"non-monotonic retire seq 3",
                                    "previous 5"}));
}

TEST(Audit, DetectsNonMonotonicDispatchSeq)
{
    InvariantAuditor a = collector();
    a.onDispatch(UopRecord{7, 1, 0});
    a.onDispatch(UopRecord{7, 1, 0});
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"non-monotonic dispatch seq 7"}));
}

TEST(Audit, DetectsCommitBeforeDispatch)
{
    InvariantAuditor a = collector();
    a.onFetch(UopRecord{1, 5, 0});
    a.onDispatch(UopRecord{1, 5, 0});
    // Seq 2 retires without ever dispatching.
    a.onRetire(RetireRecord{2, 6, Psv{}, 0});
    CycleRecord rec;
    rec.cycle = 0;
    rec.state = CommitState::Compute;
    rec.numCommitted = 1;
    rec.committed[0] = CommittedUop{2, 6, Psv{}};
    rec.lastValid = true;
    rec.lastPc = 6;
    a.onCycle(rec);
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"seq 2", "never dispatched"}));
}

TEST(Audit, DetectsRetireCommitMismatch)
{
    InvariantAuditor a = collector();
    // A Compute cycle claims one committed uop, but no retire event was
    // delivered for it: the streams diverged.
    CycleRecord rec;
    rec.cycle = 0;
    rec.state = CommitState::Compute;
    rec.numCommitted = 1;
    rec.committed[0] = CommittedUop{1, 5, Psv{}};
    rec.lastValid = true;
    rec.lastPc = 5;
    a.onCycle(rec);
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"cycle 0", "committed 1 uops",
                                    "0 retire events"}));
}

TEST(Audit, DetectsStalledWithoutHead)
{
    InvariantAuditor a = collector();
    a.onCycle(idleCycle(0, CommitState::Stalled));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"Stalled cycle 0",
                                    "valid ROB head"}));
}

TEST(Audit, DetectsBackwardsRobHead)
{
    InvariantAuditor a = collector();
    CycleRecord s0 = idleCycle(0, CommitState::Stalled);
    s0.headValid = true;
    s0.headSeq = 10;
    s0.headPc = 1;
    a.onCycle(s0);
    CycleRecord s1 = idleCycle(1, CommitState::Stalled);
    s1.headValid = true;
    s1.headSeq = 7; // older than the previous head
    s1.headPc = 1;
    a.onCycle(s1);
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"ROB head moved backwards",
                                    "cycle 1", "seq 7", "seq 10"}));
}

TEST(Audit, DetectsEndMarkerDisagreement)
{
    InvariantAuditor a = collector();
    a.onCycle(idleCycle(0, CommitState::Drained));
    a.onEnd(5); // one cycle record delivered, so the end must carry 1
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"end marker cycle 5"}));
}

TEST(Audit, DetectsEventsAfterEnd)
{
    InvariantAuditor a = collector();
    a.onCycle(idleCycle(0, CommitState::Drained));
    a.onEnd(1);
    a.onCycle(idleCycle(1, CommitState::Drained));
    ASSERT_FALSE(a.clean());
    EXPECT_TRUE(violationNaming(a, {"after the end marker"}));
}

TEST(Audit, CleanOnLiveCoreTrace)
{
    // The real core must satisfy every invariant the auditor enforces —
    // on a workload exercising stalls, flushes and multi-commit cycles.
    InvariantAuditor a = collector();
    CoreRun run = makeCore(workloads::branchNoise(2000));
    run->addSink(&a);
    run->run();
    a.finish();
    EXPECT_TRUE(a.clean()) << a.violations().front();
    EXPECT_EQ(a.cyclesAudited(), run->stats().cycles);
}

TEST(Audit, GoldenConservesCyclesOnLiveTrace)
{
    GoldenReference golden;
    CoreRun run = makeCore(workloads::pointerChase(64, 50, 4096));
    run->addSink(&golden);
    run->run();
    EXPECT_EQ(auditCycleConservation(golden, run->stats().cycles),
              std::string());
    // And the helper reports a broken law with the cycle arithmetic.
    std::string diag =
        auditCycleConservation(golden, run->stats().cycles + 3);
    EXPECT_NE(diag.find("cycle conservation violated"),
              std::string::npos)
        << diag;
}

TEST(Audit, PicsIdentityHelper)
{
    CoreRun a = runCore(workloads::aluLoop(500));
    GoldenReference ga;
    {
        CoreRun run = makeCore(workloads::aluLoop(500));
        run->addSink(&ga);
        run->run();
    }
    GoldenReference gb;
    {
        CoreRun run = makeCore(workloads::streamSum(64, 10));
        run->addSink(&gb);
        run->run();
    }
    EXPECT_EQ(auditPicsIdentical(ga.pics(), ga.pics()), std::string());
    std::string diag = auditPicsIdentical(ga.pics(), gb.pics());
    EXPECT_FALSE(diag.empty());
}

TEST(Audit, AuditedRunnerPassesSerial)
{
    RunnerOptions opts;
    opts.threads = 1;
    opts.audit = 1; // FailFast: a violation aborts the test binary
    ExperimentResult res = runWorkload(workloads::branchNoise(2000),
                                       standardTechniques(), opts);
    EXPECT_GT(res.stats.cycles, 0u);
    ASSERT_NE(res.golden, nullptr);
    EXPECT_EQ(auditCycleConservation(*res.golden, res.stats.cycles),
              std::string());
}

TEST(Audit, AuditedRunnerPassesParallel)
{
    RunnerOptions opts;
    opts.threads = 3;
    opts.audit = 1;
    ExperimentResult res = runWorkload(workloads::mcf(),
                                       standardTechniques(), opts);
    EXPECT_GT(res.stats.cycles, 0u);
    EXPECT_EQ(auditCycleConservation(*res.golden, res.stats.cycles),
              std::string());
}

TEST(Audit, CrossThreadDeterminismCheckPasses)
{
    // Level 2 re-runs the experiment serially and fatals unless every
    // Pics is bit-identical across the two thread counts; returning at
    // all means the determinism contract held.
    RunnerOptions opts;
    opts.threads = 2;
    opts.audit = 2;
    ExperimentResult res = runWorkload(workloads::xz(),
                                       standardTechniques(), opts);
    EXPECT_GT(res.stats.cycles, 0u);
}
