/**
 * @file
 * Unit tests for the ISA layer: opcodes, builder, functional executor,
 * sparse memory, programs/symbols and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "isa/executor.hh"
#include "isa/memory.hh"
#include "isa/opcode.hh"

using namespace tea;

TEST(Opcode, Classification)
{
    EXPECT_EQ(opClass(Op::Add), InstClass::IntAlu);
    EXPECT_EQ(opClass(Op::Mul), InstClass::IntMul);
    EXPECT_EQ(opClass(Op::Div), InstClass::IntDiv);
    EXPECT_EQ(opClass(Op::Fld), InstClass::Load);
    EXPECT_EQ(opClass(Op::Fst), InstClass::Store);
    EXPECT_EQ(opClass(Op::FSqrt), InstClass::FpSqrt);
    EXPECT_EQ(opClass(Op::Beq), InstClass::Branch);
    EXPECT_EQ(opClass(Op::FsFlags), InstClass::Csr);
}

TEST(Opcode, Predicates)
{
    EXPECT_TRUE(isLoad(Op::Ld));
    EXPECT_TRUE(isLoad(Op::Fld));
    EXPECT_FALSE(isLoad(Op::St));
    EXPECT_TRUE(isStore(Op::Fst));
    EXPECT_TRUE(isCondBranch(Op::Blt));
    EXPECT_FALSE(isCondBranch(Op::Jmp));
    EXPECT_TRUE(isControl(Op::Ret));
    EXPECT_TRUE(isAlwaysFlush(Op::FrFlags));
    EXPECT_FALSE(isAlwaysFlush(Op::FSqrt));
}

TEST(SparseMemory, ZeroFill)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1000), 0u);
    EXPECT_EQ(m.populatedPages(), 0u); // reads allocate nothing
}

TEST(SparseMemory, ReadBack)
{
    SparseMemory m;
    m.write(0x2000, 42);
    m.write(0x2000 + pageBytes, 43);
    EXPECT_EQ(m.read(0x2000), 42u);
    EXPECT_EQ(m.read(0x2000 + pageBytes), 43u);
    EXPECT_EQ(m.populatedPages(), 2u);
}

TEST(SparseMemory, DoubleRoundTrip)
{
    SparseMemory m;
    m.writeDouble(0x3000, 3.14159);
    EXPECT_DOUBLE_EQ(m.readDouble(0x3000), 3.14159);
}

TEST(SparseMemory, LineAndPageHelpers)
{
    EXPECT_EQ(lineOf(0x12345), 0x12340u);
    EXPECT_EQ(pageOf(0x12345), 0x12u);
}

TEST(Builder, ForwardLabelPatched)
{
    ProgramBuilder b("t");
    Label end = b.label();
    b.jmp(end);
    b.addi(x(5), x(5), 1); // skipped
    b.bind(end);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.inst(0).target, 2u);
}

TEST(Builder, FunctionSymbols)
{
    ProgramBuilder b("t");
    b.beginFunction("first");
    b.nop();
    b.nop();
    b.endFunction();
    b.beginFunction("second");
    b.halt();
    b.endFunction();
    Program p = b.build();
    ASSERT_EQ(p.functions().size(), 2u);
    EXPECT_EQ(p.functionOf(0), 0);
    EXPECT_EQ(p.functionOf(1), 0);
    EXPECT_EQ(p.functionOf(2), 1);
    EXPECT_EQ(p.functionName(1), "second");
    EXPECT_EQ(p.functionName(-1), "<anon>");
}

TEST(Builder, PcMapping)
{
    ProgramBuilder b("t");
    b.nop();
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.pcOf(1), p.codeBase() + 4);
    EXPECT_EQ(p.indexOf(p.pcOf(1)), 1u);
}

TEST(Executor, AluSemantics)
{
    ProgramBuilder b("t");
    b.li(x(5), 6);
    b.li(x(6), 7);
    b.mul(x(7), x(5), x(6));
    b.sub(x(8), x(7), x(5));
    b.shli(x(9), x(5), 2);
    b.div(x(10), x(7), x(6));
    b.halt();
    Program p = b.build();
    ArchState st;
    InstIndex pc = 0;
    while (true) {
        ExecResult r = execute(p, pc, st);
        if (r.halted)
            break;
        pc = r.nextPc;
    }
    EXPECT_EQ(st.reg(x(7)), 42u);
    EXPECT_EQ(st.reg(x(8)), 36u);
    EXPECT_EQ(st.reg(x(9)), 24u);
    EXPECT_EQ(st.reg(x(10)), 6u);
}

TEST(Executor, X0IsHardwiredZero)
{
    ProgramBuilder b("t");
    b.li(x(0), 99);
    b.add(x(5), x(0), x(0));
    b.halt();
    Program p = b.build();
    ArchState st;
    InstIndex pc = 0;
    while (true) {
        ExecResult r = execute(p, pc, st);
        if (r.halted)
            break;
        pc = r.nextPc;
    }
    EXPECT_EQ(st.reg(x(0)), 0u);
    EXPECT_EQ(st.reg(x(5)), 0u);
}

TEST(Executor, DivByZeroYieldsZero)
{
    ProgramBuilder b("t");
    b.li(x(5), 10);
    b.div(x(6), x(5), x(0));
    b.halt();
    Program p = b.build();
    ArchState st;
    execute(p, 0, st);
    execute(p, 1, st);
    EXPECT_EQ(st.reg(x(6)), 0u);
}

TEST(Executor, LoadsAndStores)
{
    ProgramBuilder b("t");
    b.li(x(5), 0x10000000);
    b.li(x(6), 1234);
    b.st(x(5), 8, x(6));
    b.ld(x(7), x(5), 8);
    b.halt();
    Program p = b.build();
    ArchState st;
    InstIndex pc = 0;
    while (true) {
        ExecResult r = execute(p, pc, st);
        if (r.halted)
            break;
        pc = r.nextPc;
    }
    EXPECT_EQ(st.reg(x(7)), 1234u);
    EXPECT_EQ(st.mem.read(0x10000008), 1234u);
}

TEST(Executor, BranchesFollowCondition)
{
    ProgramBuilder b("t");
    b.li(x(5), 0);
    b.li(x(6), 3);
    Label top = b.here();
    b.addi(x(5), x(5), 1);
    b.blt(x(5), x(6), top);
    b.halt();
    Program p = b.build();
    ArchState st;
    InstIndex pc = 0;
    int executed = 0;
    while (executed < 1000) {
        ExecResult r = execute(p, pc, st);
        ++executed;
        if (r.halted)
            break;
        pc = r.nextPc;
    }
    EXPECT_EQ(st.reg(x(5)), 3u);
}

TEST(Executor, CallAndRet)
{
    ProgramBuilder b("t");
    Label fn = b.label();
    b.call(fn);
    b.halt();
    b.bind(fn);
    b.li(x(5), 7);
    b.ret();
    Program p = b.build();
    ArchState st;
    InstIndex pc = 0;
    while (true) {
        ExecResult r = execute(p, pc, st);
        if (r.halted)
            break;
        pc = r.nextPc;
    }
    EXPECT_EQ(st.reg(x(5)), 7u);
    EXPECT_EQ(st.reg(linkReg), 1u); // return index after the call
}

TEST(Executor, FpSemantics)
{
    ProgramBuilder b("t");
    b.fli(f(1), 2.25);
    b.fsqrt(f(2), f(1));
    b.fmul(f(3), f(2), f(2));
    b.fcmplt(x(5), f(1), f(3));
    b.halt();
    Program p = b.build();
    ArchState st;
    InstIndex pc = 0;
    while (true) {
        ExecResult r = execute(p, pc, st);
        if (r.halted)
            break;
        pc = r.nextPc;
    }
    EXPECT_DOUBLE_EQ(st.fpReg(f(2)), 1.5);
    EXPECT_NEAR(st.fpReg(f(3)), 2.25, 1e-12);
    EXPECT_EQ(st.reg(x(5)), 0u); // 2.25 < 2.25 is false
}

TEST(Executor, NegativeSqrtClampsToZero)
{
    ProgramBuilder b("t");
    b.fli(f(1), -4.0);
    b.fsqrt(f(2), f(1));
    b.halt();
    Program p = b.build();
    ArchState st;
    execute(p, 0, st);
    execute(p, 1, st);
    EXPECT_DOUBLE_EQ(st.fpReg(f(2)), 0.0);
}

TEST(Program, BasicBlocks)
{
    ProgramBuilder b("t");
    b.li(x(5), 0);       // 0: block 0
    Label top = b.here();
    b.addi(x(5), x(5), 1); // 1: block 1 (branch target)
    b.slti(x(6), x(5), 3); // 2
    b.bne(x(6), x(0), top); // 3
    b.halt();              // 4: block 2 (fall-through leader)
    Program p = b.build();
    auto ids = p.basicBlockIds();
    EXPECT_EQ(ids[0], 0u);
    EXPECT_EQ(ids[1], 1u);
    EXPECT_EQ(ids[2], 1u);
    EXPECT_EQ(ids[3], 1u);
    EXPECT_EQ(ids[4], 2u);
}

TEST(Disasm, RendersOperands)
{
    StaticInst ld{Op::Fld, f(2), x(5), noReg, 16};
    EXPECT_EQ(disassemble(ld), "fld f2, 16(x5)");
    StaticInst add{Op::Add, x(3), x(1), x(2)};
    EXPECT_EQ(disassemble(add), "add x3, x1, x2");
    StaticInst st{Op::St, noReg, x(5), x(6), 8};
    EXPECT_EQ(disassemble(st), "st x6, 8(x5)");
    StaticInst csr{Op::FsFlags};
    EXPECT_EQ(disassemble(csr), "fsflags");
}

TEST(Disasm, RegNames)
{
    EXPECT_EQ(regName(x(0)), "x0");
    EXPECT_EQ(regName(f(31)), "f31");
    EXPECT_EQ(regName(noReg), "-");
}
