/**
 * @file
 * Tests for the SPEC-like suite: every benchmark terminates, produces
 * the microarchitectural behaviour its SPEC counterpart is known for
 * (per the paper), and is deterministic.
 */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace tea;
using namespace tea::test;

namespace {

std::uint64_t
ev(const CoreStats &s, Event e)
{
    return s.eventCounts[static_cast<unsigned>(e)];
}

double
stateFrac(const CoreStats &s, CommitState st)
{
    return static_cast<double>(s.stateCycles[static_cast<unsigned>(st)]) /
           static_cast<double>(s.cycles);
}

} // namespace

class SuiteBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteBenchmark, RunsToCompletion)
{
    CoreRun run = runCore(workloads::byName(GetParam()), CoreConfig{},
                          50'000'000);
    EXPECT_TRUE(run->halted());
    EXPECT_GT(run->stats().committedUops, 100'000u);
    EXPECT_GT(run->stats().cycles, 100'000u);
}

TEST_P(SuiteBenchmark, HasFunctionSymbols)
{
    Workload w = workloads::byName(GetParam());
    EXPECT_FALSE(w.program.functions().empty());
    EXPECT_FALSE(w.description.empty());
    // Every instruction is covered by a symbol.
    for (InstIndex i = 0; i < w.program.size(); ++i)
        EXPECT_GE(w.program.functionOf(i), 0) << "instruction " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SuiteBenchmark,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Workloads, LbmIsStallBoundWithLlcMisses)
{
    CoreRun run = runCore(workloads::lbm());
    const CoreStats &s = run->stats();
    EXPECT_GT(stateFrac(s, CommitState::Stalled), 0.5);
    EXPECT_GT(ev(s, Event::StLlc), 40000u);
}

TEST(Workloads, NabIsFlushHeavy)
{
    CoreRun run = runCore(workloads::nab());
    const CoreStats &s = run->stats();
    EXPECT_GT(stateFrac(s, CommitState::Flushed), 0.2);
    EXPECT_GT(ev(s, Event::FlEx), 60000u);
}

TEST(Workloads, NabVariantSpeedupOrdering)
{
    workloads::NabParams p;
    p.iterations = 5000;
    p.variant = workloads::NabVariant::Ieee;
    CoreRun ieee = runCore(workloads::nab(p));
    p.variant = workloads::NabVariant::Finite;
    CoreRun finite = runCore(workloads::nab(p));
    p.variant = workloads::NabVariant::Fast;
    CoreRun fast = runCore(workloads::nab(p));
    EXPECT_GT(ieee->stats().cycles, finite->stats().cycles);
    EXPECT_GT(finite->stats().cycles, fast->stats().cycles);
    // Paper: 1.96x and 2.45x; require the right regime.
    double sp_finite = static_cast<double>(ieee->stats().cycles) /
                       static_cast<double>(finite->stats().cycles);
    double sp_fast = static_cast<double>(ieee->stats().cycles) /
                     static_cast<double>(fast->stats().cycles);
    EXPECT_GT(sp_finite, 1.4);
    EXPECT_LT(sp_finite, 2.5);
    EXPECT_GT(sp_fast, 1.9);
    EXPECT_LT(sp_fast, 3.0);
}

TEST(Workloads, BwavesHasCombinedCacheTlbEvents)
{
    CoreRun run = runCore(workloads::bwaves());
    const CoreStats &s = run->stats();
    EXPECT_GT(ev(s, Event::StTlb), 20000u);
    EXPECT_GT(ev(s, Event::StLlc), 10000u);
    EXPECT_GT(s.uopsWithCombined, 10000u);
}

TEST(Workloads, OmnetppIsLatencyBound)
{
    CoreRun run = runCore(workloads::omnetpp());
    EXPECT_GT(stateFrac(run->stats(), CommitState::Stalled), 0.7);
}

TEST(Workloads, Fotonik3dHasMostlySolitaryMisses)
{
    CoreRun run = runCore(workloads::fotonik3d());
    const CoreStats &s = run->stats();
    EXPECT_GT(ev(s, Event::StL1), 100000u);
    // Solitary: far fewer combined-event uops than event uops.
    EXPECT_LT(s.uopsWithCombined, s.uopsWithEvents / 2);
}

TEST(Workloads, Exchange2IsComputeBoundAndBranchy)
{
    CoreRun run = runCore(workloads::exchange2());
    const CoreStats &s = run->stats();
    EXPECT_GT(s.branchMispredicts, 30000u);
    EXPECT_GT(stateFrac(s, CommitState::Compute), 0.3);
    EXPECT_LT(ev(s, Event::StLlc), s.committedUops / 100);
}

TEST(Workloads, McfProducesOrderingViolations)
{
    CoreRun run = runCore(workloads::mcf());
    EXPECT_GT(run->stats().moViolations, 4u);
    EXPECT_EQ(run->stats().moViolations,
              ev(run->stats(), Event::FlMo));
}

TEST(Workloads, XalancbmkIsFrontEndBound)
{
    CoreRun run = runCore(workloads::xalancbmk());
    const CoreStats &s = run->stats();
    EXPECT_GT(stateFrac(s, CommitState::Drained), 0.4);
    EXPECT_GT(ev(s, Event::DrL1), 50000u);
}

TEST(Workloads, GccThrashesItlbToo)
{
    CoreRun run = runCore(workloads::gcc());
    const CoreStats &s = run->stats();
    EXPECT_GT(ev(s, Event::DrL1), 100000u);
    EXPECT_GT(ev(s, Event::DrTlb), 1000u);
}

TEST(Workloads, CactuBssnHasStoreQueuePressure)
{
    CoreRun run = runCore(workloads::cactuBSSN());
    const CoreStats &s = run->stats();
    EXPECT_GT(ev(s, Event::DrSq), 1000u);
    EXPECT_GT(s.drSqStallCycles, 10000u);
}

TEST(Workloads, XzMixesEventClasses)
{
    CoreRun run = runCore(workloads::xz());
    const CoreStats &s = run->stats();
    EXPECT_GT(s.branchMispredicts, 2000u);
    EXPECT_GT(ev(s, Event::StLlc), 2000u);
    EXPECT_GT(ev(s, Event::FlMo), 0u);
}

TEST(Workloads, LbmPrefetchSweepShape)
{
    // Speedup must grow with distance and saturate (paper Fig 11).
    workloads::LbmParams p;
    p.cells = 6144;
    p.sweeps = 1;
    Cycle prev = 0;
    for (unsigned d : {0u, 2u, 4u}) {
        p.prefetchDistance = d;
        CoreRun run = runCore(workloads::lbm(p));
        if (prev != 0) {
            EXPECT_LT(run->stats().cycles, prev) << "distance " << d;
        }
        prev = run->stats().cycles;
    }
}

TEST(Workloads, ByNameRoundTrips)
{
    for (const std::string &name : workloads::suiteNames()) {
        Workload w = workloads::byName(name);
        EXPECT_EQ(w.program.name().substr(0, 3), name.substr(0, 3));
    }
}
