/**
 * @file
 * Unit tests for the cache tag arrays, MSHRs, TLBs and branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/branch_predictor.hh"
#include "core/cache.hh"
#include "core/tlb.hh"
#include "isa/memory.hh"

using namespace tea;

namespace {

CacheConfig
smallCache()
{
    return CacheConfig{4 * 1024, 4, 4, 2}; // 16 sets x 4 ways
}

} // namespace

TEST(CacheArray, MissThenHit)
{
    CacheArray c(smallCache(), "t");
    EXPECT_FALSE(c.access(0x1000));
    c.insert(0x1000, false);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.accesses, 2u);
    EXPECT_EQ(c.misses, 1u);
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(smallCache(), "t");
    // Fill one set (set stride = numSets * lineBytes).
    Addr stride = c.numSets() * lineBytes;
    for (unsigned i = 0; i < 4; ++i)
        c.insert(i * stride, false);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.access(0));
    Eviction ev = c.insert(4 * stride, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line, stride); // line 1 evicted
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(stride));
}

TEST(CacheArray, DirtyEvictionReported)
{
    CacheArray c(smallCache(), "t");
    Addr stride = c.numSets() * lineBytes;
    c.insert(0, true);
    for (unsigned i = 1; i < 5; ++i) {
        Eviction ev = c.insert(i * stride, false);
        if (ev.valid) {
            EXPECT_EQ(ev.line, 0u);
            EXPECT_TRUE(ev.dirty);
            return;
        }
    }
    FAIL() << "expected an eviction";
}

TEST(CacheArray, MarkDirtyAndInvalidate)
{
    CacheArray c(smallCache(), "t");
    c.insert(0x40, false);
    c.markDirty(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.contains(0x40));
}

TEST(CacheArray, InsertExistingMergesDirty)
{
    CacheArray c(smallCache(), "t");
    c.insert(0x80, false);
    Eviction ev = c.insert(0x80, true); // no eviction, becomes dirty
    EXPECT_FALSE(ev.valid);
    Addr stride = c.numSets() * lineBytes;
    for (unsigned i = 1; i <= 4; ++i) {
        Eviction e2 = c.insert(0x80 + i * stride, false);
        if (e2.valid && e2.line == 0x80) {
            EXPECT_TRUE(e2.dirty);
            return;
        }
    }
    FAIL() << "expected the merged line to be evicted dirty";
}

TEST(Mshr, MergeReturnsFillTime)
{
    MshrFile m(2);
    EXPECT_EQ(m.outstandingFill(0x100, 0), invalidCycle);
    m.allocate(0x100, 50);
    EXPECT_EQ(m.outstandingFill(0x100, 10), 50u);
    EXPECT_EQ(m.inFlight(10), 1u);
}

TEST(Mshr, PruneCompletedFills)
{
    MshrFile m(2);
    m.allocate(0x100, 50);
    EXPECT_EQ(m.outstandingFill(0x100, 60), invalidCycle);
    EXPECT_EQ(m.inFlight(60), 0u);
}

TEST(Mshr, FullDelaysAllocation)
{
    MshrFile m(2);
    m.allocate(0x100, 50);
    m.allocate(0x200, 70);
    EXPECT_EQ(m.allocatableAt(10), 50u); // earliest fill
    EXPECT_EQ(m.allocatableAt(55), 55u); // one entry freed
}

TEST(Tlb, L1HitAfterFill)
{
    TlbConfig cfg;
    L2Tlb l2(cfg.l2Entries);
    TlbHierarchy tlb(cfg, l2, "t");
    TlbResult first = tlb.translate(0x5000);
    EXPECT_TRUE(first.l1Miss);
    EXPECT_EQ(first.extraLatency, cfg.walkLatency);
    TlbResult second = tlb.translate(0x5008); // same page
    EXPECT_FALSE(second.l1Miss);
    EXPECT_EQ(second.extraLatency, 0u);
}

TEST(Tlb, L2HitIsCheaperThanWalk)
{
    TlbConfig cfg;
    cfg.l1Entries = 2;
    L2Tlb l2(cfg.l2Entries);
    TlbHierarchy tlb(cfg, l2, "t");
    tlb.translate(10 * pageBytes);
    tlb.translate(11 * pageBytes);
    tlb.translate(12 * pageBytes); // evicts the first from the L1
    TlbResult again = tlb.translate(10 * pageBytes);
    EXPECT_TRUE(again.l1Miss);
    EXPECT_EQ(again.extraLatency, cfg.l2HitLatency);
}

TEST(Tlb, L2DirectMappedConflicts)
{
    TlbConfig cfg;
    cfg.l1Entries = 1;
    L2Tlb l2(4);
    TlbHierarchy tlb(cfg, l2, "t");
    Addr a = 0;
    Addr b = 4 * pageBytes; // same L2 slot (4-entry direct-mapped)
    tlb.translate(a);
    tlb.translate(b);
    TlbResult r = tlb.translate(a);
    EXPECT_EQ(r.extraLatency, cfg.walkLatency); // L2 entry clobbered
}

class PredictorKinds
    : public ::testing::TestWithParam<PredictorKind>
{
  protected:
    std::unique_ptr<BranchPredictor>
    make() const
    {
        CoreConfig cfg;
        cfg.predictor = GetParam();
        return makePredictor(cfg);
    }
};

TEST_P(PredictorKinds, LearnsBiasedBranch)
{
    auto bp = make();
    // Train past history saturation so the steady-state index is the
    // one consulted at the next prediction.
    for (int i = 0; i < 60; ++i)
        bp->update(100, true);
    EXPECT_TRUE(bp->predict(100));
}

TEST_P(PredictorKinds, LearnsAlternatingWithHistory)
{
    auto bp = make();
    // Period-2 pattern: global history disambiguates it.
    std::uint64_t wrong = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = (i & 1) != 0;
        if (bp->predict(7) != taken && i > 1000)
            ++wrong;
        bp->update(7, taken);
    }
    EXPECT_LT(wrong, 30u);
}

TEST_P(PredictorKinds, CountsMispredicts)
{
    auto bp = make();
    bp->update(5, true); // initial counters predict not-taken
    EXPECT_EQ(bp->mispredicts, 1u);
    EXPECT_EQ(bp->lookups, 1u);
}

TEST_P(PredictorKinds, RandomBranchesStayUnpredictable)
{
    auto bp = make();
    Rng rng(5);
    std::uint64_t wrong = 0;
    constexpr int n = 8000;
    for (int i = 0; i < n; ++i) {
        bool taken = rng.chance(0.5);
        if (bp->predict(9) != taken)
            ++wrong;
        bp->update(9, taken);
    }
    // No predictor beats a fair coin by much.
    EXPECT_GT(wrong, n / 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Both, PredictorKinds,
    ::testing::Values(PredictorKind::Tage, PredictorKind::Gshare),
    [](const ::testing::TestParamInfo<PredictorKind> &info) {
        return info.param == PredictorKind::Tage ? "tage" : "gshare";
    });

TEST(Tage, BeatsGshareOnLongPatterns)
{
    // A period-24 pattern exceeds gshare's useful reach at this table
    // size but fits TAGE's longer history components.
    auto run = [](PredictorKind kind) {
        CoreConfig cfg;
        cfg.predictor = kind;
        auto bp = makePredictor(cfg);
        std::uint64_t wrong = 0;
        for (int i = 0; i < 30000; ++i) {
            bool taken = (i % 24) < 7;
            if (bp->predict(33) != taken && i > 10000)
                ++wrong;
            bp->update(33, taken);
        }
        return wrong;
    };
    std::uint64_t tage_wrong = run(PredictorKind::Tage);
    std::uint64_t gshare_wrong = run(PredictorKind::Gshare);
    EXPECT_LT(tage_wrong, 200u);
    EXPECT_LT(tage_wrong * 2, gshare_wrong + 1);
}

TEST(Tage, StorageBudgetNearTable2)
{
    CoreConfig cfg;
    TagePredictor tage(cfg);
    double kb = static_cast<double>(tage.storageBits()) / 8.0 / 1024.0;
    EXPECT_GT(kb, 15.0);
    EXPECT_LT(kb, 32.0); // Table 2: 28 KB TAGE class
}
