/**
 * @file
 * Property-style tests (parameterized sweeps) over the core invariants:
 * golden coverage, error-metric laws, sampling convergence and
 * functional correctness across configuration and workload sweeps.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "profilers/golden.hh"
#include "profilers/sampler.hh"
#include "test_util.hh"

using namespace tea;
using namespace tea::test;

// --- golden coverage across workloads --------------------------------

class GoldenCoverage : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenCoverage, EveryCycleAttributed)
{
    CoreRun run = makeCore(workloads::byName(GetParam()));
    GoldenReference golden;
    run->addSink(&golden);
    run->run();
    double covered = golden.pics().total() + golden.droppedCycles();
    // 1/n compute splits accumulate tiny FP rounding.
    EXPECT_NEAR(covered, static_cast<double>(run->stats().cycles), 1.0);
    EXPECT_LT(golden.droppedCycles(), 32.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GoldenCoverage,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// --- functional correctness across core configurations ----------------

struct ConfigCase
{
    const char *name;
    unsigned rob;
    unsigned fetch_buffer;
    unsigned sq;
    unsigned mem_iq;
};

class ConfigSweep : public ::testing::TestWithParam<ConfigCase>
{
};

TEST_P(ConfigSweep, TimingNeverChangesArchitecturalState)
{
    const ConfigCase &c = GetParam();
    CoreConfig cfg;
    cfg.robEntries = c.rob;
    cfg.fetchBufferEntries = c.fetch_buffer;
    cfg.sqEntries = c.sq;
    cfg.memIqEntries = c.mem_iq;

    Workload w = workloads::xz();
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w), cfg);
    EXPECT_TRUE(run->halted());
    for (unsigned r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(run->archState().regs[r], oracle.regs[r])
            << c.name << " reg " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigSweep,
    ::testing::Values(ConfigCase{"baseline", 192, 48, 24, 48},
                      ConfigCase{"tiny_rob", 16, 48, 24, 48},
                      ConfigCase{"tiny_fb", 192, 8, 24, 48},
                      ConfigCase{"tiny_sq", 192, 48, 4, 48},
                      ConfigCase{"tiny_iq", 192, 48, 24, 4},
                      ConfigCase{"narrow", 64, 16, 8, 16}),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        return info.param.name;
    });

// --- sampling-period properties ---------------------------------------

class PeriodSweep : public ::testing::TestWithParam<Cycle>
{
};

TEST_P(PeriodSweep, SampleBudgetAndWeights)
{
    Cycle period = GetParam();
    CoreRun run = makeCore(workloads::byName("exchange2"));
    TechniqueSampler tea{teaConfig(period)};
    TechniqueSampler ibs{ibsConfig(period)};
    run->addSink(&tea);
    run->addSink(&ibs);
    run->run();

    Cycle cycles = run->stats().cycles;
    std::uint64_t fired = (cycles + period - 1) / period;
    // Every fired sample is taken, dropped, or still pending at the end
    // (pending-at-end is folded into exactly one dropped count).
    EXPECT_LE(tea.samplesTaken(), fired);
    EXPECT_LE(ibs.samplesTaken() + ibs.samplesDropped(), fired);
    // Attributed cycles never exceed the sample budget.
    EXPECT_LE(tea.pics().total(),
              static_cast<double>(fired) * static_cast<double>(period) +
                  1e-6);
}

TEST_P(PeriodSweep, TeaStaysTimeProportional)
{
    Cycle period = GetParam();
    CoreRun run = makeCore(workloads::byName("fotonik3d"));
    GoldenReference golden;
    TechniqueSampler tea{teaConfig(period)};
    run->addSink(&golden);
    run->addSink(&tea);
    run->run();
    double err = tea.pics().errorAgainst(golden.pics());
    // Even at the coarsest period the time-proportional policy keeps
    // the error far below the front-end taggers' bias (>40%).
    EXPECT_LT(err, 0.30) << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweep,
                         ::testing::Values<Cycle>(31, 127, 509, 2048));

// --- error-metric laws over randomized stacks --------------------------

class ErrorMetricLaws : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ErrorMetricLaws, BoundsIdentityAndMaskingMonotonicity)
{
    Rng rng(GetParam());
    Pics golden;
    Pics sampled;
    for (int i = 0; i < 200; ++i) {
        auto pc = static_cast<InstIndex>(rng.below(40));
        Psv sig(static_cast<std::uint16_t>(rng.below(512)));
        golden.add(pc, sig, 1.0 + static_cast<double>(rng.below(100)));
        if (rng.chance(0.8)) {
            sampled.add(pc, sig,
                        1.0 + static_cast<double>(rng.below(100)));
        }
    }
    // Identity.
    EXPECT_NEAR(golden.errorAgainst(golden), 0.0, 1e-12);
    // Bounds.
    double e = sampled.errorAgainst(golden);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    // Projecting BOTH stacks to a coarser event set merges components
    // and can only reduce (or keep) the error.
    std::uint16_t mask = speEventSet().mask;
    double masked_e = sampled.masked(mask).errorAgainst(
        golden.masked(mask));
    EXPECT_LE(masked_e, e + 1e-9);
    // Totals are preserved by masking.
    EXPECT_NEAR(golden.masked(mask).total(), golden.total(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorMetricLaws,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8,
                                                          13, 21, 34));

// --- microkernel functional sweep --------------------------------------

class ChaseSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>>
{
};

TEST_P(ChaseSweep, FunctionalAndTerminates)
{
    auto [nodes, spacing] = GetParam();
    Workload w = workloads::pointerChase(nodes, 2, spacing);
    ArchState oracle = runFunctional(w.program, w.initial);
    CoreRun run = runCore(std::move(w));
    EXPECT_TRUE(run->halted());
    EXPECT_EQ(run->archState().regs[x(5)], oracle.regs[x(5)]);
    EXPECT_EQ(run->stats().committedUops,
              static_cast<std::uint64_t>(nodes) * 2 * 3 + 4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChaseSweep,
    ::testing::Combine(::testing::Values(16u, 256u, 1024u),
                       ::testing::Values<std::uint64_t>(64, 320, 4160)));
