/**
 * @file
 * Differential tests of the SIMD varint kernels and the batched decode
 * path. The codec contract (core/varint.hh) is that every kernel is
 * bit-identical to the reference scalar loop on *any* input bytes —
 * including adversarial ones — so these tests fuzz randomized streams
 * (continuation-bit runs, max-width varints, truncated tails,
 * misaligned buffers, block-boundary straddles) through every kernel
 * the host supports and require identical verdicts and values. On top
 * of the raw kernels, whole chunk frames with extreme delta patterns
 * must round-trip identically under every kernel, and a warm
 * trace-cache replay must produce bit-identical Pics at any
 * TEA_DECODE_THREADS / TEA_BATCH_FRAMES setting.
 *
 * Runs under the asan-ubsan preset (label: sanitize), which is what
 * turns the SIMD kernels' speculative-store bounds into hard failures.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "analysis/runner.hh"
#include "common/rng.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"
#include "core/varint.hh"
#include "profilers/golden.hh"
#include "profilers/pics.hh"
#include "workloads/workload.hh"

using namespace tea;

namespace {

/** Restore the process-wide varint kernel on scope exit. */
struct KernelGuard
{
    VarintKernel prev;
    KernelGuard() : prev(activeVarintKernel()) {}
    ~KernelGuard() { setVarintKernel(prev); }
};

/** Every kernel this host can execute, scalar first. */
std::vector<VarintKernel>
supportedKernels()
{
    std::vector<VarintKernel> ks{VarintKernel::Scalar};
    if (varintKernelSupported(VarintKernel::Sse2))
        ks.push_back(VarintKernel::Sse2);
    if (varintKernelSupported(VarintKernel::Avx2))
        ks.push_back(VarintKernel::Avx2);
    return ks;
}

bool
runKernel(VarintKernel k, const std::uint8_t *p, std::size_t len,
          std::uint64_t *out, std::size_t *count)
{
    switch (k) {
      case VarintKernel::Scalar:
        return decodeVarintsScalar(p, len, out, count);
      case VarintKernel::Sse2:
        return decodeVarintsSse2(p, len, out, count);
      case VarintKernel::Avx2:
        return decodeVarintsAvx2(p, len, out, count);
    }
    return false;
}

/**
 * Decode @p bytes with every supported kernel and require the same
 * verdict as the scalar reference — and, on acceptance, the same count
 * and the same values. The poison fill makes a kernel that reports n
 * values but wrote fewer fail the comparison.
 */
void
expectKernelsAgree(const std::vector<std::uint8_t> &bytes)
{
    const std::size_t room = bytes.size() + 1; // len values max; +1 for n=0
    std::vector<std::uint64_t> ref(room, 0xabad1deacafeull);
    std::size_t refCount = 0;
    const bool refOk =
        decodeVarintsScalar(bytes.data(), bytes.size(), ref.data(),
                            &refCount);

    for (VarintKernel k : supportedKernels()) {
        if (k == VarintKernel::Scalar)
            continue;
        SCOPED_TRACE(varintKernelName(k));
        std::vector<std::uint64_t> out(room, 0xabad1deacafeull);
        std::size_t count = 0;
        const bool ok =
            runKernel(k, bytes.data(), bytes.size(), out.data(), &count);
        ASSERT_EQ(ok, refOk);
        if (!refOk)
            continue; // rejected streams leave out/count unspecified
        ASSERT_EQ(count, refCount);
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(out[i], ref[i]) << "value " << i;
    }
}

/** Canonical LEB128 append of @p v. */
void
appendVarint(std::vector<std::uint8_t> &bytes, std::uint64_t v)
{
    while (v >= 0x80) {
        bytes.push_back(static_cast<std::uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    bytes.push_back(static_cast<std::uint8_t>(v));
}

/** Remove every regular file in @p dir, then the directory itself. */
void
removeTree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

struct TempCacheDir
{
    std::string path;
    TempCacheDir()
    {
        char tmpl[] = "/tmp/tea-simd-codec-test-XXXXXX";
        const char *d = ::mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path = d ? d : "";
    }
    ~TempCacheDir()
    {
        if (!path.empty())
            removeTree(path);
    }
};

/** Assert two Pics are bit-identical (exact doubles, same cells). */
void
expectPicsIdentical(const Pics &a, const Pics &b)
{
    EXPECT_EQ(a.total(), b.total());
    auto sorted = [](const Pics &p) {
        std::vector<PicsComponent> cs = p.components();
        std::sort(cs.begin(), cs.end(),
                  [](const PicsComponent &x, const PicsComponent &y) {
                      return x.unit != y.unit ? x.unit < y.unit
                                              : x.signature < y.signature;
                  });
        return cs;
    };
    std::vector<PicsComponent> ca = sorted(a);
    std::vector<PicsComponent> cb = sorted(b);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].unit, cb[i].unit);
        EXPECT_EQ(ca[i].signature, cb[i].signature);
        EXPECT_EQ(ca[i].cycles, cb[i].cycles);
    }
}

void
expectExperimentsIdentical(const ExperimentResult &ref,
                           const ExperimentResult &got)
{
    EXPECT_EQ(ref.stats.cycles, got.stats.cycles);
    expectPicsIdentical(ref.golden->pics(), got.golden->pics());
    ASSERT_EQ(ref.techniques.size(), got.techniques.size());
    for (std::size_t i = 0; i < ref.techniques.size(); ++i) {
        SCOPED_TRACE(ref.techniques[i].config.name);
        EXPECT_EQ(ref.techniques[i].samplesTaken,
                  got.techniques[i].samplesTaken);
        expectPicsIdentical(ref.techniques[i].pics,
                            got.techniques[i].pics);
    }
}

} // namespace

TEST(SimdVarint, RandomBytesAgreeAcrossKernels)
{
    // Purely random bytes: mostly malformed streams (truncation inside
    // a varint, continuation past 64 bits); every kernel must reach the
    // same verdict, and the same values when a stream happens to parse.
    Rng rng(0x51);
    for (unsigned round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> bytes(rng.below(200));
        for (std::uint8_t &b : bytes)
            b = static_cast<std::uint8_t>(rng.next());
        expectKernelsAgree(bytes);
    }
}

TEST(SimdVarint, ContinuationRunsAndTruncatedTails)
{
    // Runs of 0x80 continuation bytes of every interesting length
    // (crossing 7-bit group boundaries, the 64-bit overflow point, and
    // the SIMD block widths), terminated or truncated at the end.
    Rng rng(0x52);
    for (unsigned round = 0; round < 400; ++round) {
        std::vector<std::uint8_t> bytes;
        const unsigned pieces = 1 + rng.below(20);
        for (unsigned p = 0; p < pieces; ++p) {
            const unsigned contRun = rng.below(13); // up to 12 > max valid
            for (unsigned i = 0; i < contRun; ++i)
                bytes.push_back(0x80u |
                                static_cast<std::uint8_t>(rng.below(128)));
            bytes.push_back(static_cast<std::uint8_t>(rng.below(128)));
        }
        if (rng.chance(0.3) && !bytes.empty())
            bytes.pop_back(); // truncate inside the final varint
        expectKernelsAgree(bytes);
    }
}

TEST(SimdVarint, MaxWidthValues)
{
    // Canonical encodings of the widest values (10 bytes for ~0ull),
    // mixed with single-byte values so wide varints land at arbitrary
    // positions inside the 16/32-byte SIMD blocks.
    Rng rng(0x53);
    for (unsigned round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> bytes;
        const unsigned n = 1 + rng.below(100);
        for (unsigned i = 0; i < n; ++i) {
            switch (rng.below(4)) {
              case 0:
                appendVarint(bytes, ~0ull - rng.below(3));
                break;
              case 1:
                appendVarint(bytes, 1ull << (rng.below(64)));
                break;
              case 2:
                appendVarint(bytes, rng.below(1u << 21));
                break;
              default:
                appendVarint(bytes, rng.below(128));
                break;
            }
        }
        expectKernelsAgree(bytes);
    }
}

TEST(SimdVarint, BlockBoundaryStraddles)
{
    // A multi-byte varint placed at every offset in [0, 40): straddles
    // every position relative to the 16-byte (SSE2) and 32-byte (AVX2)
    // block loads, including the block's last byte.
    for (unsigned width = 2; width <= 10; ++width) {
        for (unsigned off = 0; off < 40; ++off) {
            std::vector<std::uint8_t> bytes(off, 0x01);
            for (unsigned i = 0; i + 1 < width; ++i)
                bytes.push_back(0x80u | static_cast<std::uint8_t>(i + 1));
            bytes.push_back(0x03);
            for (unsigned i = 0; i < 40; ++i)
                bytes.push_back(0x02);
            expectKernelsAgree(bytes);
        }
    }
}

TEST(SimdVarint, MisalignedBuffers)
{
    // The mmap path hands the kernels pointers at arbitrary alignment
    // (frame payloads start wherever the previous frame ended). Shift
    // the same stream to different (mis)alignments and require
    // identical results at each.
    Rng rng(0x54);
    std::vector<std::uint8_t> stream;
    for (unsigned i = 0; i < 500; ++i) {
        if (rng.chance(0.15))
            appendVarint(stream, rng.next());
        else
            appendVarint(stream, rng.below(128));
    }
    for (std::size_t off : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                            std::size_t{13}}) {
        SCOPED_TRACE(off);
        // Heap-allocate so ASan guards the edges of the shifted copy.
        std::vector<std::uint8_t> shifted(off + stream.size());
        std::memcpy(shifted.data() + off, stream.data(), stream.size());
        std::size_t refCount = 0;
        std::vector<std::uint64_t> ref(stream.size() + 1);
        ASSERT_TRUE(decodeVarintsScalar(shifted.data() + off,
                                        stream.size(), ref.data(),
                                        &refCount));
        for (VarintKernel k : supportedKernels()) {
            SCOPED_TRACE(varintKernelName(k));
            std::vector<std::uint64_t> out(stream.size() + 1);
            std::size_t count = 0;
            ASSERT_TRUE(runKernel(k, shifted.data() + off, stream.size(),
                                  out.data(), &count));
            ASSERT_EQ(count, refCount);
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(out[i], ref[i]);
        }
    }
}

namespace {

/**
 * A structurally valid chunk whose field values are chosen to make the
 * codec's delta streams pathological: cycles and sequence numbers jump
 * between tiny and near-2^64 values, so the zigzag deltas exercise
 * every varint width up to the 10-byte maximum, back to back.
 */
TraceChunk
extremeChunk(Rng &rng, std::size_t count)
{
    TraceChunk c;
    c.events.reserve(count);
    Cycle cycle = 0;
    SeqNum seq = 1;
    bool swing = false;
    auto wildPc = [&]() {
        return static_cast<InstIndex>(
            swing ? 0xfffffff0u - rng.below(8) : rng.below(64));
    };
    for (std::size_t i = 0; i < count; ++i) {
        swing = !swing;
        cycle += swing ? (0x7fffffffffffffull + rng.below(1024)) : 1;
        seq += swing ? (0x3fffffffffffffull + rng.below(1024)) : 1;
        TraceEvent ev;
        switch (rng.below(5)) {
          case 0: {
            ev.kind = TraceEventKind::Cycle;
            ev.p.cycle = CycleRecord{};
            CycleRecord &r = ev.p.cycle;
            r.cycle = cycle;
            r.state = static_cast<CommitState>(rng.below(4));
            r.numCommitted =
                r.state == CommitState::Compute
                    ? static_cast<std::uint8_t>(rng.range(1, 8))
                    : 0;
            for (unsigned u = 0; u < r.numCommitted; ++u) {
                r.committed[u].seq = seq += 0x1fffffffffffull;
                r.committed[u].pc = wildPc();
                r.committed[u].psv =
                    Psv(static_cast<std::uint16_t>(rng.below(512)));
            }
            r.headValid = r.state == CommitState::Stalled;
            if (r.headValid) {
                r.headSeq = seq + 0x7ffffffffull;
                r.headPc = wildPc();
            }
            r.lastValid = rng.chance(0.9);
            if (r.lastValid) {
                r.lastPc = wildPc();
                r.lastPsv =
                    Psv(static_cast<std::uint16_t>(rng.below(512)));
            }
            break;
          }
          case 1:
            ev.kind = TraceEventKind::Dispatch;
            ev.p.uop = UopRecord{seq, wildPc(), cycle};
            break;
          case 2:
            ev.kind = TraceEventKind::Fetch;
            ev.p.uop = UopRecord{seq, wildPc(), cycle};
            break;
          case 3:
            ev.kind = TraceEventKind::Retire;
            ev.p.retire = RetireRecord{
                seq, wildPc(),
                Psv(static_cast<std::uint16_t>(rng.below(512))), cycle};
            break;
          default:
            ev.kind = TraceEventKind::End;
            ev.p.end = cycle;
            break;
        }
        if (ev.kind == TraceEventKind::Cycle)
            ++c.cycleRecords;
        c.events.push_back(ev);
    }
    return c;
}

} // namespace

TEST(SimdCodec, ExtremeDeltaChunksRoundTripUnderEveryKernel)
{
    KernelGuard guard;
    Rng rng(0xdec0de);
    for (unsigned round = 0; round < 10; ++round) {
        TraceChunk chunk = extremeChunk(rng, 64 + rng.below(512));
        std::vector<std::uint8_t> frame;
        encodeChunk(chunk, frame);

        for (VarintKernel k : supportedKernels()) {
            SCOPED_TRACE(varintKernelName(k));
            setVarintKernel(k);
            ChunkDecoder decoder;
            TraceChunk back;
            std::size_t consumed = 0;
            std::string why;
            ASSERT_TRUE(decoder.decode(frame.data(), frame.size(), back,
                                       &consumed, &why))
                << why;
            EXPECT_EQ(consumed, frame.size());
            EXPECT_EQ(back.cycleRecords, chunk.cycleRecords);
            ASSERT_EQ(back.events.size(), chunk.events.size());
            for (std::size_t i = 0; i < chunk.events.size(); ++i)
                ASSERT_TRUE(
                    eventsEquivalent(chunk.events[i], back.events[i]))
                    << "event " << i;
        }
    }
}

TEST(SimdCodec, MultiFrameStreamsDecodeIdenticallyAtAnyOffset)
{
    // Several frames concatenated (delta state must reset per frame),
    // the whole stream then shifted to misaligned offsets like an
    // arbitrary position inside an mmap'd cache file.
    KernelGuard guard;
    Rng rng(0xf8a);
    std::vector<TraceChunk> chunks;
    std::vector<std::uint8_t> stream;
    for (unsigned f = 0; f < 6; ++f) {
        chunks.push_back(extremeChunk(rng, 32 + rng.below(160)));
        encodeChunk(chunks.back(), stream);
    }

    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{5}}) {
        std::vector<std::uint8_t> shifted(off + stream.size());
        std::memcpy(shifted.data() + off, stream.data(), stream.size());
        for (VarintKernel k : supportedKernels()) {
            SCOPED_TRACE(varintKernelName(k));
            setVarintKernel(k);
            ChunkDecoder decoder;
            std::size_t at = off;
            for (const TraceChunk &want : chunks) {
                TraceChunk back;
                std::size_t consumed = 0;
                std::string why;
                ASSERT_TRUE(decoder.decode(shifted.data() + at,
                                           shifted.size() - at, back,
                                           &consumed, &why))
                    << why;
                at += consumed;
                ASSERT_EQ(back.events.size(), want.events.size());
                for (std::size_t i = 0; i < want.events.size(); ++i)
                    ASSERT_TRUE(eventsEquivalent(want.events[i],
                                                 back.events[i]))
                        << "event " << i;
            }
            EXPECT_EQ(at, off + stream.size());
        }
    }
}

TEST(SimdReplay, WarmReplayBitIdenticalAcrossDecodeThreads)
{
    // The parallel frame pump must hand chunks to the observers in file
    // order regardless of decode-thread count or decode-ahead window,
    // so every warm configuration reproduces the cold run exactly.
    TempCacheDir dir;
    RunnerOptions opts;
    opts.threads = 1;
    opts.chunkEvents = 256; // many small frames: real pump contention
    opts.cache.enabled = true;
    opts.cache.dir = dir.path;

    auto run = [&](unsigned decode_threads, std::size_t batch_frames) {
        RunnerOptions o = opts;
        o.decodeThreads = decode_threads;
        o.batchFrames = batch_frames;
        return runWorkload(workloads::aluLoop(3000), standardTechniques(),
                           o);
    };

    ExperimentResult cold = run(1, 4);
    ASSERT_FALSE(cold.replay.cacheHit);

    ExperimentResult serial = run(1, 4);
    ASSERT_TRUE(serial.replay.cacheHit);
    expectExperimentsIdentical(cold, serial);

    for (const auto &[threads, frames] :
         {std::pair<unsigned, std::size_t>{1, 1},
          std::pair<unsigned, std::size_t>{1, 8},
          std::pair<unsigned, std::size_t>{2, 1},
          std::pair<unsigned, std::size_t>{3, 2},
          std::pair<unsigned, std::size_t>{4, 8}}) {
        SCOPED_TRACE(::testing::Message()
                     << threads << " threads, " << frames << " frames");
        ExperimentResult warm = run(threads, frames);
        ASSERT_TRUE(warm.replay.cacheHit);
        // The split-seconds contract: a warm hit spends no simulate
        // time, and decode time is accounted separately from replay.
        EXPECT_EQ(warm.replay.simulateSeconds, 0.0);
        EXPECT_GT(warm.replay.decodeSeconds, 0.0);
        expectExperimentsIdentical(cold, warm);
    }
}

TEST(SimdReplay, DecodeKnobsComeFromEnvironment)
{
    ::setenv("TEA_DECODE_THREADS", "3", 1);
    ::setenv("TEA_BATCH_FRAMES", "7", 1);
    RunnerOptions opts = RunnerOptions::fromEnv();
    ::unsetenv("TEA_DECODE_THREADS");
    ::unsetenv("TEA_BATCH_FRAMES");
    EXPECT_EQ(opts.decodeThreads, 3u);
    EXPECT_EQ(opts.batchFrames, 7u);

    RunnerOptions defaults = RunnerOptions::fromEnv();
    EXPECT_EQ(defaults.decodeThreads, 1u);
    EXPECT_EQ(defaults.batchFrames, 4u);
}
