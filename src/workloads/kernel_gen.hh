/**
 * @file
 * Parameterized bottleneck-kernel generator (Scarab-style synthetic
 * frontend): a KernelSpec names the microarchitectural bottleneck mix a
 * scenario should exhibit — memory-level targeting via footprint and
 * stride, taken-ratio-swept conditional branches, dependence-chain ILP
 * knobs, and target-pool front-end stress — and expands
 * deterministically to a Workload. The same spec always produces the
 * bit-identical instruction stream and initial state, so generated
 * kernels fingerprint, cache and replay exactly like the hand-written
 * suite, while covering the scenario space the fixed 15 kernels cannot.
 *
 * Specs round-trip through canonical names (`kgen/v1:...`), which makes
 * every generated kernel addressable by workloads::byName() and usable
 * anywhere a suite benchmark name is accepted (runBenchmarkSuite, trace
 * cache keys, sweep experiment lists).
 */

#ifndef TEA_WORKLOADS_KERNEL_GEN_HH
#define TEA_WORKLOADS_KERNEL_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace tea {

class CoreConfig;

namespace workloads {

/**
 * Generator layout version: bump whenever a change makes any existing
 * KernelSpec expand to a different instruction stream or initial state
 * (same contract as traceCodecVersion — golden expansion tests pin it).
 */
inline constexpr unsigned kernelGenVersion = 1;

/**
 * Memory level a kernel's loads are meant to bottom out in, à la
 * Scarab's Limit_Load_To. Our hierarchy is two-level (L1D + LLC), so
 * Scarab's MLC level collapses into Llc; Mem targets DRAM.
 */
enum class MemLevel : std::uint8_t
{
    None = 0, ///< no memory phase
    L1D = 1,  ///< footprint resident in the L1 data cache
    Llc = 2,  ///< misses L1, hits the LLC in steady state
    Mem = 3,  ///< distinct-line footprint beyond the LLC: DRAM-bound
};

/** Short level name: "none", "L1D", "LLC", "MEM". */
const char *memLevelName(MemLevel level);

/** Parse a memLevelName() string (fatal on unknown). */
MemLevel memLevelByName(const std::string &name);

/**
 * One bottleneck-kernel phase. Every enabled feature contributes its
 * instructions to the phase's loop body, so a single spec can blend
 * behaviours (e.g. LLC-level loads + unpredictable branches); a
 * multi-phase kernel (generateMixedKernel) runs several specs'
 * loops back-to-back over disjoint heap regions.
 *
 * All fields are integers so canonical names round-trip exactly and
 * expansion is bit-reproducible across platforms.
 */
struct KernelSpec
{
    /** Seed for the chase permutation and the branch-direction LCG. */
    std::uint64_t seed = 1;

    /** Loop iterations of this phase. */
    unsigned iterations = 2000;

    // --- memory phase (level != None) --------------------------------
    /** Level the loads should bottom out in. */
    MemLevel level = MemLevel::None;
    /**
     * Bytes of heap the loads walk (rounded up to a power of two;
     * 0 = defaultFootprintFor(level)). Distinct lines touched =
     * footprint / stride.
     */
    std::uint64_t footprintBytes = 0;
    /** Bytes between consecutively touched addresses (multiple of 8). */
    std::uint64_t strideBytes = 64;
    /**
     * true: loads form a dependent pointer chase over a seed-permuted
     * ring (latency-bound, prefetch-defeating — Scarab's
     * DEPENDENCE_CHAIN); false: independent strided loads (MLP /
     * bandwidth-bound — NO_DEPENDENCE_CHAIN).
     */
    bool dependent = true;
    /** Loads emitted per loop iteration. */
    unsigned loadsPerIteration = 2;

    // --- conditional-branch phase (branchesPerIteration > 0) ---------
    /** Data-dependent conditional branches per iteration. */
    unsigned branchesPerIteration = 0;
    /**
     * Requested taken ratio in permille (0..1000). Directions come from
     * a register-resident LCG, so the realized ratio converges to this
     * and the branches stay unpredictable (mispredict rate ~min(t,1-t)).
     */
    unsigned takenPermille = 500;

    // --- ILP phase (chainLength > 0) ----------------------------------
    /** ALU ops per dependence chain per iteration (serial latency). */
    unsigned chainLength = 0;
    /** Independent chains interleaved (the ILP the backend can mine). */
    unsigned chains = 1;

    // --- front-end stress phase (targetPool > 0) ----------------------
    /**
     * Calls per iteration through a pool of this many distinct
     * functions (~16 instructions each). Targets are statically
     * predicted in our model, so the pool stresses the I-cache and
     * I-TLB footprint (DR-L1 / DR-TLB) rather than a BTB.
     */
    unsigned targetPool = 0;

    bool operator==(const KernelSpec &) const = default;
};

/**
 * Default footprint for a level under @p cfg's cache sizes: half the
 * L1D for L1D, a quarter of the LLC (clear of both edges) for Llc, and
 * 1.5x the LLC's *line capacity* times the stride for Mem, so the
 * distinct-line working set exceeds the LLC no matter the stride.
 */
std::uint64_t defaultFootprintFor(MemLevel level, std::uint64_t stride,
                                  const CoreConfig &cfg);

/** The spec with footprintBytes resolved (and rounded to a power of 2). */
KernelSpec resolvedSpec(const KernelSpec &spec, const CoreConfig &cfg);

/**
 * Canonical, parseable name encoding every field of @p spec
 * (`kgen/v1:seed=..:it=..:...`). Stable across runs and platforms;
 * workloads::byName() resolves these names via parseKernelName().
 */
std::string canonicalKernelName(const KernelSpec &spec);

/** True when @p name looks like a canonicalKernelName(). */
bool isGeneratedKernelName(const std::string &name);

/** Inverse of canonicalKernelName (fatal on malformed/unknown names). */
KernelSpec parseKernelName(const std::string &name);

/**
 * Content fingerprint of a spec (kernelGenVersion + every field):
 * stable identity for golden expansion tests and sweep manifests.
 */
std::uint64_t kernelSpecFingerprint(const KernelSpec &spec);

/**
 * Deterministically expand @p spec into a runnable Workload. The
 * program is named canonicalKernelName(spec); register x28 (count of
 * swept branches that fell through) is architecturally observable so
 * property tests can audit the realized taken ratio with the
 * functional executor.
 */
Workload generateKernel(const KernelSpec &spec);

/**
 * Multi-phase kernel: each spec's loop runs to completion in order,
 * over a disjoint heap region per phase. @p name is the program name
 * (phases are not encoded in it — mixed kernels are addressed by
 * content fingerprint, not by byName()).
 */
Workload generateMixedKernel(const std::string &name,
                             const std::vector<KernelSpec> &phases);

/**
 * Total loads the memory phase of @p spec performs (iterations x
 * loadsPerIteration; 0 when level == None) — the denominator for
 * miss-rate band assertions against CoreStats event counts.
 */
std::uint64_t kernelLoads(const KernelSpec &spec);

/** Total conditional swept branches @p spec executes. */
std::uint64_t kernelBranches(const KernelSpec &spec);

/**
 * Register (index into ArchState::regs) holding the count of swept
 * branches that fell through (not taken): realized taken ratio =
 * 1 - regs[kernelNotTakenReg] / kernelBranches(spec).
 */
inline constexpr unsigned kernelNotTakenReg = 28;

} // namespace workloads
} // namespace tea

#endif // TEA_WORKLOADS_KERNEL_GEN_HH
