/**
 * @file
 * Workload registry: the single place a workload name resolves to a
 * factory. The legacy SPEC-like suite lives in a fixed table (report
 * order preserved); any canonical generated-kernel name (kernel_gen.hh,
 * `kgen/v1:...`) resolves by parsing the spec out of the name — so
 * generated scenarios are first-class citizens everywhere a benchmark
 * name is accepted (runBenchmarkSuite, the trace cache, the CLIs).
 *
 * Call sites must never assume a fixed kernel count: iterate
 * suiteNames() (legacy suite) or carry explicit experiment lists
 * (sweeps). This file replaced the if-chain byName() that hard-wired
 * the 15 hand-written kernels.
 */

#include "workloads/kernel_gen.hh"
#include "workloads/workload.hh"

#include "common/logging.hh"

namespace tea {
namespace workloads {

namespace {

struct RegistryEntry
{
    const char *name;
    Workload (*make)();
};

/** The SPEC CPU2017-like suite, in report order (spec_like.cc). */
constexpr RegistryEntry suiteTable[] = {
    {"lbm", [] { return lbm(); }},
    {"nab", [] { return nab(); }},
    {"bwaves", [] { return bwaves(); }},
    {"omnetpp", [] { return omnetpp(); }},
    {"fotonik3d", [] { return fotonik3d(); }},
    {"exchange2", [] { return exchange2(); }},
    {"mcf", [] { return mcf(); }},
    {"xalancbmk", [] { return xalancbmk(); }},
    {"cactuBSSN", [] { return cactuBSSN(); }},
    {"xz", [] { return xz(); }},
    {"gcc", [] { return gcc(); }},
    {"deepsjeng", [] { return deepsjeng(); }},
    {"roms", [] { return roms(); }},
    {"cam4", [] { return cam4(); }},
    {"perlbench", [] { return perlbench(); }},
};

} // namespace

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    names.reserve(std::size(suiteTable));
    for (const RegistryEntry &e : suiteTable)
        names.emplace_back(e.name);
    return names;
}

Workload
byName(const std::string &name)
{
    for (const RegistryEntry &e : suiteTable) {
        if (name == e.name)
            return e.make();
    }
    if (isGeneratedKernelName(name))
        return generateKernel(parseKernelName(name));
    tea_fatal("unknown workload '%s' (not a suite benchmark or a "
              "kgen/ spec name)",
              name.c_str());
}

} // namespace workloads
} // namespace tea
