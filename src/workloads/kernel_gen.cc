/**
 * @file
 * Parameterized bottleneck-kernel generator (see kernel_gen.hh).
 *
 * Expansion is pure: every instruction and every initial-state byte is
 * a function of the (resolved) KernelSpec alone, with all randomness
 * drawn from the spec seed through the deterministic Rng. The golden
 * expansion tests pin this — changing emitted code requires a
 * kernelGenVersion bump.
 */

#include "workloads/kernel_gen.hh"

#include <cstdlib>
#include <numeric>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/config.hh"
#include "isa/builder.hh"

namespace tea {
namespace workloads {

namespace {

/** Heap base of phase 0; later phases step by phaseRegionBytes. */
constexpr Addr kgenHeapBase = 0x2000'0000;
constexpr Addr phaseRegionBytes = 0x0800'0000; ///< 128 MiB per phase

/** LCG constants of the branch-direction generator (MMIX). */
constexpr std::int64_t lcgMul = 6364136223846793005LL;
constexpr std::int64_t lcgAdd = 1442695040888963407LL;

// Register allocation inside a phase loop. Phases run sequentially and
// re-initialize everything they use, so phases may share registers;
// x28 is the only cross-phase accumulator (not-taken branch count).
constexpr unsigned regIter = 6;      ///< loop counter
constexpr unsigned regBound = 7;     ///< loop bound
constexpr unsigned regChase = 5;     ///< chase pointer
constexpr unsigned regTmp = 9;       ///< stream address scratch
constexpr unsigned regSink = 10;     ///< stream load destination
constexpr unsigned regMask = 11;     ///< stream footprint mask
constexpr unsigned regStride = 12;   ///< stream stride
constexpr unsigned regIdx = 13;      ///< stream load index
constexpr unsigned regBase = 14;     ///< stream heap base
constexpr unsigned regChain0 = 15;   ///< ILP chains: x15 .. x22
constexpr unsigned maxChains = 8;
constexpr unsigned regThresh = 24;   ///< branch taken threshold
constexpr unsigned regLcgMul = 25;   ///< LCG multiplier
constexpr unsigned regLcg = 26;      ///< LCG state
constexpr unsigned regBits = 27;     ///< extracted direction bits
// x28 == kernelNotTakenReg (kernel_gen.hh)
constexpr unsigned regPoolA = 23;    ///< pool-function churn registers
constexpr unsigned regPoolB = 29;
constexpr unsigned regPoolC = 30;

/** Instructions in each target-pool function (~4 B each modelled). */
constexpr unsigned poolFnInsts = 16;

std::uint64_t
roundUpPow2(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

void
validate(const KernelSpec &s)
{
    tea_assert(s.iterations >= 1, "kernel spec: iterations must be >= 1");
    tea_assert(s.takenPermille <= 1000,
               "kernel spec: takenPermille must be <= 1000");
    if (s.level != MemLevel::None) {
        tea_assert(s.strideBytes >= 8 && s.strideBytes % 8 == 0,
                   "kernel spec: stride must be a multiple of 8");
        tea_assert(s.loadsPerIteration >= 1,
                   "kernel spec: loadsPerIteration must be >= 1");
    }
    if (s.chainLength > 0)
        tea_assert(s.chains >= 1 && s.chains <= maxChains,
                   "kernel spec: chains must be in [1, %u]", maxChains);
    tea_assert(s.targetPool <= 4096,
               "kernel spec: targetPool must be <= 4096");
}

/** Build the permuted chase ring; returns the head address. */
Addr
buildChaseRing(ArchState &st, Addr base, std::uint64_t nodes,
               std::uint64_t stride, std::uint64_t seed)
{
    std::vector<std::uint32_t> perm(nodes);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (std::uint64_t i = nodes - 1; i > 0; --i) {
        auto j = static_cast<std::uint64_t>(rng.below(i + 1));
        std::swap(perm[i], perm[j]);
    }
    for (std::uint64_t i = 0; i < nodes; ++i) {
        Addr from = base + perm[i] * stride;
        Addr to = base + perm[(i + 1) % nodes] * stride;
        st.mem.write(from, to);
    }
    return base + perm[0] * stride;
}

/** Emit one phase's setup, loop and body into @p b / @p st. */
void
emitPhase(ProgramBuilder &b, ArchState &st, const KernelSpec &raw,
          unsigned phase_idx, std::vector<Label> &pool_labels)
{
    KernelSpec s = resolvedSpec(raw, CoreConfig{});
    const Addr heap = kgenHeapBase + phase_idx * phaseRegionBytes;
    tea_assert(s.level == MemLevel::None ||
                   s.footprintBytes <= phaseRegionBytes / 2,
               "kernel spec: footprint %llu exceeds the phase region",
               static_cast<unsigned long long>(s.footprintBytes));

    // --- setup -------------------------------------------------------
    if (s.level != MemLevel::None) {
        if (s.dependent) {
            std::uint64_t nodes = s.footprintBytes / s.strideBytes;
            tea_assert(nodes >= 2, "kernel spec: footprint/stride < 2");
            Addr head = buildChaseRing(st, heap, nodes, s.strideBytes,
                                       s.seed + phase_idx);
            b.li(x(regChase), static_cast<std::int64_t>(head));
        } else {
            b.li(x(regIdx), 0);
            b.li(x(regStride),
                 static_cast<std::int64_t>(s.strideBytes));
            b.li(x(regBase), static_cast<std::int64_t>(heap));
        }
    }
    if (s.branchesPerIteration > 0) {
        // Threshold over a 10-bit draw: taken iff bits < thresh.
        std::int64_t thresh =
            static_cast<std::int64_t>((s.takenPermille * 1024 + 500) /
                                      1000);
        b.li(x(regThresh), thresh);
        b.li(x(regLcgMul), lcgMul);
        b.li(x(regLcg), static_cast<std::int64_t>(
                            mix64(s.seed + 0x9e37 * phase_idx) | 1));
    }
    if (s.chainLength > 0) {
        for (unsigned c = 0; c < s.chains; ++c)
            b.li(x(regChain0 + c), 0);
    }
    b.li(x(regIter), 0);
    b.li(x(regBound), s.iterations);

    // --- loop body ---------------------------------------------------
    Label top = b.here();
    if (s.level != MemLevel::None) {
        const std::int64_t mask =
            static_cast<std::int64_t>(s.footprintBytes - 1);
        for (unsigned l = 0; l < s.loadsPerIteration; ++l) {
            if (s.dependent) {
                b.ld(x(regChase), x(regChase), 0);
            } else {
                b.mul(x(regTmp), x(regIdx), x(regStride));
                b.andi(x(regTmp), x(regTmp), mask);
                b.add(x(regTmp), x(regTmp), x(regBase));
                b.ld(x(regSink), x(regTmp), 0);
                b.addi(x(regIdx), x(regIdx), 1);
            }
        }
    }
    if (s.chainLength > 0) {
        // Interleaved so the backend can mine `chains`-way ILP; each
        // chain is serial through its own register.
        for (unsigned k = 0; k < s.chainLength; ++k)
            for (unsigned c = 0; c < s.chains; ++c)
                b.addi(x(regChain0 + c), x(regChain0 + c), 1);
    }
    for (unsigned br = 0; br < s.branchesPerIteration; ++br) {
        b.mul(x(regLcg), x(regLcg), x(regLcgMul));
        b.addi(x(regLcg), x(regLcg), lcgAdd);
        b.shri(x(regBits), x(regLcg), 40);
        b.andi(x(regBits), x(regBits), 1023);
        Label taken = b.label();
        // The swept branch: taken with probability takenPermille/1000.
        b.blt(x(regBits), x(regThresh), taken);
        b.addi(x(kernelNotTakenReg), x(kernelNotTakenReg), 1);
        b.bind(taken);
    }
    if (s.targetPool > 0) {
        for (unsigned t = 0; t < s.targetPool; ++t)
            b.call(pool_labels[t]);
    }
    b.addi(x(regIter), x(regIter), 1);
    b.blt(x(regIter), x(regBound), top);
}

/** Emit the target-pool functions for one phase. */
void
emitPool(ProgramBuilder &b, unsigned phase_idx, unsigned pool,
         const std::vector<Label> &labels)
{
    for (unsigned t = 0; t < pool; ++t) {
        // += instead of leading `"p" + ...`: GCC 12's -O3 -Wrestrict
        // misfires on operator+(const char*, string&&) under -Werror.
        std::string fn = "p";
        fn += std::to_string(phase_idx);
        fn += "_fn";
        fn += std::to_string(t);
        b.beginFunction(fn);
        b.bind(labels[t]);
        for (unsigned k = 0; k + 2 < poolFnInsts; ++k) {
            unsigned r = (k % 3 == 0)   ? regPoolA
                         : (k % 3 == 1) ? regPoolB
                                        : regPoolC;
            b.addi(x(r), x(r), 1);
        }
        b.ret();
        b.endFunction();
    }
}

std::string
describePhase(const KernelSpec &s)
{
    std::string d;
    if (s.level != MemLevel::None) {
        d += strprintf("%s-level %s (fp=%llu stride=%llu)",
                       memLevelName(s.level),
                       s.dependent ? "chase" : "stream",
                       static_cast<unsigned long long>(s.footprintBytes),
                       static_cast<unsigned long long>(s.strideBytes));
    }
    if (s.branchesPerIteration > 0) {
        d += strprintf("%s%u branches@%u", d.empty() ? "" : " + ",
                       s.branchesPerIteration, s.takenPermille);
    }
    if (s.chainLength > 0) {
        d += strprintf("%silp %ux%u", d.empty() ? "" : " + ", s.chains,
                       s.chainLength);
    }
    if (s.targetPool > 0) {
        d += strprintf("%spool %u", d.empty() ? "" : " + ",
                       s.targetPool);
    }
    if (d.empty())
        d = "empty loop";
    return d;
}

} // namespace

const char *
memLevelName(MemLevel level)
{
    switch (level) {
    case MemLevel::None:
        return "none";
    case MemLevel::L1D:
        return "L1D";
    case MemLevel::Llc:
        return "LLC";
    case MemLevel::Mem:
        return "MEM";
    }
    tea_panic("bad MemLevel %u", static_cast<unsigned>(level));
}

MemLevel
memLevelByName(const std::string &name)
{
    for (MemLevel l : {MemLevel::None, MemLevel::L1D, MemLevel::Llc,
                       MemLevel::Mem}) {
        if (name == memLevelName(l))
            return l;
    }
    tea_fatal("unknown memory level '%s'", name.c_str());
}

std::uint64_t
defaultFootprintFor(MemLevel level, std::uint64_t stride,
                    const CoreConfig &cfg)
{
    switch (level) {
    case MemLevel::None:
        return 0;
    case MemLevel::L1D:
        return cfg.l1d.sizeBytes / 2;
    case MemLevel::Llc:
        return cfg.llc.sizeBytes / 4;
    case MemLevel::Mem: {
        // The LLC holds sizeBytes/64 distinct lines; walking 1.5x that
        // many lines guarantees capacity misses at any stride.
        std::uint64_t lines = cfg.llc.sizeBytes / 64;
        return (lines + lines / 2) * std::max<std::uint64_t>(stride, 64);
    }
    }
    tea_panic("bad MemLevel %u", static_cast<unsigned>(level));
}

KernelSpec
resolvedSpec(const KernelSpec &spec, const CoreConfig &cfg)
{
    validate(spec);
    KernelSpec s = spec;
    if (s.level != MemLevel::None) {
        if (s.footprintBytes == 0)
            s.footprintBytes =
                defaultFootprintFor(s.level, s.strideBytes, cfg);
        s.footprintBytes = roundUpPow2(s.footprintBytes);
        tea_assert(s.footprintBytes >= 2 * s.strideBytes,
                   "kernel spec: footprint must cover >= 2 strides");
    }
    return s;
}

std::string
canonicalKernelName(const KernelSpec &s)
{
    return strprintf(
        "kgen/v%u:s=%llu:it=%u:lv=%s:fp=%llu:st=%llu:dep=%u:lpi=%u:"
        "br=%u:tk=%u:cl=%u:ch=%u:tp=%u",
        kernelGenVersion, static_cast<unsigned long long>(s.seed),
        s.iterations, memLevelName(s.level),
        static_cast<unsigned long long>(s.footprintBytes),
        static_cast<unsigned long long>(s.strideBytes),
        s.dependent ? 1 : 0, s.loadsPerIteration, s.branchesPerIteration,
        s.takenPermille, s.chainLength, s.chains, s.targetPool);
}

bool
isGeneratedKernelName(const std::string &name)
{
    return name.rfind("kgen/", 0) == 0;
}

KernelSpec
parseKernelName(const std::string &name)
{
    const std::string prefix =
        strprintf("kgen/v%u:", kernelGenVersion);
    if (name.rfind(prefix, 0) != 0)
        tea_fatal("unparseable generated-kernel name '%s' (expected "
                  "prefix '%s')",
                  name.c_str(), prefix.c_str());
    KernelSpec s;
    std::size_t pos = prefix.size();
    auto nextField = [&](const char *key) -> std::uint64_t {
        std::size_t eq = name.find('=', pos);
        tea_assert(eq != std::string::npos &&
                       name.compare(pos, eq - pos, key) == 0,
                   "kernel name '%s': expected field '%s'", name.c_str(),
                   key);
        std::size_t end = name.find(':', eq + 1);
        std::string val = name.substr(
            eq + 1, end == std::string::npos ? end : end - (eq + 1));
        pos = end == std::string::npos ? name.size() : end + 1;
        if (std::string(key) == "lv")
            return static_cast<std::uint64_t>(memLevelByName(val));
        char *e = nullptr;
        std::uint64_t v = std::strtoull(val.c_str(), &e, 10);
        tea_assert(e && *e == '\0' && !val.empty(),
                   "kernel name '%s': bad value '%s' for '%s'",
                   name.c_str(), val.c_str(), key);
        return v;
    };
    s.seed = nextField("s");
    s.iterations = static_cast<unsigned>(nextField("it"));
    s.level = static_cast<MemLevel>(nextField("lv"));
    s.footprintBytes = nextField("fp");
    s.strideBytes = nextField("st");
    s.dependent = nextField("dep") != 0;
    s.loadsPerIteration = static_cast<unsigned>(nextField("lpi"));
    s.branchesPerIteration = static_cast<unsigned>(nextField("br"));
    s.takenPermille = static_cast<unsigned>(nextField("tk"));
    s.chainLength = static_cast<unsigned>(nextField("cl"));
    s.chains = static_cast<unsigned>(nextField("ch"));
    s.targetPool = static_cast<unsigned>(nextField("tp"));
    tea_assert(pos >= name.size(),
               "kernel name '%s': trailing garbage", name.c_str());
    validate(s);
    return s;
}

std::uint64_t
kernelSpecFingerprint(const KernelSpec &s)
{
    Fnv1a h;
    h.add(std::uint64_t{kernelGenVersion});
    h.add(s.seed);
    h.add(std::uint64_t{s.iterations});
    h.add(static_cast<std::uint64_t>(s.level));
    h.add(s.footprintBytes);
    h.add(s.strideBytes);
    h.add(static_cast<std::uint64_t>(s.dependent));
    h.add(std::uint64_t{s.loadsPerIteration});
    h.add(std::uint64_t{s.branchesPerIteration});
    h.add(std::uint64_t{s.takenPermille});
    h.add(std::uint64_t{s.chainLength});
    h.add(std::uint64_t{s.chains});
    h.add(std::uint64_t{s.targetPool});
    return h.value();
}

Workload
generateMixedKernel(const std::string &name,
                    const std::vector<KernelSpec> &phases)
{
    tea_assert(!phases.empty(), "mixed kernel needs >= 1 phase");
    ProgramBuilder b(name);
    ArchState st;

    // Pool labels are created up front: the loop bodies call forward
    // into functions emitted after main.
    std::vector<std::vector<Label>> pools(phases.size());
    for (std::size_t p = 0; p < phases.size(); ++p) {
        pools[p].resize(phases[p].targetPool);
        for (Label &l : pools[p])
            l = b.label();
    }

    b.beginFunction("main");
    std::string desc;
    for (std::size_t p = 0; p < phases.size(); ++p) {
        emitPhase(b, st, phases[p], static_cast<unsigned>(p), pools[p]);
        desc += strprintf("%s[%s]", p ? " " : "",
                          describePhase(
                              resolvedSpec(phases[p], CoreConfig{}))
                              .c_str());
    }
    b.halt();
    b.endFunction();

    for (std::size_t p = 0; p < phases.size(); ++p) {
        if (phases[p].targetPool > 0)
            emitPool(b, static_cast<unsigned>(p), phases[p].targetPool,
                     pools[p]);
    }
    return Workload{b.build(), std::move(st), "generated: " + desc};
}

Workload
generateKernel(const KernelSpec &spec)
{
    KernelSpec s = resolvedSpec(spec, CoreConfig{});
    return generateMixedKernel(canonicalKernelName(s), {s});
}

std::uint64_t
kernelLoads(const KernelSpec &spec)
{
    if (spec.level == MemLevel::None)
        return 0;
    return std::uint64_t{spec.iterations} * spec.loadsPerIteration;
}

std::uint64_t
kernelBranches(const KernelSpec &spec)
{
    return std::uint64_t{spec.iterations} * spec.branchesPerIteration;
}

} // namespace workloads
} // namespace tea
