/**
 * @file
 * Workloads: programs plus their initial architectural state.
 *
 * The SPEC CPU2017-like suite consists of synthetic kernels that imitate
 * the microarchitectural behaviour the paper attributes to each
 * benchmark (see DESIGN.md for the per-benchmark rationale); the
 * microkernels are small targeted programs used by the tests.
 */

#ifndef TEA_WORKLOADS_WORKLOAD_HH
#define TEA_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/executor.hh"
#include "isa/program.hh"

namespace tea {

/** A runnable workload. */
struct Workload
{
    Program program;
    ArchState initial;
    std::string description;
};

namespace workloads {

/** lbm parameters (Fig 10/11 case study). */
struct LbmParams
{
    /** Cells (cache lines) per array; 3 arrays are streamed. */
    unsigned cells = 24 * 1024; ///< 1.5 MiB/array read + 2 written
    /** Outer repetitions over the arrays. */
    unsigned sweeps = 2;
    /**
     * Software-prefetch distance in loop iterations (0 = no prefetch),
     * swept by the Fig 11 bench.
     */
    unsigned prefetchDistance = 0;
};

/** nab compilation variants (Fig 12 case study). */
enum class NabVariant
{
    Ieee,   ///< fsflags + frflags before every comparison (IEEE 754)
    Finite, ///< -ffinite-math-only: one CSR flush per iteration
    Fast,   ///< -ffast-math: no CSR flushes
};

struct NabParams
{
    unsigned iterations = 30000;
    NabVariant variant = NabVariant::Ieee;
};

/** Streaming LLC-missing loads, store-bandwidth-sensitive stores. */
Workload lbm(const LbmParams &params = {});

/** fsqrt serialized by always-flushing IEEE-754 CSR instructions. */
Workload nab(const NabParams &params = {});

/** Large-stride streaming: combined cache + TLB misses. */
Workload bwaves();

/** Pointer chasing over a large heap: combined events, non-hidden. */
Workload omnetpp();

/** Unit-stride streaming over a huge array: solitary cache misses. */
Workload fotonik3d();

/** Compute-bound, branchy integer puzzle: mispredicts, few misses. */
Workload exchange2();

/** Pointer chasing with aliased read-modify-writes: FL-MO traffic. */
Workload mcf();

/** Large code footprint: instruction cache misses. */
Workload xalancbmk();

/** Store-bandwidth-bound stencil: DR-SQ pressure at several sites. */
Workload cactuBSSN();

/** Compression-like mixed behavior: scattered loads, branches, FL-MO. */
Workload xz();

/** Very large code footprint: I-cache plus I-TLB misses. */
Workload gcc();

/** Search with mixed mispredicts and transposition-table misses. */
Workload deepsjeng();

/** High-MLP multi-stream stencil: bandwidth-bound, hidden misses. */
Workload roms();

/** FP-divide-bound physics with scattered table lookups. */
Workload cam4();

/** Interpreter dispatch: mispredicts plus operand-stack forwarding. */
Workload perlbench();

/** The full SPEC-like suite in report order. */
std::vector<std::string> suiteNames();

/** Construct a suite benchmark by name (fatal on unknown name). */
Workload byName(const std::string &name);

// --- microkernels for tests ------------------------------------------

/** Tight ALU loop: IPC sanity / golden-total checks. */
Workload aluLoop(unsigned iterations);

/** Dependent pointer chase of @p nodes nodes, @p laps laps. */
Workload pointerChase(unsigned nodes, unsigned laps,
                      std::uint64_t spacing_bytes);

/** Read-sum a @p lines-line array @p laps times (unit stride). */
Workload streamSum(unsigned lines, unsigned laps);

/** Data-dependent unpredictable branches. */
Workload branchNoise(unsigned iterations, std::uint64_t seed = 42);

/** Store burst that fills the store queue (DR-SQ). */
Workload storeBurst(unsigned lines, unsigned laps);

/** fsqrt preceded by always-flushing CSR ops (FL-EX). */
Workload flushySqrt(unsigned iterations, bool with_flushes);

/** Loop whose code footprint exceeds the L1 I-cache (DR-L1). */
Workload icacheWalk(unsigned functions, unsigned laps);

/** Store-to-load aliasing producing memory-ordering violations. */
Workload orderingViolator(unsigned iterations);

} // namespace workloads
} // namespace tea

#endif // TEA_WORKLOADS_WORKLOAD_HH
