/**
 * @file
 * The SPEC CPU2017-like synthetic suite.
 *
 * Each kernel reproduces the microarchitectural behaviour the paper
 * attributes to the corresponding SPEC benchmark (see DESIGN.md):
 * the suite substitutes for SPEC's reference runs, which are not
 * available offline.
 */

#include "workloads/workload.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace tea {
namespace workloads {

namespace {

constexpr Addr srcBase = 0x2000'0000;  ///< primary read region
constexpr Addr src2Base = 0x2800'0000; ///< secondary read region
constexpr Addr dstBase = 0x3000'0000;  ///< primary write region
constexpr Addr auxBase = 0x3800'0000;  ///< small auxiliary tables

/** Build a circular linked list; returns the head node address. */
Addr
buildList(ArchState &st, Addr base, unsigned nodes, std::uint64_t spacing,
          std::uint64_t seed)
{
    std::vector<std::uint32_t> perm(nodes);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (unsigned i = nodes - 1; i > 0; --i) {
        unsigned j = static_cast<unsigned>(rng.below(i + 1));
        std::swap(perm[i], perm[j]);
    }
    for (unsigned i = 0; i < nodes; ++i) {
        Addr from = base + perm[i] * spacing;
        Addr to = base + perm[(i + 1) % nodes] * spacing;
        st.mem.write(from, to);
        st.mem.write(from + 8, rng.below(2)); // branchy payload
    }
    return base + perm[0] * spacing;
}

} // namespace

Workload
lbm(const LbmParams &p)
{
    // Streaming stencil update: per iteration one source cache line is
    // read (the first fld is the paper's performance-critical load), a
    // long FP body fills the ROB -- preventing the next iteration's
    // loads from issuing early, exactly the behaviour the paper
    // describes -- and one destination line is written back.
    ProgramBuilder b("lbm");
    b.beginFunction("stream_collide");
    b.li(x(20), p.sweeps);
    b.li(x(21), 0);
    Label outer = b.here();
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(7), static_cast<std::int64_t>(dstBase));
    b.li(x(8), static_cast<std::int64_t>(srcBase) +
                   static_cast<std::int64_t>(p.cells) * 64);
    b.fli(f(20), 1.0009765625);
    b.fli(f(21), 0.25);
    Label top = b.here();
    if (p.prefetchDistance > 0) {
        // Prefetch the source line the body will read @distance
        // iterations ahead (stores are post-commit and write-allocate;
        // prefetching them would only add read traffic).
        std::int64_t d = static_cast<std::int64_t>(p.prefetchDistance) * 64;
        b.prefetch(x(5), d);
    }
    // The critical load: always misses the LLC without prefetching.
    b.fld(f(1), x(5), 0);
    b.fld(f(2), x(5), 16);
    b.fld(f(3), x(5), 32);
    b.fld(f(4), x(5), 48);
    // FP body (collision operator) seeded by the loaded values. Sized so
    // the 48-entry FP issue queue holds fewer than two iterations of FP
    // work: dispatch blocks on the queue while the critical load's miss
    // is outstanding, which prevents the loads of later iterations from
    // issuing early -- exactly the behaviour the paper describes for lbm.
    b.fmul(f(5), f(1), f(20));
    b.fadd(f(6), f(2), f(21));
    b.fmul(f(7), f(3), f(20));
    b.fadd(f(8), f(4), f(21));
    for (unsigned k = 0; k < 3; ++k) {
        b.fmul(f(5), f(5), f(20));
        b.fadd(f(6), f(6), f(5));
        b.fmul(f(7), f(7), f(21));
        b.fadd(f(8), f(8), f(7));
    }
    b.fadd(f(9), f(5), f(6));
    b.fadd(f(10), f(7), f(8));
    b.fmul(f(11), f(9), f(10));
    b.fadd(f(12), f(11), f(9));
    // Write two destination lines per source line (lbm writes more lines
    // than it reads): write-allocate RFOs plus eventual writebacks make
    // the optimized kernel store-bandwidth bound.
    b.fst(x(7), 0, f(9));
    b.fst(x(7), 16, f(10));
    b.fst(x(7), 32, f(11));
    b.fst(x(7), 48, f(12));
    b.fst(x(7), (1 << 21) + 0, f(10));
    b.fst(x(7), (1 << 21) + 16, f(11));
    b.fst(x(7), (1 << 21) + 32, f(12));
    b.fst(x(7), (1 << 21) + 48, f(9));
    b.addi(x(5), x(5), 64);
    b.addi(x(7), x(7), 64);
    b.blt(x(5), x(8), top);
    b.addi(x(21), x(21), 1);
    b.blt(x(21), x(20), outer);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "lbm-like: streaming LLC misses + store bandwidth"};
}

Workload
nab(const NabParams &p)
{
    // Molecular-dynamics-style distance kernel: a comparison guarded by
    // IEEE-754 flag bookkeeping (fsflags/frflags always flush the
    // pipeline on this architecture) followed by a square root whose
    // latency cannot be hidden because the flush restarts the front end.
    const char *variant_name =
        p.variant == NabVariant::Ieee     ? "nab"
        : p.variant == NabVariant::Finite ? "nab-finite-math"
                                          : "nab-fast-math";
    ProgramBuilder b(variant_name);
    b.beginFunction("dist_kernel");
    constexpr unsigned tableWords = 512; // 4 KiB: L1-resident
    b.li(x(5), static_cast<std::int64_t>(auxBase));
    b.li(x(6), p.iterations);
    b.li(x(7), 0);
    b.fli(f(10), 1.5);
    b.fli(f(11), 0.0);
    Label top = b.here();
    b.andi(x(9), x(7), tableWords - 1);
    b.shli(x(9), x(9), 3);
    b.add(x(9), x(9), x(5));
    b.fld(f(1), x(9), 0);
    b.fmul(f(2), f(1), f(1));
    b.fadd(f(2), f(2), f(10));
    if (p.variant != NabVariant::Fast) {
        // Without -ffast-math the compiler must preserve evaluation
        // order: the distance term folds the running energy into the
        // sqrt input, serializing iterations through the accumulator.
        b.fadd(f(2), f(2), f(5));
    }
    if (p.variant == NabVariant::Ieee) {
        // flt.d must not trap on NaN: the compiler brackets the compare
        // with flag save/restore, each of which flushes the pipeline.
        b.fsflags();
        b.fcmplt(x(10), f(2), f(11));
        b.frflags();
    } else if (p.variant == NabVariant::Finite) {
        // -ffinite-math-only: flag bookkeeping removed, compare kept.
        b.fcmplt(x(10), f(2), f(11));
    }
    // -ffast-math additionally reassociates the accumulation out of the
    // sqrt input and drops the guard comparison entirely.
    b.fsqrt(f(3), f(2)); // issues too late to hide its latency
    b.fmul(f(4), f(3), f(10));
    b.fadd(f(5), f(5), f(3));
    b.fst(x(9), 0, f(4));
    // A second, less frequent comparison site (every 8th iteration; the
    // period-8 pattern is perfectly predictable so it adds FL-EX count
    // diversity without FL-MB noise).
    Label no_second_cmp = b.label();
    b.andi(x(11), x(7), 7);
    b.bne(x(11), x(0), no_second_cmp);
    if (p.variant == NabVariant::Ieee) {
        b.fsflags();
        b.fcmplt(x(12), f(4), f(11));
        b.frflags();
    } else if (p.variant == NabVariant::Finite) {
        b.fcmplt(x(12), f(4), f(11));
    }
    b.bind(no_second_cmp);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();

    ArchState st;
    for (unsigned i = 0; i < tableWords; ++i)
        st.mem.writeDouble(auxBase + 8 * i, 1.0 + 0.001 * i);
    return Workload{b.build(), std::move(st),
                    "nab-like: fsqrt serialized by IEEE-754 CSR flushes"};
}

Workload
bwaves()
{
    // Page-stride sweep over a 32 MiB grid: nearly every access misses
    // the L1 D-TLB (and often the L2 TLB) in combination with LLC
    // misses -- the paper's example of combined (ST-LLC, ST-TLB) and
    // (ST-L1, ST-TLB) events.
    constexpr std::int64_t footprint = 32LL * 1024 * 1024;
    constexpr std::int64_t stride = 4096 + 64; // new page every access
    constexpr unsigned iterations = 22000;
    ProgramBuilder b("bwaves");
    b.beginFunction("mat_times_vec");
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(11), static_cast<std::int64_t>(srcBase) + footprint);
    b.li(x(12), static_cast<std::int64_t>(dstBase));
    b.fli(f(10), 0.5);
    Label top = b.here();
    b.fld(f(1), x(5), 0);   // combined LLC + TLB miss
    b.fld(f(2), x(5), 8);   // same line: hidden L1 miss
    b.fld(f(3), x(5), 64);  // next line, same page: solitary LLC miss
    b.fmul(f(4), f(1), f(10));
    b.fadd(f(4), f(4), f(2));
    b.fmul(f(5), f(3), f(10));
    b.fadd(f(6), f(4), f(5));
    b.fadd(f(7), f(7), f(6));
    b.fst(x(12), 0, f(6));
    b.addi(x(12), x(12), 64);
    b.andi(x(13), x(12), (1 << 20) - 1); // dst wraps within 1 MiB
    b.li(x(14), static_cast<std::int64_t>(dstBase));
    b.add(x(12), x(14), x(13));
    b.addi(x(5), x(5), stride);
    Label no_wrap = b.label();
    b.blt(x(5), x(11), no_wrap);
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.bind(no_wrap);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.endFunction();

    b.beginFunction("jacobian_sweep");
    // Second phase: page-stride over a 2 MiB slab that stays L2-TLB
    // resident -- frequent but cheap L1 D-TLB misses (count/impact
    // diversity for the Fig 7 analysis).
    b.li(x(5), static_cast<std::int64_t>(src2Base));
    b.li(x(6), 30000);
    b.li(x(7), 0);
    b.li(x(11), static_cast<std::int64_t>(src2Base) + (2 << 20));
    Label top2 = b.here();
    b.fld(f(1), x(5), 0); // L1-TLB miss, L2-TLB hit, LLC-resident
    b.fadd(f(8), f(8), f(1));
    b.addi(x(5), x(5), stride);
    Label no_wrap2 = b.label();
    b.blt(x(5), x(11), no_wrap2);
    b.li(x(5), static_cast<std::int64_t>(src2Base));
    b.bind(no_wrap2);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top2);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "bwaves-like: combined cache + TLB misses"};
}

Workload
omnetpp()
{
    // Discrete-event-simulator heap behaviour: a dependent pointer
    // chase across a 17 MiB heap (combined LLC + TLB misses that cannot
    // be hidden) with a data-dependent branch per event.
    constexpr unsigned nodes = 4096;
    constexpr std::uint64_t spacing = 4096 + 64;
    constexpr unsigned laps = 3;
    ArchState st;
    Addr head = buildList(st, srcBase, nodes, spacing, 23);
    // A short event queue that stays LLC-resident: its chase loads miss
    // the L1 often but are cheap (count/impact diversity for Fig 7).
    constexpr unsigned hotNodes = 1024; // 64 KB of lines: LLC-resident
    Addr hot_head = buildList(st, dstBase, hotNodes, spacing, 29);

    ProgramBuilder b("omnetpp");
    b.beginFunction("do_one_event");
    b.li(x(5), static_cast<std::int64_t>(head));
    b.li(x(6), nodes * laps);
    b.li(x(7), 0);
    b.li(x(12), 0);
    b.li(x(24), 6364136223846793005LL);
    b.li(x(25), 12345);
    Label top = b.here();
    b.ld(x(8), x(5), 8);  // payload (same line as the chase pointer)
    b.ld(x(5), x(5), 0);  // the chase load: exposed combined misses
    // Event-type test: payload mixed with fresh (LCG) entropy, so no
    // predictor can memorize the repeating list order.
    b.mul(x(25), x(25), x(24));
    b.addi(x(25), x(25), 1442695040888963407LL);
    b.shri(x(26), x(25), 41);
    b.xor_(x(26), x(26), x(8));
    b.andi(x(26), x(26), 1);
    Label skip = b.label();
    b.beq(x(26), x(0), skip); // unpredictable event-type branch
    b.addi(x(12), x(12), 5);
    b.bind(skip);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.endFunction();

    b.beginFunction("schedule_events");
    b.li(x(5), static_cast<std::int64_t>(hot_head));
    b.li(x(6), hotNodes * 30);
    b.li(x(7), 0);
    Label top2 = b.here();
    b.ld(x(5), x(5), 0); // hot chase: frequent cheap L1 misses
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top2);
    b.halt();
    b.endFunction();
    return Workload{b.build(), std::move(st),
                    "omnetpp-like: pointer chasing with combined events"};
}

Workload
fotonik3d()
{
    // Unit-line-stride field updates: solitary LLC misses (pages are
    // reused 64 lines in a row, so the TLB rarely misses) -- the
    // paper's example of a solitary-event benchmark. Three field loops
    // with different trip counts and different degrees of latency
    // hiding give the Fig 7 analysis count/impact diversity.
    constexpr unsigned linesA = 56 * 1024; // 3.5 MiB, exposed sweep
    constexpr unsigned linesB = 16 * 1024; // 2 x 1 MiB, 4-way unrolled
    constexpr unsigned linesC = 8 * 1024;  // 512 KiB, LLC-resident laps
    ProgramBuilder b("fotonik3d");

    b.beginFunction("update_e_field");
    b.fli(f(10), 0.125);
    // Phase A: single-stream sweep; the first load's misses are
    // latency-exposed at the head of the ROB.
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), static_cast<std::int64_t>(srcBase) +
                   static_cast<std::int64_t>(linesA) * 64);
    b.li(x(7), static_cast<std::int64_t>(dstBase));
    Label topA = b.here();
    b.fld(f(1), x(5), 0); // solitary LLC miss, exposed
    b.fld(f(2), x(5), 24);
    b.fmul(f(3), f(1), f(10));
    b.fadd(f(4), f(3), f(2));
    b.fmul(f(5), f(4), f(10));
    b.fadd(f(6), f(6), f(5));
    b.fst(x(7), 0, f(5));
    b.addi(x(5), x(5), 64);
    b.addi(x(7), x(7), 64);
    b.blt(x(5), x(6), topA);
    b.endFunction();

    b.beginFunction("update_h_field");
    // Phase B: dual-stream, 2-line unrolled sweep; misses overlap each
    // other, so the per-miss performance impact is lower.
    b.li(x(5), static_cast<std::int64_t>(src2Base));
    b.li(x(6), static_cast<std::int64_t>(src2Base) +
                   static_cast<std::int64_t>(linesB) * 64);
    b.li(x(8), 4 * 1024 * 1024);
    Label topB = b.here();
    b.fld(f(1), x(5), 0);
    b.fld(f(2), x(5), 1 << 22); // second stream, 4 MiB away
    b.fld(f(3), x(5), 64);
    b.fld(f(4), x(5), (1 << 22) + 64);
    b.fadd(f(5), f(1), f(2));
    b.fadd(f(6), f(3), f(4));
    b.fadd(f(7), f(5), f(6));
    b.fadd(f(9), f(9), f(7));
    b.addi(x(5), x(5), 128);
    b.blt(x(5), x(6), topB);
    b.endFunction();

    b.beginFunction("boundary_update");
    // Phase C: repeated laps over an LLC-resident slab: many L1 misses
    // (high ST-L1 counts) whose LLC-hit latency is mostly hidden.
    b.li(x(10), 10);
    b.li(x(11), 0);
    Label lapC = b.here();
    b.li(x(5), static_cast<std::int64_t>(auxBase));
    b.li(x(6), static_cast<std::int64_t>(auxBase) +
                   static_cast<std::int64_t>(linesC) * 64);
    Label topC = b.here();
    b.fld(f(1), x(5), 0);
    b.fld(f(2), x(5), 64);
    b.fadd(f(3), f(1), f(2));
    b.fadd(f(8), f(8), f(3));
    b.addi(x(5), x(5), 128);
    b.blt(x(5), x(6), topC);
    b.addi(x(11), x(11), 1);
    b.blt(x(11), x(10), lapC);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "fotonik3d-like: solitary streaming cache misses"};
}

Workload
exchange2()
{
    // Branch-and-bound puzzle solver: L1-resident data, heavy
    // data-dependent control flow, deep call chains -- compute bound
    // with branch mispredictions, few memory events.
    constexpr unsigned tableWords = 512;
    constexpr unsigned iterations = 110000;
    ArchState st;
    Rng rng(31);
    for (unsigned i = 0; i < tableWords; ++i)
        st.mem.write(auxBase + 8 * i, rng.below(9));

    ProgramBuilder b("exchange2");
    Label digit_fn = b.label();
    Label score_fn = b.label();

    b.beginFunction("solve");
    b.li(x(5), static_cast<std::int64_t>(auxBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(12), 0);
    b.li(x(24), 6364136223846793005LL);
    b.li(x(25), 777);
    Label top = b.here();
    // Fresh digit from an LCG (a repeating table would be memorized by
    // the TAGE predictor); the table load stays for its L1 traffic.
    b.mul(x(25), x(25), x(24));
    b.addi(x(25), x(25), 1442695040888963407LL);
    b.andi(x(9), x(7), tableWords - 1);
    b.shli(x(9), x(9), 3);
    b.add(x(9), x(9), x(5));
    b.ld(x(10), x(9), 0);
    b.shri(x(10), x(25), 41);
    b.andi(x(10), x(10), 7);
    b.call(digit_fn);
    Label not_four = b.label();
    b.slti(x(11), x(10), 4);
    b.bne(x(11), x(0), not_four); // unpredictable digit test (~50%)
    b.call(score_fn);
    b.bind(not_four);
    // Rarely-failing bound check (digits are 0..7, so < 7 is ~88%
    // taken): a branch site with a much lower misprediction rate.
    Label in_bounds = b.label();
    b.slti(x(11), x(10), 7);
    b.bne(x(11), x(0), in_bounds);
    b.addi(x(12), x(12), 11);
    b.bind(in_bounds);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();

    b.beginFunction("try_digit");
    b.bind(digit_fn);
    b.mul(x(13), x(10), x(10));
    b.addi(x(13), x(13), 3);
    b.andi(x(14), x(13), 7);
    Label even = b.label();
    b.andi(x(15), x(10), 1);
    b.beq(x(15), x(0), even); // unpredictable parity test
    b.add(x(12), x(12), x(14));
    b.bind(even);
    b.ret();
    b.endFunction();

    b.beginFunction("score_block");
    b.bind(score_fn);
    b.mul(x(16), x(10), x(13));
    b.shri(x(16), x(16), 2);
    b.add(x(12), x(12), x(16));
    b.ret();
    b.endFunction();

    return Workload{b.build(), std::move(st),
                    "exchange2-like: compute-bound, branchy"};
}

Workload
mcf()
{
    // Min-cost-flow arc scan: large-footprint loads, unpredictable
    // pricing branches, and read-modify-writes through a slow address
    // computation that trigger memory-ordering violations.
    constexpr unsigned arcWords = 1 << 20; // 8 MiB arc array
    constexpr unsigned iterations = 26000;
    ArchState st;
    Rng rng(47);
    for (unsigned i = 0; i < 4096; ++i)
        st.mem.write(auxBase + 8 * i, rng.below(64) * 8);

    ProgramBuilder b("mcf");
    b.beginFunction("price_out_impl");
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(15), static_cast<std::int64_t>(auxBase));
    b.li(x(16), 1000);
    b.li(x(17), 7);
    b.li(x(24), 6364136223846793005LL);
    b.li(x(25), 31415);
    Label top = b.here();
    // Arc load: strided 520 bytes through 8 MiB -> LLC misses.
    b.andi(x(9), x(7), arcWords / 64 - 1);
    b.li(x(13), 520);
    b.mul(x(9), x(9), x(13));
    b.add(x(9), x(9), x(5));
    b.andi(x(9), x(9), ~7LL);
    b.ld(x(10), x(9), 0);
    // Pricing test on the arc cost mixed with fresh entropy.
    b.mul(x(25), x(25), x(24));
    b.addi(x(25), x(25), 1442695040888963407LL);
    b.shri(x(13), x(25), 41);
    b.xor_(x(13), x(13), x(10));
    b.andi(x(13), x(13), 1);
    Label cheap = b.label();
    b.bne(x(13), x(0), cheap); // unpredictable pricing branch
    b.addi(x(18), x(18), 1);
    b.bind(cheap);
    // Read-modify-write into a small node table through a slow divide:
    // the store's data arrives late while the reload issues early
    // (memory-ordering violations). Two sites run every iteration and
    // two only every 4th (period-4, predictable), giving FL-MO count
    // diversity across static loads.
    Label skip_rare = b.label();
    for (unsigned u = 0; u < 4; ++u) {
        if (u == 2) {
            b.andi(x(14), x(7), 3);
            b.bne(x(14), x(0), skip_rare);
        }
        b.div(x(11), x(16), x(17));
        b.st(x(15), 8 * u, x(11));
        b.ld(x(12), x(15), 8 * u);
        b.add(x(18), x(18), x(12));
    }
    b.bind(skip_rare);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.endFunction();

    b.beginFunction("refresh_potential");
    // A short second phase: its RMW sites live through fewer store-set
    // aging epochs, so their violation counts differ from the main
    // loop's (count diversity for the Fig 7 FL-MO analysis).
    b.li(x(7), 0);
    b.li(x(6), 4000);
    Label top2 = b.here();
    for (unsigned u = 4; u < 6; ++u) {
        b.div(x(11), x(16), x(17));
        b.st(x(15), 8 * u, x(11));
        b.ld(x(12), x(15), 8 * u);
        b.add(x(18), x(18), x(12));
    }
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top2);
    b.halt();
    b.endFunction();
    return Workload{b.build(), std::move(st),
                    "mcf-like: pointer-heavy with ordering violations"};
}

Workload
xalancbmk()
{
    // XML-transformation-style code: a call graph whose footprint
    // exceeds the L1 I-cache and I-TLB reach -> DR-L1 and DR-TLB events
    // dominate. Functions are long (template handlers) so drain cycles
    // concentrate on a bounded set of fetch-packet head instructions.
    constexpr unsigned functions = 64;
    constexpr unsigned bodyInsts = 160; // ~41 KB total code > 32 KB L1I
    constexpr unsigned laps = 220;
    ProgramBuilder b("xalancbmk");
    std::vector<Label> fns(functions);
    for (auto &l : fns)
        l = b.label();

    b.beginFunction("transform");
    b.li(x(20), laps);
    b.li(x(21), 0);
    b.li(x(22), static_cast<std::int64_t>(auxBase));
    Label outer = b.here();
    for (unsigned i = 0; i < functions; ++i)
        b.call(fns[i]);
    b.addi(x(21), x(21), 1);
    b.blt(x(21), x(20), outer);
    b.halt();
    b.endFunction();

    Rng rng(91);
    for (unsigned i = 0; i < functions; ++i) {
        b.beginFunction("handler" + std::to_string(i));
        b.bind(fns[i]);
        for (unsigned k = 0; k + 1 < bodyInsts; ++k) {
            if (k % 16 == 5) {
                b.ld(x(9), x(22), 8 * ((i + k) % 64)); // L1-resident data
                b.add(x(10), x(10), x(9));
            } else {
                b.addi(x(5 + (k % 8)), x(5 + (k % 8)), 1);
            }
        }
        b.ret();
        b.endFunction();
    }
    return Workload{b.build(), ArchState{},
                    "xalancbmk-like: instruction-cache bound"};
}

Workload
cactuBSSN()
{
    // Stencil update writing many more grid lines than it reads: the
    // post-commit store stream saturates the store queue. Five store
    // groups with different write rates give DR-SQ count diversity.
    constexpr unsigned cells = 12 * 1024; // lines per array
    constexpr unsigned sweeps = 2;
    ProgramBuilder b("cactuBSSN");
    b.beginFunction("rhs_eval");
    b.li(x(20), sweeps);
    b.li(x(21), 0);
    b.fli(f(20), 1.015625);
    Label outer = b.here();
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(7), static_cast<std::int64_t>(dstBase));
    b.li(x(8), static_cast<std::int64_t>(srcBase) +
                   static_cast<std::int64_t>(cells) * 64);
    b.li(x(22), 0);
    Label top = b.here();
    b.fld(f(1), x(5), 0);
    b.fld(f(2), x(5), 32);
    b.fmul(f(3), f(1), f(20));
    b.fadd(f(4), f(3), f(2));
    b.fmul(f(5), f(4), f(20));
    b.fadd(f(6), f(5), f(4));
    b.fmul(f(7), f(6), f(20));
    b.fadd(f(8), f(7), f(6));
    // Store group A/B/C: written every iteration (2 MiB apart).
    b.fst(x(7), 0, f(4));
    b.fst(x(7), 32, f(5));
    b.fst(x(7), (1 << 21), f(6));
    b.fst(x(7), (1 << 21) + 32, f(7));
    b.fst(x(7), (2 << 21), f(8));
    b.fst(x(7), (2 << 21) + 32, f(4));
    // Store group D: every 2nd iteration; group E: every 4th.
    Label skip_d = b.label();
    b.andi(x(9), x(22), 1);
    b.bne(x(9), x(0), skip_d);
    b.fst(x(7), (3 << 21), f(5));
    b.fst(x(7), (3 << 21) + 32, f(6));
    b.bind(skip_d);
    Label skip_e = b.label();
    b.andi(x(9), x(22), 3);
    b.bne(x(9), x(0), skip_e);
    b.fst(x(7), (4 << 21), f(7));
    b.bind(skip_e);
    b.addi(x(22), x(22), 1);
    b.addi(x(5), x(5), 64);
    b.addi(x(7), x(7), 64);
    b.blt(x(5), x(8), top);
    b.addi(x(21), x(21), 1);
    b.blt(x(21), x(20), outer);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "cactuBSSN-like: store-bandwidth-bound stencil"};
}

Workload
xz()
{
    // LZ-style compression: hash-scattered match loads over a large
    // window, an L1-thrashing dictionary, unpredictable match-length
    // branches, and divide-delayed read-modify-writes to a small hash
    // table (ordering violations at several sites).
    constexpr unsigned iterations = 16000;
    constexpr std::uint64_t window = 8ULL << 20; // 8 MiB match window
    ArchState st;
    Rng rng(59);
    for (unsigned i = 0; i < 2048; ++i)
        st.mem.write(auxBase + 8 * i, rng.below(2));

    ProgramBuilder b("xz");
    b.beginFunction("lzma_match");
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(15), static_cast<std::int64_t>(auxBase));
    b.li(x(16), 999983);
    b.li(x(17), 11);
    b.li(x(19), 0x9e3779b9);
    b.li(x(24), 6364136223846793005LL);
    b.li(x(25), 2718);
    Label top = b.here();
    // Hash-scattered match-candidate load: LLC + TLB misses.
    b.mul(x(9), x(7), x(19));
    b.andi(x(9), x(9), static_cast<std::int64_t>(window - 1));
    b.andi(x(9), x(9), ~7LL);
    b.add(x(9), x(9), x(5));
    b.ld(x(10), x(9), 0);
    // Dictionary probe: 64 KiB, L1-thrashing but LLC-resident.
    b.andi(x(11), x(9), (1 << 16) - 1);
    b.andi(x(11), x(11), ~7LL);
    b.add(x(11), x(11), x(15));
    b.ld(x(12), x(11), 1 << 20);
    // Unpredictable match-found branch (fresh LCG bit mixed with the
    // probe result; a table bit would be memorized by TAGE).
    b.andi(x(13), x(7), 2047);
    b.shli(x(13), x(13), 3);
    b.add(x(13), x(13), x(15));
    b.ld(x(14), x(13), 0);
    b.mul(x(25), x(25), x(24));
    b.addi(x(25), x(25), 1442695040888963407LL);
    b.shri(x(13), x(25), 41);
    b.xor_(x(14), x(14), x(13));
    b.andi(x(14), x(14), 1);
    Label no_match = b.label();
    b.beq(x(14), x(0), no_match);
    b.addi(x(18), x(18), 2);
    b.bind(no_match);
    // Hash-table RMW through a slow divide (FL-MO); one site runs every
    // iteration, the other every other iteration.
    b.div(x(11), x(16), x(17));
    b.st(x(15), 8, x(11));
    b.ld(x(12), x(15), 8);
    b.add(x(18), x(18), x(12));
    Label skip_rmw = b.label();
    b.andi(x(14), x(7), 1);
    b.bne(x(14), x(0), skip_rmw);
    b.div(x(11), x(16), x(17));
    b.st(x(15), 16, x(11));
    b.ld(x(12), x(15), 16);
    b.add(x(18), x(18), x(12));
    b.bind(skip_rmw);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), std::move(st),
                    "xz-like: compression with mixed events"};
}

Workload
gcc()
{
    // Compiler-style code: a 131 KB call graph (33 pages) that thrashes
    // both the L1 I-cache and the 32-entry I-TLB -> DR-L1 plus DR-TLB.
    // Hot passes run every lap, cold passes every 4th lap, giving
    // front-end event-count diversity.
    constexpr unsigned hotFns = 40;
    constexpr unsigned coldFns = 24;
    constexpr unsigned bodyInsts = 512; // ~2 KB per function
    constexpr unsigned laps = 200;
    ProgramBuilder b("gcc");
    std::vector<Label> hot(hotFns), cold(coldFns);
    for (auto &l : hot)
        l = b.label();
    for (auto &l : cold)
        l = b.label();

    b.beginFunction("compile_unit");
    b.li(x(20), laps);
    b.li(x(21), 0);
    b.li(x(22), static_cast<std::int64_t>(auxBase));
    Label outer = b.here();
    for (unsigned i = 0; i < hotFns; ++i)
        b.call(hot[i]);
    Label skip_cold = b.label();
    b.andi(x(9), x(21), 3);
    b.bne(x(9), x(0), skip_cold);
    for (unsigned i = 0; i < coldFns; ++i)
        b.call(cold[i]);
    b.bind(skip_cold);
    b.addi(x(21), x(21), 1);
    b.blt(x(21), x(20), outer);
    b.halt();
    b.endFunction();

    auto emit_body = [&](unsigned idx) {
        for (unsigned k = 0; k + 1 < bodyInsts; ++k) {
            if (k % 32 == 9) {
                b.ld(x(9), x(22), 8 * ((idx + k) % 64));
                b.add(x(10), x(10), x(9));
            } else {
                b.addi(x(5 + (k % 8)), x(5 + (k % 8)), 1);
            }
        }
        b.ret();
    };
    for (unsigned i = 0; i < hotFns; ++i) {
        b.beginFunction("pass_hot" + std::to_string(i));
        b.bind(hot[i]);
        emit_body(i);
        b.endFunction();
    }
    for (unsigned i = 0; i < coldFns; ++i) {
        b.beginFunction("pass_cold" + std::to_string(i));
        b.bind(cold[i]);
        emit_body(hotFns + i);
        b.endFunction();
    }
    return Workload{b.build(), ArchState{},
                    "gcc-like: large code footprint (I-cache + I-TLB)"};
}

Workload
deepsjeng()
{
    // Alpha-beta chess search: hard-to-predict evaluation branches plus
    // transposition-table probes scattered over 8 MiB (a mix of FL-MB
    // and ST-LLC that neither exchange2 nor mcf has).
    constexpr unsigned iterations = 60000;
    constexpr std::uint64_t ttWords = 1 << 20; // 8 MiB
    ArchState st;
    Rng rng(71);
    for (unsigned i = 0; i < 2048; ++i)
        st.mem.write(auxBase + 8 * i, rng.below(2));

    ProgramBuilder b("deepsjeng");
    Label eval_fn = b.label();
    b.beginFunction("search");
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(15), static_cast<std::int64_t>(auxBase));
    b.li(x(19), 0x2545f491);
    b.li(x(24), 6364136223846793005LL);
    b.li(x(25), 16180);
    Label top = b.here();
    // Zobrist-hash transposition-table probe.
    b.mul(x(9), x(7), x(19));
    b.andi(x(9), x(9), static_cast<std::int64_t>(ttWords * 8 - 1));
    b.andi(x(9), x(9), ~7LL);
    b.add(x(9), x(9), x(5));
    b.ld(x(10), x(9), 0);
    // Unpredictable cutoff branch: probe result mixed with fresh
    // position entropy (an LCG; table bits would be memorized).
    b.mul(x(25), x(25), x(24));
    b.addi(x(25), x(25), 1442695040888963407LL);
    b.shri(x(12), x(25), 41);
    b.xor_(x(12), x(12), x(10));
    b.andi(x(12), x(12), 1);
    Label cutoff = b.label();
    b.beq(x(12), x(0), cutoff);
    b.call(eval_fn);
    b.bind(cutoff);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();

    b.beginFunction("evaluate");
    b.bind(eval_fn);
    b.mul(x(13), x(10), x(10));
    b.shri(x(14), x(13), 3);
    b.add(x(16), x(13), x(14));
    b.xor_(x(16), x(16), x(10));
    b.andi(x(17), x(16), 255);
    b.add(x(18), x(18), x(17));
    b.ret();
    b.endFunction();
    return Workload{b.build(), std::move(st),
                    "deepsjeng-like: search with mixed FL-MB + ST-LLC"};
}

Workload
roms()
{
    // Ocean-model stencil: four read streams and one write stream with
    // a short FP body -- high memory-level parallelism, so misses are
    // largely overlapped (bandwidth-bound, in contrast to lbm's
    // latency exposure).
    constexpr unsigned lines = 20 * 1024; // per stream
    ProgramBuilder b("roms");
    b.beginFunction("step3d");
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), static_cast<std::int64_t>(srcBase) +
                   static_cast<std::int64_t>(lines) * 64);
    b.li(x(7), static_cast<std::int64_t>(dstBase));
    b.fli(f(10), 0.0625);
    Label top = b.here();
    b.fld(f(1), x(5), 0);            // stream 0
    b.fld(f(2), x(5), 4 << 20);      // stream 1
    b.fld(f(3), x(5), 8 << 20);      // stream 2
    b.fld(f(4), x(5), 12 << 20);     // stream 3
    b.fadd(f(5), f(1), f(2));
    b.fadd(f(6), f(3), f(4));
    b.fmul(f(7), f(5), f(10));
    b.fadd(f(8), f(7), f(6));
    b.fst(x(7), 0, f(8));
    b.addi(x(5), x(5), 64);
    b.addi(x(7), x(7), 64);
    b.blt(x(5), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "roms-like: high-MLP streaming (bandwidth-bound)"};
}

Workload
cam4()
{
    // Atmosphere physics: FP-divide-heavy column computation with
    // periodic scattered lookups into 16 MiB of tables (solitary
    // ST-TLB/ST-LLC) -- exposes the unpipelined divider like nab's
    // sqrt, without the CSR flushes.
    constexpr unsigned iterations = 26000;
    ProgramBuilder b("cam4");
    b.beginFunction("tphysbc");
    b.li(x(5), static_cast<std::int64_t>(srcBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(19), 0x9e3779b9);
    b.fli(f(10), 1.25);
    b.fli(f(11), 3.5);
    Label top = b.here();
    // Scattered physics-table lookup every 4th iteration.
    Label no_lookup = b.label();
    b.andi(x(9), x(7), 3);
    b.bne(x(9), x(0), no_lookup);
    b.mul(x(9), x(7), x(19));
    b.andi(x(9), x(9), (16 << 20) - 1);
    b.andi(x(9), x(9), ~7LL);
    b.add(x(9), x(9), x(5));
    b.fld(f(1), x(9), 0);
    b.fadd(f(11), f(11), f(1));
    b.bind(no_lookup);
    // Saturation-vapor-pressure style divide chain.
    b.fdiv(f(2), f(10), f(11));
    b.fmul(f(3), f(2), f(10));
    b.fadd(f(4), f(4), f(3));
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "cam4-like: divide-bound FP with scattered lookups"};
}

Workload
perlbench()
{
    // Bytecode-interpreter dispatch: sequential opcode fetch from an
    // L1-resident program, a chain of compare-and-branch dispatch tests
    // with data-dependent directions, and operand-stack traffic that
    // exercises store-to-load forwarding.
    constexpr unsigned bytecodeWords = 4096; // 32 KiB program
    constexpr unsigned iterations = 90000;
    ArchState st;
    Rng rng(83);
    for (unsigned i = 0; i < bytecodeWords; ++i)
        st.mem.write(auxBase + 8 * i, rng.below(4)); // 4 opcodes

    ProgramBuilder b("perlbench");
    b.beginFunction("runops");
    b.li(x(5), static_cast<std::int64_t>(auxBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(15), static_cast<std::int64_t>(dstBase)); // operand stack
    b.li(x(24), 6364136223846793005LL);
    b.li(x(25), 141421);
    Label top = b.here();
    b.andi(x(9), x(7), bytecodeWords - 1);
    b.shli(x(9), x(9), 3);
    b.add(x(9), x(9), x(5));
    b.ld(x(10), x(9), 0); // fetch opcode
    // The interpreted program's opcode stream is fresh input, not a
    // repeating table: mix with an LCG.
    b.mul(x(25), x(25), x(24));
    b.addi(x(25), x(25), 1442695040888963407LL);
    b.shri(x(11), x(25), 41);
    b.xor_(x(10), x(10), x(11));
    b.andi(x(10), x(10), 3);
    // Dispatch chain: opcode == 0? == 1? == 2? (else fall through).
    Label op1 = b.label();
    Label op2 = b.label();
    Label done = b.label();
    b.bne(x(10), x(0), op1);
    b.addi(x(12), x(12), 1); // OP_CONST: push
    b.st(x(15), 0, x(12));
    b.jmp(done);
    b.bind(op1);
    b.slti(x(11), x(10), 2);
    b.beq(x(11), x(0), op2);
    b.ld(x(13), x(15), 0); // OP_ADD: pop (forwards from the push)
    b.add(x(12), x(12), x(13));
    b.jmp(done);
    b.bind(op2);
    b.mul(x(14), x(10), x(12)); // OP_MUL-ish
    b.andi(x(14), x(14), 1023);
    b.bind(done);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), std::move(st),
                    "perlbench-like: interpreter dispatch (FL-MB + "
                    "forwarding)"};
}

} // namespace workloads
} // namespace tea
