/**
 * @file
 * Small targeted workloads used by the test suite to exercise individual
 * core mechanisms (one per commit state / performance event).
 */

#include "workloads/workload.hh"

#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace tea {
namespace workloads {

namespace {

/** Base address of the data heap used by all workloads. */
constexpr Addr heapBase = 0x2000'0000;

/** Build a circular linked list and return the head address. */
Addr
buildChaseList(ArchState &st, Addr base, unsigned nodes,
               std::uint64_t spacing, std::uint64_t seed)
{
    tea_assert(spacing % 8 == 0 && spacing >= 8, "bad node spacing");
    std::vector<std::uint32_t> perm(nodes);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (unsigned i = nodes - 1; i > 0; --i) {
        unsigned j = static_cast<unsigned>(rng.below(i + 1));
        std::swap(perm[i], perm[j]);
    }
    for (unsigned i = 0; i < nodes; ++i) {
        Addr from = base + perm[i] * spacing;
        Addr to = base + perm[(i + 1) % nodes] * spacing;
        st.mem.write(from, to);
    }
    return base + perm[0] * spacing;
}

} // namespace

Workload
aluLoop(unsigned iterations)
{
    ProgramBuilder b("alu_loop");
    b.beginFunction("main");
    b.li(x(5), 0);
    b.li(x(6), iterations);
    Label top = b.here();
    b.addi(x(5), x(5), 1);
    b.xor_(x(7), x(5), x(6));
    b.add(x(8), x(7), x(5));
    b.sub(x(9), x(8), x(7));
    b.blt(x(5), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "tight ALU loop (compute-bound)"};
}

Workload
pointerChase(unsigned nodes, unsigned laps, std::uint64_t spacing_bytes)
{
    ArchState st;
    Addr head = buildChaseList(st, heapBase, nodes, spacing_bytes, 17);

    ProgramBuilder b("pointer_chase");
    b.beginFunction("chase");
    b.li(x(5), static_cast<std::int64_t>(head));
    b.li(x(6), static_cast<std::int64_t>(nodes) * laps);
    b.li(x(7), 0);
    Label top = b.here();
    b.ld(x(5), x(5), 0); // dependent chase load
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), std::move(st),
                    "dependent pointer chase (latency-bound)"};
}

Workload
streamSum(unsigned lines, unsigned laps)
{
    ProgramBuilder b("stream_sum");
    b.beginFunction("sum");
    b.li(x(9), laps);
    b.li(x(10), 0);
    Label outer = b.here();
    b.li(x(5), static_cast<std::int64_t>(heapBase));
    b.li(x(6), static_cast<std::int64_t>(heapBase) +
                   static_cast<std::int64_t>(lines) * 64);
    Label top = b.here();
    b.ld(x(7), x(5), 0);
    b.add(x(8), x(8), x(7));
    b.addi(x(5), x(5), 64);
    b.blt(x(5), x(6), top);
    b.addi(x(10), x(10), 1);
    b.blt(x(10), x(9), outer);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "unit-line-stride streaming read"};
}

Workload
branchNoise(unsigned iterations, std::uint64_t seed)
{
    // The unpredictable bit comes from a register-resident LCG: its
    // 2^64 period is beyond any predictor's reach (a repeating table
    // would be memorized by a TAGE-class predictor).
    ProgramBuilder b("branch_noise");
    b.beginFunction("noise");
    b.li(x(6), iterations);
    b.li(x(7), 0);  // i
    b.li(x(8), 0);  // acc
    b.li(x(9), static_cast<std::int64_t>(seed * 2 + 1));
    b.li(x(24), 6364136223846793005LL);
    Label top = b.here();
    b.mul(x(9), x(9), x(24));
    b.addi(x(9), x(9), 1442695040888963407LL);
    b.shri(x(10), x(9), 41);
    b.andi(x(10), x(10), 1);
    Label skip = b.label();
    b.beq(x(10), x(0), skip); // data-dependent, unpredictable
    b.addi(x(8), x(8), 3);
    b.bind(skip);
    b.addi(x(7), x(7), 1);
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "unpredictable data-dependent branches"};
}

Workload
storeBurst(unsigned lines, unsigned laps)
{
    ProgramBuilder b("store_burst");
    b.beginFunction("burst");
    b.li(x(9), laps);
    b.li(x(10), 0);
    b.li(x(7), 7);
    Label outer = b.here();
    b.li(x(5), static_cast<std::int64_t>(heapBase));
    b.li(x(6), static_cast<std::int64_t>(heapBase) +
                   static_cast<std::int64_t>(lines) * 64);
    Label top = b.here();
    b.st(x(5), 0, x(7));
    b.addi(x(5), x(5), 64);
    b.blt(x(5), x(6), top);
    b.addi(x(10), x(10), 1);
    b.blt(x(10), x(9), outer);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "line-stride store burst (store-queue bound)"};
}

Workload
flushySqrt(unsigned iterations, bool with_flushes)
{
    ProgramBuilder b(with_flushes ? "flushy_sqrt" : "plain_sqrt");
    b.beginFunction("kernel");
    b.fli(f(1), 2.25);
    b.fli(f(3), 0.0);
    b.li(x(5), 0);
    b.li(x(6), iterations);
    Label top = b.here();
    if (with_flushes) {
        b.fsflags();
        b.frflags();
    }
    b.fsqrt(f(2), f(1));
    b.fadd(f(3), f(3), f(2));
    b.addi(x(5), x(5), 1);
    b.blt(x(5), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    with_flushes ? "fsqrt serialized by CSR flushes"
                                 : "back-to-back fsqrt"};
}

Workload
icacheWalk(unsigned functions, unsigned laps)
{
    ProgramBuilder b("icache_walk");
    std::vector<Label> fns(functions);
    for (auto &l : fns)
        l = b.label();

    b.beginFunction("main");
    b.li(x(20), laps);
    b.li(x(21), 0);
    Label outer = b.here();
    for (unsigned i = 0; i < functions; ++i)
        b.call(fns[i]);
    b.addi(x(21), x(21), 1);
    b.blt(x(21), x(20), outer);
    b.halt();
    b.endFunction();

    // Each function is ~18 instructions: the total code footprint
    // exceeds the 32 KB L1 I-cache for functions >= ~450.
    for (unsigned i = 0; i < functions; ++i) {
        b.beginFunction("fn" + std::to_string(i));
        b.bind(fns[i]);
        for (unsigned k = 0; k < 16; ++k)
            b.addi(x(5 + (k % 8)), x(5 + (k % 8)), 1);
        b.ret();
        b.endFunction();
    }
    return Workload{b.build(), ArchState{},
                    "code footprint larger than the L1 I-cache"};
}

Workload
orderingViolator(unsigned iterations)
{
    constexpr unsigned bufWords = 64;
    ProgramBuilder b("ordering_violator");
    b.beginFunction("kernel");
    b.li(x(5), static_cast<std::int64_t>(heapBase));
    b.li(x(6), iterations);
    b.li(x(7), 0);
    b.li(x(10), 1000);
    b.li(x(11), 7);
    Label top = b.here();
    // Unrolled bodies give distinct static load pcs, so the store-set
    // predictor has to learn each one separately.
    for (unsigned u = 0; u < 8; ++u) {
        b.div(x(9), x(10), x(11));  // slow producer of the store data
        b.st(x(5), 8 * u, x(9));    // store waits on the divide
        b.ld(x(8), x(5), 8 * u);    // load issues early: violation
        b.add(x(12), x(12), x(8));
    }
    b.addi(x(7), x(7), 1);
    b.andi(x(13), x(7), bufWords / 2 - 1);
    b.shli(x(13), x(13), 3);
    b.li(x(5), static_cast<std::int64_t>(heapBase));
    b.add(x(5), x(5), x(13));
    b.blt(x(7), x(6), top);
    b.halt();
    b.endFunction();
    return Workload{b.build(), ArchState{},
                    "store-to-load aliasing (memory-ordering violations)"};
}

} // namespace workloads
} // namespace tea
