#include "common/logging.hh"

#include <cstdarg>
#include <cstring>
#include <vector>

namespace tea {

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

namespace {

// strerror_r has two incompatible signatures (XSI returns int, GNU
// returns char *); overload on the result type instead of #ifdef'ing
// feature-test macros. Exactly one overload is used per platform.
[[maybe_unused]] const char *
strerrorResult(int rc, const char *buf)
{
    return rc == 0 ? buf : "unknown error";
}

[[maybe_unused]] const char *
strerrorResult(const char *msg, const char *)
{
    return msg != nullptr ? msg : "unknown error";
}

} // namespace

std::string
errnoString(int err)
{
    char buf[128];
    buf[0] = '\0';
    return strerrorResult(::strerror_r(err, buf, sizeof buf), buf);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace tea
