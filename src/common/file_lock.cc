#include "common/file_lock.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/logging.hh"

namespace tea {

namespace {

/** Injected lock-acquisition failure (simulates a contended lock). */
Failpoint fpLockAcquire("cache.lock", EAGAIN);

} // namespace

bool
FileLock::acquire(const std::string &path, unsigned timeout_ms)
{
    release();
    if (TEA_FAILPOINT(fpLockAcquire)) {
        errno = fpLockAcquire.failErrno();
        return false;
    }

    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd < 0) {
        tea_warn("file lock: cannot create '%s' (%s)", path.c_str(),
                 errnoString(errno).c_str());
        return false;
    }

    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        if (::flock(fd, LOCK_EX | LOCK_NB) == 0)
            break;
        if (errno != EWOULDBLOCK && errno != EINTR) {
            tea_warn("file lock: flock('%s') failed (%s)", path.c_str(),
                     errnoString(errno).c_str());
            ::close(fd); // tea_lint: allow(unchecked-io)
            return false;
        }
        if (Clock::now() >= deadline) {
            ::close(fd); // tea_lint: allow(unchecked-io)
            return false; // contended: caller degrades
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Record the holder for post-mortem debugging; the content is
    // advisory only and may be stale after takeover — the flock, not
    // the bytes, is the lock.
    char pid[32];
    int n = std::snprintf(pid, sizeof(pid), "%ld\n",
                          static_cast<long>(::getpid()));
    if (n > 0) {
        // Best effort: an unwritable pid note must not fail the lock.
        ::ftruncate(fd, 0);                 // tea_lint: allow(unchecked-io)
        [[maybe_unused]] ssize_t w =
            ::write(fd, pid, static_cast<std::size_t>(n));
    }

    fd_ = fd;
    path_ = path;
    return true;
}

void
FileLock::release()
{
    if (fd_ < 0)
        return;
    // Closing the descriptor drops the flock; nothing to check.
    ::close(fd_); // tea_lint: allow(unchecked-io)
    fd_ = -1;
    path_.clear();
}

} // namespace tea
