#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace tea {

void
Table::header(std::vector<std::string> cells)
{
    tea_assert(!hasHeader_, "table already has a header");
    rows_.insert(rows_.begin(), Row{std::move(cells), false});
    hasHeader_ = true;
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(Row{std::move(cells), false});
}

void
Table::separator()
{
    rows_.push_back(Row{{}, true});
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    for (const auto &r : rows_) {
        if (r.isSeparator)
            continue;
        if (r.cells.size() > widths.size())
            widths.resize(r.cells.size(), 0);
        for (std::size_t i = 0; i < r.cells.size(); ++i)
            widths[i] = std::max(widths[i], r.cells[i].size());
    }

    std::ostringstream out;
    auto emit_sep = [&]() {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            out << '+' << std::string(widths[i] + 2, '-');
        }
        out << "+\n";
    };

    bool first = true;
    for (const auto &r : rows_) {
        if (r.isSeparator) {
            emit_sep();
            continue;
        }
        if (first) {
            emit_sep();
            first = false;
        }
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < r.cells.size() ? r.cells[i] : "";
            out << "| " << cell
                << std::string(widths[i] - cell.size() + 1, ' ');
        }
        out << "|\n";
        if (hasHeader_ && &r == &rows_.front())
            emit_sep();
    }
    emit_sep();
    return out.str();
}

void
Table::print() const
{
    // Terminal output, not file I/O: no seams apply.
    // tea_check: allow(raw-io)
    std::fputs(render().c_str(), stdout);
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
fmtCount(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            out.push_back(',');
            since_sep = 0;
        }
        out.push_back(*it);
        ++since_sep;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
bar(double value, double full_scale, int width)
{
    if (full_scale <= 0.0)
        full_scale = 1.0;
    int n = static_cast<int>(value / full_scale * width + 0.5);
    n = std::clamp(n, 0, width);
    return std::string(static_cast<std::size_t>(n), '#');
}

std::string
stackedBar(const std::vector<double> &segments, double full_scale, int width)
{
    static const char glyphs[] = {'#', '=', '+', '-', 'o',
                                  '*', '.', '%', '@'};
    if (full_scale <= 0.0)
        full_scale = 1.0;
    std::string out;
    double acc = 0.0;
    int emitted = 0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        acc += segments[i];
        int upto = static_cast<int>(acc / full_scale * width + 0.5);
        upto = std::clamp(upto, 0, width);
        char g = glyphs[i % sizeof(glyphs)];
        while (emitted < upto) {
            out.push_back(g);
            ++emitted;
        }
    }
    return out;
}

} // namespace tea
