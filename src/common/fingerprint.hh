/**
 * @file
 * Content hashing building blocks for the persistent trace cache:
 * an incremental 64-bit FNV-1a hasher (cache-entry fingerprints), a
 * CRC-32 checksum (on-disk chunk integrity), and a 64-bit finalizing
 * mixer (hash-table key scrambling).
 */

#ifndef TEA_COMMON_FINGERPRINT_HH
#define TEA_COMMON_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tea {

/**
 * Incremental FNV-1a 64-bit hasher.
 *
 * Used to fingerprint (workload, CoreConfig, codec version) tuples for
 * trace-cache keys. Feed values through add()/addBytes(); every value is
 * mixed byte-by-byte, so the result is independent of struct padding and
 * stable across builds as long as the fed values are.
 */
class Fnv1a
{
  public:
    /** Mix in @p bytes raw bytes. */
    void addBytes(const void *data, std::size_t bytes)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < bytes; ++i) {
            hash_ ^= p[i];
            hash_ *= prime;
        }
    }

    /** Mix in an unsigned integer (value-based, width-normalized). */
    void add(std::uint64_t v) { addBytes(&v, sizeof(v)); }

    /** Mix in a signed integer. */
    void addSigned(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }

    /** Mix in a string, including its length (prefix-collision-free). */
    void add(std::string_view s)
    {
        add(static_cast<std::uint64_t>(s.size()));
        addBytes(s.data(), s.size());
    }

    /** Current hash value. */
    std::uint64_t value() const { return hash_; }

  private:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;

    std::uint64_t hash_ = offsetBasis;
};

/**
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range, seeded so
 * that crc32(crc32(a), b) == crc32 of the concatenation.
 *
 * @param crc running checksum (0 to start a fresh one)
 */
std::uint32_t crc32(std::uint32_t crc, const void *data, std::size_t bytes);

/**
 * Finalizing 64-bit mixer (splitmix64): turns structured keys whose
 * entropy sits in a few bit fields into uniformly distributed hash-table
 * slots. Bijective, so distinct keys stay distinct.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Render a 64-bit hash as a fixed-width lowercase hex string. */
std::string hashHex(std::uint64_t h);

} // namespace tea

#endif // TEA_COMMON_FINGERPRINT_HH
