/**
 * @file
 * Fundamental typedefs shared by every TEA library.
 */

#ifndef TEA_COMMON_TYPES_HH
#define TEA_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace tea {

/** A clock cycle count (absolute simulation time or duration). */
using Cycle = std::uint64_t;

/** A byte address in the simulated virtual/physical address space. */
using Addr = std::uint64_t;

/** A globally unique, monotonically increasing dynamic micro-op id. */
using SeqNum = std::uint64_t;

/** Index of a static instruction within a Program. */
using InstIndex = std::uint32_t;

/** Sentinel for "no static instruction". */
inline constexpr InstIndex invalidInstIndex =
    std::numeric_limits<InstIndex>::max();

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no sequence number". */
inline constexpr SeqNum invalidSeqNum = std::numeric_limits<SeqNum>::max();

} // namespace tea

#endif // TEA_COMMON_TYPES_HH
