/**
 * @file
 * Bounded single-producer / multi-consumer broadcast queue.
 *
 * The parallel replay engine captures the cycle trace in chunks and fans
 * every chunk out to N replay workers. Unlike a work-stealing queue,
 * every consumer observes every item (the trace is broadcast, not
 * partitioned), so the queue keeps one read cursor per consumer and the
 * producer blocks once the slowest consumer falls a full window behind
 * (condition-variable backpressure). Items are typically
 * `std::shared_ptr<const TraceChunk>`, so a push/pop moves a pointer,
 * never the chunk payload.
 *
 * All shared state is guarded by one capability (`m_`); the
 * TEA_GUARDED_BY annotations make Clang's thread-safety analysis prove
 * every access happens under it (see common/sync.hh).
 */

#ifndef TEA_COMMON_CHUNK_QUEUE_HH
#define TEA_COMMON_CHUNK_QUEUE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/sync.hh"

namespace tea {

/**
 * Bounded SPMC broadcast queue: one producer, @p consumers readers, each
 * of which sees every pushed item exactly once, in push order.
 */
template <typename T>
class BroadcastQueue
{
  public:
    /**
     * @param capacity max items the fastest consumer may lead the
     *                 slowest by before the producer blocks (>= 1)
     * @param consumers number of registered consumers (>= 1)
     */
    BroadcastQueue(std::size_t capacity, unsigned consumers)
        : capacity_(capacity), cursors_(consumers, 0),
          emptyWaits_(consumers, 0)
    {
        tea_assert(capacity >= 1, "queue capacity must be >= 1");
        tea_assert(consumers >= 1, "queue needs >= 1 consumer");
    }

    /**
     * Append @p item; every consumer will observe it. Blocks while the
     * slowest consumer is @c capacity items behind.
     */
    void push(T item) TEA_EXCLUDES(m_)
    {
        MutexLock lk(m_);
        tea_assert(!closed_, "push() on a closed BroadcastQueue");
        if (head_ - minCursor() >= capacity_) {
            ++fullWaits_;
            while (head_ - minCursor() >= capacity_)
                notFull_.wait(m_);
        }
        ring_.push_back(std::move(item));
        ++head_;
        notEmpty_.notify_all();
    }

    /** Mark the stream complete; consumers drain and then see EOF. */
    void close() TEA_EXCLUDES(m_)
    {
        MutexLock lk(m_);
        closed_ = true;
        notEmpty_.notify_all();
    }

    /**
     * Fetch the next item for @p consumer. Blocks until an item is
     * available. @return false once the queue is closed and this
     * consumer has seen every item.
     */
    bool pop(unsigned consumer, T &out) TEA_EXCLUDES(m_)
    {
        MutexLock lk(m_);
        tea_assert(consumer < cursors_.size(),
                   "consumer id %u out of range", consumer);
        if (cursors_[consumer] == head_ && !closed_) {
            ++emptyWaits_[consumer];
            while (cursors_[consumer] == head_ && !closed_)
                notEmpty_.wait(m_);
        }
        if (cursors_[consumer] == head_)
            return false; // closed and drained
        const std::uint64_t base = head_ - ring_.size();
        out = ring_[cursors_[consumer] - base];
        ++cursors_[consumer];
        // Drop items every consumer has consumed and wake the producer.
        for (std::uint64_t b = base; minCursor() > b; ++b) {
            ring_.pop_front();
            notFull_.notify_one();
        }
        return true;
    }

    /** Items pushed so far. */
    std::uint64_t pushed() const TEA_EXCLUDES(m_)
    {
        MutexLock lk(m_);
        return head_;
    }

    /** Times the producer blocked on a full window. */
    std::uint64_t fullWaits() const TEA_EXCLUDES(m_)
    {
        MutexLock lk(m_);
        return fullWaits_;
    }

    /** Times consumer @p c blocked on an empty queue. */
    std::uint64_t emptyWaits(unsigned c) const TEA_EXCLUDES(m_)
    {
        MutexLock lk(m_);
        return emptyWaits_.at(c);
    }

  private:
    std::uint64_t minCursor() const TEA_REQUIRES(m_)
    {
        std::uint64_t m = cursors_[0];
        for (std::uint64_t c : cursors_)
            m = c < m ? c : m;
        return m;
    }

    mutable Mutex m_;
    CondVar notFull_;
    CondVar notEmpty_;

    /** items [head_ - ring_.size(), head_) */
    std::deque<T> ring_ TEA_GUARDED_BY(m_);
    const std::size_t capacity_;
    /** global index of the next push */
    std::uint64_t head_ TEA_GUARDED_BY(m_) = 0;
    std::vector<std::uint64_t> cursors_ TEA_GUARDED_BY(m_);
    bool closed_ TEA_GUARDED_BY(m_) = false;

    std::uint64_t fullWaits_ TEA_GUARDED_BY(m_) = 0;
    std::vector<std::uint64_t> emptyWaits_ TEA_GUARDED_BY(m_);
};

} // namespace tea

#endif // TEA_COMMON_CHUNK_QUEUE_HH
