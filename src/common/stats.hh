/**
 * @file
 * Statistics helpers used by the analysis layer and the benches:
 * summary moments, percentiles, Pearson correlation, five-number boxplot
 * summaries, fixed-bin histograms, and the replay-engine counters that
 * make the parallel runner's behaviour observable.
 */

#ifndef TEA_COMMON_STATS_HH
#define TEA_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tea {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile.
 *
 * @param xs data (copied and sorted internally)
 * @param p percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/**
 * Pearson correlation coefficient between two equally sized series.
 *
 * Returns 0 when either series has zero variance (the convention used in
 * the Fig 7 analysis: an event that never varies carries no signal).
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Five-number summary for boxplot rendering. */
struct BoxplotSummary
{
    double min = 0;
    double q1 = 0;
    double median = 0;
    double q3 = 0;
    double max = 0;
    std::size_t n = 0;
};

/** Compute the five-number summary of a series. */
BoxplotSummary boxplot(std::vector<double> xs);

/**
 * Streaming histogram over uint64 values with power-of-two-friendly fixed
 * bins, used for stall-length distributions.
 */
class Histogram
{
  public:
    /** @param max_value values above this land in the overflow bin */
    explicit Histogram(std::uint64_t max_value);

    /** Record one observation. */
    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Total recorded weight. */
    std::uint64_t count() const { return count_; }

    /** Weighted mean of recorded values (overflow counted at max). */
    double mean() const;

    /**
     * Smallest value v such that at least fraction f of the recorded
     * weight is <= v. Returns max_value+1 if f falls in the overflow bin.
     */
    std::uint64_t quantile(double f) const;

    /** Per-value counts (index = value, last index = overflow). */
    const std::vector<std::uint64_t> &bins() const { return bins_; }

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t maxValue_;
    std::uint64_t count_ = 0;
    unsigned __int128 sum_ = 0;
};

/** Per-worker counters of one parallel replay (see analysis/parallel_runner). */
struct ReplayWorkerStats
{
    unsigned workerId = 0;
    unsigned sinkGroups = 0;          ///< observer groups this worker drives
    std::uint64_t chunksConsumed = 0;
    std::uint64_t eventsReplayed = 0;
    std::uint64_t cyclesReplayed = 0;
    std::uint64_t queueEmptyWaits = 0; ///< times blocked on an empty queue
    double replaySeconds = 0.0;        ///< wall time inside the replay loop

    /**
     * Non-empty when this worker's observers died mid-replay: the
     * exception was contained (the worker kept draining the queue so
     * the producer never deadlocks) and the experiment as a whole is
     * failed with this message (see DESIGN.md, "Failure model and
     * recovery").
     */
    std::string error;

    /** Replay throughput in cycles per second (0 if unmeasured). */
    double cyclesPerSecond() const
    {
        return replaySeconds > 0.0
                   ? static_cast<double>(cyclesReplayed) / replaySeconds
                   : 0.0;
    }
};

/** Aggregate counters of one parallel replay run. */
struct ReplayStats
{
    unsigned threads = 0;              ///< worker threads (0 = serial path)
    std::uint64_t chunksProduced = 0;
    std::uint64_t eventsCaptured = 0;
    std::uint64_t queueFullStalls = 0; ///< producer-side backpressure hits
    double simulateSeconds = 0.0;      ///< core-model simulation wall time
    double totalSeconds = 0.0;         ///< whole-experiment wall time
    std::uint64_t simCycles = 0;  ///< cycles simulated (0 on a cache hit)
    std::uint64_t simEvents = 0;  ///< trace events the simulation emitted

    // Time-parallel simulation counters (see analysis/parallel_sim).
    bool simParallel = false;     ///< cold simulate took the parallel path
    std::uint64_t simIntervals = 0;       ///< intervals the run split into
    std::uint64_t simWarmupCycles = 0;    ///< worker cycles spent warming up
    std::uint64_t simConvergenceRetries = 0; ///< intervals redone serially
    double simParallelEfficiency = 0.0; ///< accepted parallel cycle fraction
    std::vector<ReplayWorkerStats> workers;

    // Trace-cache counters (see analysis/trace_cache).
    bool cacheHit = false;      ///< trace came from the persistent cache
    bool cacheStored = false;   ///< this run published a new cache entry
    std::uint64_t cacheBytes = 0; ///< on-disk size of the entry used/made
    /**
     * Wall time spent inside chunk decode on a warm cache hit (summed
     * across decode threads when TEA_DECODE_THREADS > 1). Metered
     * around the decode calls only — queue backpressure and observer
     * time are excluded, so decode and technique-accumulation cost
     * stay separately attributable.
     */
    double decodeSeconds = 0.0;
    double replaySeconds = 0.0; ///< observer wall time (max across workers)

    // Self-healing counters (common/retry, analysis/trace_cache
    // quarantine, and the contained-failure path in the runner).
    std::uint64_t ioRetries = 0;    ///< transient cache-I/O retry attempts
    std::uint64_t ioRecoveries = 0; ///< cache-I/O ops that recovered on retry
    std::uint64_t quarantined = 0;  ///< damaged cache entries quarantined
    unsigned workerFailures = 0;    ///< replay workers that died (contained)

    // Cache-lifecycle counters (see analysis/cache_janitor).
    std::uint64_t cacheEvictions = 0; ///< entries evicted for the budget
    std::uint64_t cacheEvictedBytes = 0; ///< bytes those entries held
    std::uint64_t janitorRemovals = 0; ///< debris files GC'd (tmp/lock/quar)
    unsigned lockDegrades = 0; ///< store skipped: entry lock contended
    bool cacheAdmissionDenied = false; ///< entry larger than the budget

    /**
     * Number of experiments that failed (with a contained,
     * per-experiment error) in the suite run this experiment was part
     * of; 0 for standalone runs and fully healthy suites. Stamped on
     * every result of the suite by runBenchmarkSuite.
     */
    unsigned degradedExperiments = 0;

    /** True when this run went through the threaded replay path. */
    bool parallel() const { return threads > 0; }

    /** Simulate-phase throughput in cycles/second (0 if unmeasured). */
    double simCyclesPerSecond() const
    {
        return simulateSeconds > 0.0
                   ? static_cast<double>(simCycles) / simulateSeconds
                   : 0.0;
    }

    /** Simulate-phase throughput in events/second (0 if unmeasured). */
    double simEventsPerSecond() const
    {
        return simulateSeconds > 0.0
                   ? static_cast<double>(simEvents) / simulateSeconds
                   : 0.0;
    }

    /** Multi-line human-readable listing of all counters. */
    std::string render() const;

    /**
     * One-line summary for per-experiment status output (the
     * TEA_RUNNER_STATS line): total time, simulate-phase throughput
     * when this run simulated, and the trace source.
     */
    std::string renderLine() const;
};

} // namespace tea

#endif // TEA_COMMON_STATS_HH
