/**
 * @file
 * Capability-annotated synchronization primitives.
 *
 * Every lock in the tree is a `tea::Mutex`, every guarded member is
 * annotated `TEA_GUARDED_BY(itslock)`, and every function that assumes
 * a lock is held says so with `TEA_REQUIRES(itslock)`. Under Clang the
 * annotations expand to thread-safety-analysis attributes, turning the
 * locking discipline into a compile-time capability system: a member
 * read without its lock, a lock released twice, a function called with
 * the wrong lock held — each is a -Wthread-safety error on every build
 * (enable with -DTEA_THREAD_SAFETY=ON or the `clang-tsa` preset; see
 * DESIGN.md, "Compile-time concurrency analysis"). Under any other
 * compiler the macros expand to nothing and the classes are thin,
 * zero-overhead wrappers over the std primitives.
 *
 * Unlike TSan — which verifies the interleavings one run happens to
 * execute — the static analysis covers every path in every build, and
 * the annotations double as checked documentation of which lock guards
 * what. The two layers are complementary and both gate CI.
 *
 * Conventions (enforced by tea_lint's raw-sync rule and tea_check's
 * guard-missing rule):
 *  - no raw std::mutex / std::condition_variable / std::lock_guard
 *    outside this header; use Mutex / CondVar / MutexLock;
 *  - every mutable member of a class that owns a Mutex carries
 *    TEA_GUARDED_BY (std::atomic members are the documented exception:
 *    they synchronize themselves and spell their memory orders);
 *  - condition-variable waits are explicit `while (!pred) cv.wait(mu)`
 *    loops, not predicate lambdas — the analysis cannot see through a
 *    lambda body, a plain loop it checks completely.
 */

#ifndef TEA_COMMON_SYNC_HH
#define TEA_COMMON_SYNC_HH

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------
// Thread-safety-analysis attribute macros (Clang-only; no-ops
// elsewhere). The spellings follow the Clang documentation's mutex.h
// and the convention used by Abseil/Chromium capability systems.
// ---------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TEA_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef TEA_TSA_ATTR
#define TEA_TSA_ATTR(x) // not Clang: annotations compile to nothing
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define TEA_CAPABILITY(name) TEA_TSA_ATTR(capability(name))

/** Marks an RAII class whose lifetime acquires/releases a capability. */
#define TEA_SCOPED_CAPABILITY TEA_TSA_ATTR(scoped_lockable)

/** Member may only be read/written while holding @p x. */
#define TEA_GUARDED_BY(x) TEA_TSA_ATTR(guarded_by(x))

/** Pointee may only be dereferenced while holding @p x. */
#define TEA_PT_GUARDED_BY(x) TEA_TSA_ATTR(pt_guarded_by(x))

/** Function must be called with the listed capabilities held. */
#define TEA_REQUIRES(...) TEA_TSA_ATTR(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (its own when empty). */
#define TEA_ACQUIRE(...) TEA_TSA_ATTR(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (its own when empty). */
#define TEA_RELEASE(...) TEA_TSA_ATTR(release_capability(__VA_ARGS__))

/** Function acquires the capability when it returns @p result. */
#define TEA_TRY_ACQUIRE(...) \
    TEA_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/** Function must be called with the listed capabilities NOT held
 *  (self-deadlock guard on public methods that lock internally). */
#define TEA_EXCLUDES(...) TEA_TSA_ATTR(locks_excluded(__VA_ARGS__))

/** Assert (runtime-checked elsewhere) that @p x is held here. */
#define TEA_ASSERT_CAPABILITY(x) TEA_TSA_ATTR(assert_capability(x))

/** Function returns a reference to the capability @p x. */
#define TEA_RETURN_CAPABILITY(x) TEA_TSA_ATTR(lock_returned(x))

/** Escape hatch: function is exempt from the analysis. Every use must
 *  carry a comment explaining why the analysis cannot see the truth. */
#define TEA_NO_THREAD_SAFETY_ANALYSIS \
    TEA_TSA_ATTR(no_thread_safety_analysis)

namespace tea {

class CondVar;

/**
 * Mutual-exclusion capability: std::mutex with acquire/release
 * annotations. Prefer MutexLock for scoped holds; lock()/unlock() are
 * for the rare split-scope patterns.
 */
class TEA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() TEA_ACQUIRE() { m_.lock(); }
    void unlock() TEA_RELEASE() { m_.unlock(); }
    bool try_lock() TEA_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar; // wait() needs the native handle
    std::mutex m_;
};

/**
 * Scoped capability: acquires the Mutex for the lifetime of the
 * object. Drop-in for std::lock_guard / std::unique_lock over the
 * blocks this codebase actually writes (no deferred/timed acquisition).
 */
class TEA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) TEA_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() TEA_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to tea::Mutex. wait() is annotated
 * TEA_REQUIRES(mu): from the analysis's point of view the capability
 * is held across the wait (the internal unlock/relock is invisible,
 * exactly as with absl::CondVar), so guarded members may be re-read in
 * the surrounding `while (!pred)` loop without warnings — and the loop
 * itself is the spurious-wakeup guard.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mu, sleep, and re-acquire before return.
     *  Call in a `while (!pred)` loop under MutexLock. */
    void wait(Mutex &mu) TEA_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the wait protocol,
        // then release the unique_lock wrapper without unlocking: the
        // caller's MutexLock still owns the hold.
        std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace tea

#endif // TEA_COMMON_SYNC_HH
