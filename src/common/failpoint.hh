/**
 * @file
 * Deterministic fault injection (named failpoints).
 *
 * A failpoint is a named seam in an I/O or concurrency path where a
 * failure can be injected on demand: a short write, a failing fsync, a
 * worker thread dying mid-replay. Each seam defines one static
 * Failpoint and asks it on every pass whether to fire; production
 * builds leave every failpoint off, so the cost per pass is one relaxed
 * atomic load. Configuring `-DTEA_FAILPOINTS_ENABLED=OFF` compiles the
 * injection sites out entirely (TEA_FAILPOINT() becomes the constant
 * `false`); the registry still links so tooling can enumerate seams.
 *
 * Triggers are deterministic by construction — `nth:N` fires on exactly
 * the Nth hit, `prob:P:S` draws from a seeded xoshiro stream — so a
 * failing fault-injection run replays bit-identically from its
 * configuration, the same property the replay engine itself guarantees
 * (DESIGN.md, "Failure model and recovery").
 *
 * Configuration comes from code (failpoints::configure) or from the
 * environment:
 *
 *   TEA_FAILPOINTS=<name>=<trigger>[@<kind>][,<name>=<trigger>...]
 *   trigger := off | always | nth:<N> | prob:<P>:<seed>
 *   kind    := eio | enospc | eagain | crash
 *              (default: the seam's own errno kind)
 *
 * The errno kinds select the errno a fired I/O seam simulates, which in
 * turn decides whether the self-healing layer treats the failure as
 * transient (retried with backoff) or permanent (degrade/contain) —
 * see common/retry.hh.
 *
 * The `crash` kind is different: a fired hit terminates the process on
 * the spot via _exit(failpoints::crashExitCode) — no unwind, no
 * destructors, no atexit — simulating the process being killed at
 * exactly that seam. The crash-consistency harness
 * (tests/test_crash_matrix.cc) forks a child per registered seam,
 * arms `always@crash`, and verifies in the parent that whatever the
 * dead child left on disk is either valid or transparently healed
 * (DESIGN.md, "Cache lifecycle and crash consistency").
 */

#ifndef TEA_COMMON_FAILPOINT_HH
#define TEA_COMMON_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/sync.hh"

namespace tea {

/** Exception a fired concurrency-seam failpoint raises (contained by
 *  the runner's per-experiment failure path, never std::terminate). */
class FailpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * One named injection seam. Define at namespace scope in the .cc that
 * owns the seam; construction registers it with the global registry.
 * All methods are thread-safe: fire() may be called concurrently from
 * replay workers.
 */
class Failpoint
{
  public:
    /**
     * @param name unique dotted name, e.g. "trace_io.fsync"
     * @param default_errno errno a fired hit simulates unless the
     *        configuration overrides the kind (e.g. EIO, ENOSPC, EAGAIN)
     */
    Failpoint(const char *name, int default_errno);

    Failpoint(const Failpoint &) = delete;
    Failpoint &operator=(const Failpoint &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Count this hit and decide whether the failure fires. Off (the
     * default) is one relaxed atomic load. Prefer the TEA_FAILPOINT()
     * macro, which compiles to `false` when injection is disabled.
     * A seam armed with the `crash` kind does not return when it
     * fires: the process _exits at the seam (see the file comment).
     */
    bool fire();

    /** errno a fired hit should simulate (configured kind or default). */
    int failErrno() const;

    /** Throw FailpointError naming this seam (concurrency seams). */
    [[noreturn]] void raise() const;

    /** Times fire() was asked since the last reset. */
    std::uint64_t hits() const;

    /** Times fire() returned true since the last reset. */
    std::uint64_t fired() const;

    /**
     * Arm from a trigger spec (`off`, `always`, `nth:3`,
     * `prob:0.25:42`, each optionally suffixed `@eio|@enospc|@eagain`).
     * @return false (with @p err set) on a malformed spec
     */
    bool configure(const std::string &spec, std::string *err);

    /** Disarm and zero the counters. */
    void reset();

  private:
    enum class Trigger : std::uint8_t { Off, Always, Nth, Prob };

    // Immutable after construction: readable without the lock.
    const std::string name_;
    const int defaultErrno_;

    std::atomic<bool> armed_{false}; ///< fast-path gate, mode below
    mutable Mutex mu_;               ///< guards everything below
    Trigger trigger_ TEA_GUARDED_BY(mu_) = Trigger::Off;
    /** fired hits _exit the process (the `crash` kind) */
    bool crash_ TEA_GUARDED_BY(mu_) = false;
    /** 1-based hit to fire on (Trigger::Nth) */
    std::uint64_t nth_ TEA_GUARDED_BY(mu_) = 0;
    /** per-hit fire probability */
    double prob_ TEA_GUARDED_BY(mu_) = 0.0;
    /** splitmix64 state for Trigger::Prob */
    std::uint64_t rngState_ TEA_GUARDED_BY(mu_) = 0;
    /** configured kind (0 = default) */
    int errno_ TEA_GUARDED_BY(mu_) = 0;
    std::uint64_t hits_ TEA_GUARDED_BY(mu_) = 0;
    std::uint64_t fired_ TEA_GUARDED_BY(mu_) = 0;
};

namespace failpoints {

/**
 * Exit status a fired `crash`-kind seam terminates the process with.
 * Distinctive on purpose: the fork-based crash harness asserts the
 * child died at the armed seam (this code) rather than cleanly (0) or
 * through an ordinary fatal path.
 */
constexpr int crashExitCode = 86;

/** Every registered failpoint, in registration order. */
std::vector<Failpoint *> all();

/** Look up a failpoint by name (nullptr when absent). */
Failpoint *find(const std::string &name);

/**
 * Arm @p name from @p spec (see Failpoint::configure). Fatal on an
 * unknown name or malformed spec: a typo in a fault-injection run must
 * not silently test nothing.
 */
void configure(const std::string &name, const std::string &spec);

/**
 * Parse a comma-separated `name=spec,...` list (the TEA_FAILPOINTS
 * format). Fatal on any malformed entry.
 */
void configureList(const std::string &list);

/** Disarm every failpoint and zero all counters. */
void resetAll();

/**
 * (Re-)apply the TEA_FAILPOINTS environment variable. Registration
 * already applies it once during static initialization; this is for
 * tests and tools that change the environment afterwards. Fatal on a
 * malformed list.
 */
void configureFromEnv();

/**
 * Fatal when a TEA_FAILPOINTS entry named a failpoint that never
 * registered. Registration order is static-init order, so unknown
 * names cannot be rejected while the list is first parsed; the runner
 * calls this before any experiment, by which point every linked seam
 * has registered — a typo'd name must not silently inject nothing.
 */
void checkEnvConsumed();

/** True when injection sites are compiled in (TEA_FAILPOINTS_ENABLED). */
constexpr bool
compiledIn()
{
#ifdef TEA_FAILPOINTS_DISABLED
    return false;
#else
    return true;
#endif
}

} // namespace failpoints

} // namespace tea

/**
 * Ask @p fp whether to inject a failure at this seam. Compiles to the
 * constant false (dead injection branch) when -DTEA_FAILPOINTS_ENABLED=OFF.
 */
#ifdef TEA_FAILPOINTS_DISABLED
#define TEA_FAILPOINT(fp) (false)
#else
#define TEA_FAILPOINT(fp) ((fp).fire())
#endif

#endif // TEA_COMMON_FAILPOINT_HH
