/**
 * @file
 * Advisory inter-process file lock (flock) for cache publication.
 *
 * Two processes simulating the same (workload, config) pair must not
 * both rewrite the same cache entry: the tmp+rename publish is atomic,
 * but concurrent rewriters waste a full simulation each and can
 * interleave quarantine moves. The publisher therefore takes an
 * exclusive flock() on a sidecar `<entry>.lock` file around the
 * validate → quarantine → simulate → publish sequence.
 *
 * Staleness is handled by the kernel: an flock dies with the holder's
 * process (or last duplicated descriptor), so a lock file left behind
 * by a crash is just an unlocked file — the next acquirer takes it over
 * immediately. The lock file itself is never deleted; it is a few bytes
 * of pid for debuggability, keyed next to the entry it guards.
 */

#ifndef TEA_COMMON_FILE_LOCK_HH
#define TEA_COMMON_FILE_LOCK_HH

#include <string>

namespace tea {

/** RAII exclusive advisory lock on a named lock file. */
class FileLock
{
  public:
    FileLock() = default;
    ~FileLock() { release(); }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /**
     * Try to take the exclusive lock on @p path, creating the file if
     * needed, polling (with short sleeps) for up to @p timeout_ms.
     * Holding a stale file from a dead process never blocks: flock
     * state does not survive its holder.
     *
     * @return true when the lock is held; false on timeout or when the
     *         lock file cannot be created (degrade, don't fail)
     */
    bool acquire(const std::string &path, unsigned timeout_ms);

    /** True while this object holds the lock. */
    bool held() const { return fd_ >= 0; }

    /** Release the lock (also done by the destructor). */
    void release();

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace tea

#endif // TEA_COMMON_FILE_LOCK_HH
