/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the simulator and the workload generators is
 * driven through this class so that every experiment is bit-reproducible
 * from its seed.
 */

#ifndef TEA_COMMON_RNG_HH
#define TEA_COMMON_RNG_HH

#include <cstdint>

namespace tea {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free Lemire scaling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Approximately normal variate (Irwin-Hall of 4 uniforms). */
    double gaussian(double mean, double stddev);

  private:
    std::uint64_t s_[4];
};

} // namespace tea

#endif // TEA_COMMON_RNG_HH
