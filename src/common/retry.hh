/**
 * @file
 * Error classification and retry with capped exponential backoff.
 *
 * The self-healing pipeline (DESIGN.md, "Failure model and recovery")
 * splits I/O failures into two classes:
 *
 *  - Transient: the operation may succeed if simply repeated — an
 *    interrupted syscall, a momentarily exhausted descriptor table, a
 *    stale NFS handle. These are retried a bounded number of times with
 *    exponential backoff and deterministic jitter.
 *  - Permanent: repeating cannot help — disk full, bad medium, missing
 *    permissions. These degrade immediately (abandon the cache entry,
 *    fall back to simulation) without wasting retry budget.
 *
 * The jitter stream is seeded, so a retried run is reproducible; the
 * delays are microseconds-scale by default because the cache lives on
 * local disk (the policy is a knob, not a constant, for tests).
 */

#ifndef TEA_COMMON_RETRY_HH
#define TEA_COMMON_RETRY_HH

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.hh"

namespace tea {

/** How the self-healing layer should react to a failed operation. */
enum class ErrorClass : std::uint8_t
{
    Transient, ///< worth retrying with backoff
    Permanent, ///< degrade immediately
};

/**
 * Classify an errno value. Unknown values are Permanent: retrying a
 * failure we cannot name risks retrying forever on a broken disk.
 */
inline ErrorClass
classifyErrno(int err)
{
    switch (err) {
      case EINTR:
      case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
      case EBUSY:
      case ENFILE:
      case EMFILE:
#ifdef ESTALE
      case ESTALE:
#endif
        return ErrorClass::Transient;
      default:
        return ErrorClass::Permanent;
    }
}

/** Bounded exponential backoff with deterministic full jitter. */
struct RetryPolicy
{
    unsigned maxAttempts = 4;       ///< total tries, including the first
    unsigned baseDelayUs = 100;     ///< backoff base (doubles per retry)
    unsigned maxDelayUs = 10000;    ///< backoff cap
    std::uint64_t jitterSeed = 0x7ea; ///< seeds the jitter stream
};

/**
 * Delay before retry number @p retry (1-based): full jitter over the
 * capped exponential window, i.e. uniform in [1, min(cap, base*2^(r-1))].
 */
inline unsigned
backoffDelayUs(const RetryPolicy &policy, unsigned retry, Rng &rng)
{
    std::uint64_t window = policy.baseDelayUs;
    for (unsigned i = 1; i < retry && window < policy.maxDelayUs; ++i)
        window *= 2;
    if (window > policy.maxDelayUs)
        window = policy.maxDelayUs;
    if (window == 0)
        return 0;
    return static_cast<unsigned>(rng.below(window) + 1);
}

/** Counters a retried call site reports up into ReplayStats. */
struct RetryStats
{
    std::uint64_t retries = 0;    ///< individual retry attempts made
    std::uint64_t recoveries = 0; ///< operations that succeeded after >= 1 retry

    void merge(const RetryStats &other)
    {
        retries += other.retries;
        recoveries += other.recoveries;
    }
};

/**
 * Run @p op until it succeeds, fails permanently, or exhausts the
 * attempt budget. @p op must return true on success and leave errno set
 * on failure (simulated failures from failpoints set errno the same
 * way). Only transient errno values are retried.
 *
 * @return true when @p op eventually succeeded
 */
template <typename Op>
bool
retryTransient(const RetryPolicy &policy, RetryStats &stats, Op &&op)
{
    Rng jitter(policy.jitterSeed);
    for (unsigned attempt = 1;; ++attempt) {
        errno = 0;
        if (op()) {
            if (attempt > 1)
                ++stats.recoveries;
            return true;
        }
        if (attempt >= policy.maxAttempts ||
            classifyErrno(errno) != ErrorClass::Transient)
            return false;
        ++stats.retries;
        const unsigned delay = backoffDelayUs(policy, attempt, jitter);
        if (delay > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(delay));
    }
}

} // namespace tea

#endif // TEA_COMMON_RETRY_HH
