/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, malformed programs) and
 * exits cleanly; panic() is for internal invariant violations and aborts.
 */

#ifndef TEA_COMMON_LOGGING_HH
#define TEA_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tea {

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Thread-safe strerror: message for @p err via strerror_r into a
 * private buffer. std::strerror may return a pointer into static
 * storage, which races when replay workers report I/O errors
 * concurrently (clang-tidy concurrency-mt-unsafe).
 */
std::string errnoString(int err);

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

} // namespace tea

/** Terminate due to a user error (bad config, bad input). */
#define tea_fatal(...) \
    ::tea::fatalImpl(__FILE__, __LINE__, ::tea::strprintf(__VA_ARGS__))

/** Terminate due to an internal bug (invariant violation). */
#define tea_panic(...) \
    ::tea::panicImpl(__FILE__, __LINE__, ::tea::strprintf(__VA_ARGS__))

/** Emit a non-fatal warning. */
#define tea_warn(...) \
    ::tea::warnImpl(__FILE__, __LINE__, ::tea::strprintf(__VA_ARGS__))

/** Internal invariant check; active in all build types. */
#define tea_assert(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::tea::panicImpl(__FILE__, __LINE__,                        \
                             "assertion failed: " #cond " " +          \
                                 ::tea::strprintf("" __VA_ARGS__));    \
        }                                                               \
    } while (0)

#endif // TEA_COMMON_LOGGING_HH
