#include "common/fingerprint.hh"

#include <array>

#include "common/logging.hh"

namespace tea {

namespace {

/** CRC-32 lookup table for polynomial 0xEDB88320, built once. */
std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t bytes)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < bytes; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
hashHex(std::uint64_t h)
{
    return strprintf("%016llx", static_cast<unsigned long long>(h));
}

} // namespace tea
