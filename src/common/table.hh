/**
 * @file
 * ASCII table and bar-chart rendering used by every bench binary to print
 * the rows/series the paper's tables and figures report.
 */

#ifndef TEA_COMMON_TABLE_HH
#define TEA_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace tea {

/** Column-aligned ASCII table builder. */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (may be ragged; short rows are padded). */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Render the table with aligned columns. */
    std::string render() const;

    /** Convenience: render directly to stdout. */
    void print() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isSeparator = false;
    };

    std::vector<Row> rows_;
    bool hasHeader_ = false;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 2);

/** Format a value as a percentage string, e.g. "55.6%". */
std::string fmtPercent(double fraction, int precision = 1);

/** Format a count with thousands separators. */
std::string fmtCount(std::uint64_t v);

/**
 * Horizontal ASCII bar scaled to @p width characters at @p fraction of
 * @p full_scale; used to render figure-style bar charts in benches.
 */
std::string bar(double value, double full_scale, int width = 40);

/**
 * Render a stacked-bar row: one character class per labelled segment.
 * Segments use the characters '#', '=', '+', '-', 'o', '*', '.', '%', '@'
 * cyclically (one per component), scaled so the whole row is
 * @p width characters at @p full_scale.
 */
std::string stackedBar(const std::vector<double> &segments,
                       double full_scale, int width = 50);

} // namespace tea

#endif // TEA_COMMON_TABLE_HH
