#include "common/failpoint.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "common/logging.hh"

namespace tea {

namespace {

/**
 * Registry of every defined failpoint. Failpoint objects are
 * namespace-scope statics in the .cc files that own the seams, so
 * registration happens during static initialization; the Meyers
 * singleton sidesteps initialization-order hazards. The registry also
 * holds the TEA_FAILPOINTS specs parsed once at first registration, so
 * a seam defined in any translation unit picks up its environment
 * configuration no matter the link order.
 */
class Registry
{
  public:
    static Registry &instance()
    {
        static Registry r;
        return r;
    }

    void add(Failpoint *fp)
    {
        MutexLock lk(mu_);
        for (const Failpoint *other : points_) {
            if (other->name() == fp->name())
                tea_panic("duplicate failpoint name '%s'",
                          fp->name().c_str());
        }
        points_.push_back(fp);
        // Apply (and consume) any environment spec parked for this
        // name; whatever is still parked once the process starts doing
        // real work names no registered seam (see failOnUnconsumedEnv).
        for (auto it = envSpecs_.begin(); it != envSpecs_.end();) {
            if (it->first != fp->name()) {
                ++it;
                continue;
            }
            std::string err;
            if (!fp->configure(it->second, &err))
                tea_fatal("TEA_FAILPOINTS: %s: %s", it->first.c_str(),
                          err.c_str());
            it = envSpecs_.erase(it);
        }
    }

    std::vector<Failpoint *> all()
    {
        MutexLock lk(mu_);
        return points_;
    }

    Failpoint *find(const std::string &name)
    {
        MutexLock lk(mu_);
        for (Failpoint *fp : points_) {
            if (fp->name() == name)
                return fp;
        }
        return nullptr;
    }

    /** Parse `name=spec,...`, arming known names and parking the rest
     *  for failpoints registered later in static initialization. */
    void applyList(const std::string &list)
    {
        std::size_t at = 0;
        while (at < list.size()) {
            std::size_t comma = list.find(',', at);
            if (comma == std::string::npos)
                comma = list.size();
            std::string item = list.substr(at, comma - at);
            at = comma + 1;
            if (item.empty())
                continue;
            std::size_t eq = item.find('=');
            if (eq == std::string::npos || eq == 0)
                tea_fatal("TEA_FAILPOINTS: malformed entry '%s' "
                          "(want name=trigger[@kind])",
                          item.c_str());
            std::string name = item.substr(0, eq);
            std::string spec = item.substr(eq + 1);
            Failpoint *fp = find(name);
            if (fp) {
                std::string err;
                if (!fp->configure(spec, &err))
                    tea_fatal("TEA_FAILPOINTS: %s: %s", name.c_str(),
                              err.c_str());
            } else {
                MutexLock lk(mu_);
                envSpecs_.emplace_back(std::move(name), std::move(spec));
            }
        }
    }

    void applyEnv()
    {
        if (const char *env = std::getenv("TEA_FAILPOINTS");
            env != nullptr && *env != '\0')
            applyList(env);
    }

    void failOnUnconsumedEnv()
    {
        MutexLock lk(mu_);
        if (!envSpecs_.empty())
            tea_fatal("TEA_FAILPOINTS: unknown failpoint '%s'",
                      envSpecs_.front().first.c_str());
    }

  private:
    Registry() { applyEnv(); }

    Mutex mu_;
    std::vector<Failpoint *> points_ TEA_GUARDED_BY(mu_);
    std::vector<std::pair<std::string, std::string>>
        envSpecs_ TEA_GUARDED_BY(mu_);
};

/** splitmix64 step: the deterministic per-hit draw for prob triggers. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Failpoint::Failpoint(const char *name, int default_errno)
    : name_(name), defaultErrno_(default_errno)
{
    Registry::instance().add(this);
}

bool
Failpoint::fire()
{
    // relaxed: the gate only decides whether to take the slow path; a
    // stale read costs at most one extra (or one missed) locked check
    // right around (re)configuration, and every value the slow path
    // reads is ordered by the mutex acquire below.
    if (!armed_.load(std::memory_order_relaxed))
        return false;
    MutexLock lk(mu_);
    ++hits_;
    bool fires = false;
    switch (trigger_) {
      case Trigger::Off:
        break;
      case Trigger::Always:
        fires = true;
        break;
      case Trigger::Nth:
        fires = hits_ == nth_;
        break;
      case Trigger::Prob: {
        // 53-bit uniform in [0, 1) from the seeded stream.
        double u = static_cast<double>(splitmix64(rngState_) >> 11) *
                   0x1.0p-53;
        fires = u < prob_;
        break;
      }
    }
    if (fires) {
        ++fired_;
        if (crash_) {
            // The `crash` kind: die at the seam the way a SIGKILL (or a
            // power cut, as far as this process can model one) would —
            // no unwind, no destructors, no atexit handlers, no stdio
            // flush. Whatever state is on disk right now is what the
            // next process finds.
            ::_exit(failpoints::crashExitCode);
        }
    }
    return fires;
}

int
Failpoint::failErrno() const
{
    MutexLock lk(mu_);
    return errno_ != 0 ? errno_ : defaultErrno_;
}

void
Failpoint::raise() const
{
    throw FailpointError(
        strprintf("failpoint '%s' fired", name_.c_str()));
}

std::uint64_t
Failpoint::hits() const
{
    MutexLock lk(mu_);
    return hits_;
}

std::uint64_t
Failpoint::fired() const
{
    MutexLock lk(mu_);
    return fired_;
}

bool
Failpoint::configure(const std::string &spec, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::string trigger = spec;
    int kind = 0;
    bool crash = false;
    if (std::size_t at = spec.rfind('@'); at != std::string::npos) {
        std::string kind_name = spec.substr(at + 1);
        trigger = spec.substr(0, at);
        if (kind_name == "eio")
            kind = EIO;
        else if (kind_name == "enospc")
            kind = ENOSPC;
        else if (kind_name == "eagain")
            kind = EAGAIN;
        else if (kind_name == "crash")
            crash = true;
        else
            return fail("unknown kind '" + kind_name +
                        "' (want eio|enospc|eagain|crash)");
    }

    Trigger mode = Trigger::Off;
    std::uint64_t nth = 0;
    double prob = 0.0;
    std::uint64_t seed = 0;
    if (trigger == "off") {
        mode = Trigger::Off;
    } else if (trigger == "always") {
        mode = Trigger::Always;
    } else if (trigger.rfind("nth:", 0) == 0) {
        const std::string arg = trigger.substr(4);
        char *end = nullptr;
        nth = std::strtoull(arg.c_str(), &end, 10);
        if (arg.empty() || *end != '\0' || nth == 0)
            return fail("nth wants a positive integer, got '" + arg +
                        "'");
        mode = Trigger::Nth;
    } else if (trigger.rfind("prob:", 0) == 0) {
        const std::string rest = trigger.substr(5);
        std::size_t colon = rest.find(':');
        if (colon == std::string::npos)
            return fail("prob wants prob:<P>:<seed>, got '" + trigger +
                        "'");
        char *end = nullptr;
        prob = std::strtod(rest.c_str(), &end);
        if (end != rest.c_str() + colon || prob < 0.0 || prob > 1.0)
            return fail("prob wants P in [0,1], got '" +
                        rest.substr(0, colon) + "'");
        const std::string seed_s = rest.substr(colon + 1);
        seed = std::strtoull(seed_s.c_str(), &end, 10);
        if (seed_s.empty() || *end != '\0')
            return fail("prob wants an integer seed, got '" + seed_s +
                        "'");
        mode = Trigger::Prob;
    } else {
        return fail("unknown trigger '" + trigger +
                    "' (want off|always|nth:<N>|prob:<P>:<seed>)");
    }

    MutexLock lk(mu_);
    trigger_ = mode;
    crash_ = crash;
    nth_ = nth;
    prob_ = prob;
    rngState_ = seed;
    errno_ = kind;
    hits_ = 0;
    fired_ = 0;
    // relaxed: publishes only the fast-path hint; the trigger state it
    // hints at is handed over by the mutex (see fire()).
    armed_.store(mode != Trigger::Off, std::memory_order_relaxed);
    return true;
}

void
Failpoint::reset()
{
    MutexLock lk(mu_);
    trigger_ = Trigger::Off;
    crash_ = false;
    nth_ = 0;
    prob_ = 0.0;
    rngState_ = 0;
    errno_ = 0;
    hits_ = 0;
    fired_ = 0;
    // relaxed: same fast-path-hint contract as configure() above.
    armed_.store(false, std::memory_order_relaxed);
}

namespace failpoints {

std::vector<Failpoint *>
all()
{
    return Registry::instance().all();
}

Failpoint *
find(const std::string &name)
{
    return Registry::instance().find(name);
}

void
configure(const std::string &name, const std::string &spec)
{
    Failpoint *fp = Registry::instance().find(name);
    if (!fp)
        tea_fatal("unknown failpoint '%s'", name.c_str());
    std::string err;
    if (!fp->configure(spec, &err))
        tea_fatal("failpoint %s: %s", name.c_str(), err.c_str());
}

void
configureList(const std::string &list)
{
    Registry::instance().applyList(list);
}

void
resetAll()
{
    for (Failpoint *fp : Registry::instance().all())
        fp->reset();
}

void
configureFromEnv()
{
    Registry::instance().applyEnv();
}

void
checkEnvConsumed()
{
    Registry::instance().failOnUnconsumedEnv();
}

} // namespace failpoints

} // namespace tea
