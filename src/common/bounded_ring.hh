/**
 * @file
 * Fixed-capacity FIFO ring over contiguous storage.
 *
 * The core's per-cycle queues (fetch buffer, load/store queues) are
 * bounded by configuration and popped strictly from the front, yet were
 * modelled as std::deque — a chunked allocator whose iteration and
 * pop_front touch cold metadata on the hottest simulator paths. This
 * ring keeps the same program-order semantics (push_back / pop_front /
 * indexed scan from the front) in one pre-reserved allocation: capacity
 * is rounded to a power of two so indexing is a mask, elements are
 * never reallocated or shifted, and pop_front is a head-index bump that
 * leaves the slot intact for reuse (preserving any heap capacity the
 * element type owns, e.g. a reused vector member).
 *
 * Not a general-purpose container: capacity is fixed after reserve(),
 * overflow is a programming error (tea_assert), and iteration is by
 * index — which is how every scan in the core is written.
 */

#ifndef TEA_COMMON_BOUNDED_RING_HH
#define TEA_COMMON_BOUNDED_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace tea {

template <typename T>
class BoundedRing
{
  public:
    BoundedRing() = default;

    /**
     * Fix the capacity to at least @p cap elements (rounded up to a
     * power of two) and allocate the backing storage once. Must be
     * called before the first push_back; calling again is only legal
     * while empty.
     */
    void reserve(std::size_t cap)
    {
        tea_assert(count_ == 0, "BoundedRing::reserve on non-empty ring");
        std::size_t n = 1;
        while (n < cap)
            n <<= 1;
        buf_.resize(n);
        mask_ = n - 1;
        head_ = 0;
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }

    /** Element @p i positions behind the front (0 == front). */
    T &operator[](std::size_t i)
    {
        tea_assert(i < count_, "BoundedRing index %zu out of range", i);
        return buf_[(head_ + i) & mask_];
    }
    const T &operator[](std::size_t i) const
    {
        tea_assert(i < count_, "BoundedRing index %zu out of range", i);
        return buf_[(head_ + i) & mask_];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[count_ - 1]; }
    const T &back() const { return (*this)[count_ - 1]; }

    void push_back(T v)
    {
        tea_assert(count_ < buf_.size(), "BoundedRing overflow (cap %zu)",
                   buf_.size());
        buf_[(head_ + count_) & mask_] = std::move(v);
        ++count_;
    }

    void pop_front()
    {
        tea_assert(count_ > 0, "BoundedRing::pop_front on empty ring");
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::vector<T> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace tea

#endif // TEA_COMMON_BOUNDED_RING_HH
