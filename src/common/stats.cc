#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tea {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    tea_assert(p >= 0.0 && p <= 100.0, "percentile %f out of range", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    tea_assert(xs.size() == ys.size(), "pearson: size mismatch %zu vs %zu",
               xs.size(), ys.size());
    std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

BoxplotSummary
boxplot(std::vector<double> xs)
{
    BoxplotSummary s;
    if (xs.empty())
        return s;
    std::sort(xs.begin(), xs.end());
    s.n = xs.size();
    s.min = xs.front();
    s.max = xs.back();
    s.q1 = percentile(xs, 25.0);
    s.median = percentile(xs, 50.0);
    s.q3 = percentile(xs, 75.0);
    return s;
}

Histogram::Histogram(std::uint64_t max_value)
    : bins_(max_value + 2, 0), maxValue_(max_value)
{
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx = value > maxValue_ ? bins_.size() - 1
                                        : static_cast<std::size_t>(value);
    bins_[idx] += weight;
    count_ += weight;
    sum_ += static_cast<unsigned __int128>(
                std::min<std::uint64_t>(value, maxValue_)) *
            weight;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(static_cast<double>(sum_)) /
           static_cast<double>(count_);
}

std::uint64_t
Histogram::quantile(double f) const
{
    if (count_ == 0)
        return 0;
    auto target = static_cast<std::uint64_t>(
        f * static_cast<double>(count_));
    if (target == 0)
        target = 1;
    std::uint64_t acc = 0;
    for (std::size_t v = 0; v < bins_.size(); ++v) {
        acc += bins_[v];
        if (acc >= target)
            return v == bins_.size() - 1 ? maxValue_ + 1
                                         : static_cast<std::uint64_t>(v);
    }
    return maxValue_ + 1;
}

std::string
ReplayStats::render() const
{
    std::string out;
    const char *source = cacheHit ? "trace cache" : "simulation";
    if (!parallel()) {
        out += strprintf("replay: serial in-process path from %s "
                         "(%.3f s total)\n",
                         source, totalSeconds);
        out += strprintf("  simulate %.3f s, decode %.3f s, replay %.3f s\n",
                         simulateSeconds, decodeSeconds, replaySeconds);
    } else {
        out += strprintf(
            "replay: %u worker(s) from %s, %llu chunk(s), %llu event(s), "
            "%llu producer queue-full stall(s)\n",
            threads, source,
            static_cast<unsigned long long>(chunksProduced),
            static_cast<unsigned long long>(eventsCaptured),
            static_cast<unsigned long long>(queueFullStalls));
        out += strprintf(
            "  simulate %.3f s, decode %.3f s, replay %.3f s, "
            "total %.3f s\n",
            simulateSeconds, decodeSeconds, replaySeconds, totalSeconds);
    }
    if (simCycles > 0 && simulateSeconds > 0.0) {
        out += strprintf(
            "  simulate throughput: %.2f Mcycles/s, %.2f Mevents/s\n",
            simCyclesPerSecond() / 1e6, simEventsPerSecond() / 1e6);
    }
    if (simParallel) {
        out += strprintf(
            "  time-parallel: %llu interval(s), %llu warmup cycle(s), "
            "%llu convergence retry(s), %.1f%% parallel\n",
            static_cast<unsigned long long>(simIntervals),
            static_cast<unsigned long long>(simWarmupCycles),
            static_cast<unsigned long long>(simConvergenceRetries),
            simParallelEfficiency * 100.0);
    }
    if (cacheHit || cacheStored)
        out += strprintf("  cache: %s, %llu byte(s) on disk\n",
                         cacheHit ? "hit" : "miss (entry stored)",
                         static_cast<unsigned long long>(cacheBytes));
    if (ioRetries || ioRecoveries || quarantined || workerFailures ||
        degradedExperiments) {
        out += strprintf(
            "  fault: %llu retry(s), %llu recovery(s), %llu "
            "quarantined, %u worker failure(s), %u degraded "
            "experiment(s)\n",
            static_cast<unsigned long long>(ioRetries),
            static_cast<unsigned long long>(ioRecoveries),
            static_cast<unsigned long long>(quarantined),
            workerFailures, degradedExperiments);
    }
    if (cacheEvictions || janitorRemovals || lockDegrades ||
        cacheAdmissionDenied) {
        out += strprintf(
            "  janitor: %llu eviction(s) (%llu byte(s)), %llu debris "
            "removal(s), %u lock degrade(s)%s\n",
            static_cast<unsigned long long>(cacheEvictions),
            static_cast<unsigned long long>(cacheEvictedBytes),
            static_cast<unsigned long long>(janitorRemovals),
            lockDegrades,
            cacheAdmissionDenied ? ", admission denied" : "");
    }
    if (!parallel())
        return out;
    for (const ReplayWorkerStats &w : workers) {
        out += strprintf(
            "  worker %u: %u group(s), %llu chunk(s), %llu event(s), "
            "%llu cycle(s), %llu empty-wait(s), %.2f Mcycles/s\n",
            w.workerId, w.sinkGroups,
            static_cast<unsigned long long>(w.chunksConsumed),
            static_cast<unsigned long long>(w.eventsReplayed),
            static_cast<unsigned long long>(w.cyclesReplayed),
            static_cast<unsigned long long>(w.queueEmptyWaits),
            w.cyclesPerSecond() / 1e6);
        if (!w.error.empty())
            out += strprintf("  worker %u: FAILED: %s\n", w.workerId,
                             w.error.c_str());
    }
    return out;
}

std::string
ReplayStats::renderLine() const
{
    std::string out = strprintf("%.2f s total", totalSeconds);
    if (simCycles > 0 && simulateSeconds > 0.0) {
        out += strprintf(
            " (simulate %.2f s, %.2f Mcycles/s, %.2f Mevents/s)",
            simulateSeconds, simCyclesPerSecond() / 1e6,
            simEventsPerSecond() / 1e6);
    }
    if (simParallel)
        out += strprintf(" [time-parallel x%llu, %.0f%%]",
                         static_cast<unsigned long long>(simIntervals),
                         simParallelEfficiency * 100.0);
    out += cacheHit ? " [cache hit]" : "";
    return out;
}

} // namespace tea
