#include "core/memory_system.hh"

#include <algorithm>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "isa/memory.hh"

namespace tea {

MemorySystem::MemorySystem(const CoreConfig &cfg)
    : cfg_(cfg),
      ownedUncore_(std::make_unique<Uncore>(cfg)),
      uncore_(ownedUncore_.get()),
      l1i_(cfg.l1i, "l1i"),
      l1d_(cfg.l1d, "l1d"),
      l1dMshrs_(cfg.l1d.mshrs),
      l1iMshrs_(cfg.l1i.mshrs),
      dtlb_(cfg.tlb, uncore_->l2Tlb(), "dtlb"),
      itlb_(cfg.tlb, uncore_->l2Tlb(), "itlb")
{
}

MemorySystem::MemorySystem(const CoreConfig &cfg, Uncore &uncore)
    : cfg_(cfg),
      uncore_(&uncore),
      l1i_(cfg.l1i, "l1i"),
      l1d_(cfg.l1d, "l1d"),
      l1dMshrs_(cfg.l1d.mshrs),
      l1iMshrs_(cfg.l1i.mshrs),
      dtlb_(cfg.tlb, uncore_->l2Tlb(), "dtlb"),
      itlb_(cfg.tlb, uncore_->l2Tlb(), "itlb")
{
}

// tea_lint: hot
MemAccessResult
MemorySystem::l1dAccess(Addr line, Cycle now, bool is_store, bool demand)
{
    MemAccessResult res;

    // A line with a fill in flight is not yet usable even though its tag
    // has been installed; check the MSHRs first.
    Cycle merged = l1dMshrs_.outstandingFill(line, now);
    if (merged != invalidCycle) {
        res.l1Miss = true;
        res.done = std::max(merged, now + cfg_.l1d.hitLatency);
        if (is_store)
            l1d_.markDirty(line);
        return res;
    }

    if (l1d_.access(line)) {
        res.done = now + cfg_.l1d.hitLatency;
        if (is_store)
            l1d_.markDirty(line);
        return res;
    }

    res.l1Miss = true;
    Cycle alloc = l1dMshrs_.allocatableAt(now);
    Cycle begin = std::max(now + cfg_.l1d.hitLatency, alloc);
    Cycle fill = uncore_->llcAccess(line, begin, res.llcMiss);
    l1dMshrs_.allocate(line, fill);
    Eviction ev = l1d_.insert(line, is_store);
    uncore_->writebackToLlc(ev);
    res.done = fill;

    // Next-line prefetcher: on a demand miss, pull the next line from the
    // LLC into the L1D (LLC-to-L1 only; lines absent from the LLC are not
    // prefetched -- see DESIGN.md).
    if (demand && cfg_.nextLinePrefetcher) {
        Addr next = line + lineBytes;
        if (uncore_->llcContains(next) && !l1d_.contains(next) &&
            l1dMshrs_.outstandingFill(next, now) == invalidCycle &&
            l1dMshrs_.allocatableAt(now) == now) {
            bool dummy = false;
            Cycle pf_fill = uncore_->llcAccess(next, now, dummy);
            l1dMshrs_.allocate(next, pf_fill);
            Eviction pf_ev = l1d_.insert(next, false);
            uncore_->writebackToLlc(pf_ev);
        }
    }
    return res;
}

MemAccessResult
MemorySystem::load(Addr addr, Cycle now)
{
    return l1dAccess(lineOf(addr), now, false, true);
}

MemAccessResult
MemorySystem::storeDrain(Addr addr, Cycle now)
{
    return l1dAccess(lineOf(addr), now, true, false);
}

MemAccessResult
MemorySystem::prefetch(Addr addr, Cycle now)
{
    return l1dAccess(lineOf(addr), now, false, false);
}

// tea_lint: hot
IFetchResult
MemorySystem::ifetch(Addr pc, Cycle now)
{
    IFetchResult res;
    TlbResult tlb = itlb_.translate(pc);
    res.itlbMiss = tlb.l1Miss;
    Cycle start = now + tlb.extraLatency;

    Addr line = lineOf(pc);
    Cycle merged = l1iMshrs_.outstandingFill(line, start);
    if (merged != invalidCycle) {
        res.l1Miss = true;
        res.done = std::max(merged, start + cfg_.l1i.hitLatency);
        return res;
    }
    if (l1i_.access(line)) {
        res.done = start + cfg_.l1i.hitLatency;
        return res;
    }
    res.l1Miss = true;
    bool llc_miss = false;
    Cycle alloc = l1iMshrs_.allocatableAt(start);
    Cycle begin = std::max(start + cfg_.l1i.hitLatency, alloc);
    Cycle fill = uncore_->llcAccess(line, begin, llc_miss);
    l1iMshrs_.allocate(line, fill);
    l1i_.insert(line, false);
    res.done = fill;
    return res;
}

void
MemorySystem::warmReplay(const std::vector<Addr> &code_lines,
                         const std::vector<WarmAccess> &accesses)
{
    // Wide spacing between replayed accesses: each one completes (no
    // MSHR merging, no DRAM bandwidth backpressure) before the next
    // starts, so the replay reduces to the pure demand stream's effect
    // on tags and LRU order.
    constexpr Cycle stride = 1024;
    Cycle now = 0;
    for (Addr line : code_lines) {
        ifetch(line, now);
        now += stride;
    }
    for (const WarmAccess &a : accesses) {
        switch (a.kind) {
        case WarmAccess::Load:
            dataTranslate(a.addr);
            load(a.addr, now);
            break;
        case WarmAccess::Store:
            dataTranslate(a.addr);
            storeDrain(a.addr, now);
            break;
        default:
            prefetch(a.addr, now);
            break;
        }
        now += stride;
    }
    resetTransientTiming();
}

void
MemorySystem::installCodeLines(const std::vector<Addr> &lines)
{
    for (Addr line : lines) {
        itlb_.translate(line);
        l1i_.insert(lineOf(line), false);
    }
}

void
MemorySystem::installL2Tlb(
    const std::vector<std::pair<std::uint32_t, Addr>> &slots)
{
    uncore_->l2Tlb().installSnapshot(slots);
}

void
MemorySystem::resetTransientTiming()
{
    l1dMshrs_.clear();
    l1iMshrs_.clear();
    uncore_->resetTransientTiming();
}

std::vector<std::pair<const char *, std::uint64_t>>
MemorySystem::fingerprintParts(Cycle base) const
{
    std::vector<std::pair<const char *, std::uint64_t>> out;
    const auto part = [&out](const char *name, auto &&fill) {
        Fnv1a h;
        fill(h);
        out.emplace_back(name, h.value());
    };
    part("l1i", [this](Fnv1a &h) { l1i_.fingerprintState(h); });
    part("l1d", [this](Fnv1a &h) { l1d_.fingerprintState(h); });
    part("l1i-mshrs",
         [this, base](Fnv1a &h) { l1iMshrs_.fingerprintState(h, base); });
    part("l1d-mshrs",
         [this, base](Fnv1a &h) { l1dMshrs_.fingerprintState(h, base); });
    part("dtlb", [this](Fnv1a &h) { dtlb_.l1().fingerprintState(h); });
    part("itlb", [this](Fnv1a &h) { itlb_.l1().fingerprintState(h); });
    uncore_->fingerprintParts(base, out);
    return out;
}

void
MemorySystem::fingerprintState(Fnv1a &h, Cycle base) const
{
    l1i_.fingerprintState(h);
    l1d_.fingerprintState(h);
    l1iMshrs_.fingerprintState(h, base);
    l1dMshrs_.fingerprintState(h, base);
    dtlb_.l1().fingerprintState(h);
    itlb_.l1().fingerprintState(h);
    uncore_->fingerprintState(h, base);
}

} // namespace tea
