#include "core/trace_codec.hh"

#include <array>
#include <cstring>
#include <tuple>

#include "common/fingerprint.hh"
#include "common/logging.hh"

namespace tea {

namespace {

/**
 * The field streams of one frame, in on-disk order. Each stream holds
 * one field of one event kind across the whole chunk (SoA), so runs of
 * similar values sit together and delta-varint coding stays tight.
 */
enum Stream : unsigned
{
    CycDelta = 0, ///< CycleRecord.cycle (zigzag delta)
    CycFlags,     ///< packed state/numCommitted/headValid/lastValid
    HeadSeq,      ///< headSeq, present iff headValid (zigzag delta)
    HeadPc,       ///< headPc, present iff headValid (zigzag delta)
    LastPc,       ///< lastPc, present iff lastValid (zigzag delta)
    LastPsv,      ///< lastPsv bits, present iff lastValid (varint)
    ComSeq,       ///< committed[i].seq (zigzag delta)
    ComPc,        ///< committed[i].pc (zigzag delta)
    ComPsv,       ///< committed[i].psv bits (varint)
    DispSeq,      ///< dispatch seq (zigzag delta)
    DispPc,       ///< dispatch pc (zigzag delta)
    DispCycle,    ///< dispatch cycle (zigzag delta)
    FetchSeq,
    FetchPc,
    FetchCycle,
    RetSeq,
    RetPc,
    RetPsv,
    RetCycle,
    EndCycle, ///< final cycle of End events (varint)
    NumStreams,
};

// CycFlags packing: 2 bits state, 4 bits numCommitted (<= 8), then the
// two validity flags.
constexpr unsigned flagStateShift = 6;
constexpr unsigned flagCountShift = 2;
constexpr unsigned flagHeadValid = 0x2;
constexpr unsigned flagLastValid = 0x1;

// Frame-layout lock (enforced by tea_lint's codec-version-lock rule):
// the stream directory, the flag packing and the frame header are the
// on-disk contract. Changing any of them invalidates every cached
// trace, so the change must come with a traceCodecVersion bump — update
// the pinned values here in the same commit that bumps the version.
static_assert(traceCodecVersion == 1,
              "codec version changed: re-pin the layout asserts below");
static_assert(sizeof(ChunkFrameHeader) == 16,
              "ChunkFrameHeader layout changed: bump traceCodecVersion");
static_assert(NumStreams == 20,
              "stream directory changed: bump traceCodecVersion");
static_assert(static_cast<unsigned>(TraceEventKind::End) == 4,
              "trace event kinds changed: bump traceCodecVersion");
static_assert(flagStateShift == 6 && flagCountShift == 2 &&
                  flagHeadValid == 0x2 && flagLastValid == 0x1,
              "CycFlags packing changed: bump traceCodecVersion");
static_assert(std::tuple_size_v<decltype(CycleRecord{}.committed)> <=
                  0xF,
              "commit snapshot exceeds the 4-bit CycFlags count field");

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t d)
{
    return (static_cast<std::uint64_t>(d) << 1) ^
           static_cast<std::uint64_t>(d >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

/** Per-stream delta encoder state (reset at every frame). */
struct DeltaState
{
    std::uint64_t prev = 0;

    std::uint64_t
    encode(std::uint64_t v)
    {
        std::uint64_t z = zigzag(static_cast<std::int64_t>(v - prev));
        prev = v;
        return z;
    }

    std::uint64_t
    decode(std::uint64_t z)
    {
        prev += static_cast<std::uint64_t>(unzigzag(z));
        return prev;
    }
};

/** Bounds-checked reader over one stream of a mapped frame. */
struct Cursor
{
    const std::uint8_t *p = nullptr;
    const std::uint8_t *end = nullptr;

    bool exhausted() const { return p == end; }

    bool
    readByte(std::uint8_t *v)
    {
        if (p >= end)
            return false;
        *v = *p++;
        return true;
    }

    bool
    readVarint(std::uint64_t *v)
    {
        std::uint64_t out = 0;
        unsigned shift = 0;
        while (p < end && shift < 64) {
            std::uint8_t b = *p++;
            out |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
            if (!(b & 0x80u)) {
                *v = out;
                return true;
            }
            shift += 7;
        }
        return false; // truncated or > 64-bit varint
    }
};

bool
fail(std::string *why, const char *msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace

void
encodeChunk(const TraceChunk &chunk, std::vector<std::uint8_t> &out)
{
    std::array<std::vector<std::uint8_t>, NumStreams> streams;
    DeltaState cycD, headSeqD, headPcD, lastPcD, comSeqD, comPcD;
    DeltaState dispSeqD, dispPcD, dispCycD, fetchSeqD, fetchPcD,
        fetchCycD, retSeqD, retPcD, retCycD;

    std::vector<std::uint8_t> kinds;
    kinds.reserve(chunk.events.size());

    for (const TraceEvent &ev : chunk.events) {
        kinds.push_back(static_cast<std::uint8_t>(ev.kind));
        switch (ev.kind) {
          case TraceEventKind::Cycle: {
            const CycleRecord &r = ev.p.cycle;
            tea_assert(r.numCommitted <= r.committed.size(),
                       "numCommitted %u overflows the committed array",
                       r.numCommitted);
            putVarint(streams[CycDelta], cycD.encode(r.cycle));
            std::uint8_t flags = static_cast<std::uint8_t>(
                (static_cast<unsigned>(r.state) << flagStateShift) |
                (static_cast<unsigned>(r.numCommitted)
                 << flagCountShift) |
                (r.headValid ? flagHeadValid : 0u) |
                (r.lastValid ? flagLastValid : 0u));
            streams[CycFlags].push_back(flags);
            if (r.headValid) {
                putVarint(streams[HeadSeq], headSeqD.encode(r.headSeq));
                putVarint(streams[HeadPc], headPcD.encode(r.headPc));
            }
            if (r.lastValid) {
                putVarint(streams[LastPc], lastPcD.encode(r.lastPc));
                putVarint(streams[LastPsv], r.lastPsv.bits());
            }
            for (unsigned i = 0; i < r.numCommitted; ++i) {
                const CommittedUop &c = r.committed[i];
                putVarint(streams[ComSeq], comSeqD.encode(c.seq));
                putVarint(streams[ComPc], comPcD.encode(c.pc));
                putVarint(streams[ComPsv], c.psv.bits());
            }
            break;
          }
          case TraceEventKind::Dispatch: {
            const UopRecord &r = ev.p.uop;
            putVarint(streams[DispSeq], dispSeqD.encode(r.seq));
            putVarint(streams[DispPc], dispPcD.encode(r.pc));
            putVarint(streams[DispCycle], dispCycD.encode(r.cycle));
            break;
          }
          case TraceEventKind::Fetch: {
            const UopRecord &r = ev.p.uop;
            putVarint(streams[FetchSeq], fetchSeqD.encode(r.seq));
            putVarint(streams[FetchPc], fetchPcD.encode(r.pc));
            putVarint(streams[FetchCycle], fetchCycD.encode(r.cycle));
            break;
          }
          case TraceEventKind::Retire: {
            const RetireRecord &r = ev.p.retire;
            putVarint(streams[RetSeq], retSeqD.encode(r.seq));
            putVarint(streams[RetPc], retPcD.encode(r.pc));
            putVarint(streams[RetPsv], r.psv.bits());
            putVarint(streams[RetCycle], retCycD.encode(r.cycle));
            break;
          }
          case TraceEventKind::End:
            putVarint(streams[EndCycle], ev.p.end);
            break;
        }
    }

    // Assemble the payload: kinds, then length-prefixed streams.
    std::vector<std::uint8_t> payload;
    std::size_t payload_guess = kinds.size();
    for (const auto &s : streams)
        payload_guess += s.size() + 4;
    payload.reserve(payload_guess);
    payload.insert(payload.end(), kinds.begin(), kinds.end());
    for (const auto &s : streams) {
        putVarint(payload, s.size());
        payload.insert(payload.end(), s.begin(), s.end());
    }

    ChunkFrameHeader hdr;
    hdr.frameBytes = static_cast<std::uint32_t>(sizeof(ChunkFrameHeader) +
                                                payload.size());
    hdr.eventCount = static_cast<std::uint32_t>(chunk.events.size());
    hdr.cycleRecords = static_cast<std::uint32_t>(chunk.cycleRecords);
    hdr.payloadCrc = crc32(0, payload.data(), payload.size());
    tea_assert(hdr.frameBytes <= maxChunkFrameBytes,
               "trace chunk frame exceeds %u bytes", maxChunkFrameBytes);

    std::size_t at = out.size();
    out.resize(at + sizeof(hdr) + payload.size());
    std::memcpy(out.data() + at, &hdr, sizeof(hdr));
    std::memcpy(out.data() + at + sizeof(hdr), payload.data(),
                payload.size());
}

bool
peekFrame(const std::uint8_t *data, std::size_t avail,
          ChunkFrameHeader *header, std::string *why)
{
    if (avail < sizeof(ChunkFrameHeader))
        return fail(why, "truncated chunk frame header");
    ChunkFrameHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.frameBytes < sizeof(ChunkFrameHeader) ||
        hdr.frameBytes > maxChunkFrameBytes)
        return fail(why, "implausible chunk frame size");
    if (hdr.frameBytes > avail)
        return fail(why, "chunk frame extends past end of file");
    if (hdr.cycleRecords > hdr.eventCount ||
        hdr.eventCount > hdr.frameBytes)
        return fail(why, "implausible chunk event counts");
    *header = hdr;
    return true;
}

bool
verifyFrame(const std::uint8_t *data, std::size_t avail, std::string *why)
{
    ChunkFrameHeader hdr;
    if (!peekFrame(data, avail, &hdr, why))
        return false;
    std::uint32_t crc = crc32(0, data + sizeof(hdr),
                              hdr.frameBytes - sizeof(hdr));
    if (crc != hdr.payloadCrc)
        return fail(why, "chunk payload CRC mismatch");
    return true;
}

bool
decodeChunk(const std::uint8_t *data, std::size_t avail, TraceChunk &out,
            std::size_t *consumed, std::string *why)
{
    ChunkFrameHeader hdr;
    if (!peekFrame(data, avail, &hdr, why))
        return false;

    const std::uint8_t *p = data + sizeof(hdr);
    const std::uint8_t *frame_end = data + hdr.frameBytes;
    if (frame_end - p <
        static_cast<std::ptrdiff_t>(hdr.eventCount))
        return fail(why, "kind array extends past frame");
    const std::uint8_t *kinds = p;
    p += hdr.eventCount;

    // Slice out the length-prefixed streams.
    std::array<Cursor, NumStreams> streams;
    {
        Cursor directory{p, frame_end};
        for (unsigned s = 0; s < NumStreams; ++s) {
            std::uint64_t len = 0;
            if (!directory.readVarint(&len))
                return fail(why, "truncated stream directory");
            if (len > static_cast<std::uint64_t>(directory.end -
                                                 directory.p))
                return fail(why, "stream extends past frame");
            streams[s] = Cursor{directory.p, directory.p + len};
            directory.p += len;
        }
        if (!directory.exhausted())
            return fail(why, "trailing bytes after last stream");
    }

    out.events.clear();
    out.events.resize(hdr.eventCount);
    out.cycleRecords = 0;

    DeltaState cycD, headSeqD, headPcD, lastPcD, comSeqD, comPcD;
    DeltaState dispSeqD, dispPcD, dispCycD, fetchSeqD, fetchPcD,
        fetchCycD, retSeqD, retPcD, retCycD;

    auto readUop = [&](Stream seq_s, Stream pc_s, Stream cyc_s,
                       DeltaState &seq_d, DeltaState &pc_d,
                       DeltaState &cyc_d, UopRecord *r) {
        std::uint64_t seq, pc, cyc;
        if (!streams[seq_s].readVarint(&seq) ||
            !streams[pc_s].readVarint(&pc) ||
            !streams[cyc_s].readVarint(&cyc))
            return false;
        r->seq = seq_d.decode(seq);
        r->pc = static_cast<InstIndex>(pc_d.decode(pc));
        r->cycle = cyc_d.decode(cyc);
        return true;
    };

    for (std::uint32_t i = 0; i < hdr.eventCount; ++i) {
        TraceEvent &ev = out.events[i];
        if (kinds[i] > static_cast<std::uint8_t>(TraceEventKind::End))
            return fail(why, "unknown trace event kind");
        ev.kind = static_cast<TraceEventKind>(kinds[i]);
        switch (ev.kind) {
          case TraceEventKind::Cycle: {
            CycleRecord r;
            std::uint64_t cyc;
            std::uint8_t flags;
            if (!streams[CycDelta].readVarint(&cyc) ||
                !streams[CycFlags].readByte(&flags))
                return fail(why, "truncated cycle stream");
            r.cycle = cycD.decode(cyc);
            r.state = static_cast<CommitState>(flags >> flagStateShift);
            r.numCommitted =
                static_cast<std::uint8_t>((flags >> flagCountShift) &
                                          0xFu);
            if (r.numCommitted > r.committed.size())
                return fail(why, "implausible commit count");
            r.headValid = flags & flagHeadValid;
            r.lastValid = flags & flagLastValid;
            if (r.headValid) {
                std::uint64_t seq, pc;
                if (!streams[HeadSeq].readVarint(&seq) ||
                    !streams[HeadPc].readVarint(&pc))
                    return fail(why, "truncated head stream");
                r.headSeq = headSeqD.decode(seq);
                r.headPc = static_cast<InstIndex>(headPcD.decode(pc));
            }
            if (r.lastValid) {
                std::uint64_t pc, psv;
                if (!streams[LastPc].readVarint(&pc) ||
                    !streams[LastPsv].readVarint(&psv))
                    return fail(why, "truncated last-commit stream");
                r.lastPc = static_cast<InstIndex>(lastPcD.decode(pc));
                r.lastPsv = Psv(static_cast<std::uint16_t>(psv));
            }
            for (unsigned c = 0; c < r.numCommitted; ++c) {
                std::uint64_t seq, pc, psv;
                if (!streams[ComSeq].readVarint(&seq) ||
                    !streams[ComPc].readVarint(&pc) ||
                    !streams[ComPsv].readVarint(&psv))
                    return fail(why, "truncated committed stream");
                r.committed[c] = CommittedUop{
                    comSeqD.decode(seq),
                    static_cast<InstIndex>(comPcD.decode(pc)),
                    Psv(static_cast<std::uint16_t>(psv))};
            }
            ev.p.cycle = r;
            ++out.cycleRecords;
            break;
          }
          case TraceEventKind::Dispatch:
            if (!readUop(DispSeq, DispPc, DispCycle, dispSeqD, dispPcD,
                         dispCycD, &ev.p.uop))
                return fail(why, "truncated dispatch stream");
            break;
          case TraceEventKind::Fetch:
            if (!readUop(FetchSeq, FetchPc, FetchCycle, fetchSeqD,
                         fetchPcD, fetchCycD, &ev.p.uop))
                return fail(why, "truncated fetch stream");
            break;
          case TraceEventKind::Retire: {
            RetireRecord r;
            std::uint64_t seq, pc, psv, cyc;
            if (!streams[RetSeq].readVarint(&seq) ||
                !streams[RetPc].readVarint(&pc) ||
                !streams[RetPsv].readVarint(&psv) ||
                !streams[RetCycle].readVarint(&cyc))
                return fail(why, "truncated retire stream");
            r.seq = retSeqD.decode(seq);
            r.pc = static_cast<InstIndex>(retPcD.decode(pc));
            r.psv = Psv(static_cast<std::uint16_t>(psv));
            r.cycle = retCycD.decode(cyc);
            ev.p.retire = r;
            break;
          }
          case TraceEventKind::End: {
            std::uint64_t cyc;
            if (!streams[EndCycle].readVarint(&cyc))
                return fail(why, "truncated end stream");
            ev.p.end = cyc;
            break;
          }
        }
    }

    if (out.cycleRecords != hdr.cycleRecords)
        return fail(why, "cycle-record count mismatch");
    for (const Cursor &c : streams) {
        if (!c.exhausted())
            return fail(why, "unconsumed stream bytes");
    }
    *consumed = hdr.frameBytes;
    return true;
}

} // namespace tea
