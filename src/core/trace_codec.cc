#include "core/trace_codec.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <memory>
#include <tuple>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "core/varint.hh"

namespace tea {

namespace {

/**
 * The field streams of one frame, in on-disk order. Each stream holds
 * one field of one event kind across the whole chunk (SoA), so runs of
 * similar values sit together and delta-varint coding stays tight.
 */
enum Stream : unsigned
{
    CycDelta = 0, ///< CycleRecord.cycle (zigzag delta)
    CycFlags,     ///< packed state/numCommitted/headValid/lastValid
    HeadSeq,      ///< headSeq, present iff headValid (zigzag delta)
    HeadPc,       ///< headPc, present iff headValid (zigzag delta)
    LastPc,       ///< lastPc, present iff lastValid (zigzag delta)
    LastPsv,      ///< lastPsv bits, present iff lastValid (varint)
    ComSeq,       ///< committed[i].seq (zigzag delta)
    ComPc,        ///< committed[i].pc (zigzag delta)
    ComPsv,       ///< committed[i].psv bits (varint)
    DispSeq,      ///< dispatch seq (zigzag delta)
    DispPc,       ///< dispatch pc (zigzag delta)
    DispCycle,    ///< dispatch cycle (zigzag delta)
    FetchSeq,
    FetchPc,
    FetchCycle,
    RetSeq,
    RetPc,
    RetPsv,
    RetCycle,
    EndCycle, ///< final cycle of End events (varint)
    NumStreams,
};

// CycFlags packing: 2 bits state, 4 bits numCommitted (<= 8), then the
// two validity flags.
constexpr unsigned flagStateShift = 6;
constexpr unsigned flagCountShift = 2;
constexpr unsigned flagHeadValid = 0x2;
constexpr unsigned flagLastValid = 0x1;

// Frame-layout lock (enforced by tea_lint's codec-version-lock rule):
// the stream directory, the flag packing and the frame header are the
// on-disk contract. Changing any of them invalidates every cached
// trace, so the change must come with a traceCodecVersion bump — update
// the pinned values here in the same commit that bumps the version.
static_assert(traceCodecVersion == 1,
              "codec version changed: re-pin the layout asserts below");
static_assert(sizeof(ChunkFrameHeader) == 16,
              "ChunkFrameHeader layout changed: bump traceCodecVersion");
static_assert(NumStreams == 20,
              "stream directory changed: bump traceCodecVersion");
static_assert(static_cast<unsigned>(TraceEventKind::End) == 4,
              "trace event kinds changed: bump traceCodecVersion");
static_assert(flagStateShift == 6 && flagCountShift == 2 &&
                  flagHeadValid == 0x2 && flagLastValid == 0x1,
              "CycFlags packing changed: bump traceCodecVersion");
static_assert(std::tuple_size_v<decltype(CycleRecord{}.committed)> <=
                  0xF,
              "commit snapshot exceeds the 4-bit CycFlags count field");

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t d)
{
    return (static_cast<std::uint64_t>(d) << 1) ^
           static_cast<std::uint64_t>(d >> 63);
}

std::int64_t
unzigzag(std::uint64_t z)
{
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
}

/** Per-stream delta encoder state (reset at every frame). */
struct DeltaState
{
    std::uint64_t prev = 0;

    std::uint64_t
    encode(std::uint64_t v)
    {
        std::uint64_t z = zigzag(static_cast<std::int64_t>(v - prev));
        prev = v;
        return z;
    }

    std::uint64_t
    decode(std::uint64_t z)
    {
        prev += static_cast<std::uint64_t>(unzigzag(z));
        return prev;
    }
};

/** Bounds-checked reader over one stream of a mapped frame. */
struct Cursor
{
    const std::uint8_t *p = nullptr;
    const std::uint8_t *end = nullptr;

    bool exhausted() const { return p == end; }

    bool
    readByte(std::uint8_t *v)
    {
        if (p >= end)
            return false;
        *v = *p++;
        return true;
    }

    bool
    readVarint(std::uint64_t *v)
    {
        std::uint64_t out = 0;
        unsigned shift = 0;
        while (p < end && shift < 64) {
            std::uint8_t b = *p++;
            out |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
            if (!(b & 0x80u)) {
                *v = out;
                return true;
            }
            shift += 7;
        }
        return false; // truncated or > 64-bit varint
    }
};

bool
fail(std::string *why, const char *msg)
{
    if (why)
        *why = msg;
    return false;
}

} // namespace

void
encodeChunk(const TraceChunk &chunk, std::vector<std::uint8_t> &out)
{
    std::array<std::vector<std::uint8_t>, NumStreams> streams;
    DeltaState cycD, headSeqD, headPcD, lastPcD, comSeqD, comPcD;
    DeltaState dispSeqD, dispPcD, dispCycD, fetchSeqD, fetchPcD,
        fetchCycD, retSeqD, retPcD, retCycD;

    std::vector<std::uint8_t> kinds;
    kinds.reserve(chunk.events.size());

    for (const TraceEvent &ev : chunk.events) {
        kinds.push_back(static_cast<std::uint8_t>(ev.kind));
        switch (ev.kind) {
          case TraceEventKind::Cycle: {
            const CycleRecord &r = ev.p.cycle;
            tea_assert(r.numCommitted <= r.committed.size(),
                       "numCommitted %u overflows the committed array",
                       r.numCommitted);
            putVarint(streams[CycDelta], cycD.encode(r.cycle));
            std::uint8_t flags = static_cast<std::uint8_t>(
                (static_cast<unsigned>(r.state) << flagStateShift) |
                (static_cast<unsigned>(r.numCommitted)
                 << flagCountShift) |
                (r.headValid ? flagHeadValid : 0u) |
                (r.lastValid ? flagLastValid : 0u));
            streams[CycFlags].push_back(flags);
            if (r.headValid) {
                putVarint(streams[HeadSeq], headSeqD.encode(r.headSeq));
                putVarint(streams[HeadPc], headPcD.encode(r.headPc));
            }
            if (r.lastValid) {
                putVarint(streams[LastPc], lastPcD.encode(r.lastPc));
                putVarint(streams[LastPsv], r.lastPsv.bits());
            }
            for (unsigned i = 0; i < r.numCommitted; ++i) {
                const CommittedUop &c = r.committed[i];
                putVarint(streams[ComSeq], comSeqD.encode(c.seq));
                putVarint(streams[ComPc], comPcD.encode(c.pc));
                putVarint(streams[ComPsv], c.psv.bits());
            }
            break;
          }
          case TraceEventKind::Dispatch: {
            const UopRecord &r = ev.p.uop;
            putVarint(streams[DispSeq], dispSeqD.encode(r.seq));
            putVarint(streams[DispPc], dispPcD.encode(r.pc));
            putVarint(streams[DispCycle], dispCycD.encode(r.cycle));
            break;
          }
          case TraceEventKind::Fetch: {
            const UopRecord &r = ev.p.uop;
            putVarint(streams[FetchSeq], fetchSeqD.encode(r.seq));
            putVarint(streams[FetchPc], fetchPcD.encode(r.pc));
            putVarint(streams[FetchCycle], fetchCycD.encode(r.cycle));
            break;
          }
          case TraceEventKind::Retire: {
            const RetireRecord &r = ev.p.retire;
            putVarint(streams[RetSeq], retSeqD.encode(r.seq));
            putVarint(streams[RetPc], retPcD.encode(r.pc));
            putVarint(streams[RetPsv], r.psv.bits());
            putVarint(streams[RetCycle], retCycD.encode(r.cycle));
            break;
          }
          case TraceEventKind::End:
            putVarint(streams[EndCycle], ev.p.end);
            break;
        }
    }

    // Assemble the payload: kinds, then length-prefixed streams.
    std::vector<std::uint8_t> payload;
    std::size_t payload_guess = kinds.size();
    for (const auto &s : streams)
        payload_guess += s.size() + 4;
    payload.reserve(payload_guess);
    payload.insert(payload.end(), kinds.begin(), kinds.end());
    for (const auto &s : streams) {
        putVarint(payload, s.size());
        payload.insert(payload.end(), s.begin(), s.end());
    }

    ChunkFrameHeader hdr;
    hdr.frameBytes = static_cast<std::uint32_t>(sizeof(ChunkFrameHeader) +
                                                payload.size());
    hdr.eventCount = static_cast<std::uint32_t>(chunk.events.size());
    hdr.cycleRecords = static_cast<std::uint32_t>(chunk.cycleRecords);
    hdr.payloadCrc = crc32(0, payload.data(), payload.size());
    tea_assert(hdr.frameBytes <= maxChunkFrameBytes,
               "trace chunk frame exceeds %u bytes", maxChunkFrameBytes);

    std::size_t at = out.size();
    out.resize(at + sizeof(hdr) + payload.size());
    std::memcpy(out.data() + at, &hdr, sizeof(hdr));
    std::memcpy(out.data() + at + sizeof(hdr), payload.data(),
                payload.size());
}

bool
peekFrame(const std::uint8_t *data, std::size_t avail,
          ChunkFrameHeader *header, std::string *why)
{
    if (avail < sizeof(ChunkFrameHeader))
        return fail(why, "truncated chunk frame header");
    ChunkFrameHeader hdr;
    std::memcpy(&hdr, data, sizeof(hdr));
    if (hdr.frameBytes < sizeof(ChunkFrameHeader) ||
        hdr.frameBytes > maxChunkFrameBytes)
        return fail(why, "implausible chunk frame size");
    if (hdr.frameBytes > avail)
        return fail(why, "chunk frame extends past end of file");
    if (hdr.cycleRecords > hdr.eventCount ||
        hdr.eventCount > hdr.frameBytes)
        return fail(why, "implausible chunk event counts");
    *header = hdr;
    return true;
}

bool
verifyFrame(const std::uint8_t *data, std::size_t avail, std::string *why)
{
    ChunkFrameHeader hdr;
    if (!peekFrame(data, avail, &hdr, why))
        return false;
    std::uint32_t crc = crc32(0, data + sizeof(hdr),
                              hdr.frameBytes - sizeof(hdr));
    if (crc != hdr.payloadCrc)
        return fail(why, "chunk payload CRC mismatch");
    return true;
}

/**
 * Per-stream decoded-value lanes, reused across frames. CycFlags is the
 * one raw-byte stream; its lane stays empty and stage 2 reads the
 * mapped bytes directly.
 */
struct ChunkDecoder::Impl
{
    std::array<std::unique_ptr<std::uint64_t[]>, NumStreams> lanes;
    std::array<std::size_t, NumStreams> cap{};
    std::array<std::size_t, NumStreams> count{};

    /** Event index list per kind, filled by assemble's position pass. */
    static constexpr unsigned numKinds =
        static_cast<unsigned>(TraceEventKind::End) + 1;
    std::array<std::unique_ptr<std::uint32_t[]>, numKinds> pos;
    std::size_t posCap = 0;

    void
    ensure(unsigned s, std::size_t need)
    {
        if (cap[s] >= need)
            return;
        const std::size_t grown = std::bit_ceil(need);
        lanes[s] = std::make_unique_for_overwrite<std::uint64_t[]>(grown);
        cap[s] = grown;
    }

    void
    ensurePos(std::size_t need)
    {
        if (posCap >= need)
            return;
        const std::size_t grown =
            std::bit_ceil(std::max<std::size_t>(need, 1));
        for (auto &list : pos)
            list = std::make_unique_for_overwrite<std::uint32_t[]>(grown);
        posCap = grown;
    }

    bool assemble(const ChunkFrameHeader &hdr, const std::uint8_t *kinds,
                  const std::uint8_t *cflags, TraceChunk &out,
                  std::string *why);
};

// Stage 2 runs kind-grouped instead of event-at-a-time: a position
// pass splits the kind array into per-kind event index lists and
// validates every stream's length once, then one tight homogeneous
// write loop per kind assembles events straight from the lanes — no
// per-event switch to mispredict and no per-field bounds checks in
// the hot loops.
// tea_lint: hot
bool
ChunkDecoder::Impl::assemble(const ChunkFrameHeader &hdr,
                             const std::uint8_t *kinds,
                             const std::uint8_t *cflags, TraceChunk &out,
                             std::string *why)
{
    // Resize only when the count actually changes: every always-valid
    // field is overwritten below and gated leftovers are unspecified by
    // contract, so re-running element constructors on a reused chunk of
    // the same size (the steady replay state) would be pure churn — and
    // measurably dominated decode time when it was done per frame.
    if (out.events.size() != hdr.eventCount)
        out.events.resize(hdr.eventCount);

    ensurePos(hdr.eventCount);
    // Pointer cursors rather than per-kind counters: an index store
    // through std::uint32_t* may alias integer counters, forcing the
    // compiler to spill and reload them every iteration; pointers are a
    // distinct type the stores provably cannot touch.
    std::uint32_t *cur[numKinds];
    for (unsigned k = 0; k < numKinds; ++k)
        cur[k] = pos[k].get();
    for (std::uint32_t i = 0; i < hdr.eventCount; ++i) {
        const std::uint8_t k = kinds[i];
        if (k >= numKinds)
            return fail(why, "unknown trace event kind");
        *cur[k]++ = i;
    }
    const auto kindCount = [&](TraceEventKind k) {
        const auto u = static_cast<unsigned>(k);
        return static_cast<std::uint32_t>(cur[u] - pos[u].get());
    };
    const std::uint32_t nCyc = kindCount(TraceEventKind::Cycle);
    const std::uint32_t nDisp = kindCount(TraceEventKind::Dispatch);
    const std::uint32_t nFetch = kindCount(TraceEventKind::Fetch);
    const std::uint32_t nRet = kindCount(TraceEventKind::Retire);
    const std::uint32_t nEnd = kindCount(TraceEventKind::End);
    if (nCyc != hdr.cycleRecords)
        return fail(why, "cycle-record count mismatch");
    if (count[CycFlags] != nCyc)
        return fail(why, count[CycFlags] < nCyc
                             ? "truncated cycle stream"
                             : "unconsumed stream bytes");

    // Tally the gated-field populations from the flag bytes, eight
    // flag bytes per step (SWAR): the valid bits are popcounts over a
    // bit column, the commit counts are a nibble column summed with
    // the multiply-shift byte-sum trick (8 nibbles <= 120, no carry),
    // and an implausible count (> 8) is detected by the carry into
    // bit 4 of nc + 7, OR-accumulated and checked once.
    std::size_t nHead = 0, nLast = 0, nCom = 0;
    {
        constexpr std::uint64_t lsb = 0x0101010101010101ull;
        std::uint64_t bad = 0;
        std::uint32_t j = 0;
        for (; j + 8 <= nCyc; j += 8) {
            std::uint64_t x;
            std::memcpy(&x, cflags + j, 8);
            nLast += static_cast<unsigned>(
                __builtin_popcountll(x & lsb)); // flagLastValid
            nHead += static_cast<unsigned>(
                __builtin_popcountll(x & (lsb << 1))); // flagHeadValid
            const std::uint64_t t =
                (x >> flagCountShift) & (lsb * 0x0F);
            bad |= (t + lsb * 0x07) & (lsb * 0x10);
            nCom += (t * lsb) >> 56;
        }
        for (; j < nCyc; ++j) {
            const std::uint8_t f = cflags[j];
            const unsigned nc = (f >> flagCountShift) & 0xFu;
            if (nc > 8)
                bad = 1;
            nCom += nc;
            nHead += (f >> 1) & 1u; // flagHeadValid
            nLast += f & 1u;        // flagLastValid
        }
        static_assert(
            std::tuple_size_v<decltype(CycleRecord{}.committed)> == 8,
            "commit-count plausibility bound is hardwired to 8");
        if (bad)
            return fail(why, "implausible commit count");
    }

    // One exact-length check per stream replaces the old per-event
    // bounds checks: a short stream is truncation, a long one trailing
    // unconsumed values — either rejects the frame before any of the
    // unchecked write loops below runs.
    const struct
    {
        unsigned s;
        std::size_t expect;
        const char *short_msg;
    } lengths[] = {
        {CycDelta, nCyc, "truncated cycle stream"},
        {HeadSeq, nHead, "truncated head stream"},
        {HeadPc, nHead, "truncated head stream"},
        {LastPc, nLast, "truncated last-commit stream"},
        {LastPsv, nLast, "truncated last-commit stream"},
        {ComSeq, nCom, "truncated committed stream"},
        {ComPc, nCom, "truncated committed stream"},
        {ComPsv, nCom, "truncated committed stream"},
        {DispSeq, nDisp, "truncated dispatch stream"},
        {DispPc, nDisp, "truncated dispatch stream"},
        {DispCycle, nDisp, "truncated dispatch stream"},
        {FetchSeq, nFetch, "truncated fetch stream"},
        {FetchPc, nFetch, "truncated fetch stream"},
        {FetchCycle, nFetch, "truncated fetch stream"},
        {RetSeq, nRet, "truncated retire stream"},
        {RetPc, nRet, "truncated retire stream"},
        {RetPsv, nRet, "truncated retire stream"},
        {RetCycle, nRet, "truncated retire stream"},
        {EndCycle, nEnd, "truncated end stream"},
    };
    for (const auto &l : lengths) {
        if (count[l.s] != l.expect)
            return fail(why, count[l.s] < l.expect
                                 ? l.short_msg
                                 : "unconsumed stream bytes");
    }

    TraceEvent *const events = out.events.data();

    // The write loops below rebuild absolute values from the zigzag
    // deltas inline: each lane is consumed in exactly the order the
    // encoder produced it (event order within a kind, commit order
    // within a cycle), so one running accumulator per delta stream
    // replaces a separate prefix-sum pass over every lane.
    {
        const std::uint32_t *P =
            pos[static_cast<unsigned>(TraceEventKind::Cycle)].get();
        const std::uint64_t *cyc = lanes[CycDelta].get();
        const std::uint64_t *hseq = lanes[HeadSeq].get();
        const std::uint64_t *hpc = lanes[HeadPc].get();
        const std::uint64_t *lpc = lanes[LastPc].get();
        const std::uint64_t *lpsv = lanes[LastPsv].get();
        const std::uint64_t *cseq = lanes[ComSeq].get();
        const std::uint64_t *cpc = lanes[ComPc].get();
        const std::uint64_t *cpsv = lanes[ComPsv].get();
        std::uint64_t cycPrev = 0, hseqPrev = 0, hpcPrev = 0;
        std::uint64_t lpcPrev = 0, cseqPrev = 0, cpcPrev = 0;
        std::size_t hs = 0, ls = 0, cs = 0;
        for (std::uint32_t j = 0; j < nCyc; ++j) {
            TraceEvent &ev = events[P[j]];
            ev.kind = TraceEventKind::Cycle;
            CycleRecord &r = ev.p.cycle;
            const std::uint8_t f = cflags[j];
            cycPrev += static_cast<std::uint64_t>(unzigzag(cyc[j]));
            r.cycle = cycPrev;
            r.state = static_cast<CommitState>(f >> flagStateShift);
            const unsigned nc = (f >> flagCountShift) & 0xFu;
            r.numCommitted = static_cast<std::uint8_t>(nc);
            const bool hv = f & flagHeadValid;
            const bool lv = f & flagLastValid;
            r.headValid = hv;
            r.lastValid = lv;
            // Branchless gated fields: the delta is masked to zero and
            // the cursor does not advance when the flag is clear, so
            // the unconditional store writes unspecified-but-harmless
            // contents (allowed by the decode contract) instead of
            // costing a hard-to-predict branch per record. Stage 1
            // sizes each lane one slot past its value count so the
            // read at the final cursor position stays in bounds.
            const std::uint64_t hm = -static_cast<std::uint64_t>(hv);
            hseqPrev +=
                static_cast<std::uint64_t>(unzigzag(hseq[hs])) & hm;
            hpcPrev +=
                static_cast<std::uint64_t>(unzigzag(hpc[hs])) & hm;
            r.headSeq = hseqPrev;
            r.headPc = static_cast<InstIndex>(hpcPrev);
            hs += hv;
            const std::uint64_t lm = -static_cast<std::uint64_t>(lv);
            lpcPrev +=
                static_cast<std::uint64_t>(unzigzag(lpc[ls])) & lm;
            r.lastPc = static_cast<InstIndex>(lpcPrev);
            r.lastPsv = Psv(static_cast<std::uint16_t>(lpsv[ls]));
            ls += lv;
            for (unsigned c = 0; c < nc; ++c) {
                cseqPrev +=
                    static_cast<std::uint64_t>(unzigzag(cseq[cs + c]));
                cpcPrev +=
                    static_cast<std::uint64_t>(unzigzag(cpc[cs + c]));
                r.committed[c] = CommittedUop{
                    cseqPrev, static_cast<InstIndex>(cpcPrev),
                    Psv(static_cast<std::uint16_t>(cpsv[cs + c]))};
            }
            cs += nc;
        }
    }

    const auto writeUops = [events](const std::uint32_t *P,
                                    std::uint32_t n, TraceEventKind kind,
                                    const std::uint64_t *seq,
                                    const std::uint64_t *pc,
                                    const std::uint64_t *cycle) {
        std::uint64_t seqPrev = 0, pcPrev = 0, cycPrev = 0;
        for (std::uint32_t j = 0; j < n; ++j) {
            TraceEvent &ev = events[P[j]];
            ev.kind = kind;
            UopRecord &r = ev.p.uop;
            seqPrev += static_cast<std::uint64_t>(unzigzag(seq[j]));
            pcPrev += static_cast<std::uint64_t>(unzigzag(pc[j]));
            cycPrev += static_cast<std::uint64_t>(unzigzag(cycle[j]));
            r.seq = seqPrev;
            r.pc = static_cast<InstIndex>(pcPrev);
            r.cycle = cycPrev;
        }
    };
    writeUops(pos[static_cast<unsigned>(TraceEventKind::Dispatch)].get(),
              nDisp, TraceEventKind::Dispatch, lanes[DispSeq].get(),
              lanes[DispPc].get(), lanes[DispCycle].get());
    writeUops(pos[static_cast<unsigned>(TraceEventKind::Fetch)].get(),
              nFetch, TraceEventKind::Fetch, lanes[FetchSeq].get(),
              lanes[FetchPc].get(), lanes[FetchCycle].get());

    {
        const std::uint32_t *P =
            pos[static_cast<unsigned>(TraceEventKind::Retire)].get();
        const std::uint64_t *seq = lanes[RetSeq].get();
        const std::uint64_t *pc = lanes[RetPc].get();
        const std::uint64_t *psv = lanes[RetPsv].get();
        const std::uint64_t *cycle = lanes[RetCycle].get();
        std::uint64_t seqPrev = 0, pcPrev = 0, cycPrev = 0;
        for (std::uint32_t j = 0; j < nRet; ++j) {
            TraceEvent &ev = events[P[j]];
            ev.kind = TraceEventKind::Retire;
            RetireRecord &r = ev.p.retire;
            seqPrev += static_cast<std::uint64_t>(unzigzag(seq[j]));
            pcPrev += static_cast<std::uint64_t>(unzigzag(pc[j]));
            cycPrev += static_cast<std::uint64_t>(unzigzag(cycle[j]));
            r.seq = seqPrev;
            r.pc = static_cast<InstIndex>(pcPrev);
            r.psv = Psv(static_cast<std::uint16_t>(psv[j]));
            r.cycle = cycPrev;
        }
    }

    {
        const std::uint32_t *P =
            pos[static_cast<unsigned>(TraceEventKind::End)].get();
        const std::uint64_t *ec = lanes[EndCycle].get();
        for (std::uint32_t j = 0; j < nEnd; ++j) {
            TraceEvent &ev = events[P[j]];
            ev.kind = TraceEventKind::End;
            ev.p.end = ec[j];
        }
    }

    out.cycleRecords = nCyc;
    return true;
}

ChunkDecoder::ChunkDecoder() : impl_(std::make_unique<Impl>()) {}
ChunkDecoder::~ChunkDecoder() = default;
ChunkDecoder::ChunkDecoder(ChunkDecoder &&) noexcept = default;
ChunkDecoder &ChunkDecoder::operator=(ChunkDecoder &&) noexcept = default;

bool
ChunkDecoder::decode(const std::uint8_t *data, std::size_t avail,
                     TraceChunk &out, std::size_t *consumed,
                     std::string *why)
{
    ChunkFrameHeader hdr;
    if (!peekFrame(data, avail, &hdr, why))
        return false;

    const std::uint8_t *p = data + sizeof(hdr);
    const std::uint8_t *frame_end = data + hdr.frameBytes;
    if (frame_end - p <
        static_cast<std::ptrdiff_t>(hdr.eventCount))
        return fail(why, "kind array extends past frame");
    const std::uint8_t *kinds = p;
    p += hdr.eventCount;

    // Slice out the length-prefixed streams.
    std::array<const std::uint8_t *, NumStreams> sdata{};
    std::array<std::size_t, NumStreams> slen{};
    {
        Cursor directory{p, frame_end};
        for (unsigned s = 0; s < NumStreams; ++s) {
            std::uint64_t len = 0;
            if (!directory.readVarint(&len))
                return fail(why, "truncated stream directory");
            if (len > static_cast<std::uint64_t>(directory.end -
                                                 directory.p))
                return fail(why, "stream extends past frame");
            sdata[s] = directory.p;
            slen[s] = static_cast<std::size_t>(len);
            directory.p += len;
        }
        if (!directory.exhausted())
            return fail(why, "trailing bytes after last stream");
    }

    // Stage 1: bulk-decode every varint stream into its lane (the SIMD
    // kernels behind decodeVarints). Lanes hold the raw zigzag deltas;
    // assemble rebuilds absolute values inline while it consumes each
    // lane in encode order, so the deltas are read exactly once instead
    // of taking a separate serial prefix-sum pass over every lane. A
    // malformed varint anywhere rejects the frame, exactly as the
    // per-value reader would have once it reached it.
    Impl &im = *impl_;
    for (unsigned s = 0; s < NumStreams; ++s) {
        if (s == CycFlags) {
            im.count[s] = slen[s];
            continue;
        }
        // One slot past the value count (<= slen bytes) so assemble's
        // branchless gated-field reads may touch lane[count] safely.
        im.ensure(s, slen[s] + 1);
        if (!decodeVarints(sdata[s], slen[s], im.lanes[s].get(),
                           &im.count[s]))
            return fail(why, "malformed varint stream");
    }

    if (!im.assemble(hdr, kinds, sdata[CycFlags], out, why))
        return false;
    *consumed = hdr.frameBytes;
    return true;
}

bool
decodeChunk(const std::uint8_t *data, std::size_t avail, TraceChunk &out,
            std::size_t *consumed, std::string *why)
{
    ChunkDecoder decoder;
    return decoder.decode(data, avail, out, consumed, why);
}

} // namespace tea
