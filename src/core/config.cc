#include "core/config.hh"

#include "common/logging.hh"

namespace tea {

std::string
CoreConfig::describe() const
{
    std::string out;
    out += strprintf("Core      OoO BOOM-class model, %u-way superscalar\n",
                     commitWidth);
    if (predictor == PredictorKind::Tage) {
        out += strprintf(
            "Front-end %u-wide fetch, %u-entry fetch buffer, %u-wide "
            "decode, TAGE branch predictor\n",
            fetchWidth, fetchBufferEntries, decodeWidth);
    } else {
        out += strprintf(
            "Front-end %u-wide fetch, %u-entry fetch buffer, %u-wide "
            "decode, gshare predictor (%u-entry, %u-bit history)\n",
            fetchWidth, fetchBufferEntries, decodeWidth, bpTableEntries,
            bpHistoryBits);
    }
    out += strprintf(
        "Execute   %u-entry ROB, %u-entry %u-issue memory queue, "
        "%u-entry %u-issue integer queue, %u-entry %u-issue FP queue\n",
        robEntries, memIqEntries, memIssueWidth, intIqEntries,
        intIssueWidth, fpIqEntries, fpIssueWidth);
    out += strprintf("LSU       %u-entry load queue, %u-entry store queue\n",
                     lqEntries, sqEntries);
    out += strprintf(
        "L1        %lu KB %u-way I-cache, %lu KB %u-way D-cache w/ %u "
        "MSHRs, next-line prefetcher %s\n",
        static_cast<unsigned long>(l1i.sizeBytes / 1024), l1i.ways,
        static_cast<unsigned long>(l1d.sizeBytes / 1024), l1d.ways,
        l1d.mshrs, nextLinePrefetcher ? "on" : "off");
    out += strprintf("LLC       %lu KiB %u-way w/ %u MSHRs, %u-cycle hit\n",
                     static_cast<unsigned long>(llc.sizeBytes / 1024),
                     llc.ways, llc.mshrs, llc.hitLatency);
    out += strprintf(
        "TLB       %u-entry fully-assoc L1 D-TLB, %u-entry fully-assoc L1 "
        "I-TLB, %u-entry direct-mapped L2 TLB, %u-cycle walk\n",
        tlb.l1Entries, tlb.l1Entries, tlb.l2Entries, tlb.walkLatency);
    out += strprintf(
        "Memory    %u-cycle latency, 1 line / %u cycles bandwidth\n",
        dramLatency, dramInterval);
    return out;
}

} // namespace tea
