#include "core/config.hh"

#include "common/fingerprint.hh"
#include "common/logging.hh"

namespace tea {

std::string
CoreConfig::describe() const
{
    std::string out;
    out += strprintf("Core      OoO BOOM-class model, %u-way superscalar\n",
                     commitWidth);
    if (predictor == PredictorKind::Tage) {
        out += strprintf(
            "Front-end %u-wide fetch, %u-entry fetch buffer, %u-wide "
            "decode, TAGE branch predictor\n",
            fetchWidth, fetchBufferEntries, decodeWidth);
    } else {
        out += strprintf(
            "Front-end %u-wide fetch, %u-entry fetch buffer, %u-wide "
            "decode, gshare predictor (%u-entry, %u-bit history)\n",
            fetchWidth, fetchBufferEntries, decodeWidth, bpTableEntries,
            bpHistoryBits);
    }
    out += strprintf(
        "Execute   %u-entry ROB, %u-entry %u-issue memory queue, "
        "%u-entry %u-issue integer queue, %u-entry %u-issue FP queue\n",
        robEntries, memIqEntries, memIssueWidth, intIqEntries,
        intIssueWidth, fpIqEntries, fpIssueWidth);
    out += strprintf("LSU       %u-entry load queue, %u-entry store queue\n",
                     lqEntries, sqEntries);
    out += strprintf(
        "L1        %lu KB %u-way I-cache, %lu KB %u-way D-cache w/ %u "
        "MSHRs, next-line prefetcher %s\n",
        static_cast<unsigned long>(l1i.sizeBytes / 1024), l1i.ways,
        static_cast<unsigned long>(l1d.sizeBytes / 1024), l1d.ways,
        l1d.mshrs, nextLinePrefetcher ? "on" : "off");
    out += strprintf("LLC       %lu KiB %u-way w/ %u MSHRs, %u-cycle hit\n",
                     static_cast<unsigned long>(llc.sizeBytes / 1024),
                     llc.ways, llc.mshrs, llc.hitLatency);
    out += strprintf(
        "TLB       %u-entry fully-assoc L1 D-TLB, %u-entry fully-assoc L1 "
        "I-TLB, %u-entry direct-mapped L2 TLB, %u-cycle walk\n",
        tlb.l1Entries, tlb.l1Entries, tlb.l2Entries, tlb.walkLatency);
    out += strprintf(
        "Memory    %u-cycle latency, 1 line / %u cycles bandwidth\n",
        dramLatency, dramInterval);
    return out;
}

namespace presets {

CoreConfig
bigOoo()
{
    return CoreConfig{};
}

CoreConfig
bigOooW2()
{
    CoreConfig cfg;
    cfg.fetchWidth = 4;
    cfg.decodeWidth = 2;
    cfg.dispatchWidth = 2;
    cfg.commitWidth = 2;
    cfg.intIssueWidth = 2;
    cfg.memIssueWidth = 1;
    cfg.fpIssueWidth = 1;
    cfg.fetchBufferEntries = 24;
    return cfg;
}

CoreConfig
bigOooRob64()
{
    CoreConfig cfg;
    cfg.robEntries = 64;
    cfg.intIqEntries = 32;
    cfg.memIqEntries = 16;
    cfg.fpIqEntries = 16;
    cfg.lqEntries = 16;
    cfg.sqEntries = 12;
    return cfg;
}

CoreConfig
bigOooMiniCaches()
{
    CoreConfig cfg;
    cfg.l1i = CacheConfig{8 * 1024, 4, 4, 2};
    cfg.l1d = CacheConfig{8 * 1024, 4, 8, 3};
    cfg.llc = CacheConfig{256 * 1024, 8, 8, 14};
    cfg.nextLinePrefetcher = false;
    return cfg;
}

CoreConfig
bigOooGshare()
{
    CoreConfig cfg;
    cfg.predictor = PredictorKind::Gshare;
    return cfg;
}

CoreConfig
littleInorder()
{
    CoreConfig cfg;
    cfg.fetchWidth = 2;
    cfg.decodeWidth = 2;
    cfg.dispatchWidth = 2;
    cfg.commitWidth = 2;
    cfg.fetchBufferEntries = 8;
    cfg.decodeLatency = 1;
    cfg.redirectPenalty = 5;
    cfg.predictor = PredictorKind::Gshare;
    cfg.bpHistoryBits = 8;
    cfg.bpTableEntries = 1024;
    cfg.robEntries = 16;
    cfg.intIqEntries = 8;
    cfg.intIssueWidth = 2;
    cfg.memIqEntries = 4;
    cfg.memIssueWidth = 1;
    cfg.fpIqEntries = 4;
    cfg.fpIssueWidth = 1;
    cfg.lqEntries = 8;
    cfg.sqEntries = 8;
    cfg.l1i = CacheConfig{16 * 1024, 4, 4, 2};
    cfg.l1d = CacheConfig{16 * 1024, 4, 4, 3};
    cfg.llc = CacheConfig{512 * 1024, 8, 6, 16};
    cfg.nextLinePrefetcher = false;
    cfg.dramLatency = 100;
    return cfg;
}

CoreConfig
littleInorderW1()
{
    CoreConfig cfg = littleInorder();
    cfg.fetchWidth = 2;
    cfg.decodeWidth = 1;
    cfg.dispatchWidth = 1;
    cfg.commitWidth = 1;
    cfg.intIssueWidth = 1;
    return cfg;
}

namespace {

struct PresetEntry
{
    const char *name;
    CoreConfig (*make)();
};

constexpr PresetEntry presetTable[] = {
    {"big_ooo", bigOoo},
    {"big_ooo_w2", bigOooW2},
    {"big_ooo_rob64", bigOooRob64},
    {"big_ooo_mini_caches", bigOooMiniCaches},
    {"big_ooo_gshare", bigOooGshare},
    {"little_inorder", littleInorder},
    {"little_inorder_w1", littleInorderW1},
};

} // namespace

std::vector<std::string>
names()
{
    std::vector<std::string> out;
    out.reserve(std::size(presetTable));
    for (const PresetEntry &e : presetTable)
        out.emplace_back(e.name);
    return out;
}

CoreConfig
byName(const std::string &name)
{
    for (const PresetEntry &e : presetTable) {
        if (name == e.name)
            return e.make();
    }
    tea_fatal("unknown core-config preset '%s'", name.c_str());
}

} // namespace presets

namespace {

void
hashCache(Fnv1a &h, const CacheConfig &c)
{
    h.add(c.sizeBytes);
    h.add(c.ways);
    h.add(c.mshrs);
    h.add(c.hitLatency);
}

} // namespace

void
hashConfig(Fnv1a &h, const CoreConfig &cfg)
{
    h.add(cfg.fetchWidth);
    h.add(cfg.decodeWidth);
    h.add(cfg.dispatchWidth);
    h.add(cfg.commitWidth);
    h.add(cfg.fetchBufferEntries);
    h.add(cfg.decodeLatency);
    h.add(cfg.redirectPenalty);
    h.add(static_cast<std::uint64_t>(cfg.predictor));
    h.add(cfg.bpHistoryBits);
    h.add(cfg.bpTableEntries);
    h.add(cfg.robEntries);
    h.add(cfg.intIqEntries);
    h.add(cfg.intIssueWidth);
    h.add(cfg.memIqEntries);
    h.add(cfg.memIssueWidth);
    h.add(cfg.fpIqEntries);
    h.add(cfg.fpIssueWidth);
    h.add(cfg.lqEntries);
    h.add(cfg.sqEntries);
    h.add(cfg.intMulLatency);
    h.add(cfg.intDivLatency);
    h.add(cfg.fpAluLatency);
    h.add(cfg.fpDivLatency);
    h.add(cfg.fpSqrtLatency);
    h.add(cfg.forwardLatency);
    h.add(cfg.moReplayPenalty);
    h.add(cfg.storeSetClearInterval);
    h.add(cfg.samplingInterruptPeriod);
    h.add(cfg.samplingHandlerCycles);
    hashCache(h, cfg.l1i);
    hashCache(h, cfg.l1d);
    hashCache(h, cfg.llc);
    h.add(static_cast<std::uint64_t>(cfg.nextLinePrefetcher));
    h.add(cfg.dramLatency);
    h.add(cfg.dramInterval);
    h.add(cfg.tlb.l1Entries);
    h.add(cfg.tlb.l2Entries);
    h.add(cfg.tlb.l2HitLatency);
    h.add(cfg.tlb.walkLatency);
}

} // namespace tea
