#include "core/checkpoint.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "core/branch_predictor.hh"
#include "core/config.hh"
#include "core/tlb.hh"
#include "isa/memory.hh"

namespace tea {

namespace {

/**
 * Append the checkpoint at (count, pc) to the plan. The snapshot
 * itself is allocation-free when no predictor is trained — the
 * register file is an inline array and the memory image is a mark into
 * the shared delta log, not a copy — so the only heap traffic is the
 * (reserved, amortized) vector growth plus the optional predictor
 * clone (one bounded table copy per checkpoint, K per run).
 */
// tea_lint: hot
void
recordCheckpoint(CheckpointPlan &plan, std::uint64_t count, InstIndex pc,
                 const ArchState &st, const BranchPredictor *bp)
{
    plan.checkpoints.emplace_back();
    ArchCheckpoint &ck = plan.checkpoints.back();
    ck.uops = count;
    ck.pc = pc;
    ck.regs = st.regs;
    ck.memMark = plan.memLog.size();
    if (bp)
        ck.predictor = bp->clone();
}

} // namespace

// tea_lint: hot
CheckpointPlan
buildCheckpoints(const Program &prog, const ArchState &initial,
                 std::uint64_t interval_uops, std::uint64_t warmup_uops,
                 std::uint64_t max_uops, const CoreConfig *cfg)
{
    tea_assert(interval_uops > 0, "checkpoint interval must be > 0");
    tea_assert(warmup_uops > 0 && warmup_uops < interval_uops,
               "warmup %llu must be in (0, interval %llu)",
               static_cast<unsigned long long>(warmup_uops),
               static_cast<unsigned long long>(interval_uops));

    CheckpointPlan plan;
    plan.intervalUops = interval_uops;
    plan.warmupUops = warmup_uops;
    // Pre-sized for the common case: growth past these marks is
    // amortized doubling, once, outside any per-instruction path.
    plan.checkpoints.reserve(64);
    plan.memLog.reserve(std::size_t(1) << 16);

    ArchState st = initial;
    InstIndex pc = prog.entry();
    std::uint64_t count = 0;
    std::uint64_t next_ck = interval_uops - warmup_uops;

    // Shadow predictor trained along the walk: update() per
    // conditional branch, exactly the sequence the timing core applies
    // at fetch (oracle correct path, predict() side-effect free).
    std::unique_ptr<BranchPredictor> bp;
    if (cfg)
        bp = makePredictor(*cfg);

    // Warm log: ring of the most recent data-side accesses, sized to a
    // generous multiple of the modelled cache footprint in lines. The
    // multiple matters because the window is counted in *accesses* but
    // must cover the footprint in *unique lines*: a streaming workload
    // touches each line many times (8B stride = 8 accesses per line)
    // before moving on, so a window of 2x-footprint accesses reaches
    // only a quarter of the LLC's lines. Fixed capacity — the
    // per-instruction cost is one slot write, no allocation (tea_lint:
    // hot path of the pre-pass).
    std::vector<WarmAccess> warmRing;
    std::size_t warmHead = 0; ///< oldest entry once the ring is full
    std::size_t warmCap = 0;

    // Functional TLB model fed the full program-order translation
    // stream: the direct-mapped L2 has unbounded memory (a page last
    // touched millions of instructions ago survives until its slot
    // conflicts), so no bounded replay window can reconstruct it — it
    // is modelled exactly and snapshotted per checkpoint instead. The
    // L1 models matter only as miss filters: which accesses reach the
    // L2 (and thus which slot writes happen, in which order) depends on
    // them.
    std::unique_ptr<L2Tlb> l2Model;
    std::unique_ptr<TlbHierarchy> itlbModel;
    std::unique_ptr<TlbHierarchy> dtlbModel;

    // Code-line fetch history: first- and last-touch sequence per code
    // line ever fetched (see ArchCheckpoint::codeFirstTouch).
    struct CodeTouch
    {
        std::uint64_t first = 0;
        std::uint64_t last = 0;
    };
    std::unordered_map<Addr, CodeTouch> codeTouch;
    Addr prevCodeLine = ~Addr(0);

    if (cfg) {
        warmCap = std::size_t(16) *
                  (cfg->llc.sizeBytes + cfg->l1d.sizeBytes) / lineBytes;
        warmRing.reserve(warmCap);
        // One-time setup before the instruction loop, not per-uop work.
        // tea_lint: allow(hot-alloc)
        l2Model = std::make_unique<L2Tlb>(cfg->tlb.l2Entries);
        // tea_lint: allow(hot-alloc)
        itlbModel =
            std::make_unique<TlbHierarchy>(cfg->tlb, *l2Model, "itlb-pre");
        // tea_lint: allow(hot-alloc)
        dtlbModel =
            std::make_unique<TlbHierarchy>(cfg->tlb, *l2Model, "dtlb-pre");
    }

    while (count < max_uops) {
        if (count == next_ck) {
            recordCheckpoint(plan, count, pc, st, bp.get());
            ArchCheckpoint &ck = plan.checkpoints.back();
            if (!warmRing.empty()) {
                // Unroll the ring oldest-first into the checkpoint's
                // own copy (one bounded allocation per checkpoint).
                std::vector<WarmAccess> &wa = ck.warmAccesses;
                wa.reserve(warmRing.size());
                wa.insert(wa.end(), warmRing.begin() + warmHead,
                          warmRing.end());
                wa.insert(wa.end(), warmRing.begin(),
                          warmRing.begin() + warmHead);
            }
            if (cfg) {
                ck.l2Tlb = l2Model->snapshotValid();
                // Code lines in first- and last-fetch order (the
                // footprint is a handful of lines; the sort is noise).
                std::vector<std::pair<std::uint64_t, Addr>> order;
                order.reserve(codeTouch.size());
                for (const auto &[line, t] : codeTouch)
                    order.emplace_back(t.first, line);
                std::sort(order.begin(), order.end());
                ck.codeFirstTouch.reserve(order.size());
                for (const auto &[seq, line] : order)
                    ck.codeFirstTouch.push_back(line);
                order.clear();
                for (const auto &[line, t] : codeTouch)
                    order.emplace_back(t.last, line);
                std::sort(order.begin(), order.end());
                ck.codeLastUse.reserve(order.size());
                for (const auto &[seq, line] : order)
                    ck.codeLastUse.push_back(line);
            }
            next_ck += interval_uops;
        }
        const StaticInst &si = prog.inst(pc);
        if (cfg) {
            // Instruction side, before execute (fetch order): feed the
            // ITLB model and the touch history per code-line
            // transition — repeats within a line neither reach the L2
            // nor change which line was fetched last.
            const Addr fetchAddr = prog.pcOf(pc);
            const Addr line = lineOf(fetchAddr);
            if (line != prevCodeLine) {
                prevCodeLine = line;
                itlbModel->translate(fetchAddr);
                CodeTouch &t = codeTouch[line];
                if (t.first == 0)
                    t.first = count + 1;
                t.last = count + 1;
            }
        }
        ExecResult er = execute(prog, pc, st);
        ++count;
        if (bp && si.isCondBranch())
            bp->update(pc, er.taken);
        if (cfg && (si.isLoad() || si.isStore()))
            dtlbModel->translate(er.memAddr);
        if (warmCap && si.isMem()) {
            WarmAccess wa;
            wa.addr = er.memAddr;
            wa.kind = si.isLoad()    ? WarmAccess::Load
                      : si.isStore() ? WarmAccess::Store
                                     : WarmAccess::Prefetch;
            if (warmRing.size() < warmCap) {
                warmRing.push_back(wa);
            } else {
                warmRing[warmHead] = wa;
                warmHead = (warmHead + 1) % warmCap;
            }
        }
        if (si.isStore()) {
            // The executor wrote exactly one aligned word; read it
            // back so the log carries the value-after (idempotent
            // replay, no need to interpret the store semantics here).
            const Addr word = er.memAddr & ~Addr(7);
            plan.memLog.push_back(MemDelta{word, st.mem.read(word)});
        }
        if (er.halted) {
            plan.halted = true;
            break;
        }
        pc = er.nextPc;
    }
    plan.totalUops = count;
    return plan;
}

// tea_lint: hot
ArchState
materializeState(const ArchState &initial, const CheckpointPlan &plan,
                 const ArchCheckpoint &ck)
{
    tea_assert(ck.memMark <= plan.memLog.size(),
               "checkpoint memory mark %zu beyond log size %zu",
               ck.memMark, plan.memLog.size());
    // One state copy per restore is the floor for this operation (a
    // restarted core needs its own image); everything else below is
    // in-place word writes onto the copy's existing or demand-created
    // pages.
    ArchState st = initial;
    st.regs = ck.regs;
    for (std::size_t i = 0; i < ck.memMark; ++i)
        st.mem.write(plan.memLog[i].addr, plan.memLog[i].value);
    return st;
}

} // namespace tea
