/**
 * @file
 * Cycle-trace serialization (the TraceDoctor role in the paper's §4):
 * dump the full cycle-by-cycle trace of one simulation to a binary file
 * and replay it later through any set of TraceSinks. This is what lets
 * many analysis configurations be evaluated out-of-band from a single
 * simulation run.
 *
 * Two formats live here:
 *  - TraceWriter/replayTrace: the original tagged fixed-width stream
 *    (simple, appendable, fatal on I/O error — for explicit dumps).
 *  - CompactTraceWriter/MappedTraceFile: the trace-cache format — a
 *    validated header plus CoreStats snapshot plus compact SoA chunk
 *    frames (core/trace_codec), published by atomic rename and read
 *    back zero-copy through mmap. Cache writes are best-effort (warn,
 *    never fatal): the experiment's results are computed in memory, so
 *    a full disk must not kill the run, only the cache entry.
 */

#ifndef TEA_CORE_TRACE_IO_HH
#define TEA_CORE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.hh"
#include "core/core.hh"
#include "core/trace.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"

namespace tea {

/** TraceSink that streams every trace event to a binary file. */
class TraceWriter : public TraceSink
{
  public:
    /** Open @p path for writing (fatal on failure). */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void onCycle(const CycleRecord &rec) override;
    void onDispatch(const UopRecord &rec) override;
    void onFetch(const UopRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

    /**
     * Flush and close the file (also done by the destructor). Fatal if
     * the flush or close fails: buffered writes mean a full disk often
     * only surfaces here, and a silently truncated trace would corrupt
     * every analysis replayed from it.
     */
    void close();

  private:
    void put(const void *data, std::size_t bytes);

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t events_ = 0;
};

/**
 * Replay a trace file through @p sinks, delivering events in the exact
 * order the simulation produced them. @return number of replayed cycles
 */
Cycle replayTrace(const std::string &path,
                  const std::vector<TraceSink *> &sinks);

/**
 * Streaming writer of the compact chunked trace-cache format.
 *
 * Writes to a uniquely named temporary file next to @p final_path;
 * commit() seals the header (counts, CRCs), fsyncs, and atomically
 * renames onto the final path, so readers only ever observe complete
 * files. If the writer is destroyed without commit() the temporary is
 * unlinked. All I/O errors demote the writer to inactive with a warning
 * — the cache is an accelerator, never a correctness dependency.
 */
class CompactTraceWriter
{
  public:
    CompactTraceWriter(std::string final_path, std::uint64_t fingerprint);
    ~CompactTraceWriter();

    CompactTraceWriter(const CompactTraceWriter &) = delete;
    CompactTraceWriter &operator=(const CompactTraceWriter &) = delete;

    /** False once any I/O error has been hit (entry abandoned). */
    bool active() const { return file_ != nullptr; }

    /** Encode and append one chunk frame. */
    void writeChunk(const TraceChunk &chunk);

    /**
     * Admission control: abandon the entry (with a warning) as soon as
     * it grows past @p max_bytes — an entry larger than the whole cache
     * budget can never survive a janitor pass, so finishing the write
     * only wastes disk and eviction work. 0 (the default) disables the
     * limit.
     */
    void setByteLimit(std::uint64_t max_bytes) { byteLimit_ = max_bytes; }

    /** True when setByteLimit caused the entry to be abandoned. */
    bool admissionDenied() const { return admissionDenied_; }

    /**
     * Seal and publish the entry, embedding the simulation's final
     * @p stats so cache hits can reproduce them without simulating.
     * After the tmp→final rename, the containing directory is fsync'd
     * so the rename itself survives power-loss ordering, not just
     * process death (a failing directory fsync degrades the durability
     * guarantee with a warning; the entry is still valid this boot).
     * @return true when the entry is durably in place
     */
    bool commit(const CoreStats &stats);

    /**
     * On-disk size of the entry so far (header + stats + frames), the
     * same figure MappedTraceFile::fileBytes() reports on a hit.
     */
    std::uint64_t bytesWritten() const;

    /**
     * Transient-I/O retry counters for this entry (tmp-file creation,
     * fsync and the publishing rename are retried with backoff; see
     * common/retry.hh). Merged into ReplayStats by the runner.
     */
    const RetryStats &retryStats() const { return retryStats_; }

  private:
    void abandon();

    std::FILE *file_ = nullptr;
    std::string finalPath_;
    std::string tmpPath_;
    std::uint64_t fingerprint_ = 0;
    std::uint64_t chunkCount_ = 0;
    std::uint64_t eventCount_ = 0;
    std::uint64_t cycleCount_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t byteLimit_ = 0; ///< admission cap (0 = unlimited)
    bool admissionDenied_ = false;
    std::vector<std::uint8_t> scratch_; ///< reused frame encode buffer
    RetryPolicy retryPolicy_;
    RetryStats retryStats_;
};

/**
 * Memory-mapped, zero-copy reader of the compact trace-cache format.
 *
 * open() maps the file and validates *everything* up front — magic,
 * codec version, header CRC, fingerprint, CoreStats CRC, and the CRC
 * and bounds of every chunk frame — before a single event can be
 * delivered, so a corrupted or truncated file can never poison an
 * observer mid-replay: it simply fails to open (with a reason) and the
 * caller falls back to simulation. After open() succeeds, chunks are
 * decoded on demand straight out of the mapping (no read buffers, no
 * up-front materialization of the trace).
 */
class MappedTraceFile
{
  public:
    ~MappedTraceFile();

    MappedTraceFile(const MappedTraceFile &) = delete;
    MappedTraceFile &operator=(const MappedTraceFile &) = delete;

    /**
     * Map and validate @p path.
     * @param expected_fingerprint the (workload, config, codec) key the
     *        caller derived; a mismatch rejects the file
     * @param why_not set to a human-readable reason on failure
     * @param sys_err set to the failing syscall's errno when the
     *        rejection came from open/stat/mmap (so the caller can
     *        classify it transient and retry), 0 when the file itself
     *        failed validation (damage — retrying cannot help)
     * @return the reader, or nullptr when the file is missing, stale,
     *         truncated or corrupt
     */
    static std::unique_ptr<MappedTraceFile>
    open(const std::string &path, std::uint64_t expected_fingerprint,
         std::string *why_not, int *sys_err = nullptr);

    /** Simulation statistics captured when the trace was recorded. */
    const CoreStats &coreStats() const { return stats_; }

    std::uint64_t chunkCount() const { return chunkCount_; }
    std::uint64_t eventCount() const { return eventCount_; }
    std::uint64_t cycleCount() const { return cycleCount_; }

    /** Size of the mapped file in bytes. */
    std::uint64_t fileBytes() const { return size_; }

    /** Reset the chunk cursor to the first chunk. */
    void rewind() { nextFrame_ = 0; }

    /**
     * Decode and return the next chunk, or nullptr after the last one.
     * The file was fully CRC-verified at open(), so a decode failure
     * here is an internal invariant violation (panic), not a user
     * error. Uses the file's own decoder; not thread-safe.
     */
    TraceChunkPtr nextChunk();

    /**
     * Random access for parallel decode: frames are self-contained
     * (all codec delta state resets per frame), so any frame can be
     * decoded independently of its neighbours. The frame offset table
     * is built during open()'s validation scan.
     */
    std::size_t frameCount() const { return frameOffsets_.size(); }

    /**
     * Decode frame @p index through the caller's @p decoder. Reads
     * only immutable mapped bytes, so any number of threads may decode
     * disjoint frames concurrently, each with its own decoder. Panics
     * on decode failure, like nextChunk().
     */
    TraceChunkPtr decodeFrame(std::size_t index,
                              ChunkDecoder &decoder) const;

    /**
     * Same, decoding into caller-owned storage (@p out is replaced).
     * Callers looping over frames reuse one chunk to keep its event
     * vector's pages warm instead of paying a fresh allocation (and
     * the kernel's page zeroing) per frame.
     */
    void decodeFrameInto(std::size_t index, ChunkDecoder &decoder,
                         TraceChunk &out) const;

  private:
    MappedTraceFile() = default;

    const std::uint8_t *base_ = nullptr;
    std::size_t size_ = 0;
    std::size_t payloadOffset_ = 0;
    std::size_t nextFrame_ = 0; ///< nextChunk() cursor (frame index)
    std::string path_;
    CoreStats stats_{};
    std::uint64_t chunkCount_ = 0;
    std::uint64_t eventCount_ = 0;
    std::uint64_t cycleCount_ = 0;
    std::vector<std::size_t> frameOffsets_; ///< byte offset per frame
    ChunkDecoder decoder_;
    /**
     * nextChunk() storage ring. Entries are reused once the consumer
     * has dropped them, so a caller holding a batch of n decoded
     * chunks in flight grows the ring to n+1 slots and every later
     * decode recycles warm storage instead of paying a fresh
     * chunk-sized allocation (and the kernel's page zeroing) per
     * frame.
     */
    std::vector<std::shared_ptr<TraceChunk>> scratch_;
    std::size_t scratchNext_ = 0; ///< ring rotation cursor
};

} // namespace tea

#endif // TEA_CORE_TRACE_IO_HH
