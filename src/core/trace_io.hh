/**
 * @file
 * Cycle-trace serialization (the TraceDoctor role in the paper's §4):
 * dump the full cycle-by-cycle trace of one simulation to a binary file
 * and replay it later through any set of TraceSinks. This is what lets
 * many analysis configurations be evaluated out-of-band from a single
 * simulation run.
 */

#ifndef TEA_CORE_TRACE_IO_HH
#define TEA_CORE_TRACE_IO_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace tea {

/** TraceSink that streams every trace event to a binary file. */
class TraceWriter : public TraceSink
{
  public:
    /** Open @p path for writing (fatal on failure). */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void onCycle(const CycleRecord &rec) override;
    void onDispatch(const UopRecord &rec) override;
    void onFetch(const UopRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;

    /** Events written so far. */
    std::uint64_t eventsWritten() const { return events_; }

    /**
     * Flush and close the file (also done by the destructor). Fatal if
     * the flush or close fails: buffered writes mean a full disk often
     * only surfaces here, and a silently truncated trace would corrupt
     * every analysis replayed from it.
     */
    void close();

  private:
    void put(const void *data, std::size_t bytes);

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t events_ = 0;
};

/**
 * Replay a trace file through @p sinks, delivering events in the exact
 * order the simulation produced them. @return number of replayed cycles
 */
Cycle replayTrace(const std::string &path,
                  const std::vector<TraceSink *> &sinks);

} // namespace tea

#endif // TEA_CORE_TRACE_IO_HH
