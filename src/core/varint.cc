#include "varint.hh"

#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace tea {

namespace {

/**
 * Decode one varint the way the original per-value reader did:
 * accumulate 7-bit groups while shift < 64 (bits past 63 are silently
 * discarded at shift 63, matching `v |= (b & 0x7f) << shift` on
 * uint64), then reject a continuation bit that survives past the
 * 64-bit boundary or a stream that ends mid-varint. Returns the new
 * cursor, or nullptr on malformed input.
 */
inline const std::uint8_t *decodeOneVarint(const std::uint8_t *p,
                                           const std::uint8_t *end,
                                           std::uint64_t *out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p < end && shift < 64) {
        const std::uint8_t b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            *out = v;
            return p;
        }
        shift += 7;
    }
    return nullptr; // truncated, or continuation past 64 bits
}

} // namespace

// tea_lint: hot
bool decodeVarintsScalar(const std::uint8_t *p, std::size_t len,
                         std::uint64_t *out, std::size_t *count)
{
    const std::uint8_t *end = p + len;
    std::size_t n = 0;
    while (p < end) {
        const std::uint8_t b = *p;
        if (!(b & 0x80)) { // one-byte value: the common case by far
            out[n++] = b;
            ++p;
            continue;
        }
        if (end - p >= 2 && !(p[1] & 0x80)) { // two-byte value
            out[n++] =
                (b & 0x7fu) | (static_cast<std::uint64_t>(p[1]) << 7);
            p += 2;
            continue;
        }
        p = decodeOneVarint(p, end, &out[n]);
        if (!p)
            return false;
        ++n;
    }
    *count = n;
    return true;
}

#if defined(__x86_64__)

namespace {

/**
 * Widen 16 bytes to 16 uint64 lanes via zero-extending unpack chains
 * (SSE2 has no cvtepu8). The caller guarantees @p dst has room for all
 * 16 values even when fewer are ultimately claimed: every emitted value
 * consumes at least one input byte, so inside a "16+ bytes remain" loop
 * `n + 16 <= len` always holds, and unclaimed slots are overwritten by
 * later emissions or ignored past the final count.
 */
inline void widenStore16(__m128i bytes, std::uint64_t *dst)
{
    const __m128i z = _mm_setzero_si128();
    const __m128i w0 = _mm_unpacklo_epi8(bytes, z); // u16: bytes 0..7
    const __m128i w1 = _mm_unpackhi_epi8(bytes, z); // u16: bytes 8..15
    const __m128i d0 = _mm_unpacklo_epi16(w0, z);   // u32: bytes 0..3
    const __m128i d1 = _mm_unpackhi_epi16(w0, z);   // u32: bytes 4..7
    const __m128i d2 = _mm_unpacklo_epi16(w1, z);   // u32: bytes 8..11
    const __m128i d3 = _mm_unpackhi_epi16(w1, z);   // u32: bytes 12..15
    __m128i *o = reinterpret_cast<__m128i *>(dst);
    _mm_storeu_si128(o + 0, _mm_unpacklo_epi32(d0, z));
    _mm_storeu_si128(o + 1, _mm_unpackhi_epi32(d0, z));
    _mm_storeu_si128(o + 2, _mm_unpacklo_epi32(d1, z));
    _mm_storeu_si128(o + 3, _mm_unpackhi_epi32(d1, z));
    _mm_storeu_si128(o + 4, _mm_unpacklo_epi32(d2, z));
    _mm_storeu_si128(o + 5, _mm_unpackhi_epi32(d2, z));
    _mm_storeu_si128(o + 6, _mm_unpacklo_epi32(d3, z));
    _mm_storeu_si128(o + 7, _mm_unpackhi_epi32(d3, z));
}

} // namespace

// tea_lint: hot
bool decodeVarintsSse2(const std::uint8_t *p, std::size_t len,
                       std::uint64_t *out, std::size_t *count)
{
    const std::uint8_t *end = p + len;
    std::size_t n = 0;
    while (end - p >= 16) {
        const __m128i bytes =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        // Widen all 16 bytes unconditionally (see widenStore16); the
        // continuation-bit mask then decides how many are claimed.
        widenStore16(bytes, out + n);
        const unsigned mask =
            static_cast<unsigned>(_mm_movemask_epi8(bytes)) & 0xffffu;
        if (mask == 0) { // 16 single-byte values at once
            n += 16;
            p += 16;
            continue;
        }
        // Claim the leading run of single-byte values from the widened
        // stores, then drain the REST of the block off the same mask —
        // no reload, no re-widen: two- and three-byte varints (the
        // dominant multi-byte cases) decode in place with the width
        // selected arithmetically from the continuation mask (so
        // alternating widths cost no mispredicts; p[off+2] may be read
        // before the select discards it, off < 14 keeps it in-window),
        // and the singles between them are emitted scalarly because
        // value compression has shifted them off their widened slots.
        unsigned off = static_cast<unsigned>(__builtin_ctz(mask));
        n += off;
        bool advanced = false; // p advanced by the generic fallback
        while (off < 16) {
            if (!((mask >> off) & 1u)) {
                out[n++] = p[off++];
                continue;
            }
            const unsigned tail = (mask >> off) >> 1;
            if (off < 14 && (tail & 3u) != 3u) {
                const std::uint64_t b1c = tail & 1u; // 2nd byte continues?
                const std::uint64_t m = ~(b1c - 1); // all-ones: 3-byte
                out[n++] =
                    (p[off] & 0x7fu) |
                    ((p[off + 1] & (0xffu ^ (0x80u & m))) << 7) |
                    ((static_cast<std::uint64_t>(p[off + 2]) << 14) & m);
                off += 2 + static_cast<unsigned>(b1c);
            } else {
                const std::uint8_t *q =
                    decodeOneVarint(p + off, end, &out[n]);
                if (!q)
                    return false;
                ++n;
                p = q;
                advanced = true;
                break;
            }
        }
        if (!advanced)
            p += off;
    }
    while (p < end) {
        const std::uint8_t b = *p;
        if (!(b & 0x80)) {
            out[n++] = b;
            ++p;
            continue;
        }
        p = decodeOneVarint(p, end, &out[n]);
        if (!p)
            return false;
        ++n;
    }
    *count = n;
    return true;
}

// tea_lint: hot
__attribute__((target("avx2"))) bool
decodeVarintsAvx2(const std::uint8_t *p, std::size_t len,
                  std::uint64_t *out, std::size_t *count)
{
    const std::uint8_t *end = p + len;
    std::size_t n = 0;
    while (end - p >= 32) {
        const __m256i bytes =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        const unsigned mask =
            static_cast<unsigned>(_mm256_movemask_epi8(bytes));
        // Widen with zero-extending converts, speculatively: the first
        // 8 output slots always (in-bounds for the same reason as
        // widenStore16 — every value consumes at least one input byte,
        // so n + 32 <= len here), the remaining 24 only when at least
        // the leading 9 bytes are single-byte values and could need
        // them. On delta streams with frequent multi-byte varints the
        // window usually breaks early, and the skipped stores are the
        // bulk of the emit cost.
        const __m128i lo = _mm256_castsi256_si128(bytes);
        __m256i *o = reinterpret_cast<__m256i *>(out + n);
        _mm256_storeu_si256(o + 0, _mm256_cvtepu8_epi64(lo));
        _mm256_storeu_si256(o + 1,
                            _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 4)));
        if ((mask & 0x1ffu) == 0) {
            const __m128i hi = _mm256_extracti128_si256(bytes, 1);
            _mm256_storeu_si256(
                o + 2, _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 8)));
            _mm256_storeu_si256(
                o + 3, _mm256_cvtepu8_epi64(_mm_srli_si128(lo, 12)));
            _mm256_storeu_si256(o + 4, _mm256_cvtepu8_epi64(hi));
            _mm256_storeu_si256(
                o + 5, _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 4)));
            _mm256_storeu_si256(
                o + 6, _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 8)));
            _mm256_storeu_si256(
                o + 7, _mm256_cvtepu8_epi64(_mm_srli_si128(hi, 12)));
        }
        if (mask == 0) {
            n += 32;
            p += 32;
            continue;
        }
        // Claim the leading singles from the widened stores, then
        // drain the rest of the block off the same mask — no reload,
        // no re-widen (see the SSE2 kernel for the full rationale).
        // Two- and three-byte varints (the dominant multi-byte cases:
        // PC jumps and larger deltas) decode in place with the width
        // selected arithmetically from the continuation mask, so
        // alternating widths cost no branch mispredicts; p[off + 2]
        // may be read before the select discards it, off < 30 keeps
        // it inside this window.
        unsigned off = static_cast<unsigned>(__builtin_ctz(mask));
        n += off;
        bool advanced = false; // p advanced by the generic fallback
        while (off < 32) {
            if (!((mask >> off) & 1u)) {
                out[n++] = p[off++];
                continue;
            }
            const unsigned tail = (mask >> off) >> 1; // no UB: off < 32
            if (off < 30 && (tail & 3u) != 3u) {
                const std::uint64_t b1c = tail & 1u; // 2nd byte continues?
                const std::uint64_t m = ~(b1c - 1); // all-ones: 3-byte
                out[n++] =
                    (p[off] & 0x7fu) |
                    ((p[off + 1] & (0xffu ^ (0x80u & m))) << 7) |
                    ((static_cast<std::uint64_t>(p[off + 2]) << 14) & m);
                off += 2 + static_cast<unsigned>(b1c);
            } else {
                const std::uint8_t *q =
                    decodeOneVarint(p + off, end, &out[n]);
                if (!q)
                    return false;
                ++n;
                p = q;
                advanced = true;
                break;
            }
        }
        if (!advanced)
            p += off;
    }
    return decodeVarintsSse2(p, static_cast<std::size_t>(end - p),
                             out + n, count)
               ? (*count += n, true)
               : false;
}

#else // !__x86_64__

bool decodeVarintsSse2(const std::uint8_t *p, std::size_t len,
                       std::uint64_t *out, std::size_t *count)
{
    return decodeVarintsScalar(p, len, out, count);
}

bool decodeVarintsAvx2(const std::uint8_t *, std::size_t, std::uint64_t *,
                       std::size_t *)
{
    tea_fatal("varint: AVX2 kernel invoked on a non-x86-64 build");
}

#endif // __x86_64__

namespace {

bool hostSupports(VarintKernel k)
{
    switch (k) {
    case VarintKernel::Scalar:
        return true;
    case VarintKernel::Sse2:
#if defined(__x86_64__)
        return true; // SSE2 is the x86-64 baseline
#else
        return false;
#endif
    case VarintKernel::Avx2:
#if defined(__x86_64__)
        return __builtin_cpu_supports("avx2");
#else
        return false;
#endif
    }
    tea_fatal("varint: unknown kernel %d", static_cast<int>(k));
}

VarintKernel pickKernel()
{
    if (const char *env = std::getenv("TEA_SIMD")) {
        if (!std::strcmp(env, "0") || !std::strcmp(env, "scalar"))
            return VarintKernel::Scalar;
        if (!std::strcmp(env, "sse2") && hostSupports(VarintKernel::Sse2))
            return VarintKernel::Sse2;
        if (!std::strcmp(env, "avx2") && hostSupports(VarintKernel::Avx2))
            return VarintKernel::Avx2;
        if (std::strcmp(env, "1") && std::strcmp(env, "auto"))
            tea_warn("varint: TEA_SIMD=%s unsupported here, using auto",
                     env);
    }
    if (hostSupports(VarintKernel::Avx2))
        return VarintKernel::Avx2;
    if (hostSupports(VarintKernel::Sse2))
        return VarintKernel::Sse2;
    return VarintKernel::Scalar;
}

std::atomic<VarintKernel> &kernelSlot()
{
    static std::atomic<VarintKernel> slot{pickKernel()};
    return slot;
}

} // namespace

const char *varintKernelName(VarintKernel k)
{
    switch (k) {
    case VarintKernel::Scalar:
        return "scalar";
    case VarintKernel::Sse2:
        return "sse2";
    case VarintKernel::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool varintKernelSupported(VarintKernel k)
{
    return hostSupports(k);
}

VarintKernel activeVarintKernel()
{
    // relaxed: the slot holds a self-contained enum; whichever kernel a
    // reader observes is valid, and tests that switch kernels do so on
    // one thread before dispatching work.
    return kernelSlot().load(std::memory_order_relaxed);
}

void setVarintKernel(VarintKernel k)
{
    if (!hostSupports(k))
        tea_fatal("varint: kernel %s unsupported on this host",
                  varintKernelName(k));
    // relaxed: same contract as activeVarintKernel() above — the enum
    // is the entire payload, no memory is published alongside it.
    kernelSlot().store(k, std::memory_order_relaxed);
}

bool decodeVarints(const std::uint8_t *p, std::size_t len,
                   std::uint64_t *out, std::size_t *count)
{
    switch (activeVarintKernel()) {
    case VarintKernel::Avx2:
        return decodeVarintsAvx2(p, len, out, count);
    case VarintKernel::Sse2:
        return decodeVarintsSse2(p, len, out, count);
    case VarintKernel::Scalar:
        return decodeVarintsScalar(p, len, out, count);
    }
    return decodeVarintsScalar(p, len, out, count);
}

} // namespace tea
