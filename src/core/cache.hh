/**
 * @file
 * Set-associative cache tag array with true-LRU replacement and an MSHR
 * file that merges requests to outstanding lines.
 */

#ifndef TEA_CORE_CACHE_HH
#define TEA_CORE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"

namespace tea {

class Fnv1a;

/** Result of inserting a line: what was evicted, if anything. */
struct Eviction
{
    bool valid = false; ///< an occupied line was evicted
    bool dirty = false; ///< the evicted line was dirty
    Addr line = 0;      ///< evicted line address
};

/**
 * Tag array of a set-associative, true-LRU, write-back cache.
 *
 * Pure state container: levels are composed (with latencies, MSHRs and
 * bandwidth) by MemorySystem.
 */
class CacheArray
{
  public:
    CacheArray(const CacheConfig &cfg, std::string name);

    /** Probe for @p line without touching LRU state. */
    bool contains(Addr line) const;

    /** Probe and, on hit, update LRU. @return hit */
    bool access(Addr line);

    /** Insert @p line, evicting the LRU way if the set is full. */
    Eviction insert(Addr line, bool dirty);

    /** Mark @p line dirty if present. */
    void markDirty(Addr line);

    /** Invalidate @p line if present. */
    void invalidate(Addr line);

    unsigned numSets() const { return numSets_; }
    const std::string &name() const { return name_; }

    /**
     * Mix the array's *behavioral* state into @p h: per set, the valid
     * (line, dirty) pairs in LRU-to-MRU order. Replacement decisions
     * depend only on this relative order, never on absolute use-clock
     * values, so two arrays with equal fingerprints evolve identically
     * under identical access streams. Statistics are excluded on
     * purpose (a warmed core's counters legitimately differ).
     */
    void fingerprintState(Fnv1a &h) const;

    // Statistics.
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setOf(Addr line) const;
    Way *find(Addr line);
    const Way *find(Addr line) const;

    std::string name_;
    unsigned ways_;
    unsigned numSets_;
    std::vector<Way> tags_; ///< numSets_ * ways_, set-major
    std::uint64_t useClock_ = 0;
};

/**
 * Miss-status holding registers: outstanding line fills with merge
 * support and a bounded number of concurrently outstanding lines.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries);

    /**
     * Earliest cycle at which a new miss can allocate an MSHR. Returns
     * @p now when an entry is free, otherwise the earliest fill time.
     */
    Cycle allocatableAt(Cycle now);

    /** Record a fill in flight for @p line completing at @p fill. */
    void allocate(Addr line, Cycle fill);

    /**
     * If @p line is already outstanding, return its fill cycle (merge);
     * otherwise return invalidCycle.
     */
    Cycle outstandingFill(Addr line, Cycle now);

    /** Current number of outstanding entries (after pruning @p now). */
    unsigned inFlight(Cycle now);

    /** Drop all outstanding fills (checkpoint warm-replay reset). */
    void clear() { pending_.clear(); }

    /**
     * Mix the live entries (fill > @p base) into @p h with fill times
     * rebased to @p base, sorted by line so lazy-pruning order does
     * not leak in. Entries at or before @p base are behaviorally dead
     * (every probe prunes them first) and are skipped.
     */
    void fingerprintState(Fnv1a &h, Cycle base) const;

  private:
    /** One outstanding line fill. */
    struct Pending
    {
        Addr line = 0;
        Cycle fill = 0;
    };

    void prune(Cycle now);
    Pending *find(Addr line);

    unsigned entries_;
    /**
     * Outstanding fills, unordered. Bounded by entries_ (a handful to a
     * few dozen), and probed on every cache access, so a flat array with
     * linear scans beats a node-based map: no allocation per miss, and
     * the whole file fits in one or two cache lines.
     */
    std::vector<Pending> pending_;
};

} // namespace tea

#endif // TEA_CORE_CACHE_HH
