/**
 * @file
 * Conditional-branch direction predictors.
 *
 * The paper's baseline (Table 2) uses a 28 KB TAGE predictor; we provide
 * a TAGE implementation (default, sized to ~24 KB) and a simpler gshare
 * for ablation. Jump, call and return targets are treated as always
 * predicted correctly (static targets plus an idealized return-address
 * stack), so mispredictions -- and hence FL-MB events -- arise only from
 * conditional-branch directions, as in the paper's case studies.
 */

#ifndef TEA_CORE_BRANCH_PREDICTOR_HH
#define TEA_CORE_BRANCH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"

namespace tea {

/** Direction-predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(InstIndex pc) const = 0;

    /** Train with the actual @p taken outcome and update history. */
    virtual void update(InstIndex pc, bool taken) = 0;

    /** Approximate storage budget in bits. */
    virtual std::uint64_t storageBits() const = 0;

    /**
     * Deep-copy the full predictor state (tables, history, counters).
     *
     * Because predict() is const and the core trains the predictor at
     * fetch along the oracle-correct path, predictor state is a pure
     * function of the architectural branch sequence — so a snapshot
     * taken by a functional pre-pass that replays update() per branch
     * is bit-identical to the timing core's state at the same dynamic
     * instruction (core/checkpoint relies on this for warm restarts).
     */
    virtual std::unique_ptr<BranchPredictor> clone() const = 0;

    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

  protected:
    /** Count one trained outcome against the pre-update prediction. */
    void
    account(bool predicted, bool taken)
    {
        ++lookups;
        if (predicted != taken)
            ++mispredicts;
    }
};

/** gshare with 2-bit saturating counters (ablation baseline). */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(const CoreConfig &cfg);

    bool predict(InstIndex pc) const override;
    void update(InstIndex pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<GsharePredictor>(*this);
    }

  private:
    std::size_t index(InstIndex pc) const;

    std::vector<std::uint8_t> table_; ///< 2-bit counters
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

/**
 * TAGE-lite: a bimodal base table plus tagged components indexed with
 * geometrically growing global-history lengths; prediction comes from
 * the longest matching component, with allocate-on-mispredict and
 * usefulness-based replacement (Seznec-style, simplified).
 */
class TagePredictor : public BranchPredictor
{
  public:
    explicit TagePredictor(const CoreConfig &cfg);

    bool predict(InstIndex pc) const override;
    void update(InstIndex pc, bool taken) override;
    std::uint64_t storageBits() const override;
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<TagePredictor>(*this);
    }

  private:
    static constexpr unsigned numTables = 5;
    static constexpr unsigned tableBits = 11; ///< 2048 entries/table
    static constexpr unsigned tagBits = 10;
    static constexpr std::array<unsigned, numTables> historyLengths{
        4, 10, 24, 56, 128};

    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t counter = 3; ///< 3-bit, >=4 predicts taken
        std::uint8_t useful = 0;  ///< 2-bit usefulness
    };

    /** Fold the first @p len history bits into @p bits bits. */
    std::uint64_t foldedHistory(unsigned len, unsigned bits) const;
    std::size_t indexOf(unsigned table, InstIndex pc) const;
    std::uint16_t tagOf(unsigned table, InstIndex pc) const;

    /** Longest matching component (-1 = bimodal). */
    int bestMatch(InstIndex pc) const;
    bool predictWith(int table, InstIndex pc) const;

    std::vector<std::uint8_t> bimodal_; ///< 2-bit counters
    std::array<std::vector<TaggedEntry>, numTables> tables_;
    // Global history as a bit deque (newest in bit 0).
    std::array<std::uint64_t, 4> history_{}; ///< 256 bits
    std::uint64_t allocSeed_ = 0x1234567;    ///< replacement tiebreaks
};

/** Construct the predictor selected by @p cfg. */
std::unique_ptr<BranchPredictor> makePredictor(const CoreConfig &cfg);

} // namespace tea

#endif // TEA_CORE_BRANCH_PREDICTOR_HH
