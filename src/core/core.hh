/**
 * @file
 * Cycle-driven out-of-order core timing model (BOOM-class, Table 2).
 *
 * Organization: instructions are executed functionally at fetch along the
 * correct path (oracle execution) and their outcomes (branch directions,
 * effective addresses) are replayed through the timing pipeline:
 *
 *   fetch -> fetch buffer -> dispatch/rename -> issue queues -> execute
 *         -> commit (4-wide, in-order) -> post-commit store drain
 *
 * The model implements everything TEA needs to observe: the four commit
 * states, PSV tracking for all in-flight micro-ops (2-bit front-end PSV,
 * 9-bit ROB PSV, ST-TLB in the LSU, last-committed PSV register),
 * mispredict/flush barriers, memory-ordering violation squashes, DR-SQ
 * store-queue backpressure, and the full cache/TLB hierarchy.
 *
 * Wrong-path fetch is modelled as fetch bubbles rather than dead
 * micro-ops (see DESIGN.md): on a mispredicted branch or an
 * always-flushing CSR op, fetch stalls until resolve/commit plus the
 * redirect penalty, which produces the same Flushed-state phenomenology
 * at commit without simulating wrong-path register state.
 *
 * Two execution modes share the stage implementations (DESIGN.md,
 * "Simulator fast path"):
 *  - the reference loop (step()/TEA_CORE_FASTPATH=0) ticks every cycle;
 *  - the fast path (run() by default) executes stages only on cycles a
 *    conservative wake calendar proves can have activity, bulk-emitting
 *    the constant idle commit frames for every skipped cycle so the
 *    observable trace stays bit-identical.
 */

#ifndef TEA_CORE_CORE_HH
#define TEA_CORE_CORE_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bounded_ring.hh"
#include "common/types.hh"
#include "core/branch_predictor.hh"
#include "core/config.hh"
#include "core/memory_system.hh"
#include "core/trace.hh"
#include "core/trace_buffer.hh"
#include "events/event.hh"
#include "isa/executor.hh"
#include "isa/program.hh"

namespace tea {

/** Aggregate statistics of one simulation. */
struct ArchCheckpoint;

struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t committedUops = 0;
    std::array<std::uint64_t, 4> stateCycles{}; ///< per CommitState
    std::array<std::uint64_t, numEvents> eventCounts{}; ///< at retire
    std::uint64_t uopsWithEvents = 0;    ///< retired with >= 1 event
    std::uint64_t uopsWithCombined = 0;  ///< retired with >= 2 events
    std::uint64_t branchMispredicts = 0;
    std::uint64_t pipelineFlushes = 0;   ///< mispredicts + CSR flushes
    std::uint64_t moViolations = 0;
    std::uint64_t drSqStallCycles = 0;
    std::uint64_t samplingInterrupts = 0;

    /** Committed instructions per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(committedUops) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Render all counters as a gem5-style stats listing. */
    std::string render() const;
};

/**
 * Host-side performance counters of one simulation. Deliberately not
 * part of CoreStats: CoreStats is serialized into trace-cache entries
 * and must describe the simulated machine only, while these describe
 * how the simulator got there (and legitimately differ between the
 * fast path and the reference loop).
 */
struct SimPerf
{
    std::uint64_t activeCycles = 0;  ///< cycles the stages executed
    std::uint64_t skippedCycles = 0; ///< idle cycles bulk-emitted
    std::uint64_t traceEvents = 0;   ///< events delivered to sinks
    std::uint64_t wakeups = 0;       ///< wake-calendar entries consumed

    /** Fraction of simulated cycles skipped by the next-event clock. */
    double skipRatio() const
    {
        std::uint64_t total = activeCycles + skippedCycles;
        return total ? static_cast<double>(skippedCycles) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** The out-of-order core. */
class Core
{
  public:
    /**
     * @param cfg core configuration (must outlive the core)
     * @param prog program to execute (must outlive the core)
     * @param initial initial architectural state (registers and memory)
     */
    Core(const CoreConfig &cfg, const Program &prog, ArchState initial);

    /**
     * Multi-core variant: the memory system below the L1s is the shared
     * @p uncore (must outlive the core).
     */
    Core(const CoreConfig &cfg, const Program &prog, ArchState initial,
         Uncore &uncore);

    /**
     * Checkpoint-resume variant (core/checkpoint): fetch starts at
     * @p start_pc instead of the program entry, with @p initial holding
     * the architectural state materialized at that instruction
     * boundary. @p uop_base is the number of dynamic instructions
     * committed before the boundary; committed-uop-keyed schedules
     * (store-set aging) count from it so they stay aligned with the
     * serial run this core is resuming. When @p warm_predictor is
     * non-null the branch predictor starts from a clone of it (the
     * pre-pass snapshot, bit-identical to serial state at the
     * boundary) instead of cold. Remaining microarchitectural state
     * (caches, TLBs, LSQ history) starts cold — converging it is the
     * caller's warmup problem (analysis/parallel_sim).
     */
    Core(const CoreConfig &cfg, const Program &prog, ArchState initial,
         InstIndex start_pc, std::uint64_t uop_base = 0,
         const BranchPredictor *warm_predictor = nullptr);

    /** Register a trace observer (not owned). */
    void addSink(TraceSink *sink);

    /** Simulate one cycle. @return false once the program has halted */
    bool step();

    /**
     * Run until the program halts or @p max_cycles elapse.
     * @return total simulated cycles
     */
    Cycle run(Cycle max_cycles = 2'000'000'000ULL);

    /**
     * Run one leg: simulate until the end of the cycle in which the
     * cumulative committed-micro-op count reaches @p target_uops (or
     * the program halts, or @p max_cycles elapse), then pause with all
     * pipeline state intact and buffered trace events flushed. Unlike
     * run() this neither asserts halt nor emits End unless the program
     * actually halted, so a caller can stitch several legs into one
     * continuous run — the event stream across legs is bit-identical
     * to a single run() (the time-parallel interval contract,
     * analysis/parallel_sim). Honors the selected execution mode.
     * @return current cycle
     */
    Cycle runUntilCommitted(std::uint64_t target_uops,
                            Cycle max_cycles = 2'000'000'000ULL);

    /**
     * Functionally warm the cache/TLB hierarchy from a checkpoint
     * (core/checkpoint), before any timing cycles have run: replay the
     * code-line prologue and recorded data-access stream
     * (MemorySystem::warmReplay), install the L1I/ITLB end-state
     * (installCodeLines), then overwrite the L2 TLB with the
     * checkpoint's exact functional-model snapshot (installL2Tlb).
     */
    void warmFromCheckpoint(const ArchCheckpoint &ck);

    /**
     * Select the execution mode used by run(): the event-driven fast
     * path (default; overridable via TEA_CORE_FASTPATH=0) or the
     * per-cycle reference loop. Not part of CoreConfig on purpose — the
     * mode must not perturb trace-cache fingerprints, because both
     * modes produce bit-identical traces.
     */
    void setFastPath(bool on) { fastPath_ = on; }
    bool fastPath() const { return fastPath_; }

    /**
     * Hash of the core's latent long-memory state at the current
     * cycle: cache/TLB/MSHR contents (cycle-rebased, LRU-relative; see
     * MemorySystem::fingerprintState) plus the store-set tables. Two
     * paused cores at the same committed-uop boundary with equal
     * fingerprints carry behaviorally identical memory and
     * memory-ordering state. The branch predictor is excluded because
     * it is exact by construction on the checkpoint-resume path (pure
     * function of the architectural branch sequence); pipeline
     * contents are excluded because the stitcher's matched-suffix
     * check covers them. Used as the state leg of the time-parallel
     * convergence acceptance (analysis/parallel_sim).
     */
    std::uint64_t stateFingerprint() const;

    /** Diagnostic decomposition of stateFingerprint() by structure. */
    std::vector<std::pair<const char *, std::uint64_t>>
    stateFingerprintParts() const;

    const CoreStats &stats() const { return stats_; }
    const SimPerf &perf() const { return perf_; }
    const MemorySystem &memory() const { return mem_; }
    const BranchPredictor &predictor() const { return *bp_; }
    const ArchState &archState() const { return arch_; }
    Cycle cycle() const { return cycle_; }
    bool halted() const { return halted_; }

  private:
    /** A dynamic micro-op (fetch buffer and ROB representation). */
    struct DynUop
    {
        SeqNum seq = invalidSeqNum;
        InstIndex pc = invalidInstIndex;
        const StaticInst *si = nullptr;
        Psv psv;

        // Oracle outcomes recorded at fetch.
        Addr memAddr = 0;
        bool taken = false;
        bool mispredicted = false;

        // Timing state.
        Cycle fbReady = 0;    ///< earliest dispatch (decode latency)
        Cycle readyCycle = 0; ///< operands available
        unsigned pendingDeps = 0;
        bool issued = false;
        Cycle completeCycle = invalidCycle;
        std::array<SeqNum, 2> depSeqs{invalidSeqNum, invalidSeqNum};
        std::vector<SeqNum> waiters;
        bool inRob = false;

        bool complete(Cycle now) const
        {
            return issued && completeCycle <= now;
        }
    };

    /** Store-queue entry; lives from dispatch until drained to the L1D. */
    struct SqEntry
    {
        SeqNum seq = invalidSeqNum;
        InstIndex pc = invalidInstIndex;
        Addr addr = 0;
        bool executed = false;
        Cycle execCycle = invalidCycle;
        bool committed = false;
        bool draining = false;
        Cycle drainDone = invalidCycle;
    };

    /** Load-queue entry; lives from dispatch until commit. */
    struct LqEntry
    {
        SeqNum seq = invalidSeqNum;
        InstIndex pc = invalidInstIndex;
        Addr addr = 0;
        bool issued = false;
        Cycle issueCycle = invalidCycle;
        bool forwarded = false;
    };

    /** Issue-queue identifiers. */
    enum IqKind { IqInt = 0, IqMem = 1, IqFp = 2, NumIqs = 3 };

    // Pipeline stages (called in this order each cycle).
    void commitStage();
    void drainStores();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /**
     * Store-set aging: clear the tables whenever the absolute
     * committed-uop count (uopBase_ + committed) crosses a multiple of
     * cfg.storeSetClearInterval. Keying the schedule on committed
     * uops — architectural state — rather than cycles means a
     * checkpoint-resumed core ages on exactly the serial schedule.
     */
    void ageStoreSets();

    /** Order-normalized store-set table hash (stateFingerprint leg). */
    void hashStoreSets(Fnv1a &h) const;

    // Cycle drivers shared by step() and the fast path.
    void init();
    void runStages();
    void endOfCycle();
    Cycle runFast(Cycle max_cycles, std::uint64_t stop_uops);
    void skipIdleCycles(Cycle until);
    bool drSqBlockedNow() const;

    // Wake calendar (see DESIGN.md, "Simulator fast path").
    void scheduleWake(Cycle at);
    Cycle nextWakeAtLeast(Cycle at);

    // Batched trace emission.
    TraceEvent &traceAppend(TraceEventKind kind);
    void flushTrace();
    void emitEnd();

    // Helpers.
    DynUop *uopFor(SeqNum seq);
    IqKind iqOf(InstClass cls) const;
    unsigned execLatency(InstClass cls) const;
    bool tryIssueMem(DynUop &u);
    void scheduleCompletion(DynUop &u, Cycle complete_at);
    void onBarrierResolved(const DynUop &u, Cycle event_cycle);
    void moSquash(SeqNum load_seq);
    void rebuildIqs();
    void retireUop(DynUop &u);
    void emitCycleRecord();

    const CoreConfig &cfg_;
    const Program &prog_;
    ArchState arch_;
    MemorySystem mem_;
    std::unique_ptr<BranchPredictor> bp_;
    std::vector<TraceSink *> sinks_;
    CoreStats stats_;
    SimPerf perf_;
    bool fastPath_ = true;

    Cycle cycle_ = 0;
    SeqNum nextSeq_ = 0;
    bool halted_ = false;
    bool fetchDone_ = false; ///< halt fetched; no more fetching

    // Front end.
    InstIndex fetchPc_;
    Cycle fetchResume_ = 0;      ///< earliest next fetch
    bool pendingDrL1_ = false;   ///< DR bits for the next packet head
    bool pendingDrTlb_ = false;
    SeqNum barrierSeq_ = invalidSeqNum; ///< fetch-blocking micro-op
    bool barrierUntilCommit_ = false;   ///< CSR/halt barriers
    BoundedRing<DynUop> fetchBuffer_;

    // Rename: last in-flight writer of each architectural register.
    std::array<SeqNum, numArchRegs> lastWriter_;

    // ROB as a ring keyed by seq % robEntries.
    std::vector<DynUop> rob_;
    SeqNum robHead_ = 0;  ///< seq of the oldest in-flight micro-op
    unsigned robCount_ = 0;

    // Flat issue queues: program-ordered seq vectors, pre-reserved for
    // the worst case (every ROB entry of one class re-enqueued by a
    // squash), scanned and erased in order like the reference deques.
    std::array<std::vector<SeqNum>, NumIqs> iqs_;
    BoundedRing<SqEntry> sq_;
    BoundedRing<LqEntry> lq_;

    // Unpipelined functional units.
    Cycle divFree_ = 0;
    Cycle fpDivFree_ = 0;
    Cycle fpSqrtFree_ = 0;

    // Memory-dependence (store-set-style) predictor: load pcs that have
    // violated before are issued conservatively.
    std::unordered_set<InstIndex> storeSets_;
    // Committed uops before this core's first instruction (checkpoint
    // resume) — aging below counts absolute uops so a resumed core
    // clears on the same schedule as the serial run it continues.
    std::uint64_t uopBase_ = 0;
    std::uint64_t nextSsClear_ = 0; ///< next absolute-uop clear boundary

    // Oldest load to squash this cycle (deferred so squash never mutates
    // an issue queue mid-scan).
    SeqNum pendingSquash_ = invalidSeqNum;

    // Commit-state bookkeeping.
    bool lastValid_ = false;
    InstIndex lastPc_ = invalidInstIndex;
    Psv lastPsv_;
    bool flushShadow_ = false; ///< ROB empty because of a flush

    // Per-cycle commit info for trace emission.
    std::uint8_t numCommitted_ = 0;
    std::array<CommittedUop, 8> committedThisCycle_{};

    // Wake calendar: min-heap of cycles at which pipeline activity may
    // occur. Conservative by construction — spurious wakes only cost an
    // idle stage pass; every real state change is scheduled (the
    // invariant the fastpath property tests enforce).
    std::vector<Cycle> wake_;

    // Sticky "wake at cycle_+1" flag: the dominant re-schedule, kept
    // out of the heap so busy-cycle chains cost no heap traffic.
    bool wakeNext_ = false;

    // Per-queue conservative lower bound on the earliest cycle any of
    // its entries could issue; lets issueStage() skip whole queues of
    // waiting entries. 0 means "must scan" (always safe).
    std::array<Cycle, NumIqs> iqMinReady_{};

    /** Lower a queue's scan bound when an entry becomes eligible. */
    void iqWake(IqKind k, Cycle at)
    {
        if (at < iqMinReady_[k])
            iqMinReady_[k] = at;
    }

    // Chunk-local trace staging buffer, flushed to sinks via onBatch.
    std::vector<TraceEvent> traceBuf_;
};

} // namespace tea

#endif // TEA_CORE_CORE_HH
