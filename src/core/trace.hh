/**
 * @file
 * Cycle-by-cycle trace interface (the in-process TraceDoctor equivalent).
 *
 * The core publishes, for every simulated cycle, the commit state, the
 * committing micro-ops and their PSVs, the head-of-ROB micro-op, and the
 * last-committed instruction's PSV; it additionally publishes dispatch,
 * fetch and retire events. All profiling techniques are TraceSinks and
 * observe the exact same cycles, mirroring the paper's out-of-band
 * methodology (Section 4).
 */

#ifndef TEA_CORE_TRACE_HH
#define TEA_CORE_TRACE_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "events/event.hh"

namespace tea {

struct TraceEvent; // core/trace_buffer.hh

/** A micro-op committing in this cycle. */
struct CommittedUop
{
    SeqNum seq = invalidSeqNum;
    InstIndex pc = invalidInstIndex;
    Psv psv;
};

/**
 * Per-cycle commit-stage snapshot.
 *
 * Field order is a cache layout decision, not alphabetical: the scalar
 * fields every consumer reads sit before the 128-byte committed array,
 * so a typical record (0-2 commits) is produced and consumed touching
 * only the record's first cache lines. Keep the array last.
 */
struct CycleRecord
{
    Cycle cycle = 0;
    CommitState state = CommitState::Drained;

    /** Micro-ops committed this cycle (state == Compute). */
    std::uint8_t numCommitted = 0;

    /** Head of the ROB (valid in the Stalled state). */
    bool headValid = false;
    SeqNum headSeq = invalidSeqNum;
    InstIndex headPc = invalidInstIndex;

    /** Last-committed instruction (valid once anything committed). */
    bool lastValid = false;
    InstIndex lastPc = invalidInstIndex;
    Psv lastPsv;

    /** Micro-ops committed this cycle (slots < numCommitted valid). */
    std::array<CommittedUop, 8> committed{};
};

/** A micro-op passing a front-end stage (fetch or dispatch). */
struct UopRecord
{
    SeqNum seq = invalidSeqNum;
    InstIndex pc = invalidInstIndex;
    Cycle cycle = 0;
};

/** A micro-op retiring (committing) with its final PSV. */
struct RetireRecord
{
    SeqNum seq = invalidSeqNum;
    InstIndex pc = invalidInstIndex;
    Psv psv;
    Cycle cycle = 0;
};

/** Observer interface for the cycle trace. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per simulated cycle after commit. */
    virtual void onCycle(const CycleRecord &rec) { (void)rec; }

    /** Called for every micro-op entering the ROB. */
    virtual void onDispatch(const UopRecord &rec) { (void)rec; }

    /** Called for every fetched micro-op. */
    virtual void onFetch(const UopRecord &rec) { (void)rec; }

    /** Called for every committing micro-op with its final PSV. */
    virtual void onRetire(const RetireRecord &rec) { (void)rec; }

    /** Called once when the simulated program has terminated. */
    virtual void onEnd(Cycle final_cycle) { (void)final_cycle; }

    /**
     * Deliver @p n consecutive captured events in order. The default
     * implementation (core/trace_buffer.cc) fans each event out to the
     * per-kind callbacks above, so sinks observe exactly the stream a
     * record-at-a-time producer would have delivered; bulk-capable
     * sinks (ChunkingSink) override it to append whole ranges and skip
     * the per-record virtual dispatch. Producers batching through this
     * hook must preserve capture order and batch every event kind but
     * End, which keeps its dedicated onEnd call.
     */
    virtual void onBatch(const TraceEvent *events, std::size_t n);
};

} // namespace tea

#endif // TEA_CORE_TRACE_HH
