/**
 * @file
 * The uncore: LLC, DRAM channel and the shared L2 TLB. One Uncore per
 * physical chip; single-core systems own a private one, multi-core
 * systems share one between all cores (Section 3: one TEA unit per core,
 * a shared memory system below the L1s).
 */

#ifndef TEA_CORE_UNCORE_HH
#define TEA_CORE_UNCORE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/cache.hh"
#include "core/config.hh"
#include "core/tlb.hh"

namespace tea {

/** Shared LLC + DRAM + L2 TLB. */
class Uncore
{
  public:
    explicit Uncore(const CoreConfig &cfg);

    /**
     * Access the LLC for @p line starting at @p start; fills from DRAM
     * on a miss. @return absolute data-ready cycle
     */
    Cycle llcAccess(Addr line, Cycle start, bool &llc_miss);

    /** Write back a dirty line evicted from a private L1. */
    void writebackToLlc(const Eviction &ev);

    /** True if @p line currently resides in the LLC. */
    bool llcContains(Addr line) const { return llc_.contains(line); }

    /** Charge one DRAM line transfer starting no earlier than @p start. */
    Cycle dramAccess(Cycle start);

    L2Tlb &l2Tlb() { return l2Tlb_; }
    const CacheArray &llc() const { return llc_; }
    std::uint64_t dramLineTransfers() const { return dramTransfers_; }

    /**
     * Forget in-flight timing state (LLC MSHR fills, the DRAM
     * bandwidth clock) while keeping LLC tags and LRU order. Part of
     * MemorySystem::resetTransientTiming(); see there.
     */
    void resetTransientTiming()
    {
        llcMshrs_.clear();
        dramNextFree_ = 0;
    }

    /**
     * Mix the uncore's behavioral state into @p h with absolute cycles
     * rebased to @p base (see MemorySystem::fingerprintState).
     */
    void fingerprintState(Fnv1a &h, Cycle base) const;

    /** Append per-structure fingerprints (diagnostic decomposition). */
    void fingerprintParts(
        Cycle base,
        std::vector<std::pair<const char *, std::uint64_t>> &out) const;

  private:
    const CoreConfig &cfg_;
    CacheArray llc_;
    MshrFile llcMshrs_;
    L2Tlb l2Tlb_;
    Cycle dramNextFree_ = 0;
    std::uint64_t dramTransfers_ = 0;
};

} // namespace tea

#endif // TEA_CORE_UNCORE_HH
