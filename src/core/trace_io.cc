#include "core/trace_io.hh"

#include "common/logging.hh"

namespace tea {

namespace {

// Event tags.
constexpr std::uint8_t tagCycle = 'C';
constexpr std::uint8_t tagDispatch = 'D';
constexpr std::uint8_t tagFetch = 'F';
constexpr std::uint8_t tagRetire = 'R';
constexpr std::uint8_t tagEnd = 'E';

/** On-disk cycle record (fixed-width, packed by construction). */
struct DiskCycle
{
    std::uint64_t cycle;
    std::uint8_t state;
    std::uint8_t numCommitted;
    std::uint8_t headValid;
    std::uint8_t lastValid;
    std::uint32_t headPc;
    std::uint64_t headSeq;
    std::uint32_t lastPc;
    std::uint16_t lastPsv;
};

struct DiskUop
{
    std::uint64_t seq;
    std::uint64_t cycle;
    std::uint32_t pc;
    std::uint16_t psv; // retire only
};

struct DiskCommitted
{
    std::uint64_t seq;
    std::uint32_t pc;
    std::uint16_t psv;
};

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        tea_fatal("cannot open trace file '%s' for writing",
                  path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // fwrite() is buffered, so a full disk often only surfaces at
    // flush/close time; losing the tail of a trace silently would
    // invalidate every analysis replayed from it.
    std::FILE *f = file_;
    file_ = nullptr;
    if (std::fflush(f) != 0 || std::ferror(f)) {
        std::fclose(f);
        tea_fatal("error flushing trace file '%s' (disk full?)",
                  path_.c_str());
    }
    if (std::fclose(f) != 0)
        tea_fatal("error closing trace file '%s'", path_.c_str());
}

void
TraceWriter::put(const void *data, std::size_t bytes)
{
    tea_assert(file_, "trace file '%s' already closed", path_.c_str());
    if (std::fwrite(data, 1, bytes, file_) != bytes)
        tea_fatal("short write to trace file '%s' (disk full?)",
                  path_.c_str());
}

void
TraceWriter::onCycle(const CycleRecord &rec)
{
    put(&tagCycle, 1);
    DiskCycle d{rec.cycle,
                static_cast<std::uint8_t>(rec.state),
                rec.numCommitted,
                static_cast<std::uint8_t>(rec.headValid),
                static_cast<std::uint8_t>(rec.lastValid),
                rec.headPc,
                rec.headSeq,
                rec.lastPc,
                rec.lastPsv.bits()};
    put(&d, sizeof(d));
    for (unsigned i = 0; i < rec.numCommitted; ++i) {
        DiskCommitted c{rec.committed[i].seq, rec.committed[i].pc,
                        rec.committed[i].psv.bits()};
        put(&c, sizeof(c));
    }
    ++events_;
}

void
TraceWriter::onDispatch(const UopRecord &rec)
{
    put(&tagDispatch, 1);
    DiskUop d{rec.seq, rec.cycle, rec.pc, 0};
    put(&d, sizeof(d));
    ++events_;
}

void
TraceWriter::onFetch(const UopRecord &rec)
{
    put(&tagFetch, 1);
    DiskUop d{rec.seq, rec.cycle, rec.pc, 0};
    put(&d, sizeof(d));
    ++events_;
}

void
TraceWriter::onRetire(const RetireRecord &rec)
{
    put(&tagRetire, 1);
    DiskUop d{rec.seq, rec.cycle, rec.pc, rec.psv.bits()};
    put(&d, sizeof(d));
    ++events_;
}

void
TraceWriter::onEnd(Cycle final_cycle)
{
    put(&tagEnd, 1);
    put(&final_cycle, sizeof(final_cycle));
    ++events_;
    close();
}

Cycle
replayTrace(const std::string &path,
            const std::vector<TraceSink *> &sinks)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        tea_fatal("cannot open trace file '%s'", path.c_str());

    auto get = [&](void *data, std::size_t bytes) {
        if (std::fread(data, 1, bytes, f) != bytes)
            tea_fatal("truncated trace file '%s'", path.c_str());
    };

    Cycle cycles = 0;
    std::uint8_t tag = 0;
    while (std::fread(&tag, 1, 1, f) == 1) {
        switch (tag) {
          case tagCycle: {
            DiskCycle d{};
            get(&d, sizeof(d));
            CycleRecord rec;
            rec.cycle = d.cycle;
            rec.state = static_cast<CommitState>(d.state);
            rec.numCommitted = d.numCommitted;
            rec.headValid = d.headValid;
            rec.headPc = d.headPc;
            rec.headSeq = d.headSeq;
            rec.lastValid = d.lastValid;
            rec.lastPc = d.lastPc;
            rec.lastPsv = Psv(d.lastPsv);
            for (unsigned i = 0; i < rec.numCommitted; ++i) {
                DiskCommitted c{};
                get(&c, sizeof(c));
                rec.committed[i] = CommittedUop{c.seq, c.pc, Psv(c.psv)};
            }
            ++cycles;
            for (TraceSink *s : sinks)
                s->onCycle(rec);
            break;
          }
          case tagDispatch:
          case tagFetch: {
            DiskUop d{};
            get(&d, sizeof(d));
            UopRecord rec{d.seq, d.pc, d.cycle};
            for (TraceSink *s : sinks) {
                if (tag == tagDispatch)
                    s->onDispatch(rec);
                else
                    s->onFetch(rec);
            }
            break;
          }
          case tagRetire: {
            DiskUop d{};
            get(&d, sizeof(d));
            RetireRecord rec{d.seq, d.pc, Psv(d.psv), d.cycle};
            for (TraceSink *s : sinks)
                s->onRetire(rec);
            break;
          }
          case tagEnd: {
            Cycle final_cycle = 0;
            get(&final_cycle, sizeof(final_cycle));
            for (TraceSink *s : sinks)
                s->onEnd(final_cycle);
            break;
          }
          default:
            tea_fatal("corrupt trace file '%s': bad tag %u",
                      path.c_str(), tag);
        }
    }
    std::fclose(f);
    return cycles;
}

} // namespace tea
