#include "core/trace_io.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <type_traits>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "core/trace_codec.hh"

namespace tea {

namespace {

// Fault-injection seams, one per syscall that can fail in the wild
// (see DESIGN.md, "Failure model and recovery"). The TraceWriter seams
// sit on fatal paths by design (an explicit trace dump must never be
// silently truncated); the CompactTraceWriter/MappedTraceFile seams
// are on the best-effort cache paths, which degrade or retry instead.
Failpoint fpWriterOpen("trace_io.writer_open", EIO);
Failpoint fpWriterWrite("trace_io.writer_write", ENOSPC);
Failpoint fpWriterFlush("trace_io.writer_flush", ENOSPC);
Failpoint fpWriterClose("trace_io.writer_close", EIO);
Failpoint fpReplayOpen("trace_io.replay_open", EIO);
Failpoint fpReplayRead("trace_io.replay_read", EIO);
Failpoint fpTmpOpen("trace_io.tmp_open", EIO);
Failpoint fpReserve("trace_io.reserve", ENOSPC);
Failpoint fpWriteChunk("trace_io.write_chunk", ENOSPC);
Failpoint fpSeal("trace_io.seal", ENOSPC);
Failpoint fpFsync("trace_io.fsync", EIO);
Failpoint fpCacheClose("trace_io.close", EIO);
Failpoint fpRename("trace_io.rename", EIO);
Failpoint fpDirFsync("trace_io.dir_fsync", EIO);
Failpoint fpMapOpen("trace_io.map_open", EIO);
Failpoint fpMmap("trace_io.mmap", EIO);

// Event tags.
constexpr std::uint8_t tagCycle = 'C';
constexpr std::uint8_t tagDispatch = 'D';
constexpr std::uint8_t tagFetch = 'F';
constexpr std::uint8_t tagRetire = 'R';
constexpr std::uint8_t tagEnd = 'E';

/** On-disk cycle record (fixed-width, packed by construction). */
struct DiskCycle
{
    std::uint64_t cycle;
    std::uint8_t state;
    std::uint8_t numCommitted;
    std::uint8_t headValid;
    std::uint8_t lastValid;
    std::uint32_t headPc;
    std::uint64_t headSeq;
    std::uint32_t lastPc;
    std::uint16_t lastPsv;
};

struct DiskUop
{
    std::uint64_t seq;
    std::uint64_t cycle;
    std::uint32_t pc;
    std::uint16_t psv; // retire only
};

struct DiskCommitted
{
    std::uint64_t seq;
    std::uint32_t pc;
    std::uint16_t psv;
};

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ && TEA_FAILPOINT(fpWriterOpen)) {
        std::fclose(file_); // tea_lint: allow(unchecked-io)
        std::remove(path.c_str()); // tea_lint: allow(unchecked-io)
        file_ = nullptr;
        errno = fpWriterOpen.failErrno();
    }
    if (!file_)
        tea_fatal("cannot open trace file '%s' for writing",
                  path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    // fwrite() is buffered, so a full disk often only surfaces at
    // flush/close time; losing the tail of a trace silently would
    // invalidate every analysis replayed from it.
    std::FILE *f = file_;
    file_ = nullptr;
    if (std::fflush(f) != 0 || std::ferror(f) ||
        TEA_FAILPOINT(fpWriterFlush)) {
        // Already on the fatal path; the close result adds nothing.
        std::fclose(f); // tea_lint: allow(unchecked-io)
        tea_fatal("error flushing trace file '%s' (disk full?)",
                  path_.c_str());
    }
    if (std::fclose(f) != 0 || TEA_FAILPOINT(fpWriterClose))
        tea_fatal("error closing trace file '%s'", path_.c_str());
}

void
TraceWriter::put(const void *data, std::size_t bytes)
{
    tea_assert(file_, "trace file '%s' already closed", path_.c_str());
    if (std::fwrite(data, 1, bytes, file_) != bytes ||
        TEA_FAILPOINT(fpWriterWrite))
        tea_fatal("short write to trace file '%s' (disk full?)",
                  path_.c_str());
}

void
TraceWriter::onCycle(const CycleRecord &rec)
{
    put(&tagCycle, 1);
    DiskCycle d{rec.cycle,
                static_cast<std::uint8_t>(rec.state),
                rec.numCommitted,
                static_cast<std::uint8_t>(rec.headValid),
                static_cast<std::uint8_t>(rec.lastValid),
                rec.headPc,
                rec.headSeq,
                rec.lastPc,
                rec.lastPsv.bits()};
    put(&d, sizeof(d));
    for (unsigned i = 0; i < rec.numCommitted; ++i) {
        DiskCommitted c{rec.committed[i].seq, rec.committed[i].pc,
                        rec.committed[i].psv.bits()};
        put(&c, sizeof(c));
    }
    ++events_;
}

void
TraceWriter::onDispatch(const UopRecord &rec)
{
    put(&tagDispatch, 1);
    DiskUop d{rec.seq, rec.cycle, rec.pc, 0};
    put(&d, sizeof(d));
    ++events_;
}

void
TraceWriter::onFetch(const UopRecord &rec)
{
    put(&tagFetch, 1);
    DiskUop d{rec.seq, rec.cycle, rec.pc, 0};
    put(&d, sizeof(d));
    ++events_;
}

void
TraceWriter::onRetire(const RetireRecord &rec)
{
    put(&tagRetire, 1);
    DiskUop d{rec.seq, rec.cycle, rec.pc, rec.psv.bits()};
    put(&d, sizeof(d));
    ++events_;
}

void
TraceWriter::onEnd(Cycle final_cycle)
{
    put(&tagEnd, 1);
    put(&final_cycle, sizeof(final_cycle));
    ++events_;
    close();
}

Cycle
replayTrace(const std::string &path,
            const std::vector<TraceSink *> &sinks)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f && TEA_FAILPOINT(fpReplayOpen)) {
        std::fclose(f); // tea_lint: allow(unchecked-io)
        f = nullptr;
        errno = fpReplayOpen.failErrno();
    }
    if (!f)
        tea_fatal("cannot open trace file '%s'", path.c_str());

    auto get = [&](void *data, std::size_t bytes) {
        if (std::fread(data, 1, bytes, f) != bytes ||
            TEA_FAILPOINT(fpReplayRead))
            tea_fatal("truncated trace file '%s'", path.c_str());
    };

    Cycle cycles = 0;
    std::uint8_t tag = 0;
    while (std::fread(&tag, 1, 1, f) == 1) {
        switch (tag) {
          case tagCycle: {
            DiskCycle d{};
            get(&d, sizeof(d));
            CycleRecord rec;
            rec.cycle = d.cycle;
            rec.state = static_cast<CommitState>(d.state);
            rec.numCommitted = d.numCommitted;
            rec.headValid = d.headValid;
            rec.headPc = d.headPc;
            rec.headSeq = d.headSeq;
            rec.lastValid = d.lastValid;
            rec.lastPc = d.lastPc;
            rec.lastPsv = Psv(d.lastPsv);
            for (unsigned i = 0; i < rec.numCommitted; ++i) {
                DiskCommitted c{};
                get(&c, sizeof(c));
                rec.committed[i] = CommittedUop{c.seq, c.pc, Psv(c.psv)};
            }
            ++cycles;
            for (TraceSink *s : sinks)
                s->onCycle(rec);
            break;
          }
          case tagDispatch:
          case tagFetch: {
            DiskUop d{};
            get(&d, sizeof(d));
            UopRecord rec{d.seq, d.pc, d.cycle};
            for (TraceSink *s : sinks) {
                if (tag == tagDispatch)
                    s->onDispatch(rec);
                else
                    s->onFetch(rec);
            }
            break;
          }
          case tagRetire: {
            DiskUop d{};
            get(&d, sizeof(d));
            RetireRecord rec{d.seq, d.pc, Psv(d.psv), d.cycle};
            for (TraceSink *s : sinks)
                s->onRetire(rec);
            break;
          }
          case tagEnd: {
            Cycle final_cycle = 0;
            get(&final_cycle, sizeof(final_cycle));
            for (TraceSink *s : sinks)
                s->onEnd(final_cycle);
            break;
          }
          default:
            tea_fatal("corrupt trace file '%s': bad tag %u",
                      path.c_str(), tag);
        }
    }
    // Read-only stream: nothing buffered to lose at this point.
    std::fclose(f); // tea_lint: allow(unchecked-io)
    return cycles;
}

namespace {

/**
 * On-disk file header of the compact trace-cache format. The CoreStats
 * snapshot follows immediately (statsBytes raw bytes + its CRC folded
 * into headerCrc via statsCrc), then payloadBytes of chunk frames.
 */
struct TraceFileHeader
{
    char magic[8];
    std::uint32_t codecVersion;
    std::uint32_t statsBytes;
    std::uint64_t fingerprint;
    std::uint64_t chunkCount;
    std::uint64_t eventCount;
    std::uint64_t cycleCount;
    std::uint64_t payloadBytes;
    std::uint32_t statsCrc;
    std::uint32_t headerCrc; ///< CRC-32 of all preceding header bytes
};

constexpr char traceFileMagic[8] = {'T', 'E', 'A', 'T',
                                    'R', 'C', '0', '1'};

static_assert(sizeof(TraceFileHeader) == 64,
              "header layout changed; bump traceCodecVersion");
static_assert(std::is_trivially_copyable_v<CoreStats>,
              "CoreStats is embedded in trace-cache files by memcpy");

std::uint32_t
headerSelfCrc(const TraceFileHeader &hdr)
{
    return crc32(0, &hdr,
                 sizeof(TraceFileHeader) - sizeof(std::uint32_t));
}

/**
 * fsync the directory containing @p path. rename() promises atomicity,
 * not durability: until the directory inode reaches stable storage a
 * power cut can roll the publish back entirely — fsyncing the payload
 * alone is not enough (the classic create/rename/fsync-ordering bug).
 * Transient failures are retried; a permanent one is reported to the
 * caller, which degrades with a warning — the rename is visible to
 * every process on this boot regardless.
 */
bool
syncDirOf(const std::string &path, const RetryPolicy &policy,
          RetryStats &stats)
{
    std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".")
                                   : path.substr(0, slash);
    return retryTransient(policy, stats, [&] {
        int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
        if (fd >= 0 && TEA_FAILPOINT(fpDirFsync)) {
            ::close(fd);
            fd = -1;
            errno = fpDirFsync.failErrno();
        }
        if (fd < 0)
            return false;
        const bool ok = ::fsync(fd) == 0;
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return ok;
    });
}

} // namespace

CompactTraceWriter::CompactTraceWriter(std::string final_path,
                                       std::uint64_t fingerprint)
    : finalPath_(std::move(final_path)), fingerprint_(fingerprint)
{
    // Unique temporary in the same directory so the final rename stays
    // within one filesystem (atomicity) and concurrent writers of the
    // same entry never clobber each other's partial file.
    static std::atomic<std::uint64_t> unique{0};
    tmpPath_ = strprintf(
        "%s.%ld.%llu.tmp", finalPath_.c_str(),
        static_cast<long>(::getpid()),
        static_cast<unsigned long long>(
            // relaxed: only uniqueness of the counter value matters,
            // not ordering against any other memory.
            unique.fetch_add(1, std::memory_order_relaxed)));
    // Opening the tmp file can hit transient conditions (EMFILE under
    // a loaded suite, EINTR): retry with backoff before giving up.
    retryTransient(retryPolicy_, retryStats_, [&] {
        file_ = std::fopen(tmpPath_.c_str(), "wb");
        if (file_ && TEA_FAILPOINT(fpTmpOpen)) {
            std::fclose(file_); // tea_lint: allow(unchecked-io)
            std::remove(tmpPath_.c_str()); // tea_lint: allow(unchecked-io)
            file_ = nullptr;
            errno = fpTmpOpen.failErrno();
        }
        return file_ != nullptr;
    });
    if (!file_) {
        tea_warn("trace cache: cannot create '%s' (%s); caching of this "
                 "entry disabled",
                 tmpPath_.c_str(), errnoString(errno).c_str());
        return;
    }
    // Reserve space for the header and stats snapshot; commit() seals
    // them once the totals are known.
    TraceFileHeader zero{};
    CoreStats stats{};
    if (std::fwrite(&zero, 1, sizeof(zero), file_) != sizeof(zero) ||
        std::fwrite(&stats, 1, sizeof(stats), file_) != sizeof(stats) ||
        TEA_FAILPOINT(fpReserve))
        abandon();
}

CompactTraceWriter::~CompactTraceWriter()
{
    abandon();
}

void
CompactTraceWriter::abandon()
{
    if (!file_)
        return;
    // The entry is being dropped: close/unlink failures change nothing.
    std::fclose(file_); // tea_lint: allow(unchecked-io)
    file_ = nullptr;
    std::remove(tmpPath_.c_str()); // tea_lint: allow(unchecked-io)
}

void
CompactTraceWriter::writeChunk(const TraceChunk &chunk)
{
    if (!file_)
        return;
    scratch_.clear();
    encodeChunk(chunk, scratch_);
    std::size_t wrote = std::fwrite(scratch_.data(), 1, scratch_.size(),
                                    file_);
    if (TEA_FAILPOINT(fpWriteChunk)) {
        errno = fpWriteChunk.failErrno();
        wrote = scratch_.size() / 2; // simulated short write
    }
    if (wrote != scratch_.size()) {
        // A short write leaves the frame stream unsealable; no retry
        // can resume mid-frame, so the entry is abandoned outright.
        tea_warn("trace cache: short write to '%s' (disk full?); "
                 "abandoning entry",
                 tmpPath_.c_str());
        abandon();
        return;
    }
    ++chunkCount_;
    eventCount_ += chunk.events.size();
    cycleCount_ += chunk.cycleRecords;
    payloadBytes_ += scratch_.size();
    if (byteLimit_ != 0 && bytesWritten() > byteLimit_) {
        // Admission control (cache budget): an entry bigger than the
        // whole budget would be evicted by the very next janitor pass,
        // so stop feeding it disk now. The simulation's own results
        // are unaffected — only the cache entry is dropped.
        tea_warn("trace cache: entry '%s' exceeds the cache budget "
                 "(%llu > %llu bytes); admission denied",
                 finalPath_.c_str(),
                 static_cast<unsigned long long>(bytesWritten()),
                 static_cast<unsigned long long>(byteLimit_));
        admissionDenied_ = true;
        abandon();
    }
}

std::uint64_t
CompactTraceWriter::bytesWritten() const
{
    return sizeof(TraceFileHeader) + sizeof(CoreStats) + payloadBytes_;
}

bool
CompactTraceWriter::commit(const CoreStats &stats)
{
    if (!file_)
        return false;

    TraceFileHeader hdr{};
    std::memcpy(hdr.magic, traceFileMagic, sizeof(hdr.magic));
    hdr.codecVersion = traceCodecVersion;
    hdr.statsBytes = static_cast<std::uint32_t>(sizeof(CoreStats));
    hdr.fingerprint = fingerprint_;
    hdr.chunkCount = chunkCount_;
    hdr.eventCount = eventCount_;
    hdr.cycleCount = cycleCount_;
    hdr.payloadBytes = payloadBytes_;
    hdr.statsCrc = crc32(0, &stats, sizeof(stats));
    hdr.headerCrc = headerSelfCrc(hdr);

    bool sealed = std::fseek(file_, 0, SEEK_SET) == 0 &&
                  std::fwrite(&hdr, 1, sizeof(hdr), file_) ==
                      sizeof(hdr) &&
                  std::fwrite(&stats, 1, sizeof(stats), file_) ==
                      sizeof(stats) &&
                  std::fflush(file_) == 0 && !TEA_FAILPOINT(fpSeal);
    // fsync is routinely interrupted (EINTR) on loaded boxes: retry
    // transient failures before declaring the entry lost.
    bool synced =
        sealed && retryTransient(retryPolicy_, retryStats_, [&] {
            if (TEA_FAILPOINT(fpFsync)) {
                errno = fpFsync.failErrno();
                return false;
            }
            return ::fsync(::fileno(file_)) == 0;
        });
    if (!synced) {
        tea_warn("trace cache: error sealing '%s' (disk full?); "
                 "abandoning entry",
                 tmpPath_.c_str());
        abandon();
        return false;
    }
    // The payload is already fsync'd, but a failing close can still
    // mean a lost buffer on some filesystems: propagate, don't publish.
    std::FILE *f = file_;
    file_ = nullptr;
    bool close_ok = std::fclose(f) == 0;
    if (close_ok && TEA_FAILPOINT(fpCacheClose)) {
        errno = fpCacheClose.failErrno();
        close_ok = false;
    }
    if (!close_ok) {
        tea_warn("trace cache: error closing '%s' (%s); abandoning "
                 "entry",
                 tmpPath_.c_str(), errnoString(errno).c_str());
        std::remove(tmpPath_.c_str()); // tea_lint: allow(unchecked-io)
        return false;
    }
    const bool published =
        retryTransient(retryPolicy_, retryStats_, [&] {
            if (TEA_FAILPOINT(fpRename)) {
                errno = fpRename.failErrno();
                return false;
            }
            return std::rename(tmpPath_.c_str(),
                               finalPath_.c_str()) == 0;
        });
    if (!published) {
        tea_warn("trace cache: cannot publish '%s' (%s)",
                 finalPath_.c_str(), errnoString(errno).c_str());
        // Publication already failed and was warned about above.
        std::remove(tmpPath_.c_str()); // tea_lint: allow(unchecked-io)
        return false;
    }
    // Make the rename itself durable. Failure here does not invalidate
    // the entry — it is fully visible and valid for as long as this
    // boot lasts — it only weakens the power-loss guarantee, so warn
    // and keep the entry.
    if (!syncDirOf(finalPath_, retryPolicy_, retryStats_)) {
        tea_warn("trace cache: cannot fsync directory of '%s' (%s); "
                 "entry is published but may not survive power loss",
                 finalPath_.c_str(), errnoString(errno).c_str());
    }
    return true;
}

MappedTraceFile::~MappedTraceFile()
{
    if (base_)
        ::munmap(const_cast<std::uint8_t *>(base_), size_);
}

std::unique_ptr<MappedTraceFile>
MappedTraceFile::open(const std::string &path,
                      std::uint64_t expected_fingerprint,
                      std::string *why_not, int *sys_err)
{
    if (sys_err)
        *sys_err = 0; // validation damage by default, not a syscall error

    auto reject = [&](const std::string &why) {
        if (why_not)
            *why_not = why;
        return std::unique_ptr<MappedTraceFile>();
    };

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0 && TEA_FAILPOINT(fpMapOpen)) {
        ::close(fd);
        fd = -1;
        errno = fpMapOpen.failErrno();
    }
    if (fd < 0) {
        if (sys_err)
            *sys_err = errno;
        return reject(strprintf("cannot open: %s", errnoString(errno).c_str()));
    }
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
        if (sys_err)
            *sys_err = errno;
        ::close(fd);
        return reject("cannot stat");
    }
    auto size = static_cast<std::size_t>(st.st_size);
    if (size < sizeof(TraceFileHeader)) {
        ::close(fd);
        return reject("file shorter than header");
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (map != MAP_FAILED && TEA_FAILPOINT(fpMmap)) {
        ::munmap(map, size);
        map = MAP_FAILED;
        errno = fpMmap.failErrno();
    }
    if (map == MAP_FAILED) {
        if (sys_err)
            *sys_err = errno;
        return reject(strprintf("mmap failed: %s", errnoString(errno).c_str()));
    }

    // Private constructor, so make_unique cannot reach it.
    std::unique_ptr<MappedTraceFile> f(
        new MappedTraceFile); // tea_lint: allow(naked-new)
    f->base_ = static_cast<const std::uint8_t *>(map);
    f->size_ = size;
    f->path_ = path;

    TraceFileHeader hdr;
    std::memcpy(&hdr, f->base_, sizeof(hdr));
    if (std::memcmp(hdr.magic, traceFileMagic, sizeof(hdr.magic)) != 0)
        return reject("bad magic (not a trace-cache file)");
    if (hdr.headerCrc != headerSelfCrc(hdr))
        return reject("header CRC mismatch");
    if (hdr.codecVersion != traceCodecVersion)
        return reject(strprintf("codec version %u, want %u",
                                hdr.codecVersion, traceCodecVersion));
    if (hdr.statsBytes != sizeof(CoreStats))
        return reject("CoreStats layout mismatch");
    if (hdr.fingerprint != expected_fingerprint)
        return reject("workload/config fingerprint mismatch");
    if (size != sizeof(hdr) + hdr.statsBytes + hdr.payloadBytes)
        return reject("file size does not match header (truncated?)");

    std::memcpy(&f->stats_, f->base_ + sizeof(hdr), sizeof(CoreStats));
    if (crc32(0, &f->stats_, sizeof(CoreStats)) != hdr.statsCrc)
        return reject("CoreStats CRC mismatch");

    // CRC-verify every frame up front: no event is ever delivered from
    // a file with so much as one bad byte in it.
    f->payloadOffset_ = sizeof(hdr) + hdr.statsBytes;
    std::size_t at = f->payloadOffset_;
    std::uint64_t chunks = 0, events = 0, cycles = 0;
    f->frameOffsets_.reserve(static_cast<std::size_t>(hdr.chunkCount));
    while (at < size) {
        std::string why;
        if (!verifyFrame(f->base_ + at, size - at, &why))
            return reject(strprintf("chunk %llu: %s",
                                    static_cast<unsigned long long>(
                                        chunks),
                                    why.c_str()));
        ChunkFrameHeader ch;
        peekFrame(f->base_ + at, size - at, &ch, nullptr);
        f->frameOffsets_.push_back(at);
        ++chunks;
        events += ch.eventCount;
        cycles += ch.cycleRecords;
        at += ch.frameBytes;
    }
    if (chunks != hdr.chunkCount || events != hdr.eventCount ||
        cycles != hdr.cycleCount)
        return reject("frame totals disagree with header");

    f->chunkCount_ = chunks;
    f->eventCount_ = events;
    f->cycleCount_ = cycles;
    f->rewind();
    return f;
}

TraceChunkPtr
MappedTraceFile::nextChunk()
{
    if (nextFrame_ >= frameOffsets_.size())
        return nullptr;
    // Reuse chunk storage once its consumer has dropped it:
    // chunk-sized event vectors sit above malloc's mmap threshold, so
    // allocating afresh per frame pays kernel page-zeroing and cold
    // misses across the whole chunk on every decode. The storage is a
    // ring rather than a single slot so consumers that hold a batch of
    // decoded chunks in flight still recycle instead of allocating.
    std::shared_ptr<TraceChunk> out;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
        std::shared_ptr<TraceChunk> &slot = scratch_[scratchNext_];
        scratchNext_ = (scratchNext_ + 1) % scratch_.size();
        if (slot.use_count() == 1) {
            out = slot;
            break;
        }
    }
    if (!out) {
        out = std::make_shared<TraceChunk>();
        scratch_.push_back(out);
        scratchNext_ = 0;
    }
    decodeFrameInto(nextFrame_++, decoder_, *out);
    // Software-pipeline the source bytes: start pulling the next
    // frame's encoded streams toward the cache now, so they arrive
    // while the consumer replays this chunk instead of stalling the
    // next decode burst. The consumer's work between nextChunk()
    // calls evicts these lines from L1/L2 otherwise, and the decode
    // loops are fast enough that refilling on demand is a measurable
    // slice of warm-replay decode time.
    if (nextFrame_ < frameOffsets_.size()) {
        const std::size_t at = frameOffsets_[nextFrame_];
        const std::size_t frameEnd = nextFrame_ + 1 < frameOffsets_.size()
                                         ? frameOffsets_[nextFrame_ + 1]
                                         : size_;
        // Cap the touch: a pathologically large frame would otherwise
        // blow the very cache this is trying to keep warm.
        const std::size_t stop =
            std::min(frameEnd, at + (std::size_t{64} << 10));
        for (std::size_t p = at; p < stop; p += 64)
            __builtin_prefetch(base_ + p, 0 /*read*/, 3 /*keep*/);
    }
    return out;
}

TraceChunkPtr
MappedTraceFile::decodeFrame(std::size_t index,
                             ChunkDecoder &decoder) const
{
    auto chunk = std::make_shared<TraceChunk>();
    decodeFrameInto(index, decoder, *chunk);
    return chunk;
}

void
MappedTraceFile::decodeFrameInto(std::size_t index, ChunkDecoder &decoder,
                                 TraceChunk &out) const
{
    tea_assert(index < frameOffsets_.size(),
               "frame index %zu out of range (%zu frames)", index,
               frameOffsets_.size());
    const std::size_t at = frameOffsets_[index];
    std::size_t consumed = 0;
    std::string why;
    if (!decoder.decode(base_ + at, size_ - at, out, &consumed, &why)) {
        // Every frame passed CRC validation at open(); failing to
        // decode now means the codec itself is inconsistent.
        tea_panic("trace cache '%s': CRC-clean frame failed to decode "
                  "(%s)",
                  path_.c_str(), why.c_str());
    }
}

} // namespace tea
