/**
 * @file
 * Bulk LEB128 varint decode kernels for the trace codec.
 *
 * The on-disk codec (core/trace_codec) stores every field stream as a
 * run of LEB128 varints; with delta+zigzag coding the overwhelming
 * majority of values fit in a single byte, which makes the decode loop
 * a branch-per-byte bottleneck. These kernels decode a whole stream in
 * one pass: the vector kernels load 16/32 bytes at a time, derive the
 * continuation-bit mask with a single movemask, and emit the leading
 * run of single-byte values wholesale, falling back to a scalar step
 * only for the (rare) multi-byte varint that interrupts the run.
 *
 * All kernels are bit-identical by contract: for any input bytes —
 * including adversarial ones — they produce the same values and the
 * same accept/reject verdict as the reference scalar kernel, which in
 * turn preserves the semantics of the original per-value reader
 * (values wider than 64 bits lose their high bits silently, exactly
 * like `v |= (b & 0x7f) << shift` does; a varint still carrying a
 * continuation bit at shift 63, or truncated by the end of the
 * stream, is malformed). The randomized differential suite in
 * tests/test_simd_codec.cc enforces this equivalence.
 *
 * Kernel selection is a process-wide runtime dispatch: the best kernel
 * the host CPU supports is picked once (overridable with TEA_SIMD=
 * scalar|sse2|avx2 or TEA_SIMD=0 for scalar), so plain, sanitizer and
 * Release builds all run the same code paths and produce the same
 * bytes.
 */

#ifndef TEA_CORE_VARINT_HH
#define TEA_CORE_VARINT_HH

#include <cstddef>
#include <cstdint>

namespace tea {

/** One bulk-decode implementation. */
enum class VarintKernel
{
    Scalar, ///< portable reference loop
    Sse2,   ///< 16-byte movemask runs (x86-64 baseline)
    Avx2,   ///< 32-byte movemask runs (runtime-detected)
};

/** Short name of a kernel ("scalar", "sse2", "avx2"). */
const char *varintKernelName(VarintKernel k);

/** True when this build/host can execute @p k. */
bool varintKernelSupported(VarintKernel k);

/**
 * The kernel bulk decodes currently dispatch to: the best supported
 * one, unless TEA_SIMD or setVarintKernel() narrowed the choice.
 */
VarintKernel activeVarintKernel();

/**
 * Force dispatch to @p k (fatal when unsupported on this host). For
 * tests and benchmarks; normal callers rely on the automatic pick.
 */
void setVarintKernel(VarintKernel k);

/**
 * Decode every varint in [@p p, @p p + @p len) into @p out, which must
 * have room for @p len values (one byte per value is the densest
 * possible stream).
 *
 * @param count set to the number of values decoded on success
 * @return false when the stream ends inside a varint or a varint
 *         carries a continuation bit past the 64-bit boundary
 */
bool decodeVarints(const std::uint8_t *p, std::size_t len,
                   std::uint64_t *out, std::size_t *count);

/** The reference kernel, callable directly (differential tests). */
bool decodeVarintsScalar(const std::uint8_t *p, std::size_t len,
                         std::uint64_t *out, std::size_t *count);

/** The SSE2 kernel; falls back to scalar off x86-64. */
bool decodeVarintsSse2(const std::uint8_t *p, std::size_t len,
                       std::uint64_t *out, std::size_t *count);

/**
 * The AVX2 kernel; only callable when varintKernelSupported(Avx2)
 * (fatal otherwise — the caller owns the runtime check).
 */
bool decodeVarintsAvx2(const std::uint8_t *p, std::size_t len,
                       std::uint64_t *out, std::size_t *count);

} // namespace tea

#endif // TEA_CORE_VARINT_HH
