#include "core/core.hh"

#include <algorithm>
#include <cstdlib>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "core/checkpoint.hh"
#include "isa/memory.hh"

namespace tea {

namespace {

/** Core-side trace staging capacity (events buffered between flushes). */
constexpr std::size_t traceBatchEvents = 4096;

} // namespace

std::string
CoreStats::render() const
{
    std::string out;
    auto line = [&](const char *name, double value, const char *desc) {
        out += strprintf("%-28s %16.2f  # %s\n", name, value, desc);
    };
    line("sim.cycles", static_cast<double>(cycles), "simulated cycles");
    line("sim.committedUops", static_cast<double>(committedUops),
         "committed micro-ops");
    line("sim.ipc", ipc(), "committed uops per cycle");
    static const char *state_names[4] = {
        "commit.computeCycles", "commit.stalledCycles",
        "commit.drainedCycles", "commit.flushedCycles"};
    static const char *state_descs[4] = {
        "cycles committing", "cycles stalled on the ROB head",
        "cycles with the ROB drained", "cycles in a flush shadow"};
    for (unsigned i = 0; i < 4; ++i)
        line(state_names[i], static_cast<double>(stateCycles[i]),
             state_descs[i]);
    for (unsigned e = 0; e < numEvents; ++e) {
        out += strprintf("%-28s %16.2f  # dynamic %s occurrences\n",
                         (std::string("events.") +
                          eventName(static_cast<Event>(e)))
                             .c_str(),
                         static_cast<double>(eventCounts[e]),
                         eventDescription(static_cast<Event>(e)));
    }
    line("events.uopsWithEvents", static_cast<double>(uopsWithEvents),
         "uops retiring with >= 1 event");
    line("events.uopsWithCombined",
         static_cast<double>(uopsWithCombined),
         "uops retiring with >= 2 events");
    line("frontend.branchMispredicts",
         static_cast<double>(branchMispredicts), "mispredicted branches");
    line("frontend.pipelineFlushes",
         static_cast<double>(pipelineFlushes),
         "mispredict + CSR flushes");
    line("lsu.moViolations", static_cast<double>(moViolations),
         "memory-ordering violations");
    line("lsu.drSqStallCycles", static_cast<double>(drSqStallCycles),
         "dispatch cycles blocked on a full SQ");
    line("pmu.samplingInterrupts",
         static_cast<double>(samplingInterrupts),
         "injected sampling interrupts");
    return out;
}

Core::Core(const CoreConfig &cfg, const Program &prog, ArchState initial)
    : cfg_(cfg),
      prog_(prog),
      arch_(std::move(initial)),
      mem_(cfg),
      bp_(makePredictor(cfg)),
      fetchPc_(prog.entry()),
      rob_(cfg.robEntries)
{
    init();
}

Core::Core(const CoreConfig &cfg, const Program &prog, ArchState initial,
           Uncore &uncore)
    : cfg_(cfg),
      prog_(prog),
      arch_(std::move(initial)),
      mem_(cfg, uncore),
      bp_(makePredictor(cfg)),
      fetchPc_(prog.entry()),
      rob_(cfg.robEntries)
{
    init();
}

Core::Core(const CoreConfig &cfg, const Program &prog, ArchState initial,
           InstIndex start_pc, std::uint64_t uop_base,
           const BranchPredictor *warm_predictor)
    : cfg_(cfg),
      prog_(prog),
      arch_(std::move(initial)),
      mem_(cfg),
      bp_(warm_predictor ? warm_predictor->clone() : makePredictor(cfg)),
      fetchPc_(start_pc),
      rob_(cfg.robEntries)
{
    tea_assert(start_pc < prog.size(), "start pc %u out of range",
               static_cast<unsigned>(start_pc));
    uopBase_ = uop_base;
    init();
}

void
Core::init()
{
    tea_assert(cfg_.commitWidth <= committedThisCycle_.size(),
               "commit width %u too large", cfg_.commitWidth);
    lastWriter_.fill(invalidSeqNum);
    nextSsClear_ = cfg_.storeSetClearInterval == 0
                       ? ~std::uint64_t(0)
                       : (uopBase_ / cfg_.storeSetClearInterval + 1) *
                             cfg_.storeSetClearInterval;

    // Every container touched per cycle is sized once, here: the hot
    // stages (annotated `tea_lint: hot`) must never allocate.
    fetchBuffer_.reserve(cfg_.fetchBufferEntries);
    sq_.reserve(cfg_.sqEntries);
    lq_.reserve(cfg_.lqEntries);
    // Worst case per class: a squash re-enqueues every unissued ROB
    // entry, which can exceed the dispatch-time IQ capacity.
    for (unsigned k = 0; k < NumIqs; ++k)
        iqs_[k].reserve(cfg_.robEntries);
    for (DynUop &u : rob_)
        u.waiters.reserve(8);
    iqMinReady_.fill(0);
    wake_.reserve(256);
    traceBuf_.reserve(traceBatchEvents);

    if (const char *v = std::getenv("TEA_CORE_FASTPATH")) {
        if (v[0] != '\0')
            fastPath_ = !(v[0] == '0' && v[1] == '\0');
    }
}

void
Core::addSink(TraceSink *sink)
{
    sinks_.push_back(sink);
}

void
Core::warmFromCheckpoint(const ArchCheckpoint &ck)
{
    tea_assert(cycle_ == 0,
               "warmFromCheckpoint requires a core that has not yet run "
               "(cycle %llu)",
               static_cast<unsigned long long>(cycle_));
    mem_.warmReplay(ck.codeFirstTouch, ck.warmAccesses);
    mem_.installCodeLines(ck.codeLastUse);
    mem_.installL2Tlb(ck.l2Tlb);
}

std::uint64_t
Core::stateFingerprint() const
{
    Fnv1a h;
    mem_.fingerprintState(h, cycle_);
    hashStoreSets(h);
    return h.value();
}

std::vector<std::pair<const char *, std::uint64_t>>
Core::stateFingerprintParts() const
{
    auto parts = mem_.fingerprintParts(cycle_);
    Fnv1a h;
    hashStoreSets(h);
    parts.emplace_back("store-sets", h.value());
    return parts;
}

void
Core::hashStoreSets(Fnv1a &h) const
{
    std::vector<InstIndex> ss(storeSets_.begin(), storeSets_.end());
    std::sort(ss.begin(), ss.end());
    h.add(ss.size());
    for (InstIndex pc : ss)
        h.add(pc);
}

// tea_lint: hot
void
Core::scheduleWake(Cycle at)
{
    if (at == invalidCycle || at <= cycle_)
        return;
    // Next-cycle wakes dominate (every active stage re-arms cycle+1,
    // and single-cycle completions land there too); a sticky flag keeps
    // them out of the heap entirely, so chains of busy cycles cost no
    // heap traffic at all.
    if (at == cycle_ + 1) {
        wakeNext_ = true;
        return;
    }
    if (!wake_.empty() && wake_.front() == at)
        return;
    wake_.push_back(at);
    std::push_heap(wake_.begin(), wake_.end(), std::greater<Cycle>());
}

// tea_lint: hot
Cycle
Core::nextWakeAtLeast(Cycle at)
{
    while (!wake_.empty() && wake_.front() < at) {
        std::pop_heap(wake_.begin(), wake_.end(), std::greater<Cycle>());
        wake_.pop_back();
        ++perf_.wakeups;
    }
    return wake_.empty() ? invalidCycle : wake_.front();
}

// tea_lint: hot
TraceEvent &
Core::traceAppend(TraceEventKind kind)
{
    if (traceBuf_.size() == traceBatchEvents)
        flushTrace();
    traceBuf_.emplace_back();
    TraceEvent &ev = traceBuf_.back();
    ev.kind = kind;
    return ev;
}

// tea_lint: hot
void
Core::flushTrace()
{
    if (traceBuf_.empty())
        return;
    perf_.traceEvents += traceBuf_.size();
    for (TraceSink *s : sinks_)
        s->onBatch(traceBuf_.data(), traceBuf_.size());
    traceBuf_.clear();
}

void
Core::emitEnd()
{
    flushTrace();
    if (!sinks_.empty())
        ++perf_.traceEvents;
    for (TraceSink *s : sinks_)
        s->onEnd(cycle_);
}

Core::DynUop *
Core::uopFor(SeqNum seq)
{
    if (seq == invalidSeqNum)
        return nullptr;
    DynUop &u = rob_[seq % rob_.size()];
    return (u.inRob && u.seq == seq) ? &u : nullptr;
}

Core::IqKind
Core::iqOf(InstClass cls) const
{
    switch (cls) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
      case InstClass::Branch:
      case InstClass::Csr:
        return IqInt;
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::Prefetch:
        return IqMem;
      case InstClass::FpAlu:
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
        return IqFp;
      case InstClass::Nop:
        break;
    }
    tea_panic("no issue queue for class %d", static_cast<int>(cls));
}

unsigned
Core::execLatency(InstClass cls) const
{
    switch (cls) {
      case InstClass::IntAlu:
      case InstClass::Branch:
      case InstClass::Csr:
        return 1;
      case InstClass::IntMul:
        return cfg_.intMulLatency;
      case InstClass::IntDiv:
        return cfg_.intDivLatency;
      case InstClass::FpAlu:
        return cfg_.fpAluLatency;
      case InstClass::FpDiv:
        return cfg_.fpDivLatency;
      case InstClass::FpSqrt:
        return cfg_.fpSqrtLatency;
      case InstClass::Load:
      case InstClass::Store:
      case InstClass::Prefetch:
      case InstClass::Nop:
        break;
    }
    tea_panic("no fixed latency for class %d", static_cast<int>(cls));
}

// tea_lint: hot
void
Core::scheduleCompletion(DynUop &u, Cycle complete_at)
{
    u.issued = true;
    u.completeCycle = complete_at;
    scheduleWake(complete_at);
    for (SeqNum w : u.waiters) {
        if (DynUop *c = uopFor(w)) {
            tea_assert(c->pendingDeps > 0, "wakeup underflow at seq %lu",
                       static_cast<unsigned long>(w));
            --c->pendingDeps;
            c->readyCycle = std::max(c->readyCycle, complete_at);
            // Last dependency satisfied: this entry's queue must be
            // scanned again no later than its ready cycle.
            if (c->pendingDeps == 0 && c->si->cls() != InstClass::Nop)
                iqWake(iqOf(c->si->cls()), c->readyCycle);
        }
    }
    u.waiters.clear();
    onBarrierResolved(u, complete_at);
}

void
Core::onBarrierResolved(const DynUop &u, Cycle event_cycle)
{
    // Mispredicted branches release the fetch barrier at resolution;
    // CSR flushes release it at commit (handled in commitStage).
    if (u.seq == barrierSeq_ && !barrierUntilCommit_) {
        fetchResume_ =
            std::max(fetchResume_, event_cycle + cfg_.redirectPenalty);
        scheduleWake(fetchResume_);
        barrierSeq_ = invalidSeqNum;
    }
}

// tea_lint: hot
void
Core::retireUop(DynUop &u)
{
    ++stats_.committedUops;
    unsigned events = u.psv.popcount();
    if (events >= 1)
        ++stats_.uopsWithEvents;
    if (events >= 2)
        ++stats_.uopsWithCombined;
    for (unsigned i = 0; i < numEvents; ++i) {
        if (u.psv.test(static_cast<Event>(i)))
            ++stats_.eventCounts[i];
    }

    if (u.si->isLoad()) {
        tea_assert(!lq_.empty() && lq_.front().seq == u.seq,
                   "load queue out of order at seq %lu",
                   static_cast<unsigned long>(u.seq));
        lq_.pop_front();
    }

    if (!sinks_.empty())
        traceAppend(TraceEventKind::Retire).p.retire =
            RetireRecord{u.seq, u.pc, u.psv, cycle_};
}

// tea_lint: hot
void
Core::commitStage()
{
    numCommitted_ = 0;
    while (numCommitted_ < cfg_.commitWidth && robCount_ > 0) {
        DynUop &h = rob_[robHead_ % rob_.size()];
        tea_assert(h.inRob && h.seq == robHead_, "ROB head corrupt");
        if (!h.complete(cycle_))
            break;

        if (h.si->isStore()) {
            for (std::size_t i = 0; i < sq_.size(); ++i) {
                SqEntry &e = sq_[i];
                if (e.seq == h.seq) {
                    tea_assert(e.executed, "committing unexecuted store");
                    e.committed = true;
                    break;
                }
            }
        }

        bool flusher = h.si->isAlwaysFlush() || h.mispredicted;
        if (h.si->isAlwaysFlush()) {
            fetchResume_ =
                std::max(fetchResume_, cycle_ + cfg_.redirectPenalty);
            scheduleWake(fetchResume_);
            if (barrierSeq_ == h.seq)
                barrierSeq_ = invalidSeqNum;
        }
        if (h.si->op == Op::Halt)
            halted_ = true;

        committedThisCycle_[numCommitted_] = CommittedUop{h.seq, h.pc,
                                                          h.psv};
        ++numCommitted_;
        lastValid_ = true;
        lastPc_ = h.pc;
        lastPsv_ = h.psv;

        retireUop(h);
        h.inRob = false;
        --robCount_;
        robHead_ = h.seq + 1;

        if (flusher) {
            if (robCount_ == 0)
                flushShadow_ = true;
            // Commit stops at a flushing instruction.
            break;
        }
    }
    if (numCommitted_ > 0)
        scheduleWake(cycle_ + 1); // more heads / freed slots next cycle
    emitCycleRecord();
}

// tea_lint: hot
void
Core::emitCycleRecord()
{
    CycleRecord rec;
    rec.cycle = cycle_;
    rec.numCommitted = numCommitted_;
    rec.committed = committedThisCycle_;
    rec.lastValid = lastValid_;
    rec.lastPc = lastPc_;
    rec.lastPsv = lastPsv_;

    if (numCommitted_ > 0) {
        rec.state = CommitState::Compute;
    } else if (robCount_ > 0) {
        rec.state = CommitState::Stalled;
        DynUop &h = rob_[robHead_ % rob_.size()];
        rec.headValid = true;
        rec.headSeq = h.seq;
        rec.headPc = h.pc;
    } else {
        rec.state =
            flushShadow_ ? CommitState::Flushed : CommitState::Drained;
    }

    ++stats_.stateCycles[static_cast<unsigned>(rec.state)];
    if (!sinks_.empty())
        traceAppend(TraceEventKind::Cycle).p.cycle = rec;
}

// tea_lint: hot
void
Core::drainStores()
{
    while (!sq_.empty() && sq_.front().draining &&
           sq_.front().drainDone <= cycle_) {
        sq_.pop_front();
    }
    // Start at most one new drain per cycle, in program order; fills
    // overlap through the MSHRs.
    for (std::size_t i = 0; i < sq_.size(); ++i) {
        SqEntry &e = sq_[i];
        if (!e.committed)
            break;
        if (!e.draining) {
            MemAccessResult r = mem_.storeDrain(e.addr, cycle_);
            e.draining = true;
            e.drainDone = std::max(r.done, cycle_ + 1);
            scheduleWake(e.drainDone); // SQ slot frees; dispatch unblocks
            scheduleWake(cycle_ + 1);  // next committed store may start
            break;
        }
    }
}

// tea_lint: hot
bool
Core::tryIssueMem(DynUop &u)
{
    const Addr word = u.memAddr & ~Addr(7);

    if (u.si->isLoad()) {
        bool conservative = storeSets_.count(u.pc) > 0;
        const SqEntry *fwd = nullptr;
        for (std::size_t i = 0; i < sq_.size(); ++i) {
            const SqEntry &e = sq_[i];
            if (e.seq >= u.seq)
                break;
            if (!e.executed && conservative)
                return false; // wait for older store addresses
            if (e.executed && (e.addr & ~Addr(7)) == word)
                fwd = &e; // youngest older matching store wins
        }

        LqEntry *lqe = nullptr;
        for (std::size_t i = 0; i < lq_.size(); ++i) {
            if (lq_[i].seq == u.seq) {
                lqe = &lq_[i];
                break;
            }
        }
        tea_assert(lqe, "load seq %lu missing from LQ",
                   static_cast<unsigned long>(u.seq));

        Cycle done;
        if (fwd) {
            done = cycle_ + cfg_.forwardLatency;
            lqe->forwarded = true;
        } else {
            TlbResult t = mem_.dataTranslate(u.memAddr);
            if (t.l1Miss)
                u.psv.set(Event::StTlb);
            MemAccessResult r = mem_.load(u.memAddr,
                                          cycle_ + t.extraLatency);
            if (r.l1Miss)
                u.psv.set(Event::StL1);
            if (r.llcMiss)
                u.psv.set(Event::StLlc);
            done = r.done;
        }
        lqe->issued = true;
        lqe->issueCycle = cycle_;
        scheduleCompletion(u, done);
        return true;
    }

    if (u.si->isStore()) {
        TlbResult t = mem_.dataTranslate(u.memAddr);
        if (t.l1Miss)
            u.psv.set(Event::StTlb);
        for (std::size_t i = 0; i < sq_.size(); ++i) {
            SqEntry &e = sq_[i];
            if (e.seq == u.seq) {
                e.executed = true;
                e.execCycle = cycle_;
                break;
            }
        }
        scheduleCompletion(u, cycle_ + 1 + t.extraLatency);

        // Memory-ordering violation: an already-issued younger load to
        // the same word that did not get this store's data.
        for (std::size_t i = 0; i < lq_.size(); ++i) {
            const LqEntry &e = lq_[i];
            if (e.seq <= u.seq || !e.issued || e.issueCycle > cycle_)
                continue;
            if ((e.addr & ~Addr(7)) != word)
                continue;
            if (pendingSquash_ == invalidSeqNum || e.seq < pendingSquash_)
                pendingSquash_ = e.seq;
            break; // oldest such load (LQ is in program order)
        }
        return true;
    }

    // Software prefetch: fire-and-forget.
    TlbResult t = mem_.dataTranslate(u.memAddr);
    mem_.prefetch(u.memAddr, cycle_ + t.extraLatency);
    scheduleCompletion(u, cycle_ + 1);
    return true;
}

// tea_lint: hot
void
Core::issueStage()
{
    pendingSquash_ = invalidSeqNum;
    bool issued_any = false;

    static constexpr IqKind kinds[] = {IqInt, IqMem, IqFp};
    for (IqKind kind : kinds) {
        auto &q = iqs_[kind];
        // Flat scheduling: each queue carries a conservative lower
        // bound on the earliest cycle anything in it could issue
        // (maintained at dispatch, dependency wakeup and squash), so a
        // queue full of waiting entries costs nothing to pass over.
        if (q.empty() || iqMinReady_[kind] > cycle_)
            continue;
        unsigned width = kind == IqInt   ? cfg_.intIssueWidth
                         : kind == IqMem ? cfg_.memIssueWidth
                                         : cfg_.fpIssueWidth;
        unsigned issued = 0;
        Cycle min_ready = invalidCycle; ///< bound rebuilt by a full scan
        bool full_scan = true;
        for (auto it = q.begin(); it != q.end();) {
            if (issued >= width) {
                full_scan = false;
                break;
            }
            DynUop *u = uopFor(*it);
            if (!u || u->issued) {
                it = q.erase(it); // stale entry (retired or re-scheduled)
                continue;
            }
            if (u->pendingDeps > 0) {
                // Woken through its producer's completion (iqWake).
                ++it;
                continue;
            }
            if (u->readyCycle > cycle_) {
                min_ready = std::min(min_ready, u->readyCycle);
                ++it;
                continue;
            }
            InstClass cls = u->si->cls();
            // Unpipelined units.
            Cycle *fu_free = nullptr;
            if (cls == InstClass::IntDiv)
                fu_free = &divFree_;
            else if (cls == InstClass::FpDiv)
                fu_free = &fpDivFree_;
            else if (cls == InstClass::FpSqrt)
                fu_free = &fpSqrtFree_;
            if (fu_free && *fu_free > cycle_) {
                scheduleWake(*fu_free); // ready; retry when the unit frees
                min_ready = std::min(min_ready, cycle_ + 1);
                ++it;
                continue;
            }

            if (kind == IqMem) {
                if (!tryIssueMem(*u)) {
                    // Blocked on LSQ state, which only changes on
                    // active cycles: retry on the next one.
                    min_ready = std::min(min_ready, cycle_ + 1);
                    ++it;
                    continue;
                }
            } else {
                scheduleCompletion(*u, cycle_ + execLatency(cls));
            }
            if (fu_free)
                *fu_free = cycle_ + execLatency(cls);
            it = q.erase(it);
            ++issued;
            issued_any = true;
        }
        // A width-limited pass may have left issuable entries behind;
        // a completed pass has seen (and bounded) every survivor.
        iqMinReady_[kind] = full_scan ? min_ready : cycle_ + 1;
    }

    if (issued_any)
        scheduleWake(cycle_ + 1); // width-blocked entries retry

    if (pendingSquash_ != invalidSeqNum)
        moSquash(pendingSquash_);
}

void
Core::moSquash(SeqNum load_seq)
{
    ++stats_.moViolations;
    Cycle restart = cycle_ + cfg_.moReplayPenalty;
    scheduleWake(restart);

    DynUop *load = uopFor(load_seq);
    tea_assert(load, "MO violation on retired load seq %lu",
               static_cast<unsigned long>(load_seq));
    load->psv.set(Event::FlMo);
    storeSets_.insert(load->pc);

    // Reset the load and everything younger (squash + re-execute).
    for (SeqNum s = load_seq; s < robHead_ + robCount_; ++s) {
        DynUop *u = uopFor(s);
        if (!u)
            continue;
        u->issued = false;
        u->completeCycle = invalidCycle;
        u->waiters.clear();
        u->pendingDeps = 0;
        u->readyCycle = restart;
    }
    // Recompute dependencies in ascending seq order.
    for (SeqNum s = load_seq; s < robHead_ + robCount_; ++s) {
        DynUop *u = uopFor(s);
        if (!u)
            continue;
        if (u->si->cls() == InstClass::Nop) {
            u->issued = true;
            u->completeCycle = restart;
            continue;
        }
        for (SeqNum dep : u->depSeqs) {
            DynUop *p = uopFor(dep);
            if (!p)
                continue; // producer retired; data long available
            if (p->issued) {
                u->readyCycle = std::max(u->readyCycle, p->completeCycle);
            } else {
                ++u->pendingDeps;
                if (std::find(p->waiters.begin(), p->waiters.end(),
                              u->seq) == p->waiters.end()) {
                    p->waiters.push_back(u->seq);
                }
            }
        }
        // Reset LSQ execution state.
        if (u->si->isLoad()) {
            for (std::size_t i = 0; i < lq_.size(); ++i) {
                LqEntry &e = lq_[i];
                if (e.seq == s) {
                    e.issued = false;
                    e.forwarded = false;
                    break;
                }
            }
        } else if (u->si->isStore()) {
            for (std::size_t i = 0; i < sq_.size(); ++i) {
                SqEntry &e = sq_[i];
                if (e.seq == s) {
                    tea_assert(!e.committed, "squashing committed store");
                    e.executed = false;
                    break;
                }
            }
        }
    }
    rebuildIqs();
}

void
Core::rebuildIqs()
{
    for (auto &q : iqs_)
        q.clear();
    iqMinReady_.fill(0); // squash recovery: force full rescans
    for (SeqNum s = robHead_; s < robHead_ + robCount_; ++s) {
        DynUop *u = uopFor(s);
        if (!u || u->issued)
            continue;
        InstClass cls = u->si->cls();
        if (cls == InstClass::Nop)
            continue;
        iqs_[iqOf(cls)].push_back(s);
    }
}

// tea_lint: hot
void
Core::dispatchStage()
{
    bool dispatched = false;
    for (unsigned n = 0; n < cfg_.dispatchWidth; ++n) {
        if (fetchBuffer_.empty())
            break;
        DynUop &fb = fetchBuffer_.front();
        if (fb.fbReady > cycle_) {
            scheduleWake(fb.fbReady); // decode completes; retry then
            break;
        }
        if (robCount_ >= cfg_.robEntries)
            break;

        InstClass cls = fb.si->cls();
        if (cls != InstClass::Nop) {
            IqKind k = iqOf(cls);
            unsigned cap = k == IqInt   ? cfg_.intIqEntries
                           : k == IqMem ? cfg_.memIqEntries
                                        : cfg_.fpIqEntries;
            if (iqs_[k].size() >= cap)
                break;
        }
        if (fb.si->isLoad() && lq_.size() >= cfg_.lqEntries)
            break;
        if (fb.si->isStore() && sq_.size() >= cfg_.sqEntries) {
            // DR-SQ: the store is the oldest in-flight micro-op and
            // cannot dispatch because the store queue is full of
            // completed-but-not-retired stores.
            if (robCount_ == 0) {
                fb.psv.set(Event::DrSq);
                ++stats_.drSqStallCycles;
            }
            break;
        }

        // Allocate the ROB entry. Field-wise assignment (not a struct
        // move) so the slot's waiters vector keeps its heap capacity
        // across reuse.
        std::size_t slot = fb.seq % rob_.size();
        DynUop &d = rob_[slot];
        d.seq = fb.seq;
        d.pc = fb.pc;
        d.si = fb.si;
        d.psv = fb.psv;
        d.memAddr = fb.memAddr;
        d.taken = fb.taken;
        d.mispredicted = fb.mispredicted;
        d.fbReady = fb.fbReady;
        d.readyCycle = fb.readyCycle;
        d.pendingDeps = 0;
        d.issued = false;
        d.completeCycle = invalidCycle;
        d.depSeqs = {invalidSeqNum, invalidSeqNum};
        d.waiters.clear();
        d.inRob = true;
        fetchBuffer_.pop_front();
        if (robCount_ == 0)
            robHead_ = d.seq;
        ++robCount_;
        flushShadow_ = false;
        dispatched = true;

        // Rename: record producer constraints.
        d.readyCycle = std::max(d.readyCycle, cycle_ + 1);
        d.pendingDeps = 0;
        RegId srcs[2] = {d.si->rs1, d.si->rs2};
        for (unsigned i = 0; i < 2; ++i) {
            RegId r = srcs[i];
            if (r == noReg || r == zeroReg)
                continue;
            SeqNum w = lastWriter_[r];
            if (w == invalidSeqNum)
                continue;
            DynUop *p = uopFor(w);
            if (!p)
                continue; // producer already retired
            d.depSeqs[i] = w;
            if (p->issued) {
                d.readyCycle = std::max(d.readyCycle, p->completeCycle);
            } else {
                ++d.pendingDeps;
                p->waiters.push_back(d.seq);
            }
        }
        if (d.si->hasDest())
            lastWriter_[d.si->rd] = d.seq;
        scheduleWake(d.readyCycle); // operands ready; issue may proceed

        if (d.si->isLoad()) {
            lq_.push_back(LqEntry{d.seq, d.pc, d.memAddr & ~Addr(7),
                                  false, invalidCycle, false});
        } else if (d.si->isStore()) {
            sq_.push_back(SqEntry{d.seq, d.pc, d.memAddr & ~Addr(7),
                                  false, invalidCycle, false, false,
                                  invalidCycle});
        }

        if (cls == InstClass::Nop) {
            d.issued = true;
            d.completeCycle = cycle_ + 1;
            scheduleWake(d.completeCycle); // head may commit then
        } else {
            iqs_[iqOf(cls)].push_back(d.seq);
            // Operands already in flight resolve through iqWake at the
            // producer's completion; a dep-free entry must lower the
            // scan bound itself.
            if (d.pendingDeps == 0)
                iqWake(iqOf(cls), d.readyCycle);
        }

        if (!sinks_.empty())
            traceAppend(TraceEventKind::Dispatch).p.uop =
                UopRecord{d.seq, d.pc, cycle_};
    }
    if (dispatched)
        scheduleWake(cycle_ + 1); // width-limited; more may dispatch
}

// tea_lint: hot
void
Core::fetchStage()
{
    if (fetchDone_ || barrierSeq_ != invalidSeqNum ||
        cycle_ < fetchResume_) {
        return;
    }
    if (fetchBuffer_.size() >= cfg_.fetchBufferEntries)
        return;

    Addr packet_addr = prog_.pcOf(fetchPc_);
    IFetchResult fr = mem_.ifetch(packet_addr, cycle_);
    if (fr.l1Miss || fr.itlbMiss) {
        pendingDrL1_ = pendingDrL1_ || fr.l1Miss;
        pendingDrTlb_ = pendingDrTlb_ || fr.itlbMiss;
        fetchResume_ = std::max(fetchResume_, fr.done);
        scheduleWake(fetchResume_); // miss return restarts fetch
        return;
    }

    bool fetched_any = false;
    bool first = true;
    for (unsigned n = 0; n < cfg_.fetchWidth &&
                         fetchBuffer_.size() < cfg_.fetchBufferEntries;
         ++n) {
        if (lineOf(prog_.pcOf(fetchPc_)) != lineOf(packet_addr))
            break; // fetch packets do not cross cache lines

        InstIndex this_pc = fetchPc_;
        const StaticInst &si = prog_.inst(this_pc);
        ExecResult er = execute(prog_, this_pc, arch_);
        fetchPc_ = er.nextPc;

        DynUop u;
        u.seq = nextSeq_++;
        u.pc = this_pc;
        u.si = &si;
        u.memAddr = er.memAddr;
        u.taken = er.taken;
        u.fbReady = cycle_ + cfg_.decodeLatency;

        if (first) {
            if (pendingDrL1_)
                u.psv.set(Event::DrL1);
            if (pendingDrTlb_)
                u.psv.set(Event::DrTlb);
            pendingDrL1_ = false;
            pendingDrTlb_ = false;
            first = false;
        }

        bool stop = false;
        if (si.isCondBranch()) {
            bool pred = bp_->predict(this_pc);
            bp_->update(this_pc, er.taken);
            u.mispredicted = pred != er.taken;
            if (u.mispredicted) {
                ++stats_.branchMispredicts;
                ++stats_.pipelineFlushes;
                u.psv.set(Event::FlMb);
                barrierSeq_ = u.seq;
                barrierUntilCommit_ = false;
                stop = true;
            } else if (er.taken) {
                stop = true; // packet ends at a taken branch
            }
        } else if (si.isControl()) {
            stop = true; // jumps/calls/returns: predicted, taken
        }
        if (si.isAlwaysFlush()) {
            u.psv.set(Event::FlEx);
            ++stats_.pipelineFlushes;
            barrierSeq_ = u.seq;
            barrierUntilCommit_ = true;
            stop = true;
        }
        if (si.op == Op::Halt) {
            fetchDone_ = true;
            stop = true;
        }

        UopRecord rec{u.seq, u.pc, cycle_};
        fetchBuffer_.push_back(std::move(u));
        fetched_any = true;
        if (!sinks_.empty())
            traceAppend(TraceEventKind::Fetch).p.uop = rec;

        if (stop)
            break;
    }
    if (fetched_any)
        scheduleWake(cycle_ + 1); // fetch continues / decode proceeds
}

// tea_lint: hot
// tea_lint: hot
void
Core::ageStoreSets()
{
    const std::uint64_t committed = uopBase_ + stats_.committedUops;
    if (committed < nextSsClear_)
        return;
    storeSets_.clear();
    nextSsClear_ = (committed / cfg_.storeSetClearInterval + 1) *
                   cfg_.storeSetClearInterval;
}

void
Core::runStages()
{
    commitStage();
    drainStores();
    if (!halted_) {
        issueStage();
        dispatchStage();
        fetchStage();
    }
    ++perf_.activeCycles;
}

// tea_lint: hot
void
Core::endOfCycle()
{
    if (cfg_.samplingInterruptPeriod != 0 && !halted_ &&
        cycle_ % cfg_.samplingInterruptPeriod == 0) {
        // The sampling interrupt handler occupies the front end while it
        // drains TEA's sample CSRs into the memory buffer.
        fetchResume_ = std::max(fetchResume_,
                                cycle_ + cfg_.samplingHandlerCycles);
        scheduleWake(fetchResume_);
        ++stats_.samplingInterrupts;
    }
    ++cycle_;
    stats_.cycles = cycle_;
}

bool
Core::step()
{
    runStages();
    ageStoreSets();
    endOfCycle();
    // The stages schedule wakes unconditionally (so a step()-driven
    // prefix can hand off to the fast path); drain the stale ones to
    // keep the calendar bounded when nobody consumes it. Consuming the
    // next-cycle flag here is harmless either way — the reference loop
    // runs every cycle regardless.
    wakeNext_ = false;
    nextWakeAtLeast(cycle_);
    flushTrace();
    if (halted_) {
        emitEnd();
        return false;
    }
    return true;
}

/**
 * Bulk-emit the commit frames for the provably idle cycles
 * [cycle_, until) and jump the clock to @p until. Everything a cycle
 * record exposes is constant while no stage runs (no commits, same ROB
 * head, same last-committed register), so one template record is
 * stamped with successive cycle numbers — the auditor sees the same
 * dense, monotone stream the reference loop emits.
 */
// tea_lint: hot
void
Core::skipIdleCycles(Cycle until)
{
    const Cycle skipped = until - cycle_;
    CycleRecord rec;
    rec.numCommitted = 0;
    rec.committed = committedThisCycle_;
    rec.lastValid = lastValid_;
    rec.lastPc = lastPc_;
    rec.lastPsv = lastPsv_;
    if (robCount_ > 0) {
        rec.state = CommitState::Stalled;
        DynUop &h = rob_[robHead_ % rob_.size()];
        rec.headValid = true;
        rec.headSeq = h.seq;
        rec.headPc = h.pc;
    } else {
        rec.state =
            flushShadow_ ? CommitState::Flushed : CommitState::Drained;
    }
    stats_.stateCycles[static_cast<unsigned>(rec.state)] += skipped;
    // DR-SQ stalls accrue every blocked cycle; the blocking condition
    // (front-of-buffer store, empty ROB, full SQ) cannot change during
    // an idle span, so the whole span counts iff it holds now.
    if (drSqBlockedNow())
        stats_.drSqStallCycles += skipped;
    if (!sinks_.empty()) {
        // Idle frames differ only in their cycle stamp: append the
        // template in batch-sized bulk, stamping each copy while its
        // cache line is still hot, instead of paying the per-event
        // flush check of traceAppend. One fused pass — fill-then-
        // restamp would re-walk ~176 bytes per frame a second time,
        // which on a multi-megacycle idle stream is the difference
        // between the fast path beating the reference loop and merely
        // tying it.
        TraceEvent ev{};
        ev.kind = TraceEventKind::Cycle;
        ev.p.cycle = rec;
        for (Cycle c = cycle_; c < until;) {
            if (traceBuf_.size() == traceBatchEvents)
                flushTrace();
            std::size_t n =
                std::min<std::size_t>(traceBatchEvents - traceBuf_.size(),
                                      until - c);
            for (std::size_t i = 0; i < n; ++i) {
                ev.p.cycle.cycle = c + i;
                traceBuf_.push_back(ev);
            }
            c += n;
        }
    }
    perf_.skippedCycles += skipped;
    cycle_ = until;
    stats_.cycles = cycle_;
}

bool
Core::drSqBlockedNow() const
{
    // Mirrors the guards dispatchStage passes before charging DR-SQ.
    if (cfg_.dispatchWidth == 0 || robCount_ != 0 || fetchBuffer_.empty())
        return false;
    const DynUop &fb = fetchBuffer_.front();
    return fb.fbReady <= cycle_ && fb.si->isStore() &&
           iqs_[IqMem].size() < cfg_.memIqEntries &&
           sq_.size() >= cfg_.sqEntries;
}

Cycle
Core::runFast(Cycle max_cycles, std::uint64_t stop_uops)
{
    while (!halted_ && cycle_ < max_cycles &&
           stats_.committedUops < stop_uops) {
        runStages();
        ageStoreSets();
        endOfCycle();
        if (halted_ || cycle_ >= max_cycles ||
            stats_.committedUops >= stop_uops)
            break;

        if (wakeNext_) {
            // The cycle just executed armed its successor: stay on the
            // per-cycle path without touching the heap at all.
            wakeNext_ = false;
            continue;
        }
        Cycle next = nextWakeAtLeast(cycle_);
        if (cfg_.samplingInterruptPeriod != 0) {
            // Sampling interrupts fire on period boundaries even when
            // the pipeline is otherwise idle; never skip past one.
            const Cycle p = cfg_.samplingInterruptPeriod;
            next = std::min(next, ((cycle_ + p - 1) / p) * p);
        }
        next = std::min(next, max_cycles);
        if (next > cycle_)
            skipIdleCycles(next);
    }

    flushTrace();
    if (halted_)
        emitEnd();
    return cycle_;
}

Cycle
Core::run(Cycle max_cycles)
{
    if (fastPath_) {
        runFast(max_cycles, ~std::uint64_t(0));
    } else {
        while (!halted_ && cycle_ < max_cycles) {
            step();
        }
    }
    tea_assert(halted_, "%s did not halt within %lu cycles",
               prog_.name().c_str(),
               static_cast<unsigned long>(max_cycles));
    return cycle_;
}

Cycle
Core::runUntilCommitted(std::uint64_t target_uops, Cycle max_cycles)
{
    if (fastPath_)
        return runFast(max_cycles, target_uops);
    while (!halted_ && cycle_ < max_cycles &&
           stats_.committedUops < target_uops) {
        step();
    }
    return cycle_;
}

} // namespace tea
