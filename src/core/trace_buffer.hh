/**
 * @file
 * In-memory cycle-trace capture (the filesystem-free TraceDoctor path).
 *
 * A TraceSink records every trace event — cycle snapshots, fetch and
 * dispatch uops, retires and the end marker — into fixed-size chunks of
 * a tagged union, preserving the exact interleaving the core produced.
 * Chunks can be replayed through any set of TraceSinks, delivering
 * byte-identical records in the original order, which is what makes
 * out-of-band replay deterministic regardless of who replays them or
 * when (see DESIGN.md, "Out-of-band replay at scale").
 *
 * Two sinks are provided:
 *  - ChunkingSink: streams completed chunks to a callback (the parallel
 *    runner pushes them into a BroadcastQueue while the core is still
 *    simulating).
 *  - TraceBuffer: retains all chunks for repeated in-process replay.
 */

#ifndef TEA_CORE_TRACE_BUFFER_HH
#define TEA_CORE_TRACE_BUFFER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/trace.hh"

namespace tea {

/** Discriminator for one captured trace event. */
enum class TraceEventKind : std::uint8_t
{
    Cycle,
    Dispatch,
    Fetch,
    Retire,
    End,
};

/** One captured trace event (tagged union; all payloads are trivial). */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::End;
    union Payload
    {
        CycleRecord cycle;
        UopRecord uop; ///< Dispatch and Fetch
        RetireRecord retire;
        Cycle end;

        Payload() : end(0) {}
    } p;
};

/** A batch of consecutive trace events. */
struct TraceChunk
{
    std::vector<TraceEvent> events;

    /** Cycle records contained (for replayed-cycle accounting). */
    std::uint64_t cycleRecords = 0;
};

using TraceChunkPtr = std::shared_ptr<const TraceChunk>;

/**
 * True when @p a and @p b are indistinguishable to any TraceSink: same
 * kind and same values in every field an observer may legally read.
 * Fields gated by a validity flag (ROB head, last-committed, committed
 * slots at index >= numCommitted) are compared only when valid — the
 * core reuses its working buffers, so invalid slots can hold stale
 * bytes that a canonicalizing round trip (e.g. the on-disk codec)
 * legitimately normalizes away.
 */
bool eventsEquivalent(const TraceEvent &a, const TraceEvent &b);

/** Deliver one captured event to @p sink. */
void deliverEvent(const TraceEvent &ev, TraceSink &sink);

/**
 * Replay every event of @p chunk through @p sinks in capture order.
 * @return number of cycle records delivered
 */
std::uint64_t replayChunk(const TraceChunk &chunk,
                          const std::vector<TraceSink *> &sinks);

/**
 * TraceSink that batches events into chunks of @c chunkEvents and hands
 * each completed chunk to a callback. The final (possibly partial) chunk
 * is emitted by finish(), which the owner must call after the simulation
 * completes (onEnd alone does not flush: the core may legally emit no
 * end marker when it hits a cycle limit).
 */
class ChunkingSink : public TraceSink
{
  public:
    using Emit = std::function<void(TraceChunkPtr)>;

    /**
     * @param chunk_events events per chunk (>= 1)
     * @param emit called with each completed chunk
     */
    ChunkingSink(std::size_t chunk_events, Emit emit);

    void onCycle(const CycleRecord &rec) override;
    void onDispatch(const UopRecord &rec) override;
    void onFetch(const UopRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;
    void onBatch(const TraceEvent *events, std::size_t n) override;

    /** Flush the trailing partial chunk (idempotent). */
    void finish();

    /** Events captured so far. */
    std::uint64_t eventsCaptured() const { return events_; }

    /** Chunks emitted so far. */
    std::uint64_t chunksEmitted() const { return chunks_; }

  private:
    TraceEvent &append(TraceEventKind kind);

    std::size_t chunkEvents_;
    Emit emit_;
    std::shared_ptr<TraceChunk> open_;
    std::uint64_t events_ = 0;
    std::uint64_t chunks_ = 0;
};

/**
 * TraceSink that retains the whole trace in memory for repeated replay.
 */
class TraceBuffer : public TraceSink
{
  public:
    explicit TraceBuffer(std::size_t chunk_events = 4096);

    void onCycle(const CycleRecord &rec) override;
    void onDispatch(const UopRecord &rec) override;
    void onFetch(const UopRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;
    void onBatch(const TraceEvent *events, std::size_t n) override;

    /** Flush the trailing partial chunk (idempotent). */
    void finish();

    /** Captured chunks (finish() first to include the tail). */
    const std::vector<TraceChunkPtr> &chunks() const { return chunks_; }

    /** Events captured. */
    std::uint64_t eventsCaptured() const
    {
        return sink_.eventsCaptured();
    }

    /**
     * Replay the full captured trace through @p sinks.
     * @return number of cycle records delivered
     */
    std::uint64_t replay(const std::vector<TraceSink *> &sinks) const;

  private:
    ChunkingSink sink_;
    std::vector<TraceChunkPtr> chunks_;
};

} // namespace tea

#endif // TEA_CORE_TRACE_BUFFER_HH
