/**
 * @file
 * Multi-core system: N BOOM-class cores (one hardware thread each)
 * sharing an Uncore (LLC, DRAM bandwidth, L2 TLB). Each core has its
 * own TEA unit — i.e., its own trace and its own samplers — matching
 * Section 3's "one TEA unit per physical core" and enabling per-thread
 * PICS for multi-programmed workloads.
 */

#ifndef TEA_CORE_SYSTEM_HH
#define TEA_CORE_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "core/uncore.hh"
#include "isa/executor.hh"
#include "isa/program.hh"

namespace tea {

/** A shared-memory multi-core chip running one program per core. */
class System
{
  public:
    explicit System(const CoreConfig &cfg);

    /**
     * Add a core running @p prog from @p initial; the system takes
     * ownership of the program. @return the new core's id
     */
    unsigned addCore(Program prog, ArchState initial);

    /** Number of cores. */
    unsigned numCores() const
    {
        return static_cast<unsigned>(nodes_.size());
    }

    /** Core @p id (valid for the system's lifetime). */
    Core &core(unsigned id);
    const Core &core(unsigned id) const;

    /** Program running on core @p id. */
    const Program &program(unsigned id) const;

    /** Attach a trace observer to core @p id. */
    void addSink(unsigned id, TraceSink *sink);

    /**
     * Step all cores in lockstep until every core has halted (or
     * @p max_cycles elapse). @return cycles of the longest-running core
     */
    Cycle run(Cycle max_cycles = 2'000'000'000ULL);

    const Uncore &uncore() const { return uncore_; }

  private:
    struct Node
    {
        std::unique_ptr<Program> program;
        std::unique_ptr<Core> core;
    };

    CoreConfig cfg_;
    Uncore uncore_;
    std::vector<Node> nodes_;
};

} // namespace tea

#endif // TEA_CORE_SYSTEM_HH
