#include "core/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tea {

System::System(const CoreConfig &cfg) : cfg_(cfg), uncore_(cfg_) {}

unsigned
System::addCore(Program prog, ArchState initial)
{
    Node node;
    node.program = std::make_unique<Program>(std::move(prog));
    node.core = std::make_unique<Core>(cfg_, *node.program,
                                       std::move(initial), uncore_);
    nodes_.push_back(std::move(node));
    return static_cast<unsigned>(nodes_.size() - 1);
}

Core &
System::core(unsigned id)
{
    tea_assert(id < nodes_.size(), "core id %u out of range", id);
    return *nodes_[id].core;
}

const Core &
System::core(unsigned id) const
{
    tea_assert(id < nodes_.size(), "core id %u out of range", id);
    return *nodes_[id].core;
}

const Program &
System::program(unsigned id) const
{
    tea_assert(id < nodes_.size(), "core id %u out of range", id);
    return *nodes_[id].program;
}

void
System::addSink(unsigned id, TraceSink *sink)
{
    core(id).addSink(sink);
}

Cycle
System::run(Cycle max_cycles)
{
    tea_assert(!nodes_.empty(), "system has no cores");
    Cycle longest = 0;
    bool any_running = true;
    while (any_running) {
        any_running = false;
        for (Node &n : nodes_) {
            if (n.core->halted())
                continue;
            n.core->step();
            if (!n.core->halted())
                any_running = true;
            longest = std::max(longest, n.core->cycle());
        }
        if (longest >= max_cycles)
            break;
    }
    for (const Node &n : nodes_) {
        tea_assert(n.core->halted(),
                   "core did not halt within %lu cycles",
                   static_cast<unsigned long>(max_cycles));
    }
    return longest;
}

} // namespace tea
