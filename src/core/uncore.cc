#include "core/uncore.hh"

#include <algorithm>

#include "common/fingerprint.hh"

namespace tea {

Uncore::Uncore(const CoreConfig &cfg)
    : cfg_(cfg),
      llc_(cfg.llc, "llc"),
      llcMshrs_(cfg.llc.mshrs),
      l2Tlb_(cfg.tlb.l2Entries)
{
}

Cycle
Uncore::dramAccess(Cycle start)
{
    Cycle service = std::max(start, dramNextFree_);
    dramNextFree_ = service + cfg_.dramInterval;
    ++dramTransfers_;
    return service + cfg_.dramLatency;
}

void
Uncore::writebackToLlc(const Eviction &ev)
{
    if (!ev.valid || !ev.dirty)
        return;
    if (llc_.contains(ev.line)) {
        llc_.markDirty(ev.line);
    } else {
        Eviction llc_ev = llc_.insert(ev.line, true);
        if (llc_ev.valid && llc_ev.dirty) {
            // Dirty LLC eviction consumes DRAM write bandwidth.
            dramNextFree_ += cfg_.dramInterval;
            ++dramTransfers_;
        }
    }
}

Cycle
Uncore::llcAccess(Addr line, Cycle start, bool &llc_miss)
{
    // A line whose fill is still in flight has its tag installed but no
    // data yet; the MSHRs take precedence over a tag hit.
    Cycle merged = llcMshrs_.outstandingFill(line, start);
    if (merged != invalidCycle) {
        llc_miss = true;
        llc_.access(line); // keep LRU/statistics coherent
        return std::max(merged, start + cfg_.llc.hitLatency);
    }

    if (llc_.access(line))
        return start + cfg_.llc.hitLatency;

    llc_miss = true;

    Cycle alloc = llcMshrs_.allocatableAt(start);
    Cycle begin = std::max(start + cfg_.llc.hitLatency, alloc);
    Cycle fill = dramAccess(begin);
    llcMshrs_.allocate(line, fill);
    Eviction ev = llc_.insert(line, false);
    if (ev.valid && ev.dirty) {
        dramNextFree_ += cfg_.dramInterval;
        ++dramTransfers_;
    }
    return fill;
}

void
Uncore::fingerprintParts(
    Cycle base,
    std::vector<std::pair<const char *, std::uint64_t>> &out) const
{
    const auto part = [&out](const char *name, auto &&fill) {
        Fnv1a h;
        fill(h);
        out.emplace_back(name, h.value());
    };
    part("llc", [this](Fnv1a &h) { llc_.fingerprintState(h); });
    part("llc-mshrs",
         [this, base](Fnv1a &h) { llcMshrs_.fingerprintState(h, base); });
    part("l2tlb", [this](Fnv1a &h) { l2Tlb_.fingerprintState(h); });
    part("dram", [this, base](Fnv1a &h) {
        h.add(dramNextFree_ > base ? dramNextFree_ - base : 0);
    });
}

void
Uncore::fingerprintState(Fnv1a &h, Cycle base) const
{
    llc_.fingerprintState(h);
    llcMshrs_.fingerprintState(h, base);
    l2Tlb_.fingerprintState(h);
    // The DRAM bandwidth clock only matters when it is in the future;
    // any past value behaves as "free now".
    h.add(dramNextFree_ > base ? dramNextFree_ - base : 0);
}

} // namespace tea
