/**
 * @file
 * Two-level TLB model: per-side fully associative L1 TLBs backed by a
 * shared direct-mapped L2 TLB and a fixed-latency page-table walker.
 */

#ifndef TEA_CORE_TLB_HH
#define TEA_CORE_TLB_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"

namespace tea {

class Fnv1a;

/** Fully associative, true-LRU translation buffer over page numbers. */
class TlbArray
{
  public:
    TlbArray(unsigned entries, std::string name);

    /** Probe and update LRU. @return hit */
    bool access(Addr page);

    /** Insert a translation, evicting LRU. */
    void insert(Addr page);

    /**
     * Mix the behavioral state into @p h: valid pages in LRU-to-MRU
     * order (replacement sees only the relative order; statistics are
     * excluded — see CacheArray::fingerprintState).
     */
    void fingerprintState(Fnv1a &h) const;

    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

  private:
    struct Entry
    {
        Addr page = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::string name_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
};

/** Shared direct-mapped second-level TLB. */
class L2Tlb
{
  public:
    explicit L2Tlb(unsigned entries);

    /** Probe. @return hit */
    bool access(Addr page);

    /** Insert a translation. */
    void insert(Addr page);

    /** Mix the behavioral state (positional: direct-mapped) into @p h. */
    void fingerprintState(Fnv1a &h) const;

    /**
     * Export the valid (slot, page) pairs — the checkpoint pre-pass
     * snapshots its functional L2 model with this (core/checkpoint).
     */
    std::vector<std::pair<std::uint32_t, Addr>> snapshotValid() const;

    /**
     * Replace the entire content with @p slots, invalidating the rest.
     * Installs a pre-pass snapshot into a checkpoint-resumed core's L2
     * after warm replay (whose walks insert a window-local
     * approximation this overwrites with the exact model state).
     */
    void
    installSnapshot(const std::vector<std::pair<std::uint32_t, Addr>> &slots);

    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

  private:
    std::vector<Addr> slots_;
    std::vector<bool> valid_;
};

/** Result of a TLB translation. */
struct TlbResult
{
    unsigned extraLatency = 0; ///< added on top of the cache access
    bool l1Miss = false;       ///< the L1 TLB missed (ST-TLB / DR-TLB)
};

/**
 * TLB hierarchy for one side (instruction or data); the L2 is shared and
 * owned by MemorySystem.
 */
class TlbHierarchy
{
  public:
    TlbHierarchy(const TlbConfig &cfg, L2Tlb &l2, std::string name);

    /** Translate the page of @p addr, filling on miss. */
    TlbResult translate(Addr addr);

    const TlbArray &l1() const { return l1_; }

  private:
    TlbConfig cfg_;
    TlbArray l1_;
    L2Tlb &l2_;
};

} // namespace tea

#endif // TEA_CORE_TLB_HH
