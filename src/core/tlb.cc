#include "core/tlb.hh"

#include <algorithm>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "isa/memory.hh"

namespace tea {

TlbArray::TlbArray(unsigned entries, std::string name)
    : name_(std::move(name)), entries_(entries)
{
}

// tea_lint: hot
bool
TlbArray::access(Addr page)
{
    ++accesses;
    for (Entry &e : entries_) {
        if (e.valid && e.page == page) {
            e.lastUse = ++useClock_;
            return true;
        }
    }
    ++misses;
    return false;
}

// tea_lint: hot
void
TlbArray::insert(Addr page)
{
    Entry *victim = &entries_.front();
    for (Entry &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->page = page;
    victim->lastUse = ++useClock_;
}

void
TlbArray::fingerprintState(Fnv1a &h) const
{
    std::vector<const Entry *> order;
    order.reserve(entries_.size());
    for (const Entry &e : entries_)
        if (e.valid)
            order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const Entry *a, const Entry *b) {
                  return a->lastUse < b->lastUse;
              });
    h.add(order.size());
    for (const Entry *e : order)
        h.add(e->page);
}

L2Tlb::L2Tlb(unsigned entries) : slots_(entries, 0), valid_(entries, false)
{
}

// tea_lint: hot
bool
L2Tlb::access(Addr page)
{
    ++accesses;
    std::size_t idx = static_cast<std::size_t>(page) % slots_.size();
    if (valid_[idx] && slots_[idx] == page)
        return true;
    ++misses;
    return false;
}

// tea_lint: hot
void
L2Tlb::insert(Addr page)
{
    std::size_t idx = static_cast<std::size_t>(page) % slots_.size();
    slots_[idx] = page;
    valid_[idx] = true;
}

void
L2Tlb::fingerprintState(Fnv1a &h) const
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        h.add(static_cast<std::uint64_t>(valid_[i]));
        h.add(valid_[i] ? slots_[i] : 0);
    }
}

std::vector<std::pair<std::uint32_t, Addr>>
L2Tlb::snapshotValid() const
{
    std::vector<std::pair<std::uint32_t, Addr>> out;
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (valid_[i])
            out.emplace_back(static_cast<std::uint32_t>(i), slots_[i]);
    return out;
}

void
L2Tlb::installSnapshot(
    const std::vector<std::pair<std::uint32_t, Addr>> &slots)
{
    std::fill(valid_.begin(), valid_.end(), false);
    for (const auto &[idx, page] : slots) {
        slots_[idx] = page;
        valid_[idx] = true;
    }
}

TlbHierarchy::TlbHierarchy(const TlbConfig &cfg, L2Tlb &l2, std::string name)
    : cfg_(cfg), l1_(cfg.l1Entries, std::move(name)), l2_(l2)
{
}

// tea_lint: hot
TlbResult
TlbHierarchy::translate(Addr addr)
{
    Addr page = pageOf(addr);
    TlbResult res;
    if (l1_.access(page))
        return res;
    res.l1Miss = true;
    if (l2_.access(page)) {
        res.extraLatency = cfg_.l2HitLatency;
    } else {
        res.extraLatency = cfg_.walkLatency;
        l2_.insert(page);
    }
    l1_.insert(page);
    return res;
}

} // namespace tea
