#include "core/trace_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tea {

bool
eventsEquivalent(const TraceEvent &a, const TraceEvent &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case TraceEventKind::Cycle: {
        const CycleRecord &x = a.p.cycle;
        const CycleRecord &y = b.p.cycle;
        if (x.cycle != y.cycle || x.state != y.state ||
            x.numCommitted != y.numCommitted ||
            x.headValid != y.headValid || x.lastValid != y.lastValid)
            return false;
        if (x.headValid &&
            (x.headSeq != y.headSeq || x.headPc != y.headPc))
            return false;
        if (x.lastValid &&
            (x.lastPc != y.lastPc || x.lastPsv != y.lastPsv))
            return false;
        for (unsigned i = 0; i < x.numCommitted; ++i) {
            if (x.committed[i].seq != y.committed[i].seq ||
                x.committed[i].pc != y.committed[i].pc ||
                x.committed[i].psv != y.committed[i].psv)
                return false;
        }
        return true;
      }
      case TraceEventKind::Dispatch:
      case TraceEventKind::Fetch:
        return a.p.uop.seq == b.p.uop.seq &&
               a.p.uop.pc == b.p.uop.pc &&
               a.p.uop.cycle == b.p.uop.cycle;
      case TraceEventKind::Retire:
        return a.p.retire.seq == b.p.retire.seq &&
               a.p.retire.pc == b.p.retire.pc &&
               a.p.retire.psv == b.p.retire.psv &&
               a.p.retire.cycle == b.p.retire.cycle;
      case TraceEventKind::End:
        return a.p.end == b.p.end;
    }
    return false;
}

void
TraceSink::onBatch(const TraceEvent *events, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        deliverEvent(events[i], *this);
}

void
deliverEvent(const TraceEvent &ev, TraceSink &sink)
{
    switch (ev.kind) {
      case TraceEventKind::Cycle:
        sink.onCycle(ev.p.cycle);
        break;
      case TraceEventKind::Dispatch:
        sink.onDispatch(ev.p.uop);
        break;
      case TraceEventKind::Fetch:
        sink.onFetch(ev.p.uop);
        break;
      case TraceEventKind::Retire:
        sink.onRetire(ev.p.retire);
        break;
      case TraceEventKind::End:
        sink.onEnd(ev.p.end);
        break;
    }
}

std::uint64_t
replayChunk(const TraceChunk &chunk, const std::vector<TraceSink *> &sinks)
{
    // Sink-major batched delivery: one onBatch call per sink per
    // End-free segment, instead of two virtual calls per (event, sink)
    // pair. Sinks are independent observers — each still sees every
    // event in capture order, only the interleaving across sinks
    // changes, which no observer can detect. End events keep their
    // dedicated onEnd call (the onBatch contract, core/trace.hh);
    // ChunkingSink closes a chunk right after End, so the scan below
    // almost always finds a single End-free segment.
    const TraceEvent *const ev = chunk.events.data();
    const std::size_t n = chunk.events.size();
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j < n && ev[j].kind != TraceEventKind::End)
            ++j;
        if (j > i) {
            for (TraceSink *s : sinks)
                s->onBatch(ev + i, j - i);
        }
        if (j < n) {
            for (TraceSink *s : sinks)
                s->onEnd(ev[j].p.end);
            ++j;
        }
        i = j;
    }
    return chunk.cycleRecords;
}

ChunkingSink::ChunkingSink(std::size_t chunk_events, Emit emit)
    : chunkEvents_(chunk_events), emit_(std::move(emit))
{
    tea_assert(chunkEvents_ >= 1, "chunk size must be >= 1");
    tea_assert(emit_, "ChunkingSink needs an emit callback");
}

TraceEvent &
ChunkingSink::append(TraceEventKind kind)
{
    if (!open_) {
        open_ = std::make_shared<TraceChunk>();
        open_->events.reserve(chunkEvents_);
    }
    open_->events.emplace_back();
    TraceEvent &ev = open_->events.back();
    ev.kind = kind;
    ++events_;
    return ev;
}

void
ChunkingSink::onCycle(const CycleRecord &rec)
{
    TraceEvent &ev = append(TraceEventKind::Cycle);
    ev.p.cycle = rec;
    ++open_->cycleRecords;
    if (open_->events.size() >= chunkEvents_)
        finish();
}

void
ChunkingSink::onDispatch(const UopRecord &rec)
{
    append(TraceEventKind::Dispatch).p.uop = rec;
    if (open_->events.size() >= chunkEvents_)
        finish();
}

void
ChunkingSink::onFetch(const UopRecord &rec)
{
    append(TraceEventKind::Fetch).p.uop = rec;
    if (open_->events.size() >= chunkEvents_)
        finish();
}

void
ChunkingSink::onRetire(const RetireRecord &rec)
{
    append(TraceEventKind::Retire).p.retire = rec;
    if (open_->events.size() >= chunkEvents_)
        finish();
}

void
ChunkingSink::onEnd(Cycle final_cycle)
{
    append(TraceEventKind::End).p.end = final_cycle;
    finish();
}

void
ChunkingSink::onBatch(const TraceEvent *events, std::size_t n)
{
    // Bulk path: append whole ranges into the open chunk. Chunk
    // boundaries are byte-identical to record-at-a-time delivery — a
    // chunk closes exactly when it reaches chunkEvents_ events (or at
    // an End marker), the same points finish() fires on the per-record
    // path above.
    std::size_t i = 0;
    while (i < n) {
        if (!open_) {
            open_ = std::make_shared<TraceChunk>();
            open_->events.reserve(chunkEvents_);
        }
        std::size_t space = chunkEvents_ - open_->events.size();
        std::size_t take = std::min(space, n - i);
        for (std::size_t k = i; k < i + take; ++k) {
            if (events[k].kind == TraceEventKind::End) {
                take = k - i + 1; // close the chunk right after End
                break;
            }
        }
        open_->events.insert(open_->events.end(), events + i,
                             events + i + take);
        for (std::size_t k = i; k < i + take; ++k) {
            if (events[k].kind == TraceEventKind::Cycle)
                ++open_->cycleRecords;
        }
        events_ += take;
        i += take;
        if (open_->events.size() >= chunkEvents_ ||
            events[i - 1].kind == TraceEventKind::End)
            finish();
    }
}

void
ChunkingSink::finish()
{
    if (!open_)
        return;
    ++chunks_;
    emit_(std::move(open_));
    open_.reset();
}

TraceBuffer::TraceBuffer(std::size_t chunk_events)
    : sink_(chunk_events,
            [this](TraceChunkPtr c) { chunks_.push_back(std::move(c)); })
{
}

void
TraceBuffer::onCycle(const CycleRecord &rec)
{
    sink_.onCycle(rec);
}

void
TraceBuffer::onDispatch(const UopRecord &rec)
{
    sink_.onDispatch(rec);
}

void
TraceBuffer::onFetch(const UopRecord &rec)
{
    sink_.onFetch(rec);
}

void
TraceBuffer::onRetire(const RetireRecord &rec)
{
    sink_.onRetire(rec);
}

void
TraceBuffer::onEnd(Cycle final_cycle)
{
    sink_.onEnd(final_cycle);
}

void
TraceBuffer::onBatch(const TraceEvent *events, std::size_t n)
{
    sink_.onBatch(events, n);
}

void
TraceBuffer::finish()
{
    sink_.finish();
}

std::uint64_t
TraceBuffer::replay(const std::vector<TraceSink *> &sinks) const
{
    std::uint64_t cycles = 0;
    for (const TraceChunkPtr &c : chunks_)
        cycles += replayChunk(*c, sinks);
    return cycles;
}

} // namespace tea
