#include "core/cache.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/memory.hh"

namespace tea {

CacheArray::CacheArray(const CacheConfig &cfg, std::string name)
    : name_(std::move(name)), ways_(cfg.ways)
{
    std::uint64_t lines = cfg.sizeBytes / lineBytes;
    tea_assert(lines % ways_ == 0, "%s: size not divisible by ways",
               name_.c_str());
    numSets_ = static_cast<unsigned>(lines / ways_);
    tea_assert((numSets_ & (numSets_ - 1)) == 0,
               "%s: set count must be a power of two", name_.c_str());
    tags_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

std::size_t
CacheArray::setOf(Addr line) const
{
    return static_cast<std::size_t>((line / lineBytes) & (numSets_ - 1)) *
           ways_;
}

CacheArray::Way *
CacheArray::find(Addr line)
{
    std::size_t base = setOf(line);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = tags_[base + w];
        if (way.valid && way.line == line)
            return &way;
    }
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(Addr line) const
{
    return const_cast<CacheArray *>(this)->find(line);
}

bool
CacheArray::contains(Addr line) const
{
    return find(line) != nullptr;
}

bool
CacheArray::access(Addr line)
{
    ++accesses;
    Way *w = find(line);
    if (w) {
        w->lastUse = ++useClock_;
        return true;
    }
    ++misses;
    return false;
}

Eviction
CacheArray::insert(Addr line, bool dirty)
{
    Eviction ev;
    if (Way *existing = find(line)) {
        existing->dirty = existing->dirty || dirty;
        existing->lastUse = ++useClock_;
        return ev;
    }
    std::size_t base = setOf(line);
    Way *victim = &tags_[base];
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = tags_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.line = victim->line;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->line = line;
    victim->lastUse = ++useClock_;
    return ev;
}

void
CacheArray::markDirty(Addr line)
{
    if (Way *w = find(line))
        w->dirty = true;
}

void
CacheArray::invalidate(Addr line)
{
    if (Way *w = find(line))
        w->valid = false;
}

MshrFile::MshrFile(unsigned entries) : entries_(entries) {}

void
MshrFile::prune(Cycle now)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second <= now)
            it = pending_.erase(it);
        else
            ++it;
    }
}

Cycle
MshrFile::allocatableAt(Cycle now)
{
    prune(now);
    if (pending_.size() < entries_)
        return now;
    Cycle earliest = invalidCycle;
    for (const auto &[line, fill] : pending_)
        earliest = std::min(earliest, fill);
    return earliest;
}

void
MshrFile::allocate(Addr line, Cycle fill)
{
    auto it = pending_.find(line);
    if (it == pending_.end())
        pending_.emplace(line, fill);
    else
        it->second = std::min(it->second, fill);
}

Cycle
MshrFile::outstandingFill(Addr line, Cycle now)
{
    prune(now);
    auto it = pending_.find(line);
    return it == pending_.end() ? invalidCycle : it->second;
}

unsigned
MshrFile::inFlight(Cycle now)
{
    prune(now);
    return static_cast<unsigned>(pending_.size());
}

} // namespace tea
