#include "core/cache.hh"

#include <algorithm>
#include <array>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "isa/memory.hh"

namespace tea {

CacheArray::CacheArray(const CacheConfig &cfg, std::string name)
    : name_(std::move(name)), ways_(cfg.ways)
{
    std::uint64_t lines = cfg.sizeBytes / lineBytes;
    tea_assert(lines % ways_ == 0, "%s: size not divisible by ways",
               name_.c_str());
    numSets_ = static_cast<unsigned>(lines / ways_);
    tea_assert((numSets_ & (numSets_ - 1)) == 0,
               "%s: set count must be a power of two", name_.c_str());
    tags_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

std::size_t
CacheArray::setOf(Addr line) const
{
    return static_cast<std::size_t>((line / lineBytes) & (numSets_ - 1)) *
           ways_;
}

CacheArray::Way *
CacheArray::find(Addr line)
{
    std::size_t base = setOf(line);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = tags_[base + w];
        if (way.valid && way.line == line)
            return &way;
    }
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(Addr line) const
{
    return const_cast<CacheArray *>(this)->find(line);
}

bool
CacheArray::contains(Addr line) const
{
    return find(line) != nullptr;
}

// tea_lint: hot
bool
CacheArray::access(Addr line)
{
    ++accesses;
    Way *w = find(line);
    if (w) {
        w->lastUse = ++useClock_;
        return true;
    }
    ++misses;
    return false;
}

// tea_lint: hot
Eviction
CacheArray::insert(Addr line, bool dirty)
{
    Eviction ev;
    if (Way *existing = find(line)) {
        existing->dirty = existing->dirty || dirty;
        existing->lastUse = ++useClock_;
        return ev;
    }
    std::size_t base = setOf(line);
    Way *victim = &tags_[base];
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = tags_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.line = victim->line;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->line = line;
    victim->lastUse = ++useClock_;
    return ev;
}

void
CacheArray::markDirty(Addr line)
{
    if (Way *w = find(line))
        w->dirty = true;
}

void
CacheArray::invalidate(Addr line)
{
    if (Way *w = find(line))
        w->valid = false;
}

void
CacheArray::fingerprintState(Fnv1a &h) const
{
    constexpr unsigned kMaxWays = 64;
    tea_assert(ways_ <= kMaxWays, "%s: %u ways exceed fingerprint bound",
               name_.c_str(), ways_);
    std::array<const Way *, kMaxWays> order;
    for (unsigned s = 0; s < numSets_; ++s) {
        const Way *base = &tags_[static_cast<std::size_t>(s) * ways_];
        unsigned n = 0;
        for (unsigned w = 0; w < ways_; ++w)
            if (base[w].valid)
                order[n++] = &base[w];
        std::sort(order.begin(), order.begin() + n,
                  [](const Way *a, const Way *b) {
                      return a->lastUse < b->lastUse;
                  });
        h.add(n);
        for (unsigned w = 0; w < n; ++w) {
            h.add(order[w]->line);
            h.add(static_cast<std::uint64_t>(order[w]->dirty));
        }
    }
}

MshrFile::MshrFile(unsigned entries) : entries_(entries)
{
    pending_.reserve(entries);
}

// tea_lint: hot
void
MshrFile::prune(Cycle now)
{
    // Swap-erase: order carries no meaning, so completed fills are
    // replaced by the tail entry instead of shifting the array.
    for (std::size_t i = 0; i < pending_.size();) {
        if (pending_[i].fill <= now) {
            pending_[i] = pending_.back();
            pending_.pop_back();
        } else {
            ++i;
        }
    }
}

// tea_lint: hot
MshrFile::Pending *
MshrFile::find(Addr line)
{
    for (Pending &p : pending_) {
        if (p.line == line)
            return &p;
    }
    return nullptr;
}

// tea_lint: hot
Cycle
MshrFile::allocatableAt(Cycle now)
{
    prune(now);
    if (pending_.size() < entries_)
        return now;
    Cycle earliest = invalidCycle;
    for (const Pending &p : pending_)
        earliest = std::min(earliest, p.fill);
    return earliest;
}

// tea_lint: hot
void
MshrFile::allocate(Addr line, Cycle fill)
{
    if (Pending *p = find(line))
        p->fill = std::min(p->fill, fill);
    else
        pending_.push_back(Pending{line, fill});
}

// tea_lint: hot
Cycle
MshrFile::outstandingFill(Addr line, Cycle now)
{
    prune(now);
    Pending *p = find(line);
    return p == nullptr ? invalidCycle : p->fill;
}

unsigned
MshrFile::inFlight(Cycle now)
{
    prune(now);
    return static_cast<unsigned>(pending_.size());
}

void
MshrFile::fingerprintState(Fnv1a &h, Cycle base) const
{
    std::vector<Pending> live;
    live.reserve(pending_.size());
    for (const Pending &p : pending_)
        if (p.fill > base)
            live.push_back(p);
    std::sort(live.begin(), live.end(),
              [](const Pending &a, const Pending &b) {
                  return a.line < b.line;
              });
    h.add(live.size());
    for (const Pending &p : live) {
        h.add(p.line);
        h.add(p.fill - base);
    }
}

} // namespace tea
