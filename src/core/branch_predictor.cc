#include "core/branch_predictor.hh"

#include "common/logging.hh"

namespace tea {

// --- gshare -----------------------------------------------------------

GsharePredictor::GsharePredictor(const CoreConfig &cfg)
    : table_(cfg.bpTableEntries, 1), // weakly not-taken
      historyMask_((1ULL << cfg.bpHistoryBits) - 1)
{
    tea_assert((cfg.bpTableEntries & (cfg.bpTableEntries - 1)) == 0,
               "predictor table size must be a power of two");
}

std::size_t
GsharePredictor::index(InstIndex pc) const
{
    std::uint64_t h = history_ & historyMask_;
    return static_cast<std::size_t>((pc ^ h) & (table_.size() - 1));
}

bool
GsharePredictor::predict(InstIndex pc) const
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(InstIndex pc, bool taken)
{
    std::uint8_t &ctr = table_[index(pc)];
    account(ctr >= 2, taken);
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

std::uint64_t
GsharePredictor::storageBits() const
{
    return 2ULL * table_.size();
}

// --- TAGE-lite --------------------------------------------------------

constexpr std::array<unsigned, TagePredictor::numTables>
    TagePredictor::historyLengths;

TagePredictor::TagePredictor(const CoreConfig &cfg)
    : bimodal_(8192, 1)
{
    (void)cfg;
    for (auto &t : tables_)
        t.resize(1u << tableBits);
}

std::uint64_t
TagePredictor::foldedHistory(unsigned len, unsigned bits) const
{
    std::uint64_t folded = 0;
    for (unsigned i = 0; i < len; i += bits) {
        // Extract up to `bits` history bits starting at position i.
        std::uint64_t chunk = 0;
        for (unsigned b = 0; b < bits && i + b < len; ++b) {
            unsigned pos = i + b;
            std::uint64_t word = history_[pos / 64];
            chunk |= ((word >> (pos % 64)) & 1ULL) << b;
        }
        folded ^= chunk;
    }
    return folded & ((1ULL << bits) - 1);
}

std::size_t
TagePredictor::indexOf(unsigned table, InstIndex pc) const
{
    std::uint64_t h = foldedHistory(historyLengths[table], tableBits);
    std::uint64_t v = pc ^ (pc >> tableBits) ^ h ^
                      (static_cast<std::uint64_t>(table) << 3);
    return static_cast<std::size_t>(v & ((1ULL << tableBits) - 1));
}

std::uint16_t
TagePredictor::tagOf(unsigned table, InstIndex pc) const
{
    std::uint64_t h = foldedHistory(historyLengths[table], tagBits);
    std::uint64_t v = pc ^ (pc >> 5) ^ (h << 1) ^ table;
    return static_cast<std::uint16_t>(v & ((1ULL << tagBits) - 1));
}

int
TagePredictor::bestMatch(InstIndex pc) const
{
    for (int t = numTables - 1; t >= 0; --t) {
        const TaggedEntry &e =
            tables_[static_cast<unsigned>(t)]
                   [indexOf(static_cast<unsigned>(t), pc)];
        if (e.tag == tagOf(static_cast<unsigned>(t), pc))
            return t;
    }
    return -1;
}

bool
TagePredictor::predictWith(int table, InstIndex pc) const
{
    if (table < 0)
        return bimodal_[pc & (bimodal_.size() - 1)] >= 2;
    const TaggedEntry &e =
        tables_[static_cast<unsigned>(table)]
               [indexOf(static_cast<unsigned>(table), pc)];
    return e.counter >= 4;
}

bool
TagePredictor::predict(InstIndex pc) const
{
    return predictWith(bestMatch(pc), pc);
}

void
TagePredictor::update(InstIndex pc, bool taken)
{
    int provider = bestMatch(pc);
    bool predicted = predictWith(provider, pc);
    account(predicted, taken);

    // Train the provider.
    if (provider < 0) {
        std::uint8_t &ctr = bimodal_[pc & (bimodal_.size() - 1)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
    } else {
        TaggedEntry &e = tables_[static_cast<unsigned>(provider)]
                                [indexOf(static_cast<unsigned>(provider),
                                         pc)];
        if (taken && e.counter < 7)
            ++e.counter;
        else if (!taken && e.counter > 0)
            --e.counter;
        if (predicted == taken) {
            if (e.useful < 3)
                ++e.useful;
        } else if (e.useful > 0) {
            --e.useful;
        }
    }

    // On a mispredict, allocate in one longer-history table.
    if (predicted != taken && provider < static_cast<int>(numTables) - 1) {
        allocSeed_ = allocSeed_ * 6364136223846793005ULL + 1;
        unsigned start = static_cast<unsigned>(provider + 1);
        // Prefer a not-useful entry; probe tables in increasing order
        // with a pseudo-random skip to avoid ping-ponging.
        unsigned first = start + static_cast<unsigned>(
                                     (allocSeed_ >> 32) %
                                     (numTables - start)) %
                                     (numTables - start);
        bool allocated = false;
        for (unsigned t = first; t < numTables && !allocated; ++t) {
            TaggedEntry &e = tables_[t][indexOf(t, pc)];
            if (e.useful == 0) {
                e.tag = tagOf(t, pc);
                e.counter = taken ? 4 : 3; // weak in the right direction
                allocated = true;
            }
        }
        if (!allocated) {
            // Decay usefulness so future allocations can succeed.
            for (unsigned t = start; t < numTables; ++t) {
                TaggedEntry &e = tables_[t][indexOf(t, pc)];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    // Shift the global history (newest outcome into bit 0).
    for (unsigned w = history_.size() - 1; w > 0; --w)
        history_[w] = (history_[w] << 1) | (history_[w - 1] >> 63);
    history_[0] = (history_[0] << 1) | (taken ? 1 : 0);
}

std::uint64_t
TagePredictor::storageBits() const
{
    std::uint64_t bits = 2ULL * bimodal_.size();
    for (const auto &t : tables_)
        bits += t.size() * (tagBits + 3 + 2);
    return bits;
}

std::unique_ptr<BranchPredictor>
makePredictor(const CoreConfig &cfg)
{
    switch (cfg.predictor) {
      case PredictorKind::Tage:
        return std::make_unique<TagePredictor>(cfg);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(cfg);
    }
    tea_panic("unknown predictor kind");
}

} // namespace tea
