/**
 * @file
 * Compact structure-of-arrays codec for trace chunks.
 *
 * One TraceChunk is encoded as one self-contained *frame*: a fixed
 * header (sizes, event counts, payload CRC-32) followed by the event
 * kind array and a fixed set of length-prefixed field streams. Within a
 * stream, values of the same field are stored back-to-back
 * (structure-of-arrays), delta-encoded against the previous value of
 * the same stream and written as zigzag LEB128 varints — cycles and
 * sequence numbers are near-monotonic, PCs loop over small ranges, so
 * most values fit in one byte (~10x smaller than the in-memory events).
 *
 * Frames are independent (all delta state resets per frame), so a file
 * of concatenated frames supports chunk-at-a-time streaming decode
 * straight out of a memory-mapped region, and a corrupted frame is
 * detectable (CRC) without touching its neighbours.
 *
 * Fields gated by a validity flag (ROB head, last-committed, committed
 * slots beyond numCommitted) are encoded only when valid, and decode
 * writes only the valid ones back: gated fields whose flag is clear
 * hold unspecified contents in a decoded record. Every consumer must
 * honor the validity flags — which TraceSink observers and
 * eventsEquivalent() (trace_buffer.hh) do already — so replay through
 * the codec is observationally identical to in-memory replay while
 * decode touches a fraction of the record's bytes.
 */

#ifndef TEA_CORE_TRACE_CODEC_HH
#define TEA_CORE_TRACE_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/trace_buffer.hh"

namespace tea {

/**
 * Version of the on-disk chunk encoding *and* of everything else a
 * cached trace file embeds (CoreStats layout, header layout). Bump on
 * any change; stale files then fail validation and are re-simulated.
 */
inline constexpr std::uint32_t traceCodecVersion = 1;

/** Fixed per-frame header (little-endian, packed by construction). */
struct ChunkFrameHeader
{
    std::uint32_t frameBytes = 0;   ///< total frame size incl. header
    std::uint32_t eventCount = 0;   ///< events in the chunk
    std::uint32_t cycleRecords = 0; ///< Cycle events among them
    std::uint32_t payloadCrc = 0;   ///< CRC-32 of the payload bytes
};

/** Hard upper bound on one frame (sanity check against corruption). */
inline constexpr std::uint32_t maxChunkFrameBytes = 1u << 30;

/** Encode @p chunk as one frame appended to @p out. */
void encodeChunk(const TraceChunk &chunk, std::vector<std::uint8_t> &out);

/**
 * Peek the frame header at @p data without decoding.
 * @return false (with @p why set) when the header is out of bounds or
 *         structurally implausible
 */
bool peekFrame(const std::uint8_t *data, std::size_t avail,
               ChunkFrameHeader *header, std::string *why);

/**
 * CRC-check the frame at @p data against its header without decoding.
 * @return false (with @p why set) on bounds or checksum failure
 */
bool verifyFrame(const std::uint8_t *data, std::size_t avail,
                 std::string *why);

/**
 * Reusable frame decoder.
 *
 * Decoding runs in two stages: first every varint stream of the frame
 * is bulk-decoded into a per-stream value lane (this is where the SIMD
 * kernels in core/varint run); then kind-grouped assembly loops write
 * each event's fields in place, rebuilding absolute values from the
 * zigzag deltas as each lane is consumed in encode order.
 * The lanes are owned by the decoder and grow to the largest frame
 * seen, so a decoder held across a replay loop allocates only on the
 * first few frames.
 *
 * Not thread-safe; use one decoder per thread. Results are
 * bit-identical across varint kernels and identical to the original
 * event-at-a-time decoder.
 */
class ChunkDecoder
{
  public:
    ChunkDecoder();
    ~ChunkDecoder();

    ChunkDecoder(ChunkDecoder &&) noexcept;
    ChunkDecoder &operator=(ChunkDecoder &&) noexcept;

    /**
     * Decode the frame at @p data into @p out (replacing its contents).
     * Every read is bounds-checked, so arbitrary bytes never crash —
     * they produce an error. Does not re-verify the CRC; callers
     * validating untrusted input run verifyFrame() first (the mmap
     * reader does this for the whole file before any event is
     * delivered).
     *
     * @param consumed set to the frame size on success
     * @return false (with @p why set) on malformed input
     */
    bool decode(const std::uint8_t *data, std::size_t avail,
                TraceChunk &out, std::size_t *consumed, std::string *why);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * One-shot convenience wrapper around ChunkDecoder::decode (same
 * contract). Callers decoding many frames should hold a ChunkDecoder
 * to reuse its lanes instead.
 */
bool decodeChunk(const std::uint8_t *data, std::size_t avail,
                 TraceChunk &out, std::size_t *consumed, std::string *why);

} // namespace tea

#endif // TEA_CORE_TRACE_CODEC_HH
