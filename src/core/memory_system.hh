/**
 * @file
 * The per-core memory hierarchy: L1I, L1D (with MSHRs and a next-line
 * prefetcher) and L1 TLBs, backed by an Uncore (LLC + DRAM + shared L2
 * TLB). Single-core systems let MemorySystem own a private Uncore;
 * multi-core systems pass a shared one. All timing is computed
 * analytically: an access performed at cycle `now` returns the absolute
 * cycle its data is available.
 */

#ifndef TEA_CORE_MEMORY_SYSTEM_HH
#define TEA_CORE_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/cache.hh"
#include "core/config.hh"
#include "core/tlb.hh"
#include "core/uncore.hh"

namespace tea {

/** Timing and event outcome of a data-side access. */
struct MemAccessResult
{
    Cycle done = 0;      ///< absolute cycle the data is available
    bool l1Miss = false; ///< missed in the L1 D-cache (ST-L1)
    bool llcMiss = false; ///< missed in the LLC (ST-LLC)
};

/** Timing and event outcome of an instruction fetch. */
struct IFetchResult
{
    Cycle done = 0;       ///< absolute cycle the fetch packet is ready
    bool l1Miss = false;  ///< missed in the L1 I-cache (DR-L1)
    bool itlbMiss = false; ///< missed in the L1 I-TLB (DR-TLB)
};

/**
 * One data-side access recorded by the checkpoint pre-pass
 * (core/checkpoint) for functional cache warming: enough to replay
 * the demand stream through the hierarchy without timing.
 */
struct WarmAccess
{
    enum Kind : std::uint8_t
    {
        Load = 0,
        Store = 1,
        Prefetch = 2,
    };

    Addr addr = 0;
    std::uint8_t kind = Load;
};

/** The L1-level memory system of one core. */
class MemorySystem
{
  public:
    /** Single-core: owns a private Uncore. */
    explicit MemorySystem(const CoreConfig &cfg);

    /** Multi-core: uses the shared @p uncore (not owned). */
    MemorySystem(const CoreConfig &cfg, Uncore &uncore);

    /** Translate a data address (load/store execute). */
    TlbResult dataTranslate(Addr addr) { return dtlb_.translate(addr); }

    /**
     * Demand load of @p addr at cycle @p now (post-translation); fills
     * the hierarchy and triggers the next-line prefetcher.
     */
    MemAccessResult load(Addr addr, Cycle now);

    /**
     * Post-commit store drain: writes @p addr, fetching the line on a
     * write miss (write-allocate, write-back).
     */
    MemAccessResult storeDrain(Addr addr, Cycle now);

    /** Software prefetch of @p addr into the L1 D-cache. */
    MemAccessResult prefetch(Addr addr, Cycle now);

    /** Instruction fetch of the line containing @p pc. */
    IFetchResult ifetch(Addr pc, Cycle now);

    /**
     * Functionally warm the hierarchy: first fetch each of
     * @p code_lines once (the serial run inserted each code line into
     * the LLC exactly once, at its first L1I miss near program start,
     * so fetching them *before* the data window lets the window's churn
     * age them out of the LLC exactly when the serial run's did), then
     * replay @p accesses (in program order) as widely spaced demand
     * accesses: tags, LRU state, TLBs and next-line-prefetch effects
     * end up approximately where a timing run over the same stream
     * would leave them. Transient timing state accumulated by the
     * replay (MSHR fills, the DRAM bandwidth clock) is reset afterwards
     * so a timing run can start at cycle 0. Only meaningful on a core
     * with a private uncore, before any timing cycles have run — the
     * warming exists for checkpoint-resumed cores
     * (analysis/parallel_sim), which satisfy both.
     */
    void warmReplay(const std::vector<Addr> &code_lines,
                    const std::vector<WarmAccess> &accesses);

    /**
     * Install the L1I/ITLB end-state after warmReplay: touch each code
     * line of @p lines (oldest-to-newest last-fetch order) in the L1I
     * and its page in the ITLB, without LLC side effects. The serial
     * core's L1I holds every code line ever fetched (the instruction
     * footprint fits) with LRU order equal to last-fetch order; this
     * reproduces that directly instead of hoping the warmup leg
     * re-fetches rare lines (it cannot — e.g. init code runs once).
     */
    void installCodeLines(const std::vector<Addr> &lines);

    /**
     * Overwrite the shared L2 TLB with a checkpoint snapshot (see
     * ArchCheckpoint::l2Tlb). Must run after warmReplay and
     * installCodeLines — their page walks insert a window-local
     * approximation this replaces with the exact model content.
     */
    void installL2Tlb(
        const std::vector<std::pair<std::uint32_t, Addr>> &slots);

    /**
     * Forget in-flight timing state (MSHR fills, the DRAM bandwidth
     * clock) while keeping tag/LRU contents. Used at the end of
     * warmReplay; see there.
     */
    void resetTransientTiming();

    /**
     * Mix the hierarchy's complete *behavioral* state into @p h with
     * absolute cycles rebased to @p base: cache and TLB contents in
     * relative LRU order, live MSHR fills as (line, fill - base), the
     * uncore likewise. Two hierarchies with equal fingerprints at
     * their respective base cycles evolve identically under identical
     * access streams — the convergence-acceptance test of the
     * time-parallel stitcher (analysis/parallel_sim). Statistics are
     * excluded on purpose. Only meaningful with a private uncore.
     */
    void fingerprintState(Fnv1a &h, Cycle base) const;

    /**
     * Per-structure fingerprints with stable names — the diagnostic
     * decomposition of fingerprintState, so a convergence failure can
     * be attributed to the structure that diverged.
     */
    std::vector<std::pair<const char *, std::uint64_t>>
    fingerprintParts(Cycle base) const;

    // Inspection for tests and reports.
    const CacheArray &l1i() const { return l1i_; }
    const CacheArray &l1d() const { return l1d_; }
    const CacheArray &llc() const { return uncore_->llc(); }
    const TlbHierarchy &dtlbHierarchy() const { return dtlb_; }
    Uncore &uncore() { return *uncore_; }
    std::uint64_t dramLineTransfers() const
    {
        return uncore_->dramLineTransfers();
    }

  private:
    /**
     * L1D fill path shared by loads, store drains and prefetches.
     * Handles MSHR merging/allocation and the next-line prefetcher.
     */
    MemAccessResult l1dAccess(Addr line, Cycle now, bool is_store,
                              bool demand);

    const CoreConfig &cfg_;
    std::unique_ptr<Uncore> ownedUncore_; ///< single-core convenience
    Uncore *uncore_;
    CacheArray l1i_;
    CacheArray l1d_;
    MshrFile l1dMshrs_;
    MshrFile l1iMshrs_;
    TlbHierarchy dtlb_;
    TlbHierarchy itlb_;
};

} // namespace tea

#endif // TEA_CORE_MEMORY_SYSTEM_HH
