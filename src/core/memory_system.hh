/**
 * @file
 * The per-core memory hierarchy: L1I, L1D (with MSHRs and a next-line
 * prefetcher) and L1 TLBs, backed by an Uncore (LLC + DRAM + shared L2
 * TLB). Single-core systems let MemorySystem own a private Uncore;
 * multi-core systems pass a shared one. All timing is computed
 * analytically: an access performed at cycle `now` returns the absolute
 * cycle its data is available.
 */

#ifndef TEA_CORE_MEMORY_SYSTEM_HH
#define TEA_CORE_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "core/cache.hh"
#include "core/config.hh"
#include "core/tlb.hh"
#include "core/uncore.hh"

namespace tea {

/** Timing and event outcome of a data-side access. */
struct MemAccessResult
{
    Cycle done = 0;      ///< absolute cycle the data is available
    bool l1Miss = false; ///< missed in the L1 D-cache (ST-L1)
    bool llcMiss = false; ///< missed in the LLC (ST-LLC)
};

/** Timing and event outcome of an instruction fetch. */
struct IFetchResult
{
    Cycle done = 0;       ///< absolute cycle the fetch packet is ready
    bool l1Miss = false;  ///< missed in the L1 I-cache (DR-L1)
    bool itlbMiss = false; ///< missed in the L1 I-TLB (DR-TLB)
};

/** The L1-level memory system of one core. */
class MemorySystem
{
  public:
    /** Single-core: owns a private Uncore. */
    explicit MemorySystem(const CoreConfig &cfg);

    /** Multi-core: uses the shared @p uncore (not owned). */
    MemorySystem(const CoreConfig &cfg, Uncore &uncore);

    /** Translate a data address (load/store execute). */
    TlbResult dataTranslate(Addr addr) { return dtlb_.translate(addr); }

    /**
     * Demand load of @p addr at cycle @p now (post-translation); fills
     * the hierarchy and triggers the next-line prefetcher.
     */
    MemAccessResult load(Addr addr, Cycle now);

    /**
     * Post-commit store drain: writes @p addr, fetching the line on a
     * write miss (write-allocate, write-back).
     */
    MemAccessResult storeDrain(Addr addr, Cycle now);

    /** Software prefetch of @p addr into the L1 D-cache. */
    MemAccessResult prefetch(Addr addr, Cycle now);

    /** Instruction fetch of the line containing @p pc. */
    IFetchResult ifetch(Addr pc, Cycle now);

    // Inspection for tests and reports.
    const CacheArray &l1i() const { return l1i_; }
    const CacheArray &l1d() const { return l1d_; }
    const CacheArray &llc() const { return uncore_->llc(); }
    const TlbHierarchy &dtlbHierarchy() const { return dtlb_; }
    Uncore &uncore() { return *uncore_; }
    std::uint64_t dramLineTransfers() const
    {
        return uncore_->dramLineTransfers();
    }

  private:
    /**
     * L1D fill path shared by loads, store drains and prefetches.
     * Handles MSHR merging/allocation and the next-line prefetcher.
     */
    MemAccessResult l1dAccess(Addr line, Cycle now, bool is_store,
                              bool demand);

    const CoreConfig &cfg_;
    std::unique_ptr<Uncore> ownedUncore_; ///< single-core convenience
    Uncore *uncore_;
    CacheArray l1i_;
    CacheArray l1d_;
    MshrFile l1dMshrs_;
    MshrFile l1iMshrs_;
    TlbHierarchy dtlb_;
    TlbHierarchy itlb_;
};

} // namespace tea

#endif // TEA_CORE_MEMORY_SYSTEM_HH
