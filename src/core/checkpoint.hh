/**
 * @file
 * Architectural checkpointing for time-parallel simulation (DESIGN.md,
 * "Time-parallel simulation").
 *
 * A cheap functional pre-pass executes the program with the oracle
 * executor (isa/executor) — no timing, no trace — and records a
 * checkpoint of the full architectural state at chosen committed-uop
 * boundaries: register file, resume pc, and a mark into a store-delta
 * log from which the memory image at that point can be materialized.
 * Because the timing model executes instructions functionally at fetch
 * along the correct path, a dynamic-instruction boundary is all a
 * restarted Core needs to reproduce the architectural suffix exactly;
 * the microarchitectural state (caches, TLBs, predictor, LSQ history)
 * starts cold and is the restarting caller's warmup problem.
 *
 * Memory is checkpointed as deltas, not images: the only memory
 * mutations in the ISA are stores (isa/executor writes one aligned
 * word per St/Fst), so a log of (word address, value-after) pairs in
 * program order plus a per-checkpoint prefix mark reconstructs the
 * image at any checkpoint by replaying the prefix onto a copy of the
 * initial state. Later writes to the same word simply overwrite, so
 * replay is idempotent and order within the prefix is the only
 * invariant.
 *
 * One piece of *microarchitectural* state is checkpointed exactly: the
 * branch predictor. The core trains it at fetch along the oracle
 * correct path (predict() is const), so its state is a pure function
 * of the architectural branch sequence — the pre-pass replays that
 * sequence and snapshots the predictor at each checkpoint, and a
 * restarted Core is handed serial-identical predictor state for free.
 *
 * Caches and TLBs are warmed *approximately*: each checkpoint carries
 * the most recent data-side accesses preceding its boundary
 * (ArchCheckpoint::warmAccesses) plus the code-line fetch history and
 * an exact snapshot of a functional L2 TLB model, which a restarted
 * core replays and installs (Core::warmFromCheckpoint) to populate
 * tags, LRU order and TLBs before its timing warmup leg. LSQ history
 * and in-flight timing state still start cold; converging the residue
 * is the restarting caller's warmup problem (analysis/parallel_sim),
 * and the verify oracle plus serial fallback are the correctness
 * guarantee.
 */

#ifndef TEA_CORE_CHECKPOINT_HH
#define TEA_CORE_CHECKPOINT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/memory_system.hh"
#include "isa/executor.hh"
#include "isa/program.hh"

namespace tea {

class BranchPredictor;

/**
 * One architectural checkpoint: everything needed to resume execution
 * at a dynamic-instruction boundary (used with the Core start-pc
 * constructor after materializeState()).
 */
struct ArchCheckpoint
{
    std::uint64_t uops = 0;  ///< dynamic instructions executed before pc
    InstIndex pc = 0;        ///< next instruction to execute
    std::array<std::uint64_t, numArchRegs> regs{};
    std::size_t memMark = 0; ///< CheckpointPlan::memLog prefix applied

    /**
     * Immutable predictor snapshot at this boundary, bit-identical to
     * the serial timing core's state at the same dynamic instruction;
     * null when the pre-pass ran without a core config. Shared, never
     * mutated — restarting cores clone() their own working copy.
     */
    std::shared_ptr<const BranchPredictor> predictor;

    /**
     * The most recent data-side accesses (loads, stores, software
     * prefetches) preceding this boundary, oldest first — the
     * functional cache-warming stream for Core::warmFromCheckpoint().
     * Bounded to a generous multiple of the modelled cache footprint
     * in lines (enough accesses that even a streaming pattern touching
     * each line several times spans every LLC way); empty when
     * the pre-pass ran without a core config. Unlike the predictor
     * snapshot this is an approximation: replaying it reproduces
     * tag/LRU/TLB contents of the demand stream, not the exact
     * prefetch/MSHR interleavings of the timing run.
     */
    std::vector<WarmAccess> warmAccesses;

    /**
     * Code-side warm state. Unlike data, the instruction footprint is
     * small and long-lived: the serial run inserts each code line into
     * the LLC exactly once (at its first L1I miss, near program start)
     * and the L1I then hits forever, so whether a code line is still in
     * the LLC at this boundary depends only on how much data churn the
     * set has seen since — which the warm replay reproduces naturally
     * if the code lines are touched *first*. codeFirstTouch is every
     * code line ever fetched, in first-fetch order (replayed as
     * ifetches at the start of the warm window); codeLastUse is the
     * same set in last-fetch order (installed into the L1I/ITLB after
     * the replay so their contents and LRU order match the serial
     * core's).
     */
    std::vector<Addr> codeFirstTouch;
    std::vector<Addr> codeLastUse;

    /**
     * Exact content of a functional L2 TLB model fed the program-order
     * translation stream (instruction-side per code-line transition,
     * data-side per load/store) from program start. The direct-mapped
     * L2 has unbounded memory — it can hold pages last touched long
     * before any bounded warm window — so it is snapshotted like the
     * predictor rather than warmed. Installed over the replay's
     * window-local inserts (MemorySystem::installL2Tlb).
     */
    std::vector<std::pair<std::uint32_t, Addr>> l2Tlb;
};

/** One store recorded by the pre-pass (word-aligned, value-after). */
struct MemDelta
{
    Addr addr = 0;
    std::uint64_t value = 0;
};

/** Pre-pass result: the checkpoint stream plus the shared delta log. */
struct CheckpointPlan
{
    std::vector<ArchCheckpoint> checkpoints;
    std::vector<MemDelta> memLog;   ///< every store, in program order
    std::uint64_t totalUops = 0;    ///< dynamic instructions to halt
    bool halted = false;            ///< pre-pass reached Halt in budget

    /** Interval geometry the checkpoints were planned for. */
    std::uint64_t intervalUops = 0;
    std::uint64_t warmupUops = 0;
};

/**
 * Run the functional pre-pass from @p initial and record a checkpoint
 * at every uop count j*interval_uops - warmup_uops (j >= 1) — the
 * warmup entry point of each time-parallel interval after the first.
 * Requires 0 < warmup_uops < interval_uops.
 *
 * When @p cfg is non-null the pre-pass also trains a branch predictor
 * of the configured kind along the walk and stores an exact snapshot
 * in each checkpoint (see ArchCheckpoint::predictor).
 *
 * Stops at Halt or after @p max_uops instructions; plan.halted says
 * which. A plan with halted == false is unusable for time-parallel
 * simulation (the caller falls back to a plain timing run, which owns
 * the does-not-terminate diagnostic).
 */
CheckpointPlan buildCheckpoints(const Program &prog,
                                const ArchState &initial,
                                std::uint64_t interval_uops,
                                std::uint64_t warmup_uops,
                                std::uint64_t max_uops = 1ULL << 33,
                                const CoreConfig *cfg = nullptr);

/**
 * Materialize the architectural state at @p ck: copy @p initial and
 * replay the first ck.memMark entries of plan.memLog onto it.
 */
ArchState materializeState(const ArchState &initial,
                           const CheckpointPlan &plan,
                           const ArchCheckpoint &ck);

} // namespace tea

#endif // TEA_CORE_CHECKPOINT_HH
