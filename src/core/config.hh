/**
 * @file
 * Configuration of the BOOM-class out-of-order core model (paper Table 2).
 *
 * Defaults follow the paper's baseline where the parameter exists in our
 * model; timing-model-only parameters (latencies) use conventional values
 * for a 3.2 GHz-class core.
 */

#ifndef TEA_CORE_CONFIG_HH
#define TEA_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tea {

/** Set-associative cache parameters. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned mshrs = 16;     ///< max outstanding misses
    unsigned hitLatency = 3; ///< cycles from access to data
};

/** Conditional-branch direction predictor choice. */
enum class PredictorKind
{
    Tage,   ///< TAGE-lite (default; Table 2 specifies a TAGE)
    Gshare, ///< simple gshare (ablation)
};

/** TLB hierarchy parameters. */
struct TlbConfig
{
    unsigned l1Entries = 32;    ///< fully associative L1 TLB
    unsigned l2Entries = 1024;  ///< direct-mapped shared L2 TLB
    unsigned l2HitLatency = 8;  ///< added cycles on L1 miss / L2 hit
    unsigned walkLatency = 60;  ///< added cycles on L2 miss (page walk)
};

/** Complete core configuration. */
struct CoreConfig
{
    // Pipeline widths (Table 2: 8-wide fetch, 4-wide decode, 4-way
    // superscalar commit).
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 4;
    unsigned dispatchWidth = 4;
    unsigned commitWidth = 4;

    // Front-end structures.
    unsigned fetchBufferEntries = 48;
    unsigned decodeLatency = 2;    ///< fetch-buffer to dispatch stages
    unsigned redirectPenalty = 10; ///< resolve/flush to refetch cycles

    // Branch predictor: TAGE (default, ~24 KB, matching Table 2's
    // 28 KB TAGE class) or gshare for ablation.
    PredictorKind predictor = PredictorKind::Tage;
    unsigned bpHistoryBits = 12;    ///< gshare history length
    unsigned bpTableEntries = 4096; ///< gshare table entries

    // Backend structures (Table 2).
    unsigned robEntries = 192;
    unsigned intIqEntries = 80;
    unsigned intIssueWidth = 4;
    unsigned memIqEntries = 48;
    unsigned memIssueWidth = 2;
    unsigned fpIqEntries = 48;
    unsigned fpIssueWidth = 2;
    unsigned lqEntries = 40;
    unsigned sqEntries = 24;

    // Execution latencies.
    unsigned intMulLatency = 3;
    unsigned intDivLatency = 16;  ///< unpipelined
    unsigned fpAluLatency = 4;
    unsigned fpDivLatency = 18;   ///< unpipelined
    unsigned fpSqrtLatency = 26;  ///< unpipelined
    unsigned forwardLatency = 2;  ///< store-to-load forwarding

    // Memory-ordering speculation.
    unsigned moReplayPenalty = 12; ///< squash/refetch cost of a violation
    /** Store-set predictor aging: tables are cleared every this many
     * committed uops (0 disables aging), as in BOOM's
     * periodically-flushed SSIT. Keyed on committed uops rather than
     * cycles so the schedule is architectural: a checkpoint-resumed
     * core (core/checkpoint) ages at the same program points as the
     * serial run it continues. */
    Cycle storeSetClearInterval = 250'000;

    // Sampling-interrupt cost injection (Section 3, "Overheads"): when
    // enabled, the sampling interrupt handler runs on the core every
    // period, occupying the front end while it reads TEA's CSRs and
    // appends the 88 B record to the memory buffer. Off by default; the
    // overheads bench uses it to *measure* the 1.1%-at-4kHz claim
    // instead of only modelling it.
    Cycle samplingInterruptPeriod = 0; ///< 0 disables injection
    Cycle samplingHandlerCycles = 110; ///< handler occupancy per sample

    // Memory hierarchy (Table 2).
    CacheConfig l1i{32 * 1024, 8, 8, 2};
    CacheConfig l1d{32 * 1024, 8, 16, 3};
    CacheConfig llc{2 * 1024 * 1024, 16, 12, 18};
    bool nextLinePrefetcher = true; ///< L1D next-line prefetch out of LLC
    unsigned dramLatency = 110;     ///< LLC-miss to data cycles
    unsigned dramInterval = 12;     ///< min cycles between line transfers

    TlbConfig tlb;

    /** Render the Table 2-style configuration description. */
    std::string describe() const;
};

/**
 * Named core-configuration presets (à la Scarab's PARAMS.golden_cove /
 * PARAMS.cortex_a76): the sweep layer crosses kernel axes against
 * these. Every preset is a pure function of its name, so sweeps and
 * cache fingerprints are reproducible; byName() is the string entry
 * point the SweepSpec/CLI layer uses.
 */
namespace presets {

/** The paper's Table 2 baseline (identical to CoreConfig{}). */
CoreConfig bigOoo();

/** big_ooo at half width: 4-wide fetch, 2-wide decode/commit. */
CoreConfig bigOooW2();

/** big_ooo with a 64-entry ROB (queues scaled to match). */
CoreConfig bigOooRob64();

/** big_ooo with 8 KB L1s and a 256 KB LLC, no prefetcher. */
CoreConfig bigOooMiniCaches();

/** big_ooo with the gshare ablation predictor. */
CoreConfig bigOooGshare();

/**
 * A little-core approximation: 2-wide, 16-entry ROB, small queues,
 * small gshare, 16 KB L1s, 512 KB LLC, no prefetcher. The model is
 * still out-of-order, but the tiny window makes it behave close to an
 * in-order little core for attribution purposes.
 */
CoreConfig littleInorder();

/** littleInorder narrowed to scalar issue (1-wide decode/commit). */
CoreConfig littleInorderW1();

/** All preset names, in a fixed report order. */
std::vector<std::string> names();

/** Construct a preset by name (fatal on unknown name). */
CoreConfig byName(const std::string &name);

} // namespace presets

class Fnv1a;

/**
 * Feed every timing-relevant field of @p cfg into @p h, field by field
 * (padding-free, so the value is stable across builds). Any new
 * CoreConfig field MUST be added here — the trace cache keys entries on
 * this hash, and a missed field would let a stale trace satisfy a run
 * with a different configuration.
 */
void hashConfig(Fnv1a &h, const CoreConfig &cfg);

} // namespace tea

#endif // TEA_CORE_CONFIG_HH
