#include "events/event.hh"

#include "common/logging.hh"

namespace tea {

const char *
eventName(Event e)
{
    switch (e) {
      case Event::DrL1: return "DR-L1";
      case Event::DrTlb: return "DR-TLB";
      case Event::DrSq: return "DR-SQ";
      case Event::FlMb: return "FL-MB";
      case Event::FlEx: return "FL-EX";
      case Event::FlMo: return "FL-MO";
      case Event::StL1: return "ST-L1";
      case Event::StTlb: return "ST-TLB";
      case Event::StLlc: return "ST-LLC";
    }
    tea_panic("unknown event %d", static_cast<int>(e));
}

const char *
eventDescription(Event e)
{
    switch (e) {
      case Event::DrL1: return "L1 instruction cache miss";
      case Event::DrTlb: return "L1 instruction TLB miss";
      case Event::DrSq: return "Store instruction stalled at dispatch";
      case Event::FlMb: return "Mispredicted branch";
      case Event::FlEx: return "Instruction caused exception";
      case Event::FlMo: return "Memory ordering violation";
      case Event::StL1: return "L1 data cache miss";
      case Event::StTlb: return "L1 data TLB miss";
      case Event::StLlc: return "LLC miss caused by a load instruction";
    }
    tea_panic("unknown event %d", static_cast<int>(e));
}

const char *
commitStateName(CommitState s)
{
    switch (s) {
      case CommitState::Compute: return "Compute";
      case CommitState::Stalled: return "Stalled";
      case CommitState::Drained: return "Drained";
      case CommitState::Flushed: return "Flushed";
    }
    tea_panic("unknown commit state %d", static_cast<int>(s));
}

std::string
Psv::name() const
{
    if (empty())
        return "Base";
    std::string out;
    for (unsigned i = 0; i < numEvents; ++i) {
        auto e = static_cast<Event>(i);
        if (test(e)) {
            if (!out.empty())
                out += '+';
            out += eventName(e);
        }
    }
    return out;
}

const EventSet &
teaEventSet()
{
    static const EventSet set{
        "TEA",
        eventMask({Event::DrL1, Event::DrTlb, Event::DrSq, Event::FlMb,
                   Event::FlEx, Event::FlMo, Event::StL1, Event::StTlb,
                   Event::StLlc})};
    return set;
}

const EventSet &
ibsEventSet()
{
    // Reconstructed best-effort set (6 bits, see DESIGN.md): IBS op/fetch
    // sampling reports front-end fetch events, branch mispredicts and the
    // data-side miss trio, but neither DR-SQ nor flush-class causes.
    static const EventSet set{
        "IBS",
        eventMask({Event::DrL1, Event::DrTlb, Event::FlMb, Event::StL1,
                   Event::StTlb, Event::StLlc})};
    return set;
}

const EventSet &
speEventSet()
{
    // Reconstructed best-effort set (5 bits, see DESIGN.md): SPE packets
    // carry mispredict, ordering-violation and data-side miss events but
    // no instruction-side events.
    static const EventSet set{
        "SPE",
        eventMask({Event::FlMb, Event::FlMo, Event::StL1, Event::StTlb,
                   Event::StLlc})};
    return set;
}

const EventSet &
risEventSet()
{
    // Reconstructed best-effort set (7 bits, see DESIGN.md): POWER9 RIS
    // reports front-end, exception and data-side events, but not DR-SQ.
    static const EventSet set{
        "RIS",
        eventMask({Event::DrL1, Event::DrTlb, Event::FlMb, Event::FlEx,
                   Event::StL1, Event::StTlb, Event::StLlc})};
    return set;
}

std::array<const EventSet *, 4>
table1EventSets()
{
    return {&teaEventSet(), &ibsEventSet(), &speEventSet(), &risEventSet()};
}

} // namespace tea
