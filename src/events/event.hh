/**
 * @file
 * The nine TEA performance events, the commit states they explain, and the
 * Performance Signature Vector (PSV) bit-vector type.
 *
 * Events are named X-Y where X is the commit state the event explains
 * (DR = Drained, ST = Stalled, FL = Flushed) and Y is the event itself,
 * following Table 1 of the paper.
 */

#ifndef TEA_EVENTS_EVENT_HH
#define TEA_EVENTS_EVENT_HH

#include <array>
#include <cstdint>
#include <string>

namespace tea {

/** The nine performance events tracked by TEA (Table 1). */
enum class Event : std::uint8_t
{
    DrL1 = 0,  ///< L1 instruction cache miss
    DrTlb = 1, ///< L1 instruction TLB miss
    DrSq = 2,  ///< Store instruction stalled at dispatch (LSQ full)
    FlMb = 3,  ///< Mispredicted branch
    FlEx = 4,  ///< Instruction caused exception / always-flushing op
    FlMo = 5,  ///< Memory ordering violation
    StL1 = 6,  ///< L1 data cache miss
    StTlb = 7, ///< L1 data TLB miss
    StLlc = 8, ///< LLC miss caused by a load instruction
};

/** Number of distinct performance events. */
inline constexpr unsigned numEvents = 9;

/** Short name, e.g. "ST-L1". */
const char *eventName(Event e);

/** Human-readable description (Table 1's middle column). */
const char *eventDescription(Event e);

/**
 * The four commit states of a time-proportional profiler (Section 2).
 */
enum class CommitState : std::uint8_t
{
    Compute = 0, ///< one or more instructions committing
    Stalled = 1, ///< head of ROB not fully executed
    Drained = 2, ///< ROB empty due to a front-end stall
    Flushed = 3, ///< ROB empty due to a pipeline flush
};

/** Short name, e.g. "Stalled". */
const char *commitStateName(CommitState s);

/**
 * Performance Signature Vector: one bit per supported performance event.
 *
 * A 9-bit vector in the TEA configuration; comparison techniques use
 * masked subsets (EventSet).
 */
class Psv
{
  public:
    constexpr Psv() = default;
    constexpr explicit Psv(std::uint16_t bits) : bits_(bits) {}

    /** Set the bit for @p e. */
    constexpr void set(Event e)
    {
        bits_ |= static_cast<std::uint16_t>(
            1u << static_cast<unsigned>(e));
    }

    /** Test the bit for @p e. */
    constexpr bool test(Event e) const
    {
        return bits_ & (1u << static_cast<unsigned>(e));
    }

    /** True when no event bit is set (the 'Base' signature). */
    constexpr bool empty() const { return bits_ == 0; }

    /** Number of set bits. */
    unsigned popcount() const
    {
        return static_cast<unsigned>(__builtin_popcount(bits_));
    }

    /** Raw bit representation. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Merge in all bits of @p other. */
    constexpr void merge(Psv other) { bits_ |= other.bits_; }

    /** Return this PSV restricted to the events in @p mask. */
    constexpr Psv masked(std::uint16_t mask) const
    {
        return Psv(static_cast<std::uint16_t>(bits_ & mask));
    }

    /** Clear all bits. */
    constexpr void clear() { bits_ = 0; }

    constexpr bool operator==(const Psv &) const = default;

    /**
     * Render the signature as a '+'-joined list of event names, or "Base"
     * when empty, e.g. "ST-L1+ST-TLB".
     */
    std::string name() const;

  private:
    std::uint16_t bits_ = 0;
};

/**
 * A named subset of the nine events: the vocabulary a given analysis
 * technique supports (Table 1 columns).
 */
struct EventSet
{
    const char *name;    ///< e.g. "TEA", "IBS"
    std::uint16_t mask;  ///< bit i set iff Event(i) is supported

    /** Whether @p e is in the set. */
    bool contains(Event e) const
    {
        return mask & (1u << static_cast<unsigned>(e));
    }

    /** Number of events in the set (PSV storage bits). */
    unsigned size() const
    {
        return static_cast<unsigned>(__builtin_popcount(mask));
    }
};

/** Mask helper: build an EventSet mask from a list of events. */
constexpr std::uint16_t
eventMask(std::initializer_list<Event> events)
{
    std::uint16_t m = 0;
    for (Event e : events)
        m = static_cast<std::uint16_t>(
            m | (1u << static_cast<unsigned>(e)));
    return m;
}

/** The full nine-event TEA set. */
const EventSet &teaEventSet();
/** AMD IBS best-effort set (6 events, dispatch tagging). */
const EventSet &ibsEventSet();
/** Arm SPE best-effort set (5 events, dispatch tagging). */
const EventSet &speEventSet();
/** IBM RIS best-effort set (7 events, fetch tagging). */
const EventSet &risEventSet();

/** All four Table 1 event sets, in paper column order. */
std::array<const EventSet *, 4> table1EventSets();

} // namespace tea

#endif // TEA_EVENTS_EVENT_HH
