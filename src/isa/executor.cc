#include "isa/executor.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace tea {

double
bitsToDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
doubleToBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

double
ArchState::fpReg(RegId r) const
{
    return bitsToDouble(regs[r]);
}

void
ArchState::setFpReg(RegId r, double v)
{
    if (r != noReg)
        regs[r] = doubleToBits(v);
}

ExecResult
execute(const Program &prog, InstIndex pc, ArchState &st)
{
    const StaticInst &si = prog.inst(pc);
    ExecResult res;
    res.nextPc = pc + 1;

    auto branch_to = [&](bool taken) {
        res.taken = taken;
        if (taken)
            res.nextPc = si.target;
    };

    switch (si.op) {
      case Op::Nop:
        break;
      case Op::Add:
        st.setReg(si.rd, st.reg(si.rs1) + st.reg(si.rs2));
        break;
      case Op::Sub:
        st.setReg(si.rd, st.reg(si.rs1) - st.reg(si.rs2));
        break;
      case Op::And:
        st.setReg(si.rd, st.reg(si.rs1) & st.reg(si.rs2));
        break;
      case Op::Or:
        st.setReg(si.rd, st.reg(si.rs1) | st.reg(si.rs2));
        break;
      case Op::Xor:
        st.setReg(si.rd, st.reg(si.rs1) ^ st.reg(si.rs2));
        break;
      case Op::Shl:
        st.setReg(si.rd, st.reg(si.rs1) << (st.reg(si.rs2) & 63));
        break;
      case Op::Shr:
        st.setReg(si.rd, st.reg(si.rs1) >> (st.reg(si.rs2) & 63));
        break;
      case Op::AddI:
        st.setReg(si.rd,
                  st.reg(si.rs1) + static_cast<std::uint64_t>(si.imm));
        break;
      case Op::AndI:
        st.setReg(si.rd,
                  st.reg(si.rs1) & static_cast<std::uint64_t>(si.imm));
        break;
      case Op::ShlI:
        st.setReg(si.rd, st.reg(si.rs1) << (si.imm & 63));
        break;
      case Op::ShrI:
        st.setReg(si.rd, st.reg(si.rs1) >> (si.imm & 63));
        break;
      case Op::Li:
        st.setReg(si.rd, static_cast<std::uint64_t>(si.imm));
        break;
      case Op::Slt:
        st.setReg(si.rd, static_cast<std::int64_t>(st.reg(si.rs1)) <
                                 static_cast<std::int64_t>(st.reg(si.rs2))
                             ? 1
                             : 0);
        break;
      case Op::SltI:
        st.setReg(si.rd,
                  static_cast<std::int64_t>(st.reg(si.rs1)) < si.imm ? 1
                                                                     : 0);
        break;
      case Op::Mul:
        st.setReg(si.rd, st.reg(si.rs1) * st.reg(si.rs2));
        break;
      case Op::Div: {
        std::uint64_t d = st.reg(si.rs2);
        st.setReg(si.rd, d == 0 ? 0 : st.reg(si.rs1) / d);
        break;
      }
      case Op::Ld: {
        res.memAddr = st.reg(si.rs1) + static_cast<std::uint64_t>(si.imm);
        res.isMem = true;
        st.setReg(si.rd, st.mem.read(res.memAddr & ~Addr(7)));
        break;
      }
      case Op::St: {
        res.memAddr = st.reg(si.rs1) + static_cast<std::uint64_t>(si.imm);
        res.isMem = true;
        st.mem.write(res.memAddr & ~Addr(7), st.reg(si.rs2));
        break;
      }
      case Op::Fld: {
        res.memAddr = st.reg(si.rs1) + static_cast<std::uint64_t>(si.imm);
        res.isMem = true;
        st.setReg(si.rd, st.mem.read(res.memAddr & ~Addr(7)));
        break;
      }
      case Op::Fst: {
        res.memAddr = st.reg(si.rs1) + static_cast<std::uint64_t>(si.imm);
        res.isMem = true;
        st.mem.write(res.memAddr & ~Addr(7), st.regs[si.rs2]);
        break;
      }
      case Op::Prefetch: {
        res.memAddr = st.reg(si.rs1) + static_cast<std::uint64_t>(si.imm);
        res.isMem = true;
        break;
      }
      case Op::FAdd:
        st.setFpReg(si.rd, st.fpReg(si.rs1) + st.fpReg(si.rs2));
        break;
      case Op::FSub:
        st.setFpReg(si.rd, st.fpReg(si.rs1) - st.fpReg(si.rs2));
        break;
      case Op::FMul:
        st.setFpReg(si.rd, st.fpReg(si.rs1) * st.fpReg(si.rs2));
        break;
      case Op::FDiv: {
        double d = st.fpReg(si.rs2);
        st.setFpReg(si.rd, d == 0.0 ? 0.0 : st.fpReg(si.rs1) / d);
        break;
      }
      case Op::FSqrt: {
        double v = st.fpReg(si.rs1);
        st.setFpReg(si.rd, v < 0.0 ? 0.0 : std::sqrt(v));
        break;
      }
      case Op::FMov:
        st.regs[si.rd] = st.regs[si.rs1];
        break;
      case Op::FLi:
        st.regs[si.rd] = static_cast<std::uint64_t>(si.imm);
        break;
      case Op::FCmpLt:
        st.setReg(si.rd, st.fpReg(si.rs1) < st.fpReg(si.rs2) ? 1 : 0);
        break;
      case Op::Beq:
        branch_to(st.reg(si.rs1) == st.reg(si.rs2));
        break;
      case Op::Bne:
        branch_to(st.reg(si.rs1) != st.reg(si.rs2));
        break;
      case Op::Blt:
        branch_to(static_cast<std::int64_t>(st.reg(si.rs1)) <
                  static_cast<std::int64_t>(st.reg(si.rs2)));
        break;
      case Op::Bge:
        branch_to(static_cast<std::int64_t>(st.reg(si.rs1)) >=
                  static_cast<std::int64_t>(st.reg(si.rs2)));
        break;
      case Op::Jmp:
        branch_to(true);
        break;
      case Op::Call:
        st.setReg(si.rd == noReg ? linkReg : si.rd, pc + 1);
        branch_to(true);
        break;
      case Op::Ret:
        res.taken = true;
        res.nextPc = static_cast<InstIndex>(
            st.reg(si.rs1 == noReg ? linkReg : si.rs1));
        break;
      case Op::FsFlags:
      case Op::FrFlags:
        // CSR side effects are irrelevant to the timing study; the
        // always-flush behaviour is what matters.
        break;
      case Op::Halt:
        res.halted = true;
        res.nextPc = pc;
        break;
      case Op::NumOps:
        tea_panic("executed invalid opcode");
    }

    return res;
}

} // namespace tea
