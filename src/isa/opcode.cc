#include "isa/opcode.hh"

#include "common/logging.hh"

namespace tea {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::AddI: return "addi";
      case Op::AndI: return "andi";
      case Op::ShlI: return "shli";
      case Op::ShrI: return "shri";
      case Op::Li: return "li";
      case Op::Slt: return "slt";
      case Op::SltI: return "slti";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Ld: return "ld";
      case Op::St: return "st";
      case Op::Fld: return "fld";
      case Op::Fst: return "fst";
      case Op::Prefetch: return "prefetch";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::FSqrt: return "fsqrt";
      case Op::FMov: return "fmov";
      case Op::FLi: return "fli";
      case Op::FCmpLt: return "flt";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Jmp: return "jmp";
      case Op::Call: return "call";
      case Op::Ret: return "ret";
      case Op::FsFlags: return "fsflags";
      case Op::FrFlags: return "frflags";
      case Op::Halt: return "halt";
      case Op::NumOps: break;
    }
    tea_panic("unknown op %d", static_cast<int>(op));
}

InstClass
opClass(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
        return InstClass::Nop;
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr:
      case Op::AddI:
      case Op::AndI:
      case Op::ShlI:
      case Op::ShrI:
      case Op::Li:
      case Op::Slt:
      case Op::SltI:
        return InstClass::IntAlu;
      case Op::Mul:
        return InstClass::IntMul;
      case Op::Div:
        return InstClass::IntDiv;
      case Op::Ld:
      case Op::Fld:
        return InstClass::Load;
      case Op::St:
      case Op::Fst:
        return InstClass::Store;
      case Op::Prefetch:
        return InstClass::Prefetch;
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
      case Op::FMov:
      case Op::FLi:
      case Op::FCmpLt:
        return InstClass::FpAlu;
      case Op::FDiv:
        return InstClass::FpDiv;
      case Op::FSqrt:
        return InstClass::FpSqrt;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jmp:
      case Op::Call:
      case Op::Ret:
        return InstClass::Branch;
      case Op::FsFlags:
      case Op::FrFlags:
        return InstClass::Csr;
      case Op::NumOps:
        break;
    }
    tea_panic("unknown op %d", static_cast<int>(op));
}

bool
isCondBranch(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt || op == Op::Bge;
}

bool
isControl(Op op)
{
    return opClass(op) == InstClass::Branch;
}

bool
isLoad(Op op)
{
    return op == Op::Ld || op == Op::Fld;
}

bool
isStore(Op op)
{
    return op == Op::St || op == Op::Fst;
}

bool
isAlwaysFlush(Op op)
{
    return opClass(op) == InstClass::Csr;
}

} // namespace tea
