#include "isa/disasm.hh"

#include "common/logging.hh"
#include "isa/executor.hh"

namespace tea {

std::string
regName(RegId r)
{
    if (r == noReg)
        return "-";
    // Built with += rather than `"x" + std::to_string(...)`: GCC 12's
    // -O3 -Wrestrict misfires on operator+(const char*, string&&) and
    // -Werror turns that false positive into a broken release build.
    std::string name(1, r < 32 ? 'x' : 'f');
    name += std::to_string(r < 32 ? r : r - 32);
    return name;
}

std::string
disassemble(const StaticInst &si)
{
    std::string out = opName(si.op);
    auto pad = [&]() { out += ' '; };

    switch (opClass(si.op)) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
      case InstClass::FpAlu:
      case InstClass::FpDiv:
      case InstClass::FpSqrt:
        pad();
        if (si.op == Op::Li) {
            out += regName(si.rd) + ", " + std::to_string(si.imm);
        } else if (si.op == Op::FLi) {
            out += regName(si.rd) + ", " +
                   strprintf("%g", bitsToDouble(
                                       static_cast<std::uint64_t>(si.imm)));
        } else if (si.rs2 == noReg) {
            out += regName(si.rd) + ", " + regName(si.rs1);
            if (si.op == Op::AddI || si.op == Op::AndI ||
                si.op == Op::ShlI || si.op == Op::ShrI ||
                si.op == Op::SltI) {
                out += ", " + std::to_string(si.imm);
            }
        } else {
            out += regName(si.rd) + ", " + regName(si.rs1) + ", " +
                   regName(si.rs2);
        }
        break;
      case InstClass::Load:
        pad();
        out += regName(si.rd) + ", " + std::to_string(si.imm) + "(" +
               regName(si.rs1) + ")";
        break;
      case InstClass::Store:
        pad();
        out += regName(si.rs2) + ", " + std::to_string(si.imm) + "(" +
               regName(si.rs1) + ")";
        break;
      case InstClass::Prefetch:
        pad();
        out += std::to_string(si.imm) + "(" + regName(si.rs1) + ")";
        break;
      case InstClass::Branch:
        if (si.op == Op::Ret)
            break;
        pad();
        if (isCondBranch(si.op))
            out += regName(si.rs1) + ", " + regName(si.rs2) + ", ";
        out += '@';
        out += std::to_string(si.target);
        break;
      case InstClass::Csr:
      case InstClass::Nop:
        break;
    }
    return out;
}

std::string
disassemble(const Program &prog, InstIndex idx)
{
    return strprintf("[%6u @%#07lx] %s", idx,
                     static_cast<unsigned long>(prog.pcOf(idx)),
                     disassemble(prog.inst(idx)).c_str());
}

} // namespace tea
