#include "isa/builder.hh"

#include "common/logging.hh"
#include "isa/executor.hh"

namespace tea {

ProgramBuilder::ProgramBuilder(std::string name) : prog_(std::move(name)) {}

Label
ProgramBuilder::label()
{
    labelPositions_.push_back(invalidInstIndex);
    return Label(labelPositions_.size() - 1);
}

void
ProgramBuilder::bind(Label l)
{
    tea_assert(l.id_ < labelPositions_.size(), "unknown label");
    tea_assert(labelPositions_[l.id_] == invalidInstIndex,
               "label bound twice");
    labelPositions_[l.id_] = nextIndex();
}

Label
ProgramBuilder::here()
{
    Label l = label();
    bind(l);
    return l;
}

void
ProgramBuilder::beginFunction(const std::string &name)
{
    tea_assert(!inFunction_, "nested beginFunction(%s)", name.c_str());
    inFunction_ = true;
    currentFunction_ = name;
    functionStart_ = nextIndex();
}

void
ProgramBuilder::endFunction()
{
    tea_assert(inFunction_, "endFunction without beginFunction");
    inFunction_ = false;
    prog_.addFunction(
        Symbol{currentFunction_, functionStart_, nextIndex()});
}

Program
ProgramBuilder::build()
{
    tea_assert(!built_, "build() called twice");
    tea_assert(!inFunction_, "unterminated function %s",
               currentFunction_.c_str());
    for (const Fixup &f : fixups_) {
        InstIndex pos = labelPositions_[f.label];
        tea_assert(pos != invalidInstIndex,
                   "unbound label referenced at instruction %u", f.inst);
        prog_.instMutable(f.inst).target = pos;
    }
    built_ = true;
    return std::move(prog_);
}

InstIndex
ProgramBuilder::nextIndex() const
{
    return prog_.size();
}

InstIndex
ProgramBuilder::emit(const StaticInst &inst)
{
    InstIndex idx = nextIndex();
    prog_.append(inst);
    return idx;
}

void
ProgramBuilder::nop()
{
    emit({Op::Nop});
}

void
ProgramBuilder::add(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Add, rd, rs1, rs2});
}

void
ProgramBuilder::sub(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Sub, rd, rs1, rs2});
}

void
ProgramBuilder::and_(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::And, rd, rs1, rs2});
}

void
ProgramBuilder::or_(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Or, rd, rs1, rs2});
}

void
ProgramBuilder::xor_(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Xor, rd, rs1, rs2});
}

void
ProgramBuilder::shl(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Shl, rd, rs1, rs2});
}

void
ProgramBuilder::shr(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Shr, rd, rs1, rs2});
}

void
ProgramBuilder::addi(RegId rd, RegId rs1, std::int64_t imm)
{
    emit({Op::AddI, rd, rs1, noReg, imm});
}

void
ProgramBuilder::andi(RegId rd, RegId rs1, std::int64_t imm)
{
    emit({Op::AndI, rd, rs1, noReg, imm});
}

void
ProgramBuilder::shli(RegId rd, RegId rs1, std::int64_t imm)
{
    emit({Op::ShlI, rd, rs1, noReg, imm});
}

void
ProgramBuilder::shri(RegId rd, RegId rs1, std::int64_t imm)
{
    emit({Op::ShrI, rd, rs1, noReg, imm});
}

void
ProgramBuilder::li(RegId rd, std::int64_t imm)
{
    emit({Op::Li, rd, noReg, noReg, imm});
}

void
ProgramBuilder::slt(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Slt, rd, rs1, rs2});
}

void
ProgramBuilder::slti(RegId rd, RegId rs1, std::int64_t imm)
{
    emit({Op::SltI, rd, rs1, noReg, imm});
}

void
ProgramBuilder::mul(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Mul, rd, rs1, rs2});
}

void
ProgramBuilder::div(RegId rd, RegId rs1, RegId rs2)
{
    emit({Op::Div, rd, rs1, rs2});
}

void
ProgramBuilder::mov(RegId rd, RegId rs1)
{
    emit({Op::AddI, rd, rs1, noReg, 0});
}

void
ProgramBuilder::ld(RegId rd, RegId rs1, std::int64_t imm)
{
    emit({Op::Ld, rd, rs1, noReg, imm});
}

void
ProgramBuilder::st(RegId rs1, std::int64_t imm, RegId rs2)
{
    emit({Op::St, noReg, rs1, rs2, imm});
}

void
ProgramBuilder::fld(RegId fd, RegId rs1, std::int64_t imm)
{
    emit({Op::Fld, fd, rs1, noReg, imm});
}

void
ProgramBuilder::fst(RegId rs1, std::int64_t imm, RegId fs2)
{
    emit({Op::Fst, noReg, rs1, fs2, imm});
}

void
ProgramBuilder::prefetch(RegId rs1, std::int64_t imm)
{
    emit({Op::Prefetch, noReg, rs1, noReg, imm});
}

void
ProgramBuilder::fadd(RegId fd, RegId fs1, RegId fs2)
{
    emit({Op::FAdd, fd, fs1, fs2});
}

void
ProgramBuilder::fsub(RegId fd, RegId fs1, RegId fs2)
{
    emit({Op::FSub, fd, fs1, fs2});
}

void
ProgramBuilder::fmul(RegId fd, RegId fs1, RegId fs2)
{
    emit({Op::FMul, fd, fs1, fs2});
}

void
ProgramBuilder::fdiv(RegId fd, RegId fs1, RegId fs2)
{
    emit({Op::FDiv, fd, fs1, fs2});
}

void
ProgramBuilder::fsqrt(RegId fd, RegId fs1)
{
    emit({Op::FSqrt, fd, fs1, noReg});
}

void
ProgramBuilder::fmov(RegId fd, RegId fs1)
{
    emit({Op::FMov, fd, fs1, noReg});
}

void
ProgramBuilder::fli(RegId fd, double value)
{
    emit({Op::FLi, fd, noReg, noReg,
          static_cast<std::int64_t>(doubleToBits(value))});
}

void
ProgramBuilder::fcmplt(RegId rd, RegId fs1, RegId fs2)
{
    emit({Op::FCmpLt, rd, fs1, fs2});
}

void
ProgramBuilder::emitBranch(Op op, RegId rs1, RegId rs2, Label target)
{
    tea_assert(target.id_ < labelPositions_.size(), "unknown label");
    InstIndex idx = emit({op, noReg, rs1, rs2});
    fixups_.push_back(Fixup{idx, target.id_});
}

void
ProgramBuilder::beq(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Op::Beq, rs1, rs2, target);
}

void
ProgramBuilder::bne(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Op::Bne, rs1, rs2, target);
}

void
ProgramBuilder::blt(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Op::Blt, rs1, rs2, target);
}

void
ProgramBuilder::bge(RegId rs1, RegId rs2, Label target)
{
    emitBranch(Op::Bge, rs1, rs2, target);
}

void
ProgramBuilder::jmp(Label target)
{
    emitBranch(Op::Jmp, noReg, noReg, target);
}

void
ProgramBuilder::call(Label target)
{
    tea_assert(target.id_ < labelPositions_.size(), "unknown label");
    InstIndex idx = emit({Op::Call, linkReg, noReg, noReg});
    fixups_.push_back(Fixup{idx, target.id_});
}

void
ProgramBuilder::ret()
{
    emit({Op::Ret, noReg, linkReg, noReg});
}

void
ProgramBuilder::fsflags()
{
    emit({Op::FsFlags});
}

void
ProgramBuilder::frflags()
{
    emit({Op::FrFlags});
}

void
ProgramBuilder::halt()
{
    emit({Op::Halt});
}

} // namespace tea
