/**
 * @file
 * Functional (oracle) execution of the mini-RISC ISA.
 *
 * The timing model executes instructions functionally at fetch along the
 * correct path and replays the recorded outcomes (branch directions,
 * memory addresses) through the out-of-order timing pipeline, the standard
 * "execute-at-fetch" simulator organization.
 */

#ifndef TEA_ISA_EXECUTOR_HH
#define TEA_ISA_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/memory.hh"
#include "isa/program.hh"
#include "isa/static_inst.hh"

namespace tea {

/** Architectural register and memory state. */
struct ArchState
{
    /** 64 registers: 0..31 integer (x0 == 0), 32..63 FP bit patterns. */
    std::array<std::uint64_t, numArchRegs> regs{};

    /** Data memory. */
    SparseMemory mem;

    /** Read register @p r (x0 reads as zero). */
    std::uint64_t reg(RegId r) const { return r == zeroReg ? 0 : regs[r]; }

    /** Write register @p r (writes to x0 are dropped). */
    void
    setReg(RegId r, std::uint64_t v)
    {
        if (r != zeroReg && r != noReg)
            regs[r] = v;
    }

    /** Read an FP register as a double. */
    double fpReg(RegId r) const;

    /** Write an FP register from a double. */
    void setFpReg(RegId r, double v);
};

/** Outcome of functionally executing one instruction. */
struct ExecResult
{
    InstIndex nextPc = 0;       ///< index of the next instruction
    bool taken = false;         ///< control flow: branch/jump taken
    Addr memAddr = 0;           ///< effective address for memory ops
    bool isMem = false;         ///< memAddr is valid
    bool halted = false;        ///< program terminated
};

/**
 * Functionally execute the instruction at @p pc, updating @p state.
 */
ExecResult execute(const Program &prog, InstIndex pc, ArchState &state);

/** Bit-cast helpers. */
double bitsToDouble(std::uint64_t bits);
std::uint64_t doubleToBits(double d);

} // namespace tea

#endif // TEA_ISA_EXECUTOR_HH
