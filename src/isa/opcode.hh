/**
 * @file
 * Opcodes and operand conventions of the mini-RISC ISA that the synthetic
 * workloads are written in.
 *
 * The ISA is RV64-flavoured: 32 integer registers (x0 hardwired to zero)
 * and 32 floating-point registers, a flat register id space where ids
 * 0..31 are integer registers and 32..63 are FP registers, and fixed
 * 4-byte instruction encoding (so pc = code_base + 4 * index).
 */

#ifndef TEA_ISA_OPCODE_HH
#define TEA_ISA_OPCODE_HH

#include <cstdint>

namespace tea {

/** Operation codes. */
enum class Op : std::uint8_t
{
    Nop,

    // Integer ALU
    Add,   ///< rd = rs1 + rs2
    Sub,   ///< rd = rs1 - rs2
    And,   ///< rd = rs1 & rs2
    Or,    ///< rd = rs1 | rs2
    Xor,   ///< rd = rs1 ^ rs2
    Shl,   ///< rd = rs1 << (rs2 & 63)
    Shr,   ///< rd = rs1 >> (rs2 & 63)
    AddI,  ///< rd = rs1 + imm
    AndI,  ///< rd = rs1 & imm
    ShlI,  ///< rd = rs1 << (imm & 63)
    ShrI,  ///< rd = rs1 >> (imm & 63)
    Li,    ///< rd = imm
    Slt,   ///< rd = (int64)rs1 < (int64)rs2
    SltI,  ///< rd = (int64)rs1 < imm
    Mul,   ///< rd = rs1 * rs2 (3-cycle pipelined)
    Div,   ///< rd = rs1 / rs2 (long latency, unpipelined)

    // Memory
    Ld,       ///< rd = mem64[rs1 + imm]
    St,       ///< mem64[rs1 + imm] = rs2
    Fld,      ///< fd = mem64[rs1 + imm] (rd is an FP register)
    Fst,      ///< mem64[rs1 + imm] = fs2 (rs2 is an FP register)
    Prefetch, ///< software prefetch of mem[rs1 + imm] into L1D

    // Floating point (operands are FP registers)
    FAdd,   ///< fd = fs1 + fs2
    FSub,   ///< fd = fs1 - fs2
    FMul,   ///< fd = fs1 * fs2
    FDiv,   ///< fd = fs1 / fs2 (unpipelined)
    FSqrt,  ///< fd = sqrt(fs1) (unpipelined, long latency)
    FMov,   ///< fd = fs1
    FLi,    ///< fd = bit pattern of immediate double
    FCmpLt, ///< rd(int) = fs1 < fs2   (flt.d-style comparison)

    // Control flow (target is a static instruction index)
    Beq,  ///< branch if rs1 == rs2
    Bne,  ///< branch if rs1 != rs2
    Blt,  ///< branch if (int64)rs1 < (int64)rs2
    Bge,  ///< branch if (int64)rs1 >= (int64)rs2
    Jmp,  ///< unconditional jump to target
    Call, ///< x1 = return index; jump to target
    Ret,  ///< jump to index in x1

    // System
    FsFlags, ///< write FP exception flags CSR; always flushes the pipeline
    FrFlags, ///< read FP exception flags CSR; always flushes the pipeline
    Halt,    ///< terminate the program

    NumOps
};

/** Coarse instruction class used for issue-queue routing and reporting. */
enum class InstClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer op
    IntMul,   ///< pipelined multiply
    IntDiv,   ///< unpipelined divide
    Load,     ///< integer or FP load
    Store,    ///< integer or FP store
    Prefetch, ///< software prefetch (issues like a load, no dest)
    FpAlu,    ///< pipelined FP add/mul/compare/move
    FpDiv,    ///< unpipelined FP divide
    FpSqrt,   ///< unpipelined FP square root
    Branch,   ///< conditional branch, jump, call, return
    Csr,      ///< serializing CSR op (always flushes)
    Nop,      ///< nop / halt
};

/** Mnemonic, e.g. "fsqrt". */
const char *opName(Op op);

/** Instruction class of @p op. */
InstClass opClass(Op op);

/** True for conditional branches (not jumps/calls/returns). */
bool isCondBranch(Op op);

/** True for any control-flow instruction. */
bool isControl(Op op);

/** True for loads (Ld/Fld). */
bool isLoad(Op op);

/** True for stores (St/Fst). */
bool isStore(Op op);

/** True for ops that unconditionally flush the pipeline at commit. */
bool isAlwaysFlush(Op op);

} // namespace tea

#endif // TEA_ISA_OPCODE_HH
