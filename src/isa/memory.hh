/**
 * @file
 * Sparse functional data memory (64-bit word granular, page-backed).
 */

#ifndef TEA_ISA_MEMORY_HH
#define TEA_ISA_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace tea {

/** Simulated page size in bytes (4 KiB, matching the TLB model). */
inline constexpr Addr pageBytes = 4096;

/** Cache line size in bytes. */
inline constexpr Addr lineBytes = 64;

/** Page number of a byte address. */
constexpr Addr
pageOf(Addr a)
{
    return a / pageBytes;
}

/** Cache line address (aligned) of a byte address. */
constexpr Addr
lineOf(Addr a)
{
    return a & ~(lineBytes - 1);
}

/**
 * Sparse 64-bit-word functional memory.
 *
 * Unwritten locations read as zero. Accesses are 8-byte aligned (the
 * mini-ISA only has 64-bit loads/stores).
 */
class SparseMemory
{
  public:
    /** Read the 64-bit word at @p addr (8-byte aligned). */
    std::uint64_t read(Addr addr) const;

    /** Write the 64-bit word at @p addr (8-byte aligned). */
    void write(Addr addr, std::uint64_t value);

    /** Read as a double bit pattern. */
    double readDouble(Addr addr) const;

    /** Write a double bit pattern. */
    void writeDouble(Addr addr, double value);

    /** Number of populated pages (test/inspection aid). */
    std::size_t populatedPages() const { return pages_.size(); }

    /**
     * Order-independent 64-bit hash of the full memory contents
     * (page-number-sorted), used to fingerprint initial state for the
     * trace cache. Identical contents hash identically regardless of
     * the order writes populated the pages.
     */
    std::uint64_t contentHash() const;

  private:
    static constexpr std::size_t wordsPerPage = pageBytes / 8;
    using Page = std::array<std::uint64_t, wordsPerPage>;

    std::unordered_map<Addr, Page> pages_;
};

} // namespace tea

#endif // TEA_ISA_MEMORY_HH
