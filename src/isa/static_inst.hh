/**
 * @file
 * Static instruction representation.
 */

#ifndef TEA_ISA_STATIC_INST_HH
#define TEA_ISA_STATIC_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace tea {

/** Register id space: 0..31 integer (x), 32..63 floating point (f). */
using RegId = std::uint8_t;

/** Sentinel register id meaning "no operand". */
inline constexpr RegId noReg = 255;

/** Integer register xN. */
constexpr RegId
x(unsigned n)
{
    return static_cast<RegId>(n);
}

/** Floating-point register fN. */
constexpr RegId
f(unsigned n)
{
    return static_cast<RegId>(32 + n);
}

/** The always-zero integer register. */
inline constexpr RegId zeroReg = 0;

/** The link register used by Call/Ret (x1, RISC-V ra). */
inline constexpr RegId linkReg = 1;

/** Total architectural registers (32 int + 32 fp). */
inline constexpr unsigned numArchRegs = 64;

/**
 * One static instruction of a Program.
 *
 * Branch/jump targets are static instruction indices (`target`), not byte
 * addresses; the program's code base maps indices to byte addresses.
 */
struct StaticInst
{
    Op op = Op::Nop;
    RegId rd = noReg;   ///< destination register
    RegId rs1 = noReg;  ///< first source
    RegId rs2 = noReg;  ///< second source (store data for St/Fst)
    std::int64_t imm = 0;
    InstIndex target = invalidInstIndex; ///< control-flow target index

    /** Instruction class (issue routing). */
    InstClass cls() const { return opClass(op); }

    bool isLoad() const { return tea::isLoad(op); }
    bool isStore() const { return tea::isStore(op); }
    bool isControl() const { return tea::isControl(op); }
    bool isCondBranch() const { return tea::isCondBranch(op); }
    bool isAlwaysFlush() const { return tea::isAlwaysFlush(op); }
    bool isMem() const
    {
        return isLoad() || isStore() || op == Op::Prefetch;
    }

    /** True when the instruction writes a register. */
    bool hasDest() const { return rd != noReg && rd != zeroReg; }
};

} // namespace tea

#endif // TEA_ISA_STATIC_INST_HH
