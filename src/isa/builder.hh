/**
 * @file
 * Assembler-style Program construction with forward-referencable labels
 * and function symbols. All synthetic workloads are written against this
 * API.
 *
 * Example:
 * @code
 *   ProgramBuilder b("loop");
 *   b.beginFunction("main");
 *   b.li(x(2), 0);                 // i = 0
 *   auto top = b.label();
 *   b.bind(top);
 *   b.addi(x(2), x(2), 1);
 *   b.li(x(3), 100);
 *   b.blt(x(2), x(3), top);        // while (i < 100)
 *   b.halt();
 *   b.endFunction();
 *   Program p = b.build();
 * @endcode
 */

#ifndef TEA_ISA_BUILDER_HH
#define TEA_ISA_BUILDER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace tea {

/** Forward-referencable code label handle. */
class Label
{
  public:
    Label() = default;

  private:
    friend class ProgramBuilder;
    explicit Label(std::size_t id) : id_(id) {}
    std::size_t id_ = SIZE_MAX;
};

/** Builder producing Programs from an assembler-like instruction API. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Create a fresh unbound label. */
    Label label();

    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);

    /** Create a label bound at the current position. */
    Label here();

    /** Start a function symbol covering subsequently emitted code. */
    void beginFunction(const std::string &name);

    /** Close the current function symbol. */
    void endFunction();

    /** Finalize: patch label fixups and return the program. */
    Program build();

    /** Index the next instruction will occupy. */
    InstIndex nextIndex() const;

    // --- raw emission -----------------------------------------------
    InstIndex emit(const StaticInst &inst);

    // --- integer ALU -------------------------------------------------
    void nop();
    void add(RegId rd, RegId rs1, RegId rs2);
    void sub(RegId rd, RegId rs1, RegId rs2);
    void and_(RegId rd, RegId rs1, RegId rs2);
    void or_(RegId rd, RegId rs1, RegId rs2);
    void xor_(RegId rd, RegId rs1, RegId rs2);
    void shl(RegId rd, RegId rs1, RegId rs2);
    void shr(RegId rd, RegId rs1, RegId rs2);
    void addi(RegId rd, RegId rs1, std::int64_t imm);
    void andi(RegId rd, RegId rs1, std::int64_t imm);
    void shli(RegId rd, RegId rs1, std::int64_t imm);
    void shri(RegId rd, RegId rs1, std::int64_t imm);
    void li(RegId rd, std::int64_t imm);
    void slt(RegId rd, RegId rs1, RegId rs2);
    void slti(RegId rd, RegId rs1, std::int64_t imm);
    void mul(RegId rd, RegId rs1, RegId rs2);
    void div(RegId rd, RegId rs1, RegId rs2);
    void mov(RegId rd, RegId rs1);

    // --- memory -------------------------------------------------------
    void ld(RegId rd, RegId rs1, std::int64_t imm = 0);
    void st(RegId rs1, std::int64_t imm, RegId rs2);
    void fld(RegId fd, RegId rs1, std::int64_t imm = 0);
    void fst(RegId rs1, std::int64_t imm, RegId fs2);
    void prefetch(RegId rs1, std::int64_t imm = 0);

    // --- floating point -----------------------------------------------
    void fadd(RegId fd, RegId fs1, RegId fs2);
    void fsub(RegId fd, RegId fs1, RegId fs2);
    void fmul(RegId fd, RegId fs1, RegId fs2);
    void fdiv(RegId fd, RegId fs1, RegId fs2);
    void fsqrt(RegId fd, RegId fs1);
    void fmov(RegId fd, RegId fs1);
    void fli(RegId fd, double value);
    void fcmplt(RegId rd, RegId fs1, RegId fs2);

    // --- control flow ---------------------------------------------------
    void beq(RegId rs1, RegId rs2, Label target);
    void bne(RegId rs1, RegId rs2, Label target);
    void blt(RegId rs1, RegId rs2, Label target);
    void bge(RegId rs1, RegId rs2, Label target);
    void jmp(Label target);
    void call(Label target);
    void ret();

    // --- system ---------------------------------------------------------
    void fsflags();
    void frflags();
    void halt();

  private:
    void emitBranch(Op op, RegId rs1, RegId rs2, Label target);

    Program prog_;
    std::vector<InstIndex> labelPositions_; ///< bound position per label
    struct Fixup
    {
        InstIndex inst;
        std::size_t label;
    };
    std::vector<Fixup> fixups_;
    std::string currentFunction_;
    InstIndex functionStart_ = 0;
    bool inFunction_ = false;
    bool built_ = false;
};

} // namespace tea

#endif // TEA_ISA_BUILDER_HH
