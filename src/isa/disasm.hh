/**
 * @file
 * Disassembly of static instructions for PICS reports.
 */

#ifndef TEA_ISA_DISASM_HH
#define TEA_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace tea {

/** Render register @p r as "xN" or "fN". */
std::string regName(RegId r);

/** Render one instruction, e.g. "fld f2, 16(x5)". */
std::string disassemble(const StaticInst &inst);

/** Render an instruction with its index and pc. */
std::string disassemble(const Program &prog, InstIndex idx);

} // namespace tea

#endif // TEA_ISA_DISASM_HH
