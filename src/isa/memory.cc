#include "isa/memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/fingerprint.hh"
#include "common/logging.hh"

namespace tea {

std::uint64_t
SparseMemory::read(Addr addr) const
{
    tea_assert((addr & 7) == 0, "unaligned read at %#lx",
               static_cast<unsigned long>(addr));
    auto it = pages_.find(pageOf(addr));
    if (it == pages_.end())
        return 0;
    return it->second[(addr % pageBytes) / 8];
}

void
SparseMemory::write(Addr addr, std::uint64_t value)
{
    tea_assert((addr & 7) == 0, "unaligned write at %#lx",
               static_cast<unsigned long>(addr));
    auto [it, inserted] = pages_.try_emplace(pageOf(addr));
    if (inserted)
        it->second.fill(0);
    it->second[(addr % pageBytes) / 8] = value;
}

double
SparseMemory::readDouble(Addr addr) const
{
    std::uint64_t bits = read(addr);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
SparseMemory::writeDouble(Addr addr, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    write(addr, bits);
}

std::uint64_t
SparseMemory::contentHash() const
{
    std::vector<Addr> pages;
    pages.reserve(pages_.size());
    for (const auto &[page, words] : pages_)
        pages.push_back(page);
    std::sort(pages.begin(), pages.end());

    Fnv1a h;
    for (Addr page : pages) {
        const Page &words = pages_.at(page);
        // An all-zero page reads identically to an absent one.
        bool all_zero = true;
        for (std::uint64_t w : words) {
            if (w != 0) {
                all_zero = false;
                break;
            }
        }
        if (all_zero)
            continue;
        h.add(page);
        h.addBytes(words.data(), sizeof(Page));
    }
    return h.value();
}

} // namespace tea
