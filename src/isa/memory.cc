#include "isa/memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace tea {

std::uint64_t
SparseMemory::read(Addr addr) const
{
    tea_assert((addr & 7) == 0, "unaligned read at %#lx",
               static_cast<unsigned long>(addr));
    auto it = pages_.find(pageOf(addr));
    if (it == pages_.end())
        return 0;
    return it->second[(addr % pageBytes) / 8];
}

void
SparseMemory::write(Addr addr, std::uint64_t value)
{
    tea_assert((addr & 7) == 0, "unaligned write at %#lx",
               static_cast<unsigned long>(addr));
    auto [it, inserted] = pages_.try_emplace(pageOf(addr));
    if (inserted)
        it->second.fill(0);
    it->second[(addr % pageBytes) / 8] = value;
}

double
SparseMemory::readDouble(Addr addr) const
{
    std::uint64_t bits = read(addr);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
SparseMemory::writeDouble(Addr addr, double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    write(addr, bits);
}

} // namespace tea
