/**
 * @file
 * Static program representation: instruction list, code layout and the
 * symbol table used for function/basic-block-granularity PICS.
 */

#ifndef TEA_ISA_PROGRAM_HH
#define TEA_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/static_inst.hh"

namespace tea {

/** A named function covering a contiguous static-instruction range. */
struct Symbol
{
    std::string name;
    InstIndex begin = 0; ///< first instruction index (inclusive)
    InstIndex end = 0;   ///< one past the last instruction index
};

/**
 * A complete static program: instructions, code base address and symbols.
 *
 * Instructions are 4 bytes each, so the instruction at index i lives at
 * byte address codeBase() + 4 * i; this drives the I-cache and I-TLB.
 */
class Program
{
  public:
    /** Construct an empty program named @p name. */
    explicit Program(std::string name = "program");

    /** Program name (used in reports). */
    const std::string &name() const { return name_; }

    /** All static instructions. */
    const std::vector<StaticInst> &insts() const { return insts_; }

    /** Static instruction at @p idx. */
    const StaticInst &inst(InstIndex idx) const;

    /** Number of static instructions. */
    InstIndex size() const
    {
        return static_cast<InstIndex>(insts_.size());
    }

    /** Code base byte address. */
    Addr codeBase() const { return codeBase_; }

    /** Byte address of the instruction at @p idx. */
    Addr pcOf(InstIndex idx) const { return codeBase_ + 4 * Addr(idx); }

    /** Index of the instruction at byte address @p pc. */
    InstIndex indexOf(Addr pc) const
    {
        return static_cast<InstIndex>((pc - codeBase_) / 4);
    }

    /** Entry-point instruction index. */
    InstIndex entry() const { return entry_; }

    /** Function symbols sorted by begin index. */
    const std::vector<Symbol> &functions() const { return functions_; }

    /**
     * Id of the function containing @p idx, or -1 when the index falls
     * outside every symbol (anonymous code).
     */
    int functionOf(InstIndex idx) const;

    /** Name of function @p id, or "<anon>" for -1. */
    const std::string &functionName(int id) const;

    /**
     * Compute the basic-block id of every instruction. Leaders are the
     * entry, all control-flow targets, and all fall-through successors of
     * control instructions.
     */
    std::vector<std::uint32_t> basicBlockIds() const;

    // Mutators used by ProgramBuilder.
    void append(const StaticInst &inst) { insts_.push_back(inst); }
    void setEntry(InstIndex e) { entry_ = e; }
    void addFunction(Symbol s) { functions_.push_back(std::move(s)); }
    StaticInst &instMutable(InstIndex idx);

  private:
    std::string name_;
    std::vector<StaticInst> insts_;
    std::vector<Symbol> functions_;
    Addr codeBase_ = 0x10000;
    InstIndex entry_ = 0;
    static const std::string anonName_;
};

} // namespace tea

#endif // TEA_ISA_PROGRAM_HH
