#include "isa/program.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tea {

const std::string Program::anonName_ = "<anon>";

Program::Program(std::string name) : name_(std::move(name)) {}

const StaticInst &
Program::inst(InstIndex idx) const
{
    tea_assert(idx < insts_.size(), "instruction index %u out of range",
               idx);
    return insts_[idx];
}

StaticInst &
Program::instMutable(InstIndex idx)
{
    tea_assert(idx < insts_.size(), "instruction index %u out of range",
               idx);
    return insts_[idx];
}

int
Program::functionOf(InstIndex idx) const
{
    // Symbols are appended in layout order by the builder; binary search
    // on begin index.
    int lo = 0;
    int hi = static_cast<int>(functions_.size()) - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        const Symbol &s = functions_[static_cast<std::size_t>(mid)];
        if (idx < s.begin) {
            hi = mid - 1;
        } else if (idx >= s.end) {
            lo = mid + 1;
        } else {
            return mid;
        }
    }
    return -1;
}

const std::string &
Program::functionName(int id) const
{
    if (id < 0 || id >= static_cast<int>(functions_.size()))
        return anonName_;
    return functions_[static_cast<std::size_t>(id)].name;
}

std::vector<std::uint32_t>
Program::basicBlockIds() const
{
    std::vector<bool> leader(insts_.size(), false);
    if (!insts_.empty())
        leader[entry_] = true;
    for (InstIndex i = 0; i < insts_.size(); ++i) {
        const StaticInst &si = insts_[i];
        if (!si.isControl())
            continue;
        if (si.target != invalidInstIndex && si.target < insts_.size())
            leader[si.target] = true;
        if (i + 1 < insts_.size())
            leader[i + 1] = true;
    }
    std::vector<std::uint32_t> ids(insts_.size(), 0);
    std::uint32_t current = 0;
    for (InstIndex i = 0; i < insts_.size(); ++i) {
        if (leader[i] && i != 0)
            ++current;
        ids[i] = current;
    }
    return ids;
}

} // namespace tea
