#include "analysis/runner.hh"

#include <chrono>

#include "common/logging.hh"

namespace tea {

const TechniqueResult &
ExperimentResult::technique(const std::string &tech_name) const
{
    for (const TechniqueResult &t : techniques) {
        if (t.config.name == tech_name)
            return t;
    }
    tea_fatal("technique '%s' not present in experiment '%s'",
              tech_name.c_str(), name.c_str());
}

double
ExperimentResult::errorOf(const TechniqueResult &t, Granularity g) const
{
    Pics gold = golden->pics()
                    .masked(t.config.eventMask)
                    .aggregated(program, g);
    Pics mine = t.pics.aggregated(program, g);
    return mine.errorAgainst(gold);
}

std::vector<SamplerConfig>
standardTechniques(Cycle period)
{
    return {ibsConfig(period), speConfig(period), risConfig(period),
            nciTeaConfig(period), teaConfig(period)};
}

ExperimentResult
runWorkload(Workload workload, std::vector<SamplerConfig> techniques,
            const CoreConfig &cfg)
{
    const auto start = std::chrono::steady_clock::now();

    ExperimentResult res;
    res.name = workload.program.name();
    res.golden = std::make_unique<GoldenReference>();

    std::vector<std::unique_ptr<TechniqueSampler>> samplers;
    samplers.reserve(techniques.size());
    for (SamplerConfig &tc : techniques)
        samplers.push_back(std::make_unique<TechniqueSampler>(tc));

    Core core(cfg, workload.program, std::move(workload.initial));
    core.addSink(res.golden.get());
    for (auto &s : samplers)
        core.addSink(s.get());
    core.run();

    res.stats = core.stats();
    for (auto &s : samplers) {
        res.techniques.push_back(TechniqueResult{
            s->config(), s->pics(), s->samplesTaken(),
            s->samplesDropped()});
    }
    res.program = std::move(workload.program);
    res.replay.totalSeconds = res.replay.simulateSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return res;
}

ExperimentResult
runBenchmark(const std::string &name, std::vector<SamplerConfig> techniques,
             const CoreConfig &cfg)
{
    return runWorkload(workloads::byName(name), std::move(techniques),
                       cfg);
}

} // namespace tea
