#include "analysis/runner.hh"

#include <chrono>

#include "common/failpoint.hh"
#include "common/logging.hh"

namespace tea {

const TechniqueResult &
ExperimentResult::technique(const std::string &tech_name) const
{
    for (const TechniqueResult &t : techniques) {
        if (t.config.name == tech_name)
            return t;
    }
    tea_fatal("technique '%s' not present in experiment '%s'",
              tech_name.c_str(), name.c_str());
}

double
ExperimentResult::errorOf(const TechniqueResult &t, Granularity g) const
{
    Pics gold = golden->pics()
                    .masked(t.config.eventMask)
                    .aggregated(program, g);
    Pics mine = t.pics.aggregated(program, g);
    return mine.errorAgainst(gold);
}

std::vector<SamplerConfig>
standardTechniques(Cycle period)
{
    return {ibsConfig(period), speConfig(period), risConfig(period),
            nciTeaConfig(period), teaConfig(period)};
}

ExperimentResult
runWorkload(Workload workload, std::vector<SamplerConfig> techniques,
            const CoreConfig &cfg)
{
    // Static init is long over: a TEA_FAILPOINTS entry still parked
    // names no seam in this binary and must not silently test nothing.
    failpoints::checkEnvConsumed();

    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();

    ExperimentResult res;
    res.name = workload.program.name();
    res.golden = std::make_unique<GoldenReference>();
    res.golden->reserveCells(workload.program.size());

    std::vector<std::unique_ptr<TechniqueSampler>> samplers;
    samplers.reserve(techniques.size());
    for (SamplerConfig &tc : techniques) {
        samplers.push_back(std::make_unique<TechniqueSampler>(tc));
        samplers.back()->reserveCells(workload.program.size());
    }

    Core core(cfg, workload.program, std::move(workload.initial));
    core.addSink(res.golden.get());
    for (auto &s : samplers)
        core.addSink(s.get());
    const auto sim_start = Clock::now();
    core.run();
    // Observers run inline with the core here, so the simulate span
    // includes their (inseparable) replay work; the distinct
    // decode/replay buckets belong to the cache-hit and threaded paths.
    res.replay.simulateSeconds =
        std::chrono::duration<double>(Clock::now() - sim_start).count();
    res.replay.simCycles = core.stats().cycles;
    res.replay.simEvents = core.perf().traceEvents;

    res.stats = core.stats();
    for (auto &s : samplers) {
        res.techniques.push_back(TechniqueResult{
            s->config(), s->pics(), s->samplesTaken(),
            s->samplesDropped()});
    }
    res.program = std::move(workload.program);
    res.replay.totalSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return res;
}

ExperimentResult
runBenchmark(const std::string &name, std::vector<SamplerConfig> techniques,
             const CoreConfig &cfg)
{
    return runWorkload(workloads::byName(name), std::move(techniques),
                       cfg);
}

} // namespace tea
