/**
 * @file
 * Declarative sweep engine: a SweepSpec names axes over generated-kernel
 * parameters (workloads/kernel_gen) and core-configuration presets
 * (core/config presets::) and expands, deterministically, into the full
 * cross product of (kernel × preset) experiments. The expansion runs
 * through runExperimentSuite — so it inherits the replay engine, the
 * trace cache, auditing and per-experiment fault containment — and the
 * results render as a per-sweep PICS comparison report (every
 * technique's error against the golden reference, per experiment and
 * aggregated per preset and per axis value).
 *
 * Expansion is part of the repo's compatibility surface: golden tests
 * pin the experiment list (count, names, fingerprints) of the
 * checked-in example sweeps, so a change to how specs expand is a
 * deliberate sweepSpecVersion bump, not silent drift.
 */

#ifndef TEA_ANALYSIS_SWEEP_HH
#define TEA_ANALYSIS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "analysis/runner.hh"
#include "core/config.hh"
#include "workloads/kernel_gen.hh"

namespace tea {

/**
 * Version of the spec-expansion contract: bump when expandSweep's
 * naming, ordering, or parameter vocabulary changes, or when the
 * checked-in example sweeps are retuned (the golden expansion tests
 * compare against it).
 */
inline constexpr unsigned sweepSpecVersion = 1;

/** One swept kernel parameter: a named knob and the values to try. */
struct SweepAxis
{
    std::string param;               ///< applyKernelParam() knob name
    std::vector<std::string> values; ///< textual values, tried in order
};

/** A declarative sweep: base spec x axes x presets. */
struct SweepSpec
{
    std::string name = "sweep";

    /** Starting point every experiment's KernelSpec is derived from. */
    workloads::KernelSpec base;

    /** Core-config preset names (presets::byName); empty = big_ooo. */
    std::vector<std::string> presets;

    /** Kernel-parameter axes; the cross product is swept. */
    std::vector<SweepAxis> axes;
};

/** One expanded (kernel × preset) experiment. */
struct SweepExperiment
{
    std::string name;           ///< "<sweep>/<preset>/<axis=value,...>"
    workloads::KernelSpec spec; ///< fully resolved (concrete footprint)
    std::string preset;         ///< preset the config came from
    CoreConfig cfg;
};

/**
 * Set the parameter named @p param on @p spec from textual @p value
 * (fatal on unknown parameter or malformed value). Knobs: seed,
 * iterations, level, footprint, stride, dependent, loads, branches,
 * taken, chain, chains, targets.
 */
void applyKernelParam(workloads::KernelSpec &spec,
                      const std::string &param, const std::string &value);

/**
 * Expand @p spec to the full experiment list: presets outermost, axes
 * in declaration order (last axis fastest). Kernel footprints resolve
 * against each preset's cache sizes, so a level axis targets the same
 * *level* on every preset, not the same byte count.
 */
std::vector<SweepExperiment> expandSweep(const SweepSpec &spec);

/**
 * Order-sensitive fingerprint of an expansion (sweepSpecVersion, every
 * experiment's name, spec fingerprint and config hash) — the value the
 * golden regression tests pin.
 */
std::uint64_t
sweepExpansionFingerprint(const std::vector<SweepExperiment> &exps);

/**
 * The checked-in example sweep: 5 presets x level/dependence/taken-
 * ratio/ILP axes = 120 experiments, each small enough that the full
 * sweep runs in seconds through a warm trace cache.
 */
SweepSpec exampleSweep();

/** The CI smoke sweep: 2 presets x 6 kernel scenarios = 12 experiments. */
SweepSpec smokeSweep();

/** An executed sweep: the expansion plus one result per experiment. */
struct SweepRunResult
{
    SweepSpec spec;
    std::vector<SweepExperiment> experiments;
    std::vector<ExperimentResult> results; ///< parallel to experiments

    /** Number of failed (contained) experiments. */
    unsigned degraded() const;
};

/**
 * Expand @p spec and run every experiment through runExperimentSuite
 * with @p techniques observing (plus the golden reference). Failures
 * are contained per experiment (ExperimentResult::error).
 */
SweepRunResult runSweep(const SweepSpec &spec,
                        const std::vector<SamplerConfig> &techniques,
                        const RunnerOptions &opts = RunnerOptions{});

/**
 * Render the per-sweep PICS comparison report: one row per experiment
 * (cycles, IPC, per-technique PICS error vs the projected golden
 * reference) followed by per-preset and per-axis-value aggregates, and
 * a trailer naming any failed experiments.
 */
std::string renderSweepReport(const SweepRunResult &run);

} // namespace tea

#endif // TEA_ANALYSIS_SWEEP_HH
