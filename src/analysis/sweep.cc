/**
 * @file
 * Declarative sweep engine (see sweep.hh).
 */

#include "analysis/sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace tea {

namespace {

using workloads::KernelSpec;
using workloads::MemLevel;

std::uint64_t
parseU64(const std::string &param, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || !end || *end != '\0')
        tea_fatal("sweep: bad value '%s' for kernel parameter '%s'",
                  value.c_str(), param.c_str());
    return v;
}

} // namespace

void
applyKernelParam(KernelSpec &spec, const std::string &param,
                 const std::string &value)
{
    if (param == "seed")
        spec.seed = parseU64(param, value);
    else if (param == "iterations")
        spec.iterations = static_cast<unsigned>(parseU64(param, value));
    else if (param == "level")
        spec.level = workloads::memLevelByName(value);
    else if (param == "footprint")
        spec.footprintBytes = parseU64(param, value);
    else if (param == "stride")
        spec.strideBytes = parseU64(param, value);
    else if (param == "dependent")
        spec.dependent = parseU64(param, value) != 0;
    else if (param == "loads")
        spec.loadsPerIteration =
            static_cast<unsigned>(parseU64(param, value));
    else if (param == "branches")
        spec.branchesPerIteration =
            static_cast<unsigned>(parseU64(param, value));
    else if (param == "taken")
        spec.takenPermille = static_cast<unsigned>(parseU64(param, value));
    else if (param == "chain")
        spec.chainLength = static_cast<unsigned>(parseU64(param, value));
    else if (param == "chains")
        spec.chains = static_cast<unsigned>(parseU64(param, value));
    else if (param == "targets")
        spec.targetPool = static_cast<unsigned>(parseU64(param, value));
    else
        tea_fatal("sweep: unknown kernel parameter '%s' (knobs: seed, "
                  "iterations, level, footprint, stride, dependent, "
                  "loads, branches, taken, chain, chains, targets)",
                  param.c_str());
}

std::vector<SweepExperiment>
expandSweep(const SweepSpec &sweep)
{
    std::vector<std::string> presets = sweep.presets;
    if (presets.empty())
        presets.push_back("big_ooo");
    for (const SweepAxis &axis : sweep.axes)
        tea_assert(!axis.values.empty(),
                   "sweep '%s': axis '%s' has no values",
                   sweep.name.c_str(), axis.param.c_str());

    std::vector<SweepExperiment> exps;
    for (const std::string &preset : presets) {
        const CoreConfig cfg = presets::byName(preset);
        // Odometer over the axes, last axis fastest.
        std::vector<std::size_t> idx(sweep.axes.size(), 0);
        bool done = false;
        while (!done) {
            KernelSpec spec = sweep.base;
            std::string point;
            for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
                const SweepAxis &axis = sweep.axes[a];
                const std::string &value = axis.values[idx[a]];
                applyKernelParam(spec, axis.param, value);
                point += (a ? "," : "") + axis.param + "=" + value;
            }
            if (point.empty())
                point = "base";
            SweepExperiment exp;
            exp.name = sweep.name + "/" + preset + "/" + point;
            // Resolve against this preset so a level axis targets the
            // same cache level on every preset.
            exp.spec = workloads::resolvedSpec(spec, cfg);
            exp.preset = preset;
            exp.cfg = cfg;
            exps.push_back(std::move(exp));

            done = true;
            for (std::size_t a = sweep.axes.size(); a-- > 0;) {
                if (++idx[a] < sweep.axes[a].values.size()) {
                    done = false;
                    break;
                }
                idx[a] = 0;
            }
            if (sweep.axes.empty())
                done = true;
        }
    }
    return exps;
}

std::uint64_t
sweepExpansionFingerprint(const std::vector<SweepExperiment> &exps)
{
    Fnv1a h;
    h.add(std::uint64_t{sweepSpecVersion});
    h.add(std::uint64_t{exps.size()});
    for (const SweepExperiment &e : exps) {
        h.add(e.name);
        h.add(e.preset);
        h.add(workloads::kernelSpecFingerprint(e.spec));
        hashConfig(h, e.cfg);
    }
    return h.value();
}

SweepSpec
exampleSweep()
{
    SweepSpec s;
    s.name = "example";
    s.base.seed = 7;
    s.base.iterations = 1500;
    s.base.loadsPerIteration = 2;
    s.base.branchesPerIteration = 1;
    s.base.chainLength = 3;
    s.presets = {"big_ooo", "big_ooo_w2", "big_ooo_rob64",
                 "big_ooo_mini_caches", "little_inorder"};
    s.axes = {
        {"level", {"L1D", "LLC", "MEM"}},
        {"dependent", {"1", "0"}},
        {"taken", {"100", "900"}},
        {"chains", {"1", "4"}},
    };
    return s; // 5 presets x 3 x 2 x 2 x 2 = 120 experiments
}

SweepSpec
smokeSweep()
{
    SweepSpec s;
    s.name = "smoke";
    s.base.seed = 11;
    s.base.iterations = 800;
    s.base.loadsPerIteration = 2;
    s.base.branchesPerIteration = 1;
    s.presets = {"big_ooo", "little_inorder"};
    s.axes = {
        {"level", {"L1D", "LLC", "MEM"}},
        {"taken", {"200", "800"}},
    };
    return s; // 2 presets x 3 x 2 = 12 experiments
}

unsigned
SweepRunResult::degraded() const
{
    unsigned n = 0;
    for (const ExperimentResult &r : results)
        n += r.failed() ? 1 : 0;
    return n;
}

SweepRunResult
runSweep(const SweepSpec &spec,
         const std::vector<SamplerConfig> &techniques,
         const RunnerOptions &opts)
{
    SweepRunResult run;
    run.spec = spec;
    run.experiments = expandSweep(spec);

    std::vector<SuiteExperiment> suite;
    suite.reserve(run.experiments.size());
    for (const SweepExperiment &e : run.experiments) {
        const KernelSpec kspec = e.spec;
        suite.push_back(SuiteExperiment{
            e.name, [kspec] { return workloads::generateKernel(kspec); },
            e.cfg});
    }
    run.results = runExperimentSuite(suite, techniques, opts);
    return run;
}

std::string
renderSweepReport(const SweepRunResult &run)
{
    tea_assert(run.results.size() == run.experiments.size(),
               "sweep report: %zu results for %zu experiments",
               run.results.size(), run.experiments.size());

    std::string out = strprintf(
        "Sweep '%s' (spec v%u): %zu experiments, %u degraded, "
        "expansion fingerprint %s\n",
        run.spec.name.c_str(), sweepSpecVersion, run.experiments.size(),
        run.degraded(),
        hashHex(sweepExpansionFingerprint(run.experiments)).c_str());

    // Technique names from the first healthy result.
    std::vector<std::string> techNames;
    for (const ExperimentResult &r : run.results) {
        if (!r.failed()) {
            for (const TechniqueResult &t : r.techniques)
                techNames.push_back(t.config.name);
            break;
        }
    }

    // --- per-experiment PICS comparison -----------------------------
    Table t;
    {
        std::vector<std::string> hdr{"experiment", "cycles", "IPC"};
        hdr.insert(hdr.end(), techNames.begin(), techNames.end());
        t.header(hdr);
    }
    // error sums/maxima keyed by aggregate row label, per technique.
    std::map<std::string, std::pair<std::vector<double>, unsigned>> agg;
    std::vector<double> maxima(techNames.size(), 0.0);
    auto aggregate = [&](const std::string &key,
                         const std::vector<double> &errs) {
        auto &slot = agg[key];
        if (slot.first.empty())
            slot.first.assign(techNames.size(), 0.0);
        for (std::size_t i = 0; i < errs.size(); ++i)
            slot.first[i] += errs[i];
        slot.second += 1;
    };

    for (std::size_t i = 0; i < run.results.size(); ++i) {
        const ExperimentResult &r = run.results[i];
        const SweepExperiment &e = run.experiments[i];
        if (r.failed()) {
            t.row({e.name, "FAILED", "-"});
            continue;
        }
        std::vector<std::string> row{
            e.name, fmtCount(r.stats.cycles), fmtDouble(r.stats.ipc())};
        std::vector<double> errs;
        errs.reserve(r.techniques.size());
        for (std::size_t k = 0; k < r.techniques.size(); ++k) {
            double err = r.errorOf(r.techniques[k]);
            errs.push_back(err);
            maxima[k] = std::max(maxima[k], err);
            row.push_back(fmtPercent(err));
        }
        t.row(row);
        aggregate("preset " + e.preset, errs);
        // One aggregate bucket per swept axis value of this experiment:
        // the part of the name after the preset ("a=v,b=w") splits into
        // its axis=value atoms.
        std::string point = e.name.substr(e.name.rfind('/') + 1);
        std::size_t pos = 0;
        while (pos < point.size()) {
            std::size_t comma = point.find(',', pos);
            std::string atom =
                point.substr(pos, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - pos);
            if (atom != "base")
                aggregate(atom, errs);
            pos = comma == std::string::npos ? point.size() : comma + 1;
        }
    }
    out += t.render();

    // --- aggregates --------------------------------------------------
    Table a;
    {
        std::vector<std::string> hdr{"aggregate", "n"};
        for (const std::string &n : techNames)
            hdr.push_back(n + " mean");
        a.header(hdr);
    }
    for (const auto &[key, slot] : agg) {
        std::vector<std::string> row{key, std::to_string(slot.second)};
        for (double sum : slot.first)
            row.push_back(fmtPercent(sum / slot.second));
        a.row(row);
    }
    a.separator();
    {
        std::vector<std::string> row{"max (all experiments)", ""};
        for (double m : maxima)
            row.push_back(fmtPercent(m));
        a.row(row);
    }
    out += "\nPer-preset and per-axis-value mean PICS error vs the "
           "projected golden reference:\n";
    out += a.render();

    const std::string errors = renderSuiteErrors(run.results);
    if (!errors.empty())
        out += "\n" + errors;
    return out;
}

} // namespace tea
