#include "analysis/report.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/table.hh"
#include "isa/disasm.hh"

namespace tea {

namespace {

/** Signature components of one unit, largest first. */
std::vector<PicsComponent>
unitComponents(const Pics &pics, std::uint32_t unit)
{
    std::vector<PicsComponent> comps;
    for (const PicsComponent &c : pics.components()) {
        if (c.unit == unit)
            comps.push_back(c);
    }
    std::sort(comps.begin(), comps.end(),
              [](const PicsComponent &a, const PicsComponent &b) {
                  return a.cycles > b.cycles;
              });
    return comps;
}

} // namespace

std::string
renderInstructionStack(const Program &prog, const Pics &pics, InstIndex pc,
                       double total_cycles)
{
    if (total_cycles <= 0.0)
        total_cycles = 1.0;
    std::string out;
    double unit_total = pics.unitCycles(pc);
    out += strprintf("  %-40s %12.0f cycles  (%5.2f%% of total)\n",
                     disassemble(prog, pc).c_str(), unit_total,
                     100.0 * unit_total / total_cycles);
    for (const PicsComponent &c : unitComponents(pics, pc)) {
        Psv sig(c.signature);
        out += strprintf("      %-28s %12.0f  %5.2f%%  |%s\n",
                         sig.name().c_str(), c.cycles,
                         100.0 * c.cycles / total_cycles,
                         bar(c.cycles, unit_total, 30).c_str());
    }
    return out;
}

std::string
renderTopInstructions(const Program &prog, const Pics &pics, std::size_t n,
                      double total_cycles)
{
    std::string out;
    for (std::uint32_t unit : pics.topUnits(n)) {
        out += renderInstructionStack(prog, pics,
                                      static_cast<InstIndex>(unit),
                                      total_cycles);
    }
    return out;
}

} // namespace tea
