/**
 * @file
 * Cache janitor: keeps a trace-cache directory (analysis/trace_cache)
 * healthy and bounded across process crashes and unbounded use.
 *
 * The cache's write protocol is crash-safe per entry — tmp + fsync +
 * rename + directory fsync means readers only ever see complete,
 * validated files — but crashes still leave *debris*: orphaned
 * `<entry>.<pid>.<ctr>.tmp` files from writers that died mid-write,
 * `.lock` sidecars whose entries are gone, and quarantined entries
 * nobody will ever look at. And nothing in the write path bounds total
 * cache size. The janitor closes both gaps:
 *
 *  - recovery GC: remove tmp files whose writing process is dead (the
 *    pid is embedded in the name) or that have aged past a threshold;
 *    remove lock files that are unheld, entry-less and old; age out
 *    and count-cap the quarantine directory;
 *  - size budget: when TEA_TRACE_CACHE_MAX_BYTES is set, evict entries
 *    oldest-last-use first (openEntry bumps mtime on every hit) until
 *    the live entries fit the budget. Eviction unlinks; concurrent
 *    readers that already mapped the entry keep their mapping (mmap
 *    survives unlink), and a concurrent *re*-writer simply republishes
 *    — the rename protocol makes that safe.
 *
 * Every pass serializes on an exclusive flock of `<dir>/janitor.lock`
 * (common/file_lock); a busy lock skips the pass (some other process
 * is already cleaning). The per-entry `.lock` rewrite locks are NOT
 * taken: the worst race — evicting an entry as another process
 * rewrites it — costs one duplicated simulation, never corruption.
 */

#ifndef TEA_ANALYSIS_CACHE_JANITOR_HH
#define TEA_ANALYSIS_CACHE_JANITOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tea {

/** Budgets and thresholds of one janitor pass. */
struct JanitorConfig
{
    /** Live-entry byte budget; 0 (the default) disables eviction. */
    std::uint64_t maxBytes = 0;

    /** Most quarantined entries kept; older ones go first. */
    std::uint64_t quarantineMaxCount = 32;

    /** Quarantined entries older than this are removed (seconds). */
    std::uint64_t quarantineMaxAgeS = 7 * 24 * 3600;

    /**
     * Debris (.tmp with a live or unparseable pid, entry-less .lock)
     * must be at least this old (seconds) before removal — younger
     * files may belong to an in-flight writer.
     */
    std::uint64_t orphanMaxAgeS = 3600;

    /**
     * How long gc() waits for <dir>/janitor.lock before skipping the
     * pass. Short by design: a busy janitor means the work is already
     * being done.
     */
    unsigned lockTimeoutMs = 100;

    /**
     * Budgets from the environment: TEA_TRACE_CACHE_MAX_BYTES,
     * TEA_CACHE_QUARANTINE_MAX, TEA_CACHE_QUARANTINE_MAX_AGE_S,
     * TEA_CACHE_ORPHAN_MAX_AGE_S. Unset variables keep the defaults
     * above.
     */
    static JanitorConfig fromEnv();
};

/** One file found by scanCacheDir. */
struct CacheFileInfo
{
    std::string path;
    std::uint64_t bytes = 0;
    std::int64_t mtimeS = 0; ///< last modification (= last use), epoch s
};

/** Everything living in a cache directory, classified. */
struct CacheScan
{
    std::vector<CacheFileInfo> entries;    ///< *.teatrc (live entries)
    std::vector<CacheFileInfo> tmpFiles;   ///< *.tmp (in-flight/orphan)
    std::vector<CacheFileInfo> lockFiles;  ///< *.teatrc.lock sidecars
    std::vector<CacheFileInfo> quarantine; ///< quarantine/* payloads
    std::vector<CacheFileInfo> reasons;    ///< quarantine/*.reason notes
    std::uint64_t entryBytes = 0; ///< bytes in live entries only
    std::uint64_t totalBytes = 0; ///< bytes in everything scanned
};

/**
 * Scan @p dir (and its quarantine/ subdirectory) without modifying
 * anything. Unreadable files are skipped; a missing directory yields an
 * empty scan. <dir>/janitor.lock is not reported.
 */
CacheScan scanCacheDir(const std::string &dir);

/** What one janitor pass did (merged into ReplayStats by the runner). */
struct JanitorStats
{
    std::uint64_t evictedEntries = 0; ///< live entries evicted (budget)
    std::uint64_t evictedBytes = 0;   ///< bytes those entries held
    std::uint64_t removedTmp = 0;     ///< orphaned tmp files removed
    std::uint64_t removedLocks = 0;   ///< stale lock files removed
    std::uint64_t removedQuarantine = 0; ///< quarantine files removed
    std::uint64_t scannedEntries = 0; ///< live entries seen by the pass
    std::uint64_t scannedBytes = 0;   ///< live-entry bytes seen
    bool lockBusy = false; ///< pass skipped: another janitor was active

    /** Total debris files removed (everything but budget eviction). */
    std::uint64_t removals() const
    {
        return removedTmp + removedLocks + removedQuarantine;
    }
};

/**
 * Janitor over one cache directory. Stateless between passes; safe to
 * construct ad hoc wherever a pass is wanted.
 */
class CacheJanitor
{
  public:
    CacheJanitor(std::string dir, JanitorConfig cfg);

    /**
     * One full pass under <dir>/janitor.lock: recovery GC (orphan tmp,
     * stale locks, quarantine aging/capping) then budget eviction.
     * Returns immediately with lockBusy set when the lock cannot be
     * taken within the configured timeout. Never throws; individual
     * removals that fail are warned about and skipped.
     */
    JanitorStats gc() const;

    /**
     * Run gc() at most once per (process, directory): the runner calls
     * this on first cache access so crash debris from previous runs is
     * reclaimed before new work lands on top of it, without paying a
     * scan per experiment.
     */
    static JanitorStats recoverOnce(const std::string &dir,
                                    const JanitorConfig &cfg);

    /** The advisory lock file serializing janitor passes on @p dir. */
    static std::string lockPathFor(const std::string &dir)
    {
        return dir + "/janitor.lock";
    }

  private:
    std::string dir_;
    JanitorConfig cfg_;
};

/**
 * Extract the content fingerprint encoded in a cache entry's filename
 * (`<name>-<16 hex digits>.teatrc`, see TraceCache::entryPath).
 * @return true and sets @p fp when @p path has the expected shape
 */
bool parseEntryFingerprint(const std::string &path, std::uint64_t *fp);

/** Outcome of verifyCacheDir. */
struct CacheVerifyReport
{
    std::uint64_t checked = 0; ///< entries examined
    std::uint64_t healthy = 0; ///< entries that validated completely
    std::uint64_t damaged = 0; ///< entries that failed validation
    std::vector<std::string> damagedPaths; ///< what failed, path list

    bool clean() const { return damaged == 0; }
};

/**
 * Open and fully validate every live entry in @p dir against the
 * fingerprint its own filename claims (header magic, codec version,
 * CRCs, frame scan — everything MappedTraceFile::open checks). An
 * entry whose name does not parse counts as damaged. When
 * @p quarantine_damaged is set, damaged entries are quarantined the
 * same way a cache miss would; otherwise they are left in place and
 * only reported (teacachectl's read-only `verify`).
 */
CacheVerifyReport verifyCacheDir(const std::string &dir,
                                 bool quarantine_damaged);

} // namespace tea

#endif // TEA_ANALYSIS_CACHE_JANITOR_HH
