/**
 * @file
 * PICS report rendering: the textual equivalents of the paper's
 * cycle-stack figures (Fig 6, 10, 11, 12).
 */

#ifndef TEA_ANALYSIS_REPORT_HH
#define TEA_ANALYSIS_REPORT_HH

#include <string>

#include "isa/program.hh"
#include "profilers/pics.hh"

namespace tea {

/**
 * Render the top-@p n instructions of @p pics as stacked cycle bars with
 * per-signature breakdowns. Percentages are of @p total_cycles (pass
 * pics.total() unless comparing against another profile's scale).
 */
std::string renderTopInstructions(const Program &prog, const Pics &pics,
                                  std::size_t n, double total_cycles);

/**
 * Render the cycle stack of one specific instruction (used by the lbm
 * and nab case studies to track a named load/store across variants).
 */
std::string renderInstructionStack(const Program &prog, const Pics &pics,
                                   InstIndex pc, double total_cycles);

} // namespace tea

#endif // TEA_ANALYSIS_REPORT_HH
