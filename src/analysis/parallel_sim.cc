/**
 * @file
 * Time-parallel simulation engine (see parallel_sim.hh and DESIGN.md,
 * "Time-parallel simulation").
 *
 * Coordinate systems: every worker simulates in local coordinates —
 * cycle 0 is the first cycle after its checkpoint, seq 0 is the first
 * micro-op it fetches. Because the core fetch-executes along the
 * correct path and assigns one seq per dynamic instruction, worker j's
 * local seq s is absolute seq s + C_j where C_j is the checkpoint's
 * committed-uop count — a static offset known before the worker runs.
 * Cycles have no such luxury: the absolute cycle of an interval's
 * start is only known once every earlier interval is stitched, so the
 * stitcher aligns each worker's warmup *end* with the accepted
 * stream's end and rebases with the resulting signed delta.
 */

#include "analysis/parallel_sim.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "core/checkpoint.hh"
#include "core/trace_buffer.hh"
#include "core/trace_codec.hh"

namespace tea {

namespace {

/** Floor on the accepted-stream suffix retained for convergence checks. */
constexpr Cycle kMinTailCycles = 2048;

/**
 * Tail retention headroom: keep this many multiples of the largest
 * warmup span seen so far, so the next boundary can be checked over the
 * worker's *entire* warmup stream, not just a fixed suffix window.
 */
constexpr Cycle kTailSpanMultiple = 8;

/** Per-leg cycle budget (matches Core::run's default). */
constexpr Cycle kLegMaxCycles = 2'000'000'000ULL;

/** Environment unsigned with a default (fatal on garbage). */
std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    char *end = nullptr;
    const std::uint64_t n = std::strtoull(v, &end, 10);
    if (end == v || *end)
        tea_fatal("%s must be a non-negative integer, got '%s'", name, v);
    return n;
}

/** The cycle stamp a sink would observe on @p ev. */
Cycle
eventStamp(const TraceEvent &ev)
{
    switch (ev.kind) {
    case TraceEventKind::Cycle:
        return ev.p.cycle.cycle;
    case TraceEventKind::Dispatch:
    case TraceEventKind::Fetch:
        return ev.p.uop.cycle;
    case TraceEventKind::Retire:
        return ev.p.retire.cycle;
    case TraceEventKind::End:
        return ev.p.end;
    }
    return 0; // unreachable
}

/**
 * Rebase @p ev from worker-local to absolute coordinates: cycle fields
 * shift by @p dcycle, valid seq fields by @p dseq. Fields gated by a
 * validity flag are left untouched when invalid — they hold stale
 * working-buffer bytes no observer may read (eventsEquivalent skips
 * them and the codec canonicalizes them away).
 */
void
rebaseEvent(TraceEvent &ev, std::int64_t dcycle, std::uint64_t dseq)
{
    const auto shift = [dcycle](Cycle c) {
        return static_cast<Cycle>(static_cast<std::int64_t>(c) + dcycle);
    };
    switch (ev.kind) {
    case TraceEventKind::Cycle: {
        CycleRecord &r = ev.p.cycle;
        r.cycle = shift(r.cycle);
        if (r.headValid)
            r.headSeq += dseq;
        for (unsigned i = 0; i < r.numCommitted; ++i)
            r.committed[i].seq += dseq;
        break;
    }
    case TraceEventKind::Dispatch:
    case TraceEventKind::Fetch:
        ev.p.uop.cycle = shift(ev.p.uop.cycle);
        ev.p.uop.seq += dseq;
        break;
    case TraceEventKind::Retire:
        ev.p.retire.cycle = shift(ev.p.retire.cycle);
        ev.p.retire.seq += dseq;
        break;
    case TraceEventKind::End:
        ev.p.end = shift(ev.p.end);
        break;
    }
}

/** First index in [begin, end) whose stamp exceeds @p cycle. */
std::size_t
firstStampAfter(const std::vector<TraceEvent> &evs, std::size_t begin,
                std::size_t end, Cycle cycle)
{
    const auto it = std::partition_point(
        evs.begin() + static_cast<std::ptrdiff_t>(begin),
        evs.begin() + static_cast<std::ptrdiff_t>(end),
        [cycle](const TraceEvent &ev) { return eventStamp(ev) <= cycle; });
    return static_cast<std::size_t>(it - evs.begin());
}

/** Field-wise difference end - begin of the interval-attributable
 *  counters (every CoreStats field accumulates per cycle or per retire,
 *  so a leg's contribution is the difference of its boundary
 *  snapshots). */
CoreStats
statsDelta(const CoreStats &end, const CoreStats &begin)
{
    CoreStats d;
    d.cycles = end.cycles - begin.cycles;
    d.committedUops = end.committedUops - begin.committedUops;
    for (std::size_t i = 0; i < d.stateCycles.size(); ++i)
        d.stateCycles[i] = end.stateCycles[i] - begin.stateCycles[i];
    for (std::size_t i = 0; i < d.eventCounts.size(); ++i)
        d.eventCounts[i] = end.eventCounts[i] - begin.eventCounts[i];
    d.uopsWithEvents = end.uopsWithEvents - begin.uopsWithEvents;
    d.uopsWithCombined = end.uopsWithCombined - begin.uopsWithCombined;
    d.branchMispredicts = end.branchMispredicts - begin.branchMispredicts;
    d.pipelineFlushes = end.pipelineFlushes - begin.pipelineFlushes;
    d.moViolations = end.moViolations - begin.moViolations;
    d.drSqStallCycles = end.drSqStallCycles - begin.drSqStallCycles;
    d.samplingInterrupts = end.samplingInterrupts - begin.samplingInterrupts;
    return d;
}

void
statsAccum(CoreStats &into, const CoreStats &d)
{
    into.cycles += d.cycles;
    into.committedUops += d.committedUops;
    for (std::size_t i = 0; i < d.stateCycles.size(); ++i)
        into.stateCycles[i] += d.stateCycles[i];
    for (std::size_t i = 0; i < d.eventCounts.size(); ++i)
        into.eventCounts[i] += d.eventCounts[i];
    into.uopsWithEvents += d.uopsWithEvents;
    into.uopsWithCombined += d.uopsWithCombined;
    into.branchMispredicts += d.branchMispredicts;
    into.pipelineFlushes += d.pipelineFlushes;
    into.moViolations += d.moViolations;
    into.drSqStallCycles += d.drSqStallCycles;
    into.samplingInterrupts += d.samplingInterrupts;
}

bool
statsEqual(const CoreStats &a, const CoreStats &b)
{
    return a.cycles == b.cycles && a.committedUops == b.committedUops &&
           a.stateCycles == b.stateCycles &&
           a.eventCounts == b.eventCounts &&
           a.uopsWithEvents == b.uopsWithEvents &&
           a.uopsWithCombined == b.uopsWithCombined &&
           a.branchMispredicts == b.branchMispredicts &&
           a.pipelineFlushes == b.pipelineFlushes &&
           a.moViolations == b.moViolations &&
           a.drSqStallCycles == b.drSqStallCycles &&
           a.samplingInterrupts == b.samplingInterrupts;
}

SimPerf
perfDelta(const SimPerf &end, const SimPerf &begin)
{
    SimPerf d;
    d.activeCycles = end.activeCycles - begin.activeCycles;
    d.skippedCycles = end.skippedCycles - begin.skippedCycles;
    d.traceEvents = end.traceEvents - begin.traceEvents;
    d.wakeups = end.wakeups - begin.wakeups;
    return d;
}

void
perfAccum(SimPerf &into, const SimPerf &d)
{
    into.activeCycles += d.activeCycles;
    into.skippedCycles += d.skippedCycles;
    into.traceEvents += d.traceEvents;
    into.wakeups += d.wakeups;
}

/** TraceSink buffering the raw event stream, End included. */
class CaptureSink final : public TraceSink
{
  public:
    std::vector<TraceEvent> events;

    void onBatch(const TraceEvent *evs, std::size_t n) override
    {
        events.insert(events.end(), evs, evs + n);
    }

    void onEnd(Cycle final_cycle) override
    {
        TraceEvent ev;
        ev.kind = TraceEventKind::End;
        ev.p.end = final_cycle;
        events.push_back(ev);
    }
};

/**
 * Deliver @p n consecutive absolute-coordinate events to @p sinks the
 * way the core does: onBatch for every run of non-End events, a
 * dedicated onEnd per End marker (the replayChunk contract).
 */
void
deliverRange(const TraceEvent *evs, std::size_t n,
             const std::vector<TraceSink *> &sinks)
{
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j < n && evs[j].kind != TraceEventKind::End)
            ++j;
        if (j > i)
            for (TraceSink *sink : sinks)
                sink->onBatch(evs + i, j - i);
        if (j < n) {
            for (TraceSink *sink : sinks)
                sink->onEnd(evs[j].p.end);
            ++j;
        }
        i = j;
    }
}

/** A parked simulation: a live Core plus its capture sink and the
 *  local-to-absolute identity of its coordinate system. */
struct ParkedRun
{
    std::unique_ptr<Core> core;
    std::unique_ptr<CaptureSink> capture;
    std::int64_t deltaCycle = 0;  ///< absolute = local + deltaCycle
    std::uint64_t deltaSeq = 0;   ///< absolute = local + deltaSeq
};

/** What one worker hands the stitcher for one interval. */
struct IntervalResult
{
    std::uint64_t index = 0;
    bool failed = false; ///< worker threw; error holds the message
    std::string error;

    ParkedRun run; ///< core parked at the interval end, events captured

    std::size_t mainBegin = 0;   ///< first event past the warmup region
    Cycle warmupEndCycle = 0;    ///< local stamp of the last warmup cycle
    Cycle endCycle = 0;          ///< local stamp of the last simulated cycle
    bool halted = false;
    /** Core::stateFingerprint at the warmup/main boundary: compared
     *  against the predecessor's end fingerprint by the stitcher (the
     *  state leg of convergence acceptance). */
    std::uint64_t warmupFingerprint = 0;
    /** Core::stateFingerprint at the interval end: what the *next*
     *  interval's warmup fingerprint must reproduce. */
    std::uint64_t endFingerprint = 0;

    /** Per-structure decomposition (TEA_SIM_DEBUG only). */
    std::vector<std::pair<const char *, std::uint64_t>> warmupParts;
    std::vector<std::pair<const char *, std::uint64_t>> endParts;
    CoreStats warmupStats;       ///< snapshot at the warmup/main boundary
    SimPerf warmupPerf;
    CoreStats endStats;
    SimPerf endPerf;
};

/** Worker/stitcher rendezvous: in-order claims, bounded in-flight. */
struct SimShared
{
    Mutex mu;
    CondVar cv;
    std::vector<std::unique_ptr<IntervalResult>> results
        TEA_GUARDED_BY(mu);
    std::uint64_t nextClaim TEA_GUARDED_BY(mu) = 0;
    std::uint64_t taken TEA_GUARDED_BY(mu) = 0;
    bool aborted TEA_GUARDED_BY(mu) = false;
};

/** Inputs shared by every worker (all read-only during the run). */
struct SimPlan
{
    const CoreConfig *cfg = nullptr;
    const Program *prog = nullptr;
    const ArchState *initial = nullptr;
    const CheckpointPlan *plan = nullptr;
    std::uint64_t intervals = 0; ///< K
    std::uint64_t intervalUops = 0;
    std::uint64_t warmupUops = 0;
    std::uint64_t maxInFlight = 0;
};

/**
 * Simulate interval @p j in local coordinates: build a core at the
 * interval's checkpoint (worker 0: the true initial state), run the
 * warmup leg with capture, snapshot, then run the main leg to the
 * interval's committed-uop boundary (the final interval: to halt).
 */
std::unique_ptr<IntervalResult>
simulateInterval(const SimPlan &sp, std::uint64_t j)
{
    auto res = std::make_unique<IntervalResult>();
    res->index = j;
    const bool last = (j + 1 == sp.intervals);
    res->run.capture = std::make_unique<CaptureSink>();

    if (j == 0) {
        // Worker 0 needs no warmup: it starts from the true initial
        // state, so its stream is the serial stream by construction.
        res->run.core = std::make_unique<Core>(*sp.cfg, *sp.prog,
                                               ArchState(*sp.initial));
        res->run.core->addSink(res->run.capture.get());
        res->run.core->runUntilCommitted(
            last ? ~std::uint64_t(0) : sp.intervalUops, kLegMaxCycles);
        res->mainBegin = 0;
        res->warmupEndCycle = 0;
        // warmupStats/~Perf stay zero-initialized: the whole leg is
        // accepted stream.
    } else {
        const ArchCheckpoint &ck = sp.plan->checkpoints[j - 1];
        tea_assert(ck.uops == j * sp.intervalUops - sp.warmupUops,
                   "checkpoint %llu at uop %llu, expected %llu",
                   static_cast<unsigned long long>(j),
                   static_cast<unsigned long long>(ck.uops),
                   static_cast<unsigned long long>(j * sp.intervalUops -
                                                   sp.warmupUops));
        res->run.deltaSeq = ck.uops;
        ArchState st = materializeState(*sp.initial, *sp.plan, ck);
        res->run.core = std::make_unique<Core>(*sp.cfg, *sp.prog,
                                               std::move(st), ck.pc,
                                               ck.uops,
                                               ck.predictor.get());
        // Functional cache warming: replay the checkpoint's recorded
        // access stream so tags/LRU/TLBs start near serial state and
        // the timing warmup leg only has to converge the residue.
        res->run.core->warmFromCheckpoint(ck);
        res->run.core->addSink(res->run.capture.get());

        // Warmup leg: converge the cold microarchitectural state.
        // Events are captured for the convergence check but never
        // delivered downstream (the suppressed-emission contract).
        res->run.core->runUntilCommitted(sp.warmupUops, kLegMaxCycles);
        res->warmupEndCycle = res->run.core->cycle() - 1;
        res->warmupStats = res->run.core->stats();
        res->warmupPerf = res->run.core->perf();
        res->warmupFingerprint = res->run.core->stateFingerprint();
        if (std::getenv("TEA_SIM_DEBUG"))
            res->warmupParts = res->run.core->stateFingerprintParts();

        // Main leg: local target = interval end minus checkpoint base.
        const std::uint64_t target =
            last ? ~std::uint64_t(0)
                 : (j + 1) * sp.intervalUops - ck.uops;
        res->run.core->runUntilCommitted(target, kLegMaxCycles);
        res->mainBegin = firstStampAfter(res->run.capture->events, 0,
                                         res->run.capture->events.size(),
                                         res->warmupEndCycle);
    }

    res->endCycle = res->run.core->cycle() - 1;
    res->halted = res->run.core->halted();
    res->endStats = res->run.core->stats();
    res->endPerf = res->run.core->perf();
    res->endFingerprint = res->run.core->stateFingerprint();
    if (std::getenv("TEA_SIM_DEBUG"))
        res->endParts = res->run.core->stateFingerprintParts();
    return res;
}

void
workerLoop(const SimPlan &sp, SimShared &sh)
{
    for (;;) {
        std::uint64_t j;
        {
            MutexLock lock(sh.mu);
            while (!sh.aborted && sh.nextClaim < sp.intervals &&
                   sh.nextClaim >= sh.taken + sp.maxInFlight)
                sh.cv.wait(sh.mu);
            if (sh.aborted || sh.nextClaim >= sp.intervals)
                return;
            j = sh.nextClaim++;
        }
        std::unique_ptr<IntervalResult> res;
        try {
            res = simulateInterval(sp, j);
        } catch (const std::exception &e) {
            res = std::make_unique<IntervalResult>();
            res->index = j;
            res->failed = true;
            res->error = e.what();
        }
        {
            MutexLock lock(sh.mu);
            sh.results[j] = std::move(res);
            sh.cv.notify_all();
        }
    }
}

/** Everything the stitcher carries between intervals. */
struct StitchState
{
    std::vector<TraceSink *> sinks;
    ParkedRun parked;           ///< previous interval's core, kept alive
    Cycle absLast = 0;          ///< absolute stamp of the accepted end
    std::vector<TraceEvent> tail; ///< accepted suffix, absolute coords
    CoreStats stats;
    SimPerf perf;
    std::uint64_t warmupCycles = 0;
    std::uint64_t retries = 0;
    std::uint64_t parallelCycles = 0; ///< cycles from accepted workers
    Cycle maxWarmupSpan = 0; ///< largest warmup span observed so far
    bool halted = false;
    /** Latent-state fingerprint of the parked core at the accepted
     *  boundary — what the next worker's warmup must reproduce. */
    std::uint64_t parkedFingerprint = 0;
    /** Its decomposition (TEA_SIM_DEBUG only). */
    std::vector<std::pair<const char *, std::uint64_t>> parkedParts;
};

/** Trim st.tail to the stamps within the retained check window. */
void
trimTail(StitchState &st)
{
    // Until a worker result has shown how many cycles a warmup leg
    // spans, keep everything: the first boundary must be checkable
    // over the worker's full warmup stream.
    if (st.tail.empty() || st.maxWarmupSpan == 0)
        return;
    const Cycle keep =
        std::max(kMinTailCycles, kTailSpanMultiple * st.maxWarmupSpan);
    if (st.absLast < keep)
        return; // whole accepted stream still within the window
    const std::size_t cut =
        firstStampAfter(st.tail, 0, st.tail.size(), st.absLast - keep);
    st.tail.erase(st.tail.begin(),
                  st.tail.begin() + static_cast<std::ptrdiff_t>(cut));
}

/**
 * Accept @p n events starting at @p evs as the next piece of the
 * serial stream: rebase them in place to absolute coordinates, deliver
 * to the sinks, and extend the retained tail.
 */
void
acceptEvents(StitchState &st, TraceEvent *evs, std::size_t n,
             std::int64_t dcycle, std::uint64_t dseq)
{
    for (std::size_t i = 0; i < n; ++i)
        rebaseEvent(evs[i], dcycle, dseq);
    deliverRange(evs, n, st.sinks);
    st.tail.insert(st.tail.end(), evs, evs + n);
}

/**
 * How many cycles of @p res's warmup stream, walking backwards from
 * the interval boundary, reproduce the accepted serial stream? The
 * boundary is end-aligned by construction (committed-uop counts), so
 * the two streams are paired from the boundary backwards and compared
 * after rebasing. A worker is converged when this matched suffix is
 * long enough (see convergedWindow); the early part of the warmup leg
 * is *expected* to diverge — that is the cold start the warmup
 * exists to absorb. A matching suffix alone cannot prove latent
 * long-memory state (cache LRU depths the boundary window never
 * exercises), so acceptance additionally requires the worker's state
 * fingerprint to equal the predecessor's (Core::stateFingerprint);
 * the TEA_SIM_PARALLEL=verify oracle remains the end-to-end guarantee
 * for whatever neither leg covers.
 *
 * @return pair of (matched suffix length in cycles, overlap length in
 *         cycles); the overlap is the window both sides cover.
 */
std::pair<Cycle, Cycle>
matchedSuffix(const StitchState &st, const IntervalResult &res)
{
    const std::vector<TraceEvent> &wev = res.run.capture->events;

    const Cycle serialSpan = st.tail.empty()
                                 ? 0
                                 : st.absLast - eventStamp(st.tail.front()) + 1;
    const Cycle warmupSpan = res.warmupEndCycle + 1;
    const Cycle window = std::min(serialSpan, warmupSpan);
    if (window == 0)
        return {0, 0};

    const std::int64_t dcycle = static_cast<std::int64_t>(st.absLast) -
                                static_cast<std::int64_t>(res.warmupEndCycle);
    const std::size_t maxPairs = std::min(st.tail.size(), res.mainBegin);
    std::size_t i = 0;
    while (i < maxPairs) {
        TraceEvent ev = wev[res.mainBegin - 1 - i];
        rebaseEvent(ev, dcycle, res.run.deltaSeq);
        if (!eventsEquivalent(st.tail[st.tail.size() - 1 - i], ev))
            break;
        ++i;
    }
    if (std::getenv("TEA_SIM_DEBUG2") && i < maxPairs) {
        for (std::size_t k = (i > 2 ? i - 2 : 0);
             k <= i + 5 && k < maxPairs; ++k) {
            const TraceEvent &se = st.tail[st.tail.size() - 1 - k];
            TraceEvent we = wev[res.mainBegin - 1 - k];
            rebaseEvent(we, dcycle, res.run.deltaSeq);
            std::fprintf(stderr,
                         "tea-sim:   pair %zu serial k=%d c=%llu "
                         "seq=%llu pc=%u | warm k=%d c=%llu seq=%llu "
                         "pc=%u%s\n",
                         k, (int)se.kind,
                         (unsigned long long)eventStamp(se),
                         (unsigned long long)(se.kind ==
                                                      TraceEventKind::Retire
                                                  ? se.p.retire.seq
                                                  : se.p.uop.seq),
                         se.kind == TraceEventKind::Retire ? se.p.retire.pc
                                                          : se.p.uop.pc,
                         (int)we.kind,
                         (unsigned long long)eventStamp(we),
                         (unsigned long long)(we.kind ==
                                                      TraceEventKind::Retire
                                                  ? we.p.retire.seq
                                                  : we.p.uop.seq),
                         we.kind == TraceEventKind::Retire ? we.p.retire.pc
                                                          : we.p.uop.pc,
                         k == i ? "  <-- first diff" : "");
        }
    }
    if (i == 0)
        return {0, window};
    if (i == maxPairs)
        return {window, window}; // the whole overlap matched
    const Cycle earliest = eventStamp(st.tail[st.tail.size() - i]);
    return {st.absLast - earliest, window};
}

/**
 * The matched-suffix length (in cycles) required to accept a worker
 * interval, given the overlap both streams cover. One eighth of the
 * overlap, floored at kMinTailCycles: the suffix leg only has to
 * prove that pipeline-visible state converged and stayed locked —
 * thousands of cycles against a pipeline whose deepest structure
 * holds a few hundred — because the latent long-memory state (cache
 * LRU depths, TLBs, store sets) is covered by the mandatory
 * fingerprint leg of the acceptance, which no output window of any
 * length can prove.
 */
Cycle
convergedWindow(Cycle overlap)
{
    return std::min(overlap, std::max(kMinTailCycles, overlap / 8));
}

/**
 * Redo interval @p j serially on the parked predecessor core — an
 * exact continuation of the accepted stream by construction.
 */
void
retrySerially(const SimPlan &sp, StitchState &st, std::uint64_t j)
{
    ++st.retries;
    ParkedRun &run = st.parked;
    tea_assert(run.core != nullptr, "no parked core for serial retry");

    const bool last = (j + 1 == sp.intervals);
    const CoreStats statsBefore = run.core->stats();
    const SimPerf perfBefore = run.core->perf();
    run.capture->events.clear();

    // Local target: the interval's absolute uop boundary minus this
    // core's seq base (its local seq count is its committed count).
    const std::uint64_t target =
        last ? ~std::uint64_t(0)
             : (j + 1) * sp.intervalUops - run.deltaSeq;
    run.core->runUntilCommitted(target, kLegMaxCycles);

    std::vector<TraceEvent> &evs = run.capture->events;
    acceptEvents(st, evs.data(), evs.size(), run.deltaCycle, run.deltaSeq);
    st.absLast = static_cast<Cycle>(
        static_cast<std::int64_t>(run.core->cycle() - 1) + run.deltaCycle);
    statsAccum(st.stats, statsDelta(run.core->stats(), statsBefore));
    perfAccum(st.perf, perfDelta(run.core->perf(), perfBefore));
    st.halted = run.core->halted();
    st.parkedFingerprint = run.core->stateFingerprint();
    if (std::getenv("TEA_SIM_DEBUG"))
        st.parkedParts = run.core->stateFingerprintParts();
    evs.clear();
    trimTail(st);
}

/** Accept interval @p j from worker result @p res. */
void
acceptWorker(StitchState &st, IntervalResult &res)
{
    std::vector<TraceEvent> &evs = res.run.capture->events;
    const std::int64_t dcycle = static_cast<std::int64_t>(st.absLast) -
                                static_cast<std::int64_t>(res.warmupEndCycle);
    res.run.deltaCycle = dcycle;
    acceptEvents(st, evs.data() + res.mainBegin, evs.size() - res.mainBegin,
                 dcycle, res.run.deltaSeq);
    st.absLast =
        static_cast<Cycle>(static_cast<std::int64_t>(res.endCycle) + dcycle);
    statsAccum(st.stats, statsDelta(res.endStats, res.warmupStats));
    perfAccum(st.perf, perfDelta(res.endPerf, res.warmupPerf));
    st.parallelCycles += res.endCycle - res.warmupEndCycle;
    st.halted = res.halted;
    st.parkedFingerprint = res.endFingerprint;
    st.parkedParts = std::move(res.endParts);
    evs.clear();
    evs.shrink_to_fit();
    trimTail(st);
    // The worker's core replaces the parked predecessor.
    st.parked = std::move(res.run);
}

/**
 * Structural screen before the convergence check: the worker must have
 * produced a stream that cleanly spans its interval.
 */
bool
structurallySound(const SimPlan &sp, const IntervalResult &res)
{
    if (res.failed)
        return false;
    const bool last = (res.index + 1 == sp.intervals);
    if (last) {
        // The final interval must run to the program's halt.
        if (!res.halted)
            return false;
    } else {
        // A non-final interval must reach its uop boundary unhalted.
        if (res.halted)
            return false;
        const std::uint64_t target =
            (res.index + 1) * sp.intervalUops - res.run.deltaSeq;
        if (res.endStats.committedUops < target)
            return false;
    }
    // The warmup leg must not have halted (committed count below the
    // warmup target means the budget ran out mid-warmup).
    if (res.index > 0 && res.warmupStats.committedUops < sp.warmupUops)
        return false;
    return true;
}

/** Serial reference path shared by the fallback and the oracle. */
void
runSerialReference(const CoreConfig &cfg, const Program &prog,
                   const ArchState &initial,
                   const std::vector<TraceSink *> &sinks,
                   CoreStats *stats_out, SimPerf *perf_out)
{
    Core core(cfg, prog, ArchState(initial));
    for (TraceSink *sink : sinks)
        core.addSink(sink);
    core.run();
    *stats_out = core.stats();
    *perf_out = core.perf();
}

/** Functional instruction count to halt; 0 when the budget ran out. */
std::uint64_t
countUopsToHalt(const Program &prog, const ArchState &initial,
                std::uint64_t max_uops)
{
    ArchState st = initial;
    InstIndex pc = prog.entry();
    std::uint64_t count = 0;
    while (count < max_uops) {
        ExecResult er = execute(prog, pc, st);
        ++count;
        if (er.halted)
            return count;
        pc = er.nextPc;
    }
    return 0;
}

/**
 * The time-parallel path proper. Returns false when the plan turned
 * out unusable (pre-pass did not halt / too short to split) and the
 * caller should run serially instead; on success fills everything.
 */
bool
runTimeParallel(const CoreConfig &cfg, const Program &prog,
                const ArchState &initial, const TimeParallelOptions &opts,
                unsigned threads, const std::vector<TraceSink *> &sinks,
                CoreStats *stats_out, SimPerf *perf_out,
                TimeParallelStats *tp)
{
    // Resolve the interval geometry. An explicit TEA_SIM_INTERVAL is
    // taken as-is; otherwise one interval per worker, floored so the
    // warmup prefix stays a fraction of the interval.
    std::uint64_t warmup = std::max<std::uint64_t>(1, opts.warmupUops);
    std::uint64_t interval = opts.intervalUops;
    constexpr std::uint64_t kPrePassBudget = 1ULL << 33;
    if (interval == 0) {
        const std::uint64_t total =
            countUopsToHalt(prog, initial, kPrePassBudget);
        if (total == 0)
            return false; // does not halt in budget; serial owns it
        interval = std::max<std::uint64_t>(2 * warmup,
                                           (total + threads - 1) / threads);
    }
    if (interval < 2)
        return false;
    if (warmup >= interval)
        warmup = interval / 2; // >= 1 because interval >= 2

    CheckpointPlan plan = buildCheckpoints(prog, initial, interval, warmup,
                                           kPrePassBudget, &cfg);
    if (!plan.halted)
        return false;
    const std::uint64_t K =
        (plan.totalUops + interval - 1) / interval;
    if (K < 2)
        return false;
    tea_assert(plan.checkpoints.size() >= K - 1,
               "plan has %zu checkpoints for %llu intervals",
               plan.checkpoints.size(), static_cast<unsigned long long>(K));

    SimPlan sp;
    sp.cfg = &cfg;
    sp.prog = &prog;
    sp.initial = &initial;
    sp.plan = &plan;
    sp.intervals = K;
    sp.intervalUops = interval;
    sp.warmupUops = warmup;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::uint64_t>(threads, K));
    sp.maxInFlight = workers + 1;

    SimShared sh;
    {
        MutexLock lock(sh.mu);
        sh.results.resize(K);
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        // workerLoop catches per-interval exceptions itself and turns
        // them into failed IntervalResults (the stitcher owns the
        // diagnostic); what remains in the body is lock/wait/move,
        // which is noexcept in practice.
        // tea_lint: allow(unguarded-worker)
        pool.emplace_back([&sp, &sh] { workerLoop(sp, sh); });

    StitchState st;
    st.sinks = sinks;
    std::string failure;
    try {
        for (std::uint64_t j = 0; j < K; ++j) {
            std::unique_ptr<IntervalResult> res;
            {
                MutexLock lock(sh.mu);
                while (!sh.results[j])
                    sh.cv.wait(sh.mu);
                res = std::move(sh.results[j]);
                sh.taken = j + 1;
                sh.cv.notify_all();
            }
            if (res->index > 0 && !res->failed) {
                st.warmupCycles += res->warmupEndCycle + 1;
                st.maxWarmupSpan =
                    std::max(st.maxWarmupSpan, res->warmupEndCycle + 1);
            }

            if (j == 0) {
                if (res->failed)
                    throw std::runtime_error("time-parallel worker 0: " +
                                             res->error);
                // Worker 0 is the serial prefix: always accepted, with
                // a zero delta on both axes. Its leg includes cycle 0,
                // which endCycle - warmupEndCycle undercounts by one.
                st.parallelCycles += 1;
                acceptWorker(st, *res);
                continue;
            }
            const bool sound = structurallySound(sp, *res);
            Cycle matched = 0;
            Cycle overlap = 0;
            if (sound)
                std::tie(matched, overlap) = matchedSuffix(st, *res);
            const Cycle required = convergedWindow(overlap);
            // Two-leg acceptance: the output suffix near the boundary
            // must match (pipeline-visible state), and the latent
            // memory/ordering state must hash identically to the
            // predecessor's at the same committed-uop boundary (the
            // state no output window can prove).
            const bool stateMatch =
                sound && res->warmupFingerprint == st.parkedFingerprint;
            const bool converged = stateMatch && matched >= required;
            if (std::getenv("TEA_SIM_DEBUG"))
                std::fprintf(stderr,
                             "tea-sim: interval %llu %s (sound=%d "
                             "state=%d matched=%llu/%llu required=%llu "
                             "warmupEnd=%llu end=%llu absLast=%llu)\n",
                             static_cast<unsigned long long>(j),
                             converged ? "accepted" : "retried", sound,
                             stateMatch,
                             static_cast<unsigned long long>(matched),
                             static_cast<unsigned long long>(overlap),
                             static_cast<unsigned long long>(required),
                             static_cast<unsigned long long>(
                                 res->warmupEndCycle),
                             static_cast<unsigned long long>(res->endCycle),
                             static_cast<unsigned long long>(st.absLast));
            if (std::getenv("TEA_SIM_DEBUG") && sound && !stateMatch &&
                res->warmupParts.size() == st.parkedParts.size()) {
                for (std::size_t p = 0; p < res->warmupParts.size(); ++p)
                    if (res->warmupParts[p].second !=
                        st.parkedParts[p].second)
                        std::fprintf(stderr,
                                     "tea-sim:   state diff: %s\n",
                                     res->warmupParts[p].first);
            }
            if (converged)
                acceptWorker(st, *res);
            else
                retrySerially(sp, st, j);
        }
    } catch (...) {
        {
            MutexLock lock(sh.mu);
            sh.aborted = true;
            sh.cv.notify_all();
        }
        for (std::thread &t : pool)
            t.join();
        throw;
    }
    {
        MutexLock lock(sh.mu);
        sh.aborted = true;
        sh.cv.notify_all();
    }
    for (std::thread &t : pool)
        t.join();

    tea_assert(st.halted, "time-parallel simulation did not halt");
    tea_assert(st.stats.cycles == st.absLast + 1,
               "stitched cycle count %llu != final cycle %llu",
               static_cast<unsigned long long>(st.stats.cycles),
               static_cast<unsigned long long>(st.absLast + 1));

    *stats_out = st.stats;
    *perf_out = st.perf;
    tp->usedParallel = true;
    tp->intervals = K;
    tp->warmupCycles = st.warmupCycles;
    tp->convergenceRetries = st.retries;
    tp->parallelEfficiency =
        st.stats.cycles
            ? static_cast<double>(st.parallelCycles) /
                  static_cast<double>(st.stats.cycles)
            : 0.0;
    return true;
}

/** Hash sink: fingerprints the stream through the canonical codec. */
class FingerprintSink
{
  public:
    FingerprintSink()
        : sink_(4096, [this](TraceChunkPtr chunk) {
              frame_.clear();
              encodeChunk(*chunk, frame_);
              hash_.addBytes(frame_.data(), frame_.size());
              ++chunks_;
          })
    {
    }

    ChunkingSink *sink() { return &sink_; }

    std::uint64_t finishAndValue()
    {
        sink_.finish();
        return hash_.value();
    }

    std::uint64_t events() const { return sink_.eventsCaptured(); }
    std::uint64_t chunks() const { return chunks_; }

  private:
    ChunkingSink sink_;
    std::vector<std::uint8_t> frame_;
    Fnv1a hash_;
    std::uint64_t chunks_ = 0;
};

} // namespace

TimeParallelOptions
TimeParallelOptions::fromEnv()
{
    TimeParallelOptions o;
    o.threads = static_cast<unsigned>(envU64("TEA_SIM_THREADS", o.threads));
    o.intervalUops = envU64("TEA_SIM_INTERVAL", o.intervalUops);
    o.warmupUops = envU64("TEA_SIM_WARMUP", o.warmupUops);
    if (const char *mode = std::getenv("TEA_SIM_PARALLEL")) {
        if (!std::strcmp(mode, "off") || !std::strcmp(mode, "0"))
            o.mode = SimParallelMode::Off;
        else if (!std::strcmp(mode, "on") || !std::strcmp(mode, "1"))
            o.mode = SimParallelMode::On;
        else if (!std::strcmp(mode, "verify"))
            o.mode = SimParallelMode::Verify;
        else
            tea_fatal("TEA_SIM_PARALLEL must be off|on|verify, got '%s'",
                      mode);
    }
    return o;
}

TimeParallelStats
simulateTimeParallel(const CoreConfig &cfg, const Program &prog,
                     const ArchState &initial,
                     const TimeParallelOptions &opts,
                     const std::vector<TraceSink *> &sinks,
                     CoreStats *stats_out, SimPerf *perf_out)
{
    TimeParallelStats tp;
    unsigned threads = opts.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }

    // Sampling interrupts fire on absolute cycles; a restarted interval
    // cannot know its absolute phase, so such configs stay serial.
    const bool viable = opts.wantsParallel() && threads > 1 &&
                        cfg.samplingInterruptPeriod == 0;
    if (!viable) {
        runSerialReference(cfg, prog, initial, sinks, stats_out, perf_out);
        return tp;
    }

    if (opts.mode != SimParallelMode::Verify) {
        if (!runTimeParallel(cfg, prog, initial, opts, threads, sinks,
                             stats_out, perf_out, &tp))
            runSerialReference(cfg, prog, initial, sinks, stats_out,
                               perf_out);
        return tp;
    }

    // Differential oracle: tee the stitched stream through the codec
    // fingerprint, then run the serial reference and compare.
    FingerprintSink fpPar;
    std::vector<TraceSink *> teed = sinks;
    teed.push_back(fpPar.sink());
    if (!runTimeParallel(cfg, prog, initial, opts, threads, teed, stats_out,
                         perf_out, &tp)) {
        runSerialReference(cfg, prog, initial, sinks, stats_out, perf_out);
        return tp;
    }
    const std::uint64_t parHash = fpPar.finishAndValue();

    FingerprintSink fpSer;
    CoreStats serStats;
    SimPerf serPerf;
    std::vector<TraceSink *> serSinks{fpSer.sink()};
    runSerialReference(cfg, prog, initial, serSinks, &serStats, &serPerf);
    const std::uint64_t serHash = fpSer.finishAndValue();

    if (parHash != serHash || fpPar.events() != fpSer.events() ||
        fpPar.chunks() != fpSer.chunks() ||
        !statsEqual(*stats_out, serStats))
        tea_fatal("TEA_SIM_PARALLEL=verify: stitched stream diverges from "
                  "serial reference (events %llu vs %llu, hash %016llx vs "
                  "%016llx, stats %s)",
                  static_cast<unsigned long long>(fpPar.events()),
                  static_cast<unsigned long long>(fpSer.events()),
                  static_cast<unsigned long long>(parHash),
                  static_cast<unsigned long long>(serHash),
                  statsEqual(*stats_out, serStats) ? "equal" : "DIFFER");
    return tp;
}

} // namespace tea
