/**
 * @file
 * TEA invariant auditor: a TraceSink that re-derives the conservation
 * laws a time-proportional cycle trace must obey and fails loudly —
 * naming the offending cycle and sequence number — when any is broken.
 *
 * A PICS is only trustworthy if every exposed cycle is conserved and
 * every PSV bit is justified; counter-based analyses are notorious for
 * silently drifting away from the microarchitectural truth they claim
 * to report. The auditor is the standing defence: threaded through
 * replay (TEA_AUDIT=1) it verifies, on every chunk, that
 *
 *  - cycle numbers are dense and monotonic (no dropped or duplicated
 *    cycle records),
 *  - every commit state is one of the paper's four states and its
 *    side-band fields are consistent with it (Compute iff uops
 *    committed, Stalled implies a valid ROB head, Drained/Flushed
 *    imply an empty ROB snapshot),
 *  - commit, retire, dispatch and fetch sequence numbers are monotone
 *    and respect pipeline order (nothing commits before dispatching,
 *    nothing dispatches before fetching; the ROB head never moves
 *    backwards),
 *  - the retire stream and the per-cycle commit snapshots describe the
 *    same instructions (same seq/pc/PSV, cycle-by-cycle) — the
 *    cross-check that catches a sink being fed a divergent trace,
 *  - every PSV is restricted to the nine architectural events, and
 *  - the end marker agrees with the number of cycles actually
 *    delivered.
 *
 * Cycle conservation at the PICS level (attributed cycles + dropped
 * tail == simulated cycles, exactly) and bit-identical Pics across
 * replay thread counts are verified by the free helpers below; the
 * runner invokes them after every audited experiment.
 */

#ifndef TEA_ANALYSIS_AUDIT_HH
#define TEA_ANALYSIS_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "profilers/pics.hh"

namespace tea {

class GoldenReference;

/** Runtime trace-invariant checker (see file comment). */
class InvariantAuditor : public TraceSink
{
  public:
    enum class Mode
    {
        Collect,  ///< record violations for inspection (tests)
        FailFast, ///< tea_fatal on the first violation (production)
    };

    explicit InvariantAuditor(Mode mode = Mode::FailFast);

    void onCycle(const CycleRecord &rec) override;
    void onDispatch(const UopRecord &rec) override;
    void onFetch(const UopRecord &rec) override;
    void onRetire(const RetireRecord &rec) override;
    void onEnd(Cycle final_cycle) override;

    /**
     * Final checks after the last event (idempotent): an audited trace
     * must have delivered at least one cycle and, if it saw an end
     * marker, nothing after it.
     */
    void finish();

    /** True when no invariant has been violated so far. */
    bool clean() const { return violations_.empty(); }

    /** Human-readable violations, in detection order (Collect mode). */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    std::uint64_t cyclesAudited() const { return cycles_; }
    std::uint64_t eventsAudited() const { return events_; }

  private:
    void report(const std::string &msg);
    bool checkPsv(const Psv &psv, const char *what, Cycle cycle,
                  SeqNum seq);

    Mode mode_;
    std::vector<std::string> violations_;

    std::uint64_t cycles_ = 0; ///< cycle records delivered
    std::uint64_t events_ = 0; ///< all events delivered

    bool sawCycle_ = false;
    Cycle lastCycle_ = 0;   ///< last cycle record's number
    bool sawEnd_ = false;
    Cycle endCycle_ = 0;

    bool sawCommit_ = false;   ///< lastValid must be monotone
    SeqNum lastCommitSeq_ = 0; ///< youngest committed seq so far
    bool sawHead_ = false;
    SeqNum lastHeadSeq_ = 0; ///< ROB head must be monotone

    bool sawDispatch_ = false;
    SeqNum lastDispatchSeq_ = 0;
    bool sawFetch_ = false;
    SeqNum lastFetchSeq_ = 0;
    bool sawRetire_ = false;
    SeqNum lastRetireSeq_ = 0;

    /** Retires since the previous cycle record, awaiting cross-check. */
    std::vector<RetireRecord> pendingRetires_;
};

/**
 * Cycle-conservation law (the heart of time-proportionality): the
 * golden reference must attribute *exactly* @p total_cycles cycles —
 * pics().total() plus the unattributable tail pending at program end.
 * @return empty string when conserved, else a diagnostic
 */
std::string auditCycleConservation(const GoldenReference &golden,
                                   std::uint64_t total_cycles);

/**
 * Bit-identity of two Pics (same components, same cycle counts, with
 * no floating-point tolerance): the determinism contract of the replay
 * engine across thread counts and across the trace-cache codec.
 * @return empty string when identical, else a diagnostic naming the
 *         first differing (unit, signature) cell
 */
std::string auditPicsIdentical(const Pics &a, const Pics &b);

} // namespace tea

#endif // TEA_ANALYSIS_AUDIT_HH
