/**
 * @file
 * The related-work baselines the paper contrasts PICS against (§7):
 * application-level CPI stacks (Eyerman et al., ASPLOS'06) and the
 * top-down bottleneck classification (Yasin, ISPASS'14). Both are
 * computed here from the same golden trace, which makes the comparison
 * exact: they summarize the same cycles PICS attributes, but cannot say
 * *which instruction* is responsible.
 */

#ifndef TEA_ANALYSIS_CPI_STACK_HH
#define TEA_ANALYSIS_CPI_STACK_HH

#include <array>
#include <string>

#include "core/core.hh"
#include "profilers/golden.hh"

namespace tea {

/** Application-level cycles-per-instruction stack. */
struct CpiStack
{
    double baseCpi = 0.0;    ///< compute + event-free cycles / inst
    std::array<double, numEvents> eventCpi{}; ///< per-event stall CPI
    std::uint64_t instructions = 0;

    /** Total CPI (sums base and all event components). */
    double total() const;

    /** Render as an ASCII table. */
    std::string render() const;
};

/**
 * Build the application CPI stack from the golden PICS: cycles of
 * components whose signature contains an event are split evenly across
 * the events in the signature (the conventional CPI-stack accounting);
 * event-free cycles form the base component.
 */
CpiStack cpiStackFrom(const GoldenReference &golden,
                      const CoreStats &stats);

/** Top-down first-level classification (fractions sum to 1). */
struct TopDown
{
    double retiring = 0.0;      ///< Compute cycles
    double backEndBound = 0.0;  ///< Stalled cycles
    double frontEndBound = 0.0; ///< Drained cycles
    double badSpeculation = 0.0; ///< Flushed cycles

    /** Name of the dominant category. */
    const char *dominant() const;

    /** Render as a one-line summary. */
    std::string render() const;
};

/** Classify from the commit-state cycle counts. */
TopDown topDownFrom(const CoreStats &stats);

} // namespace tea

#endif // TEA_ANALYSIS_CPI_STACK_HH
