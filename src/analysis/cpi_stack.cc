#include "analysis/cpi_stack.hh"

#include "common/logging.hh"
#include "common/table.hh"

namespace tea {

double
CpiStack::total() const
{
    double t = baseCpi;
    for (double e : eventCpi)
        t += e;
    return t;
}

std::string
CpiStack::render() const
{
    Table t;
    t.header({"component", "CPI", "share"});
    double tot = total();
    t.row({"base", fmtDouble(baseCpi, 3),
           fmtPercent(tot > 0 ? baseCpi / tot : 0)});
    for (unsigned e = 0; e < numEvents; ++e) {
        if (eventCpi[e] <= 0.0)
            continue;
        t.row({eventName(static_cast<Event>(e)),
               fmtDouble(eventCpi[e], 3),
               fmtPercent(tot > 0 ? eventCpi[e] / tot : 0)});
    }
    t.separator();
    t.row({"total", fmtDouble(tot, 3), "100.0%"});
    return t.render();
}

CpiStack
cpiStackFrom(const GoldenReference &golden, const CoreStats &stats)
{
    CpiStack s;
    s.instructions = stats.committedUops;
    tea_assert(s.instructions > 0, "CPI stack of an empty run");
    double inv = 1.0 / static_cast<double>(s.instructions);
    for (const PicsComponent &c : golden.pics().components()) {
        Psv sig(c.signature);
        if (sig.empty()) {
            s.baseCpi += c.cycles * inv;
            continue;
        }
        double share = c.cycles * inv / sig.popcount();
        for (unsigned e = 0; e < numEvents; ++e) {
            if (sig.test(static_cast<Event>(e)))
                s.eventCpi[e] += share;
        }
    }
    return s;
}

const char *
TopDown::dominant() const
{
    const char *name = "retiring";
    double best = retiring;
    if (backEndBound > best) {
        best = backEndBound;
        name = "back-end bound";
    }
    if (frontEndBound > best) {
        best = frontEndBound;
        name = "front-end bound";
    }
    if (badSpeculation > best) {
        name = "bad speculation";
    }
    return name;
}

std::string
TopDown::render() const
{
    return strprintf("retiring %.1f%% | back-end %.1f%% | front-end "
                     "%.1f%% | bad speculation %.1f%%  -> %s",
                     100.0 * retiring, 100.0 * backEndBound,
                     100.0 * frontEndBound, 100.0 * badSpeculation,
                     dominant());
}

TopDown
topDownFrom(const CoreStats &stats)
{
    TopDown td;
    if (stats.cycles == 0)
        return td;
    double inv = 1.0 / static_cast<double>(stats.cycles);
    td.retiring = static_cast<double>(stats.stateCycles[static_cast<
                      unsigned>(CommitState::Compute)]) *
                  inv;
    td.backEndBound = static_cast<double>(stats.stateCycles[static_cast<
                          unsigned>(CommitState::Stalled)]) *
                      inv;
    td.frontEndBound = static_cast<double>(stats.stateCycles[static_cast<
                           unsigned>(CommitState::Drained)]) *
                       inv;
    td.badSpeculation = static_cast<double>(stats.stateCycles[static_cast<
                            unsigned>(CommitState::Flushed)]) *
                        inv;
    return td;
}

} // namespace tea
