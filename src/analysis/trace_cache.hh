/**
 * @file
 * Persistent trace cache: simulate each (workload, CoreConfig) pair
 * once, keep its full cycle trace on disk in the compact chunked format
 * (core/trace_io, core/trace_codec), and satisfy every later run of the
 * same pair by memory-mapping the cached file and replaying it —
 * techniques are pure observers (TEA §4), so a cached trace answers any
 * set of them, at any thread count, bit-identically.
 *
 * Entries are keyed by a content fingerprint of the workload (program
 * instructions, symbols, initial architectural state), the complete
 * CoreConfig, and the codec version — never by name alone, so two
 * workloads that share a name but differ in parameters (e.g. lbm with
 * different prefetch distances) can never alias. Stale, truncated or
 * corrupted entries fail validation on open and are transparently
 * re-simulated and rewritten via atomic rename.
 */

#ifndef TEA_ANALYSIS_TRACE_CACHE_HH
#define TEA_ANALYSIS_TRACE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/config.hh"
#include "core/trace_io.hh"
#include "workloads/workload.hh"

namespace tea {

/** Where (and whether) traces are cached. */
struct TraceCacheOptions
{
    bool enabled = false; ///< off unless explicitly requested
    std::string dir;      ///< cache directory (created on first use)

    /**
     * Controls from the environment:
     *  - TEA_TRACE_CACHE_DIR=<dir> enables caching into <dir>;
     *  - TEA_TRACE_CACHE=1 enables it into
     *    ${TMPDIR:-/tmp}/tea-trace-cache when no dir is given;
     *  - TEA_TRACE_CACHE=0 forces it off regardless.
     */
    static TraceCacheOptions fromEnv();
};

/**
 * One cache directory. Construction creates the directory (disabling
 * the cache with a warning on failure); all subsequent operations are
 * best-effort and never fatal — a broken cache degrades to simulating.
 */
class TraceCache
{
  public:
    explicit TraceCache(TraceCacheOptions opts);

    bool enabled() const { return opts_.enabled; }

    /**
     * Content fingerprint of a (workload, config) pair under the
     * current codec version.
     */
    static std::uint64_t fingerprintOf(const Workload &workload,
                                       const CoreConfig &cfg);

    /** Path of the entry for @p name with fingerprint @p fp. */
    std::string entryPath(const std::string &name,
                          std::uint64_t fp) const;

    /**
     * Open and fully validate the entry at @p path. Returns nullptr on
     * miss; a *damaged* entry (as opposed to a simply absent one)
     * additionally logs a warning naming the reason before falling
     * back.
     */
    std::unique_ptr<MappedTraceFile>
    openEntry(const std::string &path, std::uint64_t fp) const;

  private:
    TraceCacheOptions opts_;
};

} // namespace tea

#endif // TEA_ANALYSIS_TRACE_CACHE_HH
