/**
 * @file
 * Persistent trace cache: simulate each (workload, CoreConfig) pair
 * once, keep its full cycle trace on disk in the compact chunked format
 * (core/trace_io, core/trace_codec), and satisfy every later run of the
 * same pair by memory-mapping the cached file and replaying it —
 * techniques are pure observers (TEA §4), so a cached trace answers any
 * set of them, at any thread count, bit-identically.
 *
 * Entries are keyed by a content fingerprint of the workload (program
 * instructions, symbols, initial architectural state), the complete
 * CoreConfig, and the codec version — never by name alone, so two
 * workloads that share a name but differ in parameters (e.g. lbm with
 * different prefetch distances) can never alias. Stale, truncated or
 * corrupted entries fail validation on open and are transparently
 * re-simulated and rewritten via atomic rename.
 */

#ifndef TEA_ANALYSIS_TRACE_CACHE_HH
#define TEA_ANALYSIS_TRACE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/retry.hh"
#include "core/config.hh"
#include "core/trace_io.hh"
#include "workloads/workload.hh"

namespace tea {

/**
 * Outcome counters of one cache operation, merged into ReplayStats by
 * the runner (see DESIGN.md, "Failure model and recovery").
 */
struct CacheOpStats
{
    RetryStats retry;              ///< transient-I/O retries/recoveries
    std::uint64_t quarantined = 0; ///< damaged entries moved aside
    bool damaged = false; ///< an entry existed but failed validation
};

/** Where (and whether) traces are cached. */
struct TraceCacheOptions
{
    bool enabled = false; ///< off unless explicitly requested
    std::string dir;      ///< cache directory (created on first use)

    /**
     * Controls from the environment:
     *  - TEA_TRACE_CACHE_DIR=<dir> enables caching into <dir>;
     *  - TEA_TRACE_CACHE=1 enables it into
     *    ${TMPDIR:-/tmp}/tea-trace-cache when no dir is given;
     *  - TEA_TRACE_CACHE=0 forces it off regardless.
     */
    static TraceCacheOptions fromEnv();
};

/**
 * One cache directory. Construction creates the directory (disabling
 * the cache with a warning on failure); all subsequent operations are
 * best-effort and never fatal — a broken cache degrades to simulating.
 */
class TraceCache
{
  public:
    explicit TraceCache(TraceCacheOptions opts);

    bool enabled() const { return opts_.enabled; }

    /** The options this cache was built with (dir for the janitor). */
    const TraceCacheOptions &options() const { return opts_; }

    /**
     * Content fingerprint of a (workload, config) pair under the
     * current codec version.
     */
    static std::uint64_t fingerprintOf(const Workload &workload,
                                       const CoreConfig &cfg);

    /** Path of the entry for @p name with fingerprint @p fp. */
    std::string entryPath(const std::string &name,
                          std::uint64_t fp) const;

    /**
     * Open and fully validate the entry at @p path. Returns nullptr on
     * miss. Transient open/stat/mmap errors are retried with capped
     * backoff; a *damaged* entry (as opposed to a simply absent one)
     * logs a warning naming the reason, is quarantined out of the
     * cache, and @p ops->damaged is set so the caller can rewrite it.
     * A successful open bumps the entry's mtime (best effort), which
     * is the last-use order the janitor's size-budget eviction walks
     * (analysis/cache_janitor).
     */
    std::unique_ptr<MappedTraceFile> openEntry(const std::string &path,
                                               std::uint64_t fp,
                                               CacheOpStats *ops) const;

    /** Convenience overload that discards the operation counters. */
    std::unique_ptr<MappedTraceFile>
    openEntry(const std::string &path, std::uint64_t fp) const
    {
        return openEntry(path, fp, nullptr);
    }

    /**
     * Move the damaged entry at @p path into <dir>/quarantine/ under a
     * unique name, next to a .reason file recording @p reason, so it
     * can be inspected later but can never be opened as a cache entry
     * again. Falls back to unlinking the entry (and removing the
     * already-written .reason note) when the quarantine move itself
     * fails. Quarantine space is reclaimed by janitor passes
     * (analysis/cache_janitor): entries age out and the directory is
     * capped by count, so repeated damage can never grow it without
     * bound. @return true when the entry was moved
     */
    bool quarantineEntry(const std::string &path,
                         const std::string &reason) const;

    /** Directory damaged entries are moved into. */
    std::string quarantineDir() const { return opts_.dir + "/quarantine"; }

    /**
     * Advisory lock file guarding the (re)write of @p entry_path
     * against concurrent processes (see common/file_lock).
     */
    static std::string lockPathFor(const std::string &entry_path)
    {
        return entry_path + ".lock";
    }

  private:
    TraceCacheOptions opts_;
};

} // namespace tea

#endif // TEA_ANALYSIS_TRACE_CACHE_HH
