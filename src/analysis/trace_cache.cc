#include "analysis/trace_cache.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "core/trace_codec.hh"

namespace tea {

namespace {

// Fault-injection seams (see common/failpoint and DESIGN.md, "Failure
// model and recovery"). The fingerprint seam perturbs the key instead
// of erroring: a perturbed key is still self-consistent within the run,
// so it exercises the forced-miss/stale paths without corrupting state.
Failpoint fpCacheMkdir("trace_cache.mkdir", EACCES);
Failpoint fpCacheStat("trace_cache.stat", EIO);
Failpoint fpFingerprint("trace_cache.fingerprint", 0);
Failpoint fpQuarantine("trace_cache.quarantine", EACCES);
Failpoint fpCacheTouch("trace_cache.touch", EACCES);

std::string
defaultCacheDir()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    if (base.back() == '/')
        base.pop_back();
    return base + "/tea-trace-cache";
}

/**
 * mkdir -p: create @p dir and any missing parents. Returns false (with
 * errno set) on the first failure other than "already exists".
 */
bool
makeDirs(const std::string &dir)
{
    std::string path;
    path.reserve(dir.size());
    std::size_t i = 0;
    while (i < dir.size()) {
        std::size_t slash = dir.find('/', i + 1);
        if (slash == std::string::npos)
            slash = dir.size();
        path.assign(dir, 0, slash);
        i = slash;
        if (path.empty())
            continue;
        // Cache-setup primitive; every caller degrades (warns and
        // disables caching) instead of retrying.
        // tea_check: allow(raw-io)
        if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/** Keep entry names shell- and filesystem-safe. */
std::string
sanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        out.push_back(ok ? c : '_');
    }
    if (out.empty())
        out = "workload";
    return out;
}

} // namespace

TraceCacheOptions
TraceCacheOptions::fromEnv()
{
    TraceCacheOptions opts;
    if (const char *dir = std::getenv("TEA_TRACE_CACHE_DIR");
        dir != nullptr && *dir != '\0') {
        opts.enabled = true;
        opts.dir = dir;
    }
    if (const char *env = std::getenv("TEA_TRACE_CACHE");
        env != nullptr && *env != '\0') {
        if (std::strcmp(env, "0") == 0) {
            opts.enabled = false;
        } else if (std::strcmp(env, "1") == 0) {
            opts.enabled = true;
        } else {
            tea_fatal("TEA_TRACE_CACHE must be 0 or 1, got \"%s\"", env);
        }
    }
    if (opts.enabled && opts.dir.empty())
        opts.dir = defaultCacheDir();
    return opts;
}

TraceCache::TraceCache(TraceCacheOptions opts) : opts_(std::move(opts))
{
    if (!opts_.enabled)
        return;
    bool made = !opts_.dir.empty() && makeDirs(opts_.dir);
    if (made && TEA_FAILPOINT(fpCacheMkdir)) {
        errno = fpCacheMkdir.failErrno();
        made = false;
    }
    if (!made) {
        tea_warn("trace cache: cannot create directory \"%s\" (%s); "
                 "caching disabled",
                 opts_.dir.c_str(), errnoString(errno).c_str());
        opts_.enabled = false;
    }
}

std::uint64_t
TraceCache::fingerprintOf(const Workload &workload, const CoreConfig &cfg)
{
    Fnv1a h;
    h.add(std::uint64_t{traceCodecVersion});

    // Program: every static instruction plus the code layout that the
    // I-side timing model sees.
    const Program &prog = workload.program;
    h.add(prog.name());
    h.add(prog.codeBase());
    h.add(std::uint64_t{prog.entry()});
    h.add(std::uint64_t{prog.size()});
    for (const StaticInst &inst : prog.insts()) {
        h.add(static_cast<std::uint64_t>(inst.op));
        h.add(std::uint64_t{inst.rd});
        h.add(std::uint64_t{inst.rs1});
        h.add(std::uint64_t{inst.rs2});
        h.addSigned(inst.imm);
        h.add(std::uint64_t{inst.target});
    }
    // Symbols affect nothing in the trace itself but are cheap to hash
    // and keep PSV/function attribution honest if they ever do.
    for (const Symbol &sym : prog.functions()) {
        h.add(sym.name);
        h.add(std::uint64_t{sym.begin});
        h.add(std::uint64_t{sym.end});
    }

    // Initial architectural state.
    for (std::uint64_t r : workload.initial.regs)
        h.add(r);
    h.add(workload.initial.mem.contentHash());

    hashConfig(h, cfg);
    std::uint64_t fp = h.value();
    // Deterministic perturbation: the run still agrees with itself on
    // the key, but it can never match (or be matched by) a healthy run,
    // which forces the miss/stale-entry machinery to engage.
    if (TEA_FAILPOINT(fpFingerprint))
        fp ^= 1;
    return fp;
}

std::string
TraceCache::entryPath(const std::string &name, std::uint64_t fp) const
{
    return opts_.dir + "/" + sanitizeName(name) + "-" + hashHex(fp) +
           ".teatrc";
}

std::unique_ptr<MappedTraceFile>
TraceCache::openEntry(const std::string &path, std::uint64_t fp,
                      CacheOpStats *ops) const
{
    if (!opts_.enabled)
        return nullptr;
    struct ::stat st{};
    // Existence probe only; any failure degrades to a cache miss.
    // tea_check: allow(raw-io)
    int stat_rc = ::stat(path.c_str(), &st);
    if (stat_rc == 0 && TEA_FAILPOINT(fpCacheStat)) {
        errno = fpCacheStat.failErrno();
        stat_rc = -1;
    }
    if (stat_rc != 0)
        return nullptr; // plain miss: nothing cached yet (or unreadable
                        // — degrading to a miss is the safe answer)

    std::unique_ptr<MappedTraceFile> mapped;
    std::string why;
    int sys_err = 0;
    RetryStats local;
    RetryStats &retry = ops != nullptr ? ops->retry : local;
    RetryPolicy policy;
    retryTransient(policy, retry, [&] {
        mapped = MappedTraceFile::open(path, fp, &why, &sys_err);
        if (mapped == nullptr && sys_err != 0) {
            errno = sys_err; // let retryTransient classify it
            return false;
        }
        return true; // mapped, or a validation verdict retry can't fix
    });
    if (mapped != nullptr) {
        // Bump the entry's mtime so it records last *use*, not last
        // write: the janitor's size-budget eviction walks entries in
        // mtime order, and a hot entry that never gets rewritten must
        // not look like the coldest one. Best effort — a cache hit is
        // already in hand and a failed touch only skews eviction order.
        // tea_check: allow(raw-io)
        int touch_rc = ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
        if (touch_rc == 0 && TEA_FAILPOINT(fpCacheTouch)) {
            errno = fpCacheTouch.failErrno();
            touch_rc = -1;
        }
        if (touch_rc != 0)
            tea_warn("trace cache: cannot bump last-use time of %s (%s)",
                     path.c_str(), errnoString(errno).c_str());
        return mapped;
    }

    if (sys_err != 0) {
        // Syscall failure that survived the retries: degrade to a miss.
        tea_warn("trace cache: cannot open entry %s: %s", path.c_str(),
                 errnoString(sys_err).c_str());
        return nullptr;
    }
    if (!why.empty()) {
        // A reason with no errno means the file existed but failed
        // validation (corruption, truncation, stale codec/fingerprint):
        // warn, move it out of the way, and let the caller rewrite.
        tea_warn("trace cache: discarding entry %s: %s", path.c_str(),
                 why.c_str());
        if (ops != nullptr)
            ops->damaged = true;
        if (quarantineEntry(path, why) && ops != nullptr)
            ++ops->quarantined;
    }
    return nullptr;
}

bool
TraceCache::quarantineEntry(const std::string &path,
                            const std::string &reason) const
{
    if (!opts_.enabled)
        return false;

    // Unique destination name so repeated damage to the same entry
    // (or two racing processes) never collide; a losing rename just
    // means someone else already moved the file.
    static std::atomic<unsigned> seq{0};
    std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::string dest =
        strprintf("%s/%s.%ld.%u", quarantineDir().c_str(), base.c_str(),
                  static_cast<long>(::getpid()),
                  // relaxed: only uniqueness of the counter value
                  // matters, not ordering against any other memory.
                  seq.fetch_add(1, std::memory_order_relaxed));

    bool moved = makeDirs(quarantineDir());

    // Write the .reason note *before* moving the entry: a crash between
    // the two steps then leaves a reason with no entry (harmless, aged
    // out by the janitor) instead of a quarantined entry with no
    // explanation. Diagnostic convenience, best effort, no seams.
    const std::string reason_path = dest + ".reason";
    if (moved) {
        // tea_check: allow(raw-io)
        if (std::FILE *f = std::fopen(reason_path.c_str(), "w");
            f != nullptr) {
            // tea_check: allow(raw-io)
            std::fputs(reason.c_str(),
                       f); // tea_lint: allow(unchecked-io)
            // tea_check: allow(raw-io)
            std::fputc('\n', f); // tea_lint: allow(unchecked-io)
            // tea_lint: allow(unchecked-io) tea_check: allow(raw-io)
            std::fclose(f);
        }
    }

    if (moved && TEA_FAILPOINT(fpQuarantine)) {
        errno = fpQuarantine.failErrno();
        moved = false;
    }
    // Quarantine is already the failure path: a rename that fails
    // falls through to the unlink below, nothing to retry.
    // tea_check: allow(raw-io)
    moved = moved && std::rename(path.c_str(), dest.c_str()) == 0;
    if (!moved) {
        tea_warn("trace cache: cannot quarantine %s (%s); unlinking it "
                 "instead",
                 path.c_str(), errnoString(errno).c_str());
        // Last resort: a damaged entry must never be reopened as if it
        // were healthy. Failure here means it is already gone. The
        // freshly written reason note describes nothing now — take it
        // with us rather than leave an orphan.
        // tea_check: allow(raw-io)
        std::remove(path.c_str()); // tea_lint: allow(unchecked-io)
        // tea_check: allow(raw-io)
        std::remove(reason_path.c_str()); // tea_lint: allow(unchecked-io)
        return false;
    }
    return true;
}

} // namespace tea
