#include "analysis/trace_cache.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "core/trace_codec.hh"

namespace tea {

namespace {

std::string
defaultCacheDir()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    if (base.back() == '/')
        base.pop_back();
    return base + "/tea-trace-cache";
}

/**
 * mkdir -p: create @p dir and any missing parents. Returns false (with
 * errno set) on the first failure other than "already exists".
 */
bool
makeDirs(const std::string &dir)
{
    std::string path;
    path.reserve(dir.size());
    std::size_t i = 0;
    while (i < dir.size()) {
        std::size_t slash = dir.find('/', i + 1);
        if (slash == std::string::npos)
            slash = dir.size();
        path.assign(dir, 0, slash);
        i = slash;
        if (path.empty())
            continue;
        if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/** Keep entry names shell- and filesystem-safe. */
std::string
sanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        out.push_back(ok ? c : '_');
    }
    if (out.empty())
        out = "workload";
    return out;
}

} // namespace

TraceCacheOptions
TraceCacheOptions::fromEnv()
{
    TraceCacheOptions opts;
    if (const char *dir = std::getenv("TEA_TRACE_CACHE_DIR");
        dir != nullptr && *dir != '\0') {
        opts.enabled = true;
        opts.dir = dir;
    }
    if (const char *env = std::getenv("TEA_TRACE_CACHE");
        env != nullptr && *env != '\0') {
        if (std::strcmp(env, "0") == 0) {
            opts.enabled = false;
        } else if (std::strcmp(env, "1") == 0) {
            opts.enabled = true;
        } else {
            tea_fatal("TEA_TRACE_CACHE must be 0 or 1, got \"%s\"", env);
        }
    }
    if (opts.enabled && opts.dir.empty())
        opts.dir = defaultCacheDir();
    return opts;
}

TraceCache::TraceCache(TraceCacheOptions opts) : opts_(std::move(opts))
{
    if (!opts_.enabled)
        return;
    if (opts_.dir.empty() || !makeDirs(opts_.dir)) {
        tea_warn("trace cache: cannot create directory \"%s\" (%s); "
                 "caching disabled",
                 opts_.dir.c_str(), std::strerror(errno));
        opts_.enabled = false;
    }
}

std::uint64_t
TraceCache::fingerprintOf(const Workload &workload, const CoreConfig &cfg)
{
    Fnv1a h;
    h.add(std::uint64_t{traceCodecVersion});

    // Program: every static instruction plus the code layout that the
    // I-side timing model sees.
    const Program &prog = workload.program;
    h.add(prog.name());
    h.add(prog.codeBase());
    h.add(std::uint64_t{prog.entry()});
    h.add(std::uint64_t{prog.size()});
    for (const StaticInst &inst : prog.insts()) {
        h.add(static_cast<std::uint64_t>(inst.op));
        h.add(std::uint64_t{inst.rd});
        h.add(std::uint64_t{inst.rs1});
        h.add(std::uint64_t{inst.rs2});
        h.addSigned(inst.imm);
        h.add(std::uint64_t{inst.target});
    }
    // Symbols affect nothing in the trace itself but are cheap to hash
    // and keep PSV/function attribution honest if they ever do.
    for (const Symbol &sym : prog.functions()) {
        h.add(sym.name);
        h.add(std::uint64_t{sym.begin});
        h.add(std::uint64_t{sym.end});
    }

    // Initial architectural state.
    for (std::uint64_t r : workload.initial.regs)
        h.add(r);
    h.add(workload.initial.mem.contentHash());

    hashConfig(h, cfg);
    return h.value();
}

std::string
TraceCache::entryPath(const std::string &name, std::uint64_t fp) const
{
    return opts_.dir + "/" + sanitizeName(name) + "-" + hashHex(fp) +
           ".teatrc";
}

std::unique_ptr<MappedTraceFile>
TraceCache::openEntry(const std::string &path, std::uint64_t fp) const
{
    if (!opts_.enabled)
        return nullptr;
    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return nullptr; // plain miss: nothing cached yet
    std::string why;
    auto mapped = MappedTraceFile::open(path, fp, &why);
    if (mapped == nullptr && !why.empty()) {
        // A reason means the file existed but failed validation
        // (corruption, truncation, stale codec/fingerprint) — worth a
        // warning; a plain miss is silent.
        tea_warn("trace cache: discarding entry %s: %s", path.c_str(),
                 why.c_str());
    }
    return mapped;
}

} // namespace tea
