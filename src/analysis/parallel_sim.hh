/**
 * @file
 * Time-parallel simulation: split one run along the time axis (DESIGN.md,
 * "Time-parallel simulation").
 *
 * A functional pre-pass (core/checkpoint) records the architectural
 * state at every interval boundary minus a warmup margin. N workers
 * then simulate the intervals concurrently: each starts a fresh Core
 * from its checkpoint, runs a warmup leg of TEA_SIM_WARMUP committed
 * micro-ops so the cold microarchitectural state (caches, TLBs,
 * predictor, LSQ history) converges onto the serial machine's, and
 * then simulates its interval proper. A stitcher consumes the interval
 * results in order, checks that each worker's warmup tail reproduces
 * the already-accepted stream over a suffix window of cycles, rebases
 * the accepted events into absolute (cycle, seq) coordinates, and
 * delivers them to the caller's sinks — bit-identical to a serial run
 * when every interval converges.
 *
 * When an interval fails the convergence check, the stitcher falls
 * back to exact serial continuation: the previous interval's core is
 * parked alive at the boundary, so re-running the failed interval on
 * it reproduces the serial stream by construction (worst case the
 * whole run degrades to serial, never to wrong). TEA_SIM_PARALLEL=
 * verify additionally runs the serial reference and fatals on any
 * divergence of the stitched stream or stats — the differential
 * oracle used by the simpar test suite.
 */

#ifndef TEA_ANALYSIS_PARALLEL_SIM_HH
#define TEA_ANALYSIS_PARALLEL_SIM_HH

#include <cstdint>
#include <vector>

#include "core/core.hh"
#include "isa/executor.hh"
#include "isa/program.hh"

namespace tea {

/** TEA_SIM_PARALLEL values. */
enum class SimParallelMode
{
    Off,    ///< always simulate serially
    On,     ///< time-parallel when threads > 1 and the plan is usable
    Verify, ///< time-parallel, then re-run serially and fatal on divergence
};

/** Knobs of one time-parallel simulation (all env-overridable). */
struct TimeParallelOptions
{
    /**
     * Worker threads (TEA_SIM_THREADS). 1 disables time-parallelism
     * (the default: it is an opt-in speed/memory trade); 0 means one
     * per hardware thread.
     */
    unsigned threads = 1;

    /**
     * Interval length in committed micro-ops (TEA_SIM_INTERVAL).
     * 0 (default) auto-sizes to spread the run across the workers.
     * Micro-ops, not cycles, so the pre-pass can place checkpoints
     * without a timing model; at IPC near 1 the two coincide.
     */
    std::uint64_t intervalUops = 0;

    /** Warmup prefix per interval in micro-ops (TEA_SIM_WARMUP). */
    std::uint64_t warmupUops = 16384;

    /** TEA_SIM_PARALLEL (off / on / verify). */
    SimParallelMode mode = SimParallelMode::On;

    /** Read TEA_SIM_THREADS / TEA_SIM_INTERVAL / TEA_SIM_WARMUP /
     *  TEA_SIM_PARALLEL over the defaults above. */
    static TimeParallelOptions fromEnv();

    /** True when these options ask for time-parallel simulation. */
    bool wantsParallel() const
    {
        return mode != SimParallelMode::Off && threads != 1;
    }
};

/** Observability counters of one simulateTimeParallel call. */
struct TimeParallelStats
{
    bool usedParallel = false;     ///< took the time-parallel path
    std::uint64_t intervals = 0;   ///< intervals planned (0 = serial)
    std::uint64_t warmupCycles = 0; ///< worker cycles spent warming up
    std::uint64_t convergenceRetries = 0; ///< intervals redone serially

    /**
     * Fraction of the simulated cycles that came from accepted
     * parallel intervals (1.0 = perfect, 0 = fully serial fallback).
     */
    double parallelEfficiency = 0.0;
};

/**
 * Simulate @p prog from @p initial under @p cfg, delivering the trace
 * to @p sinks bit-identically to `Core(cfg, prog, initial).run()`.
 *
 * Falls back to a plain serial run (usedParallel == false) when the
 * options do not ask for parallelism, the program does not halt within
 * the pre-pass budget, the run is too short to split, or the config
 * uses sampling interrupts (whose absolute-cycle phase a restarted
 * interval cannot reproduce).
 *
 * @param stats_out filled with the stitched CoreStats (never null)
 * @param perf_out filled with the summed SimPerf of the accepted legs
 */
TimeParallelStats simulateTimeParallel(const CoreConfig &cfg,
                                       const Program &prog,
                                       const ArchState &initial,
                                       const TimeParallelOptions &opts,
                                       const std::vector<TraceSink *> &sinks,
                                       CoreStats *stats_out,
                                       SimPerf *perf_out);

} // namespace tea

#endif // TEA_ANALYSIS_PARALLEL_SIM_HH
