#include "analysis/cache_janitor.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <dirent.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <fcntl.h>
#include <unistd.h>

#include "analysis/trace_cache.hh"
#include "common/failpoint.hh"
#include "common/file_lock.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "core/trace_io.hh"

namespace tea {

namespace {

// Janitor seams live under the trace_cache. prefix so the crash matrix
// (tests/test_crash_matrix) sweeps them automatically: a pass killed
// between any two removals must leave a cache the next pass finishes
// cleaning, never one it corrupts.
Failpoint fpJanitorScan("trace_cache.janitor_scan", EIO);
Failpoint fpJanitorUnlink("trace_cache.janitor_unlink", EACCES);

bool
endsWith(const std::string &s, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/**
 * Unlink one piece of debris. All janitor removals are best-effort: a
 * failure is warned about and the file stays for the next pass.
 */
bool
removeFile(const std::string &path)
{
    // Removal *is* the janitor's recovery action — there is no retry
    // layer to route through, the next pass simply tries again.
    // tea_check: allow(raw-io)
    int rc = ::unlink(path.c_str());
    if (rc == 0 && TEA_FAILPOINT(fpJanitorUnlink)) {
        errno = fpJanitorUnlink.failErrno();
        rc = -1;
    }
    if (rc != 0 && errno != ENOENT) {
        tea_warn("cache janitor: cannot remove %s (%s)", path.c_str(),
                 errnoString(errno).c_str());
        return false;
    }
    return true;
}

/** stat one directory member into a CacheFileInfo; false if unstatable. */
bool
statFile(const std::string &path, CacheFileInfo *out)
{
    struct ::stat st{};
    // Scan probe; an unstatable (e.g. concurrently removed) file is
    // simply not part of this pass.
    // tea_check: allow(raw-io)
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
        return false;
    out->path = path;
    out->bytes = static_cast<std::uint64_t>(st.st_size);
    out->mtimeS = static_cast<std::int64_t>(st.st_mtime);
    return true;
}

/** All regular files directly inside @p dir (no recursion). */
std::vector<CacheFileInfo>
listDir(const std::string &dir)
{
    std::vector<CacheFileInfo> out;
    ::DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return out; // missing or unreadable: nothing to scan
    while (struct ::dirent *ent = ::readdir(d)) {
        if (std::strcmp(ent->d_name, ".") == 0 ||
            std::strcmp(ent->d_name, "..") == 0)
            continue;
        CacheFileInfo info;
        if (statFile(dir + "/" + ent->d_name, &info))
            out.push_back(std::move(info));
    }
    ::closedir(d);
    return out;
}

/**
 * Writer pid embedded in a tmp file name
 * (`<entry>.<pid>.<counter>.tmp`, see CompactTraceWriter).
 * @return true and sets @p pid when the name parses
 */
bool
parseTmpPid(const std::string &path, long *pid)
{
    if (!endsWith(path, ".tmp"))
        return false;
    const std::string stem = path.substr(0, path.size() - 4);
    std::size_t ctr_dot = stem.find_last_of('.');
    if (ctr_dot == std::string::npos || ctr_dot == 0)
        return false;
    std::size_t pid_dot = stem.find_last_of('.', ctr_dot - 1);
    if (pid_dot == std::string::npos)
        return false;
    const std::string pid_s = stem.substr(pid_dot + 1,
                                          ctr_dot - pid_dot - 1);
    char *end = nullptr;
    long value = std::strtol(pid_s.c_str(), &end, 10);
    if (pid_s.empty() || *end != '\0' || value <= 0)
        return false;
    *pid = value;
    return true;
}

/** True when the process that wrote @p path is verifiably dead. */
bool
writerIsDead(const std::string &path)
{
    long pid = 0;
    if (!parseTmpPid(path, &pid))
        return false; // unparseable: fall back to the age threshold
    // Signal 0 probes existence without delivering anything. EPERM
    // means the pid exists (owned by someone else): treat as alive.
    return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

std::int64_t
ageOf(const CacheFileInfo &f, std::int64_t now)
{
    return now >= f.mtimeS ? now - f.mtimeS : 0;
}

/** Oldest-first by last use; path breaks ties deterministically. */
void
sortByAge(std::vector<CacheFileInfo> &files)
{
    std::sort(files.begin(), files.end(),
              [](const CacheFileInfo &a, const CacheFileInfo &b) {
                  if (a.mtimeS != b.mtimeS)
                      return a.mtimeS < b.mtimeS;
                  return a.path < b.path;
              });
}

std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return dflt;
    char *end = nullptr;
    std::uint64_t value = std::strtoull(env, &end, 10);
    if (*end != '\0')
        tea_fatal("%s must be a non-negative integer, got \"%s\"", name,
                  env);
    return value;
}

/**
 * Once-per-(process, directory) gate for recoverOnce. Meyers singleton
 * for the same static-initialization-order reasons as the failpoint
 * registry.
 */
class RecoverRegistry
{
  public:
    static RecoverRegistry &instance()
    {
        static RecoverRegistry r;
        return r;
    }

    /** True the first time @p dir is seen in this process. */
    bool firstVisit(const std::string &dir)
    {
        MutexLock lk(mu_);
        for (const std::string &seen : dirs_) {
            if (seen == dir)
                return false;
        }
        dirs_.push_back(dir);
        return true;
    }

  private:
    Mutex mu_;
    std::vector<std::string> dirs_ TEA_GUARDED_BY(mu_);
};

} // namespace

JanitorConfig
JanitorConfig::fromEnv()
{
    JanitorConfig cfg;
    cfg.maxBytes = envU64("TEA_TRACE_CACHE_MAX_BYTES", cfg.maxBytes);
    cfg.quarantineMaxCount =
        envU64("TEA_CACHE_QUARANTINE_MAX", cfg.quarantineMaxCount);
    cfg.quarantineMaxAgeS =
        envU64("TEA_CACHE_QUARANTINE_MAX_AGE_S", cfg.quarantineMaxAgeS);
    cfg.orphanMaxAgeS =
        envU64("TEA_CACHE_ORPHAN_MAX_AGE_S", cfg.orphanMaxAgeS);
    return cfg;
}

CacheScan
scanCacheDir(const std::string &dir)
{
    CacheScan scan;
    const std::string janitor_lock = CacheJanitor::lockPathFor(dir);
    for (CacheFileInfo &f : listDir(dir)) {
        scan.totalBytes += f.bytes;
        if (endsWith(f.path, ".teatrc")) {
            scan.entryBytes += f.bytes;
            scan.entries.push_back(std::move(f));
        } else if (endsWith(f.path, ".tmp")) {
            scan.tmpFiles.push_back(std::move(f));
        } else if (f.path == janitor_lock) {
            scan.totalBytes -= f.bytes; // the janitor's own machinery
        } else if (endsWith(f.path, ".lock")) {
            scan.lockFiles.push_back(std::move(f));
        }
    }
    for (CacheFileInfo &f : listDir(dir + "/quarantine")) {
        scan.totalBytes += f.bytes;
        if (endsWith(f.path, ".reason"))
            scan.reasons.push_back(std::move(f));
        else
            scan.quarantine.push_back(std::move(f));
    }
    return scan;
}

CacheJanitor::CacheJanitor(std::string dir, JanitorConfig cfg)
    : dir_(std::move(dir)), cfg_(cfg)
{
}

JanitorStats
CacheJanitor::gc() const
{
    JanitorStats stats;

    FileLock lock;
    if (!lock.acquire(lockPathFor(dir_), cfg_.lockTimeoutMs)) {
        // Busy (or uncreatable) janitor lock: someone else is cleaning
        // this directory right now, or it is unusable — either way the
        // pass is not ours to run.
        stats.lockBusy = true;
        return stats;
    }

    if (TEA_FAILPOINT(fpJanitorScan)) {
        tea_warn("cache janitor: cannot scan %s (%s); skipping pass",
                 dir_.c_str(),
                 errnoString(fpJanitorScan.failErrno()).c_str());
        return stats;
    }

    CacheScan scan = scanCacheDir(dir_);
    stats.scannedEntries = scan.entries.size();
    stats.scannedBytes = scan.entryBytes;
    const std::int64_t now =
        static_cast<std::int64_t>(::time(nullptr));

    // --- orphaned tmp files ------------------------------------------
    // A tmp file whose writer is dead can never be published; one whose
    // pid is alive (or unparseable) gets the benefit of the doubt until
    // it ages past the threshold — no in-flight write lasts an hour.
    for (const CacheFileInfo &f : scan.tmpFiles) {
        const bool dead = writerIsDead(f.path);
        const bool aged =
            ageOf(f, now) >
            static_cast<std::int64_t>(cfg_.orphanMaxAgeS);
        if ((dead || aged) && removeFile(f.path))
            ++stats.removedTmp;
    }

    // --- stale lock files --------------------------------------------
    // A `<entry>.teatrc.lock` sidecar is only debris when its entry is
    // gone (evicted or quarantined), nobody holds the flock, and it is
    // old enough that no writer is between lock-acquire and publish.
    // The flock is held across the unlink so a concurrent acquirer
    // either beat us (flock fails, keep the file) or will recreate the
    // file fresh (O_CREAT in FileLock::acquire) — never blocks on a
    // lock we are deleting.
    for (const CacheFileInfo &f : scan.lockFiles) {
        const std::string entry = f.path.substr(0, f.path.size() - 5);
        struct ::stat st{};
        // Existence probe: a live entry keeps its lock file.
        // tea_check: allow(raw-io)
        if (::stat(entry.c_str(), &st) == 0)
            continue;
        if (ageOf(f, now) <=
            static_cast<std::int64_t>(cfg_.orphanMaxAgeS))
            continue;
        // tea_check: allow(raw-io)
        int fd = ::open(f.path.c_str(), O_RDWR | O_CLOEXEC);
        if (fd < 0)
            continue; // already gone (or unreadable): not ours
        // tea_check: allow(raw-io)
        if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
            // Held: a live writer is using it after all.
            // tea_check: allow(raw-io)
            ::close(fd); // tea_lint: allow(unchecked-io)
            continue;
        }
        if (removeFile(f.path))
            ++stats.removedLocks;
        // tea_check: allow(raw-io)
        ::close(fd); // tea_lint: allow(unchecked-io)
    }

    // --- quarantine aging and capping --------------------------------
    // Oldest damage goes first: whoever wanted to inspect it has had
    // quarantineMaxAgeS to do so, and past the count cap the oldest
    // entries are the least interesting. The .reason note travels with
    // its payload; a note whose payload is already gone (crash between
    // the reason write and the rename, see TraceCache::quarantineEntry)
    // ages out on the orphan threshold.
    // Orphaned .reason notes first, judged against scan-time state, so
    // notes removed along with their payload below are never seen (and
    // counted) twice.
    for (const CacheFileInfo &f : scan.reasons) {
        const std::string payload =
            f.path.substr(0, f.path.size() - 7);
        struct ::stat st{};
        // tea_check: allow(raw-io)
        const bool orphan = ::stat(payload.c_str(), &st) != 0;
        const bool aged =
            ageOf(f, now) >
            static_cast<std::int64_t>(cfg_.orphanMaxAgeS);
        if (orphan && aged && removeFile(f.path))
            ++stats.removedQuarantine;
    }
    sortByAge(scan.quarantine);
    std::size_t keep = scan.quarantine.size();
    for (std::size_t i = 0; i < scan.quarantine.size(); ++i) {
        const CacheFileInfo &f = scan.quarantine[i];
        const bool aged =
            ageOf(f, now) >
            static_cast<std::int64_t>(cfg_.quarantineMaxAgeS);
        const bool over_cap =
            keep > cfg_.quarantineMaxCount; // oldest-first order
        if (!aged && !over_cap)
            break; // sorted: everything later is newer and under cap
        if (removeFile(f.path)) {
            ++stats.removedQuarantine;
            --keep;
            removeFile(f.path + ".reason"); // travels with its payload
        }
    }

    // --- size-budget eviction ----------------------------------------
    // Evict in last-use order (openEntry bumps mtime on every hit)
    // until the live entries fit. Unlink is safe against concurrent
    // readers — an mmap survives the unlink — and against concurrent
    // rewriters, whose tmp+rename publish recreates the entry whole.
    if (cfg_.maxBytes > 0) {
        sortByAge(scan.entries);
        std::uint64_t live = scan.entryBytes;
        for (const CacheFileInfo &f : scan.entries) {
            if (live <= cfg_.maxBytes)
                break;
            if (!removeFile(f.path))
                continue;
            live -= f.bytes;
            ++stats.evictedEntries;
            stats.evictedBytes += f.bytes;
        }
    }
    return stats;
}

JanitorStats
CacheJanitor::recoverOnce(const std::string &dir,
                          const JanitorConfig &cfg)
{
    if (!RecoverRegistry::instance().firstVisit(dir))
        return JanitorStats{};
    return CacheJanitor(dir, cfg).gc();
}

bool
parseEntryFingerprint(const std::string &path, std::uint64_t *fp)
{
    const char suffix[] = ".teatrc";
    const std::size_t suffix_len = sizeof(suffix) - 1;
    const std::size_t hex_len = 16;
    if (!endsWith(path, suffix) ||
        path.size() < suffix_len + hex_len + 1)
        return false;
    const std::size_t hex_at = path.size() - suffix_len - hex_len;
    if (path[hex_at - 1] != '-')
        return false;
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < hex_len; ++i) {
        const char c = path[hex_at + i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false; // hashHex emits lowercase only
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    *fp = value;
    return true;
}

CacheVerifyReport
verifyCacheDir(const std::string &dir, bool quarantine_damaged)
{
    CacheVerifyReport report;
    CacheScan scan = scanCacheDir(dir);

    TraceCacheOptions opts;
    opts.enabled = true;
    opts.dir = dir;
    TraceCache cache(opts);

    for (const CacheFileInfo &f : scan.entries) {
        ++report.checked;
        std::uint64_t fp = 0;
        std::string why;
        if (!parseEntryFingerprint(f.path, &fp)) {
            why = "unrecognized entry name (no fingerprint suffix)";
        } else {
            int sys_err = 0;
            auto mapped =
                MappedTraceFile::open(f.path, fp, &why, &sys_err);
            if (mapped != nullptr) {
                ++report.healthy;
                continue;
            }
            if (why.empty())
                why = strprintf("cannot open: %s",
                                errnoString(sys_err).c_str());
        }
        ++report.damaged;
        report.damagedPaths.push_back(
            strprintf("%s: %s", f.path.c_str(), why.c_str()));
        if (quarantine_damaged)
            cache.quarantineEntry(f.path, why);
    }
    return report;
}

} // namespace tea
