#include "analysis/parallel_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "analysis/audit.hh"
#include "analysis/cache_janitor.hh"
#include "analysis/trace_cache.hh"
#include "common/chunk_queue.hh"
#include "common/failpoint.hh"
#include "common/file_lock.hh"
#include "common/logging.hh"
#include "common/sync.hh"
#include "core/trace_io.hh"

namespace tea {

namespace {

using Clock = std::chrono::steady_clock;

// Fault-injection seams (common/failpoint). These raise FailpointError
// — an ordinary exception — so they exercise the containment paths:
// a worker-side fault is recorded in ReplayWorkerStats::error and fails
// only that experiment; an experiment-side fault is caught per
// experiment by runBenchmarkSuite.
Failpoint fpQueuePush("runner.queue_push", EIO);
Failpoint fpQueuePop("runner.queue_pop", EIO);
Failpoint fpWorkerBody("runner.worker_body", EIO);
Failpoint fpExperiment("runner.experiment", EIO);

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Environment unsigned with a default (fatal on garbage). */
unsigned long long
envCount(const char *name, unsigned long long dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    char *end = nullptr;
    unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end)
        tea_fatal("%s must be a non-negative integer, got '%s'", name, v);
    return n;
}

/**
 * Decode the frames of a mapped trace-cache entry in parallel and hand
 * the chunks to @p deliver in file order.
 *
 * Workers claim frame indices through an atomic cursor and decode them
 * with private ChunkDecoders (frames are self-contained; the mapping is
 * immutable), parking finished chunks in a bounded reorder ring. The
 * calling thread drains the ring strictly in order, so observers see
 * the exact chunk sequence a serial nextChunk() loop would produce —
 * bit-identical results at any thread count. The ring holds at most
 * batch_frames chunks per worker; a worker that runs that far ahead of
 * the in-order handoff blocks until the gap closes.
 *
 * A worker-side failure (decodeFrame panics on anything the open-time
 * validation scan could miss, so this is belt-and-braces for e.g.
 * bad_alloc) is contained: the slot is published empty, every thread is
 * woken, and the first error is rethrown on the calling thread after
 * the join. If @p deliver throws (observer death, an injected queue
 * fault), the workers are unparked and joined before the exception
 * propagates — destroying a joinable thread would terminate the
 * process.
 *
 * @return wall time spent inside decodeFrame, summed across workers
 */
double
pumpFramesParallel(const MappedTraceFile &mapped, unsigned decode_threads,
                   std::size_t batch_frames,
                   const std::function<void(TraceChunkPtr)> &deliver)
{
    const std::size_t frames = mapped.frameCount();
    const unsigned workers = static_cast<unsigned>(std::max<std::size_t>(
        1, std::min<std::size_t>(decode_threads, frames)));
    const std::size_t window =
        std::max<std::size_t>(1, batch_frames) * workers;

    struct Slot
    {
        TraceChunkPtr chunk;
        bool ready = false;
    };
    // Shared pump state lives in a struct (not loose locals) so every
    // guarded field can carry its TEA_GUARDED_BY annotation and the
    // thread-safety analysis proves the reorder-ring protocol.
    struct Shared
    {
        explicit Shared(std::size_t slots) : ring(slots) {}

        Mutex mu;
        CondVar ringFreed;  // consumer advanced `base`
        CondVar slotFilled; // a worker published a slot
        std::vector<Slot> ring TEA_GUARDED_BY(mu);
        /** next frame index to hand to deliver() */
        std::size_t base TEA_GUARDED_BY(mu) = 0;
        /** deliver() threw; unpark everything */
        bool aborted TEA_GUARDED_BY(mu) = false;
        std::string firstError TEA_GUARDED_BY(mu);
    };
    Shared st(std::min(window, std::max<std::size_t>(frames, 1)));
    std::atomic<std::size_t> next{0};
    std::vector<double> decodeSeconds(workers, 0.0);

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            ChunkDecoder decoder;
            for (;;) {
                // relaxed: the cursor only partitions frame indices
                // among workers; each claimed frame is immutable mapped
                // memory, so no payload rides on this counter.
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= frames)
                    return;
                TraceChunkPtr chunk;
                try {
                    const auto t0 = Clock::now();
                    chunk = mapped.decodeFrame(i, decoder);
                    decodeSeconds[w] += secondsSince(t0);
                } catch (const std::exception &e) {
                    MutexLock g(st.mu);
                    if (st.firstError.empty())
                        st.firstError = e.what();
                } catch (...) {
                    MutexLock g(st.mu);
                    if (st.firstError.empty())
                        st.firstError =
                            "unknown exception in decode worker";
                }
                MutexLock lock(st.mu);
                while (!st.aborted && i - st.base >= st.ring.size())
                    st.ringFreed.wait(st.mu);
                if (st.aborted)
                    return;
                Slot &s = st.ring[i % st.ring.size()];
                s.chunk = std::move(chunk); // null on worker failure
                s.ready = true;
                st.slotFilled.notify_all();
            }
        });
    }

    auto joinAll = [&] {
        {
            MutexLock g(st.mu);
            st.aborted = true;
            st.ringFreed.notify_all();
        }
        for (std::thread &t : pool)
            t.join();
    };

    try {
        for (std::size_t i = 0; i < frames; ++i) {
            TraceChunkPtr chunk;
            {
                MutexLock lock(st.mu);
                Slot &s = st.ring[i % st.ring.size()];
                while (!s.ready)
                    st.slotFilled.wait(st.mu);
                chunk = std::move(s.chunk);
                s.ready = false;
                ++st.base;
                st.ringFreed.notify_all();
                if (!chunk && !st.firstError.empty())
                    break; // a decode worker died; join and rethrow
            }
            if (chunk)
                deliver(std::move(chunk));
        }
    } catch (...) {
        joinAll();
        throw;
    }
    joinAll();
    {
        // Workers are joined; the lock satisfies the static analysis,
        // which cannot see the join's happens-before edge.
        MutexLock g(st.mu);
        if (!st.firstError.empty())
            throw ExperimentFailure(strprintf(
                "parallel frame decode: %s", st.firstError.c_str()));
    }

    double total = 0.0;
    for (double s : decodeSeconds)
        total += s;
    return total;
}

} // namespace

RunnerOptions
RunnerOptions::fromEnv()
{
    RunnerOptions opts;
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    // Default: one replay worker per hardware thread (results are
    // identical at any thread count, so this is purely a speed knob).
    auto threads =
        static_cast<unsigned>(envCount("TEA_THREADS", hw));
    opts.threads = threads == 0 ? hw : threads;
    opts.chunkEvents = static_cast<std::size_t>(
        envCount("TEA_CHUNK_EVENTS", opts.chunkEvents));
    opts.queueChunks = static_cast<std::size_t>(
        envCount("TEA_QUEUE_CHUNKS", opts.queueChunks));
    tea_assert(opts.chunkEvents >= 1, "TEA_CHUNK_EVENTS must be >= 1");
    tea_assert(opts.queueChunks >= 1, "TEA_QUEUE_CHUNKS must be >= 1");
    opts.audit = static_cast<unsigned>(envCount("TEA_AUDIT", 0));
    opts.cache = TraceCacheOptions::fromEnv();
    opts.janitor = JanitorConfig::fromEnv();
    opts.cacheLockTimeoutMs = static_cast<unsigned>(envCount(
        "TEA_CACHE_LOCK_TIMEOUT_MS", opts.cacheLockTimeoutMs));
    auto dthreads = static_cast<unsigned>(
        envCount("TEA_DECODE_THREADS", opts.decodeThreads));
    opts.decodeThreads = dthreads == 0 ? hw : dthreads;
    opts.batchFrames = static_cast<std::size_t>(
        envCount("TEA_BATCH_FRAMES", opts.batchFrames));
    tea_assert(opts.batchFrames >= 1, "TEA_BATCH_FRAMES must be >= 1");
    opts.sim = TimeParallelOptions::fromEnv();
    return opts;
}

ReplayStats
replayChunksThroughPool(const std::vector<SinkGroup> &groups,
                        const RunnerOptions &opts,
                        const std::function<void(const ChunkPush &)> &pump)
{
    ReplayStats stats;
    const unsigned workers = static_cast<unsigned>(std::max<std::size_t>(
        1, std::min<std::size_t>(opts.threads, groups.size())));
    stats.threads = workers;
    stats.workers.resize(workers);

    BroadcastQueue<TraceChunkPtr> queue(std::max<std::size_t>(
                                            1, opts.queueChunks),
                                        workers);

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            // Round-robin share of the observer groups; sinks of one
            // group stay together so each observer sees the trace
            // in order on a single thread.
            std::vector<TraceSink *> sinks;
            unsigned my_groups = 0;
            for (std::size_t g = w; g < groups.size();
                 g += workers) {
                sinks.insert(sinks.end(), groups[g].sinks.begin(),
                             groups[g].sinks.end());
                ++my_groups;
            }
            ReplayWorkerStats &ws = stats.workers[w];
            ws.workerId = w;
            ws.sinkGroups = my_groups;
            const auto t0 = Clock::now();
            TraceChunkPtr chunk;
            // Containment contract: an exception out of an observer (or
            // an injected fault) is recorded in ws.error, and the
            // worker *keeps draining the queue* — each consumer has its
            // own cursor in the broadcast queue, so a worker that
            // simply stopped popping would stall the producer forever
            // once backpressure engages. The experiment as a whole is
            // failed after the join (ExperimentFailure).
            while (queue.pop(w, chunk)) {
                if (ws.error.empty()) {
                    try {
                        if (TEA_FAILPOINT(fpQueuePop))
                            fpQueuePop.raise();
                        if (TEA_FAILPOINT(fpWorkerBody))
                            fpWorkerBody.raise();
                        ++ws.chunksConsumed;
                        ws.eventsReplayed += chunk->events.size();
                        ws.cyclesReplayed += replayChunk(*chunk, sinks);
                    } catch (const std::exception &e) {
                        ws.error = e.what();
                    } catch (...) {
                        ws.error = "unknown exception in replay worker";
                    }
                }
                chunk.reset();
            }
            ws.replaySeconds = secondsSince(t0);
            ws.queueEmptyWaits = queue.emptyWaits(w);
        });
    }

    const auto start = Clock::now();
    try {
        pump([&](TraceChunkPtr c) {
            if (TEA_FAILPOINT(fpQueuePush))
                fpQueuePush.raise();
            ++stats.chunksProduced;
            stats.eventsCaptured += c->events.size();
            queue.push(std::move(c));
        });
    } catch (...) {
        // The producer died mid-trace. Close the queue and join the
        // workers before the exception unwinds this frame: destroying
        // a joinable std::thread is std::terminate, which would turn a
        // containable experiment failure into process death (and leak
        // any half-written cache temporary on the way out).
        queue.close();
        for (std::thread &t : pool)
            t.join();
        throw;
    }
    stats.simulateSeconds = secondsSince(start);
    queue.close();
    for (std::thread &t : pool)
        t.join();
    stats.totalSeconds = secondsSince(start);
    stats.queueFullStalls = queue.fullWaits();
    for (const ReplayWorkerStats &ws : stats.workers) {
        stats.replaySeconds = std::max(stats.replaySeconds,
                                       ws.replaySeconds);
        if (!ws.error.empty())
            ++stats.workerFailures;
    }
    return stats;
}

ReplayStats
replayThroughPool(const std::vector<SinkGroup> &groups,
                  const RunnerOptions &opts,
                  const std::function<void(TraceSink &)> &produce)
{
    return replayChunksThroughPool(
        groups, opts, [&](const ChunkPush &push) {
            ChunkingSink sink(opts.chunkEvents, [&](TraceChunkPtr c) {
                push(std::move(c));
            });
            produce(sink);
            sink.finish();
        });
}

ExperimentResult
runWorkload(Workload workload, std::vector<SamplerConfig> techniques,
            const RunnerOptions &opts, const CoreConfig &cfg)
{
    failpoints::checkEnvConsumed();
    TraceCache cache(opts.cache);
    if (!cache.enabled() && opts.threads <= 1 && opts.audit == 0 &&
        !opts.sim.wantsParallel()) {
        // Serial path without caching, auditing or time-parallel
        // simulation: observers attached directly to the live core,
        // bit-for-bit the historical behaviour.
        return runWorkload(std::move(workload), std::move(techniques),
                           cfg);
    }

    // TEA_AUDIT >= 2 re-runs multi-threaded experiments serially and
    // demands bit-identical Pics; keep a pristine copy of the workload
    // before the primary run consumes it.
    const bool crossCheck = opts.audit >= 2 && opts.threads > 1;
    std::unique_ptr<Workload> pristine;
    if (crossCheck)
        pristine = std::make_unique<Workload>(workload);

    const auto start = Clock::now();
    ExperimentResult res;
    res.name = workload.program.name();
    res.golden = std::make_unique<GoldenReference>();
    res.golden->reserveCells(workload.program.size());

    std::vector<std::unique_ptr<TechniqueSampler>> samplers;
    samplers.reserve(techniques.size());
    for (SamplerConfig &tc : techniques) {
        samplers.push_back(std::make_unique<TechniqueSampler>(tc));
        samplers.back()->reserveCells(workload.program.size());
    }

    // One observer group per technique plus the golden reference: the
    // unit of replay parallelism. The auditor, when enabled, rides
    // along as one more group — it sees the identical event stream the
    // profilers see, on whichever worker it lands on.
    std::unique_ptr<InvariantAuditor> auditor;
    if (opts.audit > 0)
        auditor = std::make_unique<InvariantAuditor>(
            InvariantAuditor::Mode::FailFast);

    std::vector<SinkGroup> groups;
    groups.reserve(samplers.size() + 2);
    groups.push_back(SinkGroup{{res.golden.get()}});
    for (auto &s : samplers)
        groups.push_back(SinkGroup{{s.get()}});
    if (auditor)
        groups.push_back(SinkGroup{{auditor.get()}});

    // Cache lookup: the fingerprint keys on workload content, the full
    // config and the codec version, so a hit is guaranteed to replay
    // the exact trace a fresh simulation would produce.
    std::uint64_t fp = 0;
    std::string entry;
    std::unique_ptr<MappedTraceFile> mapped;
    CacheOpStats cacheOps;
    FileLock storeLock;
    if (cache.enabled()) {
        // First access in this process: reclaim crash debris (orphaned
        // tmp files, stale locks, aged quarantine) left by previous
        // runs before stacking new work on top of it.
        const JanitorStats recovered = CacheJanitor::recoverOnce(
            cache.options().dir, opts.janitor);
        res.replay.janitorRemovals += recovered.removals();
        res.replay.cacheEvictions += recovered.evictedEntries;
        res.replay.cacheEvictedBytes += recovered.evictedBytes;

        fp = TraceCache::fingerprintOf(workload, cfg);
        entry = cache.entryPath(res.name, fp);
        mapped = cache.openEntry(entry, fp, &cacheOps);
        if (!mapped) {
            // Miss (or a damaged entry just quarantined): the rewrite
            // must be serialized against concurrent processes aiming at
            // the same entry — tmp+rename makes the publish atomic, but
            // without the lock two processes would both simulate and
            // race their renames.
            if (storeLock.acquire(TraceCache::lockPathFor(entry),
                                  opts.cacheLockTimeoutMs)) {
                // Revalidate under the lock: whoever held it before us
                // may have published a healthy entry while we waited.
                mapped = cache.openEntry(entry, fp, &cacheOps);
            } else {
                ++res.replay.lockDegrades;
                tea_warn("trace cache: cannot lock %s within %u ms; "
                         "simulating without storing",
                         TraceCache::lockPathFor(entry).c_str(),
                         opts.cacheLockTimeoutMs);
            }
        }
        // A hit needs no lock: the mapping pins the published file even
        // if another process later replaces or quarantines the path.
        if (mapped)
            storeLock.release();
    }

    if (mapped) {
        // Hit: no core is built at all; the trace streams out of the
        // mapping and the recorded CoreStats stand in for core.stats().
        if (opts.threads <= 1) {
            std::vector<TraceSink *> sinks;
            for (const SinkGroup &g : groups)
                sinks.insert(sinks.end(), g.sinks.begin(),
                             g.sinks.end());
            auto replayOne = [&](TraceChunkPtr chunk) {
                const auto t1 = Clock::now();
                replayChunk(*chunk, sinks);
                res.replay.replaySeconds += secondsSince(t1);
                ++res.replay.chunksProduced;
                res.replay.eventsCaptured += chunk->events.size();
            };
            if (opts.decodeThreads > 1) {
                res.replay.decodeSeconds = pumpFramesParallel(
                    *mapped, opts.decodeThreads, opts.batchFrames,
                    replayOne);
            } else {
                // Single decoder: decode one frame, replay it, reuse
                // the same chunk storage for the next frame. Keeping
                // exactly one chunk in flight is deliberate — it lets
                // nextChunk() recycle one warm output buffer, and the
                // assemble stores hitting warm cache lines outweigh
                // any decode-locality gain from grouping frames
                // (measured: batching serial decodes cost ~20%).
                for (;;) {
                    const auto t0 = Clock::now();
                    TraceChunkPtr chunk = mapped->nextChunk();
                    res.replay.decodeSeconds += secondsSince(t0);
                    if (!chunk)
                        break;
                    replayOne(std::move(chunk));
                }
            }
        } else {
            // Pure decode time is metered inside the pump — around
            // each decodeFrame/nextChunk call only — so backpressure
            // stalls against the replay pool no longer masquerade as
            // decode work, and simulateSeconds stays 0: nothing was
            // simulated on a warm hit.
            double decode_seconds = 0.0;
            res.replay = replayChunksThroughPool(
                groups, opts, [&](const ChunkPush &push) {
                    if (opts.decodeThreads > 1) {
                        decode_seconds = pumpFramesParallel(
                            *mapped, opts.decodeThreads,
                            opts.batchFrames, push);
                        return;
                    }
                    for (;;) {
                        const auto t0 = Clock::now();
                        TraceChunkPtr c = mapped->nextChunk();
                        decode_seconds += secondsSince(t0);
                        if (!c)
                            break;
                        push(std::move(c));
                    }
                });
            res.replay.decodeSeconds = decode_seconds;
            res.replay.simulateSeconds = 0.0;
        }
        res.stats = mapped->coreStats();
        res.replay.cacheHit = true;
        res.replay.cacheBytes = mapped->fileBytes();
    } else {
        // Miss (or caching off): simulate, teeing the chunk stream into
        // the cache writer so the next run with this fingerprint hits.
        // Only the lock holder stores; a runner that lost the lock race
        // still computes its results, it just leaves no entry behind.
        std::unique_ptr<CompactTraceWriter> writer;
        if (cache.enabled() && storeLock.held()) {
            writer = std::make_unique<CompactTraceWriter>(entry, fp);
            // Admission control: an entry that alone exceeds the cache
            // budget would be evicted by the very next janitor pass —
            // abandon it mid-write instead of finishing it.
            writer->setByteLimit(opts.janitor.maxBytes);
        }

        // The simulate call dispatches on opts.sim: with sim.threads
        // <= 1 it is exactly the historical serial core.run(); with
        // more it splits the run along the time axis and stitches the
        // intervals back bit-identically (analysis/parallel_sim), so
        // everything downstream — cache writer, observers, audit — is
        // oblivious to how the stream was produced.
        CoreStats simStats;
        SimPerf simPerf;
        TimeParallelStats simPar;
        const auto simulate = [&](const std::vector<TraceSink *> &sinks) {
            simPar = simulateTimeParallel(cfg, workload.program,
                                          workload.initial, opts.sim, sinks,
                                          &simStats, &simPerf);
        };
        if (opts.threads <= 1) {
            std::vector<TraceSink *> sinks;
            for (const SinkGroup &g : groups)
                sinks.insert(sinks.end(), g.sinks.begin(), g.sinks.end());
            std::unique_ptr<ChunkingSink> tee;
            if (writer) {
                tee = std::make_unique<ChunkingSink>(
                    opts.chunkEvents, [&](TraceChunkPtr c) {
                        writer->writeChunk(*c);
                    });
                sinks.push_back(tee.get());
            }
            const auto t0 = Clock::now();
            simulate(sinks);
            res.replay.simulateSeconds = secondsSince(t0);
            if (tee) {
                tee->finish();
                res.replay.chunksProduced = tee->chunksEmitted();
                res.replay.eventsCaptured = tee->eventsCaptured();
            }
        } else {
            res.replay = replayChunksThroughPool(
                groups, opts, [&](const ChunkPush &push) {
                    ChunkingSink sink(opts.chunkEvents,
                                      [&](TraceChunkPtr c) {
                                          if (writer)
                                              writer->writeChunk(*c);
                                          push(std::move(c));
                                      });
                    simulate({&sink});
                    sink.finish();
                });
        }
        res.stats = simStats;
        res.replay.simCycles = simStats.cycles;
        res.replay.simEvents = simPerf.traceEvents;
        res.replay.simParallel = simPar.usedParallel;
        res.replay.simIntervals = simPar.intervals;
        res.replay.simWarmupCycles = simPar.warmupCycles;
        res.replay.simConvergenceRetries = simPar.convergenceRetries;
        res.replay.simParallelEfficiency = simPar.parallelEfficiency;
        if (writer) {
            res.replay.cacheStored = writer->commit(simStats);
            res.replay.cacheBytes = writer->bytesWritten();
            res.replay.cacheAdmissionDenied = writer->admissionDenied();
            res.replay.ioRetries += writer->retryStats().retries;
            res.replay.ioRecoveries += writer->retryStats().recoveries;
        }
        storeLock.release();

        // The store may have pushed the cache past its byte budget:
        // run a janitor pass (serialized on janitor.lock; skipped when
        // another process is already at it) to evict the coldest
        // entries back under it.
        if (cache.enabled() && opts.janitor.maxBytes > 0 &&
            res.replay.cacheStored) {
            const JanitorStats js =
                CacheJanitor(cache.options().dir, opts.janitor).gc();
            res.replay.cacheEvictions += js.evictedEntries;
            res.replay.cacheEvictedBytes += js.evictedBytes;
            res.replay.janitorRemovals += js.removals();
        }
    }
    res.replay.ioRetries += cacheOps.retry.retries;
    res.replay.ioRecoveries += cacheOps.retry.recoveries;
    res.replay.quarantined += cacheOps.quarantined;

    if (res.replay.workerFailures > 0) {
        std::string first;
        for (const ReplayWorkerStats &ws : res.replay.workers) {
            if (!ws.error.empty()) {
                first = strprintf("worker %u: %s", ws.workerId,
                                  ws.error.c_str());
                break;
            }
        }
        throw ExperimentFailure(strprintf(
            "experiment '%s': %u replay worker(s) failed (%s)",
            res.name.c_str(), res.replay.workerFailures, first.c_str()));
    }

    if (auditor) {
        auditor->finish();
        // A cached trace must describe exactly as many cycles as the
        // recorded CoreStats claim — this is the check that catches a
        // stale or truncated cache entry slipping past validation.
        if (auditor->cyclesAudited() != res.stats.cycles) {
            tea_fatal("TEA audit: replay delivered %llu cycle records "
                      "but core stats claim %llu cycles (%s)",
                      static_cast<unsigned long long>(
                          auditor->cyclesAudited()),
                      static_cast<unsigned long long>(res.stats.cycles),
                      res.replay.cacheHit ? "stale trace-cache entry?"
                                          : "trace capture dropped "
                                            "events");
        }
        const std::string conservation =
            auditCycleConservation(*res.golden, res.stats.cycles);
        if (!conservation.empty())
            tea_fatal("TEA audit: %s", conservation.c_str());
    }

    for (auto &s : samplers) {
        res.techniques.push_back(TechniqueResult{
            s->config(), s->pics(), s->samplesTaken(),
            s->samplesDropped()});
    }
    res.program = std::move(workload.program);
    res.replay.totalSeconds = secondsSince(start);

    if (crossCheck) {
        // Determinism contract (DESIGN.md, "Out-of-band replay at
        // scale"): the same workload replayed serially must yield
        // bit-identical Pics for the golden reference and every
        // technique. The serial re-run keeps the audit level at 1 (so
        // its own trace is still invariant-checked) and bypasses the
        // cache so it exercises a fresh simulation.
        RunnerOptions serial = opts;
        serial.threads = 1;
        serial.audit = 1;
        serial.cache.enabled = false;
        ExperimentResult ref = runWorkload(std::move(*pristine),
                                           techniques, serial, cfg);
        std::string diff = auditPicsIdentical(res.golden->pics(),
                                              ref.golden->pics());
        if (!diff.empty())
            tea_fatal("TEA audit: golden PICS diverges between %u "
                      "threads and serial replay: %s",
                      opts.threads, diff.c_str());
        tea_assert(res.techniques.size() == ref.techniques.size(),
                   "audit re-run produced %zu techniques, expected %zu",
                   ref.techniques.size(), res.techniques.size());
        for (std::size_t i = 0; i < res.techniques.size(); ++i) {
            diff = auditPicsIdentical(res.techniques[i].pics,
                                      ref.techniques[i].pics);
            if (!diff.empty())
                tea_fatal("TEA audit: technique '%s' PICS diverges "
                          "between %u threads and serial replay: %s",
                          res.techniques[i].config.name.c_str(),
                          opts.threads, diff.c_str());
        }
    }
    return res;
}

ExperimentResult
runBenchmark(const std::string &name, std::vector<SamplerConfig> techniques,
             const RunnerOptions &opts, const CoreConfig &cfg)
{
    return runWorkload(workloads::byName(name), std::move(techniques),
                       opts, cfg);
}

std::vector<ExperimentResult>
runExperimentSuite(const std::vector<SuiteExperiment> &experiments,
                   const std::vector<SamplerConfig> &techniques,
                   const RunnerOptions &opts)
{
    std::vector<ExperimentResult> results(experiments.size());
    const unsigned workers = static_cast<unsigned>(std::max<std::size_t>(
        1,
        std::min<std::size_t>(opts.threads, experiments.size())));
    // Each experiment runs the serial in-process path (fully
    // independent, bit-identical result) but keeps the caller's
    // trace-cache settings: a warm cache turns the whole suite into
    // parallel decode-and-replay with no simulation at all.
    RunnerOptions inner = opts;
    inner.threads = 1;

    // Containment: one experiment failing — an observer exception, a
    // contained replay-worker death (ExperimentFailure), an injected
    // fault — must not take the rest of the suite with it. The failure
    // is recorded on that experiment's result; everything else
    // completes normally.
    auto runOne = [&](std::size_t i) {
        const SuiteExperiment &exp = experiments[i];
        try {
            if (TEA_FAILPOINT(fpExperiment))
                fpExperiment.raise();
            results[i] =
                runWorkload(exp.make(), techniques, inner, exp.cfg);
            // The experiment name (not the program name): a sweep runs
            // the same kernel under several configurations and the
            // results must stay distinguishable.
            results[i].name = exp.name;
        } catch (const std::exception &e) {
            results[i].name = exp.name;
            results[i].error = e.what();
            tea_warn("suite: experiment '%s' failed (contained): %s",
                     exp.name.c_str(), e.what());
        } catch (...) {
            results[i].name = exp.name;
            results[i].error = "unknown exception";
            tea_warn("suite: experiment '%s' failed (contained): "
                     "unknown exception",
                     exp.name.c_str());
        }
    };

    if (workers <= 1) {
        for (std::size_t i = 0; i < experiments.size(); ++i)
            runOne(i);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            // Cannot throw: runOne catches everything internally and
            // fetch_add/size are noexcept.
            // relaxed: the cursor only partitions experiment indices;
            // results[i] is touched by exactly one worker and the
            // thread join orders it before the suite reads it.
            // tea_lint: allow(unguarded-worker)
            pool.emplace_back([&] {
                for (std::size_t i =
                         next.fetch_add(1, std::memory_order_relaxed);
                     i < experiments.size();
                     i = next.fetch_add(1, std::memory_order_relaxed)) {
                    runOne(i);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    // Stamp the suite-wide degradation count on every result so any
    // single result's ReplayStats reveals that the suite it came from
    // was not fully healthy.
    unsigned degraded = 0;
    for (const ExperimentResult &r : results)
        degraded += r.failed() ? 1 : 0;
    if (degraded > 0) {
        for (ExperimentResult &r : results)
            r.replay.degradedExperiments = degraded;
    }
    return results;
}

std::vector<ExperimentResult>
runBenchmarkSuite(const std::vector<std::string> &names,
                  const std::vector<SamplerConfig> &techniques,
                  const RunnerOptions &opts, const CoreConfig &cfg)
{
    std::vector<SuiteExperiment> experiments;
    experiments.reserve(names.size());
    for (const std::string &name : names) {
        experiments.push_back(SuiteExperiment{
            name, [name] { return workloads::byName(name); }, cfg});
    }
    return runExperimentSuite(experiments, techniques, opts);
}

std::string
renderSuiteErrors(const std::vector<ExperimentResult> &results)
{
    std::string out;
    for (const ExperimentResult &r : results) {
        if (r.failed())
            out += strprintf("experiment '%s' FAILED: %s\n",
                             r.name.c_str(), r.error.c_str());
    }
    return out;
}

int
suiteExitCode(const std::vector<ExperimentResult> &results)
{
    const std::string errors = renderSuiteErrors(results);
    if (errors.empty())
        return 0;
    // Terminal output, not file I/O: no seams apply.
    // tea_check: allow(raw-io)
    std::fputs(errors.c_str(), stderr);
    return 1;
}

} // namespace tea
